#!/bin/sh
# The local/CI gate, split into stages so CI can attribute failures:
#
#   ./check.sh lint    # gofmt, vet, build, lucheck -audit
#   ./check.sh test    # race-enabled test suite
#   ./check.sh chaos   # fault-injection / cancellation stress, -race, repeated
#   ./check.sh bench   # paperbench small suite + regression compare
#   ./check.sh [all]   # everything above (the default)
#
# The bench stage runs the dense-kernel benchmarks into
# bench-out/kernel-bench.txt, writes bench-out/BENCH_small.json (suite
# wall times + kernel GFLOPS) and a Chrome trace, then fails if suite
# wall time or any kernel regressed more than SPARSELU_BENCH_TOL
# (default 0.25) against the committed BENCH_small.json baseline, or if
# the mean worker utilization at the highest worker count fell below
# the baseline's committed utilization_floor.
# SPARSELU_BENCH_REPS (default 3) controls repetitions per
# configuration; SPARSELU_KERNEL_BENCHTIME (default 300ms) the Go
# benchmark time per kernel size.
set -eu
cd "$(dirname "$0")"

stage="${1:-all}"

lint() {
	echo "==> gofmt"
	unformatted=$(gofmt -l .)
	if [ -n "$unformatted" ]; then
		echo "gofmt needed on:" >&2
		echo "$unformatted" >&2
		exit 1
	fi

	echo "==> go vet"
	go vet ./...

	echo "==> go build"
	go build ./...

	echo "==> lucheck -audit"
	go run ./cmd/lucheck -audit ./...
}

test_stage() {
	echo "==> go test -race"
	go test -race ./...
}

chaos() {
	# The robustness surface under the race detector, repeated to shake
	# out scheduling-dependent interleavings: injected panics/errors/NaNs,
	# cancellation latency, timeouts, the singularity/perturbation
	# contract, and the async work-stealing engine's starvation/
	# termination and bitwise-parity stress (deque races, skewed costs
	# with injected delays at P=8). SPARSELU_CHAOS_COUNT (default 5) sets
	# the repetition count.
	echo "==> chaos (fault injection + work-stealing stress, -race)"
	go test -race -count "${SPARSELU_CHAOS_COUNT:-5}" \
		-run 'Cancel|Abort|Fault|Injector|Panic|Poison|Timeout|NearSingular|Singular|Perturb|Deque|Starvation|Parity' \
		./internal/sched/ ./internal/core/ ./internal/faultinject/ ./internal/gplu/ .
}

bench() {
	echo "==> kernel benchmarks (output kept as CI artifact)"
	mkdir -p bench-out
	go test -run '^$' -bench 'BenchmarkDgemm$|BenchmarkDtrsm$|BenchmarkDgetrfStatic$' \
		-benchtime "${SPARSELU_KERNEL_BENCHTIME:-300ms}" \
		./internal/blas/ | tee bench-out/kernel-bench.txt

	echo "==> solve benchmarks (output kept as CI artifact)"
	go test -run '^$' -bench 'BenchmarkSolve$|BenchmarkSolveMany$' \
		-benchtime "${SPARSELU_KERNEL_BENCHTIME:-300ms}" \
		. | tee bench-out/solve-bench.txt

	echo "==> paperbench (small suite, regression gate)"
	go run ./cmd/paperbench \
		-bench bench-out/BENCH_small.json \
		-benchtrace bench-out/trace_small.json \
		-small \
		-reps "${SPARSELU_BENCH_REPS:-3}" \
		-compare BENCH_small.json \
		-tolerance "${SPARSELU_BENCH_TOL:-0.25}"
}

case "$stage" in
lint) lint ;;
test) test_stage ;;
chaos) chaos ;;
bench) bench ;;
all)
	lint
	test_stage
	chaos
	bench
	;;
*)
	echo "check.sh: unknown stage '$stage' (want lint, test, chaos, bench or all)" >&2
	exit 2
	;;
esac

echo "checks passed ($stage)"
