#!/bin/sh
# The local/CI gate, split into stages so CI can attribute failures:
#
#   ./check.sh lint    # gofmt, vet, build, lucheck
#   ./check.sh test    # race-enabled test suite
#   ./check.sh bench   # paperbench small suite + regression compare
#   ./check.sh [all]   # everything above (the default)
#
# The bench stage writes bench-out/BENCH_small.json and a Chrome trace,
# then fails if suite wall time regressed more than SPARSELU_BENCH_TOL
# (default 0.25) against the committed BENCH_small.json baseline.
# SPARSELU_BENCH_REPS (default 3) controls repetitions per
# configuration.
set -eu
cd "$(dirname "$0")"

stage="${1:-all}"

lint() {
	echo "==> gofmt"
	unformatted=$(gofmt -l .)
	if [ -n "$unformatted" ]; then
		echo "gofmt needed on:" >&2
		echo "$unformatted" >&2
		exit 1
	fi

	echo "==> go vet"
	go vet ./...

	echo "==> go build"
	go build ./...

	echo "==> lucheck"
	go run ./cmd/lucheck ./...
}

test_stage() {
	echo "==> go test -race"
	go test -race ./...
}

bench() {
	echo "==> paperbench (small suite, regression gate)"
	mkdir -p bench-out
	go run ./cmd/paperbench \
		-bench bench-out/BENCH_small.json \
		-benchtrace bench-out/trace_small.json \
		-small \
		-reps "${SPARSELU_BENCH_REPS:-3}" \
		-compare BENCH_small.json \
		-tolerance "${SPARSELU_BENCH_TOL:-0.25}"
}

case "$stage" in
lint) lint ;;
test) test_stage ;;
bench) bench ;;
all)
	lint
	test_stage
	bench
	;;
*)
	echo "check.sh: unknown stage '$stage' (want lint, test, bench or all)" >&2
	exit 2
	;;
esac

echo "checks passed ($stage)"
