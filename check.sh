#!/bin/sh
# The local/CI gate, split into stages so CI can attribute failures:
#
#   ./check.sh lint    # gofmt, vet, build, lucheck -audit
#   ./check.sh test    # race-enabled test suite
#   ./check.sh chaos   # fault-injection / cancellation stress, -race, repeated
#   ./check.sh service # sluserver chaos suite under -race + live HTTP smoke
#   ./check.sh bench   # paperbench small suite + regression compare
#   ./check.sh [all]   # everything above (the default)
#
# The bench stage runs the dense-kernel benchmarks (both kernel modes:
# the bitwise Dgemm and the relaxed DgemmFast) into
# bench-out/kernel-bench.txt, writes bench-out/BENCH_small.json (suite
# wall times in both kernel modes + kernel GFLOPS, including the
# _fastmath entries) plus a Chrome trace and the analyze-time tile
# autotuner's per-host report (bench-out/autotune.json: probed cache
# sizes, chosen MC/KC/NC/NB), then fails if suite wall time or any
# kernel regressed more than SPARSELU_BENCH_TOL (default 0.25) against
# the committed BENCH_small.json baseline, or if the mean worker
# utilization at the highest worker count fell below the baseline's
# committed utilization_floor (a bitwise-mode metric).
# SPARSELU_BENCH_REPS (default 3) controls repetitions per
# configuration; SPARSELU_KERNEL_BENCHTIME (default 300ms) the Go
# benchmark time per kernel size.
set -eu
cd "$(dirname "$0")"

stage="${1:-all}"

lint() {
	echo "==> gofmt"
	unformatted=$(gofmt -l .)
	if [ -n "$unformatted" ]; then
		echo "gofmt needed on:" >&2
		echo "$unformatted" >&2
		exit 1
	fi

	echo "==> go vet"
	go vet ./...

	echo "==> go build"
	go build ./...

	echo "==> lucheck -audit"
	go run ./cmd/lucheck -audit ./...
}

test_stage() {
	echo "==> go test -race"
	go test -race ./...
}

chaos() {
	# The robustness surface under the race detector, repeated to shake
	# out scheduling-dependent interleavings: injected panics/errors/NaNs,
	# cancellation latency, timeouts, the singularity/perturbation
	# contract, and the async work-stealing engine's starvation/
	# termination and bitwise-parity stress (deque races, skewed costs
	# with injected delays at P=8). SPARSELU_CHAOS_COUNT (default 5) sets
	# the repetition count.
	echo "==> chaos (fault injection + work-stealing stress, -race)"
	go test -race -count "${SPARSELU_CHAOS_COUNT:-5}" \
		-run 'Cancel|Abort|Fault|Injector|Panic|Poison|Timeout|NearSingular|Singular|Perturb|Deque|Starvation|Parity' \
		./internal/sched/ ./internal/core/ ./internal/faultinject/ ./internal/gplu/ .
}

service_stage() {
	# The solve service under stress: the server package's chaos suite
	# (injected panics/NaNs/delays across dozens of concurrent requests,
	# admission shedding, drain, the recovery ladder, batched-solve
	# bitwise parity) under the race detector, then a live smoke of the
	# built daemon over HTTP with a deterministic fault plan.
	# SPARSELU_SERVICE_COUNT (default 2) sets the -race repetition count.
	echo "==> service chaos (-race)"
	go test -race -count "${SPARSELU_SERVICE_COUNT:-2}" ./internal/server/

	echo "==> service smoke (live HTTP, injected fault)"
	tmp=$(mktemp -d)
	go build -o "$tmp/sluserver" ./cmd/sluserver
	# Request #3 is NaN-poisoned: the solve must come back 422/non_finite
	# while its neighbors stay healthy.
	SLUSERVER_FAULTS="3:nan" "$tmp/sluserver" -addr 127.0.0.1:0 2>"$tmp/log" &
	smoke_pid=$!
	smoke_fail() {
		echo "service smoke: $1" >&2
		cat "$tmp/log" >&2 || true
		kill "$smoke_pid" 2>/dev/null || true
		rm -rf "$tmp"
		exit 1
	}
	smoke_addr=""
	i=0
	while [ $i -lt 50 ]; do
		smoke_addr=$(sed -n 's/^sluserver: listening on //p' "$tmp/log")
		[ -n "$smoke_addr" ] && break
		kill -0 "$smoke_pid" 2>/dev/null || smoke_fail "daemon exited before listening"
		sleep 0.1
		i=$((i + 1))
	done
	[ -n "$smoke_addr" ] || smoke_fail "daemon never reported its address"

	curl -sf "http://$smoke_addr/healthz" >/dev/null || smoke_fail "healthz failed"
	# 1: factorize a 2x2 SPD-ish system; 2: solve it; 3: poisoned solve;
	# 4: clean solve again (the fault must not have corrupted the store).
	out=$(curl -s "http://$smoke_addr/v1/factorize" \
		-d '{"matrix":{"n":2,"rows":[0,1,0],"cols":[0,1,1],"vals":[4,3,1]}}')
	case "$out" in *'"fid":"f1"'*) ;; *) smoke_fail "factorize: $out" ;; esac
	out=$(curl -s "http://$smoke_addr/v1/solve" -d '{"fid":"f1","b":[5,3]}')
	case "$out" in *'"x":[1,1]'*) ;; *) smoke_fail "solve: $out" ;; esac
	out=$(curl -s "http://$smoke_addr/v1/solve" -d '{"fid":"f1","b":[5,3]}')
	case "$out" in *'"code":"non_finite"'*) ;; *) smoke_fail "poisoned solve: $out" ;; esac
	out=$(curl -s "http://$smoke_addr/v1/solve" -d '{"fid":"f1","b":[5,3]}')
	case "$out" in *'"x":[1,1]'*) ;; *) smoke_fail "post-fault solve: $out" ;; esac
	# 5: re-factorize the same pattern with scaled values: the symbolic
	# cache must hit (one analysis serves both factorizations).
	out=$(curl -s "http://$smoke_addr/v1/factorize" \
		-d '{"matrix":{"n":2,"rows":[0,1,0],"cols":[0,1,1],"vals":[8,6,2]}}')
	case "$out" in *'"symbolic_cached":true'*) ;; *) smoke_fail "cached factorize: $out" ;; esac
	out=$(curl -s "http://$smoke_addr/metrics")
	case "$out" in *'"faults_injected":1'*) ;; *) smoke_fail "metrics: $out" ;; esac
	case "$out" in *'"hits":1'*) ;; *) smoke_fail "metrics cache hits: $out" ;; esac
	case "$out" in *'"reanalyzes":'*) ;; *) smoke_fail "metrics missing reanalyzes: $out" ;; esac
	case "$out" in *'"analyze_seconds":'*) ;; *) smoke_fail "metrics missing analyze_seconds: $out" ;; esac

	kill -TERM "$smoke_pid"
	wait "$smoke_pid" || smoke_fail "daemon did not drain cleanly"
	rm -rf "$tmp"
	echo "service smoke passed at $smoke_addr"
}

bench() {
	echo "==> kernel benchmarks, both kernel modes (output kept as CI artifact)"
	mkdir -p bench-out
	go test -run '^$' -bench 'BenchmarkDgemm$|BenchmarkDgemmFast$|BenchmarkDtrsm$|BenchmarkDgetrfStatic$' \
		-benchtime "${SPARSELU_KERNEL_BENCHTIME:-300ms}" \
		./internal/blas/ | tee bench-out/kernel-bench.txt

	echo "==> solve benchmarks (output kept as CI artifact)"
	go test -run '^$' -bench 'BenchmarkSolve$|BenchmarkSolveMany$' \
		-benchtime "${SPARSELU_KERNEL_BENCHTIME:-300ms}" \
		. | tee bench-out/solve-bench.txt

	echo "==> paperbench (small suite, both kernel modes, regression gate)"
	go run ./cmd/paperbench \
		-bench bench-out/BENCH_small.json \
		-benchtrace bench-out/trace_small.json \
		-autotunereport bench-out/autotune.json \
		-small \
		-reps "${SPARSELU_BENCH_REPS:-3}" \
		-compare BENCH_small.json \
		-tolerance "${SPARSELU_BENCH_TOL:-0.25}"
}

case "$stage" in
lint) lint ;;
test) test_stage ;;
chaos) chaos ;;
service) service_stage ;;
bench) bench ;;
all)
	lint
	test_stage
	chaos
	service_stage
	bench
	;;
*)
	echo "check.sh: unknown stage '$stage' (want lint, test, chaos, service, bench or all)" >&2
	exit 2
	;;
esac

echo "checks passed ($stage)"
