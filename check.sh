#!/bin/sh
# The full local gate: formatting, vet, build, the project-specific
# static checker, and the tests with the race detector. CI runs exactly
# this script.
set -eu
cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> lucheck"
go run ./cmd/lucheck ./...

echo "==> go test -race"
go test -race ./...

echo "all checks passed"
