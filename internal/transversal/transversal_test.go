package transversal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func fromDense(d []float64, n int) *sparse.CSC {
	return sparse.FromDense(d, n, n, 0)
}

func TestAlreadyZeroFree(t *testing.T) {
	a := fromDense([]float64{
		1, 0, 2,
		0, 3, 0,
		4, 0, 5,
	}, 3)
	r := MaximumTransversal(a)
	if !r.StructurallyNonsingular() {
		t.Fatal("matrix is structurally nonsingular")
	}
	if !a.PermuteRows(r.RowPerm).HasZeroFreeDiagonal() {
		t.Fatal("permuted matrix lacks a zero-free diagonal")
	}
}

func TestNeedsPermutation(t *testing.T) {
	// Antidiagonal: rows must be reversed.
	a := fromDense([]float64{
		0, 0, 1,
		0, 1, 0,
		1, 0, 0,
	}, 3)
	r := MaximumTransversal(a)
	if !r.StructurallyNonsingular() {
		t.Fatal("want nonsingular")
	}
	if !a.PermuteRows(r.RowPerm).HasZeroFreeDiagonal() {
		t.Fatal("permuted matrix lacks zero-free diagonal")
	}
}

func TestNeedsAugmentingPath(t *testing.T) {
	// Cheap assignment alone fails here: col0 grabs row0, but col1 only
	// has row0, forcing an augmenting path that reroutes col0 to row1.
	a := fromDense([]float64{
		1, 1, 0,
		1, 0, 1,
		0, 0, 1,
	}, 3)
	r := MaximumTransversal(a)
	if !r.StructurallyNonsingular() {
		t.Fatalf("want perfect matching, matched %d", r.MatchedCols)
	}
	if !a.PermuteRows(r.RowPerm).HasZeroFreeDiagonal() {
		t.Fatal("permuted matrix lacks zero-free diagonal")
	}
}

func TestStructurallySingular(t *testing.T) {
	// Column 2 is empty: max matching has 2 columns.
	tr := sparse.NewTriplet(3, 3)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, 1)
	tr.Add(2, 0, 1)
	a := tr.ToCSC()
	r := MaximumTransversal(a)
	if r.StructurallyNonsingular() {
		t.Fatal("matrix with empty column reported nonsingular")
	}
	if r.MatchedCols != 2 {
		t.Fatalf("MatchedCols = %d, want 2", r.MatchedCols)
	}
	if err := sparse.CheckPerm(r.RowPerm, 3); err != nil {
		t.Fatalf("RowPerm invalid even in singular case: %v", err)
	}
}

func TestDuplicatedColumnsSingular(t *testing.T) {
	// Two identical single-entry columns compete for one row.
	a := fromDense([]float64{
		1, 1, 0,
		0, 0, 1,
		0, 0, 1,
	}, 3)
	r := MaximumTransversal(a)
	if r.MatchedCols != 2 {
		t.Fatalf("MatchedCols = %d, want 2", r.MatchedCols)
	}
}

func TestPermIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(25)
		tr := sparse.NewTriplet(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.15 {
					tr.Add(i, j, 1)
				}
			}
		}
		a := tr.ToCSC()
		r := MaximumTransversal(a)
		if err := sparse.CheckPerm(r.RowPerm, n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// bruteForceMatching computes the maximum bipartite matching size by
// exhaustive search over column assignments (exponential; tiny n only).
func bruteForceMatching(a *sparse.CSC) int {
	n := a.NCols
	usedRows := make([]bool, n)
	var rec func(j int) int
	rec = func(j int) int {
		if j == n {
			return 0
		}
		// Skip column j.
		best := rec(j + 1)
		rows, _ := a.Col(j)
		for _, r := range rows {
			if !usedRows[r] {
				usedRows[r] = true
				if got := 1 + rec(j+1); got > best {
					best = got
				}
				usedRows[r] = false
			}
		}
		return best
	}
	return rec(0)
}

func TestMatchingIsMaximum(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		tr := sparse.NewTriplet(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.3 {
					tr.Add(i, j, 1)
				}
			}
		}
		a := tr.ToCSC()
		got := MaximumTransversal(a).MatchedCols
		want := bruteForceMatching(a)
		if got != want {
			t.Fatalf("trial %d: matched %d, brute force %d\n%v", trial, got, want, a)
		}
	}
}

// Property: for matrices with a planted perfect matching the algorithm
// always recovers a zero-free diagonal.
func TestQuickPlantedTransversal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		p := sparse.RandomPerm(n, rng)
		tr := sparse.NewTriplet(n, n)
		for j := 0; j < n; j++ {
			tr.Add(p[j], j, 1) // planted matching
			for extra := 0; extra < 3; extra++ {
				if rng.Float64() < 0.5 {
					tr.Add(rng.Intn(n), rng.Intn(n), 1)
				}
			}
		}
		a := tr.ToCSC()
		r := MaximumTransversal(a)
		return r.StructurallyNonsingular() &&
			a.PermuteRows(r.RowPerm).HasZeroFreeDiagonal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
