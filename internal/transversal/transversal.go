// Package transversal finds a maximum transversal of a sparse matrix: a
// row permutation that places structural nonzeros on the diagonal (Duff's
// MC21 algorithm [Duff '81]). The sparse LU pipeline applies it first so
// that the matrix has a zero-free diagonal, a precondition of the static
// symbolic factorization and of the LU elimination forest (the paper
// assumes A is permuted by a transversal, citing [3]).
package transversal

import (
	"repro/internal/sparse"
)

// Result holds the outcome of a maximum transversal search.
type Result struct {
	// RowPerm maps original row index to new row index (scatter
	// convention); applying it with CSC.PermuteRows places the matched
	// entries on the diagonal.
	RowPerm sparse.Perm
	// MatchedCols is the number of columns matched to a distinct row;
	// equal to n iff the matrix is structurally nonsingular.
	MatchedCols int
	// ColToRow[j] is the original row matched to column j, or -1.
	ColToRow []int
}

// StructurallyNonsingular reports whether a perfect matching was found.
func (r *Result) StructurallyNonsingular() bool {
	return r.MatchedCols == len(r.ColToRow)
}

// MaximumTransversal computes a maximum matching between the rows and
// columns of the square matrix a using depth-first search with cheap
// assignment and lookahead (MC21-style). Runtime O(n · nnz) worst case,
// near-linear in practice.
func MaximumTransversal(a *sparse.CSC) *Result {
	if a.NRows != a.NCols {
		panic("transversal: matrix must be square")
	}
	n := a.NCols
	colToRow := make([]int, n) // matching: column -> row
	rowToCol := make([]int, n) // matching: row -> column
	for i := range colToRow {
		colToRow[i] = -1
		rowToCol[i] = -1
	}
	// cheap[j]: next unexplored position in column j for cheap assignment.
	cheap := make([]int, n)
	for j := range cheap {
		cheap[j] = a.ColPtr[j]
	}
	visited := make([]int, n) // column visit stamps
	for i := range visited {
		visited[i] = -1
	}
	matched := 0

	// Iterative DFS over alternating paths.
	type frame struct {
		col int
		pos int // scan position in column's row list
	}
	stack := make([]frame, 0, n)
	pathRow := make([]int, n) // row chosen at each depth

	for jRoot := 0; jRoot < n; jRoot++ {
		if colToRow[jRoot] != -1 {
			continue
		}
		stack = stack[:0]
		stack = append(stack, frame{col: jRoot, pos: a.ColPtr[jRoot]})
		visited[jRoot] = jRoot
		found := false
		for len(stack) > 0 && !found {
			f := &stack[len(stack)-1]
			j := f.col
			// Cheap assignment: scan for an unmatched row.
			for cheap[j] < a.ColPtr[j+1] {
				r := a.RowInd[cheap[j]]
				cheap[j]++
				if rowToCol[r] == -1 {
					// Augment along the stack.
					pathRow[len(stack)-1] = r
					found = true
					break
				}
			}
			if found {
				break
			}
			// Deepen: follow a matched row's column.
			advanced := false
			for f.pos < a.ColPtr[j+1] {
				r := a.RowInd[f.pos]
				f.pos++
				next := rowToCol[r]
				if visited[next] != jRoot {
					visited[next] = jRoot
					pathRow[len(stack)-1] = r
					stack = append(stack, frame{col: next, pos: a.ColPtr[next]})
					advanced = true
					break
				}
			}
			if !advanced && !found {
				stack = stack[:len(stack)-1]
			}
		}
		if found {
			// Flip matching along the path: depth d column gets pathRow[d].
			for d := len(stack) - 1; d >= 0; d-- {
				j := stack[d].col
				r := pathRow[d]
				colToRow[j] = r
				rowToCol[r] = j
			}
			matched++
		}
	}

	// Build the row permutation: matched row r of column j moves to row j.
	rowPerm := make(sparse.Perm, n)
	for i := range rowPerm {
		rowPerm[i] = -1
	}
	for j := 0; j < n; j++ {
		if r := colToRow[j]; r != -1 {
			rowPerm[r] = j
		}
	}
	// Assign unmatched rows to unmatched positions (structurally singular
	// case) so the result is still a valid permutation.
	free := make([]bool, n)
	for i := range free {
		free[i] = true
	}
	for _, v := range rowPerm {
		if v != -1 {
			free[v] = false
		}
	}
	next := 0
	for i := range rowPerm {
		if rowPerm[i] == -1 {
			for !free[next] {
				next++
			}
			rowPerm[i] = next
			free[next] = false
		}
	}
	return &Result{RowPerm: rowPerm, MatchedCols: matched, ColToRow: colToRow}
}
