package transversal

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

func BenchmarkMaximumTransversal(b *testing.B) {
	for _, n := range []int{500, 2000} {
		rng := rand.New(rand.NewSource(int64(n)))
		p := sparse.RandomPerm(n, rng)
		t := sparse.NewTriplet(n, n)
		for j := 0; j < n; j++ {
			t.Add(p[j], j, 1)
			for k := 0; k < 4; k++ {
				t.Add(rng.Intn(n), j, 1)
			}
		}
		a := t.ToCSC()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := MaximumTransversal(a)
				if !r.StructurallyNonsingular() {
					b.Fatal("planted transversal not found")
				}
			}
		})
	}
}
