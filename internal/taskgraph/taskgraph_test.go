package taskgraph

import (
	"math/rand"
	"testing"

	"repro/internal/etree"
	"repro/internal/sparse"
	"repro/internal/supernode"
	"repro/internal/symbolic"
)

// paperMatrix is the 7×7 worked example shared with the etree tests; its
// LU eforest is the chain/tree 0→3→4→5→6 with 1→4 and 2→5.
func paperMatrix() *sparse.CSC {
	t := sparse.NewTriplet(7, 7)
	entries := [][2]int{
		{0, 0}, {0, 3},
		{1, 1}, {1, 4},
		{2, 2}, {2, 5},
		{3, 0}, {3, 3}, {3, 6},
		{4, 1}, {4, 4}, {4, 6},
		{5, 2}, {5, 5}, {5, 6},
		{6, 3}, {6, 4}, {6, 5}, {6, 6},
	}
	for k, e := range entries {
		t.Add(e[0], e[1], float64(k+1))
	}
	return t.ToCSC()
}

func randomZeroFreeDiag(n int, density float64, rng *rand.Rand) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Add(i, i, 1+rng.Float64())
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				t.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

func mustFactor(t *testing.T, a *sparse.CSC) *symbolic.Result {
	t.Helper()
	r, err := symbolic.Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func bothGraphs(t *testing.T, sym *symbolic.Result) (*Graph, *Graph, *etree.Forest) {
	t.Helper()
	f := etree.LUForest(sym)
	return New(sym, nil, SStar), New(sym, f, EForest), f
}

// reachable computes whether dst is reachable from src.
func reachable(g *Graph, src, dst int) bool {
	seen := make([]bool, g.NumTasks())
	stack := []int{src}
	seen[src] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == dst {
			return true
		}
		for _, s := range g.Succ[v] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, int(s))
			}
		}
	}
	return false
}

func TestTaskSetsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 10; trial++ {
		sym := mustFactor(t, randomZeroFreeDiag(15+rng.Intn(15), 0.12, rng))
		gs, ge, _ := bothGraphs(t, sym)
		if gs.NumTasks() != ge.NumTasks() {
			t.Fatalf("task counts differ: %d vs %d", gs.NumTasks(), ge.NumTasks())
		}
		for id := range gs.Tasks {
			if gs.Tasks[id] != ge.Tasks[id] {
				t.Fatalf("task %d differs: %v vs %v", id, gs.Tasks[id], ge.Tasks[id])
			}
		}
	}
}

func TestGraphsAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 15; trial++ {
		sym := mustFactor(t, randomZeroFreeDiag(10+rng.Intn(25), 0.12, rng))
		gs, ge, _ := bothGraphs(t, sym)
		if _, err := gs.TopoOrder(); err != nil {
			t.Fatalf("S* graph: %v", err)
		}
		if _, err := ge.TopoOrder(); err != nil {
			t.Fatalf("eforest graph: %v", err)
		}
	}
}

func TestFactorPrecedesItsUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	sym := mustFactor(t, randomZeroFreeDiag(20, 0.12, rng))
	for _, g := range func() []*Graph { a, b, _ := bothGraphs(t, sym); return []*Graph{a, b} }() {
		for k := 0; k < g.N; k++ {
			for j, id := range g.UpdateID[k] {
				if !reachable(g, g.FactorID[k], id) {
					t.Fatalf("%v: F(%d) does not precede U(%d,%d)", g.Variant, k, k, j)
				}
			}
		}
	}
}

// In both graphs, every update whose source lies in the subtree of k
// must complete before F(k): those are the updates that write the panel
// F(k) factorizes.
func TestPanelUpdatesPrecedeFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 15; trial++ {
		sym := mustFactor(t, randomZeroFreeDiag(8+rng.Intn(20), 0.15, rng))
		gs, ge, f := bothGraphs(t, sym)
		for _, g := range []*Graph{gs, ge} {
			for k := 0; k < g.N; k++ {
				for i := 0; i < k; i++ {
					id, ok := g.UpdateID[i][k]
					if !ok {
						continue
					}
					if !f.IsAncestor(k, i) {
						continue // update from an earlier tree: touches only rows above k
					}
					if !reachable(g, id, g.FactorID[k]) {
						t.Fatalf("%v trial %d: U(%d,%d) does not precede F(%d)", g.Variant, trial, i, k, k)
					}
				}
			}
		}
	}
}

// Theorem 4 ordering: U(i,k) must precede U(i',k) whenever i' is an
// ancestor of i (both graphs must enforce this; S* does it by index
// order, the eforest graph by parent chains).
func TestAncestorUpdateOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 15; trial++ {
		sym := mustFactor(t, randomZeroFreeDiag(8+rng.Intn(20), 0.15, rng))
		gs, ge, f := bothGraphs(t, sym)
		for _, g := range []*Graph{gs, ge} {
			for j := 0; j < g.N; j++ {
				// Collect update tasks targeting j.
				var srcs []int
				for i := 0; i < j; i++ {
					if _, ok := g.UpdateID[i][j]; ok {
						srcs = append(srcs, i)
					}
				}
				for _, a := range srcs {
					for _, b := range srcs {
						if a == b || !f.IsAncestor(b, a) {
							continue
						}
						ia := g.UpdateID[a][j]
						ib := g.UpdateID[b][j]
						if !reachable(g, ia, ib) {
							t.Fatalf("%v trial %d: U(%d,%d) does not precede U(%d,%d)", g.Variant, trial, a, j, b, j)
						}
					}
				}
			}
		}
	}
}

// Independent-subtree updates must NOT be ordered in the eforest graph —
// that is the parallelism the paper exposes.
func TestIndependentUpdatesUnorderedInEForest(t *testing.T) {
	sym := mustFactor(t, paperMatrix())
	_, ge, f := bothGraphs(t, sym)
	// Sources 0 and 1 are in independent subtrees (0 under 3, 1 under 4
	// with neither an ancestor of the other); both update column 6.
	if f.IsAncestor(0, 1) || f.IsAncestor(1, 0) {
		t.Fatal("example no longer has independent sources 0 and 1")
	}
	id0 := ge.UpdateID[0][6]
	id1 := ge.UpdateID[1][6]
	if reachable(ge, id0, id1) || reachable(ge, id1, id0) {
		t.Fatal("eforest graph orders updates from independent subtrees")
	}
}

func TestSStarSerializesAllUpdates(t *testing.T) {
	sym := mustFactor(t, paperMatrix())
	gs, _, _ := bothGraphs(t, sym)
	// In S*, updates on column 6 form a chain in ascending source order.
	var prev = -1
	for i := 0; i < 6; i++ {
		id, ok := gs.UpdateID[i][6]
		if !ok {
			continue
		}
		if prev != -1 && !reachable(gs, prev, id) {
			t.Fatalf("S*: U(·,6) chain broken between tasks %d and %d", prev, id)
		}
		prev = id
	}
}

func TestEForestStrictlyMoreParallel(t *testing.T) {
	sym := mustFactor(t, paperMatrix())
	gs, ge, _ := bothGraphs(t, sym)
	cpS, totS, err := gs.CriticalPath(nil)
	if err != nil {
		t.Fatal(err)
	}
	cpE, totE, err := ge.CriticalPath(nil)
	if err != nil {
		t.Fatal(err)
	}
	if totS != totE {
		t.Fatalf("total work differs: %g vs %g", totS, totE)
	}
	if cpE > cpS {
		t.Fatalf("eforest critical path %g longer than S* %g", cpE, cpS)
	}
	if ge.NumEdges > gs.NumEdges {
		t.Fatalf("eforest graph has %d edges, S* has %d — expected no more", ge.NumEdges, gs.NumEdges)
	}
	// The parallelism gain must be real on this example: removing the
	// false dependences strictly shrinks the set of ordered task pairs
	// (e.g. U(0,6) and U(1,6) are unordered in the eforest graph).
	if pe, ps := orderedPairs(ge), orderedPairs(gs); pe >= ps {
		t.Fatalf("eforest graph has %d ordered pairs, S* has %d — expected fewer", pe, ps)
	}
}

// orderedPairs counts the ordered task pairs (a, b) with b reachable
// from a — the size of the transitive closure.
func orderedPairs(g *Graph) int {
	count := 0
	for id := range g.Tasks {
		seen := make([]bool, g.NumTasks())
		stack := []int{id}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range g.Succ[v] {
				if !seen[s] {
					seen[s] = true
					count++
					stack = append(stack, int(s))
				}
			}
		}
	}
	return count
}

func TestCriticalPathNeverWorseAcrossRandomMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	for trial := 0; trial < 15; trial++ {
		sym := mustFactor(t, randomZeroFreeDiag(15+rng.Intn(25), 0.1, rng))
		gs, ge, _ := bothGraphs(t, sym)
		cpS, _, _ := gs.CriticalPath(nil)
		cpE, _, _ := ge.CriticalPath(nil)
		if cpE > cpS {
			t.Fatalf("trial %d: eforest critical path %g > S* %g", trial, cpE, cpS)
		}
	}
}

func TestCriticalPathTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	for trial := 0; trial < 10; trial++ {
		sym := mustFactor(t, randomZeroFreeDiag(15+rng.Intn(25), 0.1, rng))
		_, g, _ := bothGraphs(t, sym)
		path, cp, err := g.CriticalPathTasks(nil)
		if err != nil {
			t.Fatal(err)
		}
		// The explicit path must have the scalar critical path's length
		// (unit weights: one per task on the path).
		wantCP, _, err := g.CriticalPath(nil)
		if err != nil {
			t.Fatal(err)
		}
		if cp != wantCP {
			t.Fatalf("trial %d: path length %g, CriticalPath %g", trial, cp, wantCP)
		}
		if float64(len(path)) != cp {
			t.Fatalf("trial %d: %d tasks on a unit-weight path of length %g", trial, len(path), cp)
		}
		// Consecutive path tasks must be dependence edges.
		for i := 0; i+1 < len(path); i++ {
			found := false
			for _, s := range g.Succ[path[i]] {
				if int(s) == path[i+1] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: %d → %d on the path is not an edge", trial, path[i], path[i+1])
			}
		}
		// Deterministic across calls.
		path2, _, err := g.CriticalPathTasks(nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range path {
			if path[i] != path2[i] {
				t.Fatalf("trial %d: path not deterministic", trial)
			}
		}
	}
}

func TestTaskString(t *testing.T) {
	if (Task{Kind: Factor, K: 3}).String() != "F(3)" {
		t.Fatal("Factor String wrong")
	}
	if (Task{Kind: Update, K: 1, J: 4}).String() != "U(1,4)" {
		t.Fatal("Update String wrong")
	}
	if SStar.String() != "S*" || EForest.String() != "eforest" {
		t.Fatal("variant names wrong")
	}
}

func TestCostModel(t *testing.T) {
	sym := mustFactor(t, paperMatrix())
	f := etree.LUForest(sym)
	g := New(sym, f, EForest)
	part := supernode.Trivial(sym.N)
	cm := NewCostModel(g, sym, part)
	if len(cm.TaskFlops) != g.NumTasks() {
		t.Fatal("cost model size mismatch")
	}
	for id, c := range cm.TaskFlops {
		if c <= 0 {
			t.Fatalf("task %v has non-positive cost %g", g.Tasks[id], c)
		}
	}
	if cm.TotalFlops() <= 0 {
		t.Fatal("total flops non-positive")
	}
	cp, total, err := g.CriticalPath(cm.TaskFlops)
	if err != nil {
		t.Fatal(err)
	}
	if cp <= 0 || total < cp {
		t.Fatalf("cp = %g, total = %g", cp, total)
	}
	if ap := g.AvgParallelism(cm.TaskFlops); ap < 1 {
		t.Fatalf("average parallelism %g < 1", ap)
	}
}

func TestCostModelPanelHeights(t *testing.T) {
	sym := mustFactor(t, paperMatrix())
	g := New(sym, etree.LUForest(sym), EForest)
	cm := NewCostModel(g, sym, supernode.Trivial(sym.N))
	for k := 0; k < sym.N; k++ {
		if cm.PanelHeight[k] != len(sym.L.Col(k)) {
			t.Fatalf("panel height %d = %d, want %d", k, cm.PanelHeight[k], len(sym.L.Col(k)))
		}
		if cm.Width[k] != 1 {
			t.Fatalf("width %d = %d", k, cm.Width[k])
		}
	}
}

func TestGraphWithBlockedPartition(t *testing.T) {
	// End-to-end through supernode blocking: build block structure,
	// re-factor symbolically at block level, then both graphs.
	rng := rand.New(rand.NewSource(87))
	a := randomZeroFreeDiag(40, 0.08, rng)
	sym := mustFactor(t, a)
	part := supernode.Amalgamate(supernode.StrictPartition(sym), sym, supernode.AmalgamationOptions{MaxSize: 8, MaxFill: 0.3})
	bp := supernode.BlockPattern(sym, part)
	blockSym := mustFactor(t, bp.ToCSC(1))
	f := etree.LUForest(blockSym)
	gs := New(blockSym, nil, SStar)
	ge := New(blockSym, f, EForest)
	if _, err := gs.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	if _, err := ge.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	if ge.NumEdges > gs.NumEdges {
		t.Fatalf("eforest %d edges > S* %d", ge.NumEdges, gs.NumEdges)
	}
}

func TestNewPanicsWithoutForest(t *testing.T) {
	sym := mustFactor(t, paperMatrix())
	defer func() {
		if recover() == nil {
			t.Fatal("EForest without forest did not panic")
		}
	}()
	New(sym, nil, EForest)
}

func TestNewPanicsUnknownVariant(t *testing.T) {
	sym := mustFactor(t, paperMatrix())
	defer func() {
		if recover() == nil {
			t.Fatal("unknown variant did not panic")
		}
	}()
	New(sym, etree.LUForest(sym), Variant(99))
}

func TestUnknownVariantString(t *testing.T) {
	if Variant(99).String() != "unknown" {
		t.Fatal("unknown variant name")
	}
}

func TestBottomLevels(t *testing.T) {
	sym := mustFactor(t, paperMatrix())
	g := New(sym, etree.LUForest(sym), EForest)
	bl, err := g.BottomLevels(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Bottom level of a task is strictly larger than that of each
	// successor.
	for id := range g.Succ {
		for _, s := range g.Succ[id] {
			if bl[id] <= bl[s] {
				t.Fatalf("bottom level of %d (%g) not above successor %d (%g)", id, bl[id], s, bl[s])
			}
		}
	}
	// The max bottom level equals the unit critical path.
	cp, _, _ := g.CriticalPath(nil)
	maxBL := 0.0
	for _, v := range bl {
		if v > maxBL {
			maxBL = v
		}
	}
	if maxBL != cp {
		t.Fatalf("max bottom level %g != critical path %g", maxBL, cp)
	}
}

func TestDiagonalMatrixGraph(t *testing.T) {
	// A diagonal matrix has only Factor tasks and no edges.
	tr := sparse.NewTriplet(4, 4)
	for i := 0; i < 4; i++ {
		tr.Add(i, i, 1)
	}
	sym := mustFactor(t, tr.ToCSC())
	g := New(sym, etree.LUForest(sym), EForest)
	if g.NumTasks() != 4 || g.NumEdges != 0 {
		t.Fatalf("tasks %d edges %d, want 4 0", g.NumTasks(), g.NumEdges)
	}
	if ap := g.AvgParallelism(nil); ap != 4 {
		t.Fatalf("avg parallelism %g, want 4", ap)
	}
}
