package taskgraph

import (
	"repro/internal/supernode"
	"repro/internal/symbolic"
)

// CostModel estimates the floating-point work of every task from the
// block structure and the supernode partition, in flops. It is used for
// critical-path analytics, for list-scheduling priorities and by the
// discrete-event machine simulator.
type CostModel struct {
	// PanelHeight[k] is the total number of scalar rows of the L panel
	// of block column k (sum of the heights of its blocks at or below
	// the diagonal).
	PanelHeight []int
	// Width[k] is the number of scalar columns of block k.
	Width []int
	// TaskFlops[id] is the estimated flop count of task id.
	TaskFlops []float64
}

// NewCostModel computes the per-task flop estimates for graph g.
//
//   - Factor(k): partial-pivoting LU of an m×w panel ≈ m·w² flops.
//   - Update(k,j): TRSM with the w_k×w_k diagonal block on a w_k×w_j
//     block (w_k²·w_j) plus the GEMM of the sub-diagonal panel rows
//     (2·(m_k−w_k)·w_k·w_j).
func NewCostModel(g *Graph, blockSym *symbolic.Result, part *supernode.Partition) *CostModel {
	n := blockSym.N
	cm := &CostModel{
		PanelHeight: make([]int, n),
		Width:       make([]int, n),
		TaskFlops:   make([]float64, len(g.Tasks)),
	}
	for k := 0; k < n; k++ {
		cm.Width[k] = part.Size(k)
		h := 0
		for _, i := range blockSym.L.Col(k) {
			h += part.Size(i)
		}
		cm.PanelHeight[k] = h
	}
	for id, t := range g.Tasks {
		if t.Kind == Factor {
			m := float64(cm.PanelHeight[t.K])
			w := float64(cm.Width[t.K])
			cm.TaskFlops[id] = m * w * w
			continue
		}
		wk := float64(cm.Width[t.K])
		wj := float64(cm.Width[t.J])
		sub := float64(cm.PanelHeight[t.K] - cm.Width[t.K])
		cm.TaskFlops[id] = wk*wk*wj + 2*sub*wk*wj
	}
	return cm
}

// TotalFlops returns the summed task flops.
func (cm *CostModel) TotalFlops() float64 {
	var s float64
	for _, f := range cm.TaskFlops {
		s += f
	}
	return s
}
