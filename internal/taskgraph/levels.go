package taskgraph

import "fmt"

// LevelSets computes the level-set (wavefront) schedule of a DAG given
// as successor lists: level(v) is 0 for sources and otherwise one more
// than the maximum level over v's predecessors. It returns the task ids
// ordered level-major — ascending id within each level, so the result
// is deterministic — together with the level offsets: the tasks of
// level l are order[off[l]:off[l+1]]. Tasks within one level are
// mutually independent and every edge points from an earlier level to
// a later one, so a barrier-synchronized execution of the levels
// respects every dependence. An error is returned when succ contains a
// cycle.
//
// This is the schedule shape the level-barrier solve executor
// (internal/sched.ExecuteLevels) consumes; the triangular-solve
// conflict DAGs of internal/core are the primary client.
func LevelSets(succ [][]int32) (order, off []int32, err error) {
	nt := len(succ)
	lvl := make([]int32, nt)
	indeg := make([]int32, nt)
	for _, ss := range succ {
		for _, s := range ss {
			indeg[s]++
		}
	}
	queue := make([]int32, 0, nt)
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, int32(v))
		}
	}
	maxLvl := int32(-1)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if lvl[v] > maxLvl {
			maxLvl = lvl[v]
		}
		for _, s := range succ[v] {
			if l := lvl[v] + 1; l > lvl[s] {
				lvl[s] = l
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(queue) != nt {
		return nil, nil, fmt.Errorf("taskgraph: dependence graph has a cycle (%d of %d tasks leveled)", len(queue), nt)
	}

	// Counting sort by level; scanning v ascending keeps ids ascending
	// within each level.
	off = make([]int32, maxLvl+2)
	for _, l := range lvl {
		off[l+1]++
	}
	for l := 1; l < len(off); l++ {
		off[l] += off[l-1]
	}
	fill := make([]int32, len(off))
	copy(fill, off)
	order = make([]int32, nt)
	for v := 0; v < nt; v++ {
		order[fill[lvl[v]]] = int32(v)
		fill[lvl[v]]++
	}
	return order, off, nil
}

// LevelSets returns the level-set schedule of the task graph's
// dependence structure (see the package-level LevelSets).
func (g *Graph) LevelSets() (order, off []int32, err error) {
	return LevelSets(g.Succ)
}
