// Package taskgraph builds the task dependence graphs that drive the
// parallel numeric factorization. The tasks follow S* (Section 4 of the
// paper): Factor(k) factorizes block column k including its pivot
// search, and Update(k, j) applies block column k to block column j
// (k < j, B̄_kj ≠ 0).
//
// Two dependence structures are provided over the same task set:
//
//   - SStar: the baseline used in the S* environment — the updates of a
//     destination column are serialized in ascending source order.
//   - EForest: the paper's contribution — only the least necessary
//     dependences, derived from the LU elimination forest of the block
//     matrix (Theorem 4): U(i,k) → U(i',k) when i' = parent(i), U(i,k) →
//     F(k) when parent(i) = k, and no dependence at all between updates
//     coming from independent subtrees.
package taskgraph

import (
	"fmt"

	"repro/internal/etree"
	"repro/internal/symbolic"
)

// Kind distinguishes factor and update tasks.
type Kind uint8

const (
	// Factor is the task F(k): factorize block column k.
	Factor Kind = iota
	// Update is the task U(k, j): update block column j with column k.
	Update
)

// Task is one node of the dependence graph.
type Task struct {
	Kind Kind
	// K is the block column being factored (Factor) or the source block
	// column (Update).
	K int
	// J is the destination block column of an Update; unused for Factor.
	J int
}

// String renders the task in the paper's notation.
func (t Task) String() string {
	if t.Kind == Factor {
		return fmt.Sprintf("F(%d)", t.K)
	}
	return fmt.Sprintf("U(%d,%d)", t.K, t.J)
}

// Variant selects which dependence structure to build.
type Variant int

const (
	// SStar is the baseline dependence graph of the S* environment.
	SStar Variant = iota
	// EForest is the paper's elimination-forest-guided graph.
	EForest
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case SStar:
		return "S*"
	case EForest:
		return "eforest"
	}
	return "unknown"
}

// Graph is a task dependence DAG.
type Graph struct {
	Variant Variant
	N       int // number of block columns
	Tasks   []Task
	// FactorID[k] is the task id of F(k).
	FactorID []int
	// UpdateID[k] maps, for source block k, destination block j to the
	// task id of U(k, j).
	UpdateID []map[int]int
	// Succ[id] lists the successor task ids of task id.
	Succ [][]int32
	// ChainNext[id] is the next task of id's per-destination update
	// chain (Theorem 4): for an Update task it is the same-destination
	// successor the variant serializes it against — the next update of
	// the chain, or F(j) when the update is last — and -1 when the task
	// has no chain successor (Factor tasks, and EForest updates whose
	// source is an elimination-forest root). Every chain link is also a
	// dependence edge in Succ, which is what lets an asynchronous
	// executor release chain successors strictly in order by obeying the
	// dependence counters alone.
	ChainNext []int32
	// NumEdges is the total number of dependence edges.
	NumEdges int
}

// numTasks counts the task set shared by both variants: one F(k) per
// block column plus one U(k, j) per off-diagonal block of Ū.
func buildTasks(blockSym *symbolic.Result) (tasks []Task, factorID []int, updateID []map[int]int) {
	n := blockSym.N
	factorID = make([]int, n)
	updateID = make([]map[int]int, n)
	for k := 0; k < n; k++ {
		factorID[k] = len(tasks)
		tasks = append(tasks, Task{Kind: Factor, K: k})
	}
	for k := 0; k < n; k++ {
		row := blockSym.URows.Col(k) // sorted, row[0] == k
		if len(row) > 1 {
			updateID[k] = make(map[int]int, len(row)-1)
		}
		for _, j := range row {
			if j == k {
				continue
			}
			updateID[k][j] = len(tasks)
			tasks = append(tasks, Task{Kind: Update, K: k, J: j})
		}
	}
	return tasks, factorID, updateID
}

// New builds the dependence graph of the requested variant over the
// block symbolic structure. For the EForest variant, f must be the LU
// eforest of blockSym (etree.LUForest(blockSym)).
func New(blockSym *symbolic.Result, f *etree.Forest, v Variant) *Graph {
	tasks, factorID, updateID := buildTasks(blockSym)
	g := &Graph{
		Variant:   v,
		N:         blockSym.N,
		Tasks:     tasks,
		FactorID:  factorID,
		UpdateID:  updateID,
		Succ:      make([][]int32, len(tasks)),
		ChainNext: make([]int32, len(tasks)),
	}
	for i := range g.ChainNext {
		g.ChainNext[i] = -1
	}
	addEdge := func(from, to int) {
		g.Succ[from] = append(g.Succ[from], int32(to))
		g.NumEdges++
	}
	// addChainEdge adds a dependence edge that is also a link of the
	// destination's Theorem-4 update chain.
	addChainEdge := func(from, to int) {
		addEdge(from, to)
		g.ChainNext[from] = int32(to)
	}

	// Shared rule: F(k) → U(k, j) for every update sourced at k.
	for k := 0; k < g.N; k++ {
		for _, id := range sortedUpdateIDs(g, k) {
			addEdge(factorID[k], id)
		}
	}

	switch v {
	case SStar:
		// Serialize the updates of each destination column by ascending
		// source index, ending at F(j).
		incoming := make([][]int, g.N) // dest column -> update ids in source order
		for k := 0; k < g.N; k++ {
			row := blockSym.URows.Col(k)
			for _, j := range row {
				if j != k {
					incoming[j] = append(incoming[j], updateID[k][j])
				}
			}
		}
		// Sources were scanned in ascending k, so each incoming list is
		// already in ascending source order.
		for j := 0; j < g.N; j++ {
			chain := incoming[j]
			for t := 1; t < len(chain); t++ {
				addChainEdge(chain[t-1], chain[t])
			}
			if len(chain) > 0 {
				addChainEdge(chain[len(chain)-1], factorID[j])
			}
		}
	case EForest:
		if f == nil {
			panic("taskgraph: EForest variant needs the LU eforest")
		}
		for k := 0; k < g.N; k++ {
			for _, j := range blockSym.URows.Col(k) {
				if j == k {
					continue
				}
				id := updateID[k][j]
				p := f.Parent[k]
				switch {
				case p == etree.None:
					// k is a root: the update touches only rows above j
					// (earlier trees), so nothing waits on it and it
					// blocks nothing beyond its own factor dependence.
				case p == j:
					addChainEdge(id, factorID[j])
				case p < j:
					if nid, ok := updateID[p][j]; ok {
						addChainEdge(id, nid)
					} else {
						// Theorem 1 guarantees U(parent, j) exists when
						// the blocked structure is a static fixed point;
						// fall back to the conservative edge otherwise.
						addChainEdge(id, factorID[j])
					}
				default:
					// parent(k) > j cannot happen: ū_kj ≠ 0 forces
					// parent(k) ≤ j. Be conservative if it does.
					addChainEdge(id, factorID[j])
				}
			}
		}
	default:
		panic("taskgraph: unknown variant")
	}
	return g
}

// sortedUpdateIDs returns the update task ids sourced at block k in
// ascending destination order (deterministic edge order).
func sortedUpdateIDs(g *Graph, k int) []int {
	m := g.UpdateID[k]
	if len(m) == 0 {
		return nil
	}
	// Destinations are the tail of URows row k, already sorted when the
	// tasks were created in that order; ids increase with destination.
	ids := make([]int, 0, len(m))
	min := -1
	for _, id := range m {
		if min == -1 || id < min {
			min = id
		}
	}
	for i := 0; i < len(m); i++ {
		ids = append(ids, min+i)
	}
	return ids
}

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.Tasks) }

// InDegrees computes the number of predecessors of every task.
func (g *Graph) InDegrees() []int {
	in := make([]int, len(g.Tasks))
	for _, succ := range g.Succ {
		for _, s := range succ {
			in[s]++
		}
	}
	return in
}

// TopoOrder returns a topological order of the tasks, or an error if the
// graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	in := g.InDegrees()
	queue := make([]int, 0, len(in))
	for id, d := range in {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	order := make([]int, 0, len(in))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range g.Succ[id] {
			in[s]--
			if in[s] == 0 {
				queue = append(queue, int(s))
			}
		}
	}
	if len(order) != len(in) {
		return nil, fmt.Errorf("taskgraph: cycle detected (%d of %d tasks ordered)", len(order), len(in))
	}
	return order, nil
}

// CriticalPath returns the length of the longest weighted path through
// the DAG (the lower bound on parallel execution time) and the total
// weight, using cost[id] as the weight of task id. cost may be nil, in
// which case every task weighs 1.
func (g *Graph) CriticalPath(cost []float64) (cp, total float64, err error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, 0, err
	}
	w := func(id int) float64 {
		if cost == nil {
			return 1
		}
		return cost[id]
	}
	finish := make([]float64, len(g.Tasks))
	for _, id := range order {
		f := finish[id] + w(id)
		finish[id] = f
		total += w(id)
		if f > cp {
			cp = f
		}
		for _, s := range g.Succ[id] {
			if f > finish[s] {
				finish[s] = f
			}
		}
	}
	return cp, total, nil
}

// CriticalPathTasks returns one longest weighted path through the graph
// as an explicit task sequence, together with its length. Ties are
// broken toward smaller task ids, so the path is deterministic. cost may
// be nil for unit weights. The result is the *predicted* critical path;
// internal/trace computes the realized one from an execution, and
// comparing the two shows how much of the predicted chain the scheduler
// actually serialized on.
func (g *Graph) CriticalPathTasks(cost []float64) (path []int, cp float64, err error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	w := func(id int) float64 {
		if cost == nil {
			return 1
		}
		return cost[id]
	}
	finish := make([]float64, len(g.Tasks))
	pred := make([]int, len(g.Tasks))
	for i := range pred {
		pred[i] = -1
	}
	bestID := -1
	for _, id := range order {
		f := finish[id] + w(id)
		finish[id] = f
		if f > cp || (f == cp && (bestID == -1 || id < bestID)) {
			cp, bestID = f, id
		}
		for _, s := range g.Succ[id] {
			if f > finish[s] || (f == finish[s] && (pred[s] == -1 || id < pred[s])) {
				finish[s] = f
				pred[s] = id
			}
		}
	}
	for id := bestID; id != -1; id = pred[id] {
		path = append(path, id)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, cp, nil
}

// BottomLevels returns, for every task, the weighted length of the
// longest path from the task to any sink, including the task's own
// weight. Scheduling by descending bottom level is the classic
// critical-path list-scheduling priority. cost may be nil for unit
// weights.
func (g *Graph) BottomLevels(cost []float64) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	w := func(id int) float64 {
		if cost == nil {
			return 1
		}
		return cost[id]
	}
	bl := make([]float64, len(g.Tasks))
	for t := len(order) - 1; t >= 0; t-- {
		id := order[t]
		best := 0.0
		for _, s := range g.Succ[id] {
			if bl[s] > best {
				best = bl[s]
			}
		}
		bl[id] = best + w(id)
	}
	return bl, nil
}

// AvgParallelism is total work divided by the critical path — the
// upper bound on useful processors.
func (g *Graph) AvgParallelism(cost []float64) float64 {
	cp, total, err := g.CriticalPath(cost)
	if err != nil || cp == 0 {
		return 0
	}
	return total / cp
}

// Independent builds a degenerate dependence graph of n mutually
// independent Factor tasks — no edges, no chains. It lets callers drive
// embarrassingly parallel work (such as the per-subtree symbolic
// eliminations of the parallel analysis) through the same asynchronous
// executor as the numeric phase.
func Independent(n int) *Graph {
	g := &Graph{
		Variant:   EForest,
		N:         n,
		Tasks:     make([]Task, n),
		FactorID:  make([]int, n),
		UpdateID:  make([]map[int]int, n),
		Succ:      make([][]int32, n),
		ChainNext: make([]int32, n),
	}
	for k := 0; k < n; k++ {
		g.Tasks[k] = Task{Kind: Factor, K: k}
		g.FactorID[k] = k
		g.ChainNext[k] = -1
	}
	return g
}
