package taskgraph

import "testing"

// levelOf maps each task to its level index given the (order, off)
// encoding returned by LevelSets.
func levelOf(order, off []int32, n int) []int {
	lvl := make([]int, n)
	for l := 0; l+1 < len(off); l++ {
		for i := off[l]; i < off[l+1]; i++ {
			lvl[order[i]] = l
		}
	}
	return lvl
}

func TestLevelSetsHandDAG(t *testing.T) {
	// 0 → 2, 1 → 2, 2 → 3, 1 → 4; 5 isolated.
	//
	// level 0: {0, 1, 5}; level 1: {2, 4}; level 2: {3}
	succ := [][]int32{{2}, {2, 4}, {3}, {}, {}, {}}
	order, off, err := LevelSets(succ)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(succ) {
		t.Fatalf("order has %d entries, want %d", len(order), len(succ))
	}
	wantOff := []int32{0, 3, 5, 6}
	if len(off) != len(wantOff) {
		t.Fatalf("off = %v, want %v", off, wantOff)
	}
	for i := range wantOff {
		if off[i] != wantOff[i] {
			t.Fatalf("off = %v, want %v", off, wantOff)
		}
	}
	wantOrder := []int32{0, 1, 5, 2, 4, 3}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("order = %v, want %v (ids must be ascending within each level)", order, wantOrder)
		}
	}
}

// TestLevelSetsEdgesCrossLevels checks the defining property on a
// denser random-ish DAG: every edge goes from a strictly earlier level
// to a strictly later one, and each task appears exactly once.
func TestLevelSetsEdgesCrossLevels(t *testing.T) {
	const n = 200
	succ := make([][]int32, n)
	// Deterministic DAG: edges only v → w with w > v.
	for v := 0; v < n; v++ {
		for _, d := range []int{1, 3, 7, 31} {
			if w := v + d*(v%3+1); w < n {
				succ[v] = append(succ[v], int32(w))
			}
		}
	}
	order, off, err := LevelSets(succ)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, n)
	for _, id := range order {
		seen[id]++
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("task %d appears %d times in the order", v, c)
		}
	}
	lvl := levelOf(order, off, n)
	for v := range succ {
		for _, w := range succ[v] {
			if lvl[w] <= lvl[v] {
				t.Fatalf("edge %d(level %d) → %d(level %d) does not cross to a later level", v, lvl[v], w, lvl[w])
			}
		}
	}
}

func TestLevelSetsCycle(t *testing.T) {
	succ := [][]int32{{1}, {2}, {0}}
	if _, _, err := LevelSets(succ); err == nil {
		t.Fatal("LevelSets accepted a cyclic graph")
	}
}

func TestLevelSetsEmpty(t *testing.T) {
	order, off, err := LevelSets(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 0 || len(off) != 1 || off[0] != 0 {
		t.Fatalf("empty graph: order=%v off=%v, want empty order and off=[0]", order, off)
	}
}

// TestGraphLevelSets checks the Graph method agrees with the free
// function on the graph's Succ adjacency.
func TestGraphLevelSets(t *testing.T) {
	g := &Graph{
		Tasks: make([]Task, 5),
		Succ:  [][]int32{{2}, {2}, {4}, {4}, {}},
	}
	order, off, err := g.LevelSets()
	if err != nil {
		t.Fatal(err)
	}
	lvl := levelOf(order, off, g.NumTasks())
	for v := range g.Succ {
		for _, w := range g.Succ[v] {
			if lvl[w] <= lvl[v] {
				t.Fatalf("edge %d → %d does not cross levels", v, w)
			}
		}
	}
}
