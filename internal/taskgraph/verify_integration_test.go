// External test wiring the machine-checked invariants of
// internal/verify into the task graph package: every graph New()
// produces must be a DAG with consistent task/edge bookkeeping, and the
// eforest variant must carry exactly the least necessary dependences
// of Theorem 4 — no edge joins tasks of independent subtrees, and every
// U(i,k)→U(i',k) chain steps through parent(i) = i'.
package taskgraph_test

import (
	"math/rand"
	"testing"

	"repro/internal/etree"
	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/taskgraph"
	"repro/internal/verify"
)

func randomZeroFreeDiag(n int, density float64, rng *rand.Rand) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Add(i, i, 1+rng.Float64())
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				t.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

func analysis(t *testing.T, a *sparse.CSC) (*symbolic.Result, *etree.Forest) {
	t.Helper()
	sym, err := symbolic.Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	return sym, etree.LUForest(sym)
}

func TestGraphInvariantsRandom(t *testing.T) {
	for _, seed := range []int64{3, 17, 99, 512} {
		rng := rand.New(rand.NewSource(seed))
		a := randomZeroFreeDiag(30+rng.Intn(50), 0.1, rng)
		sym, forest := analysis(t, a)
		for _, v := range []taskgraph.Variant{taskgraph.EForest, taskgraph.SStar} {
			g := taskgraph.New(sym, forest, v)
			if err := verify.VerifyDAG(g); err != nil {
				t.Errorf("seed %d %v: %v", seed, v, err)
			}
		}
		g := taskgraph.New(sym, forest, taskgraph.EForest)
		if err := verify.VerifyLeastDependences(g, forest); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestGraphInvariantsSmallSuite(t *testing.T) {
	for _, spec := range matgen.SmallSuite()[:2] {
		a := spec.Gen()
		sym, forest := analysis(t, a)
		g := taskgraph.New(sym, forest, taskgraph.EForest)
		if err := verify.VerifyDAG(g); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if err := verify.VerifyLeastDependences(g, forest); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}
