package experiments

import (
	"strings"
	"testing"

	"repro/internal/matgen"
)

func small(t *testing.T) []matgen.Spec {
	t.Helper()
	return matgen.SmallSuite()[:3] // keep the test quick
}

func TestTable1(t *testing.T) {
	rows, err := Table1(small(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FillRatio < 1 || r.FactorNNZ < r.NNZ {
			t.Fatalf("%s: implausible fill: %+v", r.Name, r)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, rows[0].Name) {
		t.Fatalf("format missing content:\n%s", out)
	}
}

func TestTable2Sim(t *testing.T) {
	rows, err := Table2(small(t), []int{1, 2, 4, 8}, Sim)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Seconds) != 4 {
			t.Fatalf("%s: %d times", r.Name, len(r.Seconds))
		}
		for _, s := range r.Seconds {
			if s <= 0 {
				t.Fatalf("%s: non-positive time", r.Name)
			}
		}
		if r.Speedup <= 1 {
			t.Fatalf("%s: simulated speedup %g at P=8 not above 1", r.Name, r.Speedup)
		}
	}
	out := FormatTable2(rows, Sim)
	if !strings.Contains(out, "P=8") {
		t.Fatalf("format missing header:\n%s", out)
	}
}

func TestTable2Real(t *testing.T) {
	rows, err := Table2(small(t)[:1], []int{1, 2}, Real)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Seconds) != 2 {
		t.Fatal("wrong shape")
	}
	for _, s := range rows[0].Seconds {
		if s <= 0 {
			t.Fatal("non-positive wall time")
		}
	}
}

func TestTable3(t *testing.T) {
	rows, err := Table3(small(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SN < 1 || r.SNPO < 1 || r.NoBlks < 1 {
			t.Fatalf("%s: %+v", r.Name, r)
		}
		if r.SNPO > r.SN {
			t.Fatalf("%s: postordering increased supernodes %d→%d", r.Name, r.SN, r.SNPO)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "SN/SNPO") {
		t.Fatalf("format wrong:\n%s", out)
	}
}

func TestFigure(t *testing.T) {
	rows, err := Figure(small(t)[:2], []int{2, 4, 8}, Sim)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Improvement) != 3 {
			t.Fatalf("%s: %d points", r.Name, len(r.Improvement))
		}
		for i, v := range r.Improvement {
			if v < -0.10 {
				t.Fatalf("%s P=%d: eforest graph more than 10%% slower (%g)", r.Name, r.Procs[i], v)
			}
		}
	}
	out := FormatFigure(rows, 5, Sim)
	if !strings.Contains(out, "Figure 5") {
		t.Fatalf("format wrong:\n%s", out)
	}
}

func TestFilterSpecs(t *testing.T) {
	suite := matgen.SmallSuite()
	got := FilterSpecs(suite, Figure6Matrices)
	if len(got) != 3 {
		t.Fatalf("filtered %d specs, want 3", len(got))
	}
	names := map[string]bool{}
	for _, s := range got {
		names[s.Name] = true
	}
	for _, want := range []string{"lns-s", "lnsp-s", "saylr-s"} {
		if !names[want] {
			t.Fatalf("missing %s in %v", want, names)
		}
	}
}

func TestAblationPostorder(t *testing.T) {
	rows, err := AblationPostorderTime(small(t)[:1], 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatAblation("postorder ablation", rows)
	if !strings.Contains(out, "postorder=on") {
		t.Fatalf("format wrong:\n%s", out)
	}
}

func TestAblationAmalgamation(t *testing.T) {
	rows, err := AblationAmalgamation(small(t)[0], []int{1, 8, 32}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestAblationOrdering(t *testing.T) {
	rows, err := AblationOrdering(small(t)[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var mindeg, natural float64
	for _, r := range rows {
		switch r.Config {
		case "ordering=mindeg":
			mindeg = r.Value
		case "ordering=natural":
			natural = r.Value
		}
	}
	if mindeg > natural {
		t.Fatalf("minimum degree fill %g worse than natural %g", mindeg, natural)
	}
}

func TestBlockUTCheck(t *testing.T) {
	rows, err := BlockUTCheck(small(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Value < 1 {
			t.Fatalf("%s: %g diagonal blocks", r.Name, r.Value)
		}
	}
}

func TestStructureBounds(t *testing.T) {
	rows, err := StructureBounds(small(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Dynamic > r.Static {
			t.Fatalf("%s: dynamic fill %d above static bound %d", r.Name, r.Dynamic, r.Static)
		}
		if r.Static > r.SuperLU {
			t.Fatalf("%s: static %d above SuperLU bound %d", r.Name, r.Static, r.SuperLU)
		}
		if r.StaticOver < 1 || r.SuperLUOver < r.StaticOver {
			t.Fatalf("%s: ratios wrong: %+v", r.Name, r)
		}
	}
	out := FormatBounds(rows)
	if !strings.Contains(out, "superlu") {
		t.Fatalf("format wrong:\n%s", out)
	}
}
