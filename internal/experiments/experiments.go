// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 5). It is shared by cmd/paperbench and the
// root benchmark suite.
//
// Table 2 and Figures 5–6 report parallel execution times. Two modes are
// provided: Real measures wall-clock time of the goroutine executor
// (meaningful only on a multi-core host), Sim runs the deterministic
// discrete-event simulator with the Origin 2000 machine model — the
// documented substitution for the paper's testbed (see DESIGN.md).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/etree"
	"repro/internal/gplu"
	"repro/internal/matgen"
	"repro/internal/ordering"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/supernode"
	"repro/internal/symbolic"
	"repro/internal/taskgraph"
	"repro/internal/transversal"
)

// Mode selects how parallel times are obtained.
type Mode int

const (
	// Sim uses the discrete-event Origin 2000 simulator (deterministic).
	Sim Mode = iota
	// Real measures wall-clock time of the goroutine executor.
	Real
)

// String names the mode.
func (m Mode) String() string {
	if m == Real {
		return "real"
	}
	return "sim"
}

// DefaultProcs is the processor set of the paper's Table 2.
var DefaultProcs = []int{1, 2, 4, 8}

// prepared caches everything derivable from one matrix so the individual
// experiments do not repeat the expensive analysis.
type prepared struct {
	name   string
	a      *sparse.CSC
	sym    *core.Symbolic // postordered, eforest graph
	graphS *taskgraph.Graph
	costsS *taskgraph.CostModel
}

func prepare(spec matgen.Spec) (*prepared, error) {
	a := spec.Gen()
	opts := core.DefaultOptions()
	s, err := core.Analyze(a, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	gs := taskgraph.New(s.BlockSym, s.BlockForest, taskgraph.SStar)
	return &prepared{
		name:   spec.Name,
		a:      a,
		sym:    s,
		graphS: gs,
		costsS: taskgraph.NewCostModel(gs, s.BlockSym, s.Part),
	}, nil
}

// ---------------------------------------------------------------------
// Table 1: benchmark matrices.

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	Name      string
	Order     int
	NNZ       int
	FactorNNZ int
	FillRatio float64 // |Ā| / |A|
}

// Table1 computes order, nonzeros and static fill ratio for each matrix.
func Table1(specs []matgen.Spec) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(specs))
	for _, spec := range specs {
		p, err := prepare(spec)
		if err != nil {
			return nil, err
		}
		st := p.sym.Stats
		rows = append(rows, Table1Row{
			Name:      spec.Name,
			Order:     st.N,
			NNZ:       st.NNZA,
			FactorNNZ: st.NNZFactors,
			FillRatio: st.FillRatio,
		})
	}
	return rows, nil
}

// FormatTable1 renders the rows like the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Benchmark matrices.\n")
	fmt.Fprintf(&b, "%-10s %8s %10s %12s %10s\n", "Matrix", "Order", "|A|", "|Abar|", "|Abar|/|A|")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %10d %12d %10.1f\n", r.Name, r.Order, r.NNZ, r.FactorNNZ, r.FillRatio)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Table 2: parallel numeric factorization time.

// Table2Row reports the factorization time per processor count.
type Table2Row struct {
	Name    string
	Procs   []int
	Seconds []float64
	// Speedup is Seconds[0·(P=1)] / Seconds[last].
	Speedup float64
}

// Table2 measures (or simulates) the numeric factorization time of each
// matrix on each processor count, with the paper's default configuration
// (postordering on, eforest task graph).
func Table2(specs []matgen.Spec, procs []int, mode Mode) ([]Table2Row, error) {
	rows := make([]Table2Row, 0, len(specs))
	for _, spec := range specs {
		p, err := prepare(spec)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Name: spec.Name, Procs: procs}
		for _, np := range procs {
			secs, err := timeFactorization(p, p.sym.Graph, p.sym.Costs, np, mode)
			if err != nil {
				return nil, fmt.Errorf("%s P=%d: %w", spec.Name, np, err)
			}
			row.Seconds = append(row.Seconds, secs)
		}
		if len(row.Seconds) > 1 && row.Seconds[len(row.Seconds)-1] > 0 {
			row.Speedup = row.Seconds[0] / row.Seconds[len(row.Seconds)-1]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// timeFactorization returns the time of the numeric phase under the
// given task graph and processor count. Both modes use task-level
// scheduling (any task on any processor), matching the paper's RAPID
// runtime on the shared-memory Origin 2000; the 1-D block-column owner
// mapping remains available through the sched package for ablations.
func timeFactorization(p *prepared, g *taskgraph.Graph, cm *taskgraph.CostModel, procs int, mode Mode) (float64, error) {
	if mode == Sim {
		// Inspector-executor model of RAPID: static schedule from the
		// estimated costs, in-order execution with ±50% deterministic
		// per-task time deviation (cache/NUMA variability on the
		// Origin 2000). Both graph variants see identical task times.
		res, err := sched.SimulateStatic(g, cm, sched.Origin2000(procs), sched.PanelWords(g, cm),
			sched.Perturb{Amplitude: 0.5, Seed: 2000})
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}
	// Real: run the numeric phase on a copy of the analysis with the
	// requested worker count and graph.
	s := *p.sym
	s.Graph = g
	s.Costs = cm
	s.Opts.Workers = procs
	start := time.Now()
	if _, err := core.FactorizeGlobal(&s, p.a); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// FormatTable2 renders the rows like the paper's Table 2.
func FormatTable2(rows []Table2Row, mode Mode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Time performance (in seconds, %s) of the factorization.\n", mode)
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-10s", "Mat")
	for _, p := range rows[0].Procs {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintf(&b, " %9s\n", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Name)
		for _, s := range r.Seconds {
			fmt.Fprintf(&b, " %9.3f", s)
		}
		fmt.Fprintf(&b, " %9.2f\n", r.Speedup)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Table 3: supernode sizes without/with postordering.

// Table3Row reports the supernode counts of one matrix.
type Table3Row struct {
	Name string
	// NoBlks is the number of diagonal blocks of the block upper
	// triangular decomposition (trees of the postordered eforest).
	NoBlks int
	// SN is the supernode count without postordering, SNPO with.
	SN, SNPO int
	// Ratio is SN/SNPO (> 1 means postordering helped).
	Ratio float64
}

// Table3 measures supernode counts before and after postordering, using
// the same L/U supernode partition + amalgamation in both cases, exactly
// like the paper's methodology.
func Table3(specs []matgen.Spec) ([]Table3Row, error) {
	rows := make([]Table3Row, 0, len(specs))
	for _, spec := range specs {
		a := spec.Gen()
		noPO := core.DefaultOptions()
		noPO.Postorder = false
		sNo, err := core.Analyze(a, noPO)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		withPO := core.DefaultOptions()
		sPO, err := core.Analyze(a, withPO)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		row := Table3Row{
			Name:   spec.Name,
			NoBlks: sPO.Stats.NumTrees,
			SN:     sNo.Stats.Supernodes,
			SNPO:   sPO.Stats.Supernodes,
		}
		if row.SNPO > 0 {
			row.Ratio = float64(row.SN) / float64(row.SNPO)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable3 renders the rows like the paper's Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. Supernode counts without/with postordering.\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %9s\n", "Name", "NoBlks", "SN", "SNPO", "SN/SNPO")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %8d %8d %9.2f\n", r.Name, r.NoBlks, r.SN, r.SNPO, r.Ratio)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figures 5 and 6: improvement of the new task dependence graph.

// FigureRow reports, for one matrix, the relative improvement
// 1 − T(eforest)/T(S*) at each processor count.
type FigureRow struct {
	Name        string
	Procs       []int
	Improvement []float64
	TimeSStar   []float64
	TimeEForest []float64
}

// Figure5Matrices and Figure6Matrices name the matrices of each figure.
var (
	Figure5Matrices = []string{"sherman3", "sherman5", "orsreg1", "goodwin"}
	Figure6Matrices = []string{"lns3937", "lnsp3937", "saylr4"}
)

// FilterSpecs selects the named specs from a suite (matching on prefix
// so reduced suites like "sherman3-s" map onto figure matrix lists).
func FilterSpecs(specs []matgen.Spec, names []string) []matgen.Spec {
	var out []matgen.Spec
	for _, want := range names {
		for _, s := range specs {
			if s.Name == want || strings.HasPrefix(want, strings.TrimSuffix(s.Name, "-s")) || strings.HasPrefix(s.Name, want) {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// Figure computes the task-graph improvement series for the given
// matrices: both dependence graphs run with identical partition,
// mapping, machine and cost model; only the dependences differ.
func Figure(specs []matgen.Spec, procs []int, mode Mode) ([]FigureRow, error) {
	rows := make([]FigureRow, 0, len(specs))
	for _, spec := range specs {
		p, err := prepare(spec)
		if err != nil {
			return nil, err
		}
		row := FigureRow{Name: spec.Name, Procs: procs}
		for _, np := range procs {
			tOld, err := timeFactorization(p, p.graphS, p.costsS, np, mode)
			if err != nil {
				return nil, err
			}
			tNew, err := timeFactorization(p, p.sym.Graph, p.sym.Costs, np, mode)
			if err != nil {
				return nil, err
			}
			row.TimeSStar = append(row.TimeSStar, tOld)
			row.TimeEForest = append(row.TimeEForest, tNew)
			imp := 0.0
			if tOld > 0 {
				imp = 1 - tNew/tOld
			}
			row.Improvement = append(row.Improvement, imp)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure renders the improvement series like the paper's Figures
// 5/6 ("1-PT(new_method)/PT(old_method)" per processor count).
func FormatFigure(rows []FigureRow, figNum int, mode Mode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d. Performance improvement 1 - T(new)/T(S*) by using the new task dependence graph (%s).\n", figNum, mode)
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s", "# proc")
	for _, p := range rows[0].Procs {
		fmt.Fprintf(&b, " %9d", p)
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.Name)
		for _, v := range r.Improvement {
			fmt.Fprintf(&b, " %8.1f%%", 100*v)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md section 5).

// AblationRow is a generic (name, configuration, value) record.
type AblationRow struct {
	Name   string
	Config string
	Value  float64
}

// AblationPostorderTime compares simulated factorization time with and
// without postordering at the given processor count.
func AblationPostorderTime(specs []matgen.Spec, procs int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, spec := range specs {
		for _, post := range []bool{false, true} {
			a := spec.Gen()
			opts := core.DefaultOptions()
			opts.Postorder = post
			s, err := core.Analyze(a, opts)
			if err != nil {
				return nil, err
			}
			res, err := sched.Simulate(s.Graph, s.Costs, sched.BlockCyclic(s.Graph.N, procs), sched.Origin2000(procs), sched.PanelWords(s.Graph, s.Costs))
			if err != nil {
				return nil, err
			}
			cfg := "postorder=off"
			if post {
				cfg = "postorder=on"
			}
			rows = append(rows, AblationRow{Name: spec.Name, Config: cfg, Value: res.Makespan})
		}
	}
	return rows, nil
}

// AblationAmalgamation sweeps the amalgamation MaxSize and reports
// supernode count and simulated time.
func AblationAmalgamation(spec matgen.Spec, sizes []int, procs int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, sz := range sizes {
		a := spec.Gen()
		opts := core.DefaultOptions()
		opts.Amalgamation = supernode.AmalgamationOptions{MaxSize: sz, MaxFill: 0.25}
		s, err := core.Analyze(a, opts)
		if err != nil {
			return nil, err
		}
		res, err := sched.Simulate(s.Graph, s.Costs, sched.BlockCyclic(s.Graph.N, procs), sched.Origin2000(procs), sched.PanelWords(s.Graph, s.Costs))
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name:   spec.Name,
			Config: fmt.Sprintf("maxsize=%d (SN=%d)", sz, s.Stats.Supernodes),
			Value:  res.Makespan,
		})
	}
	return rows, nil
}

// AblationOrdering compares fill ratios across ordering methods.
func AblationOrdering(specs []matgen.Spec) ([]AblationRow, error) {
	var rows []AblationRow
	for _, spec := range specs {
		for _, ord := range []struct {
			name string
			m    ordering.Method
		}{{"mindeg", ordering.MinDegreeATA}, {"natural", ordering.Natural}, {"rcm", ordering.RCMATA}} {
			a := spec.Gen()
			opts := core.DefaultOptions()
			opts.Ordering = ord.m
			s, err := core.Analyze(a, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{Name: spec.Name, Config: "ordering=" + ord.name, Value: s.Stats.FillRatio})
		}
	}
	return rows, nil
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-24s %12.6g\n", r.Name, r.Config, r.Value)
	}
	return b.String()
}

// BoundsRow compares, for one matrix, the actual dynamic fill of a
// Gilbert–Peierls factorization against the static George–Ng bound |Ā|
// and the SuperLU-style column-etree (AᵀA Cholesky) bound — the
// quantitative version of the paper's Section 3 remark that the column
// elimination tree "substantially overestimates" the structures.
type BoundsRow struct {
	Name        string
	Dynamic     int // nnz(L+U)−n from Gilbert–Peierls (exact fill)
	Static      int // |Ā| from the George–Ng static symbolic factorization
	SuperLU     int // 2·|chol(AᵀA)|−n
	StaticOver  float64
	SuperLUOver float64
}

// StructureBounds computes the three structure sizes for each matrix,
// using the same transversal + minimum-degree permutation for all three.
func StructureBounds(specs []matgen.Spec) ([]BoundsRow, error) {
	var rows []BoundsRow
	for _, spec := range specs {
		a := spec.Gen()
		tr := transversal.MaximumTransversal(a)
		if !tr.StructurallyNonsingular() {
			return nil, fmt.Errorf("%s: structurally singular", spec.Name)
		}
		a1 := a.PermuteRows(tr.RowPerm)
		perm := ordering.ColumnOrdering(a1, ordering.MinDegreeATA)
		ap := a1.PermuteSym(perm)

		sym, err := symbolic.Factor(ap)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		gf, err := gplu.Factor(ap, sparse.Identity(ap.NCols))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		row := BoundsRow{
			Name:    spec.Name,
			Dynamic: gf.FactorNNZ(),
			Static:  sym.NNZ(),
			SuperLU: symbolic.SuperLUBound(ap),
		}
		row.StaticOver = float64(row.Static) / float64(row.Dynamic)
		row.SuperLUOver = float64(row.SuperLU) / float64(row.Dynamic)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatBounds renders the structure-bound comparison.
func FormatBounds(rows []BoundsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Structure bounds: dynamic fill (Gilbert–Peierls) vs static |Abar| vs column-etree (SuperLU) bound.\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %9s %9s\n", "Name", "dynamic", "static", "superlu", "stat/dyn", "slu/dyn")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10d %10d %10d %9.2f %9.2f\n",
			r.Name, r.Dynamic, r.Static, r.SuperLU, r.StaticOver, r.SuperLUOver)
	}
	return b.String()
}

// BlockUTCheck verifies the Section 3 claim on a suite: after
// postordering, the structure is block upper triangular with the eforest
// trees as diagonal blocks. Returns the per-matrix tree counts.
func BlockUTCheck(specs []matgen.Spec) ([]AblationRow, error) {
	var rows []AblationRow
	for _, spec := range specs {
		a := spec.Gen()
		s, err := core.Analyze(a, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		ranges := s.Forest.TreeRanges()
		if i, j := etree.BlockUpperTriangular(s.Sym, ranges); i != -1 {
			return nil, fmt.Errorf("%s: entry (%d,%d) violates the block upper triangular form", spec.Name, i, j)
		}
		rows = append(rows, AblationRow{Name: spec.Name, Config: "diagonal blocks", Value: float64(len(ranges))})
	}
	return rows, nil
}
