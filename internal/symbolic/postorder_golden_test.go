// Golden test for Theorem 1 of the paper: postordering the LU
// elimination forest is a symmetric relabeling that leaves the fill of
// the static factors unchanged — |L̄+Ū| before and after the postorder
// permutation must match exactly. The counts are pinned so a regression
// in the symbolic factorization, the eforest construction or the
// postorder itself shows up as a changed constant, not just as a broken
// relation.
//
// The file is an external test package so it can close the loop through
// internal/etree and internal/verify without an import cycle.
package symbolic_test

import (
	"testing"

	"repro/internal/etree"
	"repro/internal/matgen"
	"repro/internal/symbolic"
	"repro/internal/verify"
)

// goldenFill maps each small benchmark pattern to |L̄+Ū| of its static
// symbolic factorization in natural order. Computed once from the seed
// implementation; these are structural quantities with no float
// tolerance involved.
var goldenFill = map[string]int{
	"sherman3-s": 16497,
	"sherman5-s": 34348,
	"lnsp-s":     5039,
	"lns-s":      5683,
	"orsreg-s":   22434,
	"saylr-s":    23784,
	"goodwin-s":  9869,
}

func TestPostorderPreservesFillGolden(t *testing.T) {
	tested := 0
	for _, spec := range matgen.SmallSuite() {
		want, ok := goldenFill[spec.Name]
		if !ok {
			t.Errorf("no golden fill count for %s — add it", spec.Name)
			continue
		}
		tested++
		a := spec.Gen()
		sym, err := symbolic.Factor(a)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if got := sym.NNZ(); got != want {
			t.Errorf("%s: |L̄+Ū| = %d, golden %d", spec.Name, got, want)
		}

		// Theorem 1: refactoring the postorder-permuted matrix yields the
		// same fill, entry count included.
		forest := etree.LUForest(sym)
		perm := forest.PostOrder()
		symPO, err := symbolic.Factor(a.PermuteSym(perm))
		if err != nil {
			t.Fatalf("%s postordered: %v", spec.Name, err)
		}
		if symPO.NNZ() != sym.NNZ() {
			t.Errorf("%s: postordering changed fill %d → %d (violates Theorem 1)",
				spec.Name, sym.NNZ(), symPO.NNZ())
		}

		// Theorems 1–3 in full: the permuted pattern is the relabeled
		// pattern, column by column, and the relabeled forest is
		// postordered.
		if err := verify.VerifyPostorderInvariance(a, sym, forest); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
	if tested < 3 {
		t.Fatalf("only %d patterns tested; the golden suite needs at least 3", tested)
	}
}
