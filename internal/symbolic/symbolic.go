// Package symbolic implements the static symbolic factorization of
// George and Ng ['87] as used by S*/S+: it computes structures L̄ and Ū
// that contain the nonzeros of the L and U factors of PA for *every* row
// permutation P that partial pivoting could produce. The LU elimination
// forest, supernode partition and task graph are all defined on Ā = L̄ +
// Ū − I.
//
// The algorithm is symbolic Gaussian elimination where, at step k, the
// structures of all candidate pivot rows (rows i ≥ k whose current
// structure contains column k) are replaced by their union. Because the
// candidate rows of a step end up with identical structures, rows are
// kept in groups that only ever merge, which makes the whole computation
// run in roughly O(|Ā|) time.
package symbolic

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// Result is the static symbolic factorization of a matrix.
type Result struct {
	N int
	// L is the structure of L̄: lower triangular including the unit
	// diagonal, stored column-wise (Col(k) = sorted row indices ≥ k).
	L *sparse.Pattern
	// U is the structure of Ū: upper triangular including the diagonal,
	// stored column-wise.
	U *sparse.Pattern
	// URows is the structure of Ū stored row-wise (URows.Col(i) = sorted
	// column indices of row i of Ū, all ≥ i). It is the transpose view
	// of U, kept because the LU eforest is defined on rows of Ū.
	URows *sparse.Pattern
}

// NNZ returns |Ā| = nnz(L̄) + nnz(Ū) − n (the diagonal is shared).
func (r *Result) NNZ() int {
	return r.L.NNZ() + r.U.NNZ() - r.N
}

// FillRatio returns |Ā| / nnzA, the factor-entry ratio reported in the
// paper's Table 1.
func (r *Result) FillRatio(nnzA int) float64 {
	return float64(r.NNZ()) / float64(nnzA)
}

// Factor computes the static symbolic factorization of a square matrix
// with a zero-free diagonal (run the transversal first if needed).
func Factor(a *sparse.CSC) (*Result, error) {
	if a.NRows != a.NCols {
		return nil, fmt.Errorf("symbolic: matrix must be square, got %d×%d", a.NRows, a.NCols)
	}
	n := a.NCols
	if !a.HasZeroFreeDiagonal() {
		return nil, fmt.Errorf("symbolic: matrix diagonal has structural zeros; apply a maximum transversal first")
	}

	// Row structures of A (positions of nonzeros in each row).
	at := sparse.PatternOf(a).Transpose() // Col(i) = row i of A

	// Groups of rows with identical current structure.
	type group struct {
		alive   bool
		members []int32 // positions (rows); stale members < current k pruned lazily
		cols    []int32 // sorted structure; stale columns < current k pruned lazily
	}
	groups := make([]*group, n, 2*n)
	rowGroup := make([]int32, n) // position -> current group id (updated on merge)
	for i := 0; i < n; i++ {
		src := at.Col(i)
		cols := make([]int32, len(src))
		for t, c := range src {
			cols[t] = int32(c)
		}
		groups[i] = &group{alive: true, members: []int32{int32(i)}, cols: cols}
		rowGroup[i] = int32(i)
	}

	// colGroups[k] lists group ids whose structure (at some point)
	// contained column k; consumed at step k, may contain stale ids.
	colGroups := make([][]int32, n)
	for gid, g := range groups {
		for _, c := range g.cols {
			colGroups[c] = append(colGroups[c], int32(gid))
		}
	}

	marker := make([]int32, n)
	for i := range marker {
		marker[i] = -1
	}

	lCols := make([][]int32, n) // column k of L̄ (rows > k; diag added at pack time)
	uRowLen := make([]int, n)   // length of row k of Ū incl diagonal
	uRows := make([][]int32, n) // row k of Ū (cols > k)

	for k := 0; k < n; k++ {
		// Collect live candidate groups (deduplicated).
		cand := colGroups[k]
		colGroups[k] = nil
		seen := make(map[int32]bool, len(cand))
		var live []*group
		var liveIDs []int32
		for _, gid := range cand {
			g := groups[gid]
			if !g.alive || seen[gid] {
				continue
			}
			seen[gid] = true
			// Verify the group's structure still contains k (merges keep
			// all columns, so containment persists; stale ids are dead).
			live = append(live, g)
			liveIDs = append(liveIDs, gid)
		}
		if len(live) == 0 {
			// Should not happen for a zero-free diagonal.
			return nil, fmt.Errorf("symbolic: no candidate rows at step %d", k)
		}

		// L̄ column k: all members ≥ k of the candidate groups, and the
		// union of their structures (columns ≥ k).
		var lcol []int32
		var union []int32
		for _, g := range live {
			w := g.members[:0]
			for _, m := range g.members {
				if int(m) >= k {
					w = append(w, m)
					if int(m) > k {
						lcol = append(lcol, m)
					}
				}
			}
			g.members = w
			for _, c := range g.cols {
				if int(c) >= k && marker[c] != int32(k) {
					marker[c] = int32(k)
					union = append(union, c)
				}
			}
		}
		sort.Slice(lcol, func(a, b int) bool { return lcol[a] < lcol[b] })
		sort.Slice(union, func(a, b int) bool { return union[a] < union[b] })
		lCols[k] = lcol
		// union[0] must be k itself.
		if len(union) == 0 || union[0] != int32(k) {
			return nil, fmt.Errorf("symbolic: step %d union does not start at the diagonal", k)
		}
		uRows[k] = append([]int32(nil), union[1:]...)
		uRowLen[k] = len(union)

		// Merge candidates into one surviving group.
		var surv *group
		var survID int32
		if len(live) == 1 {
			surv, survID = live[0], liveIDs[0]
			surv.cols = union[1:] // trim eliminated column k
			// Retire position k from members.
			w := surv.members[:0]
			for _, m := range surv.members {
				if int(m) != k {
					w = append(w, m)
				}
			}
			surv.members = w
			if len(surv.members) == 0 || len(surv.cols) == 0 {
				surv.alive = false
			}
			continue
		}
		// Build a fresh merged group.
		var members []int32
		for _, g := range live {
			for _, m := range g.members {
				if int(m) != k {
					members = append(members, m)
				}
			}
			g.alive = false
			g.members = nil
			g.cols = nil
		}
		cols := append([]int32(nil), union[1:]...)
		surv = &group{alive: len(members) > 0 && len(cols) > 0, members: members, cols: cols}
		survID = int32(len(groups))
		groups = append(groups, surv)
		for _, m := range members {
			rowGroup[m] = survID
		}
		if surv.alive {
			for _, c := range cols {
				colGroups[c] = append(colGroups[c], survID)
			}
		}
	}

	// Pack results.
	l := &sparse.Pattern{NRows: n, NCols: n, ColPtr: make([]int, n+1)}
	for k := 0; k < n; k++ {
		l.ColPtr[k+1] = l.ColPtr[k] + 1 + len(lCols[k])
	}
	l.RowInd = make([]int, l.ColPtr[n])
	for k := 0; k < n; k++ {
		p := l.ColPtr[k]
		l.RowInd[p] = k
		for t, m := range lCols[k] {
			l.RowInd[p+1+t] = int(m)
		}
	}

	ur := &sparse.Pattern{NRows: n, NCols: n, ColPtr: make([]int, n+1)}
	for k := 0; k < n; k++ {
		ur.ColPtr[k+1] = ur.ColPtr[k] + uRowLen[k]
	}
	ur.RowInd = make([]int, ur.ColPtr[n])
	for k := 0; k < n; k++ {
		p := ur.ColPtr[k]
		ur.RowInd[p] = k
		for t, c := range uRows[k] {
			ur.RowInd[p+1+t] = int(c)
		}
	}
	u := ur.Transpose()

	return &Result{N: n, L: l, U: u, URows: ur}, nil
}
