// Package symbolic implements the static symbolic factorization of
// George and Ng ['87] as used by S*/S+: it computes structures L̄ and Ū
// that contain the nonzeros of the L and U factors of PA for *every* row
// permutation P that partial pivoting could produce. The LU elimination
// forest, supernode partition and task graph are all defined on Ā = L̄ +
// Ū − I.
//
// The algorithm is symbolic Gaussian elimination where, at step k, the
// structures of all candidate pivot rows (rows i ≥ k whose current
// structure contains column k) are replaced by their union. Because the
// candidate rows of a step end up with identical structures, rows are
// kept in groups that only ever merge, which makes the whole computation
// run in roughly O(|Ā|) time.
//
// The group-merging loop lives in a reusable engine (engine.go) that can
// run over any subset of the columns: Factor drives it over all columns
// serially, FactorParallel (parallel.go) runs one engine per independent
// column-etree subtree concurrently and a final engine over the shared
// top region, and FactorDelta (delta.go) re-runs only the engines whose
// input rows changed. All three produce identical Results: the per-column
// outputs of the elimination are set functions of the matrix pattern,
// independent of the merge schedule, and the engine sorts them before
// packing.
package symbolic

import (
	"fmt"

	"repro/internal/sparse"
)

// Result is the static symbolic factorization of a matrix.
type Result struct {
	N int
	// L is the structure of L̄: lower triangular including the unit
	// diagonal, stored column-wise (Col(k) = sorted row indices ≥ k).
	L *sparse.Pattern
	// U is the structure of Ū: upper triangular including the diagonal,
	// stored column-wise.
	U *sparse.Pattern
	// URows is the structure of Ū stored row-wise (URows.Col(i) = sorted
	// column indices of row i of Ū, all ≥ i). It is the transpose view
	// of U, kept because the LU eforest is defined on rows of Ū.
	URows *sparse.Pattern
}

// NNZ returns |Ā| = nnz(L̄) + nnz(Ū) − n (the diagonal is shared).
func (r *Result) NNZ() int {
	return r.L.NNZ() + r.U.NNZ() - r.N
}

// FillRatio returns |Ā| / nnzA, the factor-entry ratio reported in the
// paper's Table 1.
func (r *Result) FillRatio(nnzA int) float64 {
	return float64(r.NNZ()) / float64(nnzA)
}

// checkSquareZeroFree validates the Factor preconditions.
func checkSquareZeroFree(a *sparse.CSC) error {
	if a.NRows != a.NCols {
		return fmt.Errorf("symbolic: matrix must be square, got %d×%d", a.NRows, a.NCols)
	}
	if !a.HasZeroFreeDiagonal() {
		return fmt.Errorf("symbolic: matrix diagonal has structural zeros; apply a maximum transversal first")
	}
	return nil
}

// Factor computes the static symbolic factorization of a square matrix
// with a zero-free diagonal (run the transversal first if needed).
func Factor(a *sparse.CSC) (*Result, error) {
	if err := checkSquareZeroFree(a); err != nil {
		return nil, err
	}
	n := a.NCols

	// Row structures of A (positions of nonzeros in each row).
	at := sparse.PatternOf(a).Transpose() // Col(i) = row i of A

	out := newColumns(n)
	e := newEngine(n, out)
	for i := 0; i < n; i++ {
		e.seedRow(int32(i), at.Col(i))
	}
	if err := e.run(nil); err != nil { // nil steps = all columns 0..n-1
		return nil, err
	}
	return out.pack(), nil
}
