package symbolic_test

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/matgen"
	"repro/internal/ordering"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// orderedSuite yields the small-suite matrices after the same
// fill-reducing ordering core.Analyze applies before its symbolic
// stage — the bushy AᵀA etree that ordering produces is what makes
// subtree partitioning effective (a natural band ordering degenerates
// to a path, where PartitionColumns correctly declines to partition).
func orderedSuite() []matgen.Spec {
	specs := matgen.SmallSuite()
	out := make([]matgen.Spec, len(specs))
	for i, spec := range specs {
		gen := spec.Gen
		out[i] = matgen.Spec{Name: spec.Name, Domain: spec.Domain, Gen: func() *sparse.CSC {
			a := gen()
			return a.PermuteSym(ordering.ColumnOrdering(a, ordering.MinDegreeATA))
		}}
	}
	return out
}

// equalResult compares two symbolic Results entry for entry.
func equalResult(t *testing.T, name string, a, b *symbolic.Result) {
	t.Helper()
	if a.N != b.N {
		t.Fatalf("%s: N %d vs %d", name, a.N, b.N)
	}
	cmp := func(what string, p, q *sparse.Pattern) {
		if len(p.ColPtr) != len(q.ColPtr) || len(p.RowInd) != len(q.RowInd) {
			t.Fatalf("%s: %s size mismatch", name, what)
		}
		for i := range p.ColPtr {
			if p.ColPtr[i] != q.ColPtr[i] {
				t.Fatalf("%s: %s ColPtr[%d] = %d vs %d", name, what, i, p.ColPtr[i], q.ColPtr[i])
			}
		}
		for i := range p.RowInd {
			if p.RowInd[i] != q.RowInd[i] {
				t.Fatalf("%s: %s RowInd[%d] = %d vs %d", name, what, i, p.RowInd[i], q.RowInd[i])
			}
		}
	}
	cmp("L", a.L, b.L)
	cmp("U", a.U, b.U)
	cmp("URows", a.URows, b.URows)
}

// TestFactorParallelIdentical pins the bitwise-determinism contract of
// the parallel symbolic factorization: at every worker count the packed
// Result is identical to the serial one, over the whole small suite.
func TestFactorParallelIdentical(t *testing.T) {
	partitioned := 0
	for _, spec := range orderedSuite() {
		a := spec.Gen()
		want, err := symbolic.Factor(a)
		if err != nil {
			t.Fatalf("%s: serial: %v", spec.Name, err)
		}
		if symbolic.PartitionColumns(a, 4) != nil {
			partitioned++
		}
		for _, w := range []int{1, 2, 3, 4, 8} {
			got, err := symbolic.FactorParallel(a, w, nil)
			if err != nil {
				t.Fatalf("%s: parallel w=%d: %v", spec.Name, w, err)
			}
			equalResult(t, spec.Name, got, want)
		}
	}
	if partitioned == 0 {
		t.Fatal("no small-suite matrix produced a partition; the parallel path is untested")
	}
}

// removeEntry returns a copy of a without the entry at (row, col).
func removeEntry(a *sparse.CSC, row, col int) *sparse.CSC {
	out := &sparse.CSC{NRows: a.NRows, NCols: a.NCols, ColPtr: make([]int, a.NCols+1)}
	for j := 0; j < a.NCols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if j == col && a.RowInd[p] == row {
				continue
			}
			out.RowInd = append(out.RowInd, a.RowInd[p])
			out.Val = append(out.Val, a.Val[p])
		}
		out.ColPtr[j+1] = len(out.RowInd)
	}
	return out
}

// TestFactorDeltaIdentical pins the incremental path: removing one
// off-diagonal entry is always a patchable delta (the shrunken row still
// respects the partition's locality), and the patched Result must be
// identical to a from-scratch factorization of the modified matrix.
func TestFactorDeltaIdentical(t *testing.T) {
	tested := 0
	for _, spec := range orderedSuite() {
		a := spec.Gen()
		part := symbolic.PartitionColumns(a, 4)
		if part == nil {
			continue
		}
		base, err := symbolic.Factor(a)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		oldPat := sparse.PatternOf(a)

		// Identical pattern: the delta path must hand the old result back.
		same, ok, err := symbolic.FactorDelta(a, oldPat, base, part, nil)
		if err != nil || !ok || same != base {
			t.Fatalf("%s: identical-pattern delta = (%p, %v, %v), want old result back", spec.Name, same, ok, err)
		}

		// Drop the last off-diagonal entry of a mid column.
		col := a.NCols / 2
		row := -1
		for j := col; j < a.NCols && row < 0; j++ {
			for p := a.ColPtr[j+1] - 1; p >= a.ColPtr[j]; p-- {
				if a.RowInd[p] != j {
					row, col = a.RowInd[p], j
					break
				}
			}
		}
		if row < 0 {
			t.Fatalf("%s: no off-diagonal entry found", spec.Name)
		}
		mod := removeEntry(a, row, col)
		want, err := symbolic.Factor(mod)
		if err != nil {
			t.Fatalf("%s: full refactor: %v", spec.Name, err)
		}
		got, ok, err := symbolic.FactorDelta(mod, oldPat, base, part, nil)
		if err != nil {
			t.Fatalf("%s: delta: %v", spec.Name, err)
		}
		if !ok {
			t.Fatalf("%s: single-entry removal was not patchable", spec.Name)
		}
		equalResult(t, spec.Name+" delta", got, want)
		tested++
	}
	if tested == 0 {
		t.Fatal("no small-suite matrix exercised the delta path")
	}
}

// TestFactorParallelPanicFault injects a panic into one subtree worker
// and checks that it surfaces as a structured *WorkerError from
// FactorParallel without leaking goroutines.
func TestFactorParallelPanicFault(t *testing.T) {
	spec := orderedSuite()[0]
	a := spec.Gen()
	if symbolic.PartitionColumns(a, 4) == nil {
		t.Fatalf("%s: no partition", spec.Name)
	}
	inj := faultinject.New()
	inj.Set(1, faultinject.Fault{Mode: faultinject.Panic})
	runner := func(ntasks int, run func(i int) error) error {
		return symbolic.GoRunner(4)(ntasks, inj.Wrap(run, nil))
	}

	before := runtime.NumGoroutine()
	_, err := symbolic.FactorParallel(a, 4, runner)
	if err == nil {
		t.Fatal("injected panic did not surface as an error")
	}
	var we *symbolic.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("error %T (%v) is not a *WorkerError", err, err)
	}
	if we.Task != 1 {
		t.Fatalf("WorkerError.Task = %d, want 1", we.Task)
	}
	if inj.Fired() != 1 {
		t.Fatalf("injector fired %d times, want 1", inj.Fired())
	}
	// All pool goroutines must have drained.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
