package symbolic

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

func benchMatrix(n int, nnzPerRow int, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed))
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Add(i, i, 1)
		for k := 0; k < nnzPerRow; k++ {
			t.Add(i, rng.Intn(n), 1)
		}
	}
	return t.ToCSC()
}

func BenchmarkStaticFactor(b *testing.B) {
	for _, n := range []int{500, 2000} {
		a := benchMatrix(n, 4, int64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Factor(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCholeskyFill(b *testing.B) {
	for _, n := range []int{500, 2000} {
		a := benchMatrix(n, 4, int64(n))
		g := sparse.SymmetrizePattern(a)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CholeskyFill(g)
			}
		})
	}
}

func BenchmarkSuperLUBound(b *testing.B) {
	a := benchMatrix(1000, 4, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SuperLUBound(a)
	}
}
