package symbolic

import (
	"repro/internal/sparse"
)

// equalCols reports whether two sorted index slices are identical.
func equalCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// deltaMaxAffected is the fallback threshold: if the affected buckets
// hold more than this fraction of the bucketed columns, a full
// factorization is cheaper than the patch.
const deltaMaxAffected = 0.5

// FactorDelta recomputes the symbolic factorization of aNew, given the
// Result old of a previous factorization whose input had pattern oldPat,
// and a column Partition valid for oldPat (normally the one
// PartitionColumns built from it). Only the subtree buckets whose input
// rows changed are re-eliminated, plus the shared top region; the
// per-column outputs of untouched buckets are copied from old, and
// their surviving row groups are reconstructed from old's L̄/Ū
// structures (the last bucket column a surviving row appears under in
// L̄ carries its reduced structure as that column's Ū row).
//
// The ok result is false when the delta cannot be patched — different
// order, no partition, a changed row violating the partition's locality
// invariant, or more than deltaMaxAffected of the bucketed columns
// affected — and the caller must run a full factorization instead.
// When ok is true the Result is identical to Factor(aNew), which
// TestFactorDeltaIdentical pins.
func FactorDelta(aNew *sparse.CSC, oldPat *sparse.Pattern, old *Result, part *Partition, runner Runner) (*Result, bool, error) {
	if part == nil || oldPat == nil || old == nil {
		return nil, false, nil
	}
	if err := checkSquareZeroFree(aNew); err != nil {
		return nil, false, err
	}
	n := aNew.NCols
	if n != oldPat.NCols || n != part.N || oldPat.NRows != oldPat.NCols {
		return nil, false, nil
	}

	atNew := sparse.PatternOf(aNew).Transpose() // Col(r) = row r, sorted
	atOld := oldPat.Transpose()

	nb := len(part.BucketCols)
	affected := make([]bool, nb)
	topAffectedRows := false
	for r := 0; r < n; r++ {
		rowNew, rowOld := atNew.Col(r), atOld.Col(r)
		if equalCols(rowNew, rowOld) {
			continue
		}
		// The buckets that owned and now own the row both change.
		if bOld := part.ColBucket[rowOld[0]]; bOld >= 0 {
			affected[bOld] = true
		} else {
			topAffectedRows = true
		}
		bNew := part.ColBucket[rowNew[0]]
		if bNew >= 0 {
			affected[bNew] = true
		} else {
			topAffectedRows = true
		}
		// Locality check: the changed row must still confine its
		// structure to its bucket plus top columns above the bucket,
		// or entirely to the top region. Otherwise the old partition
		// no longer bounds the fill and the patch would be wrong.
		for _, c := range rowNew {
			cb := part.ColBucket[c]
			if bNew < 0 {
				if cb >= 0 {
					return nil, false, nil
				}
			} else if cb != bNew && (cb >= 0 || int32(c) <= part.MaxCol[bNew]) {
				return nil, false, nil
			}
		}
	}
	_ = topAffectedRows // the top region is always re-eliminated

	affectedCols, totalCols := 0, 0
	anyAffected := false
	for b := 0; b < nb; b++ {
		totalCols += len(part.BucketCols[b])
		if affected[b] {
			anyAffected = true
			affectedCols += len(part.BucketCols[b])
		}
	}
	if !anyAffected && !topAffectedRows {
		// Identical pattern: the old result is the answer.
		return old, true, nil
	}
	if totalCols == 0 || float64(affectedCols) > deltaMaxAffected*float64(totalCols) {
		return nil, false, nil
	}

	out := newColumns(n)

	// Copy the per-column outputs of untouched buckets from the old
	// result (their inputs are unchanged and bucket eliminations are
	// independent, so their outputs are unchanged too).
	for b := 0; b < nb; b++ {
		if affected[b] {
			continue
		}
		for _, k := range part.BucketCols[b] {
			lc := old.L.Col(int(k))[1:]
			lcol := make([]int32, len(lc))
			for t, v := range lc {
				lcol[t] = int32(v)
			}
			ur := old.URows.Col(int(k))
			urow := make([]int32, len(ur)-1)
			for t, v := range ur[1:] {
				urow[t] = int32(v)
			}
			out.lCols[k] = lcol
			out.uRows[k] = urow
			out.uRowLen[k] = len(ur)
		}
	}

	// Re-seed and re-run the affected buckets on the new rows.
	engines := make(map[int32]*engine, nb)
	var affectedIDs []int32
	for b := 0; b < nb; b++ {
		if affected[b] {
			engines[int32(b)] = newEngine(n, out)
			affectedIDs = append(affectedIDs, int32(b))
		}
	}
	var topRows []int32
	for r := 0; r < n; r++ {
		row := atNew.Col(r)
		b := part.ColBucket[row[0]]
		if b < 0 {
			topRows = append(topRows, int32(r))
			continue
		}
		if e, ok := engines[b]; ok {
			e.seedRow(int32(r), row)
		}
	}
	if runner == nil {
		runner = serialRunner
	}
	if err := runner(len(affectedIDs), func(i int) error {
		b := affectedIDs[i]
		return engines[b].run(part.BucketCols[b])
	}); err != nil {
		return nil, false, err
	}

	// The top region always re-runs: it consumes every bucket's
	// survivors. Affected buckets hand over their live groups;
	// untouched buckets' survivors are reconstructed from the old
	// structures.
	top := newEngine(n, out)
	lastJ := make([]int32, n)
	for i := range lastJ {
		lastJ[i] = -1
	}
	for b := 0; b < nb; b++ {
		if e, ok := engines[int32(b)]; ok {
			for _, g := range e.survivors() {
				top.seedGroup(g)
			}
			continue
		}
		reconstructSurvivors(old, part, int32(b), lastJ, top)
	}
	for _, r := range topRows {
		top.seedRow(r, atNew.Col(int(r)))
	}
	if err := top.run(part.TopCols); err != nil {
		return nil, false, err
	}
	return out.pack(), true, nil
}

// reconstructSurvivors rebuilds bucket b's post-elimination surviving
// row groups from the old factorization and seeds them into the top
// engine. A bucket row that survives (its pivot column is in the top
// region) appears in L̄ under every bucket column its group was merged
// at; the last such column j carries the group's final structure as
// Ū row j. Rows sharing that last column form one group. lastJ is an
// n-sized scratch array of -1 shared across calls (row sets of
// different buckets are disjoint).
func reconstructSurvivors(old *Result, part *Partition, b int32, lastJ []int32, top *engine) {
	cols := part.BucketCols[b]
	for _, k := range cols {
		for _, r := range old.L.Col(int(k))[1:] {
			if part.ColBucket[r] < 0 { // pivot column in the top region: never eliminated here
				lastJ[r] = k
			}
		}
	}
	for _, k := range cols {
		var members []int32
		for _, r := range old.L.Col(int(k))[1:] {
			if part.ColBucket[r] < 0 && lastJ[r] == k {
				members = append(members, int32(r))
				lastJ[r] = -1 // reset the scratch for the next call
			}
		}
		if len(members) == 0 {
			continue
		}
		ur := old.URows.Col(int(k))[1:]
		gcols := make([]int32, len(ur))
		for t, c := range ur {
			gcols[t] = int32(c)
		}
		top.seedGroup(&group{alive: true, members: members, cols: gcols})
	}
}
