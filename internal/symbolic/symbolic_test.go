package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// paperMatrix builds the 7×7 example matrix of the paper's Figure 1(a).
// The exact figure is partially garbled in the source text, so this is a
// structurally similar small unsymmetric matrix with zero-free diagonal
// used across the etree/taskgraph tests.
func paperMatrix() *sparse.CSC {
	// pattern (x = nonzero):
	//   0 1 2 3 4 5 6
	// 0 x . . x . . .
	// 1 . x . . x . .
	// 2 . . x . . x .
	// 3 x . . x . . x
	// 4 . x . . x . x
	// 5 . . x . . x x
	// 6 . . . x x x x
	t := sparse.NewTriplet(7, 7)
	entries := [][2]int{
		{0, 0}, {0, 3},
		{1, 1}, {1, 4},
		{2, 2}, {2, 5},
		{3, 0}, {3, 3}, {3, 6},
		{4, 1}, {4, 4}, {4, 6},
		{5, 2}, {5, 5}, {5, 6},
		{6, 3}, {6, 4}, {6, 5}, {6, 6},
	}
	for k, e := range entries {
		t.Add(e[0], e[1], float64(k+1))
	}
	return t.ToCSC()
}

func randomZeroFreeDiag(n int, density float64, rng *rand.Rand) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Add(i, i, 1+rng.Float64())
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				t.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

func patternsEqual(a, b *sparse.Pattern) bool {
	if a.NCols != b.NCols || a.NNZ() != b.NNZ() {
		return false
	}
	for j := 0; j < a.NCols; j++ {
		ac, bc := a.Col(j), b.Col(j)
		if len(ac) != len(bc) {
			return false
		}
		for k := range ac {
			if ac[k] != bc[k] {
				return false
			}
		}
	}
	return true
}

func TestFactorRejectsBadInput(t *testing.T) {
	tr := sparse.NewTriplet(2, 3)
	tr.Add(0, 0, 1)
	if _, err := Factor(tr.ToCSC()); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	tr2 := sparse.NewTriplet(2, 2)
	tr2.Add(0, 1, 1)
	tr2.Add(1, 0, 1)
	if _, err := Factor(tr2.ToCSC()); err == nil {
		t.Fatal("matrix with structural zero diagonal accepted")
	}
}

func TestFactorDiagonalMatrix(t *testing.T) {
	tr := sparse.NewTriplet(4, 4)
	for i := 0; i < 4; i++ {
		tr.Add(i, i, 2)
	}
	r, err := Factor(tr.ToCSC())
	if err != nil {
		t.Fatal(err)
	}
	if r.NNZ() != 4 {
		t.Fatalf("diagonal matrix NNZ = %d, want 4", r.NNZ())
	}
	if r.L.NNZ() != 4 || r.U.NNZ() != 4 {
		t.Fatalf("L nnz %d U nnz %d, want 4 4", r.L.NNZ(), r.U.NNZ())
	}
}

func TestFactorDenseMatrix(t *testing.T) {
	n := 6
	d := make([]float64, n*n)
	for i := range d {
		d[i] = 1
	}
	r, err := Factor(sparse.FromDense(d, n, n, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.NNZ() != n*n {
		t.Fatalf("dense NNZ = %d, want %d", r.NNZ(), n*n)
	}
}

func TestFactorMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(25)
		a := randomZeroFreeDiag(n, 0.15, rng)
		got, err := Factor(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := factorNaive(a)
		if !patternsEqual(got.L, want.L) {
			t.Fatalf("trial %d (n=%d): L patterns differ", trial, n)
		}
		if !patternsEqual(got.URows, want.URows) {
			t.Fatalf("trial %d (n=%d): U patterns differ", trial, n)
		}
	}
}

func TestFactorPaperMatrix(t *testing.T) {
	a := paperMatrix()
	r, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	want := factorNaive(a)
	if !patternsEqual(r.L, want.L) || !patternsEqual(r.U, want.U) {
		t.Fatal("paper matrix symbolic factorization differs from reference")
	}
	// Ā must contain the original structure.
	if !sparse.PatternContains(r.L, lowerOf(a)) {
		t.Fatal("L̄ does not contain tril(A)")
	}
	if !sparse.PatternContains(r.U, upperOf(a)) {
		t.Fatal("Ū does not contain triu(A)")
	}
}

func lowerOf(a *sparse.CSC) *sparse.Pattern {
	n := a.NCols
	p := &sparse.Pattern{NRows: n, NCols: n, ColPtr: make([]int, n+1)}
	for j := 0; j < n; j++ {
		rows, _ := a.Col(j)
		for _, i := range rows {
			if i >= j {
				p.RowInd = append(p.RowInd, i)
			}
		}
		p.ColPtr[j+1] = len(p.RowInd)
	}
	return p
}

func upperOf(a *sparse.CSC) *sparse.Pattern {
	n := a.NCols
	p := &sparse.Pattern{NRows: n, NCols: n, ColPtr: make([]int, n+1)}
	for j := 0; j < n; j++ {
		rows, _ := a.Col(j)
		for _, i := range rows {
			if i <= j {
				p.RowInd = append(p.RowInd, i)
			}
		}
		p.ColPtr[j+1] = len(p.RowInd)
	}
	return p
}

// simulateLUFill performs dense Gaussian elimination on the *structure*
// with an arbitrary pivot choice among the structurally valid candidate
// rows at each step, and returns the fill structure it produced. Row
// interchanges swap only the trailing columns ≥ k, matching the S+
// numerical scheme (already-factored L columns stay in place and the
// pivot sequence is replayed at solve time). The George–Ng guarantee is
// that the working structure is always contained in Ā.
func simulateLUFill(a *sparse.CSC, rng *rand.Rand) [][]bool {
	n := a.NCols
	d := a.ToDense()
	s := make([][]bool, n)
	for i := 0; i < n; i++ {
		s[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			s[i][j] = d[i*n+j] != 0
		}
	}
	for k := 0; k < n; k++ {
		var cand []int
		for i := k; i < n; i++ {
			if s[i][k] {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 {
			continue
		}
		p := cand[rng.Intn(len(cand))]
		for j := k; j < n; j++ {
			s[k][j], s[p][j] = s[p][j], s[k][j]
		}
		for i := k + 1; i < n; i++ {
			if s[i][k] {
				for j := k + 1; j < n; j++ {
					if s[k][j] {
						s[i][j] = true
					}
				}
			}
		}
	}
	return s
}

func TestStaticStructureCoversAllPivotSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(15)
		a := randomZeroFreeDiag(n, 0.2, rng)
		r, err := Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 5; rep++ {
			s := simulateLUFill(a, rng)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if !s[i][j] {
						continue
					}
					var ok bool
					if i > j {
						ok = r.L.Has(i, j)
					} else {
						ok = r.U.Has(i, j)
					}
					if !ok {
						t.Fatalf("trial %d rep %d: fill (%d,%d) not covered by Ā", trial, rep, i, j)
					}
				}
			}
		}
	}
}

func TestUAndURowsAreTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := randomZeroFreeDiag(20, 0.15, rng)
	r, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !patternsEqual(r.U, r.URows.Transpose()) {
		t.Fatal("U and URows are not transposes of each other")
	}
}

func TestTriangularShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	a := randomZeroFreeDiag(25, 0.1, rng)
	r, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < r.N; j++ {
		lc := r.L.Col(j)
		if len(lc) == 0 || lc[0] != j {
			t.Fatalf("L column %d does not start at the diagonal: %v", j, lc)
		}
		ur := r.URows.Col(j)
		if len(ur) == 0 || ur[0] != j {
			t.Fatalf("U row %d does not start at the diagonal: %v", j, ur)
		}
	}
}

func TestFillRatio(t *testing.T) {
	a := paperMatrix()
	r, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.FillRatio(a.NNZ()); got < 1 {
		t.Fatalf("fill ratio %g < 1", got)
	}
}

// Property: Factor matches the dense reference on random matrices.
func TestQuickFactorMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(18)
		a := randomZeroFreeDiag(n, 0.1+rng.Float64()*0.3, rng)
		got, err := Factor(a)
		if err != nil {
			return false
		}
		want := factorNaive(a)
		return patternsEqual(got.L, want.L) && patternsEqual(got.URows, want.URows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
