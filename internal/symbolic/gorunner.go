package symbolic

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// WorkerError reports a failure inside one subtree task of a parallel
// factorization. Panics in a task are recovered into the Err field, so
// a fault in one subtree surfaces as an ordinary error without tearing
// down the process or leaking the other workers.
type WorkerError struct {
	Task int
	Err  error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("symbolic: subtree task %d: %v", e.Task, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// GoRunner returns a Runner that executes tasks on up to workers
// goroutines with an atomic task counter. Every goroutine is joined
// before it returns; the surviving error is the failing task with the
// lowest index, so the outcome is deterministic even when several tasks
// fail concurrently.
func GoRunner(workers int) Runner {
	return func(ntasks int, run func(i int) error) error {
		if workers < 1 {
			workers = 1
		}
		if workers > ntasks {
			workers = ntasks
		}
		if workers <= 1 {
			return serialRunnerWrapped(ntasks, run)
		}
		p := &runnerPool{ntasks: ntasks, run: run, errTask: -1}
		p.wg.Add(workers)
		for w := 0; w < workers; w++ {
			go p.work()
		}
		p.wg.Wait()
		return p.err
	}
}

// serialRunnerWrapped runs the tasks inline with the same panic
// recovery contract as the pool.
func serialRunnerWrapped(ntasks int, run func(i int) error) error {
	for i := 0; i < ntasks; i++ {
		if err := safeTask(i, run); err != nil {
			return err
		}
	}
	return nil
}

// runnerPool is the shared state of one GoRunner invocation. Workers
// claim task indices from the atomic counter and record the first
// (lowest-index) failure under the mutex.
type runnerPool struct {
	ntasks int
	run    func(i int) error
	next   atomic.Int64
	wg     sync.WaitGroup

	mu      sync.Mutex
	err     error
	errTask int
}

// work is the body of one pool goroutine: claim, run, record.
func (p *runnerPool) work() {
	defer p.wg.Done()
	for {
		i := int(p.next.Add(1)) - 1
		if i >= p.ntasks {
			return
		}
		if err := safeTask(i, p.run); err != nil {
			p.record(i, err)
		}
	}
}

func (p *runnerPool) record(task int, err error) {
	p.mu.Lock()
	if p.errTask < 0 || task < p.errTask {
		p.errTask = task
		p.err = err
	}
	p.mu.Unlock()
}

// safeTask runs one task, converting a panic into a *WorkerError so a
// fault in one subtree cannot take the process down.
func safeTask(i int, run func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &WorkerError{Task: i, Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	if e := run(i); e != nil {
		return &WorkerError{Task: i, Err: e}
	}
	return nil
}
