package symbolic

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// columns collects the per-column outputs of the elimination: column k
// of L̄ (rows > k) and row k of Ū (columns > k). Engines running over
// disjoint column sets write to disjoint slots, so one columns value can
// be shared by the subtree engines of a parallel factorization.
type columns struct {
	n       int
	lCols   [][]int32 // column k of L̄ (rows > k; diag added at pack time)
	uRows   [][]int32 // row k of Ū (cols > k)
	uRowLen []int     // length of row k of Ū incl diagonal
}

func newColumns(n int) *columns {
	return &columns{
		n:       n,
		lCols:   make([][]int32, n),
		uRows:   make([][]int32, n),
		uRowLen: make([]int, n),
	}
}

// pack assembles the per-column outputs into a Result.
func (out *columns) pack() *Result {
	n := out.n
	l := &sparse.Pattern{NRows: n, NCols: n, ColPtr: make([]int, n+1)}
	for k := 0; k < n; k++ {
		l.ColPtr[k+1] = l.ColPtr[k] + 1 + len(out.lCols[k])
	}
	l.RowInd = make([]int, l.ColPtr[n])
	for k := 0; k < n; k++ {
		p := l.ColPtr[k]
		l.RowInd[p] = k
		for t, m := range out.lCols[k] {
			l.RowInd[p+1+t] = int(m)
		}
	}

	ur := &sparse.Pattern{NRows: n, NCols: n, ColPtr: make([]int, n+1)}
	for k := 0; k < n; k++ {
		ur.ColPtr[k+1] = ur.ColPtr[k] + out.uRowLen[k]
	}
	ur.RowInd = make([]int, ur.ColPtr[n])
	for k := 0; k < n; k++ {
		p := ur.ColPtr[k]
		ur.RowInd[p] = k
		for t, c := range out.uRows[k] {
			ur.RowInd[p+1+t] = int(c)
		}
	}
	u := ur.Transpose()

	return &Result{N: n, L: l, U: u, URows: ur}
}

// group is a set of rows with identical current structure. Groups only
// ever merge; stale members (< current step) and stale columns are
// pruned lazily.
type group struct {
	alive   bool
	members []int32 // positions (rows); stale members < current k pruned lazily
	cols    []int32 // sorted structure; stale columns < current k pruned lazily
}

// engine runs the George–Ng group-merging elimination over a set of
// columns. Row and column indices are always global; an engine touches
// only the colGroups/marker slots of the columns that appear in its
// seeded rows' structures, which for a valid partition (see parallel.go)
// are the engine's own steps plus top-region columns above them.
type engine struct {
	n         int
	out       *columns
	groups    []*group
	colGroups [][]int32 // col -> group ids whose structure contained it; consumed at that step
	marker    []int32   // union dedup scratch, init -1
}

func newEngine(n int, out *columns) *engine {
	m := make([]int32, n)
	for i := range m {
		m[i] = -1
	}
	return &engine{
		n:         n,
		out:       out,
		groups:    make([]*group, 0, 2*n),
		colGroups: make([][]int32, n),
		marker:    m,
	}
}

// seedRow adds a singleton group for one row with the given structure
// (ascending column indices). The cols slice is copied.
func (e *engine) seedRow(row int32, cols []int) {
	c := make([]int32, len(cols))
	for t, v := range cols {
		c[t] = int32(v)
	}
	e.seedGroup(&group{alive: true, members: []int32{row}, cols: c})
}

// seedGroup adds a pre-built group (used to carry subtree survivors into
// the top engine). The group is registered under every column of its
// structure; the engine takes ownership and may mutate it.
func (e *engine) seedGroup(g *group) {
	gid := int32(len(e.groups))
	e.groups = append(e.groups, g)
	if g.alive && len(g.members) > 0 && len(g.cols) > 0 {
		for _, c := range g.cols {
			e.colGroups[c] = append(e.colGroups[c], gid)
		}
	} else {
		g.alive = false
	}
}

// run eliminates the given ascending column list (nil means all columns
// 0..n-1), writing each column's output into e.out.
func (e *engine) run(steps []int32) error {
	if steps == nil {
		for k := 0; k < e.n; k++ {
			if err := e.step(int32(k)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, k := range steps {
		if err := e.step(k); err != nil {
			return err
		}
	}
	return nil
}

// step eliminates column k: merges all candidate row groups, records
// column k of L̄ and row k of Ū, and retires the pivot position.
func (e *engine) step(k int32) error {
	// Collect live candidate groups (deduplicated).
	cand := e.colGroups[k]
	e.colGroups[k] = nil
	seen := make(map[int32]bool, len(cand))
	var live []*group
	for _, gid := range cand {
		g := e.groups[gid]
		if !g.alive || seen[gid] {
			continue
		}
		seen[gid] = true
		// The group's structure still contains k (merges keep all
		// columns, so containment persists; stale ids are dead).
		live = append(live, g)
	}
	if len(live) == 0 {
		// Should not happen for a zero-free diagonal.
		return fmt.Errorf("symbolic: no candidate rows at step %d", k)
	}

	// L̄ column k: all members ≥ k of the candidate groups, and the
	// union of their structures (columns ≥ k).
	var lcol []int32
	var union []int32
	for _, g := range live {
		w := g.members[:0]
		for _, m := range g.members {
			if m >= k {
				w = append(w, m)
				if m > k {
					lcol = append(lcol, m)
				}
			}
		}
		g.members = w
		for _, c := range g.cols {
			if c >= k && e.marker[c] != k {
				e.marker[c] = k
				union = append(union, c)
			}
		}
	}
	sort.Slice(lcol, func(a, b int) bool { return lcol[a] < lcol[b] })
	sort.Slice(union, func(a, b int) bool { return union[a] < union[b] })
	e.out.lCols[k] = lcol
	// union[0] must be k itself.
	if len(union) == 0 || union[0] != k {
		return fmt.Errorf("symbolic: step %d union does not start at the diagonal", k)
	}
	e.out.uRows[k] = append([]int32(nil), union[1:]...)
	e.out.uRowLen[k] = len(union)

	// Merge candidates into one surviving group.
	if len(live) == 1 {
		surv := live[0]
		surv.cols = union[1:] // trim eliminated column k
		// Retire position k from members.
		w := surv.members[:0]
		for _, m := range surv.members {
			if m != k {
				w = append(w, m)
			}
		}
		surv.members = w
		if len(surv.members) == 0 || len(surv.cols) == 0 {
			surv.alive = false
		}
		return nil
	}
	// Build a fresh merged group.
	var members []int32
	for _, g := range live {
		for _, m := range g.members {
			if m != k {
				members = append(members, m)
			}
		}
		g.alive = false
		g.members = nil
		g.cols = nil
	}
	cols := append([]int32(nil), union[1:]...)
	surv := &group{alive: len(members) > 0 && len(cols) > 0, members: members, cols: cols}
	survID := int32(len(e.groups))
	e.groups = append(e.groups, surv)
	if surv.alive {
		for _, c := range cols {
			e.colGroups[c] = append(e.colGroups[c], survID)
		}
	}
	return nil
}

// survivors returns the groups still alive after run: rows not yet
// eliminated, carrying their reduced structures. For a subtree engine
// these are exactly the rows whose pivot column lies in the top region.
func (e *engine) survivors() []*group {
	var out []*group
	for _, g := range e.groups {
		if g.alive && len(g.members) > 0 {
			out = append(out, g)
		}
	}
	return out
}
