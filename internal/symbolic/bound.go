package symbolic

import (
	"sort"

	"repro/internal/sparse"
)

// CholeskyFill computes the number of nonzeros of the Cholesky factor of
// a symmetric positive-pattern matrix (diagonal included), by the
// classic row-subtree traversal over the elimination tree: row i of the
// factor consists of the paths, in the etree, from each below-diagonal
// entry of row i up toward i. Runs in O(|L|).
func CholeskyFill(g *sparse.Pattern) int {
	if g.NRows != g.NCols {
		panic("symbolic: CholeskyFill needs a square pattern")
	}
	n := g.NCols
	// Liu's etree of the symmetric pattern.
	parent := make([]int, n)
	ancestor := make([]int, n)
	for i := range parent {
		parent[i] = -1
		ancestor[i] = -1
	}
	for j := 0; j < n; j++ {
		for _, i := range g.Col(j) {
			if i >= j {
				continue
			}
			r := i
			for ancestor[r] != -1 && ancestor[r] != j {
				next := ancestor[r]
				ancestor[r] = j
				r = next
			}
			if ancestor[r] == -1 {
				ancestor[r] = j
				parent[r] = j
			}
		}
	}
	// Count row subtrees with per-row marks.
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	nnz := n // diagonal
	for i := 0; i < n; i++ {
		mark[i] = i
		for _, j := range g.Col(i) {
			if j >= i {
				continue
			}
			for k := j; k != -1 && k < i && mark[k] != i; k = parent[k] {
				mark[k] = i
				nnz++
			}
		}
	}
	return nnz
}

// SuperLUBound returns the SuperLU-style structural upper bound on the
// LU factors of A under partial pivoting: both struct(L) and struct(U)
// are contained in the pattern of the Cholesky factor R of AᵀA (George
// & Ng), so the bound on the total factor entries is 2·|R| − n. The
// paper's Section 3 observes that this column-etree-based bound
// "substantially overestimates" the structures compared to the static
// symbolic factorization; the experiments quantify it.
func SuperLUBound(a *sparse.CSC) int {
	r := CholeskyFill(sparse.ATAPattern(a))
	return 2*r - a.NCols
}

// lowerPattern keeps only the entries on or below the diagonal (helper
// for tests that build symmetric patterns).
func lowerPattern(g *sparse.Pattern) *sparse.Pattern {
	n := g.NCols
	out := &sparse.Pattern{NRows: n, NCols: n, ColPtr: make([]int, n+1)}
	for j := 0; j < n; j++ {
		for _, i := range g.Col(j) {
			if i >= j {
				out.RowInd = append(out.RowInd, i)
			}
		}
		out.ColPtr[j+1] = len(out.RowInd)
	}
	for j := 0; j < n; j++ {
		sort.Ints(out.RowInd[out.ColPtr[j]:out.ColPtr[j+1]])
	}
	return out
}
