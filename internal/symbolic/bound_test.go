package symbolic

import (
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// denseCholeskyFill is the O(n³) reference: symbolic elimination on a
// boolean matrix.
func denseCholeskyFill(g *sparse.Pattern) int {
	n := g.NCols
	s := make([][]bool, n)
	for i := range s {
		s[i] = make([]bool, n)
		s[i][i] = true
	}
	for j := 0; j < n; j++ {
		for _, i := range g.Col(j) {
			s[i][j] = true
			s[j][i] = true
		}
	}
	count := 0
	for k := 0; k < n; k++ {
		for i := k; i < n; i++ {
			if s[i][k] {
				count++
				for j := k + 1; j < n; j++ {
					if s[k][j] {
						s[i][j] = true
					}
				}
			}
		}
	}
	return count
}

func randomSymPattern(n int, density float64, rng *rand.Rand) *sparse.Pattern {
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Add(i, i, 1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if rng.Float64() < density {
				t.Add(i, j, 1)
				t.Add(j, i, 1)
			}
		}
	}
	return sparse.PatternOf(t.ToCSC())
}

func TestCholeskyFillMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(25)
		g := randomSymPattern(n, 0.2, rng)
		got := CholeskyFill(g)
		want := denseCholeskyFill(g)
		if got != want {
			t.Fatalf("trial %d (n=%d): CholeskyFill = %d, dense reference %d", trial, n, got, want)
		}
	}
}

func TestCholeskyFillDiagonal(t *testing.T) {
	tr := sparse.NewTriplet(6, 6)
	for i := 0; i < 6; i++ {
		tr.Add(i, i, 1)
	}
	if got := CholeskyFill(sparse.PatternOf(tr.ToCSC())); got != 6 {
		t.Fatalf("diagonal fill = %d, want 6", got)
	}
}

func TestCholeskyFillDense(t *testing.T) {
	n := 7
	d := make([]float64, n*n)
	for i := range d {
		d[i] = 1
	}
	g := sparse.PatternOf(sparse.FromDense(d, n, n, 0))
	if got := CholeskyFill(g); got != n*(n+1)/2 {
		t.Fatalf("dense fill = %d, want %d", got, n*(n+1)/2)
	}
}

// The hierarchy the paper relies on: actual fill ≤ static |Ā| ≤ the
// column-etree (SuperLU/AᵀA) bound.
func TestBoundHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(30)
		a := randomZeroFreeDiag(n, 0.12, rng)
		sym, err := Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		bound := SuperLUBound(a)
		if sym.NNZ() > bound {
			t.Fatalf("trial %d: static |Ā| = %d exceeds the AᵀA bound %d", trial, sym.NNZ(), bound)
		}
	}
}

func TestLowerPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	g := randomSymPattern(10, 0.3, rng)
	lo := lowerPattern(g)
	for j := 0; j < 10; j++ {
		for _, i := range lo.Col(j) {
			if i < j {
				t.Fatalf("lowerPattern kept (%d,%d)", i, j)
			}
		}
	}
}
