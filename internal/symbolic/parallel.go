package symbolic

import (
	"repro/internal/sparse"
)

// Partition splits the columns into independent buckets plus a shared
// top region, based on the elimination tree of AᵀA. Each bucket is a
// union of disjoint etree subtrees cut below a size threshold; the top
// region is the ancestor-closed remainder. Because (i) the columns of
// any row of A form a clique in AᵀA and are therefore totally ordered
// along one root path of its etree, and (ii) fill at step k only adds
// ancestors of k, every row whose first column lies in a bucket keeps
// its entire structure inside that bucket plus top-region columns above
// the bucket's maximum — so the bucket eliminations are independent of
// each other and of the top region's, and running them concurrently
// reproduces the serial result exactly (see DESIGN.md §15).
type Partition struct {
	N int
	// ColBucket maps a column to its bucket id, or -1 for the top
	// region.
	ColBucket []int32
	// BucketCols lists each bucket's columns in ascending order.
	BucketCols [][]int32
	// MaxCol is each bucket's maximum column index.
	MaxCol []int32
	// TopCols lists the top-region columns in ascending order.
	TopCols []int32
}

// colEtree computes the elimination tree of AᵀA without forming AᵀA,
// by union-find over row cliques (the sp_coletree algorithm): each row
// links its columns through its first column. parent[j] == n marks a
// root. internal/etree has an equivalent entry point, but it depends on
// this package, so the few lines live here too.
func colEtree(a *sparse.CSC) []int32 {
	n := a.NCols
	firstcol := make([]int32, a.NRows)
	for i := range firstcol {
		firstcol[i] = int32(n)
	}
	for col := 0; col < n; col++ {
		for p := a.ColPtr[col]; p < a.ColPtr[col+1]; p++ {
			r := a.RowInd[p]
			if firstcol[r] == int32(n) {
				firstcol[r] = int32(col)
			}
		}
	}
	parent := make([]int32, n)
	pp := make([]int32, n)   // union-find parent, path-halving find
	root := make([]int32, n) // highest column eliminated into each set
	find := func(x int32) int32 {
		for pp[x] != x {
			pp[x] = pp[pp[x]]
			x = pp[x]
		}
		return x
	}
	for col := 0; col < n; col++ {
		c := int32(col)
		pp[c] = c
		root[c] = c
		parent[c] = int32(n)
		cset := c
		for p := a.ColPtr[col]; p < a.ColPtr[col+1]; p++ {
			fr := firstcol[a.RowInd[p]]
			if fr >= c {
				continue
			}
			rset := find(fr)
			rroot := root[rset]
			if rroot != c {
				parent[rroot] = c
				pp[rset] = cset
				cset = find(rset)
				root[cset] = c
			}
		}
	}
	return parent
}

// partitionMinN is the matrix order below which partitioning is not
// worth the setup cost.
const partitionMinN = 64

// PartitionColumns builds a column partition for FactorParallel from
// the AᵀA elimination tree of a: subtrees whose size is at most
// n/(2·workers) are cut where their parent's subtree exceeds it, then
// packed into at most 2·workers buckets by longest-processing-time
// binning. Returns nil when the matrix is too small, workers < 2, or
// the top region would dominate (no useful parallelism).
func PartitionColumns(a *sparse.CSC, workers int) *Partition {
	n := a.NCols
	if workers < 2 || n < partitionMinN {
		return nil
	}
	parent := colEtree(a)

	size := make([]int32, n)
	for v := range size {
		size[v] = 1
	}
	for v := 0; v < n; v++ {
		if parent[v] < int32(n) {
			size[parent[v]] += size[v]
		}
	}
	threshold := int32(n / (2 * workers))
	if threshold < 1 {
		threshold = 1
	}
	// Roots of the cut subtrees: small enough themselves, with a parent
	// (or no parent) whose subtree is too big.
	isRoot := make([]bool, n)
	var roots []int32
	for v := 0; v < n; v++ {
		if size[v] > threshold {
			continue
		}
		if parent[v] == int32(n) || size[parent[v]] > threshold {
			isRoot[v] = true
			roots = append(roots, int32(v))
		}
	}
	if len(roots) < 2 {
		return nil
	}

	// LPT-bin the subtrees into at most 2·workers buckets.
	nb := 2 * workers
	if nb > len(roots) {
		nb = len(roots)
	}
	order := make([]int32, len(roots))
	copy(order, roots)
	// Stable size-descending order with index tie-break keeps the
	// binning deterministic.
	for i := 1; i < len(order); i++ { // insertion sort: roots lists are short
		v := order[i]
		j := i - 1
		for j >= 0 && (size[order[j]] < size[v] || (size[order[j]] == size[v] && order[j] > v)) {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
	binOf := make([]int32, n) // root -> bucket id
	load := make([]int64, nb)
	for _, r := range order {
		best := 0
		for b := 1; b < nb; b++ {
			if load[b] < load[best] {
				best = b
			}
		}
		binOf[r] = int32(best)
		load[best] += int64(size[r])
	}

	// Propagate bucket ids down the tree (parent index > child index,
	// so a descending scan sees parents first).
	colBucket := make([]int32, n)
	for v := n - 1; v >= 0; v-- {
		switch {
		case isRoot[v]:
			colBucket[v] = binOf[v]
		case parent[v] == int32(n):
			colBucket[v] = -1 // oversized forest root: top region
		default:
			colBucket[v] = colBucket[parent[v]]
		}
	}

	part := &Partition{
		N:          n,
		ColBucket:  colBucket,
		BucketCols: make([][]int32, nb),
		MaxCol:     make([]int32, nb),
	}
	for v := 0; v < n; v++ {
		b := colBucket[v]
		if b < 0 {
			part.TopCols = append(part.TopCols, int32(v))
			continue
		}
		part.BucketCols[b] = append(part.BucketCols[b], int32(v))
		part.MaxCol[b] = int32(v)
	}
	// A dominant top region means the serial tail would swallow the
	// parallel gain; let the caller run serially instead.
	if len(part.TopCols)*2 > n {
		return nil
	}
	return part
}

// Runner executes ntasks independent tasks by calling run(0..ntasks-1)
// in any order (possibly concurrently) and returns the first error. The
// engine in internal/sched satisfies this shape via an independent task
// graph; GoRunner provides a dependency-free pool for standalone use.
type Runner func(ntasks int, run func(i int) error) error

// serialRunner runs the tasks inline, in order.
func serialRunner(ntasks int, run func(i int) error) error {
	for i := 0; i < ntasks; i++ {
		if err := run(i); err != nil {
			return err
		}
	}
	return nil
}

// FactorParallel computes the same Result as Factor, running the
// independent column-subtree eliminations of a Partition concurrently
// through the given Runner (nil means GoRunner(workers)). With workers
// < 2, a tiny matrix, or a degenerate partition it falls back to the
// serial engine; either way the output is identical to Factor's, which
// TestFactorParallelIdentical pins over the small suite.
func FactorParallel(a *sparse.CSC, workers int, runner Runner) (*Result, error) {
	if err := checkSquareZeroFree(a); err != nil {
		return nil, err
	}
	part := PartitionColumns(a, workers)
	if part == nil {
		return Factor(a)
	}
	if runner == nil {
		runner = GoRunner(workers)
	}
	n := a.NCols
	at := sparse.PatternOf(a).Transpose() // Col(i) = row i of A

	out := newColumns(n)
	engines := make([]*engine, len(part.BucketCols))
	for b := range engines {
		engines[b] = newEngine(n, out)
	}
	var topRows []int32
	for r := 0; r < n; r++ {
		row := at.Col(r)
		b := part.ColBucket[row[0]] // first column decides the row's bucket
		if b < 0 {
			topRows = append(topRows, int32(r))
			continue
		}
		engines[b].seedRow(int32(r), row)
	}
	if err := runner(len(engines), func(i int) error {
		return engines[i].run(part.BucketCols[i])
	}); err != nil {
		return nil, err
	}

	// Merge: the survivors of every bucket join the top-region rows in
	// one final serial elimination of the top columns.
	top := newEngine(n, out)
	for _, e := range engines {
		for _, g := range e.survivors() {
			top.seedGroup(g)
		}
	}
	for _, r := range topRows {
		top.seedRow(r, at.Col(int(r)))
	}
	if err := top.run(part.TopCols); err != nil {
		return nil, err
	}
	return out.pack(), nil
}
