package symbolic

import "repro/internal/sparse"

// factorNaive is the O(n²)-memory reference implementation of the static
// symbolic factorization used to validate Factor in tests: dense boolean
// row structures, direct row-union at each step.
func factorNaive(a *sparse.CSC) *Result {
	n := a.NCols
	rows := make([][]bool, n)
	d := a.ToDense()
	for i := 0; i < n; i++ {
		rows[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			if d[i*n+j] != 0 {
				rows[i][j] = true
			}
		}
	}
	lCols := make([][]int, n)
	uRows := make([][]int, n)
	for k := 0; k < n; k++ {
		union := make([]bool, n)
		var cand []int
		for i := k; i < n; i++ {
			if rows[i][k] {
				cand = append(cand, i)
				for j := k; j < n; j++ {
					if rows[i][j] {
						union[j] = true
					}
				}
			}
		}
		for _, i := range cand {
			if i > k {
				lCols[k] = append(lCols[k], i)
			}
			for j := k; j < n; j++ {
				rows[i][j] = union[j]
			}
		}
		for j := k; j < n; j++ {
			if union[j] {
				uRows[k] = append(uRows[k], j)
			}
		}
	}
	// Pack into the same shapes as Factor.
	l := &sparse.Pattern{NRows: n, NCols: n, ColPtr: make([]int, n+1)}
	for k := 0; k < n; k++ {
		l.ColPtr[k+1] = l.ColPtr[k] + 1 + len(lCols[k])
	}
	l.RowInd = make([]int, l.ColPtr[n])
	for k := 0; k < n; k++ {
		p := l.ColPtr[k]
		l.RowInd[p] = k
		copy(l.RowInd[p+1:], lCols[k])
	}
	ur := &sparse.Pattern{NRows: n, NCols: n, ColPtr: make([]int, n+1)}
	for k := 0; k < n; k++ {
		ur.ColPtr[k+1] = ur.ColPtr[k] + len(uRows[k])
	}
	ur.RowInd = make([]int, ur.ColPtr[n])
	for k := 0; k < n; k++ {
		copy(ur.RowInd[ur.ColPtr[k]:], uRows[k])
	}
	return &Result{N: n, L: l, U: ur.Transpose(), URows: ur}
}
