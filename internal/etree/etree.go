// Package etree implements the elimination structures of the paper: the
// LU elimination forest of a statically factored matrix (Definition 1,
// after Shen, Jiao & Yang), its postordering (Section 3) together with
// the induced block-upper-triangular decomposition, and the column
// elimination tree of AᵀA used by SuperLU (baseline). The
// characterizations of the L̄ rows and Ū columns in terms of the forest
// (Theorems 1–2) are exposed as predicates so tests and the task-graph
// construction can rely on them.
package etree

import (
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// None marks a node without a parent (a root).
const None = -1

// Forest is a rooted forest over the n columns of a matrix.
type Forest struct {
	// Parent[j] is the parent of node j, or None for roots.
	Parent []int
	// Children[j] lists the children of j in ascending order.
	Children [][]int
	// Roots lists the roots in ascending order.
	Roots []int
}

// NewForest builds the child lists and root list from a parent vector.
func NewForest(parent []int) *Forest {
	n := len(parent)
	f := &Forest{Parent: parent, Children: make([][]int, n)}
	for j := 0; j < n; j++ {
		p := parent[j]
		if p == None {
			f.Roots = append(f.Roots, j)
			continue
		}
		f.Children[p] = append(f.Children[p], j)
	}
	// Nodes are scanned in ascending order, so child and root lists come
	// out ascending.
	return f
}

// Len returns the number of nodes.
func (f *Forest) Len() int { return len(f.Parent) }

// NumTrees returns the number of trees in the forest.
func (f *Forest) NumTrees() int { return len(f.Roots) }

// LUForest computes the LU elimination forest of a static symbolic
// factorization (Definition 1): parent(j) = min{r > j : ū_jr ≠ 0}
// provided column j of L̄ has an off-diagonal entry (|L̄_{*j}| > 1);
// otherwise j is a root.
func LUForest(sym *symbolic.Result) *Forest {
	n := sym.N
	parent := make([]int, n)
	for j := 0; j < n; j++ {
		parent[j] = None
		if len(sym.L.Col(j)) <= 1 {
			continue // no off-diagonal in L̄ column j
		}
		urow := sym.URows.Col(j) // sorted, urow[0] == j
		if len(urow) > 1 {
			parent[j] = urow[1]
		}
	}
	return NewForest(parent)
}

// ColumnEtree computes the column elimination tree used by SuperLU: the
// elimination tree of the symmetric pattern of AᵀA. parent(j) is the
// smallest k > j such that the Cholesky factor of AᵀA has a nonzero
// (k, j); computed by the classic Liu algorithm with path compression.
func ColumnEtree(a *sparse.CSC) *Forest {
	ata := sparse.ATAPattern(a)
	n := ata.NCols
	parent := make([]int, n)
	ancestor := make([]int, n)
	for j := range parent {
		parent[j] = None
		ancestor[j] = None
	}
	for j := 0; j < n; j++ {
		for _, i := range ata.Col(j) {
			if i >= j {
				continue
			}
			// Walk from i to the root of its current subtree, compressing.
			r := i
			for ancestor[r] != None && ancestor[r] != j {
				next := ancestor[r]
				ancestor[r] = j
				r = next
			}
			if ancestor[r] == None {
				ancestor[r] = j
				parent[r] = j
			}
		}
	}
	return NewForest(parent)
}

// PostOrder returns the postorder permutation of the forest in scatter
// convention (perm[old] = new): children are visited in ascending order
// and trees in ascending order of their roots, so every node is numbered
// after all of its descendants, and nodes of a tree with a smaller root
// are numbered before every node of a tree with a larger root. This is
// the reordering of Section 3 of the paper.
func (f *Forest) PostOrder() sparse.Perm {
	n := f.Len()
	perm := make(sparse.Perm, n)
	next := 0
	// Iterative DFS to survive deep chains.
	type frame struct {
		node  int
		child int
	}
	stack := make([]frame, 0, 64)
	for _, r := range f.Roots {
		stack = append(stack[:0], frame{node: r})
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.child < len(f.Children[fr.node]) {
				c := f.Children[fr.node][fr.child]
				fr.child++
				stack = append(stack, frame{node: c})
				continue
			}
			perm[fr.node] = next
			next++
			stack = stack[:len(stack)-1]
		}
	}
	if next != n {
		panic("etree: forest does not cover all nodes (cycle in parent vector?)")
	}
	return perm
}

// Relabel returns the forest with node labels mapped through perm
// (perm[old] = new).
func (f *Forest) Relabel(perm sparse.Perm) *Forest {
	n := f.Len()
	parent := make([]int, n)
	for j := 0; j < n; j++ {
		p := f.Parent[j]
		if p == None {
			parent[perm[j]] = None
		} else {
			parent[perm[j]] = perm[p]
		}
	}
	return NewForest(parent)
}

// IsAncestor reports whether a is an ancestor of d (or equal to it).
func (f *Forest) IsAncestor(a, d int) bool {
	for d != None {
		if d == a {
			return true
		}
		d = f.Parent[d]
	}
	return false
}

// SubtreeSizes returns, for every node, the number of nodes in its
// subtree (including itself).
func (f *Forest) SubtreeSizes() []int {
	n := f.Len()
	size := make([]int, n)
	// Process nodes in an order where children come before parents. A
	// postorder gives exactly that.
	post := f.PostOrder()
	inv := post.Inverse()
	for k := 0; k < n; k++ {
		v := inv[k]
		size[v]++
		if p := f.Parent[v]; p != None {
			size[p] += size[v]
		}
	}
	return size
}

// Depths returns the depth of every node (roots have depth 0).
func (f *Forest) Depths() []int {
	n := f.Len()
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	var visit func(v, d int)
	visit = func(v, d int) {
		depth[v] = d
		for _, c := range f.Children[v] {
			visit(c, d+1)
		}
	}
	for _, r := range f.Roots {
		visit(r, 0)
	}
	return depth
}

// IsPostOrdered reports whether the node labels already form a postorder
// compatible with the paper's requirements: every node is larger than
// all of its descendants, and nodes of trees with smaller roots precede
// all nodes of trees with larger roots.
func (f *Forest) IsPostOrdered() bool {
	// Condition 1: parent > child for all edges.
	for j, p := range f.Parent {
		if p != None && p <= j {
			return false
		}
	}
	// Condition 2: subtrees are contiguous label ranges [r-size+1, r].
	size := f.SubtreeSizes()
	var check func(v int) (lo int, ok bool)
	check = func(v int) (int, bool) {
		lo := v - size[v] + 1
		cur := lo
		for _, c := range f.Children[v] {
			clo, ok := check(c)
			if !ok || clo != cur {
				return 0, false
			}
			cur += size[c]
		}
		return lo, cur == v
	}
	prevEnd := -1
	for _, r := range f.Roots {
		lo, ok := check(r)
		if !ok || lo != prevEnd+1 {
			return false
		}
		prevEnd = r
	}
	return prevEnd == f.Len()-1
}

// TreeRanges returns, for a post-ordered forest, the contiguous label
// range [lo, hi] of each tree in ascending order. These are the diagonal
// blocks of the block-upper-triangular decomposition of Section 3.
func (f *Forest) TreeRanges() [][2]int {
	if !f.IsPostOrdered() {
		panic("etree: TreeRanges requires a post-ordered forest")
	}
	size := f.SubtreeSizes()
	ranges := make([][2]int, 0, len(f.Roots))
	for _, r := range f.Roots {
		ranges = append(ranges, [2]int{r - size[r] + 1, r})
	}
	return ranges
}
