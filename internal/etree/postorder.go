package etree

import (
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// Postordering bundles the postorder permutation of an LU eforest with
// the relabeled symbolic factorization and forest. Theorem 3 of the
// paper guarantees that relabeling *is* the static symbolic
// factorization of the permuted matrix, so nothing needs recomputing.
type Postordering struct {
	// Perm is the postorder permutation (perm[old] = new) to apply
	// symmetrically to the matrix.
	Perm sparse.Perm
	// Sym is the symbolic factorization in the new labels.
	Sym *symbolic.Result
	// Forest is the LU eforest in the new labels; it satisfies
	// IsPostOrdered.
	Forest *Forest
}

// PostorderSymbolic computes the postordering of the LU eforest of sym
// and relabels both the symbolic structures and the forest accordingly.
func PostorderSymbolic(sym *symbolic.Result, f *Forest) *Postordering {
	perm := f.PostOrder()
	return &Postordering{
		Perm:   perm,
		Sym:    PermuteSymbolic(sym, perm),
		Forest: f.Relabel(perm),
	}
}

// PermuteSymbolic relabels a static symbolic factorization by a
// symmetric permutation. The permutation must keep L̄ lower and Ū upper
// triangular (any postorder of the LU eforest does, per Section 3).
func PermuteSymbolic(sym *symbolic.Result, perm sparse.Perm) *symbolic.Result {
	l := sym.L.PermuteSym(perm)
	ur := sym.URows.PermuteSym(perm)
	return &symbolic.Result{N: sym.N, L: l, U: ur.Transpose(), URows: ur}
}

// BlockUpperTriangular verifies that the full structure Ā = L̄ + Ū − I is
// block upper triangular with respect to the given contiguous diagonal
// ranges: no structural entry (i, j) with i in a later range than j.
// Returns the first offending entry, or (-1, -1) if the decomposition
// holds.
func BlockUpperTriangular(sym *symbolic.Result, ranges [][2]int) (int, int) {
	n := sym.N
	block := make([]int, n)
	for b, r := range ranges {
		for v := r[0]; v <= r[1]; v++ {
			block[v] = b
		}
	}
	for j := 0; j < n; j++ {
		for _, i := range sym.L.Col(j) {
			if block[i] > block[j] {
				return i, j
			}
		}
		for _, i := range sym.U.Col(j) {
			if block[i] > block[j] {
				return i, j
			}
		}
	}
	return -1, -1
}
