// External test wiring the machine-checked invariants of
// internal/verify into the eforest package: every postordering this
// package produces must satisfy Theorems 1–3 (fill-invariant symmetric
// relabeling) and the relabeled forest must actually be postordered.
package etree_test

import (
	"math/rand"
	"testing"

	"repro/internal/etree"
	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/verify"
)

func randomZeroFreeDiag(n int, density float64, rng *rand.Rand) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Add(i, i, 1+rng.Float64())
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				t.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

func TestPostorderInvarianceRandom(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1000} {
		rng := rand.New(rand.NewSource(seed))
		a := randomZeroFreeDiag(40+rng.Intn(40), 0.08, rng)
		sym, err := symbolic.Factor(a)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		forest := etree.LUForest(sym)
		if err := verify.VerifyPostorderInvariance(a, sym, forest); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}

		po := etree.PostorderSymbolic(sym, forest)
		if !po.Forest.IsPostOrdered() {
			t.Errorf("seed %d: PostorderSymbolic forest is not postordered", seed)
		}
		if po.Sym.NNZ() != sym.NNZ() {
			t.Errorf("seed %d: relabeling changed fill %d → %d", seed, sym.NNZ(), po.Sym.NNZ())
		}
	}
}

func TestPostorderInvarianceSmallSuite(t *testing.T) {
	for _, spec := range matgen.SmallSuite()[:2] {
		a := spec.Gen()
		sym, err := symbolic.Factor(a)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		forest := etree.LUForest(sym)
		if err := verify.VerifyPostorderInvariance(a, sym, forest); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}
