package etree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// paperMatrix mirrors the 7×7 worked example used in the symbolic tests:
// two coupled 3-chains joined through a last dense-ish column/row.
func paperMatrix() *sparse.CSC {
	t := sparse.NewTriplet(7, 7)
	entries := [][2]int{
		{0, 0}, {0, 3},
		{1, 1}, {1, 4},
		{2, 2}, {2, 5},
		{3, 0}, {3, 3}, {3, 6},
		{4, 1}, {4, 4}, {4, 6},
		{5, 2}, {5, 5}, {5, 6},
		{6, 3}, {6, 4}, {6, 5}, {6, 6},
	}
	for k, e := range entries {
		t.Add(e[0], e[1], float64(k+1))
	}
	return t.ToCSC()
}

func randomZeroFreeDiag(n int, density float64, rng *rand.Rand) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Add(i, i, 1+rng.Float64())
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				t.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

func mustFactor(t *testing.T, a *sparse.CSC) *symbolic.Result {
	t.Helper()
	r, err := symbolic.Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewForestBasics(t *testing.T) {
	//      3
	//     / \
	//    1   2
	//   /
	//  0      and 4 isolated
	f := NewForest([]int{1, 3, 3, None, None})
	if f.NumTrees() != 2 {
		t.Fatalf("NumTrees = %d, want 2", f.NumTrees())
	}
	if len(f.Children[3]) != 2 || f.Children[3][0] != 1 || f.Children[3][1] != 2 {
		t.Fatalf("Children[3] = %v", f.Children[3])
	}
	if f.Roots[0] != 3 || f.Roots[1] != 4 {
		t.Fatalf("Roots = %v", f.Roots)
	}
	if !f.IsAncestor(3, 0) || f.IsAncestor(2, 0) {
		t.Fatal("IsAncestor wrong")
	}
	sizes := f.SubtreeSizes()
	if sizes[3] != 4 || sizes[1] != 2 || sizes[4] != 1 {
		t.Fatalf("SubtreeSizes = %v", sizes)
	}
	depths := f.Depths()
	if depths[0] != 2 || depths[3] != 0 || depths[4] != 0 {
		t.Fatalf("Depths = %v", depths)
	}
}

func TestLUForestParentIsGreater(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(30)
		sym := mustFactor(t, randomZeroFreeDiag(n, 0.15, rng))
		f := LUForest(sym)
		for j, p := range f.Parent {
			if p != None && p <= j {
				t.Fatalf("parent(%d) = %d not greater", j, p)
			}
		}
	}
}

func TestLUForestDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	sym := mustFactor(t, randomZeroFreeDiag(25, 0.12, rng))
	f := LUForest(sym)
	for j := 0; j < sym.N; j++ {
		urow := sym.URows.Col(j)
		lcol := sym.L.Col(j)
		wantParent := None
		if len(lcol) > 1 && len(urow) > 1 {
			wantParent = urow[1]
		}
		if f.Parent[j] != wantParent {
			t.Fatalf("parent(%d) = %d, want %d", j, f.Parent[j], wantParent)
		}
	}
}

func TestPostOrderIsValidPerm(t *testing.T) {
	f := NewForest([]int{2, 2, 4, 4, None, 6, None})
	p := f.PostOrder()
	if err := sparse.CheckPerm(p, 7); err != nil {
		t.Fatal(err)
	}
	// Every node must be numbered after its descendants.
	for j, par := range f.Parent {
		if par != None && p[par] <= p[j] {
			t.Fatalf("postorder: parent %d (%d) not after child %d (%d)", par, p[par], j, p[j])
		}
	}
}

func TestRelabelPostOrderIsPostOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(40)
		sym := mustFactor(t, randomZeroFreeDiag(n, 0.1, rng))
		f := LUForest(sym)
		g := f.Relabel(f.PostOrder())
		if !g.IsPostOrdered() {
			t.Fatalf("trial %d: relabeled forest is not post-ordered", trial)
		}
	}
}

func TestIsPostOrderedRejects(t *testing.T) {
	// parent(1) = 0 violates parent > child.
	f := NewForest([]int{None, 0})
	if f.IsPostOrdered() {
		t.Fatal("forest with decreasing edge accepted")
	}
	// Interleaved trees: {0,2} tree with root 2, {1} isolated — subtree
	// of 2 is not a contiguous range.
	g := NewForest([]int{2, None, None})
	if g.IsPostOrdered() {
		t.Fatal("forest with non-contiguous subtree accepted")
	}
}

// Theorem 1: if ū_ij ≠ 0 then ū_kj ≠ 0 for every ancestor k of i with
// k < j.
func TestTheorem1(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(25)
		sym := mustFactor(t, randomZeroFreeDiag(n, 0.15, rng))
		f := LUForest(sym)
		for j := 0; j < n; j++ {
			for _, i := range sym.U.Col(j) {
				if i == j {
					continue
				}
				for k := f.Parent[i]; k != None && k < j; k = f.Parent[k] {
					if !sym.U.Has(k, j) {
						t.Fatalf("trial %d: ū(%d,%d)≠0 but ancestor %d missing in column %d", trial, i, j, k, j)
					}
				}
			}
		}
	}
}

// Theorem 2: if ū_ij ≠ 0 then i ∈ T[j], or i ∈ T[k] for some root k < j.
func TestTheorem2(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(25)
		sym := mustFactor(t, randomZeroFreeDiag(n, 0.15, rng))
		f := LUForest(sym)
		root := make([]int, n)
		for _, r := range f.Roots {
			var mark func(v int)
			mark = func(v int) {
				root[v] = r
				for _, c := range f.Children[v] {
					mark(c)
				}
			}
			mark(r)
		}
		for j := 0; j < n; j++ {
			for _, i := range sym.U.Col(j) {
				if i == j {
					continue
				}
				inTj := f.IsAncestor(j, i)
				inEarlierTree := root[i] < j && f.Parent[root[i]] == None
				if !inTj && !inEarlierTree {
					t.Fatalf("trial %d: ū(%d,%d) violates Theorem 2 (root of %d is %d)", trial, i, j, i, root[i])
				}
			}
		}
	}
}

// Rows of L̄ are confined to the subtree of their index (the
// characterization of Section 2: row i of L̄ is a branch within T[i]).
func TestLRowsWithinSubtree(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(25)
		sym := mustFactor(t, randomZeroFreeDiag(n, 0.15, rng))
		f := LUForest(sym)
		lt := sym.L.Transpose() // Col(i) = row i of L̄
		for i := 0; i < n; i++ {
			for _, j := range lt.Col(i) {
				if j == i {
					continue
				}
				if !f.IsAncestor(i, j) {
					t.Fatalf("trial %d: l̄(%d,%d) ≠ 0 but %d ∉ T[%d]", trial, i, j, j, i)
				}
			}
		}
	}
}

// Theorem 3: postordering does not change the static symbolic
// factorization — factoring the permuted matrix equals relabeling the
// factored structures.
func TestTheorem3PostorderPreservesSymbolic(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(25)
		a := randomZeroFreeDiag(n, 0.12, rng)
		sym := mustFactor(t, a)
		f := LUForest(sym)
		po := PostorderSymbolic(sym, f)
		ap := a.PermuteSym(po.Perm)
		symP := mustFactor(t, ap)
		if !patternsEqual(symP.L, po.Sym.L) {
			t.Fatalf("trial %d: L̄ of permuted matrix differs from relabeled L̄", trial)
		}
		if !patternsEqual(symP.URows, po.Sym.URows) {
			t.Fatalf("trial %d: Ū of permuted matrix differs from relabeled Ū", trial)
		}
	}
}

func TestPostorderedForestMatchesRecomputed(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	a := randomZeroFreeDiag(30, 0.1, rng)
	sym := mustFactor(t, a)
	f := LUForest(sym)
	po := PostorderSymbolic(sym, f)
	recomputed := LUForest(po.Sym)
	for j := range recomputed.Parent {
		if recomputed.Parent[j] != po.Forest.Parent[j] {
			t.Fatalf("parent(%d): relabeled %d, recomputed %d", j, po.Forest.Parent[j], recomputed.Parent[j])
		}
	}
}

// Section 3: the postordered matrix is block upper triangular with the
// trees as diagonal blocks.
func TestBlockUpperTriangularDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(30)
		a := randomZeroFreeDiag(n, 0.08, rng)
		sym := mustFactor(t, a)
		po := PostorderSymbolic(sym, LUForest(sym))
		ranges := po.Forest.TreeRanges()
		if i, j := BlockUpperTriangular(po.Sym, ranges); i != -1 {
			t.Fatalf("trial %d: entry (%d,%d) below the diagonal blocks %v", trial, i, j, ranges)
		}
		// Ranges must tile [0, n).
		covered := 0
		for _, r := range ranges {
			covered += r[1] - r[0] + 1
		}
		if covered != n {
			t.Fatalf("trial %d: ranges cover %d of %d", trial, covered, n)
		}
	}
}

func TestPaperExampleForest(t *testing.T) {
	a := paperMatrix()
	sym := mustFactor(t, a)
	f := LUForest(sym)
	// The example couples 0–3, 1–4, 2–5 through column 6: the forest is
	// a single tree rooted at 6.
	if f.NumTrees() != 1 || f.Roots[0] != 6 {
		t.Fatalf("roots = %v, want [6]", f.Roots)
	}
	po := PostorderSymbolic(sym, f)
	if !po.Forest.IsPostOrdered() {
		t.Fatal("postordered example not post-ordered")
	}
}

func TestColumnEtree(t *testing.T) {
	// For a symmetric positive-pattern matrix, the column etree of A is
	// the etree of A² pattern; sanity-check basic invariants instead of
	// exact values: parents are greater, and the tree covers all nodes.
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(25)
		a := randomZeroFreeDiag(n, 0.15, rng)
		f := ColumnEtree(a)
		if f.Len() != n {
			t.Fatalf("len = %d", f.Len())
		}
		for j, p := range f.Parent {
			if p != None && p <= j {
				t.Fatalf("column etree parent(%d) = %d", j, p)
			}
		}
		if err := sparse.CheckPerm(f.PostOrder(), n); err != nil {
			t.Fatal(err)
		}
	}
}

func TestColumnEtreeDense(t *testing.T) {
	// Dense matrix: column etree is a single chain 0→1→…→n−1.
	n := 5
	d := make([]float64, n*n)
	for i := range d {
		d[i] = 1
	}
	f := ColumnEtree(sparse.FromDense(d, n, n, 0))
	for j := 0; j < n-1; j++ {
		if f.Parent[j] != j+1 {
			t.Fatalf("parent(%d) = %d, want %d", j, f.Parent[j], j+1)
		}
	}
	if f.Parent[n-1] != None {
		t.Fatal("last node should be root")
	}
}

func patternsEqual(a, b *sparse.Pattern) bool {
	if a.NCols != b.NCols || a.NNZ() != b.NNZ() {
		return false
	}
	for j := 0; j < a.NCols; j++ {
		ac, bc := a.Col(j), b.Col(j)
		if len(ac) != len(bc) {
			return false
		}
		for k := range ac {
			if ac[k] != bc[k] {
				return false
			}
		}
	}
	return true
}

// Property: for random matrices the postorder keeps triangularity of the
// relabeled structures (L̄ stays lower, Ū stays upper).
func TestQuickPostorderKeepsTriangularity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		a := randomZeroFreeDiag(n, 0.15, rng)
		sym, err := symbolic.Factor(a)
		if err != nil {
			return false
		}
		po := PostorderSymbolic(sym, LUForest(sym))
		for j := 0; j < n; j++ {
			for _, i := range po.Sym.L.Col(j) {
				if i < j {
					return false
				}
			}
			for _, i := range po.Sym.U.Col(j) {
				if i > j {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
