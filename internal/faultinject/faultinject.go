// Package faultinject is a deterministic fault-injection harness for
// the parallel numeric phase: it wraps a scheduler task runner and
// forces panics, errors, NaN poisoning or delays on selected task ids.
//
// The injector exists to pin the robustness contract of the executor
// and the numeric layer under -race stress tests:
//
//   - a panicking or erroring task must surface as a *sched.TaskError
//     naming the task, with no worker claiming another task afterwards;
//   - NaN poisoning must trip the core layer's non-finite guards;
//   - with no fault configured the wrapper must be transparent, so the
//     factorization stays bitwise deterministic.
//
// Fault placement is either explicit (Set) or drawn from a seeded
// generator (PickTasks), never from global randomness, so every failing
// schedule is replayable from its seed.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every injected error and embedded in every
// injected panic value, so tests can tell deliberate faults from real
// failures.
var ErrInjected = errors.New("faultinject: injected fault")

// Mode selects what an injected fault does to its task.
type Mode int

const (
	// None leaves the task untouched.
	None Mode = iota
	// Error makes the task fail with an error wrapping ErrInjected
	// instead of running its body.
	Error
	// Panic makes the task panic (with a value mentioning ErrInjected)
	// instead of running its body, exercising the executor's recover
	// path.
	Panic
	// PoisonNaN runs the task body normally and then invokes the
	// caller's poison callback, which is expected to overwrite some of
	// the task's output with NaN — modeling a kernel that silently
	// produced garbage. Detection is the downstream guards' job.
	PoisonNaN
	// Delay sleeps for the fault's Sleep duration before running the
	// task body, stretching schedules to expose cancellation races.
	Delay
)

// String names the mode for test logs.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Error:
		return "error"
	case Panic:
		return "panic"
	case PoisonNaN:
		return "poison-nan"
	case Delay:
		return "delay"
	}
	return "unknown"
}

// Fault is one injected behavior, keyed to a task id by Injector.Set.
type Fault struct {
	Mode Mode
	// Sleep is the pre-task delay of a Delay fault.
	Sleep time.Duration
}

// Injector holds a fault plan over task ids. Configure it with Set
// before the execution starts; Wrap and Fired are safe for concurrent
// use during the execution.
type Injector struct {
	faults map[int]Fault
	fired  atomic.Int64
}

// New returns an empty injector (all tasks untouched).
func New() *Injector {
	return &Injector{faults: make(map[int]Fault)}
}

// Set plans fault f for task id, replacing any previous plan for it.
// Must not be called concurrently with a wrapped execution.
func (in *Injector) Set(id int, f Fault) {
	if f.Mode == None {
		delete(in.faults, id)
		return
	}
	in.faults[id] = f
}

// Fired returns how many faults have triggered so far.
func (in *Injector) Fired() int { return int(in.fired.Load()) }

// Wrap returns a task runner that injects the planned faults around
// run. poison is invoked with the task id for PoisonNaN faults after
// the body succeeds; a nil poison downgrades PoisonNaN to None. With an
// empty plan the wrapper forwards every call unchanged, adding only one
// map lookup per task.
func (in *Injector) Wrap(run func(id int) error, poison func(id int)) func(id int) error {
	return func(id int) error {
		f, ok := in.faults[id]
		if !ok {
			return run(id)
		}
		switch f.Mode {
		case Error:
			in.fired.Add(1)
			return fmt.Errorf("%w: forced error on task %d", ErrInjected, id)
		case Panic:
			in.fired.Add(1)
			panic(fmt.Sprintf("faultinject: forced panic on task %d", id))
		case Delay:
			in.fired.Add(1)
			time.Sleep(f.Sleep)
			return run(id)
		case PoisonNaN:
			err := run(id)
			if err == nil && poison != nil {
				in.fired.Add(1)
				poison(id)
			}
			return err
		}
		return run(id)
	}
}

// RequestPlan extends the injector from task ids to a request-serving
// layer: faults are keyed by the 1-based request sequence number a
// server assigns as requests arrive, so a chaos test can say "request
// 3 panics, request 5 is delayed 50ms, request 9 has a NaN poisoned
// into its input" and drive those faults against a live server purely
// from the outside (an environment variable), with no test hooks in
// the request path. Like the task injector, placement is fully
// deterministic — a failing run is replayable from its spec string.
//
// The spec grammar is a comma-separated list of
//
//	<seq>:<mode>[=<duration>]
//
// with modes panic, error, nan and delay (delay takes the duration):
//
//	SLUSERVER_FAULTS="3:panic,5:delay=50ms,9:nan,12:error"
//
// Claim is safe for concurrent use: each request claims the next
// sequence number with one atomic increment.
type RequestPlan struct {
	faults map[int64]Fault
	seq    atomic.Int64
	fired  atomic.Int64
}

// ParseRequestPlan parses the spec grammar above. An empty spec returns
// a nil plan (no faults) — the zero-configuration production default.
func ParseRequestPlan(spec string) (*RequestPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &RequestPlan{faults: make(map[int64]Fault)}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		seqStr, modeStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: request fault %q: want <seq>:<mode>[=<duration>]", part)
		}
		seq, err := strconv.ParseInt(strings.TrimSpace(seqStr), 10, 64)
		if err != nil || seq < 1 {
			return nil, fmt.Errorf("faultinject: request fault %q: bad sequence number", part)
		}
		modeStr, durStr, hasDur := strings.Cut(strings.TrimSpace(modeStr), "=")
		var f Fault
		switch modeStr {
		case "panic":
			f.Mode = Panic
		case "error":
			f.Mode = Error
		case "nan":
			f.Mode = PoisonNaN
		case "delay":
			f.Mode = Delay
			if !hasDur {
				return nil, fmt.Errorf("faultinject: request fault %q: delay needs =<duration>", part)
			}
			d, err := time.ParseDuration(strings.TrimSpace(durStr))
			if err != nil {
				return nil, fmt.Errorf("faultinject: request fault %q: %v", part, err)
			}
			f.Sleep = d
		default:
			return nil, fmt.Errorf("faultinject: request fault %q: unknown mode %q (want panic, error, nan or delay)", part, modeStr)
		}
		if f.Mode != Delay && hasDur {
			return nil, fmt.Errorf("faultinject: request fault %q: only delay takes a duration", part)
		}
		p.faults[seq] = f
	}
	return p, nil
}

// Claim assigns the next request sequence number and returns the fault
// planned for it (Mode None when the request is untouched). A nil plan
// claims nothing and injects nothing, so servers can call it
// unconditionally.
func (p *RequestPlan) Claim() (seq int64, f Fault) {
	if p == nil {
		return 0, Fault{}
	}
	seq = p.seq.Add(1)
	f, ok := p.faults[seq]
	if ok && f.Mode != None {
		p.fired.Add(1)
	}
	return seq, f
}

// Fired returns how many planned request faults have been claimed so
// far (a claimed fault is considered fired: the server acts on it
// unconditionally).
func (p *RequestPlan) Fired() int {
	if p == nil {
		return 0
	}
	return int(p.fired.Load())
}

// Planned returns the number of faults in the plan.
func (p *RequestPlan) Planned() int {
	if p == nil {
		return 0
	}
	return len(p.faults)
}

// PickTasks deterministically selects k distinct task ids from [0, n)
// using the given seed (k is clamped to n). The same seed always yields
// the same ids, so a failing stress run is replayable.
func PickTasks(seed int64, n, k int) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	ids := rng.Perm(n)[:k]
	// Sorted output keeps logs readable; determinism comes from the rng.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids
}
