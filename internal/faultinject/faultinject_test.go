package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWrapTransparentWithoutFaults(t *testing.T) {
	in := New()
	calls := 0
	run := in.Wrap(func(id int) error { calls++; return nil }, nil)
	for id := 0; id < 5; id++ {
		if err := run(id); err != nil {
			t.Fatalf("task %d: %v", id, err)
		}
	}
	if calls != 5 || in.Fired() != 0 {
		t.Fatalf("calls = %d, fired = %d", calls, in.Fired())
	}
}

func TestErrorFault(t *testing.T) {
	in := New()
	in.Set(3, Fault{Mode: Error})
	ran := false
	run := in.Wrap(func(id int) error { ran = true; return nil }, nil)
	err := run(3)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if ran {
		t.Fatal("body ran despite Error fault")
	}
	if in.Fired() != 1 {
		t.Fatalf("fired = %d", in.Fired())
	}
}

func TestPanicFault(t *testing.T) {
	in := New()
	in.Set(7, Fault{Mode: Panic})
	run := in.Wrap(func(id int) error { return nil }, nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(fmt.Sprint(r), "faultinject") {
			t.Fatalf("panic value %v does not identify the injector", r)
		}
	}()
	_ = run(7)
}

func TestPoisonFault(t *testing.T) {
	in := New()
	in.Set(2, Fault{Mode: PoisonNaN})
	poisoned := -1
	run := in.Wrap(func(id int) error { return nil }, func(id int) { poisoned = id })
	if err := run(2); err != nil {
		t.Fatal(err)
	}
	if poisoned != 2 {
		t.Fatalf("poisoned = %d, want 2", poisoned)
	}
	// Poison only fires on success.
	in.Set(4, Fault{Mode: PoisonNaN})
	boom := errors.New("boom")
	run = in.Wrap(func(id int) error { return boom }, func(id int) { poisoned = id })
	if err := run(4); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if poisoned == 4 {
		t.Fatal("poison fired on a failing task")
	}
}

func TestDelayFault(t *testing.T) {
	in := New()
	in.Set(0, Fault{Mode: Delay, Sleep: 10 * time.Millisecond})
	start := time.Now()
	run := in.Wrap(func(id int) error { return nil }, nil)
	if err := run(0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("delay fault slept only %v", d)
	}
}

func TestSetNoneClears(t *testing.T) {
	in := New()
	in.Set(1, Fault{Mode: Error})
	in.Set(1, Fault{Mode: None})
	run := in.Wrap(func(id int) error { return nil }, nil)
	if err := run(1); err != nil {
		t.Fatalf("cleared fault still fires: %v", err)
	}
}

func TestPickTasksDeterministic(t *testing.T) {
	a := PickTasks(42, 100, 8)
	b := PickTasks(42, 100, 8)
	if len(a) != 8 {
		t.Fatalf("len = %d", len(a))
	}
	seen := map[int]bool{}
	for i, id := range a {
		if id < 0 || id >= 100 {
			t.Fatalf("id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		if id != b[i] {
			t.Fatalf("seed 42 not deterministic: %v vs %v", a, b)
		}
		if i > 0 && a[i-1] > id {
			t.Fatalf("ids not sorted: %v", a)
		}
	}
	if c := PickTasks(43, 100, 8); fmt.Sprint(c) == fmt.Sprint(a) {
		t.Fatalf("different seeds gave identical picks %v", a)
	}
	if got := PickTasks(1, 3, 10); len(got) != 3 {
		t.Fatalf("clamp failed: %v", got)
	}
	if got := PickTasks(1, 3, 0); got != nil {
		t.Fatalf("k=0 gave %v", got)
	}
}

// TestRequestPlanParse pins the service-layer spec grammar and the
// concurrent Claim contract.
func TestRequestPlanParse(t *testing.T) {
	p, err := ParseRequestPlan("3:panic, 5:delay=50ms,9:nan,12:error")
	if err != nil {
		t.Fatal(err)
	}
	if p.Planned() != 4 {
		t.Fatalf("Planned = %d, want 4", p.Planned())
	}
	want := map[int64]Fault{
		3:  {Mode: Panic},
		5:  {Mode: Delay, Sleep: 50 * time.Millisecond},
		9:  {Mode: PoisonNaN},
		12: {Mode: Error},
	}
	for seq := int64(1); seq <= 14; seq++ {
		got, f := p.Claim()
		if got != seq {
			t.Fatalf("Claim seq = %d, want %d", got, seq)
		}
		if f != want[seq] {
			t.Fatalf("seq %d: fault %+v, want %+v", seq, f, want[seq])
		}
	}
	if p.Fired() != 4 {
		t.Fatalf("Fired = %d, want 4", p.Fired())
	}

	// The empty spec is the production default: a nil plan whose Claim
	// is a no-op.
	if p, err := ParseRequestPlan("  "); err != nil || p != nil {
		t.Fatalf("empty spec: plan %v err %v", p, err)
	}
	var nilPlan *RequestPlan
	if seq, f := nilPlan.Claim(); seq != 0 || f.Mode != None {
		t.Fatalf("nil plan Claim = %d %+v", seq, f)
	}

	for _, bad := range []string{
		"x:panic", "0:panic", "3panic", "3:jitter", "3:delay", "3:panic=5ms",
		"3:delay=xyz",
	} {
		if _, err := ParseRequestPlan(bad); err == nil {
			t.Errorf("spec %q: want parse error", bad)
		}
	}
}

// TestRequestPlanConcurrentClaim drives Claim from many goroutines:
// every sequence number is handed out exactly once and every planned
// fault fires exactly once.
func TestRequestPlanConcurrentClaim(t *testing.T) {
	p, err := ParseRequestPlan("1:error,17:panic,33:nan,49:delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	seqs := make([]int64, n)
	faults := make([]Fault, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seqs[g], faults[g] = p.Claim()
		}(g)
	}
	wg.Wait()
	seen := map[int64]bool{}
	fired := 0
	for g := 0; g < n; g++ {
		if seen[seqs[g]] {
			t.Fatalf("sequence %d claimed twice", seqs[g])
		}
		seen[seqs[g]] = true
		if faults[g].Mode != None {
			fired++
		}
	}
	if fired != 4 || p.Fired() != 4 {
		t.Fatalf("fired %d (plan says %d), want 4", fired, p.Fired())
	}
}
