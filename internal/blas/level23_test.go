package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveGemm is the O(mnk) reference used to validate the blocked kernel.
func naiveGemm(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*lda+p] * b[p*ldb+j]
			}
			c[i*ldc+j] = alpha*s + beta*c[i*ldc+j]
		}
	}
}

func randMat(m, n int, rng *rand.Rand) []float64 {
	a := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	return a
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestDgemvNoTrans(t *testing.T) {
	// A = [1 2; 3 4; 5 6], x = [1, 1], y = A x = [3, 7, 11]
	a := []float64{1, 2, 3, 4, 5, 6}
	x := []float64{1, 1}
	y := make([]float64, 3)
	Dgemv(false, 3, 2, 1, a, 2, x, 0, y)
	want := []float64{3, 7, 11}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Dgemv = %v, want %v", y, want)
		}
	}
}

func TestDgemvTrans(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6}
	x := []float64{1, 1, 1}
	y := make([]float64, 2)
	Dgemv(true, 3, 2, 1, a, 2, x, 0, y)
	want := []float64{9, 12}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Dgemv trans = %v, want %v", y, want)
		}
	}
}

func TestDgemvBeta(t *testing.T) {
	a := []float64{2}
	y := []float64{10}
	Dgemv(false, 1, 1, 1, a, 1, []float64{3}, 0.5, y)
	if y[0] != 11 {
		t.Fatalf("Dgemv beta = %g, want 11", y[0])
	}
}

func TestDger(t *testing.T) {
	a := make([]float64, 4) // 2x2 zero
	Dger(2, 2, 2, []float64{1, 2}, []float64{3, 4}, a, 2)
	want := []float64{6, 8, 12, 16}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("Dger = %v, want %v", a, want)
		}
	}
}

func TestDtrsvLowerUnit(t *testing.T) {
	// L = [1 0; 2 1], b = [3, 8] → y = [3, 2]
	l := []float64{1, 0, 2, 1}
	x := []float64{3, 8}
	Dtrsv(true, true, 2, l, 2, x)
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("Dtrsv lower = %v", x)
	}
}

func TestDtrsvUpper(t *testing.T) {
	// U = [2 1; 0 4], b = [5, 8] → x = [1.5, 2]
	u := []float64{2, 1, 0, 4}
	x := []float64{5, 8}
	Dtrsv(false, false, 2, u, 2, x)
	if x[0] != 1.5 || x[1] != 2 {
		t.Fatalf("Dtrsv upper = %v", x)
	}
}

func TestDgemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sizes := [][3]int{{1, 1, 1}, {3, 5, 2}, {16, 16, 16}, {65, 33, 129}, {70, 70, 70}, {128, 1, 128}, {1, 128, 7}}
	for _, s := range sizes {
		m, n, k := s[0], s[1], s[2]
		a := randMat(m, k, rng)
		b := randMat(k, n, rng)
		c1 := randMat(m, n, rng)
		c2 := append([]float64(nil), c1...)
		alpha, beta := 1.5, -0.5
		Dgemm(m, n, k, alpha, a, k, b, n, beta, c1, n)
		naiveGemm(m, n, k, alpha, a, k, b, n, beta, c2, n)
		if d := maxDiff(c1, c2); d > 1e-10 {
			t.Fatalf("Dgemm %v differs from naive by %g", s, d)
		}
	}
}

func TestDgemmBetaZeroOverwritesNaN(t *testing.T) {
	// beta = 0 must overwrite even NaN entries in C.
	c := []float64{math.NaN()}
	Dgemm(1, 1, 1, 1, []float64{2}, 1, []float64{3}, 1, 0, c, 1)
	if c[0] != 6 {
		t.Fatalf("Dgemm beta=0 = %g, want 6", c[0])
	}
}

func TestDgemmSubmatrixStrides(t *testing.T) {
	// Operate on the top-left 2×2 blocks of 3-wide storage.
	rng := rand.New(rand.NewSource(12))
	a := randMat(3, 3, rng)
	b := randMat(3, 3, rng)
	c1 := randMat(3, 3, rng)
	c2 := append([]float64(nil), c1...)
	Dgemm(2, 2, 2, 1, a, 3, b, 3, 1, c1, 3)
	naiveGemm(2, 2, 2, 1, a, 3, b, 3, 1, c2, 3)
	if d := maxDiff(c1, c2); d > 1e-12 {
		t.Fatalf("strided Dgemm differs by %g", d)
	}
	// Elements outside the 2×2 block must be untouched.
	for _, idx := range []int{2, 5, 6, 7, 8} {
		if c1[idx] != c2[idx] {
			t.Fatal("Dgemm touched memory outside the block")
		}
	}
}

func TestDtrsmLowerUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, n := 9, 5
	l := randMat(m, m, rng)
	for i := 0; i < m; i++ {
		l[i*m+i] = 1
		for j := i + 1; j < m; j++ {
			l[i*m+j] = 0
		}
	}
	x := randMat(m, n, rng)
	b := append([]float64(nil), x...)
	// b = L x, then solve back.
	lx := make([]float64, m*n)
	naiveGemm(m, n, m, 1, l, m, x, n, 0, lx, n)
	Dtrsm(true, true, m, n, 1, l, m, lx, n)
	if d := maxDiff(lx, b); d > 1e-10 {
		t.Fatalf("Dtrsm lower-unit residual %g", d)
	}
}

func TestDtrsmUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m, n := 7, 4
	u := randMat(m, m, rng)
	for i := 0; i < m; i++ {
		u[i*m+i] += 5 // well-conditioned diagonal
		for j := 0; j < i; j++ {
			u[i*m+j] = 0
		}
	}
	x := randMat(m, n, rng)
	ux := make([]float64, m*n)
	naiveGemm(m, n, m, 1, u, m, x, n, 0, ux, n)
	Dtrsm(false, false, m, n, 1, u, m, ux, n)
	if d := maxDiff(ux, x); d > 1e-10 {
		t.Fatalf("Dtrsm upper residual %g", d)
	}
}

func TestDtrsmAlpha(t *testing.T) {
	// T = I: X = alpha*B.
	tmat := []float64{1, 0, 0, 1}
	b := []float64{2, 4, 6, 8}
	Dtrsm(true, true, 2, 2, 0.5, tmat, 2, b, 2)
	want := []float64{1, 2, 3, 4}
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("Dtrsm alpha = %v, want %v", b, want)
		}
	}
}

// Property: Dgemm agrees with the naive kernel on random shapes.
func TestQuickDgemm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := 1+rng.Intn(40), 1+rng.Intn(40), 1+rng.Intn(40)
		a := randMat(m, k, rng)
		b := randMat(k, n, rng)
		c1 := randMat(m, n, rng)
		c2 := append([]float64(nil), c1...)
		Dgemm(m, n, k, -2, a, k, b, n, 1, c1, n)
		naiveGemm(m, n, k, -2, a, k, b, n, 1, c2, n)
		return maxDiff(c1, c2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDtrsvtLower(t *testing.T) {
	// L = [1 0; 2 1] (unit): Lᵀx = b with b = [5, 2] → x[1]=2, x[0]=5−2·2=1
	l := []float64{1, 0, 2, 1}
	x := []float64{5, 2}
	Dtrsvt(true, true, 2, l, 2, x)
	if x[0] != 1 || x[1] != 2 {
		t.Fatalf("Dtrsvt lower-unit = %v, want [1 2]", x)
	}
}

func TestDtrsvtUpper(t *testing.T) {
	// U = [2 3; 0 4]: Uᵀx = b with b = [2, 10] → x[0]=1, x[1]=(10−3)/4
	u := []float64{2, 3, 0, 4}
	x := []float64{2, 10}
	Dtrsvt(false, false, 2, u, 2, x)
	if x[0] != 1 || x[1] != 1.75 {
		t.Fatalf("Dtrsvt upper = %v, want [1 1.75]", x)
	}
}

func TestDtrsvtMatchesDtrsvOfTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n := 9
	// Build a well-conditioned lower-triangular T.
	tm := randMat(n, n, rng)
	for i := 0; i < n; i++ {
		tm[i*n+i] += float64(n)
		for j := i + 1; j < n; j++ {
			tm[i*n+j] = 0
		}
	}
	// Tᵀ explicitly.
	tt := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tt[j*n+i] = tm[i*n+j]
		}
	}
	b := randVec(n, rng)
	x1 := append([]float64(nil), b...)
	Dtrsvt(true, false, n, tm, n, x1) // Tᵀ x = b via Dtrsvt on T
	x2 := append([]float64(nil), b...)
	Dtrsv(false, false, n, tt, n, x2) // Tᵀ is upper: direct solve
	if d := maxDiff(x1, x2); d > 1e-12 {
		t.Fatalf("Dtrsvt differs from direct transpose solve by %g", d)
	}
}

func TestDgemmAlphaZeroEarlyOut(t *testing.T) {
	c := []float64{1, 2, 3, 4}
	Dgemm(2, 2, 2, 0, []float64{9, 9, 9, 9}, 2, []float64{9, 9, 9, 9}, 2, 1, c, 2)
	want := []float64{1, 2, 3, 4}
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("alpha=0 modified C: %v", c)
		}
	}
}

func TestDgemmKZero(t *testing.T) {
	c := []float64{1, 2}
	Dgemm(1, 2, 0, 1, nil, 1, nil, 2, 2, c, 2)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("k=0 should just scale C by beta: %v", c)
	}
}
