//go:build amd64

// FastMath assembly dispatch. See fastmath.go for the mode's contract.
//
//lucheck:allow fp-reassoc — FastMath kernels are exempt from the
// bitwise-determinism contract by design (see fastmath.go).

package blas

// useFMA3 gates the FMA assembly micro-kernel of the FastMath mode.
// FMA needs the same OS-enabled YMM state as AVX2, so detection builds
// on detectAVX2 and only adds the FMA3 feature bit.
var useFMA3 = detectFMA3()

// HasAVX2 and HasFMA3 report which assembly micro-kernels are active
// on this host (diagnostics: the benchmark harness records them in its
// autotune report).
func HasAVX2() bool { return useAVX2 }

// HasFMA3 reports whether the FastMath FMA micro-kernel is active.
func HasFMA3() bool { return useFMA3 }

func detectFMA3() bool {
	if !useAVX2 {
		return false
	}
	_, _, cx, _ := cpuid(1, 0)
	return cx&(1<<12) != 0
}

//go:noescape
func microKernel4x8FMA(kc int, pa, pb, c *float64, ldc int)

// microKernel4x8Fast dispatches the FastMath full-tile kernel: the FMA3
// assembly version when the CPU supports it, the portable branch-free
// Go kernel otherwise. The two are NOT bitwise identical to each other
// or to the bitwise-mode kernels — FastMath callers accept any
// error-bounded result.
func microKernel4x8Fast(kc int, pa, pb []float64, c []float64, ldc int) {
	if useFMA3 && kc > 0 {
		microKernel4x8FMA(kc, &pa[0], &pb[0], &c[0], ldc)
		return
	}
	microKernel4x8FastGo(kc, pa, pb, c, ldc)
}
