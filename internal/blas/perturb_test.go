package blas

import (
	"math"
	"testing"
)

// TestDgetf2StaticFailModeMatchesDgetf2 pins that fail mode is exactly
// the historical Dgetf2 behavior, including the first-zero-column
// report.
func TestDgetf2StaticFailModeMatchesDgetf2(t *testing.T) {
	// Column 1 becomes exactly zero after elimination of column 0
	// (second column is a multiple of the first).
	a := []float64{
		2, 4, 1,
		1, 2, 5,
		3, 6, 2,
	}
	b := append([]float64(nil), a...)
	ipivA := make([]int, 3)
	ipivB := make([]int, 3)
	errA := Dgetf2(3, 3, a, 3, ipivA)
	np, firstZero := Dgetf2Static(3, 3, b, 3, ipivB, 0, nil)
	if errA != ErrSingular {
		t.Fatalf("Dgetf2 err = %v, want ErrSingular", errA)
	}
	if np != 0 {
		t.Fatalf("fail mode perturbed %d columns", np)
	}
	if firstZero != 1 {
		t.Fatalf("firstZero = %d, want 1", firstZero)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fail mode diverged from Dgetf2 at %d: %v vs %v", i, a[i], b[i])
		}
	}
	for i := range ipivA {
		if ipivA[i] != ipivB[i] {
			t.Fatalf("fail mode pivots diverged: %v vs %v", ipivA, ipivB)
		}
	}
}

// TestDgetf2StaticPerturbsZeroPivot: an exactly zero pivot becomes
// +thresh and the factorization completes usably.
func TestDgetf2StaticPerturbsZeroPivot(t *testing.T) {
	a := []float64{
		2, 4, 1,
		1, 2, 5,
		3, 6, 2,
	}
	ipiv := make([]int, 3)
	pcols := make([]int, 3)
	thresh := 1e-8
	np, firstZero := Dgetf2Static(3, 3, a, 3, ipiv, thresh, pcols)
	if firstZero != -1 {
		t.Fatalf("perturb mode reported firstZero = %d", firstZero)
	}
	if np != 1 || pcols[0] != 1 {
		t.Fatalf("perturbed columns = %v, want [1]", pcols[:np])
	}
	// The perturbed diagonal entry is exactly ±thresh.
	if got := math.Abs(a[1*3+1]); got != thresh {
		t.Fatalf("|u_11| = %g, want %g", got, thresh)
	}
	for i, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite factor entry at %d: %v", i, v)
		}
	}
}

// TestDgetf2StaticSignPreserving: tiny pivots keep their sign.
func TestDgetf2StaticSignPreserving(t *testing.T) {
	thresh := 0.5
	for _, tc := range []struct {
		piv  float64
		want float64
	}{
		{1e-300, thresh},
		{-1e-300, -thresh},
		{0, thresh},
	} {
		a := []float64{tc.piv}
		ipiv := make([]int, 1)
		pcols := make([]int, 1)
		np, _ := Dgetf2Static(1, 1, a, 1, ipiv, thresh, pcols)
		if np != 1 {
			t.Fatalf("pivot %g not perturbed", tc.piv)
		}
		if a[0] != tc.want {
			t.Fatalf("pivot %g perturbed to %g, want %g", tc.piv, a[0], tc.want)
		}
	}
}

// TestDgetf2StaticLargePivotUntouched: pivots at or above the threshold
// are not modified, so perturbation is a no-op on healthy panels.
func TestDgetf2StaticLargePivotUntouched(t *testing.T) {
	a := []float64{
		4, 1,
		1, 3,
	}
	want := append([]float64(nil), a...)
	ipivWant := make([]int, 2)
	if err := Dgetf2(2, 2, want, 2, ipivWant); err != nil {
		t.Fatal(err)
	}
	ipiv := make([]int, 2)
	pcols := make([]int, 2)
	np, _ := Dgetf2Static(2, 2, a, 2, ipiv, 1e-8, pcols)
	if np != 0 {
		t.Fatalf("healthy panel perturbed: %v", pcols[:np])
	}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("perturb mode changed a healthy factorization at %d", i)
		}
	}
}
