package blas

import (
	"math"
	"math/rand"
	"testing"
)

// This file pins the packed/blocked kernels bitwise to the seed
// kernels: seedDgemm, seedDtrsm and seedDgetf2Static below are
// verbatim copies of the pre-packing implementations (the original
// level3.go/lu.go), and every test demands Float64bits equality, not
// tolerance. The packed paths may reorder *which element* is updated
// when, but each element's own contribution sequence — ascending k,
// with the exact-zero skip — must match the seed exactly, and that is
// what these tests enforce.

const (
	seedMC = 64
	seedKC = 128
)

func seedDgemm(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if beta != 1 {
		for i := 0; i < m; i++ {
			row := c[i*ldc : i*ldc+n]
			if beta == 0 {
				for j := range row {
					row[j] = 0
				}
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	for kb := 0; kb < k; kb += seedKC {
		kEnd := kb + seedKC
		if kEnd > k {
			kEnd = k
		}
		for ib := 0; ib < m; ib += seedMC {
			iEnd := ib + seedMC
			if iEnd > m {
				iEnd = m
			}
			for i := ib; i < iEnd; i++ {
				crow := c[i*ldc : i*ldc+n]
				arow := a[i*lda:]
				for p := kb; p < kEnd; p++ {
					aip := alpha * arow[p]
					if aip == 0 {
						continue
					}
					brow := b[p*ldb : p*ldb+n]
					for j, v := range brow {
						crow[j] += aip * v
					}
				}
			}
		}
	}
}

func seedDtrsm(lower, unit bool, m, n int, alpha float64, t []float64, ldt int, b []float64, ldb int) {
	if alpha != 1 {
		for i := 0; i < m; i++ {
			row := b[i*ldb : i*ldb+n]
			for j := range row {
				row[j] *= alpha
			}
		}
	}
	if lower {
		for i := 0; i < m; i++ {
			bi := b[i*ldb : i*ldb+n]
			trow := t[i*ldt : i*ldt+i]
			for p, tip := range trow {
				if tip == 0 {
					continue
				}
				bp := b[p*ldb : p*ldb+n]
				for j, v := range bp {
					bi[j] -= tip * v
				}
			}
			if !unit {
				d := 1 / t[i*ldt+i]
				for j := range bi {
					bi[j] *= d
				}
			}
		}
		return
	}
	for i := m - 1; i >= 0; i-- {
		bi := b[i*ldb : i*ldb+n]
		trow := t[i*ldt+i+1 : i*ldt+m]
		for pj, tip := range trow {
			if tip == 0 {
				continue
			}
			p := i + 1 + pj
			bp := b[p*ldb : p*ldb+n]
			for j, v := range bp {
				bi[j] -= tip * v
			}
		}
		if !unit {
			d := 1 / t[i*ldt+i]
			for j := range bi {
				bi[j] *= d
			}
		}
	}
}

func seedDgetf2Static(m, n int, a []float64, lda int, ipiv []int, thresh float64) (perturbed []int, firstZero int) {
	mn := m
	if n < mn {
		mn = n
	}
	firstZero = -1
	for j := 0; j < mn; j++ {
		p := j
		best := math.Abs(a[j*lda+j])
		for i := j + 1; i < m; i++ {
			if v := math.Abs(a[i*lda+j]); v > best {
				best, p = v, i
			}
		}
		ipiv[j] = p
		if best == 0 && thresh <= 0 {
			if firstZero < 0 {
				firstZero = j
			}
			continue
		}
		if p != j {
			Dswap(n, a[j*lda:], 1, a[p*lda:], 1)
		}
		piv := a[j*lda+j]
		if thresh > 0 && math.Abs(piv) < thresh {
			if math.Signbit(piv) {
				piv = -thresh
			} else {
				piv = thresh
			}
			a[j*lda+j] = piv
			perturbed = append(perturbed, j)
		}
		inv := 1 / piv
		for i := j + 1; i < m; i++ {
			lij := a[i*lda+j] * inv
			a[i*lda+j] = lij
			if lij == 0 {
				continue
			}
			arow := a[i*lda+j+1 : i*lda+n]
			urow := a[j*lda+j+1 : j*lda+n]
			for t, v := range urow {
				arow[t] -= lij * v
			}
		}
	}
	return perturbed, firstZero
}

// sparseRandMat draws normal values with ~20% exact zeros (half of
// them negative zeros) and a sprinkle of tiny magnitudes, so the
// kernels' exact-zero skip paths and sign handling are exercised.
func sparseRandMat(m, n int, rng *rand.Rand) []float64 {
	a := make([]float64, m*n)
	for i := range a {
		switch r := rng.Float64(); {
		case r < 0.1:
			a[i] = 0
		case r < 0.2:
			a[i] = math.Copysign(0, -1)
		case r < 0.25:
			a[i] = rng.NormFloat64() * 0x1p-1000
		default:
			a[i] = rng.NormFloat64()
		}
	}
	return a
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d = %x (%g), seed %x (%g)",
				name, i, math.Float64bits(got[i]), got[i],
				math.Float64bits(want[i]), want[i])
		}
	}
}

// TestDgemmBitwiseParity pins the packed path (and the small-path
// dispatch) to the seed kernel across shapes straddling every
// dispatch and edge-tile boundary.
func TestDgemmBitwiseParity(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	shapes := [][3]int{
		{4, 8, 64},    // exactly one micro-tile, packed cutoff boundary
		{64, 64, 64},  // packed, full tiles
		{64, 64, 300}, // multiple KC blocks
		{129, 17, 261},
		{5, 11, 300},
		{67, 130, 129},
		{100, 8, 4},
		{256, 256, 256},
		{3, 300, 300}, // m < MR: scalar path at size
		{300, 7, 300}, // n < NR: scalar path at size
	}
	alphas := []float64{1, -1, 0.5, 0, 2}
	betas := []float64{1, 0, -1, 0.5}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		a := sparseRandMat(m, k, rng)
		b := sparseRandMat(k, n, rng)
		c0 := sparseRandMat(m, n, rng)
		for _, alpha := range alphas {
			for _, beta := range betas {
				c1 := append([]float64(nil), c0...)
				c2 := append([]float64(nil), c0...)
				Dgemm(m, n, k, alpha, a, k, b, n, beta, c1, n)
				seedDgemm(m, n, k, alpha, a, k, b, n, beta, c2, n)
				bitsEqual(t, "Dgemm", c1, c2)
			}
		}
	}
}

// TestDtrsmBitwiseParity pins the blocked lower solve (and the
// untouched upper solve) to the seed kernel.
func TestDtrsmBitwiseParity(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, lower := range []bool{true, false} {
		for _, unit := range []bool{true, false} {
			for _, m := range []int{1, 16, 32, 33, 64, 200} {
				for _, n := range []int{1, 8, 50} {
					tm := sparseRandMat(m, m, rng)
					for i := 0; i < m; i++ {
						// Well-scaled diagonal keeps iterated solves finite.
						tm[i*m+i] = 1 + rng.Float64()
					}
					b0 := sparseRandMat(m, n, rng)
					for _, alpha := range []float64{1, -1, 0.5} {
						b1 := append([]float64(nil), b0...)
						b2 := append([]float64(nil), b0...)
						Dtrsm(lower, unit, m, n, alpha, tm, m, b1, n)
						seedDtrsm(lower, unit, m, n, alpha, tm, m, b2, n)
						bitsEqual(t, "Dtrsm", b1, b2)
					}
				}
			}
		}
	}
}

// TestDgetrfStaticBitwiseParity pins the blocked right-looking
// factorization to the unblocked seed kernel: same factors, pivots,
// perturbation reports, and first-zero column, bit for bit.
func TestDgetrfStaticBitwiseParity(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	shapes := [][2]int{
		{16, 16}, // below luNB: straight dispatch
		{96, 64}, // tall, blocked
		{130, 130},
		{64, 100}, // wide: trailing columns after the last panel
		{261, 96},
	}
	for _, s := range shapes {
		m, n := s[0], s[1]
		for _, thresh := range []float64{0, 1e-8} {
			a0 := sparseRandMat(m, n, rng)
			mn := m
			if n < mn {
				mn = n
			}
			a1 := append([]float64(nil), a0...)
			a2 := append([]float64(nil), a0...)
			ipiv1 := make([]int, mn)
			ipiv2 := make([]int, mn)
			pbuf := make([]int, mn)
			np, fz1 := DgetrfStatic(m, n, a1, n, ipiv1, thresh, pbuf)
			pcols, fz2 := seedDgetf2Static(m, n, a2, n, ipiv2, thresh)
			bitsEqual(t, "DgetrfStatic factors", a1, a2)
			if fz1 != fz2 {
				t.Fatalf("%dx%d thresh=%g: firstZero %d vs seed %d", m, n, thresh, fz1, fz2)
			}
			if np != len(pcols) {
				t.Fatalf("%dx%d thresh=%g: %d perturbations vs seed %d", m, n, thresh, np, len(pcols))
			}
			for i := 0; i < np; i++ {
				if pbuf[i] != pcols[i] {
					t.Fatalf("%dx%d: perturbed col %d vs seed %d", m, n, pbuf[i], pcols[i])
				}
			}
			for i := range ipiv1 {
				if ipiv1[i] != ipiv2[i] {
					t.Fatalf("%dx%d: ipiv[%d] = %d vs seed %d", m, n, i, ipiv1[i], ipiv2[i])
				}
			}
		}
	}
}

// TestDgetrfStaticZeroPivotParity drives the fail-mode skip and the
// perturb-mode replacement through the *blocked* path: column 40 (in
// the middle luNB panel) starts entirely zero and stays exactly zero
// under elimination (every update subtracts l·0 = ±0), so step 40
// meets an exactly zero pivot column. In fail mode the skipped
// column's L part is all zeros, which the later panels' Dtrsm/Dgemm
// zero-skips must treat identically to the unblocked kernel's skipped
// eliminations.
func TestDgetrfStaticZeroPivotParity(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	m, n := 150, 96
	base := sparseRandMat(m, n, rng)
	for i := 0; i < m; i++ {
		base[i*n+40] = 0
	}
	for _, thresh := range []float64{0, 1e-8} {
		a1 := append([]float64(nil), base...)
		a2 := append([]float64(nil), base...)
		ipiv1 := make([]int, n)
		ipiv2 := make([]int, n)
		pbuf := make([]int, n)
		np, fz1 := DgetrfStatic(m, n, a1, n, ipiv1, thresh, pbuf)
		pcols, fz2 := seedDgetf2Static(m, n, a2, n, ipiv2, thresh)
		bitsEqual(t, "DgetrfStatic singular factors", a1, a2)
		if fz1 != fz2 {
			t.Fatalf("thresh=%g: firstZero %d vs seed %d", thresh, fz1, fz2)
		}
		if thresh <= 0 {
			if fz1 != 40 {
				t.Fatalf("fail mode firstZero = %d, want 40", fz1)
			}
		} else {
			if fz1 != -1 || np == 0 {
				t.Fatalf("perturb mode: firstZero=%d nperturbed=%d", fz1, np)
			}
		}
		if np != len(pcols) {
			t.Fatalf("thresh=%g: %d perturbations vs seed %d", thresh, np, len(pcols))
		}
		for i := 0; i < np; i++ {
			if pbuf[i] != pcols[i] {
				t.Fatalf("perturbed col %d vs seed %d", pbuf[i], pcols[i])
			}
		}
		for i := range ipiv1 {
			if ipiv1[i] != ipiv2[i] {
				t.Fatalf("ipiv[%d] = %d vs seed %d", i, ipiv1[i], ipiv2[i])
			}
		}
	}
}

// TestMicroKernelAsmMatchesGo pins the assembly micro-kernel to the
// portable one directly, across k depths and data laced with exact
// zeros and negative zeros (the masked-skip path) — on platforms
// without the assembly kernel both calls run the Go kernel and the
// test is vacuous.
func TestMicroKernelAsmMatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, kc := range []int{1, 2, 7, 128, 261} {
		pa := sparseRandMat(gemmMR, kc, rng)
		pb := sparseRandMat(kc, gemmNR, rng)
		c0 := sparseRandMat(gemmMR, gemmNR, rng)
		c1 := append([]float64(nil), c0...)
		c2 := append([]float64(nil), c0...)
		microKernel4x8(kc, pa, pb, c1, gemmNR)
		microKernel4x8Go(kc, pa, pb, c2, gemmNR)
		bitsEqual(t, "microKernel4x8", c1, c2)
	}
}
