//go:build !amd64

// FastMath portable dispatch. See fastmath.go for the mode's contract.
//
//lucheck:allow fp-reassoc — FastMath kernels are exempt from the
// bitwise-determinism contract by design (see fastmath.go).

package blas

// HasAVX2 and HasFMA3 report which assembly micro-kernels are active:
// none on this architecture.
func HasAVX2() bool { return false }

// HasFMA3 reports whether the FastMath FMA micro-kernel is active.
func HasFMA3() bool { return false }

// microKernel4x8Fast is the portable FastMath dispatch: no assembly
// kernel on this architecture.
func microKernel4x8Fast(kc int, pa, pb []float64, c []float64, ldc int) {
	microKernel4x8FastGo(kc, pa, pb, c, ldc)
}
