package blas

import (
	"math"
	"math/rand"
	"testing"
)

// absGemm computes (|A|·|B|)_{ij}, the componentwise error scale.
func absGemm(m, n, k int, a []float64, lda int, b []float64, ldb int) []float64 {
	s := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t := 0.0
			for p := 0; p < k; p++ {
				t += math.Abs(a[i*lda+p]) * math.Abs(b[p*ldb+j])
			}
			s[i*n+j] = t
		}
	}
	return s
}

// TestDgemmFastErrorBound: the FastMath kernels carry no bitwise
// guarantee, but every element must stay within the classical
// componentwise bound |Ĉ−C| ≤ c·k·ε·(|A|·|B|) of a dot product
// evaluated in any association order.
func TestDgemmFastErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][3]int{{4, 8, 256}, {64, 64, 64}, {130, 70, 90}, {256, 256, 256}, {37, 41, 300}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := make([]float64, m*k)
		b := make([]float64, k*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		// Sprinkle exact zeros: FastMath drops the zero-skip, so these
		// exercise the paths where the modes differ most.
		for i := 0; i < len(a); i += 7 {
			a[i] = 0
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := make([]float64, m*n)
		want := make([]float64, m*n)
		copy(want, got)
		DgemmFast(m, n, k, 1, a, k, b, n, 1, got, n)
		naiveGemm(m, n, k, 1, a, k, b, n, 1, want, n)
		scale := absGemm(m, n, k, a, k, b, n)
		bound := 4 * float64(k) * 0x1p-52
		for i := range got {
			if diff := math.Abs(got[i] - want[i]); diff > bound*scale[i]+1e-300 {
				t.Fatalf("dims %v: element %d off by %g (scale %g, bound %g)",
					dims, i, diff, scale[i], bound*scale[i])
			}
		}
	}
}

// TestMicroKernelFastVariantsAgree: the FMA assembly kernel and the
// branch-free Go kernel are different roundings of the same sum; they
// must agree to a componentwise bound even though they are not bitwise
// identical.
func TestMicroKernelFastVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const kc = 97
	pa := make([]float64, gemmMR*kc)
	pb := make([]float64, gemmNR*kc)
	for i := range pa {
		pa[i] = rng.NormFloat64()
	}
	for i := range pb {
		pb[i] = rng.NormFloat64()
	}
	cFast := make([]float64, gemmMR*gemmNR)
	cGo := make([]float64, gemmMR*gemmNR)
	microKernel4x8Fast(kc, pa, pb, cFast, gemmNR)
	microKernel4x8FastGo(kc, pa, pb, cGo, gemmNR)
	for i := range cFast {
		if diff := math.Abs(cFast[i] - cGo[i]); diff > 4*kc*0x1p-52*(math.Abs(cGo[i])+1) {
			t.Fatalf("element %d: fast %g vs go %g", i, cFast[i], cGo[i])
		}
	}
}

// TestDgetrfStaticFastSolves: a FastMath factorization must still solve
// well-conditioned systems to near machine precision.
func TestDgetrfStaticFastSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n := 120
	a := make([]float64, n*n)
	orig := make([]float64, n*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a[i*n+i] += float64(n) // diagonally dominant: well conditioned
	}
	copy(orig, a)
	ipiv := make([]int, n)
	if _, fz := DgetrfStaticFast(n, n, a, n, ipiv, 0, nil); fz >= 0 {
		t.Fatalf("unexpected zero pivot at %d", fz)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	b := make([]float64, n)
	naiveGemm(n, 1, n, 1, orig, n, x, 1, 0, b, 1)
	Dgetrs(n, a, n, ipiv, b)
	for i := range b {
		if math.Abs(b[i]-1) > 1e-10 {
			t.Fatalf("x[%d] = %g, want 1", i, b[i])
		}
	}
}

// TestSetTilesClamps: out-of-range requests are pulled back to the
// scratch capacities and micro-tile multiples.
func TestSetTilesClamps(t *testing.T) {
	defer SetTiles(DefaultBlockSizes())
	got := SetTiles(BlockSizes{MC: 10000, KC: 10000, NC: 10000, NB: 10000})
	if got.MC != packMaxMC || got.KC != packMaxKC || got.NC != packMaxNC || got.NB != 128 {
		t.Fatalf("upper clamp wrong: %+v", got)
	}
	got = SetTiles(BlockSizes{MC: -1, KC: 0, NC: -5, NB: 0})
	if got != DefaultBlockSizes() {
		t.Fatalf("non-positive fields should select defaults: %+v", got)
	}
	got = SetTiles(BlockSizes{MC: 67, KC: 93, NC: 100, NB: 43})
	if got.MC%gemmMR != 0 || got.KC%8 != 0 || got.NC%gemmNR != 0 || got.NB%8 != 0 {
		t.Fatalf("multiples not enforced: %+v", got)
	}
}

// TestTilesBitwiseInvariance: the bitwise kernels must produce
// byte-identical results under every legal tiling — blocking only
// regroups work, never reorders a C element's accumulation.
func TestTilesBitwiseInvariance(t *testing.T) {
	defer SetTiles(DefaultBlockSizes())
	rng := rand.New(rand.NewSource(45))
	m, n, k := 150, 90, 140
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := 0; i < len(a); i += 5 {
		a[i] = 0
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	run := func(bs BlockSizes) ([]float64, []int) {
		SetTiles(bs)
		c := make([]float64, m*n)
		Dgemm(m, n, k, 1, a, k, b, n, 0, c, n)
		lu := make([]float64, m*k)
		copy(lu, a)
		ipiv := make([]int, k)
		DgetrfStatic(m, k, lu, k, ipiv, 0, nil)
		c = append(c, lu...)
		return c, ipiv
	}
	ref, refPiv := run(DefaultBlockSizes())
	for _, bs := range []BlockSizes{
		{MC: 64, KC: 48, NC: 64, NB: 8},
		{MC: packMaxMC, KC: packMaxKC, NC: packMaxNC, NB: 128},
		{MC: 4, KC: 16, NC: 8, NB: 16},
	} {
		got, gotPiv := run(bs)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("tiles %+v: element %d differs bitwise: %x vs %x",
					bs, i, math.Float64bits(got[i]), math.Float64bits(ref[i]))
			}
		}
		for i := range refPiv {
			if gotPiv[i] != refPiv[i] {
				t.Fatalf("tiles %+v: pivot %d differs", bs, i)
			}
		}
	}
}

// TestAutotuneOnce: the probe must either fail gracefully (defaults
// stay active) or install tiles within the scratch capacities; repeated
// calls return the same outcome.
func TestAutotuneOnce(t *testing.T) {
	info := AutotuneOnce()
	bs := info.Tiles
	if bs.MC < gemmMR || bs.MC > packMaxMC || bs.KC < 16 || bs.KC > packMaxKC ||
		bs.NC < gemmNR || bs.NC > packMaxNC || bs.NB < 8 || bs.NB > 128 {
		t.Fatalf("autotuned tiles out of range: %+v", bs)
	}
	if info.Probed && (info.L1DataBytes <= 0 || info.L2Bytes <= 0) {
		t.Fatalf("probed but cache sizes missing: %+v", info)
	}
	if again := AutotuneOnce(); again != info {
		t.Fatalf("AutotuneOnce not idempotent: %+v vs %+v", again, info)
	}
}

func TestParseCacheSize(t *testing.T) {
	cases := map[string]int{
		"32K": 32 * 1024,
		"1M":  1024 * 1024,
		"512": 512,
		"1G":  1 << 30,
		"":    0,
		"abc": 0,
		"-4K": 0,
	}
	for in, want := range cases {
		if got := parseCacheSize(in); got != want {
			t.Fatalf("parseCacheSize(%q) = %d, want %d", in, got, want)
		}
	}
}
