// Package blas implements the subset of dense linear-algebra kernels
// (BLAS levels 1–3 and a few LAPACK-style routines) that the supernodal
// sparse LU factorization runs on. The paper used the SGI SCSL BLAS; this
// package is the pure-Go substitute.
//
// Matrices are dense, row-major, with an explicit leading dimension ld
// (the stride between consecutive rows), so that sub-blocks of a larger
// block can be addressed without copying: element (i, j) of a matrix a
// lives at a[i*ld+j].
package blas

import "math"

// Ddot returns xᵀy over n elements with strides incx, incy.
func Ddot(n int, x []float64, incx int, y []float64, incy int) float64 {
	var s float64
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		s += x[ix] * y[iy]
		ix += incx
		iy += incy
	}
	return s
}

// Daxpy computes y ← αx + y over n elements with strides.
func Daxpy(n int, alpha float64, x []float64, incx int, y []float64, incy int) {
	if alpha == 0 {
		return
	}
	if incx == 1 && incy == 1 {
		x = x[:n]
		y = y[:n]
		for i := range x {
			y[i] += alpha * x[i]
		}
		return
	}
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		y[iy] += alpha * x[ix]
		ix += incx
		iy += incy
	}
}

// Dscal computes x ← αx over n elements with stride incx.
func Dscal(n int, alpha float64, x []float64, incx int) {
	if incx == 1 {
		x = x[:n]
		for i := range x {
			x[i] *= alpha
		}
		return
	}
	ix := 0
	for i := 0; i < n; i++ {
		x[ix] *= alpha
		ix += incx
	}
}

// Idamax returns the index (in element counts, not slice offsets) of the
// element with the largest absolute value among n strided elements, or -1
// when n ≤ 0.
func Idamax(n int, x []float64, incx int) int {
	if n <= 0 {
		return -1
	}
	best, bi := math.Abs(x[0]), 0
	ix := incx
	for i := 1; i < n; i++ {
		if a := math.Abs(x[ix]); a > best {
			best, bi = a, i
		}
		ix += incx
	}
	return bi
}

// Dnrm2 returns the Euclidean norm of n strided elements, guarding
// against overflow the way the reference BLAS does.
func Dnrm2(n int, x []float64, incx int) float64 {
	var scale, ssq float64
	ssq = 1
	ix := 0
	for i := 0; i < n; i++ {
		if v := x[ix]; v != 0 {
			a := math.Abs(v)
			if scale < a {
				r := scale / a
				ssq = 1 + ssq*r*r
				scale = a
			} else {
				r := a / scale
				ssq += r * r
			}
		}
		ix += incx
	}
	return scale * math.Sqrt(ssq)
}

// Dcopy copies n strided elements of x into y.
func Dcopy(n int, x []float64, incx int, y []float64, incy int) {
	if incx == 1 && incy == 1 {
		copy(y[:n], x[:n])
		return
	}
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		y[iy] = x[ix]
		ix += incx
		iy += incy
	}
}

// Dswap exchanges n strided elements of x and y.
func Dswap(n int, x []float64, incx int, y []float64, incy int) {
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		x[ix], y[iy] = y[iy], x[ix]
		ix += incx
		iy += incy
	}
}

// Dasum returns the sum of absolute values of n strided elements.
func Dasum(n int, x []float64, incx int) float64 {
	var s float64
	ix := 0
	for i := 0; i < n; i++ {
		s += math.Abs(x[ix])
		ix += incx
	}
	return s
}
