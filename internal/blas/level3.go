package blas

// gemm micro-kernel block sizes, chosen so a block of B rows stays in L1.
const (
	gemmMC = 64
	gemmKC = 128
)

// Dgemm computes C ← α·A·B + β·C for row-major matrices: A is m×k (lda),
// B is k×n (ldb), C is m×n (ldc). Only the non-transposed case is
// provided; the factorization arranges its operands so that suffices.
//
// The kernel uses the i-k-j loop order with k-blocking so the inner loop
// is a contiguous AXPY over a row of B — the access pattern that lets the
// Go compiler keep everything in registers and the hardware prefetcher
// streaming.
func Dgemm(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if beta != 1 {
		for i := 0; i < m; i++ {
			row := c[i*ldc : i*ldc+n]
			if beta == 0 {
				for j := range row {
					row[j] = 0
				}
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	for kb := 0; kb < k; kb += gemmKC {
		kEnd := kb + gemmKC
		if kEnd > k {
			kEnd = k
		}
		for ib := 0; ib < m; ib += gemmMC {
			iEnd := ib + gemmMC
			if iEnd > m {
				iEnd = m
			}
			for i := ib; i < iEnd; i++ {
				crow := c[i*ldc : i*ldc+n]
				arow := a[i*lda:]
				for p := kb; p < kEnd; p++ {
					aip := alpha * arow[p]
					if aip == 0 {
						continue
					}
					brow := b[p*ldb : p*ldb+n]
					for j, v := range brow {
						crow[j] += aip * v
					}
				}
			}
		}
	}
}

// Dtrsm solves op(T)·X = α·B in place (B is overwritten with X) where T
// is an m×m triangular matrix applied from the left. lower selects the
// triangle of T, unit an implicit unit diagonal. B is m×n row-major with
// leading dimension ldb.
func Dtrsm(lower, unit bool, m, n int, alpha float64, t []float64, ldt int, b []float64, ldb int) {
	if alpha != 1 {
		for i := 0; i < m; i++ {
			row := b[i*ldb : i*ldb+n]
			for j := range row {
				row[j] *= alpha
			}
		}
	}
	if lower {
		for i := 0; i < m; i++ {
			bi := b[i*ldb : i*ldb+n]
			trow := t[i*ldt : i*ldt+i]
			for p, tip := range trow {
				if tip == 0 {
					continue
				}
				bp := b[p*ldb : p*ldb+n]
				for j, v := range bp {
					bi[j] -= tip * v
				}
			}
			if !unit {
				d := 1 / t[i*ldt+i]
				for j := range bi {
					bi[j] *= d
				}
			}
		}
		return
	}
	for i := m - 1; i >= 0; i-- {
		bi := b[i*ldb : i*ldb+n]
		trow := t[i*ldt+i+1 : i*ldt+m]
		for pj, tip := range trow {
			if tip == 0 {
				continue
			}
			p := i + 1 + pj
			bp := b[p*ldb : p*ldb+n]
			for j, v := range bp {
				bi[j] -= tip * v
			}
		}
		if !unit {
			d := 1 / t[i*ldt+i]
			for j := range bi {
				bi[j] *= d
			}
		}
	}
}
