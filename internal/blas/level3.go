package blas

// Dgemm computes C ← α·A·B + β·C for row-major matrices: A is m×k (lda),
// B is k×n (ldb), C is m×n (ldc). Only the non-transposed case is
// provided; the factorization arranges its operands so that suffices.
//
// Two code paths produce bitwise-identical results: a scalar i-k-j AXPY
// kernel for small operands and a packed, register-tiled kernel
// (pack.go / microkernel.go) for everything else. Both accumulate each
// C element's contributions one k at a time in ascending k and skip a
// contribution exactly when α·A[i,p] == 0, so the floating-point
// operation sequence per element — and therefore the rounding — is
// identical no matter which path runs.
func Dgemm(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	dgemm(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, false)
}

// dgemm is the shared driver behind Dgemm and DgemmFast. fast selects
// the FastMath micro-kernels on the packed path; the beta pass, the
// dispatch heuristic, and the scalar small-operand kernel are common to
// both modes.
func dgemm(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int, fast bool) {
	if beta != 1 {
		for i := 0; i < m; i++ {
			row := c[i*ldc : i*ldc+n]
			if beta == 0 {
				for j := range row {
					row[j] = 0
				}
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	if m >= gemmMR && n >= gemmNR && m*n*k >= packedGemmCutoff {
		gemmPacked(m, n, k, alpha, a, lda, b, ldb, c, ldc, fast)
		return
	}
	gemmSmall(m, n, k, alpha, a, lda, b, ldb, c, ldc)
}

// gemmSmall is the seed scalar kernel: i-k-j loop order with k/m
// blocking so the inner loop is a contiguous AXPY over a row of B.
// It handles the operands too small to amortize packing.
func gemmSmall(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for kb := 0; kb < k; kb += gemmKC {
		kEnd := kb + gemmKC
		if kEnd > k {
			kEnd = k
		}
		for ib := 0; ib < m; ib += gemmMC {
			iEnd := ib + gemmMC
			if iEnd > m {
				iEnd = m
			}
			for i := ib; i < iEnd; i++ {
				crow := c[i*ldc : i*ldc+n]
				arow := a[i*lda:]
				for p := kb; p < kEnd; p++ {
					aip := alpha * arow[p]
					if aip == 0 {
						continue
					}
					brow := b[p*ldb : p*ldb+n]
					for j, v := range brow {
						crow[j] += aip * v
					}
				}
			}
		}
	}
}

// gemmPacked is the five-loop BLIS-style kernel: B panels of KC×NC rows
// are packed once and reused across all A blocks, A blocks of MC×KC are
// packed with alpha folded in, and the packed micro-panels feed the
// gemmMR×gemmNR register-tile kernel. The MC/KC/NC extents come from
// the runtime BlockSizes (autotuned at analyze time, defaults
// otherwise); the scratch arrays are dimensioned for the clamp
// capacities, so any installed tiling fits. Packing scratch comes from
// scratchPool, so steady-state calls do not allocate. fast swaps the
// full-tile micro-kernel for the FastMath one.
func gemmPacked(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, fast bool) {
	bt := Tiles()
	s := getScratch()
	for jc := 0; jc < n; jc += bt.NC {
		nc := n - jc
		if nc > bt.NC {
			nc = bt.NC
		}
		for pc := 0; pc < k; pc += bt.KC {
			kc := k - pc
			if kc > bt.KC {
				kc = bt.KC
			}
			packB(kc, nc, b[pc*ldb+jc:], ldb, s.pb[:])
			for ic := 0; ic < m; ic += bt.MC {
				mc := m - ic
				if mc > bt.MC {
					mc = bt.MC
				}
				packA(mc, kc, alpha, a[ic*lda+pc:], lda, s.pa[:])
				for jr := 0; jr < nc; jr += gemmNR {
					nr := nc - jr
					if nr > gemmNR {
						nr = gemmNR
					}
					pbp := s.pb[jr*kc:]
					for ir := 0; ir < mc; ir += gemmMR {
						mr := mc - ir
						if mr > gemmMR {
							mr = gemmMR
						}
						cc := c[(ic+ir)*ldc+jc+jr:]
						switch {
						case mr == gemmMR && nr == gemmNR && fast:
							microKernel4x8Fast(kc, s.pa[ir*kc:], pbp, cc, ldc)
						case mr == gemmMR && nr == gemmNR:
							microKernel4x8(kc, s.pa[ir*kc:], pbp, cc, ldc)
						default:
							microKernelEdge(mr, nr, kc, s.pa[ir*kc:], pbp, cc, ldc)
						}
					}
				}
			}
		}
	}
	putScratch(s)
}

// Dtrsm solves op(T)·X = α·B in place (B is overwritten with X) where T
// is an m×m triangular matrix applied from the left. lower selects the
// triangle of T, unit an implicit unit diagonal. B is m×n row-major with
// leading dimension ldb.
//
// The lower solve is blocked with the runtime NB strip width: each
// NB-row strip first receives the contributions of all rows above it
// through Dgemm (ascending p, same per-element order and T==0 skip as
// the unblocked loop, so results stay bitwise identical for any NB) and
// is then solved unblocked. The upper solve stays unblocked: it walks
// rows bottom-up but accumulates each element's subtrahends in
// ascending p, an order a strip decomposition would reorder — and it
// only runs in the triangular-solve phase, not under the
// factorization's update tasks.
func Dtrsm(lower, unit bool, m, n int, alpha float64, t []float64, ldt int, b []float64, ldb int) {
	dtrsm(lower, unit, m, n, alpha, t, ldt, b, ldb, false)
}

// dtrsm is the shared driver behind Dtrsm and DtrsmFast: fast is passed
// down to the strip-update Dgemm of the blocked lower solve.
func dtrsm(lower, unit bool, m, n int, alpha float64, t []float64, ldt int, b []float64, ldb int, fast bool) {
	if alpha != 1 {
		for i := 0; i < m; i++ {
			row := b[i*ldb : i*ldb+n]
			for j := range row {
				row[j] *= alpha
			}
		}
	}
	if lower {
		nb := Tiles().NB
		if m <= nb {
			trsmLowerUnblocked(unit, m, n, t, ldt, b, ldb)
			return
		}
		for i0 := 0; i0 < m; i0 += nb {
			ib := m - i0
			if ib > nb {
				ib = nb
			}
			if i0 > 0 {
				// B[i0:i0+ib] -= T[i0:i0+ib, 0:i0] · X[0:i0]
				dgemm(ib, n, i0, -1, t[i0*ldt:], ldt, b, ldb, 1, b[i0*ldb:], ldb, fast)
			}
			trsmLowerUnblocked(unit, ib, n, t[i0*ldt+i0:], ldt, b[i0*ldb:], ldb)
		}
		return
	}
	for i := m - 1; i >= 0; i-- {
		bi := b[i*ldb : i*ldb+n]
		trow := t[i*ldt+i+1 : i*ldt+m]
		for pj, tip := range trow {
			if tip == 0 {
				continue
			}
			p := i + 1 + pj
			bp := b[p*ldb : p*ldb+n]
			for j, v := range bp {
				bi[j] -= tip * v
			}
		}
		if !unit {
			d := 1 / t[i*ldt+i]
			for j := range bi {
				bi[j] *= d
			}
		}
	}
}

// trsmLowerUnblocked is the seed forward-substitution loop on an m×m
// lower triangle. Each row of X accumulates its subtrahends in
// ascending p with an exact-zero skip on T — the contract the blocked
// driver and Dgemm preserve.
func trsmLowerUnblocked(unit bool, m, n int, t []float64, ldt int, b []float64, ldb int) {
	for i := 0; i < m; i++ {
		bi := b[i*ldb : i*ldb+n]
		trow := t[i*ldt : i*ldt+i]
		for p, tip := range trow {
			if tip == 0 {
				continue
			}
			bp := b[p*ldb : p*ldb+n]
			for j, v := range bp {
				bi[j] -= tip * v
			}
		}
		if !unit {
			d := 1 / t[i*ldt+i]
			for j := range bi {
				bi[j] *= d
			}
		}
	}
}
