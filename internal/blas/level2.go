package blas

// Dgemv computes y ← α·op(A)·x + β·y for a dense m×n row-major matrix A
// with leading dimension lda. trans selects op(A) = A (false) or Aᵀ
// (true). Vector lengths must match op(A).
func Dgemv(trans bool, m, n int, alpha float64, a []float64, lda int, x []float64, beta float64, y []float64) {
	if !trans {
		for i := 0; i < m; i++ {
			row := a[i*lda : i*lda+n]
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			y[i] = alpha*s + beta*y[i]
		}
		return
	}
	for j := 0; j < n; j++ {
		y[j] *= beta
	}
	for i := 0; i < m; i++ {
		xi := alpha * x[i]
		if xi == 0 {
			continue
		}
		row := a[i*lda : i*lda+n]
		for j, v := range row {
			y[j] += xi * v
		}
	}
}

// Dger computes the rank-1 update A ← A + α·x·yᵀ on an m×n row-major
// matrix.
func Dger(m, n int, alpha float64, x, y []float64, a []float64, lda int) {
	for i := 0; i < m; i++ {
		xi := alpha * x[i]
		if xi == 0 {
			continue
		}
		row := a[i*lda : i*lda+n]
		for j, v := range y[:n] {
			row[j] += xi * v
		}
	}
}

// Dtrsvt solves Tᵀ·x = b in place for a dense n×n triangular matrix T
// stored row-major (so a lower-triangular T yields an upper-triangular
// solve and vice versa). Used by the transpose solves.
func Dtrsvt(lower, unit bool, n int, t []float64, ldt int, x []float64) {
	if lower {
		// Tᵀ is upper triangular: backward substitution reading T's
		// columns, i.e. strided rows of the row-major storage.
		for i := n - 1; i >= 0; i-- {
			s := x[i]
			for j := i + 1; j < n; j++ {
				s -= t[j*ldt+i] * x[j]
			}
			if !unit {
				s /= t[i*ldt+i]
			}
			x[i] = s
		}
		return
	}
	// Tᵀ is lower triangular: forward substitution.
	for i := 0; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= t[j*ldt+i] * x[j]
		}
		if !unit {
			s /= t[i*ldt+i]
		}
		x[i] = s
	}
}

// Dtrsv solves op(T)·x = b in place for a dense n×n triangular matrix T.
// lower selects the triangle, unit selects an implicit unit diagonal.
// Only the non-transposed op is provided (that is all the factorization
// needs); Dtrsvt provides the transposed op.
func Dtrsv(lower, unit bool, n int, t []float64, ldt int, x []float64) {
	if lower {
		for i := 0; i < n; i++ {
			s := x[i]
			row := t[i*ldt : i*ldt+i]
			for j, v := range row {
				s -= v * x[j]
			}
			if !unit {
				s /= t[i*ldt+i]
			}
			x[i] = s
		}
		return
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := t[i*ldt+i+1 : i*ldt+n]
		for j, v := range row {
			s -= v * x[i+1+j]
		}
		if !unit {
			s /= t[i*ldt+i]
		}
		x[i] = s
	}
}
