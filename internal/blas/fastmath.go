// FastMath kernel mode: opt-in level-3 entry points with no bitwise
// reproducibility guarantee. The fast micro-kernels may fuse multiplies
// and adds (FMA), drop the exact-zero contribution skip, and
// reassociate accumulation, trading the determinism contract for
// throughput; results satisfy the usual componentwise backward-error
// bounds of Gaussian elimination (validated by the error-bound suite in
// internal/core) but are not byte-identical across kernels, worker
// counts, or hosts. Callers that need reproducibility use the plain
// Dgemm/Dtrsm/DgetrfStatic entry points, which are untouched by this
// mode.
//
//lucheck:allow fp-reassoc — FastMath kernels are exempt from the
// bitwise-determinism contract by design: accuracy is enforced by the
// componentwise error-bound suite, not the parity suite.

package blas

// DgemmFast computes C ← α·A·B + β·C like Dgemm but through the
// FastMath micro-kernels on the packed path.
func DgemmFast(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	dgemm(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, true)
}

// DtrsmFast solves op(T)·X = α·B like Dtrsm but routes the blocked
// lower solve's strip updates through the FastMath Dgemm.
func DtrsmFast(lower, unit bool, m, n int, alpha float64, t []float64, ldt int, b []float64, ldb int) {
	dtrsm(lower, unit, m, n, alpha, t, ldt, b, ldb, true)
}

// DgetrfStaticFast is DgetrfStatic with the trailing level-3 updates in
// FastMath mode. The panel kernel, pivot search, and perturbation
// policy are identical to the bitwise path, so the pivot sequence stays
// driven by the same comparisons — only the update arithmetic is
// relaxed.
func DgetrfStaticFast(m, n int, a []float64, lda int, ipiv []int, thresh float64, perturbed []int) (nperturbed, firstZero int) {
	return dgetrfStatic(m, n, a, lda, ipiv, thresh, perturbed, true)
}

// microKernel4x8FastGo is the portable FastMath full-tile kernel: the
// same register tile as microKernel4x8Go but with the exact-zero skip
// removed, so the k loop runs branch-free. On amd64 the FMA3 assembly
// kernel replaces it at runtime.
func microKernel4x8FastGo(kc int, pa, pb []float64, c []float64, ldc int) {
	c0 := c[0:8]
	c1 := c[ldc : ldc+8]
	c2 := c[2*ldc : 2*ldc+8]
	c3 := c[3*ldc : 3*ldc+8]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c04, c05, c06, c07 := c0[4], c0[5], c0[6], c0[7]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	c14, c15, c16, c17 := c1[4], c1[5], c1[6], c1[7]
	c20, c21, c22, c23 := c2[0], c2[1], c2[2], c2[3]
	c24, c25, c26, c27 := c2[4], c2[5], c2[6], c2[7]
	c30, c31, c32, c33 := c3[0], c3[1], c3[2], c3[3]
	c34, c35, c36, c37 := c3[4], c3[5], c3[6], c3[7]
	for p := 0; p < kc; p++ {
		bp := pb[gemmNR*p : gemmNR*p+gemmNR]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		b4, b5, b6, b7 := bp[4], bp[5], bp[6], bp[7]
		ap := pa[gemmMR*p : gemmMR*p+gemmMR]
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c04 += a0 * b4
		c05 += a0 * b5
		c06 += a0 * b6
		c07 += a0 * b7
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c14 += a1 * b4
		c15 += a1 * b5
		c16 += a1 * b6
		c17 += a1 * b7
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c24 += a2 * b4
		c25 += a2 * b5
		c26 += a2 * b6
		c27 += a2 * b7
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		c34 += a3 * b4
		c35 += a3 * b5
		c36 += a3 * b6
		c37 += a3 * b7
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c0[4], c0[5], c0[6], c0[7] = c04, c05, c06, c07
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
	c1[4], c1[5], c1[6], c1[7] = c14, c15, c16, c17
	c2[0], c2[1], c2[2], c2[3] = c20, c21, c22, c23
	c2[4], c2[5], c2[6], c2[7] = c24, c25, c26, c27
	c3[0], c3[1], c3[2], c3[3] = c30, c31, c32, c33
	c3[4], c3[5], c3[6], c3[7] = c34, c35, c36, c37
}
