//go:build amd64

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func microKernel4x8AVX2(kc int, pa, pb, c *float64, ldc int)
//
// C[0:4, 0:8] += Aᵖ·Bᵖ on packed micro-panels, bitwise identical to
// microKernel4x8Go: multiplies and adds stay separate (no FMA — its
// single rounding would diverge from the scalar kernels), every C
// element accumulates its contributions in ascending k, and a packed A
// value equal to zero is masked to -0.0 before the add. Adding -0.0 is
// an IEEE no-op on every operand (x + -0.0 ≡ x, including x = -0.0 and
// NaN), so the mask reproduces the scalar kernel's `a == 0` skip
// exactly; a NaN in A compares unequal to zero (EQ_OQ) and propagates,
// as in the Go kernel.
//
// Register plan: Y0..Y7 the 4×8 C accumulators (row r in Y(2r) cols
// 0..3 and Y(2r+1) cols 4..7), Y8/Y9 the current B row, Y10 the
// broadcast A value, Y11 its ==0 mask, Y12 products, Y13 -0.0, Y14 +0.
TEXT ·microKernel4x8AVX2(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8               // row stride in bytes
	LEAQ (DI)(R8*1), R9       // &C[1,0]
	LEAQ (R9)(R8*1), R10      // &C[2,0]
	LEAQ (R10)(R8*1), R11     // &C[3,0]

	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD (R9), Y2
	VMOVUPD 32(R9), Y3
	VMOVUPD (R10), Y4
	VMOVUPD 32(R10), Y5
	VMOVUPD (R11), Y6
	VMOVUPD 32(R11), Y7

	VXORPD   Y14, Y14, Y14    // +0.0 in every lane
	VPCMPEQQ Y13, Y13, Y13
	VPSLLQ   $63, Y13, Y13    // -0.0 in every lane

kloop:
	VMOVUPD (BX), Y8          // B[p, 0:4]
	VMOVUPD 32(BX), Y9        // B[p, 4:8]

	VBROADCASTSD (SI), Y10    // A[0, p]
	VCMPPD    $0, Y14, Y10, Y11
	VMULPD    Y8, Y10, Y12
	VBLENDVPD Y11, Y13, Y12, Y12
	VADDPD    Y12, Y0, Y0
	VMULPD    Y9, Y10, Y12
	VBLENDVPD Y11, Y13, Y12, Y12
	VADDPD    Y12, Y1, Y1

	VBROADCASTSD 8(SI), Y10   // A[1, p]
	VCMPPD    $0, Y14, Y10, Y11
	VMULPD    Y8, Y10, Y12
	VBLENDVPD Y11, Y13, Y12, Y12
	VADDPD    Y12, Y2, Y2
	VMULPD    Y9, Y10, Y12
	VBLENDVPD Y11, Y13, Y12, Y12
	VADDPD    Y12, Y3, Y3

	VBROADCASTSD 16(SI), Y10  // A[2, p]
	VCMPPD    $0, Y14, Y10, Y11
	VMULPD    Y8, Y10, Y12
	VBLENDVPD Y11, Y13, Y12, Y12
	VADDPD    Y12, Y4, Y4
	VMULPD    Y9, Y10, Y12
	VBLENDVPD Y11, Y13, Y12, Y12
	VADDPD    Y12, Y5, Y5

	VBROADCASTSD 24(SI), Y10  // A[3, p]
	VCMPPD    $0, Y14, Y10, Y11
	VMULPD    Y8, Y10, Y12
	VBLENDVPD Y11, Y13, Y12, Y12
	VADDPD    Y12, Y6, Y6
	VMULPD    Y9, Y10, Y12
	VBLENDVPD Y11, Y13, Y12, Y12
	VADDPD    Y12, Y7, Y7

	ADDQ $32, SI
	ADDQ $64, BX
	DECQ CX
	JNZ  kloop

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, (R9)
	VMOVUPD Y3, 32(R9)
	VMOVUPD Y4, (R10)
	VMOVUPD Y5, 32(R10)
	VMOVUPD Y6, (R11)
	VMOVUPD Y7, 32(R11)
	VZEROUPPER
	RET
