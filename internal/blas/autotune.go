package blas

// Analyze-time tile autotuning. The packed level-3 kernels ship with
// conservative default block sizes (pack.go); on hosts whose cache
// geometry is visible through sysfs the autotuner re-derives MC/KC/NC/NB
// with the standard BLIS analytical rules and installs them through
// SetTiles. Tile changes are bitwise-safe (see BlockSizes), so the tuner
// can run at any time; core.Analyze triggers it once per process so the
// choice is made before the first numeric phase.

import (
	"os"
	"strconv"
	"strings"
	"sync"
)

// AutotuneInfo reports what the autotuner observed and chose. The probed
// sizes are zero when sysfs did not expose the corresponding cache.
type AutotuneInfo struct {
	L1DataBytes int        // probed L1 data-cache size in bytes
	L2Bytes     int        // probed L2 cache size in bytes
	Probed      bool       // whether the cache probe succeeded
	Tiles       BlockSizes // the blocking parameters in effect afterwards
}

var autotuneState struct {
	once sync.Once
	info AutotuneInfo
}

// AutotuneOnce probes the cache hierarchy and installs tuned blocking
// parameters, falling back to the defaults when the probe fails. The
// probe runs once per process; later calls return the recorded outcome.
func AutotuneOnce() AutotuneInfo {
	autotuneState.once.Do(func() { autotuneState.info = runAutotune() })
	return autotuneState.info
}

func runAutotune() AutotuneInfo {
	info := AutotuneInfo{Tiles: Tiles()}
	l1, l2 := probeCaches()
	info.L1DataBytes, info.L2Bytes = l1, l2
	if l1 <= 0 || l2 <= 0 {
		return info
	}
	info.Probed = true
	info.Tiles = SetTiles(chooseTiles(l1, l2))
	return info
}

// chooseTiles maps cache geometry to tile sizes with the BLIS analytical
// rules: KC so that one A micro-panel (gemmMR×KC) plus one B micro-panel
// (KC×gemmNR) fills at most half the L1 data cache, MC so that the
// packed MC×KC A block occupies at most half of L2, NC as large as the
// packed-B scratch allows (fewer B repacks per call), and NB — the
// blocked Dtrsm/DgetrfStatic strip width — a quarter of KC but never
// above the shipped default: the unblocked strip factorization is
// scalar, so its cost grows quadratically with NB while the level-3
// share it unlocks grows only linearly — a large-L1 host that pushes KC
// to 256 must not widen the scalar strips along with it. SetTiles clamps
// everything to the scratch capacities and micro-tile multiples.
func chooseTiles(l1, l2 int) BlockSizes {
	var bs BlockSizes
	bs.KC = l1 / (2 * 8 * (gemmMR + gemmNR))
	bs.KC = clampTile(bs.KC, packKC, 16, packMaxKC, 8)
	bs.MC = l2 / (2 * 8 * bs.KC)
	bs.NC = packMaxNC
	bs.NB = min(bs.KC/4, packNB)
	return bs
}

// probeCaches reads the per-CPU cache descriptions Linux exposes under
// sysfs and returns the L1 data and L2 sizes in bytes (0 when absent).
// Any read or parse failure degrades to "unknown"; the caller then keeps
// the default tiles.
func probeCaches() (l1d, l2 int) {
	const base = "/sys/devices/system/cpu/cpu0/cache/index"
	for i := 0; i < 10; i++ {
		dir := base + strconv.Itoa(i)
		level := readTrimmed(dir + "/level")
		if level == "" {
			break
		}
		typ := readTrimmed(dir + "/type")
		size := parseCacheSize(readTrimmed(dir + "/size"))
		if size <= 0 {
			continue
		}
		switch {
		case level == "1" && (typ == "Data" || typ == "Unified"):
			l1d = size
		case level == "2" && typ != "Instruction":
			l2 = size
		}
	}
	return l1d, l2
}

func readTrimmed(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(data))
}

// parseCacheSize parses the sysfs size syntax: a decimal count with an
// optional K/M/G suffix, e.g. "32K" or "1M". Returns 0 on malformed
// input.
func parseCacheSize(s string) int {
	if s == "" {
		return 0
	}
	mult := 1
	switch s[len(s)-1] {
	case 'K':
		mult, s = 1024, s[:len(s)-1]
	case 'M':
		mult, s = 1024*1024, s[:len(s)-1]
	case 'G':
		mult, s = 1024*1024*1024, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0
	}
	return n * mult
}
