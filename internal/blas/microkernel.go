package blas

// Register micro-tile dimensions of the packed Dgemm path. The inner
// kernel computes a gemmMR×gemmNR block of C from one A micro-panel
// and one B micro-panel, keeping all 32 accumulators live across the
// whole k loop.
const (
	gemmMR = 4
	gemmNR = 8
)

// microKernel4x8Go is the portable full-tile kernel:
// C[0:4, 0:8] += Aᵖ·Bᵖ where Aᵖ is a packed micro-panel (alpha already
// folded in) and Bᵖ a packed B micro-panel. Contributions are
// accumulated one k at a time, in ascending k, and a packed A value of
// exactly zero contributes nothing — the same per-element operation
// order and skip rule as the seed kernel, so the result is bitwise
// identical to it.
func microKernel4x8Go(kc int, pa, pb []float64, c []float64, ldc int) {
	c0 := c[0:8]
	c1 := c[ldc : ldc+8]
	c2 := c[2*ldc : 2*ldc+8]
	c3 := c[3*ldc : 3*ldc+8]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c04, c05, c06, c07 := c0[4], c0[5], c0[6], c0[7]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	c14, c15, c16, c17 := c1[4], c1[5], c1[6], c1[7]
	c20, c21, c22, c23 := c2[0], c2[1], c2[2], c2[3]
	c24, c25, c26, c27 := c2[4], c2[5], c2[6], c2[7]
	c30, c31, c32, c33 := c3[0], c3[1], c3[2], c3[3]
	c34, c35, c36, c37 := c3[4], c3[5], c3[6], c3[7]
	for p := 0; p < kc; p++ {
		bp := pb[gemmNR*p : gemmNR*p+gemmNR]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		b4, b5, b6, b7 := bp[4], bp[5], bp[6], bp[7]
		ap := pa[gemmMR*p : gemmMR*p+gemmMR]
		if a := ap[0]; a != 0 {
			c00 += a * b0
			c01 += a * b1
			c02 += a * b2
			c03 += a * b3
			c04 += a * b4
			c05 += a * b5
			c06 += a * b6
			c07 += a * b7
		}
		if a := ap[1]; a != 0 {
			c10 += a * b0
			c11 += a * b1
			c12 += a * b2
			c13 += a * b3
			c14 += a * b4
			c15 += a * b5
			c16 += a * b6
			c17 += a * b7
		}
		if a := ap[2]; a != 0 {
			c20 += a * b0
			c21 += a * b1
			c22 += a * b2
			c23 += a * b3
			c24 += a * b4
			c25 += a * b5
			c26 += a * b6
			c27 += a * b7
		}
		if a := ap[3]; a != 0 {
			c30 += a * b0
			c31 += a * b1
			c32 += a * b2
			c33 += a * b3
			c34 += a * b4
			c35 += a * b5
			c36 += a * b6
			c37 += a * b7
		}
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c0[4], c0[5], c0[6], c0[7] = c04, c05, c06, c07
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
	c1[4], c1[5], c1[6], c1[7] = c14, c15, c16, c17
	c2[0], c2[1], c2[2], c2[3] = c20, c21, c22, c23
	c2[4], c2[5], c2[6], c2[7] = c24, c25, c26, c27
	c3[0], c3[1], c3[2], c3[3] = c30, c31, c32, c33
	c3[4], c3[5], c3[6], c3[7] = c34, c35, c36, c37
}

// microKernelEdge handles partial micro-tiles (mr ≤ gemmMR, nr ≤
// gemmNR): it reads only the first mr lanes of each packed A column
// and the first nr lanes of each packed B row, so the padding lanes of
// edge micro-panels are never touched. Same ascending-k accumulation
// and zero-skip as the full-tile kernels.
func microKernelEdge(mr, nr, kc int, pa, pb []float64, c []float64, ldc int) {
	for p := 0; p < kc; p++ {
		ap := pa[gemmMR*p:]
		bp := pb[gemmNR*p : gemmNR*p+nr]
		for r := 0; r < mr; r++ {
			a := ap[r]
			if a == 0 {
				continue
			}
			crow := c[r*ldc : r*ldc+nr]
			for j, v := range bp {
				crow[j] += a * v
			}
		}
	}
}
