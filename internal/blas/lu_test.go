package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// reconstructLU multiplies P·L·U back together from the in-place
// factorization of an m×n matrix to compare against the original.
func reconstructLU(m, n int, lu []float64, lda int, ipiv []int) []float64 {
	mn := m
	if n < mn {
		mn = n
	}
	// Build L (m×mn, unit lower trapezoid) and U (mn×n, upper).
	l := make([]float64, m*mn)
	u := make([]float64, mn*n)
	for i := 0; i < m; i++ {
		for j := 0; j < mn && j <= i; j++ {
			if i == j {
				l[i*mn+j] = 1
			} else {
				l[i*mn+j] = lu[i*lda+j]
			}
		}
	}
	for i := 0; i < mn; i++ {
		for j := i; j < n; j++ {
			u[i*n+j] = lu[i*lda+j]
		}
	}
	prod := make([]float64, m*n)
	naiveGemm(m, n, mn, 1, l, mn, u, n, 0, prod, n)
	// Undo the pivoting: apply swaps in reverse to recover A.
	for i := len(ipiv) - 1; i >= 0; i-- {
		if p := ipiv[i]; p != i {
			Dswap(n, prod[i*n:], 1, prod[p*n:], 1)
		}
	}
	return prod
}

func TestDgetf2Square(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 3, 8, 17} {
		a := randMat(n, n, rng)
		orig := append([]float64(nil), a...)
		ipiv := make([]int, n)
		if err := Dgetf2(n, n, a, n, ipiv); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := reconstructLU(n, n, a, n, ipiv)
		if d := maxDiff(rec, orig); d > 1e-10 {
			t.Fatalf("n=%d: PLU differs from A by %g", n, d)
		}
	}
}

func TestDgetf2Rectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	shapes := [][2]int{{5, 3}, {9, 2}, {3, 5}, {12, 7}}
	for _, s := range shapes {
		m, n := s[0], s[1]
		a := randMat(m, n, rng)
		orig := append([]float64(nil), a...)
		ipiv := make([]int, min(m, n))
		if err := Dgetf2(m, n, a, n, ipiv); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		rec := reconstructLU(m, n, a, n, ipiv)
		if d := maxDiff(rec, orig); d > 1e-10 {
			t.Fatalf("%v: PLU differs from A by %g", s, d)
		}
	}
}

func TestDgetf2PivotsAreMax(t *testing.T) {
	// With partial pivoting all multipliers |l_ij| ≤ 1.
	rng := rand.New(rand.NewSource(23))
	n := 20
	a := randMat(n, n, rng)
	ipiv := make([]int, n)
	if err := Dgetf2(n, n, a, n, ipiv); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(a[i*n+j]) > 1+1e-14 {
				t.Fatalf("multiplier |L[%d,%d]| = %g > 1", i, j, a[i*n+j])
			}
		}
	}
}

func TestDgetf2Singular(t *testing.T) {
	// Second column is a multiple of the first → zero pivot at step 1.
	a := []float64{1, 2, 2, 4}
	ipiv := make([]int, 2)
	if err := Dgetf2(2, 2, a, 2, ipiv); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestDgetrfMatchesDgetf2(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, n := range []int{10, 47, 48, 49, 96, 130} {
		a1 := randMat(n, n, rng)
		a2 := append([]float64(nil), a1...)
		p1 := make([]int, n)
		p2 := make([]int, n)
		if err := Dgetrf(n, n, a1, n, p1); err != nil {
			t.Fatalf("Dgetrf n=%d: %v", n, err)
		}
		if err := Dgetf2(n, n, a2, n, p2); err != nil {
			t.Fatalf("Dgetf2 n=%d: %v", n, err)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("n=%d: pivot %d differs: %d vs %d", n, i, p1[i], p2[i])
			}
		}
		if d := maxDiff(a1, a2); d > 1e-9 {
			t.Fatalf("n=%d: blocked and unblocked factors differ by %g", n, d)
		}
	}
}

func TestDgetrs(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n := 30
	a := randMat(n, n, rng)
	orig := append([]float64(nil), a...)
	x := randVec(n, rng)
	b := make([]float64, n)
	Dgemv(false, n, n, 1, orig, n, x, 0, b)
	ipiv := make([]int, n)
	if err := Dgetrf(n, n, a, n, ipiv); err != nil {
		t.Fatal(err)
	}
	Dgetrs(n, a, n, ipiv, b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-8 {
			t.Fatalf("solve error at %d: %g vs %g", i, b[i], x[i])
		}
	}
}

func TestDlaswp(t *testing.T) {
	a := []float64{
		1, 1,
		2, 2,
		3, 3,
	}
	Dlaswp(2, a, 2, []int{2, 1, 2}) // swap(0,2) then swap(2,2 after 1,1 noop)... ipiv={2,1,2}
	// step0: rows 0,2 swap → [3,3;2,2;1,1]; step1: noop; step2: noop(2==2)? ipiv[2]=2 equals i → noop
	want := []float64{3, 3, 2, 2, 1, 1}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("Dlaswp = %v, want %v", a, want)
		}
	}
}

// Property: random well-scaled square systems solve to small residual.
func TestQuickLUSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		a := randMat(n, n, rng)
		for i := 0; i < n; i++ {
			a[i*n+i] += float64(n) // diagonally dominant → well-conditioned
		}
		orig := append([]float64(nil), a...)
		x := randVec(n, rng)
		b := make([]float64, n)
		Dgemv(false, n, n, 1, orig, n, x, 0, b)
		ipiv := make([]int, n)
		if err := Dgetrf(n, n, a, n, ipiv); err != nil {
			return false
		}
		Dgetrs(n, a, n, ipiv, b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
