package blas

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func randVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestDdot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Ddot(3, x, 1, y, 1); got != 32 {
		t.Fatalf("Ddot = %g, want 32", got)
	}
}

func TestDdotStrided(t *testing.T) {
	x := []float64{1, 0, 2, 0, 3}
	y := []float64{4, 5, 6}
	if got := Ddot(3, x, 2, y, 1); got != 32 {
		t.Fatalf("strided Ddot = %g, want 32", got)
	}
}

func TestDaxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Daxpy(3, 2, x, 1, y, 1)
	want := []float64{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Daxpy = %v, want %v", y, want)
		}
	}
}

func TestDaxpyAlphaZeroNoop(t *testing.T) {
	y := []float64{1, 2}
	Daxpy(2, 0, []float64{9, 9}, 1, y, 1)
	if y[0] != 1 || y[1] != 2 {
		t.Fatal("Daxpy with alpha=0 modified y")
	}
}

func TestDscal(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	Dscal(2, 3, x, 2) // scales x[0], x[2]
	want := []float64{3, 2, 9, 4}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("Dscal = %v, want %v", x, want)
		}
	}
}

func TestIdamax(t *testing.T) {
	if got := Idamax(4, []float64{1, -5, 3, 2}, 1); got != 1 {
		t.Fatalf("Idamax = %d, want 1", got)
	}
	if got := Idamax(0, nil, 1); got != -1 {
		t.Fatalf("Idamax(0) = %d, want -1", got)
	}
	// Ties keep the first occurrence like the reference BLAS.
	if got := Idamax(3, []float64{2, -2, 2}, 1); got != 0 {
		t.Fatalf("Idamax tie = %d, want 0", got)
	}
}

func TestDnrm2(t *testing.T) {
	if got := Dnrm2(2, []float64{3, 4}, 1); !almostEqual(got, 5, 1e-15) {
		t.Fatalf("Dnrm2 = %g, want 5", got)
	}
	// Overflow guard: huge values must not overflow to +Inf.
	big := 1e300
	if got := Dnrm2(2, []float64{big, big}, 1); math.IsInf(got, 0) {
		t.Fatal("Dnrm2 overflowed")
	}
	if got := Dnrm2(3, []float64{0, 0, 0}, 1); got != 0 {
		t.Fatalf("Dnrm2 of zeros = %g", got)
	}
}

func TestDcopyDswap(t *testing.T) {
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	Dcopy(3, x, 1, y, 1)
	for i := range y {
		if y[i] != x[i] {
			t.Fatal("Dcopy failed")
		}
	}
	a := []float64{1, 2}
	b := []float64{3, 4}
	Dswap(2, a, 1, b, 1)
	if a[0] != 3 || b[1] != 2 {
		t.Fatal("Dswap failed")
	}
}

func TestDasum(t *testing.T) {
	if got := Dasum(3, []float64{-1, 2, -3}, 1); got != 6 {
		t.Fatalf("Dasum = %g, want 6", got)
	}
}
