package blas

import "sync"

// Cache-blocking sizes of the packed Dgemm path. A gemmMC×gemmKC block
// of A (128 KiB) and the gemmKC×gemmNR slice of the packed B panel it
// multiplies fit in L2 with room to spare; the gemmKC×gemmNR B
// micro-panel (8 KiB) stays in L1 across the whole column of A
// micro-tiles. gemmMC is a multiple of gemmMR and gemmNC a multiple of
// gemmNR so the packed buffers below never need more than their
// nominal capacity even when edge micro-panels are padded.
const (
	packMC = 128
	packKC = 128
	packNC = 512
)

// Seed-path blocking constants (the original kernel's k/m blocking),
// kept for the scalar fallback that handles matrices too small to be
// worth packing.
const (
	gemmMC = 64
	gemmKC = 128
)

// packedGemmCutoff is the minimum m·n·k product for which the packing
// overhead pays for itself; below it the seed scalar kernel wins.
const packedGemmCutoff = 8 * 1024

// gemmScratch holds the packing buffers of one in-flight level-3 call.
// The buffers are fixed-size arrays, not slices, so obtaining a scratch
// never calls make: the pool's New allocates the whole struct at once
// and the numeric hot path recycles it allocation-free.
type gemmScratch struct {
	pa [packMC * packKC]float64
	pb [packKC * packNC]float64
}

// scratchPool recycles packing scratch across Dgemm calls. Workers
// draw from it at most once per kernel invocation, so after the pool
// warms up (one scratch per concurrently running worker) the parallel
// numeric phase performs zero heap allocations per task.
var scratchPool = sync.Pool{New: func() any { return new(gemmScratch) }}

// packA copies the mc×kc block at a (row-major, leading dimension lda)
// into pa as column-major micro-panels of gemmMR rows, folding alpha
// into the values: micro-panel ir holds rows [ir, ir+gemmMR) with
// element (r, p) at pa[ir*kc + p*gemmMR + r]. A partial last
// micro-panel (mc not a multiple of gemmMR) leaves its missing lanes
// untouched; the edge micro-kernel never reads them.
func packA(mc, kc int, alpha float64, a []float64, lda int, pa []float64) {
	for ir := 0; ir < mc; ir += gemmMR {
		mr := mc - ir
		if mr > gemmMR {
			mr = gemmMR
		}
		dst := pa[ir*kc:]
		for r := 0; r < mr; r++ {
			src := a[(ir+r)*lda : (ir+r)*lda+kc]
			for p, v := range src {
				dst[p*gemmMR+r] = alpha * v
			}
		}
	}
}

// packB copies the kc×nc block at b (row-major, leading dimension ldb)
// into pb as row-major micro-panels of gemmNR columns: micro-panel jr
// holds columns [jr, jr+gemmNR) with element (p, j) at
// pb[jr*kc + p*gemmNR + j]. A partial last micro-panel leaves its
// missing lanes untouched; the edge micro-kernel never reads them.
func packB(kc, nc int, b []float64, ldb int, pb []float64) {
	for jr := 0; jr < nc; jr += gemmNR {
		nr := nc - jr
		if nr > gemmNR {
			nr = gemmNR
		}
		dst := pb[jr*kc:]
		for p := 0; p < kc; p++ {
			src := b[p*ldb+jr : p*ldb+jr+nr]
			copy(dst[p*gemmNR:p*gemmNR+nr], src)
		}
	}
}
