package blas

import (
	"sync"
	"sync/atomic"
)

// Default cache-blocking sizes of the packed Dgemm path. A packMC×packKC
// block of A (128 KiB) and the packKC×gemmNR slice of the packed B panel
// it multiplies fit in L2 with room to spare; the packKC×gemmNR B
// micro-panel (8 KiB) stays in L1 across the whole column of A
// micro-tiles. These are the conservative fallback used when the
// analyze-time autotuner (autotune.go) cannot probe the cache geometry.
const (
	packMC = 128
	packKC = 128
	packNC = 512
	packNB = 32
)

// Hard capacities of the packing scratch. The autotuner may raise the
// runtime tile sizes up to these bounds; the fixed-size scratch arrays
// below are dimensioned for the worst case, so retuning never changes
// the allocation behavior of the hot path.
const (
	packMaxMC = 256
	packMaxKC = 256
	packMaxNC = 1024
)

// BlockSizes are the runtime cache-blocking parameters of the level-3
// kernels: MC×KC is the packed A block, KC×NC the packed B panel, and
// NB the strip/panel width of the blocked Dtrsm and DgetrfStatic
// drivers. Any in-range choice is bitwise-safe: blocking changes only
// which contributions are computed together, never the per-element
// ascending-k accumulation order the determinism contract pins.
type BlockSizes struct {
	MC, KC, NC, NB int
}

// DefaultBlockSizes returns the compiled-in tile sizes, active until a
// successful Autotune installs probed ones.
func DefaultBlockSizes() BlockSizes {
	return BlockSizes{MC: packMC, KC: packKC, NC: packNC, NB: packNB}
}

// tileParams holds the active blocking parameters. Kernels load the
// pointer once per call, so a concurrent SetTiles (analyze-time
// autotuning racing an in-flight factorization of another matrix) is
// safe and at worst leaves that call on the previous tiling.
var tileParams atomic.Pointer[BlockSizes]

func init() {
	d := DefaultBlockSizes()
	tileParams.Store(&d)
}

// Tiles returns the active cache-blocking parameters.
func Tiles() BlockSizes { return *tileParams.Load() }

// SetTiles installs bs — clamped to the packing-scratch capacities and
// micro-tile multiples — as the active blocking parameters and returns
// the value actually installed.
func SetTiles(bs BlockSizes) BlockSizes {
	bs = bs.clamp()
	p := bs
	tileParams.Store(&p)
	return bs
}

// clampTile rounds v down to a multiple of mul and bounds it to
// [lo, hi]; non-positive v selects def.
func clampTile(v, def, lo, hi, mul int) int {
	if v <= 0 {
		v = def
	}
	v -= v % mul
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

func (b BlockSizes) clamp() BlockSizes {
	b.MC = clampTile(b.MC, packMC, gemmMR, packMaxMC, gemmMR)
	b.KC = clampTile(b.KC, packKC, 16, packMaxKC, 8)
	b.NC = clampTile(b.NC, packNC, gemmNR, packMaxNC, gemmNR)
	b.NB = clampTile(b.NB, packNB, 8, 128, 8)
	return b
}

// Seed-path blocking constants (the original kernel's k/m blocking),
// kept for the scalar fallback that handles matrices too small to be
// worth packing.
const (
	gemmMC = 64
	gemmKC = 128
)

// packedGemmCutoff is the minimum m·n·k product for which the packing
// overhead pays for itself; below it the seed scalar kernel wins.
const packedGemmCutoff = 8 * 1024

// gemmScratch holds the packing buffers of one in-flight level-3 call.
// The buffers are fixed-size arrays, not slices, so obtaining a scratch
// never calls make: allocation creates the whole struct at once and the
// numeric hot path recycles it allocation-free.
type gemmScratch struct {
	pa [packMaxMC * packMaxKC]float64
	pb [packMaxKC * packMaxNC]float64
}

// The scratch freelist recycles packing scratch across Dgemm calls.
// Workers draw from it at most once per kernel invocation, so after it
// warms up (one scratch per concurrently running worker) the parallel
// numeric phase performs zero heap allocations per task. This is
// deliberately a mutex-guarded stack rather than a sync.Pool: under the
// race detector the pool drops a fraction of Puts by design, and
// re-zeroing plus shadow-remapping the multi-MiB scratch on every drop
// dominated race-enabled factorizations (~2× wall time). The stack
// reuses every buffer deterministically; it grows to the peak number of
// concurrent packed calls and scratchMaxFree bounds the idle retention.
var (
	scratchMu   sync.Mutex
	scratchFree []*gemmScratch
)

const scratchMaxFree = 32

func getScratch() *gemmScratch {
	scratchMu.Lock()
	if n := len(scratchFree); n > 0 {
		s := scratchFree[n-1]
		scratchFree[n-1] = nil
		scratchFree = scratchFree[:n-1]
		scratchMu.Unlock()
		return s
	}
	scratchMu.Unlock()
	return new(gemmScratch)
}

func putScratch(s *gemmScratch) {
	scratchMu.Lock()
	if len(scratchFree) < scratchMaxFree {
		// The freelist stack IS the pooled buffer: its backing array
		// reaches the peak concurrency within a few calls and every
		// later append reuses it, so steady-state puts do not allocate.
		//lucheck:allow hot-alloc — bounded freelist append (≤scratchMaxFree), amortized zero-allocation after warm-up
		scratchFree = append(scratchFree, s)
	}
	scratchMu.Unlock()
}

// packA copies the mc×kc block at a (row-major, leading dimension lda)
// into pa as column-major micro-panels of gemmMR rows, folding alpha
// into the values: micro-panel ir holds rows [ir, ir+gemmMR) with
// element (r, p) at pa[ir*kc + p*gemmMR + r]. A partial last
// micro-panel (mc not a multiple of gemmMR) leaves its missing lanes
// untouched; the edge micro-kernel never reads them.
func packA(mc, kc int, alpha float64, a []float64, lda int, pa []float64) {
	for ir := 0; ir < mc; ir += gemmMR {
		mr := mc - ir
		if mr > gemmMR {
			mr = gemmMR
		}
		dst := pa[ir*kc:]
		for r := 0; r < mr; r++ {
			src := a[(ir+r)*lda : (ir+r)*lda+kc]
			for p, v := range src {
				dst[p*gemmMR+r] = alpha * v
			}
		}
	}
}

// packB copies the kc×nc block at b (row-major, leading dimension ldb)
// into pb as row-major micro-panels of gemmNR columns: micro-panel jr
// holds columns [jr, jr+gemmNR) with element (p, j) at
// pb[jr*kc + p*gemmNR + j]. A partial last micro-panel leaves its
// missing lanes untouched; the edge micro-kernel never reads them.
func packB(kc, nc int, b []float64, ldb int, pb []float64) {
	for jr := 0; jr < nc; jr += gemmNR {
		nr := nc - jr
		if nr > gemmNR {
			nr = gemmNR
		}
		dst := pb[jr*kc:]
		for p := 0; p < kc; p++ {
			src := b[p*ldb+jr : p*ldb+jr+nr]
			copy(dst[p*gemmNR:p*gemmNR+nr], src)
		}
	}
}
