package blas

import (
	"math"
	"math/rand"
	"testing"
)

// The satellite grid: every dimension straddles the register-tile and
// cache-block boundaries — 0, 1, gemmMR−1, gemmMR, gemmMR+1, gemmNR+3,
// 2·packKC+5 — crossed with the α/β values that trigger the scale
// pre-pass's three branches and the early-out.
var (
	edgeDims   = []int{0, 1, gemmMR - 1, gemmMR, gemmMR + 1, gemmNR + 3, 2*packKC + 5}
	edgeScales = []float64{0, 1, -1, 0.5}
)

// TestDgemmEdgeGrid checks Dgemm against the naive O(mnk) reference on
// the full dimension grid. The naive product A·B is computed once per
// shape; each (α, β) pair is then validated against α·(A·B) + β·C with
// a scaled tolerance.
func TestDgemmEdgeGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, m := range edgeDims {
		for _, n := range edgeDims {
			for _, k := range edgeDims {
				// BLAS contract: leading dimensions are ≥ max(1, cols),
				// so degenerate shapes get one padding column.
				lda, ldb := maxInt(k, 1), maxInt(n, 1)
				a := sparseRandMat(m, lda, rng)
				b := sparseRandMat(k, ldb, rng)
				c0 := sparseRandMat(m, ldb, rng)
				// One naive S = A·B per shape; α/β applied afterwards.
				s := make([]float64, m*ldb)
				naiveGemm(m, n, k, 1, a, lda, b, ldb, 0, s, ldb)
				tol := 1e-12 * float64(k+1)
				for _, alpha := range edgeScales {
					for _, beta := range edgeScales {
						c1 := append([]float64(nil), c0...)
						Dgemm(m, n, k, alpha, a, lda, b, ldb, beta, c1, ldb)
						for i := 0; i < m; i++ {
							for j := 0; j < n; j++ {
								want := alpha*s[i*ldb+j] + beta*c0[i*ldb+j]
								if d := math.Abs(c1[i*ldb+j] - want); d > tol || math.IsNaN(d) {
									t.Fatalf("m=%d n=%d k=%d α=%g β=%g: C[%d,%d] = %g, want %g (Δ=%g)",
										m, n, k, alpha, beta, i, j, c1[i*ldb+j], want, d)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestDgemmEdgeGridBitwise pins the same grid bitwise to the seed
// kernel — the grid shapes cross the packed-path dispatch boundary in
// both directions, so this locks the dispatch itself down.
func TestDgemmEdgeGridBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, m := range edgeDims {
		for _, n := range edgeDims {
			for _, k := range edgeDims {
				lda, ldb := maxInt(k, 1), maxInt(n, 1)
				a := sparseRandMat(m, lda, rng)
				b := sparseRandMat(k, ldb, rng)
				c0 := sparseRandMat(m, ldb, rng)
				for _, alpha := range edgeScales {
					for _, beta := range edgeScales {
						c1 := append([]float64(nil), c0...)
						c2 := append([]float64(nil), c0...)
						Dgemm(m, n, k, alpha, a, lda, b, ldb, beta, c1, ldb)
						seedDgemm(m, n, k, alpha, a, lda, b, ldb, beta, c2, ldb)
						bitsEqual(t, "Dgemm edge grid", c1, c2)
					}
				}
			}
		}
	}
}

// TestDtrsmEdgeGrid solves T·X = α·B on the grid and checks the
// residual of the reconstruction T·X against α·B, for both triangles
// and both diagonal modes.
func TestDtrsmEdgeGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, lower := range []bool{true, false} {
		for _, unit := range []bool{true, false} {
			for _, m := range edgeDims {
				for _, n := range edgeDims {
					ldt, ldb := maxInt(m, 1), maxInt(n, 1)
					tm := sparseRandMat(m, ldt, rng)
					for i := 0; i < m; i++ {
						tm[i*ldt+i] = 2 + rng.Float64() // well-conditioned
						for j := 0; j < m; j++ {
							if (lower && j > i) || (!lower && j < i) {
								tm[i*ldt+j] = 0
							}
						}
						if unit {
							tm[i*ldt+i] = 1
						}
					}
					b0 := sparseRandMat(m, ldb, rng)
					for _, alpha := range edgeScales {
						x := append([]float64(nil), b0...)
						Dtrsm(lower, unit, m, n, alpha, tm, ldt, x, ldb)
						// Reconstruct T·X and compare with α·B.
						tx := make([]float64, m*ldb)
						naiveGemm(m, n, m, 1, tm, ldt, x, ldb, 0, tx, ldb)
						// Forward substitution can grow the solution, so the
						// residual bound must scale with ‖X‖, not just ‖B‖.
						xmax := 1.0
						for i := 0; i < m; i++ {
							for j := 0; j < n; j++ {
								if v := math.Abs(x[i*ldb+j]); v > xmax {
									xmax = v
								}
							}
						}
						tol := 1e-12 * float64(m+1) * xmax
						for i := 0; i < m; i++ {
							for j := 0; j < n; j++ {
								want := alpha * b0[i*ldb+j]
								if d := math.Abs(tx[i*ldb+j] - want); d > tol || math.IsNaN(d) {
									t.Fatalf("lower=%v unit=%v m=%d n=%d α=%g: (T·X)[%d,%d] = %g, want %g",
										lower, unit, m, n, alpha, i, j, tx[i*ldb+j], want)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestDgetrfStaticEdgeGrid pins DgetrfStatic to the unblocked seed
// kernel on the grid shapes (both fail and perturb mode) — the m=0 /
// n=0 / single-column degenerate shapes ride along.
func TestDgetrfStaticEdgeGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for _, m := range edgeDims {
		for _, n := range edgeDims {
			mn := m
			if n < mn {
				mn = n
			}
			for _, thresh := range []float64{0, 1e-8} {
				lda := maxInt(n, 1)
				a0 := sparseRandMat(m, lda, rng)
				a1 := append([]float64(nil), a0...)
				a2 := append([]float64(nil), a0...)
				ipiv1 := make([]int, mn)
				ipiv2 := make([]int, mn)
				pbuf := make([]int, mn)
				np, fz1 := DgetrfStatic(m, n, a1, lda, ipiv1, thresh, pbuf)
				pcols, fz2 := seedDgetf2Static(m, n, a2, lda, ipiv2, thresh)
				bitsEqual(t, "DgetrfStatic edge grid", a1, a2)
				if fz1 != fz2 || np != len(pcols) {
					t.Fatalf("m=%d n=%d thresh=%g: (np=%d, fz=%d) vs seed (np=%d, fz=%d)",
						m, n, thresh, np, fz1, len(pcols), fz2)
				}
				for i := 0; i < np; i++ {
					if pbuf[i] != pcols[i] {
						t.Fatalf("m=%d n=%d: perturbed col %d vs seed %d", m, n, pbuf[i], pcols[i])
					}
				}
				for i := range ipiv1 {
					if ipiv1[i] != ipiv2[i] {
						t.Fatalf("m=%d n=%d: ipiv[%d] = %d vs seed %d", m, n, i, ipiv1[i], ipiv2[i])
					}
				}
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
