package blas

import (
	"errors"
	"math"
)

// ErrSingular is returned when a pivot column is exactly zero.
var ErrSingular = errors.New("blas: matrix is numerically singular")

// Dlaswp applies the row interchanges recorded in ipiv to the m×n
// row-major matrix a: for i = 0..len(ipiv)-1, row i is swapped with row
// ipiv[i]. Applying the same ipiv again undoes the permutation only if
// applied in reverse; the factorization always applies it forward.
func Dlaswp(n int, a []float64, lda int, ipiv []int) {
	for i, p := range ipiv {
		if p != i {
			Dswap(n, a[i*lda:], 1, a[p*lda:], 1)
		}
	}
}

// Dgetf2 computes the LU factorization with partial pivoting of an m×n
// row-major matrix (m ≥ n panels are typical): A = P·L·U where L is unit
// lower trapezoidal and U upper triangular, stored in place. ipiv must
// have length min(m, n); on return ipiv[i] is the row swapped with row i
// at step i. Returns ErrSingular if a pivot is exactly zero (the
// factorization still completes the remaining columns, matching LAPACK's
// info convention loosely).
func Dgetf2(m, n int, a []float64, lda int, ipiv []int) error {
	if _, firstZero := Dgetf2Static(m, n, a, lda, ipiv, 0, nil); firstZero >= 0 {
		return ErrSingular
	}
	return nil
}

// Dgetf2Static is the panel kernel of the static-pivoting factorization:
// the same in-place LU with partial pivoting as Dgetf2, but with the two
// degradation policies of a solver that cannot exchange rows outside the
// panel's static row set.
//
// With thresh <= 0 (fail mode) an exactly zero pivot column is skipped —
// the factorization completes the remaining columns — and firstZero
// reports the first (lowest) panel-local column whose pivot was exactly
// zero, or -1 if none was.
//
// With thresh > 0 (perturbation mode, SuperLU_DIST style) a pivot whose
// magnitude falls below thresh is replaced by ±thresh, preserving its
// sign (an exact zero becomes +thresh), so the factorization never
// fails; the panel-local indices of the perturbed columns are written
// in ascending order to the caller-provided perturbed buffer (which
// must have room for min(m, n) entries — the hot path preallocates it
// so factoring never allocates), nperturbed reports how many were
// written, and firstZero is always -1.  Callers are expected to recover
// the lost accuracy with iterative refinement.
func Dgetf2Static(m, n int, a []float64, lda int, ipiv []int, thresh float64, perturbed []int) (nperturbed, firstZero int) {
	mn := m
	if n < mn {
		mn = n
	}
	firstZero = -1
	for j := 0; j < mn; j++ {
		// Find pivot in column j, rows j..m-1.
		p := j
		best := math.Abs(a[j*lda+j])
		for i := j + 1; i < m; i++ {
			if v := math.Abs(a[i*lda+j]); v > best {
				best, p = v, i
			}
		}
		ipiv[j] = p
		if best == 0 && thresh <= 0 {
			if firstZero < 0 {
				firstZero = j
			}
			continue
		}
		if p != j {
			Dswap(n, a[j*lda:], 1, a[p*lda:], 1)
		}
		piv := a[j*lda+j]
		if thresh > 0 && math.Abs(piv) < thresh {
			// Sign-preserving static perturbation: a tiny pivot cannot be
			// exchanged away (the row set is fixed), so bump it to the
			// threshold instead of failing.
			if math.Signbit(piv) {
				piv = -thresh
			} else {
				piv = thresh
			}
			a[j*lda+j] = piv
			perturbed[nperturbed] = j
			nperturbed++
		}
		inv := 1 / piv
		for i := j + 1; i < m; i++ {
			lij := a[i*lda+j] * inv
			a[i*lda+j] = lij
			if lij == 0 {
				continue
			}
			arow := a[i*lda+j+1 : i*lda+n]
			urow := a[j*lda+j+1 : j*lda+n]
			for t, v := range urow {
				arow[t] -= lij * v
			}
		}
	}
	return nperturbed, firstZero
}

// DgetrfStatic is the blocked right-looking variant of Dgetf2Static:
// identical contract (static row set, fail/perturb degradation, ipiv
// and perturbed indices local to the whole panel), but panels wider
// than the runtime NB are factored NB columns at a time with
// Dtrsm/Dgemm trailing updates so the bulk of the work runs in the
// packed level-3 kernels.
//
// The result is bitwise identical to Dgetf2Static on the same input for
// any NB: the trailing update applies the same l·u subtrahends to each
// element in the same ascending elimination order, and a column skipped
// for an exactly zero pivot (fail mode) is zero everywhere below the
// diagonal — the pivot search covered all remaining rows — so the
// level-3 updates' exact-zero skips reproduce the unblocked kernel's
// skipped eliminations automatically.
func DgetrfStatic(m, n int, a []float64, lda int, ipiv []int, thresh float64, perturbed []int) (nperturbed, firstZero int) {
	return dgetrfStatic(m, n, a, lda, ipiv, thresh, perturbed, false)
}

// dgetrfStatic is the shared driver behind DgetrfStatic and
// DgetrfStaticFast: fast is passed to the level-3 trailing updates; the
// panel kernel and pivot handling are identical in both modes.
func dgetrfStatic(m, n int, a []float64, lda int, ipiv []int, thresh float64, perturbed []int, fast bool) (nperturbed, firstZero int) {
	mn := m
	if n < mn {
		mn = n
	}
	nb := Tiles().NB
	if mn <= nb {
		return Dgetf2Static(m, n, a, lda, ipiv, thresh, perturbed)
	}
	firstZero = -1
	for j := 0; j < mn; j += nb {
		jb := nb
		if j+jb > mn {
			jb = mn - j
		}
		// Factor the panel A[j:m, j:j+jb].
		var sub []int
		if perturbed != nil {
			sub = perturbed[nperturbed:]
		}
		np, fz := Dgetf2Static(m-j, jb, a[j*lda+j:], lda, ipiv[j:j+jb], thresh, sub)
		if fz >= 0 && firstZero < 0 {
			firstZero = j + fz
		}
		for i := 0; i < np; i++ {
			perturbed[nperturbed+i] += j
		}
		nperturbed += np
		// Convert panel-local pivot indices to global and apply the
		// interchanges to the columns outside the panel.
		for i := j; i < j+jb; i++ {
			ipiv[i] += j
			p := ipiv[i]
			if p != i {
				// Left of panel.
				Dswap(j, a[i*lda:], 1, a[p*lda:], 1)
				// Right of panel.
				if j+jb < n {
					Dswap(n-j-jb, a[i*lda+j+jb:], 1, a[p*lda+j+jb:], 1)
				}
			}
		}
		if j+jb < n {
			// U block row: solve L11 · U12 = A12.
			dtrsm(true, true, jb, n-j-jb, 1, a[j*lda+j:], lda, a[j*lda+j+jb:], lda, fast)
			// Trailing update: A22 ← A22 − L21 · U12.
			if j+jb < m {
				dgemm(m-j-jb, n-j-jb, jb, -1,
					a[(j+jb)*lda+j:], lda,
					a[j*lda+j+jb:], lda,
					1, a[(j+jb)*lda+j+jb:], lda, fast)
			}
		}
	}
	return nperturbed, firstZero
}

// Dgetrf computes a blocked LU factorization with partial pivoting of an
// m×n row-major matrix, equivalent to Dgetf2 but using Dtrsm/Dgemm on
// trailing blocks for cache efficiency. ipiv has length min(m, n).
func Dgetrf(m, n int, a []float64, lda int, ipiv []int) error {
	if _, firstZero := DgetrfStatic(m, n, a, lda, ipiv, 0, nil); firstZero >= 0 {
		return ErrSingular
	}
	return nil
}

// Dgetrs solves A·x = b using the factorization computed by
// Dgetrf/Dgetf2 on a square n×n matrix, overwriting b with the solution.
func Dgetrs(n int, a []float64, lda int, ipiv []int, b []float64) {
	for i, p := range ipiv {
		if p != i {
			b[i], b[p] = b[p], b[i]
		}
	}
	Dtrsv(true, true, n, a, lda, b)   // L·y = Pb
	Dtrsv(false, false, n, a, lda, b) // U·x = y
}
