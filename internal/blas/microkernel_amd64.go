//go:build amd64

package blas

// useAVX2 gates the assembly micro-kernel. Detection runs once at
// init; the fallback is the portable Go kernel.
var useAVX2 = detectAVX2()

// detectAVX2 reports whether the CPU supports AVX2 and the OS has
// enabled the YMM register state (OSXSAVE + XCR0 bits 1:2).
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, cx, _ := cpuid(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if cx&osxsaveBit == 0 || cx&avxBit == 0 {
		return false
	}
	if xcr0, _ := xgetbv(); xcr0&6 != 6 {
		return false
	}
	_, bx, _, _ := cpuid(7, 0)
	return bx&(1<<5) != 0
}

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)

//go:noescape
func microKernel4x8AVX2(kc int, pa, pb, c *float64, ldc int)

// microKernel4x8 dispatches the full-tile kernel. The assembly version
// uses separate VMULPD/VADDPD (never FMA, whose single rounding would
// diverge from the scalar kernels) and masks out contributions whose
// packed A value compares equal to zero by adding -0.0 instead — an
// IEEE no-op on every value, including -0 and NaN accumulators — so it
// is bitwise identical to microKernel4x8Go.
func microKernel4x8(kc int, pa, pb []float64, c []float64, ldc int) {
	if useAVX2 && kc > 0 {
		microKernel4x8AVX2(kc, &pa[0], &pb[0], &c[0], ldc)
		return
	}
	microKernel4x8Go(kc, pa, pb, c, ldc)
}
