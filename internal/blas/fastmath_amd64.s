//go:build amd64

#include "textflag.h"

// func microKernel4x8FMA(kc int, pa, pb, c *float64, ldc int)
//
// FastMath full-tile kernel: C[0:4, 0:8] += Aᵖ·Bᵖ on packed
// micro-panels using fused multiply-add. Unlike microKernel4x8AVX2
// there is no exact-zero mask and each contribution is rounded once
// (FMA) instead of twice (mul then add), so the result is NOT bitwise
// identical to the scalar kernels — FastMath callers accept any
// error-bounded result. Same register plan as the bitwise kernel:
// Y0..Y7 the 4×8 C accumulators (row r in Y(2r) cols 0..3 and Y(2r+1)
// cols 4..7), Y8/Y9 the current B row, Y10 the broadcast A value.
TEXT ·microKernel4x8FMA(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8               // row stride in bytes
	LEAQ (DI)(R8*1), R9       // &C[1,0]
	LEAQ (R9)(R8*1), R10      // &C[2,0]
	LEAQ (R10)(R8*1), R11     // &C[3,0]

	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD (R9), Y2
	VMOVUPD 32(R9), Y3
	VMOVUPD (R10), Y4
	VMOVUPD 32(R10), Y5
	VMOVUPD (R11), Y6
	VMOVUPD 32(R11), Y7

kloop:
	VMOVUPD (BX), Y8          // B[p, 0:4]
	VMOVUPD 32(BX), Y9        // B[p, 4:8]

	VBROADCASTSD (SI), Y10    // A[0, p]
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y1

	VBROADCASTSD 8(SI), Y10   // A[1, p]
	VFMADD231PD Y8, Y10, Y2
	VFMADD231PD Y9, Y10, Y3

	VBROADCASTSD 16(SI), Y10  // A[2, p]
	VFMADD231PD Y8, Y10, Y4
	VFMADD231PD Y9, Y10, Y5

	VBROADCASTSD 24(SI), Y10  // A[3, p]
	VFMADD231PD Y8, Y10, Y6
	VFMADD231PD Y9, Y10, Y7

	ADDQ $32, SI
	ADDQ $64, BX
	DECQ CX
	JNZ  kloop

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, (R9)
	VMOVUPD Y3, 32(R9)
	VMOVUPD Y4, (R10)
	VMOVUPD Y5, 32(R10)
	VMOVUPD Y6, (R11)
	VMOVUPD Y7, 32(R11)
	VZEROUPPER
	RET
