//go:build !amd64

package blas

// microKernel4x8 is the portable dispatch: no assembly kernel on this
// architecture.
func microKernel4x8(kc int, pa, pb []float64, c []float64, ldc int) {
	microKernel4x8Go(kc, pa, pb, c, ldc)
}
