package blas

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkDgemm(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{8, 32, 64, 128, 256} {
		a := randMat(n, n, rng)
		bb := randMat(n, n, rng)
		c := randMat(n, n, rng)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(8 * n * n))
			for i := 0; i < b.N; i++ {
				Dgemm(n, n, n, 1, a, n, bb, n, 1, c, n)
			}
			flops := 2 * float64(n) * float64(n) * float64(n)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflop/s")
		})
	}
}

func BenchmarkDgemmSkinny(b *testing.B) {
	// The shapes the supernodal update actually uses: tall-skinny panels
	// times small blocks.
	rng := rand.New(rand.NewSource(2))
	for _, shape := range [][3]int{{256, 8, 8}, {512, 16, 16}, {1024, 32, 32}} {
		m, n, k := shape[0], shape[1], shape[2]
		a := randMat(m, k, rng)
		bb := randMat(k, n, rng)
		c := randMat(m, n, rng)
		b.Run(fmt.Sprintf("%dx%dx%d", m, n, k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Dgemm(m, n, k, -1, a, k, bb, n, 1, c, n)
			}
		})
	}
}

func BenchmarkDtrsm(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{16, 64, 128} {
		t := randMat(n, n, rng)
		for i := 0; i < n; i++ {
			t[i*n+i] += float64(n)
		}
		x := randMat(n, n, rng)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Dtrsm(true, true, n, n, 1, t, n, x, n)
			}
		})
	}
}

func BenchmarkDgetrf(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{32, 128, 256} {
		orig := randMat(n, n, rng)
		a := make([]float64, n*n)
		ipiv := make([]int, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(a, orig)
				if err := Dgetrf(n, n, a, n, ipiv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDgetf2Panel(b *testing.B) {
	// Panel shapes from the factorization: tall and narrow.
	rng := rand.New(rand.NewSource(5))
	for _, shape := range [][2]int{{256, 8}, {512, 16}, {1024, 32}} {
		m, w := shape[0], shape[1]
		orig := randMat(m, w, rng)
		a := make([]float64, m*w)
		ipiv := make([]int, w)
		b.Run(fmt.Sprintf("%dx%d", m, w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(a, orig)
				if err := Dgetf2(m, w, a, w, ipiv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDgetrfStatic(b *testing.B) {
	// The blocked panel factorization on the tall-panel shapes the
	// supernodal numeric phase produces, plus a square case for
	// comparison with BenchmarkDgetrf's unblocked path.
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{256, 256}, {512, 64}, {1024, 64}} {
		m, n := shape[0], shape[1]
		orig := randMat(m, n, rng)
		a := make([]float64, m*n)
		ipiv := make([]int, n)
		b.Run(fmt.Sprintf("%dx%d", m, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(a, orig)
				if _, fz := DgetrfStatic(m, n, a, n, ipiv, 0, nil); fz >= 0 {
					b.Fatalf("zero pivot at %d", fz)
				}
			}
			flops := 2*float64(m)*float64(n)*float64(n) - 2.0/3.0*float64(n)*float64(n)*float64(n)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflop/s")
		})
	}
}

func BenchmarkDgemv(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	n := 256
	a := randMat(n, n, rng)
	x := randVec(n, rng)
	y := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dgemv(false, n, n, 1, a, n, x, 0, y)
	}
}

func BenchmarkDgemmFast(b *testing.B) {
	// The FastMath path on the same sizes as BenchmarkDgemm: the pair
	// quantifies what dropping the bitwise contract buys per size.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{8, 32, 64, 128, 256} {
		a := randMat(n, n, rng)
		bb := randMat(n, n, rng)
		c := randMat(n, n, rng)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(8 * n * n))
			for i := 0; i < b.N; i++ {
				DgemmFast(n, n, n, 1, a, n, bb, n, 1, c, n)
			}
			flops := 2 * float64(n) * float64(n) * float64(n)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflop/s")
		})
	}
}
