// Package verify machine-checks the structural theorems the paper's
// parallel factorization rests on. The checks are pure functions over
// the analysis structures, cheap enough to wire into test suites and —
// behind the core.Options.Verify debug flag — into the analysis
// pipeline itself:
//
//   - VerifyDAG: the task dependence graph is a well-formed acyclic
//     graph whose task table, edge lists and id indices agree.
//   - VerifyLeastDependences: the eforest-guided graph contains exactly
//     the least necessary dependences of Theorem 4 — every
//     U(k,j) → U(k',j) edge satisfies k' = parent(k), every
//     U(k,j) → F(j) edge satisfies parent(k) = j, no edge joins
//     independent subtrees, and no required edge is missing.
//   - VerifyPostorderInvariance: postordering the LU eforest leaves the
//     static symbolic factorization invariant up to relabeling
//     (Theorems 1–3): refactoring the symmetrically permuted matrix
//     yields exactly the relabeled L̄ and Ū patterns.
package verify

import (
	"fmt"

	"repro/internal/etree"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/taskgraph"
)

// VerifyDAG checks that g is a structurally consistent acyclic task
// graph: the id indices (FactorID, UpdateID) agree with the task table,
// every edge stays in range without self-loops or duplicates, NumEdges
// matches the adjacency, and a topological order exists.
func VerifyDAG(g *taskgraph.Graph) error {
	nt := g.NumTasks()
	if len(g.Succ) != nt {
		return fmt.Errorf("verify: %d tasks but %d adjacency lists", nt, len(g.Succ))
	}
	if len(g.FactorID) != g.N {
		return fmt.Errorf("verify: %d block columns but %d factor ids", g.N, len(g.FactorID))
	}
	for k, id := range g.FactorID {
		if id < 0 || id >= nt {
			return fmt.Errorf("verify: FactorID[%d] = %d out of range", k, id)
		}
		if t := g.Tasks[id]; t.Kind != taskgraph.Factor || t.K != k {
			return fmt.Errorf("verify: FactorID[%d] points at task %v", k, t)
		}
	}
	for k, dests := range g.UpdateID {
		for j, id := range dests {
			if id < 0 || id >= nt {
				return fmt.Errorf("verify: UpdateID[%d][%d] = %d out of range", k, j, id)
			}
			if t := g.Tasks[id]; t.Kind != taskgraph.Update || t.K != k || t.J != j {
				return fmt.Errorf("verify: UpdateID[%d][%d] points at task %v", k, j, t)
			}
		}
	}
	edges := 0
	seen := make(map[[2]int]bool)
	for id, succ := range g.Succ {
		for _, s := range succ {
			if int(s) < 0 || int(s) >= nt {
				return fmt.Errorf("verify: edge %v → %d out of range", g.Tasks[id], s)
			}
			if int(s) == id {
				return fmt.Errorf("verify: self-loop on task %v", g.Tasks[id])
			}
			key := [2]int{id, int(s)}
			if seen[key] {
				return fmt.Errorf("verify: duplicate edge %v → %v", g.Tasks[id], g.Tasks[s])
			}
			seen[key] = true
			edges++
		}
	}
	if edges != g.NumEdges {
		return fmt.Errorf("verify: NumEdges = %d but adjacency holds %d edges", g.NumEdges, edges)
	}
	if _, err := g.TopoOrder(); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	return nil
}

// VerifyLeastDependences checks Theorem 4 on an eforest-guided graph
// against the LU eforest f of the block structure the graph was built
// on: every edge is one of the three least-necessary forms
// (F(k) → U(k,j); U(k,j) → U(parent(k),j); U(k,j) → F(j) when
// parent(k) = j), no edge joins tasks sourced in independent subtrees,
// and every edge those forms require is actually present. A fallback
// edge — permitted by the builder when the block structure is not a
// static fixed point — is reported as a violation, because on the
// pipeline's structures Theorem 1 guarantees it never occurs.
func VerifyLeastDependences(g *taskgraph.Graph, f *etree.Forest) error {
	if g.Variant != taskgraph.EForest {
		return fmt.Errorf("verify: graph variant is %v, not eforest", g.Variant)
	}
	if f.Len() != g.N {
		return fmt.Errorf("verify: forest over %d nodes, graph over %d block columns", f.Len(), g.N)
	}
	has := make(map[[2]int]bool, g.NumEdges)
	for id, succ := range g.Succ {
		for _, s := range succ {
			has[[2]int{id, int(s)}] = true
		}
	}

	// Direction 1: every present edge has a least-necessary form.
	for id, succ := range g.Succ {
		from := g.Tasks[id]
		for _, s := range succ {
			to := g.Tasks[s]
			switch {
			case from.Kind == taskgraph.Factor:
				if to.Kind != taskgraph.Update || to.K != from.K {
					return fmt.Errorf("verify: illegal edge %v → %v", from, to)
				}
			case to.Kind == taskgraph.Update:
				if to.J != from.J {
					return fmt.Errorf("verify: edge %v → %v crosses destination columns", from, to)
				}
				if f.Parent[from.K] != to.K {
					return fmt.Errorf("verify: edge %v → %v but parent(%d) = %d (Theorem 4)",
						from, to, from.K, f.Parent[from.K])
				}
				if !f.IsAncestor(to.K, from.K) {
					return fmt.Errorf("verify: edge %v → %v joins independent subtrees", from, to)
				}
			default: // Update → Factor
				if to.K != from.J {
					return fmt.Errorf("verify: edge %v → %v targets a foreign factor", from, to)
				}
				if f.Parent[from.K] != from.J {
					return fmt.Errorf("verify: edge %v → %v but parent(%d) = %d; conservative fallback edge present (structure not a static fixed point?)",
						from, to, from.K, f.Parent[from.K])
				}
			}
		}
	}

	// Direction 2: every edge Theorem 4 requires is present.
	for k := 0; k < g.N; k++ {
		fid := g.FactorID[k]
		p := f.Parent[k]
		for j, id := range g.UpdateID[k] {
			if !has[[2]int{fid, id}] {
				return fmt.Errorf("verify: missing edge F(%d) → U(%d,%d)", k, k, j)
			}
			switch {
			case p == etree.None:
				// Root: the update blocks nothing downstream.
			case p == j:
				if !has[[2]int{id, g.FactorID[j]}] {
					return fmt.Errorf("verify: missing edge U(%d,%d) → F(%d)", k, j, j)
				}
			case p < j:
				nid, ok := g.UpdateID[p][j]
				if !ok {
					return fmt.Errorf("verify: U(%d,%d) exists but U(%d,%d) does not (Theorem 1 violated at block level)", k, j, p, j)
				}
				if !has[[2]int{id, nid}] {
					return fmt.Errorf("verify: missing edge U(%d,%d) → U(%d,%d)", k, j, p, j)
				}
			default: // p > j
				return fmt.Errorf("verify: parent(%d) = %d exceeds destination %d though ū(%d,%d) ≠ 0", k, p, j, k, j)
			}
		}
	}
	return nil
}

// VerifyPostorderInvariance checks Theorems 1–3: let perm be the
// postorder of the LU eforest f of sym, where sym is the static
// symbolic factorization of a. Then the static symbolic factorization
// of the symmetrically permuted matrix P·A·Pᵀ must equal the relabeled
// sym — identical L̄ and Ū patterns, hence identical fill — and the
// relabeled forest must be post-ordered. The check refactors the
// permuted matrix from scratch, so it costs one extra symbolic
// factorization.
func VerifyPostorderInvariance(a *sparse.CSC, sym *symbolic.Result, f *etree.Forest) error {
	if a.NCols != sym.N || f.Len() != sym.N {
		return fmt.Errorf("verify: matrix order %d, symbolic order %d, forest size %d", a.NCols, sym.N, f.Len())
	}
	perm := f.PostOrder()
	relabeled := etree.PermuteSymbolic(sym, perm)
	if !f.Relabel(perm).IsPostOrdered() {
		return fmt.Errorf("verify: relabeled eforest is not post-ordered")
	}
	refactored, err := symbolic.Factor(a.PermuteSym(perm))
	if err != nil {
		return fmt.Errorf("verify: refactoring the postordered matrix: %w", err)
	}
	if err := patternsEqual("L̄", relabeled.L, refactored.L); err != nil {
		return err
	}
	if err := patternsEqual("Ū", relabeled.U, refactored.U); err != nil {
		return err
	}
	if relabeled.NNZ() != refactored.NNZ() {
		return fmt.Errorf("verify: fill changed under postordering: %d vs %d", relabeled.NNZ(), refactored.NNZ())
	}
	return nil
}

// patternsEqual compares two sparsity patterns entry for entry and
// reports the first differing column.
func patternsEqual(name string, want, got *sparse.Pattern) error {
	if want.NRows != got.NRows || want.NCols != got.NCols {
		return fmt.Errorf("verify: %s dimensions differ: %d×%d vs %d×%d",
			name, want.NRows, want.NCols, got.NRows, got.NCols)
	}
	for j := 0; j < want.NCols; j++ {
		wc, gc := want.Col(j), got.Col(j)
		if len(wc) != len(gc) {
			return fmt.Errorf("verify: %s column %d has %d entries, expected %d (Theorem 3 violated)",
				name, j, len(gc), len(wc))
		}
		for t := range wc {
			if wc[t] != gc[t] {
				return fmt.Errorf("verify: %s column %d differs at position %d: row %d vs %d",
					name, j, t, gc[t], wc[t])
			}
		}
	}
	return nil
}
