package verify

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/etree"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/taskgraph"
)

func randomMatrix(n int, density float64, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed))
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Add(i, i, 1+rng.Float64())
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				t.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

func analysis(t *testing.T, n int, density float64, seed int64, v taskgraph.Variant) (*sparse.CSC, *symbolic.Result, *etree.Forest, *taskgraph.Graph) {
	t.Helper()
	a := randomMatrix(n, density, seed)
	sym, err := symbolic.Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	f := etree.LUForest(sym)
	return a, sym, f, taskgraph.New(sym, f, v)
}

func TestVerifyDAGAccepts(t *testing.T) {
	for _, v := range []taskgraph.Variant{taskgraph.SStar, taskgraph.EForest} {
		for seed := int64(1); seed <= 4; seed++ {
			_, _, _, g := analysis(t, 30, 0.1, seed, v)
			if err := VerifyDAG(g); err != nil {
				t.Errorf("%v seed %d: %v", v, seed, err)
			}
		}
	}
}

func TestVerifyDAGRejectsCorruption(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func(g *taskgraph.Graph)
		want string
	}{
		{"self-loop", func(g *taskgraph.Graph) {
			g.Succ[0] = append(g.Succ[0], 0)
			g.NumEdges++
		}, "self-loop"},
		{"out-of-range edge", func(g *taskgraph.Graph) {
			g.Succ[0] = append(g.Succ[0], int32(g.NumTasks()))
			g.NumEdges++
		}, "out of range"},
		{"edge count drift", func(g *taskgraph.Graph) {
			g.NumEdges++
		}, "NumEdges"},
		{"duplicate edge", func(g *taskgraph.Graph) {
			for id := range g.Succ {
				if len(g.Succ[id]) > 0 {
					g.Succ[id] = append(g.Succ[id], g.Succ[id][0])
					g.NumEdges++
					return
				}
			}
		}, "duplicate"},
		{"cycle", func(g *taskgraph.Graph) {
			// Close a cycle along the first existing edge.
			for id := range g.Succ {
				if len(g.Succ[id]) > 0 {
					s := g.Succ[id][0]
					g.Succ[s] = append(g.Succ[s], int32(id))
					g.NumEdges++
					return
				}
			}
		}, "cycle"},
		{"stale factor index", func(g *taskgraph.Graph) {
			g.FactorID[0], g.FactorID[1] = g.FactorID[1], g.FactorID[0]
		}, "FactorID"},
	}
	for _, c := range corruptions {
		_, _, _, g := analysis(t, 25, 0.12, 7, taskgraph.EForest)
		c.mut(g)
		err := VerifyDAG(g)
		if err == nil {
			t.Errorf("%s: corruption not detected", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestVerifyLeastDependencesAccepts(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		_, _, f, g := analysis(t, 35, 0.08, seed, taskgraph.EForest)
		if err := VerifyLeastDependences(g, f); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestVerifyLeastDependencesRejectsSStar(t *testing.T) {
	_, _, f, g := analysis(t, 30, 0.1, 3, taskgraph.SStar)
	if err := VerifyLeastDependences(g, f); err == nil {
		t.Fatal("accepted an S* graph as eforest-guided")
	}
}

func TestVerifyLeastDependencesRejectsExtraAndMissingEdges(t *testing.T) {
	// An extra edge between updates whose sources are not parent-linked
	// must be caught (a dependence Theorem 4 proves unnecessary).
	_, _, f, g := analysis(t, 35, 0.08, 11, taskgraph.EForest)
	found := false
outer:
	for k := 0; k < g.N && !found; k++ {
		for j, id := range g.UpdateID[k] {
			for k2, dests := range g.UpdateID {
				if k2 == k || f.Parent[k] == k2 {
					continue
				}
				if id2, ok := dests[j]; ok && id2 != id {
					g.Succ[id] = append(g.Succ[id], int32(id2))
					g.NumEdges++
					found = true
					continue outer
				}
			}
		}
	}
	if !found {
		t.Skip("no suitable update pair in this instance")
	}
	if err := VerifyLeastDependences(g, f); err == nil {
		t.Error("extra non-eforest edge not detected")
	}

	// A missing required edge must be caught too.
	_, _, f2, g2 := analysis(t, 35, 0.08, 11, taskgraph.EForest)
	for id := range g2.Succ {
		if g2.Tasks[id].Kind == taskgraph.Update && len(g2.Succ[id]) > 0 {
			g2.Succ[id] = g2.Succ[id][:len(g2.Succ[id])-1]
			g2.NumEdges--
			break
		}
	}
	if err := VerifyLeastDependences(g2, f2); err == nil {
		t.Error("missing required edge not detected")
	}
}

func TestVerifyPostorderInvarianceAccepts(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a, sym, f, _ := analysis(t, 40, 0.07, seed, taskgraph.EForest)
		if err := VerifyPostorderInvariance(a, sym, f); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestVerifyPostorderInvarianceRejectsForeignMatrix(t *testing.T) {
	// The symbolic factorization of one matrix relabeled by its forest's
	// postorder cannot match the factorization of a different matrix.
	a1, sym, f, _ := analysis(t, 40, 0.07, 21, taskgraph.EForest)
	a2 := randomMatrix(40, 0.12, 99)
	if sparse.PatternOf(a1).NNZ() == sparse.PatternOf(a2).NNZ() {
		t.Fatal("test matrices accidentally identical")
	}
	if err := VerifyPostorderInvariance(a2, sym, f); err == nil {
		t.Error("mismatched matrix not detected")
	}
}

func TestVerifyDimensionMismatches(t *testing.T) {
	a, sym, f, g := analysis(t, 20, 0.12, 5, taskgraph.EForest)
	small := randomMatrix(10, 0.2, 6)
	if err := VerifyPostorderInvariance(small, sym, f); err == nil {
		t.Error("order mismatch not detected")
	}
	wrongForest := etree.NewForest(make([]int, 5))
	if err := VerifyLeastDependences(g, wrongForest); err == nil {
		t.Error("forest size mismatch not detected")
	}
	_ = a
}
