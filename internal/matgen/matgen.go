// Package matgen generates deterministic synthetic stand-ins for the
// paper's benchmark suite (Table 1). The Harwell-Boeing / University of
// Florida files are not available offline, so each generator reproduces
// the *class* of the original matrix — same application domain, same
// order, comparable nonzero counts and the same topological structure —
// which is what the paper's structural experiments (fill ratio,
// supernode counts, task-graph parallelism) depend on. See DESIGN.md for
// the substitution rationale; real files can be substituted through the
// MatrixMarket reader at any time.
package matgen

import (
	"math/rand"

	"repro/internal/sparse"
)

// Spec describes one benchmark matrix.
type Spec struct {
	// Name of the original Harwell-Boeing/UF matrix this stands in for.
	Name string
	// Domain is the application area quoted in the paper.
	Domain string
	// Gen builds the matrix; deterministic for a fixed Spec.
	Gen func() *sparse.CSC
}

// Suite returns the seven benchmark matrices of the paper's Table 1 in
// the paper's order.
func Suite() []Spec {
	return []Spec{
		{Name: "sherman3", Domain: "oil reservoir modeling", Gen: Sherman3},
		{Name: "sherman5", Domain: "oil reservoir modeling", Gen: Sherman5},
		{Name: "lnsp3937", Domain: "fluid flow modeling", Gen: Lnsp3937},
		{Name: "lns3937", Domain: "fluid flow modeling", Gen: Lns3937},
		{Name: "orsreg1", Domain: "oil reservoir modeling", Gen: Orsreg1},
		{Name: "saylr4", Domain: "oil reservoir modeling", Gen: Saylr4},
		{Name: "goodwin", Domain: "fluid mechanics (FEM)", Gen: Goodwin},
	}
}

// SmallSuite returns reduced-order versions of the same generator
// classes, for tests and quick runs.
func SmallSuite() []Spec {
	return []Spec{
		{Name: "sherman3-s", Domain: "oil reservoir", Gen: func() *sparse.CSC {
			return oilReservoir3D(9, 5, 5, 0.35, 1)
		}},
		{Name: "sherman5-s", Domain: "oil reservoir", Gen: func() *sparse.CSC {
			return implicitReservoir(6, 7, 2, 3, 2)
		}},
		{Name: "lnsp-s", Domain: "fluid flow", Gen: func() *sparse.CSC {
			return convDiff2D(12, 14, true, 3)
		}},
		{Name: "lns-s", Domain: "fluid flow", Gen: func() *sparse.CSC {
			return convDiff2D(12, 14, false, 4)
		}},
		{Name: "orsreg-s", Domain: "oil reservoir", Gen: func() *sparse.CSC {
			return oilReservoir3D(8, 8, 3, 0, 5)
		}},
		{Name: "saylr-s", Domain: "oil reservoir", Gen: func() *sparse.CSC {
			return oilReservoir3D(10, 4, 6, 0, 6)
		}},
		{Name: "goodwin-s", Domain: "fluid mechanics", Gen: func() *sparse.CSC {
			return fem2D(12, 18, 7)
		}},
	}
}

// Sherman3 stands in for HB sherman3: 35×11×13 black-oil reservoir grid
// (n = 5005), 7-point stencil thinned to the original's ~20k nonzeros.
func Sherman3() *sparse.CSC { return oilReservoir3D(35, 11, 13, 0.42, 11) }

// Sherman5 stands in for HB sherman5: a fully implicit 16×23×3 reservoir
// model with 3 unknowns per cell (n = 3312). The coupled unknowns make
// the structure irregular, which is why postordering gains little on it
// in the paper's Table 3.
func Sherman5() *sparse.CSC { return implicitReservoir(16, 23, 3, 3, 12) }

// Lnsp3937 stands in for lnsp3937 (n = 3937): linearized Navier-Stokes,
// structurally unsymmetric.
func Lnsp3937() *sparse.CSC { return convDiff2D(31, 127, true, 13) }

// Lns3937 stands in for lns3937 (n = 3937): same operator with a
// symmetric pattern but unsymmetric values.
func Lns3937() *sparse.CSC { return convDiff2D(31, 127, false, 14) }

// Orsreg1 stands in for HB orsreg1: 21×21×5 oil reservoir grid
// (n = 2205), full 7-point stencil.
func Orsreg1() *sparse.CSC { return oilReservoir3D(21, 21, 5, 0, 15) }

// Saylr4 stands in for HB saylr4: 33×6×18 3-D reservoir (n = 3564).
func Saylr4() *sparse.CSC { return oilReservoir3D(33, 6, 18, 0, 16) }

// Goodwin stands in for the goodwin FEM matrix (n = 7320) on a 61×120
// node triangulated mesh. The original carries ~325k nonzeros from
// higher-order coupled elements; this stand-in has the same order and
// mesh topology with first-order coupling (~63k nonzeros), documented in
// DESIGN.md.
func Goodwin() *sparse.CSC { return fem2D(60, 119, 17) }

// oilReservoir3D builds an nx×ny×nz 7-point operator with unsymmetric
// convection-like perturbations. dropProb removes that fraction of the
// off-diagonal connections (symmetrically in structure, so the diagonal
// stays dominant), mimicking the thinner stencils of the sherman
// matrices.
func oilReservoir3D(nx, ny, nz int, dropProb float64, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny * nz
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	t := sparse.NewTriplet(n, n)
	diag := make([]float64, n)
	addPair := func(a, b int) {
		if rng.Float64() < dropProb {
			return
		}
		// Unsymmetric transmissibilities: upstream weighting.
		w1 := 0.5 + rng.Float64()
		w2 := 0.5 + rng.Float64()
		t.Add(a, b, -w1)
		t.Add(b, a, -w2)
		diag[a] += w1 + 0.1*rng.Float64()
		diag[b] += w2 + 0.1*rng.Float64()
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := id(x, y, z)
				if x+1 < nx {
					addPair(v, id(x+1, y, z))
				}
				if y+1 < ny {
					addPair(v, id(x, y+1, z))
				}
				if z+1 < nz {
					addPair(v, id(x, y, z+1))
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		t.Add(v, v, diag[v]+1+rng.Float64()) // accumulation term keeps dominance
	}
	return t.ToCSC()
}

// implicitReservoir builds a fully implicit reservoir model: an
// nx×ny×nz cell grid with dof coupled unknowns per cell. Each cell
// carries a dense dof×dof block; neighbouring cells couple through a
// random *subset* of the unknown pairs, producing the irregular
// structure characteristic of sherman5.
func implicitReservoir(nx, ny, nz, dof int, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed))
	cells := nx * ny * nz
	n := cells * dof
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	t := sparse.NewTriplet(n, n)
	diag := make([]float64, n)
	addCell := func(c int) {
		base := c * dof
		for a := 0; a < dof; a++ {
			for b := 0; b < dof; b++ {
				if a != b {
					v := 0.3 * rng.NormFloat64()
					t.Add(base+a, base+b, v)
					diag[base+a] += absf(v)
				}
			}
		}
	}
	couple := func(c1, c2 int) {
		b1, b2 := c1*dof, c2*dof
		for a := 0; a < dof; a++ {
			for b := 0; b < dof; b++ {
				// Sparse, unsymmetric coupling between unknown types.
				if rng.Float64() < 0.35 {
					v := 0.5 + rng.Float64()
					t.Add(b1+a, b2+b, -v)
					diag[b1+a] += v
				}
				if rng.Float64() < 0.35 {
					v := 0.5 + rng.Float64()
					t.Add(b2+a, b1+b, -v)
					diag[b2+a] += v
				}
			}
		}
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				c := id(x, y, z)
				addCell(c)
				if x+1 < nx {
					couple(c, id(x+1, y, z))
				}
				if y+1 < ny {
					couple(c, id(x, y+1, z))
				}
				if z+1 < nz {
					couple(c, id(x, y, z+1))
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		t.Add(v, v, diag[v]+1+rng.Float64())
	}
	return t.ToCSC()
}

// convDiff2D builds a linearized Navier-Stokes-like operator on an
// nx×ny grid: 5-point diffusion plus strong directional convection. If
// structUnsym, some upwind connections exist in only one direction
// (pattern-unsymmetric, like lnsp3937); otherwise the pattern is
// symmetric with unsymmetric values (like lns3937).
func convDiff2D(nx, ny int, structUnsym bool, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny
	id := func(x, y int) int { return y*nx + x }
	t := sparse.NewTriplet(n, n)
	diag := make([]float64, n)
	add := func(a, b, dir int) {
		// Diffusion part both ways, convection biased by dir.
		conv := 1.5 * rng.Float64()
		d := 0.5 + 0.5*rng.Float64()
		fwd := d + float64(dir)*conv
		bwd := d
		t.Add(a, b, -fwd)
		diag[a] += fwd
		if structUnsym && conv > 1.0 && rng.Float64() < 0.5 {
			// Pure upwind: drop the downstream connection entirely.
			diag[b] += bwd
			return
		}
		t.Add(b, a, -bwd)
		diag[b] += bwd
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			v := id(x, y)
			if x+1 < nx {
				add(v, id(x+1, y), 1)
			}
			if y+1 < ny {
				add(v, id(x, y+1), 1)
			}
		}
	}
	for v := 0; v < n; v++ {
		t.Add(v, v, diag[v]+0.5+rng.Float64())
	}
	return t.ToCSC()
}

// fem2D builds the node-connectivity operator of a triangulated
// (nx+1)×(ny+1)-node rectangular mesh: each interior node couples to its
// 8 surrounding nodes (right-diagonal triangulation plus quadrature
// coupling), with unsymmetric convective values — the goodwin class.
// The matrix order is (nx+1)*(ny+1).
func fem2D(nx, ny int, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed))
	rows := ny + 1
	cols := nx + 1
	n := rows * cols
	id := func(x, y int) int { return y*cols + x }
	t := sparse.NewTriplet(n, n)
	diag := make([]float64, n)
	addPair := func(a, b int) {
		w1 := 0.3 + rng.Float64()
		w2 := 0.3 + rng.Float64()
		t.Add(a, b, -w1)
		t.Add(b, a, -w2)
		diag[a] += w1
		diag[b] += w2
	}
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			v := id(x, y)
			if x+1 < cols {
				addPair(v, id(x+1, y))
			}
			if y+1 < rows {
				addPair(v, id(x, y+1))
			}
			if x+1 < cols && y+1 < rows {
				addPair(v, id(x+1, y+1)) // triangulation diagonal
			}
			if x > 0 && y+1 < rows {
				addPair(v, id(x-1, y+1)) // quadrature coupling
			}
		}
	}
	for v := 0; v < n; v++ {
		t.Add(v, v, diag[v]+1+rng.Float64())
	}
	return t.ToCSC()
}

// NearSingular builds a deterministic matrix that is structurally
// healthy (full structural rank, every diagonal present) but
// numerically pathological for static pivoting: the values of column
// zeroCol are all exactly zero — a zero column stays exactly zero
// through elimination, so some pivot is exactly zero under every
// ordering — and the columns in tinyCols are scaled to ~1e-13 of the
// operator's natural magnitude, pushing their pivots below the static
// perturbation threshold √ε·‖A‖∞.
//
// Under PivotFail the factorization flags singularity; under
// PivotPerturb it completes and iterative refinement on a consistent
// right-hand side recovers a small backward error. The explicit zeros
// keep the sparsity pattern intact, so the symbolic phase sees the same
// structure either way.
func NearSingular(nx, ny int, seed int64) (a *sparse.CSC, zeroCol int, tinyCols []int) {
	base := convDiff2D(nx, ny, false, seed)
	n := base.NCols
	zeroCol = n / 2
	tinyCols = []int{n / 4, (3 * n) / 4}
	isTiny := func(j int) bool {
		for _, c := range tinyCols {
			if c == j {
				return true
			}
		}
		return false
	}
	t := sparse.NewTriplet(n, n)
	for j := 0; j < n; j++ {
		rows, vals := base.Col(j)
		scale := 1.0
		switch {
		case j == zeroCol:
			scale = 0
		case isTiny(j):
			scale = 1e-13
		}
		for k, i := range rows {
			t.Add(i, j, vals[k]*scale)
		}
	}
	return t.ToCSC(), zeroCol, tinyCols
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
