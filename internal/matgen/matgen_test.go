package matgen

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sparse"
	"repro/internal/transversal"
)

func TestSuiteOrders(t *testing.T) {
	// Orders must match the paper's Table 1 matrices exactly.
	want := map[string]int{
		"sherman3": 5005,
		"sherman5": 3312,
		"lnsp3937": 3937,
		"lns3937":  3937,
		"orsreg1":  2205,
		"saylr4":   3564,
		"goodwin":  7320,
	}
	for _, spec := range Suite() {
		a := spec.Gen()
		if a.NCols != want[spec.Name] {
			t.Errorf("%s: order %d, want %d", spec.Name, a.NCols, want[spec.Name])
		}
		if a.NRows != a.NCols {
			t.Errorf("%s: not square", spec.Name)
		}
	}
}

func TestSuiteStructure(t *testing.T) {
	for _, spec := range Suite() {
		a := spec.Gen()
		if !a.HasZeroFreeDiagonal() {
			t.Errorf("%s: diagonal has structural zeros", spec.Name)
		}
		r := transversal.MaximumTransversal(a)
		if !r.StructurallyNonsingular() {
			t.Errorf("%s: structurally singular", spec.Name)
		}
		// Reasonable sparsity: between 3 and 20 entries per row.
		perRow := float64(a.NNZ()) / float64(a.NCols)
		if perRow < 3 || perRow > 20 {
			t.Errorf("%s: %g entries per row out of the expected range", spec.Name, perRow)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, spec := range Suite() {
		a := spec.Gen()
		b := spec.Gen()
		if !a.Equal(b) {
			t.Errorf("%s: generator is not deterministic", spec.Name)
		}
	}
}

func TestStructuralUnsymmetry(t *testing.T) {
	// lnsp must be pattern-unsymmetric, lns pattern-symmetric with
	// unsymmetric values.
	lnsp := Lnsp3937()
	unsymCount := 0
	for j := 0; j < lnsp.NCols; j++ {
		rows, _ := lnsp.Col(j)
		for _, i := range rows {
			if !lnsp.Has(j, i) {
				unsymCount++
			}
		}
	}
	if unsymCount == 0 {
		t.Error("lnsp3937 stand-in is pattern-symmetric")
	}
	lns := Lns3937()
	for j := 0; j < lns.NCols; j++ {
		rows, _ := lns.Col(j)
		for _, i := range rows {
			if !lns.Has(j, i) {
				t.Fatalf("lns3937 stand-in has pattern-unsymmetric entry (%d,%d)", i, j)
			}
		}
	}
	valueUnsym := false
	for j := 0; j < lns.NCols && !valueUnsym; j++ {
		rows, vals := lns.Col(j)
		for k, i := range rows {
			if i != j && lns.At(j, i) != vals[k] {
				valueUnsym = true
				break
			}
		}
	}
	if !valueUnsym {
		t.Error("lns3937 stand-in is value-symmetric")
	}
}

func TestSmallSuiteFactorizable(t *testing.T) {
	// Every small-suite matrix must run through the full pipeline and
	// solve to tight backward error.
	rng := rand.New(rand.NewSource(7))
	for _, spec := range SmallSuite() {
		a := spec.Gen()
		n := a.NCols
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		opts := core.DefaultOptions()
		opts.Workers = 2
		f, err := core.Factorize(a, opts)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if r := core.Residual(a, x, b); r > 1e-9 {
			t.Fatalf("%s: residual %g", spec.Name, r)
		}
	}
}

func TestSmallSuiteShapes(t *testing.T) {
	for _, spec := range SmallSuite() {
		a := spec.Gen()
		if a.NCols < 100 {
			t.Errorf("%s: suspiciously small (%d)", spec.Name, a.NCols)
		}
		if a.NCols > 2500 {
			t.Errorf("%s: too large for the small suite (%d)", spec.Name, a.NCols)
		}
		if !a.HasZeroFreeDiagonal() {
			t.Errorf("%s: diagonal has structural zeros", spec.Name)
		}
	}
}

func TestDropProbThinsMatrix(t *testing.T) {
	full := oilReservoir3D(10, 10, 4, 0, 42)
	thin := oilReservoir3D(10, 10, 4, 0.4, 42)
	if thin.NNZ() >= full.NNZ() {
		t.Fatalf("dropProb did not thin: %d vs %d", thin.NNZ(), full.NNZ())
	}
	if !thin.HasZeroFreeDiagonal() {
		t.Fatal("thinned matrix lost its diagonal")
	}
}

func TestImplicitReservoirBlocks(t *testing.T) {
	a := implicitReservoir(3, 3, 2, 3, 9)
	if a.NCols != 3*3*2*3 {
		t.Fatalf("order %d", a.NCols)
	}
	// Intra-cell blocks must be dense-ish: each unknown couples to at
	// least one other unknown in its cell.
	for c := 0; c < 3*3*2; c++ {
		base := c * 3
		found := false
		for aOff := 0; aOff < 3 && !found; aOff++ {
			for bOff := 0; bOff < 3; bOff++ {
				if aOff != bOff && a.Has(base+aOff, base+bOff) {
					found = true
					break
				}
			}
		}
		if !found {
			t.Fatalf("cell %d has no intra-cell coupling", c)
		}
	}
}

func TestFem2DConnectivity(t *testing.T) {
	a := fem2D(5, 4, 3)
	if a.NCols != 6*5 {
		t.Fatalf("order %d, want 30", a.NCols)
	}
	// An interior node must couple to all 8 neighbours.
	cols := 6
	v := 2*cols + 2
	neighbours := []int{v - 1, v + 1, v - cols, v + cols, v - cols - 1, v - cols + 1, v + cols - 1, v + cols + 1}
	for _, u := range neighbours {
		if !a.Has(v, u) {
			t.Fatalf("interior node %d not coupled to neighbour %d", v, u)
		}
	}
}

func TestSuiteAgainstTransversalAndPerm(t *testing.T) {
	// The generators produce valid CSC invariants (sorted, in-range).
	for _, spec := range SmallSuite() {
		a := spec.Gen()
		for j := 0; j < a.NCols; j++ {
			rows, _ := a.Col(j)
			for k := 1; k < len(rows); k++ {
				if rows[k-1] >= rows[k] {
					t.Fatalf("%s: column %d rows unsorted", spec.Name, j)
				}
			}
		}
		_ = sparse.PatternOf(a)
	}
}

func TestNearSingularShape(t *testing.T) {
	a, zeroCol, tinyCols := NearSingular(10, 12, 3)
	if a.NRows != 120 || a.NCols != 120 {
		t.Fatalf("order %d×%d, want 120×120", a.NRows, a.NCols)
	}
	// Structural rank is preserved: every diagonal entry is present.
	for j := 0; j < a.NCols; j++ {
		rows, _ := a.Col(j)
		found := false
		for _, i := range rows {
			if i == j {
				found = true
			}
		}
		if !found {
			t.Fatalf("diagonal (%d,%d) structurally absent", j, j)
		}
	}
	// The zero column is structurally present but exactly zero-valued.
	rows, vals := a.Col(zeroCol)
	if len(rows) == 0 {
		t.Fatalf("zero column %d lost its structure", zeroCol)
	}
	for k, v := range vals {
		if v != 0 {
			t.Fatalf("zero column %d has value %g at row %d", zeroCol, v, rows[k])
		}
	}
	// Tiny columns are nonzero but far below the matrix norm.
	norm := a.NormInf()
	for _, j := range tinyCols {
		_, vals := a.Col(j)
		maxAbs := 0.0
		for _, v := range vals {
			if av := absf(v); av > maxAbs {
				maxAbs = av
			}
		}
		if maxAbs == 0 {
			t.Fatalf("tiny column %d is exactly zero", j)
		}
		if maxAbs > 1e-10*norm {
			t.Fatalf("tiny column %d max %g not tiny vs ‖A‖∞ = %g", j, maxAbs, norm)
		}
	}
}

func TestNearSingularDeterministic(t *testing.T) {
	a, za, ta := NearSingular(8, 9, 7)
	b, zb, tb := NearSingular(8, 9, 7)
	if za != zb || len(ta) != len(tb) {
		t.Fatal("metadata differs between identical calls")
	}
	if len(a.Val) != len(b.Val) {
		t.Fatal("nnz differs between identical calls")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] || a.RowInd[k] != b.RowInd[k] {
			t.Fatalf("entry %d differs", k)
		}
	}
}
