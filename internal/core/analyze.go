package core

import (
	"fmt"
	"sync"

	"repro/internal/blas"
	"repro/internal/etree"
	"repro/internal/ordering"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/supernode"
	"repro/internal/symbolic"
	"repro/internal/taskgraph"
	"repro/internal/trace"
	"repro/internal/transversal"
	"repro/internal/verify"
)

// Symbolic is the reusable output of the analysis pipeline. It depends
// only on the sparsity structure of the matrix, so one analysis serves
// any number of numeric factorizations with the same structure.
type Symbolic struct {
	N int
	// RowPerm is the maximum-transversal row permutation (applied
	// first): row i of A moves to row RowPerm[i].
	RowPerm sparse.Perm
	// SymPerm is the symmetric permutation applied after the transversal
	// (fill-reducing ordering composed with the postorder).
	SymPerm sparse.Perm
	// Sym is the static symbolic factorization of the fully permuted
	// matrix.
	Sym *symbolic.Result
	// Forest is its scalar LU elimination forest.
	Forest *etree.Forest
	// Part is the supernode partition (after amalgamation).
	Part *supernode.Partition
	// BlockSym is the static symbolic factorization of the supernode
	// block matrix — the structure the numeric phase allocates and the
	// task graph is built on.
	BlockSym *symbolic.Result
	// BlockForest is the LU eforest of the block matrix.
	BlockForest *etree.Forest
	// Graph is the task dependence graph (variant per Options).
	Graph *taskgraph.Graph
	// Costs estimates per-task flops for scheduling and simulation.
	Costs *taskgraph.CostModel
	// SolveFwd and SolveBwd are the level-set schedules of the
	// triangular solves' forward (L̄) and backward (Ū) sweeps: one task
	// per block column, with columns touching a common block row
	// chained in serial sweep order (see solvegraph.go). Executing the
	// levels with barriers reproduces the serial sweeps bitwise at any
	// worker count.
	SolveFwd, SolveBwd *sched.Levels
	// SolveFwdT and SolveBwdT are the transpose-solve schedules: the
	// edge-reversed (Reversed) forms of SolveBwd and SolveFwd — the
	// Ûᵀ sweep ascends the U chains, the Lᵀ sweep descends the L ones.
	SolveFwdT, SolveBwdT *sched.Levels
	// SolvePerm is RowPerm composed with SymPerm — the permutation the
	// solves apply to a right-hand side in one pass:
	// y[SolvePerm[i]] = b[i].
	SolvePerm sparse.Perm
	// PatternHash fingerprints the input pattern together with the
	// analysis-shaping options (see PatternHash); Reanalyze uses it to
	// recognize an identical pattern and skip every structural stage.
	PatternHash string
	// StageSeconds is the per-stage wall-time breakdown of the analysis,
	// recorded only when Options.Trace is set.
	StageSeconds []StageTime
	// Stats summarizes the analysis.
	Stats AnalysisStats
	// Autotune records the outcome of the analyze-time kernel tile
	// autotuning (cache probe + chosen block sizes). Host-dependent, not
	// structural: Reanalyze comparisons must ignore it.
	Autotune blas.AutotuneInfo
	// Opts records the options the analysis ran with.
	Opts Options

	// inputPattern is the sparsity pattern of the fully permuted matrix
	// the symbolic stage factored (PermuteInput applied to the input),
	// and symPart the column partition of its AᵀA etree. Together with
	// Sym they are the checkpoint Reanalyze's delta path patches from.
	inputPattern *sparse.Pattern
	symPart      *symbolic.Partition
}

// StageTime is one entry of the per-stage analyze timing breakdown.
type StageTime struct {
	Name    string
	Seconds float64
}

// AnalysisStats reports the quantities the paper's tables are built
// from.
type AnalysisStats struct {
	N            int     // matrix order
	NNZA         int     // nonzeros of A
	NNZFactors   int     // |Ā| after static symbolic factorization
	FillRatio    float64 // |Ā| / |A| (Table 1)
	Supernodes   int     // supernode count after amalgamation + splitting
	StrictSN     int     // supernode count before amalgamation (Table 3 SN/SNPO)
	NumTrees     int     // trees in the scalar eforest = diagonal blocks of the BUT form (Table 3 NoBlks)
	Blocks       int     // N of the block matrix
	BlockNNZ     int     // structurally nonzero blocks
	TaskCount    int
	EdgeCount    int
	TotalFlops   float64
	CriticalPath float64 // flops along the weighted critical path
	// Partition stats of the structure-aware blocking (all structural:
	// they depend only on the pattern and the analysis options).
	SplitBlocks       int     // extra blocks the load-balance Split created
	MaxBlockWidth     int     // widest supernode block of the final partition
	AvgBlockWidth     float64 // mean block width of the final partition
	ExplicitZeros     int     // explicit zeros carried by the dense block storage
	ExplicitZeroRatio float64 // ExplicitZeros / total stored entries
	// AnalyzeSeconds is the wall-clock duration of the Analyze (or
	// Reanalyze) call that produced this Symbolic. It is the only
	// non-structural field: comparisons across runs must ignore it.
	AnalyzeSeconds float64
}

// stageTimer accumulates the per-stage breakdown behind Options.Trace.
// It reads the clock through trace.Stopwatch — the sanctioned wall
// clock — so the timing stats never taint the structural outputs.
type stageTimer struct {
	enabled bool
	sw      trace.Stopwatch
	last    float64
	stages  []StageTime
}

func newStageTimer(enabled bool) *stageTimer {
	return &stageTimer{enabled: enabled, sw: trace.NewStopwatch()}
}

func (t *stageTimer) mark(name string) {
	if !t.enabled {
		return
	}
	now := t.sw.Seconds()
	t.stages = append(t.stages, StageTime{Name: name, Seconds: now - t.last})
	t.last = now
}

// analyzeRunner adapts the async work-stealing engine to the symbolic
// package's Runner shape: ntasks independent subtree eliminations
// executed on procs workers.
func analyzeRunner(procs int) symbolic.Runner {
	return func(ntasks int, run func(i int) error) error {
		if ntasks == 0 {
			return nil
		}
		g := taskgraph.Independent(ntasks)
		return sched.Execute(g, sched.BlockCyclic(ntasks, procs), procs, nil, run)
	}
}

// Analyze runs the full structural pipeline of the paper on a square
// sparse matrix.
func Analyze(a *sparse.CSC, opts *Options) (*Symbolic, error) {
	o := opts.withDefaults()
	if a.NRows != a.NCols {
		return nil, fmt.Errorf("core: matrix must be square, got %d×%d", a.NRows, a.NCols)
	}
	n := a.NCols
	start := trace.NewStopwatch()
	st := newStageTimer(o.Trace != nil)

	// Step 0: zero-free diagonal via maximum transversal [Duff '81].
	tr := transversal.MaximumTransversal(a)
	if !tr.StructurallyNonsingular() {
		return nil, fmt.Errorf("core: matrix is structurally singular (%d of %d columns matched)", tr.MatchedCols, n)
	}
	a1 := a.PermuteRows(tr.RowPerm)
	st.mark("transversal")

	// Step 1: fill-reducing ordering, applied symmetrically so the
	// zero-free diagonal survives.
	fill := ordering.ColumnOrdering(a1, o.Ordering)
	a2 := a1.PermuteSym(fill)
	st.mark("ordering")

	// Step 2: static symbolic factorization (George & Ng), run over
	// independent column-etree subtrees in parallel when
	// AnalyzeWorkers allows — the result is identical either way.
	var sym *symbolic.Result
	var err error
	if o.AnalyzeWorkers > 1 {
		sym, err = symbolic.FactorParallel(a2, o.AnalyzeWorkers, analyzeRunner(o.AnalyzeWorkers))
	} else {
		sym, err = symbolic.Factor(a2)
	}
	if err != nil {
		return nil, fmt.Errorf("core: symbolic factorization: %w", err)
	}
	forest := etree.LUForest(sym)
	st.mark("symbolic")

	// Step 3: postorder the LU eforest (Theorem 3 lets us relabel the
	// symbolic result instead of refactoring).
	symPerm := fill
	aPerm := a2
	if o.Postorder {
		if o.Verify {
			if err := verify.VerifyPostorderInvariance(a2, sym, forest); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
		po := etree.PostorderSymbolic(sym, forest)
		sym = po.Sym
		forest = po.Forest
		symPerm = fill.Compose(po.Perm)
		aPerm = a2.PermuteSym(po.Perm)
	}
	st.mark("postorder")

	return finishAnalysis(a, aPerm, o, tr.RowPerm, symPerm, sym, forest, st, start)
}

// solveOverlap runs the solve-schedule construction on its own
// goroutine so it overlaps the task-graph and cost-model construction
// when AnalyzeWorkers > 1. The goroutine body is a method call: it
// writes only this struct's fields and is joined via wg before anyone
// reads them.
type solveOverlap struct {
	blockSym           *symbolic.Result
	wg                 sync.WaitGroup
	solveFwd, solveBwd *sched.Levels
	err                error
}

func (ov *solveOverlap) run() {
	defer ov.wg.Done()
	ov.solveFwd, ov.solveBwd, ov.err = solveSchedules(ov.blockSym)
}

// checkpointOverlap builds the Reanalyze checkpoint (the exact input
// pattern and its subtree partition) on its own goroutine: it reads
// only aPerm, so it is independent of everything finishAnalysis does
// and overlaps the whole supernode/block/graph phase when
// AnalyzeWorkers > 1. Same discipline as solveOverlap: the goroutine
// body is a method call writing only this struct's fields, joined via
// wg before anyone reads them.
type checkpointOverlap struct {
	aPerm   *sparse.CSC
	workers int
	wg      sync.WaitGroup
	pattern *sparse.Pattern
	part    *symbolic.Partition
}

func (ck *checkpointOverlap) run() {
	defer ck.wg.Done()
	ck.pattern = sparse.PatternOf(ck.aPerm)
	ck.part = symbolic.PartitionColumns(ck.aPerm, ck.workers)
}

// finishAnalysis runs the structural pipeline from the supernode
// partition on: it is shared by Analyze (after transversal + ordering +
// symbolic + postorder) and by Reanalyze's delta path (after patching
// the symbolic result). aPerm is the fully permuted matrix the symbolic
// result describes.
func finishAnalysis(a, aPerm *sparse.CSC, o *Options, rowPerm, symPerm sparse.Perm,
	sym *symbolic.Result, forest *etree.Forest, st *stageTimer, start trace.Stopwatch) (*Symbolic, error) {
	n := a.NCols

	// The Reanalyze checkpoint depends only on aPerm; with parallel
	// analysis it is built concurrently with steps 4–7 below.
	var ck *checkpointOverlap
	if o.AnalyzeWorkers > 1 {
		ck = &checkpointOverlap{aPerm: aPerm, workers: deltaWorkers(o)}
		ck.wg.Add(1)
		go ck.run()
	}

	// Step 4: L/U supernode partition, fill-ratio-driven amalgamation,
	// and load-balance splitting. Amalgamate merges while the explicit
	// zeros stay under MaxFill of the panel storage (no width cap);
	// Split then breaks blocks wider than MaxSize into near-equal
	// panels so dense-ish patterns don't collapse into one serial task.
	// The tile autotuner also runs here — once per process — so the
	// level-3 kernels are tuned before the first numeric phase.
	autotune := blas.AutotuneOnce()
	strict := supernode.StrictPartition(sym)
	merged := supernode.Amalgamate(strict, sym, o.Amalgamation)
	part := supernode.Split(merged, o.Amalgamation.MaxSize)
	st.mark("supernodes")

	// Step 5: block structure, closed under block-level elimination so
	// that the task graph theorems and the numeric phase can rely on the
	// static fixed-point properties at block granularity.
	bp := supernode.BlockPattern(sym, part)
	blockSym, err := symbolic.Factor(bp.ToCSC(1))
	if err != nil {
		return nil, fmt.Errorf("core: block symbolic factorization: %w", err)
	}
	blockForest := etree.LUForest(blockSym)
	st.mark("block symbolic")

	// Steps 6+7: task dependence graph + cost model, and the level-set
	// schedules of the triangular-solve sweeps. The two are independent
	// of each other (both read only blockSym), so with AnalyzeWorkers
	// > 1 the solve schedules build concurrently; each stage's output
	// is identical either way.
	var ov *solveOverlap
	if o.AnalyzeWorkers > 1 {
		ov = &solveOverlap{blockSym: blockSym}
		ov.wg.Add(1)
		go ov.run()
	}
	graph := taskgraph.New(blockSym, blockForest, o.TaskGraph)
	costs := taskgraph.NewCostModel(graph, blockSym, part)

	var solveFwd, solveBwd *sched.Levels
	if ov != nil {
		ov.wg.Wait()
		solveFwd, solveBwd, err = ov.solveFwd, ov.solveBwd, ov.err
	} else {
		solveFwd, solveBwd, err = solveSchedules(blockSym)
	}
	if err != nil {
		return nil, err
	}

	cp, total, err := graph.CriticalPath(costs.TaskFlops)
	if err != nil {
		return nil, fmt.Errorf("core: task graph: %w", err)
	}
	st.mark("task graph + solve schedules")

	if o.Verify {
		if err := verify.VerifyDAG(graph); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if o.TaskGraph == taskgraph.EForest {
			if err := verify.VerifyLeastDependences(graph, blockForest); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
	}

	inputPat, symPart := (*sparse.Pattern)(nil), (*symbolic.Partition)(nil)
	if ck != nil {
		ck.wg.Wait()
		inputPat, symPart = ck.pattern, ck.part
	} else {
		inputPat = sparse.PatternOf(aPerm)
		symPart = symbolic.PartitionColumns(aPerm, deltaWorkers(o))
	}

	explicitZeros := supernode.ExplicitZeros(sym, part, bp)
	zeroRatio := 0.0
	if stored := explicitZeros + sym.NNZ(); stored > 0 {
		zeroRatio = float64(explicitZeros) / float64(stored)
	}

	s := &Symbolic{
		N:            n,
		RowPerm:      rowPerm,
		SymPerm:      symPerm,
		Sym:          sym,
		Forest:       forest,
		Part:         part,
		BlockSym:     blockSym,
		BlockForest:  blockForest,
		Graph:        graph,
		Costs:        costs,
		SolveFwd:     solveFwd,
		SolveBwd:     solveBwd,
		SolveFwdT:    solveBwd.Reversed(),
		SolveBwdT:    solveFwd.Reversed(),
		SolvePerm:    rowPerm.Compose(symPerm),
		PatternHash:  PatternHash(a, o),
		inputPattern: inputPat,
		symPart:      symPart,
		Opts:         *o,
		Stats: AnalysisStats{
			N:            n,
			NNZA:         a.NNZ(),
			NNZFactors:   sym.NNZ(),
			FillRatio:    sym.FillRatio(a.NNZ()),
			Supernodes:   part.NumBlocks(),
			StrictSN:     strict.NumBlocks(),
			NumTrees:     forest.NumTrees(),
			Blocks:       blockSym.N,
			BlockNNZ:     blockSym.NNZ(),
			TaskCount:    graph.NumTasks(),
			EdgeCount:    graph.NumEdges,
			TotalFlops:   total,
			CriticalPath: cp,

			SplitBlocks:       part.NumBlocks() - merged.NumBlocks(),
			MaxBlockWidth:     part.MaxSize(),
			AvgBlockWidth:     part.AvgSize(),
			ExplicitZeros:     explicitZeros,
			ExplicitZeroRatio: zeroRatio,
		},
	}
	s.Autotune = autotune
	st.mark("checkpoint")
	s.StageSeconds = st.stages
	s.Stats.AnalyzeSeconds = start.Seconds()
	return s, nil
}

// deltaWorkers is the worker count the Reanalyze checkpoint partition
// is built for: the configured AnalyzeWorkers, or a modest default so
// the delta path exists even for serial analyses.
func deltaWorkers(o *Options) int {
	if o.AnalyzeWorkers > 1 {
		return o.AnalyzeWorkers
	}
	return 4
}

// PermuteInput applies the analysis permutations to the original matrix,
// producing the matrix the numeric phase actually factors.
func (s *Symbolic) PermuteInput(a *sparse.CSC) *sparse.CSC {
	return a.PermuteRows(s.RowPerm).PermuteSym(s.SymPerm)
}
