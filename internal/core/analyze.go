package core

import (
	"fmt"

	"repro/internal/etree"
	"repro/internal/ordering"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/supernode"
	"repro/internal/symbolic"
	"repro/internal/taskgraph"
	"repro/internal/transversal"
	"repro/internal/verify"
)

// Symbolic is the reusable output of the analysis pipeline. It depends
// only on the sparsity structure of the matrix, so one analysis serves
// any number of numeric factorizations with the same structure.
type Symbolic struct {
	N int
	// RowPerm is the maximum-transversal row permutation (applied
	// first): row i of A moves to row RowPerm[i].
	RowPerm sparse.Perm
	// SymPerm is the symmetric permutation applied after the transversal
	// (fill-reducing ordering composed with the postorder).
	SymPerm sparse.Perm
	// Sym is the static symbolic factorization of the fully permuted
	// matrix.
	Sym *symbolic.Result
	// Forest is its scalar LU elimination forest.
	Forest *etree.Forest
	// Part is the supernode partition (after amalgamation).
	Part *supernode.Partition
	// BlockSym is the static symbolic factorization of the supernode
	// block matrix — the structure the numeric phase allocates and the
	// task graph is built on.
	BlockSym *symbolic.Result
	// BlockForest is the LU eforest of the block matrix.
	BlockForest *etree.Forest
	// Graph is the task dependence graph (variant per Options).
	Graph *taskgraph.Graph
	// Costs estimates per-task flops for scheduling and simulation.
	Costs *taskgraph.CostModel
	// SolveFwd and SolveBwd are the level-set schedules of the
	// triangular solves' forward (L̄) and backward (Ū) sweeps: one task
	// per block column, with columns touching a common block row
	// chained in serial sweep order (see solvegraph.go). Executing the
	// levels with barriers reproduces the serial sweeps bitwise at any
	// worker count.
	SolveFwd, SolveBwd *sched.Levels
	// SolveFwdT and SolveBwdT are the transpose-solve schedules: the
	// edge-reversed (Reversed) forms of SolveBwd and SolveFwd — the
	// Ûᵀ sweep ascends the U chains, the Lᵀ sweep descends the L ones.
	SolveFwdT, SolveBwdT *sched.Levels
	// SolvePerm is RowPerm composed with SymPerm — the permutation the
	// solves apply to a right-hand side in one pass:
	// y[SolvePerm[i]] = b[i].
	SolvePerm sparse.Perm
	// Stats summarizes the analysis.
	Stats AnalysisStats
	// Opts records the options the analysis ran with.
	Opts Options
}

// AnalysisStats reports the quantities the paper's tables are built
// from.
type AnalysisStats struct {
	N            int     // matrix order
	NNZA         int     // nonzeros of A
	NNZFactors   int     // |Ā| after static symbolic factorization
	FillRatio    float64 // |Ā| / |A| (Table 1)
	Supernodes   int     // supernode count after amalgamation
	StrictSN     int     // supernode count before amalgamation (Table 3 SN/SNPO)
	NumTrees     int     // trees in the scalar eforest = diagonal blocks of the BUT form (Table 3 NoBlks)
	Blocks       int     // N of the block matrix
	BlockNNZ     int     // structurally nonzero blocks
	TaskCount    int
	EdgeCount    int
	TotalFlops   float64
	CriticalPath float64 // flops along the weighted critical path
}

// Analyze runs the full structural pipeline of the paper on a square
// sparse matrix.
func Analyze(a *sparse.CSC, opts *Options) (*Symbolic, error) {
	o := opts.withDefaults()
	if a.NRows != a.NCols {
		return nil, fmt.Errorf("core: matrix must be square, got %d×%d", a.NRows, a.NCols)
	}
	n := a.NCols

	// Step 0: zero-free diagonal via maximum transversal [Duff '81].
	tr := transversal.MaximumTransversal(a)
	if !tr.StructurallyNonsingular() {
		return nil, fmt.Errorf("core: matrix is structurally singular (%d of %d columns matched)", tr.MatchedCols, n)
	}
	a1 := a.PermuteRows(tr.RowPerm)

	// Step 1: fill-reducing ordering, applied symmetrically so the
	// zero-free diagonal survives.
	fill := ordering.ColumnOrdering(a1, o.Ordering)
	a2 := a1.PermuteSym(fill)

	// Step 2: static symbolic factorization (George & Ng).
	sym, err := symbolic.Factor(a2)
	if err != nil {
		return nil, fmt.Errorf("core: symbolic factorization: %w", err)
	}
	forest := etree.LUForest(sym)

	// Step 3: postorder the LU eforest (Theorem 3 lets us relabel the
	// symbolic result instead of refactoring).
	symPerm := fill
	if o.Postorder {
		if o.Verify {
			if err := verify.VerifyPostorderInvariance(a2, sym, forest); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
		po := etree.PostorderSymbolic(sym, forest)
		sym = po.Sym
		forest = po.Forest
		symPerm = fill.Compose(po.Perm)
	}

	// Step 4: L/U supernode partition and amalgamation.
	strict := supernode.StrictPartition(sym)
	part := supernode.Amalgamate(strict, sym, o.Amalgamation)

	// Step 5: block structure, closed under block-level elimination so
	// that the task graph theorems and the numeric phase can rely on the
	// static fixed-point properties at block granularity.
	bp := supernode.BlockPattern(sym, part)
	blockSym, err := symbolic.Factor(bp.ToCSC(1))
	if err != nil {
		return nil, fmt.Errorf("core: block symbolic factorization: %w", err)
	}
	blockForest := etree.LUForest(blockSym)

	// Step 6: task dependence graph and cost model.
	graph := taskgraph.New(blockSym, blockForest, o.TaskGraph)
	costs := taskgraph.NewCostModel(graph, blockSym, part)

	// Step 7: level-set schedules of the triangular-solve sweeps. Like
	// everything above they depend only on the structure, so one
	// analysis amortizes them over every factorization and solve.
	solveFwd, solveBwd, err := solveSchedules(blockSym)
	if err != nil {
		return nil, err
	}

	cp, total, err := graph.CriticalPath(costs.TaskFlops)
	if err != nil {
		return nil, fmt.Errorf("core: task graph: %w", err)
	}

	if o.Verify {
		if err := verify.VerifyDAG(graph); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if o.TaskGraph == taskgraph.EForest {
			if err := verify.VerifyLeastDependences(graph, blockForest); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
	}

	s := &Symbolic{
		N:           n,
		RowPerm:     tr.RowPerm,
		SymPerm:     symPerm,
		Sym:         sym,
		Forest:      forest,
		Part:        part,
		BlockSym:    blockSym,
		BlockForest: blockForest,
		Graph:       graph,
		Costs:       costs,
		SolveFwd:    solveFwd,
		SolveBwd:    solveBwd,
		SolveFwdT:   solveBwd.Reversed(),
		SolveBwdT:   solveFwd.Reversed(),
		SolvePerm:   tr.RowPerm.Compose(symPerm),
		Opts:        *o,
		Stats: AnalysisStats{
			N:            n,
			NNZA:         a.NNZ(),
			NNZFactors:   sym.NNZ(),
			FillRatio:    sym.FillRatio(a.NNZ()),
			Supernodes:   part.NumBlocks(),
			StrictSN:     strict.NumBlocks(),
			NumTrees:     forest.NumTrees(),
			Blocks:       blockSym.N,
			BlockNNZ:     blockSym.NNZ(),
			TaskCount:    graph.NumTasks(),
			EdgeCount:    graph.NumEdges,
			TotalFlops:   total,
			CriticalPath: cp,
		},
	}
	return s, nil
}

// PermuteInput applies the analysis permutations to the original matrix,
// producing the matrix the numeric phase actually factors.
func (s *Symbolic) PermuteInput(a *sparse.CSC) *sparse.CSC {
	return a.PermuteRows(s.RowPerm).PermuteSym(s.SymPerm)
}
