package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blas"
	"repro/internal/luerr"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// ErrNumericallySingular is returned when a panel factorization meets an
// exactly zero pivot column. It also matches luerr.ErrSingular, the
// cross-solver singularity class.
var ErrNumericallySingular = luerr.Tag("core: matrix is numerically singular", luerr.ErrSingular)

// ErrNonFinite is wrapped by the task failure that aborts a
// factorization whose kernels produced a NaN or an Inf: once a
// non-finite value enters the factors every downstream task is wasted
// work, so the executor cancels promptly instead of completing the DAG.
// It also matches luerr.ErrNonFinite.
var ErrNonFinite = luerr.Tag("core: non-finite value in factorization", luerr.ErrNonFinite)

// ErrDeadlineExceeded is the cancellation cause installed when a phase
// deadline (Options.Timeout / NumericOptions.Timeout) expires before
// the numeric phase or a solve completes. It also matches
// luerr.ErrDeadline.
var ErrDeadlineExceeded = luerr.Tag("core: factorization deadline exceeded", luerr.ErrDeadline)

// SingularError reports numeric singularity with the first affected
// column attached, in the original (unpermuted) column numbering. It
// matches errors.Is(err, ErrNumericallySingular).
type SingularError struct {
	// Col is the original column index of the first zero pivot, or -1
	// when it is unknown.
	Col int
}

// Error formats the failure with the column attached.
func (e *SingularError) Error() string {
	if e.Col < 0 {
		return ErrNumericallySingular.Error()
	}
	return fmt.Sprintf("%v: no pivot at column %d", ErrNumericallySingular, e.Col)
}

// Unwrap exposes the ErrNumericallySingular sentinel to errors.Is.
func (e *SingularError) Unwrap() error { return ErrNumericallySingular }

// blockCol is the dense stacked storage of one block column: all of its
// structurally present blocks concatenated by ascending block row, each
// block dense. The L panel (diagonal block and below) is the contiguous
// tail, which is what the panel factorization and the TRSM/GEMM kernels
// operate on.
type blockCol struct {
	width     int
	blockRows []int // ascending block-row ids present in this column
	offsets   []int // row offset of each block within data (parallel to blockRows)
	// blockOff is the dense block-row directory: blockOff[br] is the row
	// offset of block row br within data, or -1 when the block is not
	// present. It replaces a map so the hot update() loop does no
	// hashing; at one int32 per (block row, block column) pair the whole
	// directory costs NumBlocks² × 4 bytes, far below the factor storage.
	blockOff []int32
	diagIdx  int       // index into blockRows of the diagonal block
	rows     int       // total scalar rows stacked
	data     []float64 // rows × width, row-major, lda = width
}

// panelOffset returns the row offset where the L panel starts.
func (c *blockCol) panelOffset() int { return c.offsets[c.diagIdx] }

// Factorization holds the numeric factors in supernodal block storage
// together with the analysis that produced them.
type Factorization struct {
	S    *Symbolic
	cols []blockCol
	// ipiv[K] holds the panel-local pivot row indices of block column K:
	// at local column c, panel row c was swapped with panel row ipiv[K][c].
	ipiv [][]int
	// panelRows[K] lists the global scalar rows of panel K in stack order.
	panelRows [][]int
	// rscale/cscale hold the equilibration factors (nil when disabled):
	// the factored matrix is R·A₂·C in the permuted index space.
	rscale, cscale []float64
	singular       atomic.Bool
	// badCol is the smallest permuted global column index whose pivot
	// was exactly zero under PivotFail, or -1. Factor tasks of distinct
	// panels race to publish it, so it is kept as a CAS minimum.
	badCol atomic.Int64
	// policy and pivotTol freeze the pivot handling for this
	// factorization: pivotTol is √ε·‖A₂‖∞ of the matrix actually
	// factored (post permutation and scaling), 0 under PivotFail.
	policy   PivotPolicy
	pivotTol float64
	// fast freezes the kernel mode: true routes the Factor/Update tasks
	// through the FastMath level-3 kernels (no bitwise guarantee), false
	// keeps the bitwise-deterministic ones. Solves are unaffected.
	fast bool
	// perturbed[K] lists the permuted global columns of panel K whose
	// pivots were replaced (written only by task F(K), read after the
	// execution's completion barrier).
	perturbed [][]int
	// perturbScratch[K] is the preallocated buffer task F(K) hands to
	// blas.DgetrfStatic for panel-local perturbation indices, so Factor
	// tasks allocate nothing. Nil under PivotFail (fail mode never
	// records perturbations).
	perturbScratch [][]int
	// solveWS pools the SolveWorkspace panels of the solve hot path;
	// concurrent solves on one factorization each check out their own,
	// so steady-state solves allocate nothing beyond their results.
	solveWS sync.Pool
	// nopts freezes the per-call numeric options this factorization was
	// created with (FactorizeWithOpts). Nil means the legacy path: the
	// solve-time knobs are re-read from S.Opts on every call, so
	// existing callers that retune s.Opts between solves keep working.
	// Service callers always set it, which is what makes one Symbolic
	// safely shareable across concurrent requests.
	nopts *NumericOptions
}

// numOpts resolves the per-call numeric options of solve-time paths.
func (f *Factorization) numOpts() NumericOptions {
	if f.nopts != nil {
		return *f.nopts
	}
	return f.S.Opts.numeric()
}

// Singular reports whether any panel hit an exactly zero pivot.
func (f *Factorization) Singular() bool { return f.singular.Load() }

// noteSingular flags the factorization singular and folds the permuted
// global column col into the minimum published by racing Factor tasks.
func (f *Factorization) noteSingular(col int) {
	f.singular.Store(true)
	for {
		cur := f.badCol.Load()
		if cur >= 0 && cur <= int64(col) {
			return
		}
		if f.badCol.CompareAndSwap(cur, int64(col)) {
			return
		}
	}
}

// SingularColumn returns the original (unpermuted) column index of the
// first zero pivot, or -1 when the factorization is not singular. "First"
// means the smallest column index in the factored (permuted) ordering,
// which is deterministic across worker counts.
func (f *Factorization) SingularColumn() int {
	pc := f.badCol.Load()
	if pc < 0 {
		return -1
	}
	return f.S.SymPerm.Inverse()[pc]
}

// singularError builds the error the solve paths return on a singular
// factorization.
func (f *Factorization) singularError() error {
	return &SingularError{Col: f.SingularColumn()}
}

// PivotPerturbations returns the number of pivots replaced by the
// static perturbation of PivotPerturb (0 under PivotFail).
func (f *Factorization) PivotPerturbations() int {
	n := 0
	for _, cols := range f.perturbed {
		n += len(cols)
	}
	return n
}

// PerturbedColumns returns the original (unpermuted) column indices of
// the perturbed pivots in ascending order, or nil when none were.
func (f *Factorization) PerturbedColumns() []int {
	n := f.PivotPerturbations()
	if n == 0 {
		return nil
	}
	inv := f.S.SymPerm.Inverse()
	out := make([]int, 0, n)
	for _, cols := range f.perturbed {
		for _, pc := range cols {
			out = append(out, inv[pc])
		}
	}
	sort.Ints(out)
	return out
}

// PivotThreshold returns the pivot-magnitude threshold √ε·‖A₂‖∞ used by
// this factorization (0 under PivotFail).
func (f *Factorization) PivotThreshold() float64 { return f.pivotTol }

// Factorize runs analysis and numeric factorization in one call.
func Factorize(a *sparse.CSC, opts *Options) (*Factorization, error) {
	s, err := Analyze(a, opts)
	if err != nil {
		return nil, err
	}
	return FactorizeWith(s, a)
}

// FactorizeWith performs the numeric factorization of a using an
// existing analysis (a must have the structure the analysis was computed
// from). The per-call numeric state (workers, pivot policy, deadline,
// …) is re-read from the analysis options at every call — the
// historical single-caller contract. Concurrent callers sharing one
// Symbolic should use FactorizeWithOpts instead.
func FactorizeWith(s *Symbolic, a *sparse.CSC) (*Factorization, error) {
	return FactorizeWithOpts(s, a, nil)
}

// FactorizeWithOpts is FactorizeWith with explicit per-call numeric
// options: the Symbolic is treated as immutable shared input and every
// piece of per-call state (worker counts, pivot policy, equilibration,
// deadline, cancellation, tracing) comes from nopts, so any number of
// goroutines may factor through one analysis concurrently. A nil nopts
// falls back to the Symbolic's recorded options, preserving the legacy
// retune-s.Opts-between-calls behavior.
func FactorizeWithOpts(s *Symbolic, a *sparse.CSC, nopts *NumericOptions) (*Factorization, error) {
	eff := resolveNumOpts(s, nopts)
	f, err := newFactorization(s, a, eff)
	if err != nil {
		return nil, err
	}
	f.nopts = nopts
	owner := sched.BlockCyclic(s.BlockSym.N, eff.Workers)
	prio, err := s.Graph.BottomLevels(s.Costs.TaskFlops)
	if err != nil {
		return nil, err
	}
	cancel, stop := numericCanceler(eff.Timeout, eff.Cancel)
	defer stop()
	if err := sched.ExecuteCancelable(s.Graph, owner, eff.Workers, prio, eff.Trace, cancel, f.runTask); err != nil {
		return nil, err
	}
	return f, nil
}

// resolveNumOpts normalizes the per-call options of one factorization:
// the caller's explicit NumericOptions, or the Symbolic's recorded
// Options when nopts is nil.
func resolveNumOpts(s *Symbolic, nopts *NumericOptions) NumericOptions {
	if nopts == nil {
		legacy := s.Opts.numeric()
		return legacy.withDefaults()
	}
	return nopts.withDefaults()
}

// numericCanceler resolves the cancellation signal of one bounded
// phase (the numeric factorization, or one solve call): the caller's
// canceler (if any), with the timeout deadline armed on it. The
// returned stop func disarms the deadline timer; callers must invoke
// it once the phase returns.
func numericCanceler(timeout time.Duration, cancel *sched.Canceler) (*sched.Canceler, func()) {
	if timeout <= 0 {
		return cancel, noopStop
	}
	if cancel == nil {
		cancel = &sched.Canceler{}
	}
	timer := time.AfterFunc(timeout, func() { cancel.Cancel(ErrDeadlineExceeded) })
	return cancel, func() { timer.Stop() }
}

// noopStop is the shared no-op disarm func of unbounded phases, so the
// uncancelled hot path allocates no closure.
func noopStop() {}

// FactorizeGlobal is FactorizeWith with task-level scheduling: workers
// pull any ready task from a shared queue instead of owning block
// columns, matching the paper's RAPID runtime on shared memory.
// Unordered tasks touch disjoint rows (the branch property), so the
// concurrent writes are race-free for both dependence-graph variants.
func FactorizeGlobal(s *Symbolic, a *sparse.CSC) (*Factorization, error) {
	eff := resolveNumOpts(s, nil)
	f, err := newFactorization(s, a, eff)
	if err != nil {
		return nil, err
	}
	prio, err := s.Graph.BottomLevels(s.Costs.TaskFlops)
	if err != nil {
		return nil, err
	}
	cancel, stop := numericCanceler(eff.Timeout, eff.Cancel)
	defer stop()
	if err := sched.ExecuteGlobalCancelable(s.Graph, eff.Workers, prio, eff.Trace, cancel, f.runTask); err != nil {
		return nil, err
	}
	return f, nil
}

// newFactorization allocates the block storage and scatters the numeric
// values of the permuted matrix into it. eff carries the resolved
// per-call numeric options; only the Symbolic's structural fields are
// read, never written.
func newFactorization(s *Symbolic, a *sparse.CSC, eff NumericOptions) (*Factorization, error) {
	if a.NRows != s.N || a.NCols != s.N {
		return nil, fmt.Errorf("core: matrix is %d×%d, analysis is for order %d", a.NRows, a.NCols, s.N)
	}
	nb := s.BlockSym.N
	f := &Factorization{
		S:         s,
		cols:      make([]blockCol, nb),
		ipiv:      make([][]int, nb),
		panelRows: make([][]int, nb),
		policy:    eff.PivotPolicy,
		fast:      eff.FastMath,
		perturbed: make([][]int, nb),
	}
	f.badCol.Store(-1)
	part := s.Part
	for j := 0; j < nb; j++ {
		c := &f.cols[j]
		c.width = part.Size(j)
		ublocks := s.BlockSym.U.Col(j) // rows ≤ j, ends at diagonal
		lblocks := s.BlockSym.L.Col(j) // rows ≥ j, starts at diagonal
		c.blockRows = make([]int, 0, len(ublocks)+len(lblocks)-1)
		c.blockRows = append(c.blockRows, ublocks[:len(ublocks)-1]...)
		c.diagIdx = len(c.blockRows)
		c.blockRows = append(c.blockRows, lblocks...)
		c.offsets = make([]int, len(c.blockRows))
		c.blockOff = make([]int32, nb)
		for t := range c.blockOff {
			c.blockOff[t] = -1
		}
		off := 0
		for t, br := range c.blockRows {
			c.offsets[t] = off
			c.blockOff[br] = int32(off)
			off += part.Size(br)
		}
		c.rows = off
		c.data = make([]float64, off*c.width)
		f.ipiv[j] = make([]int, c.width)

		// Panel row list (global scalar rows of the L part).
		pr := make([]int, 0, off-c.panelOffset())
		for t := c.diagIdx; t < len(c.blockRows); t++ {
			lo, hi := part.Range(c.blockRows[t])
			for g := lo; g < hi; g++ {
				pr = append(pr, g)
			}
		}
		f.panelRows[j] = pr
	}

	// Scatter the permuted numeric values, equilibrated if requested.
	// The serial scaling pre-pass is recorded as a single Scale event on
	// worker 0 so traces account for the time spent before the parallel
	// phase.
	ap := s.PermuteInput(a)
	if eff.Equilibrate {
		var start int64
		if rec := eff.Trace; rec != nil {
			start = rec.Now()
		}
		f.rscale, f.cscale = Equilibrate(ap)
		ap = applyScaling(ap, f.rscale, f.cscale)
		if rec := eff.Trace; rec != nil {
			rec.Record(0, trace.NoTask, trace.KindScale, -1, start)
		}
	}
	for j := 0; j < s.N; j++ {
		bj := part.ColToBlock[j]
		c := &f.cols[bj]
		lc := j - part.BlockStart[bj]
		rows, vals := ap.Col(j)
		for k, i := range rows {
			off, err := f.rowOffset(c, i)
			if err != nil {
				return nil, fmt.Errorf("core: entry (%d,%d) outside the block structure: %w", i, j, err)
			}
			c.data[off*c.width+lc] = vals[k]
		}
	}
	if f.policy == PivotPerturb {
		// √ε·‖A₂‖∞ of the matrix actually handed to the kernels, the
		// SuperLU_DIST threshold. A structurally empty matrix gets a
		// norm of 1 so the threshold is still positive.
		const eps = 0x1p-52
		anorm := ap.NormInf()
		if anorm == 0 {
			anorm = 1
		}
		f.pivotTol = math.Sqrt(eps) * anorm
		f.perturbScratch = make([][]int, nb)
		for j := 0; j < nb; j++ {
			f.perturbScratch[j] = make([]int, f.cols[j].width)
		}
	}
	return f, nil
}

// rowOffset locates the stacked row offset of global scalar row g in
// block column c.
func (f *Factorization) rowOffset(c *blockCol, g int) (int, error) {
	part := f.S.Part
	bi := part.ColToBlock[g]
	base := c.blockOff[bi]
	if base < 0 {
		return 0, fmt.Errorf("block row %d not present", bi)
	}
	return int(base) + g - part.BlockStart[bi], nil
}

// runTask dispatches one task of the dependence graph.
func (f *Factorization) runTask(id int) error {
	t := f.S.Graph.Tasks[id]
	if t.Kind == taskgraph.Factor {
		return f.factorPanel(t.K)
	}
	return f.update(t.K, t.J)
}

// firstNonFinite returns the index of the first NaN or Inf in x, or -1.
func firstNonFinite(x []float64) int {
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i
		}
	}
	return -1
}

// factorPanel performs task F(K): dense LU with partial pivoting on the
// stacked L panel of block column K. Pivoting is confined to the panel's
// static row set, which the George–Ng structure is closed under. Under
// PivotFail a zero pivot flags the factorization singular (the panel
// still completes); under PivotPerturb tiny pivots are replaced by
// ±pivotTol and recorded. A non-finite panel entry aborts the execution.
func (f *Factorization) factorPanel(k int) error {
	c := &f.cols[k]
	w := c.width
	po := c.panelOffset()
	m := c.rows - po
	panel := c.data[po*w : c.rows*w]
	ipiv := f.ipiv[k]
	var pbuf []int
	if f.perturbScratch != nil {
		pbuf = f.perturbScratch[k]
	}
	var np, firstZero int
	if f.fast {
		np, firstZero = blas.DgetrfStaticFast(m, w, panel, w, ipiv, f.pivotTol, pbuf)
	} else {
		np, firstZero = blas.DgetrfStatic(m, w, panel, w, ipiv, f.pivotTol, pbuf)
	}
	base := f.S.Part.BlockStart[k]
	if firstZero >= 0 {
		f.noteSingular(base + firstZero)
	}
	if np > 0 {
		cols := pbuf[:np]
		for i := range cols {
			cols[i] += base
		}
		f.perturbed[k] = cols
	}
	if i := firstNonFinite(panel); i >= 0 {
		return fmt.Errorf("core: panel %d entry (%d,%d) is %v: %w",
			k, i/w, i%w, panel[i], ErrNonFinite)
	}
	return nil
}

// update performs task U(K, J): replay panel K's pivot interchanges on
// block column J, solve for the U block with the unit-lower diagonal
// factor of K, and apply the Schur updates of K's sub-diagonal blocks.
// A structural mismatch between the analysis and the stored blocks is
// returned as an error so the executor can report which task failed.
func (f *Factorization) update(k, j int) error {
	colK := &f.cols[k]
	colJ := &f.cols[j]
	wk, wj := colK.width, colJ.width
	part := f.S.Part

	// 1. Replay σ_K on the rows of column J that lie in panel K. All of
	// panel K's block rows are present in column J because the block
	// structure is a static fixed point (candidate rows share structure).
	prows := f.panelRows[k]
	for c, r := range f.ipiv[k] {
		if r == c {
			continue
		}
		o1, err1 := f.rowOffset(colJ, prows[c])
		o2, err2 := f.rowOffset(colJ, prows[r])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("core: pivot row of panel %d missing in column %d: %v %v", k, j, err1, err2)
		}
		blas.Dswap(wj, colJ.data[o1*wj:], 1, colJ.data[o2*wj:], 1)
	}

	// 2. U(K,J) ← L(K,K)⁻¹ · B(K,J).
	diag := colK.data[colK.panelOffset()*wk:]
	bkjOff := colJ.blockOff[k]
	if bkjOff < 0 {
		return fmt.Errorf("core: block (%d,%d) missing", k, j)
	}
	bkj := colJ.data[int(bkjOff)*wj:]
	if f.fast {
		blas.DtrsmFast(true, true, wk, wj, 1, diag, wk, bkj, wj)
	} else {
		blas.Dtrsm(true, true, wk, wj, 1, diag, wk, bkj, wj)
	}
	// Every stored block is either an L-panel block (checked by its
	// panel's Factor task) or a U block checked here, right after the
	// only task that finalizes it — so each entry is validated exactly
	// once and a NaN/Inf aborts the execution promptly.
	if i := firstNonFinite(bkj[:wk*wj]); i >= 0 {
		return fmt.Errorf("core: block (%d,%d) entry (%d,%d) is %v after update: %w",
			k, j, i/wj, i%wj, bkj[i], ErrNonFinite)
	}

	// 3. B(I,J) ← B(I,J) − L(I,K)·U(K,J) for every sub-diagonal block of
	// panel K.
	for t := colK.diagIdx + 1; t < len(colK.blockRows); t++ {
		i := colK.blockRows[t]
		szI := part.Size(i)
		lik := colK.data[colK.offsets[t]*wk:]
		dstOff := colJ.blockOff[i]
		if dstOff < 0 {
			return fmt.Errorf("core: update target block (%d,%d) missing", i, j)
		}
		dst := colJ.data[int(dstOff)*wj:]
		if f.fast {
			blas.DgemmFast(szI, wj, wk, -1, lik, wk, bkj, wj, 1, dst, wj)
		} else {
			blas.Dgemm(szI, wj, wk, -1, lik, wk, bkj, wj, 1, dst, wj)
		}
	}
	return nil
}
