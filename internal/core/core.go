// Package core assembles the paper's complete system: the analysis
// pipeline (maximum transversal → fill-reducing ordering → static
// symbolic factorization → LU elimination forest → postordering →
// supernode partition → block structure → task dependence graph) and the
// parallel supernodal numeric LU factorization with partial pivoting
// that runs on top of it, plus the triangular solves.
//
// Pivoting follows S+: row interchanges are confined to the static row
// set of each supernode panel and are applied lazily, per destination
// block column, by the Update tasks. Updates from independent subtrees
// of the LU eforest touch disjoint block rows (the branch property of
// the static structure), which is what makes the paper's reduced task
// dependence graph — and bitwise-deterministic parallel execution —
// possible.
package core

import (
	"repro/internal/ordering"
	"repro/internal/supernode"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// Options configures the analysis and factorization.
type Options struct {
	// Ordering selects the fill-reducing ordering (default: minimum
	// degree on AᵀA, the paper's choice).
	Ordering ordering.Method
	// Postorder enables the paper's postordering of the LU elimination
	// forest (Section 3). Default true.
	Postorder bool
	// TaskGraph selects the dependence structure (default: the paper's
	// eforest-guided graph; SStar is the baseline).
	TaskGraph taskgraph.Variant
	// Workers is the number of parallel workers for the numeric phase;
	// values < 1 mean 1.
	Workers int
	// Amalgamation tunes supernode amalgamation.
	Amalgamation supernode.AmalgamationOptions
	// Equilibrate scales rows and columns to unit maxima before
	// factoring (LAPACK dgeequ style); improves pivots on badly scaled
	// systems. Solves transparently undo the scaling.
	Equilibrate bool
	// Verify enables the debug invariant checks of internal/verify
	// during analysis: postorder invariance of the symbolic
	// factorization (Theorems 1–3), task-graph well-formedness, and —
	// for the eforest variant — the least-dependence property
	// (Theorem 4). Costs roughly one extra symbolic factorization.
	Verify bool
	// Trace optionally records per-task execution events of the numeric
	// phase. The recorder must have at least Workers buffers. Nil (the
	// default) disables tracing at the cost of one branch per task.
	Trace *trace.Recorder
}

// DefaultOptions returns the configuration used for the paper's headline
// experiments.
func DefaultOptions() *Options {
	return &Options{
		Ordering:     ordering.MinDegreeATA,
		Postorder:    true,
		TaskGraph:    taskgraph.EForest,
		Workers:      1,
		Amalgamation: supernode.AmalgamationOptions{MaxSize: 32, MaxFill: 0.25},
	}
}

func (o *Options) withDefaults() *Options {
	var out Options
	if o == nil {
		out = *DefaultOptions()
	} else {
		out = *o
	}
	if out.Workers < 1 {
		out.Workers = 1
	}
	return &out
}
