// Package core assembles the paper's complete system: the analysis
// pipeline (maximum transversal → fill-reducing ordering → static
// symbolic factorization → LU elimination forest → postordering →
// supernode partition → block structure → task dependence graph) and the
// parallel supernodal numeric LU factorization with partial pivoting
// that runs on top of it, plus the triangular solves.
//
// Pivoting follows S+: row interchanges are confined to the static row
// set of each supernode panel and are applied lazily, per destination
// block column, by the Update tasks. Updates from independent subtrees
// of the LU eforest touch disjoint block rows (the branch property of
// the static structure), which is what makes the paper's reduced task
// dependence graph — and bitwise-deterministic parallel execution —
// possible.
package core

import (
	"time"

	"repro/internal/ordering"
	"repro/internal/sched"
	"repro/internal/supernode"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// PivotPolicy selects the numeric response to a pivot that the static
// row set of a panel cannot stabilize (the premise of the static
// symbolic factorization is that no row exchanges happen outside it).
type PivotPolicy int

const (
	// PivotFail preserves the historical contract: an exactly zero
	// pivot column is skipped, the factorization completes, Singular()
	// reports true, and the solve paths return a *SingularError naming
	// the first affected column.
	PivotFail PivotPolicy = iota
	// PivotPerturb is the graceful path of production static-pivoting
	// solvers (SuperLU_DIST style): a pivot with |u_kk| < √ε·‖A‖∞ is
	// replaced by ±√ε·‖A‖∞, preserving its sign, so the factorization
	// never fails on tiny pivots; the lost accuracy is recovered with
	// SolveRefined and reported by PivotPerturbations/PerturbedColumns.
	PivotPerturb
)

// String names the policy for flags and diagnostics.
func (p PivotPolicy) String() string {
	if p == PivotPerturb {
		return "perturb"
	}
	return "fail"
}

// Options configures the analysis and factorization.
type Options struct {
	// Ordering selects the fill-reducing ordering (default: minimum
	// degree on AᵀA, the paper's choice).
	Ordering ordering.Method
	// Postorder enables the paper's postordering of the LU elimination
	// forest (Section 3). Default true.
	Postorder bool
	// TaskGraph selects the dependence structure (default: the paper's
	// eforest-guided graph; SStar is the baseline).
	TaskGraph taskgraph.Variant
	// Workers is the number of parallel workers for the numeric phase;
	// values < 1 mean 1.
	Workers int
	// SolveWorkers is the number of parallel workers for the triangular
	// solves (Solve, SolveMany, SolveTranspose and everything routed
	// through them: SolveRefined, CondEstimate1). 0 (the default)
	// inherits Workers; values < 0 mean 1. The solves run one task per
	// block column on the level-set schedules of Symbolic.SolveFwd/
	// SolveBwd and are bitwise identical to the serial sweeps at every
	// worker count.
	SolveWorkers int
	// AnalyzeWorkers is the number of parallel workers for the analysis
	// pipeline itself: the static symbolic factorization runs its
	// independent column-etree subtrees concurrently through the async
	// engine, and independent late stages of Analyze (task graph + cost
	// model vs. solve schedules) overlap. Values < 2 keep the historical
	// fully serial pipeline. The output is identical at every worker
	// count (pinned by TestAnalyzeParallelParityChaos); Workers and
	// SolveWorkers are unaffected.
	AnalyzeWorkers int
	// Amalgamation tunes supernode amalgamation.
	Amalgamation supernode.AmalgamationOptions
	// Equilibrate scales rows and columns to unit maxima before
	// factoring (LAPACK dgeequ style); improves pivots on badly scaled
	// systems. Solves transparently undo the scaling.
	Equilibrate bool
	// Verify enables the debug invariant checks of internal/verify
	// during analysis: postorder invariance of the symbolic
	// factorization (Theorems 1–3), task-graph well-formedness, and —
	// for the eforest variant — the least-dependence property
	// (Theorem 4). Costs roughly one extra symbolic factorization.
	Verify bool
	// Trace optionally records per-task execution events of the numeric
	// phase. The recorder must have at least Workers buffers. Nil (the
	// default) disables tracing at the cost of one branch per task.
	Trace *trace.Recorder
	// PivotPolicy selects how tiny pivots are handled (default
	// PivotFail, the historical flag-and-continue contract).
	PivotPolicy PivotPolicy
	// FastMath opts the numeric phase into the relaxed kernel mode
	// (blas.DgemmFast and friends): FMA and reordered accumulation with
	// no bitwise-reproducibility guarantee. Results satisfy the usual
	// componentwise backward-error bounds but may differ byte-for-byte
	// across hosts and kernel variants. The default false keeps the
	// bitwise-deterministic kernels. Solves are always bitwise.
	FastMath bool
	// Timeout bounds the wall-clock duration of the parallel numeric
	// phase; when it expires the workers stop claiming tasks and
	// factorization returns an error wrapping ErrDeadlineExceeded.
	// Zero (the default) means no limit.
	Timeout time.Duration
	// Cancel optionally connects the numeric phase to an external
	// cancellation signal: tripping the canceler makes factorization
	// return a *sched.CancelError. The same canceler may be shared by
	// several executions, in which case the first failure anywhere
	// cancels them all.
	Cancel *sched.Canceler
}

// NumericOptions is the per-call state of one numeric factorization
// and its solves, split out of Options so that one immutable Symbolic
// can serve many concurrent factorizations with different worker
// counts, pivot policies, deadlines and cancellation signals. The
// analysis-shaping fields (Ordering, Postorder, TaskGraph,
// Amalgamation, Verify) stay on Options: they are baked into the
// Symbolic and changing them requires a fresh Analyze.
//
// A nil *NumericOptions passed to FactorizeWithOpts means "read the
// per-call fields from the Symbolic's recorded Options at call time" —
// the historical behavior, kept for callers that retune s.Opts between
// factorizations. Long-lived services sharing one Symbolic across
// goroutines must pass explicit NumericOptions instead, so the shared
// analysis is never written after publication.
type NumericOptions struct {
	// Workers is the numeric-phase worker count (values < 1 mean 1).
	Workers int
	// SolveWorkers is the triangular-solve worker count; 0 inherits
	// Workers, values < 0 mean 1.
	SolveWorkers int
	// PivotPolicy selects the response to pivots the static row set
	// cannot stabilize.
	PivotPolicy PivotPolicy
	// FastMath selects the relaxed (non-bitwise, error-bounded) kernel
	// mode for this factorization's numeric phase. See Options.FastMath.
	FastMath bool
	// Equilibrate scales rows and columns to unit maxima before
	// factoring; solves transparently undo the scaling.
	Equilibrate bool
	// Timeout bounds the wall-clock duration of each bounded phase: the
	// parallel numeric factorization AND every solve call (Solve,
	// SolveMany, SolveTranspose and the paths routed through them). A
	// fresh deadline timer is armed per phase; expiry surfaces as an
	// error wrapping ErrDeadlineExceeded. Zero means no limit.
	Timeout time.Duration
	// Cancel optionally connects the numeric phase and the solves to an
	// external cancellation signal.
	Cancel *sched.Canceler
	// Trace optionally records per-task events (must have at least
	// Workers buffers).
	Trace *trace.Recorder
}

// numeric extracts the per-call numeric state of o.
func (o *Options) numeric() NumericOptions {
	return NumericOptions{
		Workers:      o.Workers,
		SolveWorkers: o.SolveWorkers,
		PivotPolicy:  o.PivotPolicy,
		FastMath:     o.FastMath,
		Equilibrate:  o.Equilibrate,
		Timeout:      o.Timeout,
		Cancel:       o.Cancel,
		Trace:        o.Trace,
	}
}

// withDefaults normalizes a NumericOptions value.
func (n *NumericOptions) withDefaults() NumericOptions {
	out := *n
	if out.Workers < 1 {
		out.Workers = 1
	}
	if out.SolveWorkers == 0 {
		out.SolveWorkers = out.Workers
	}
	if out.SolveWorkers < 1 {
		out.SolveWorkers = 1
	}
	return out
}

// DefaultOptions returns the configuration used for the paper's headline
// experiments.
func DefaultOptions() *Options {
	return &Options{
		Ordering:     ordering.MinDegreeATA,
		Postorder:    true,
		TaskGraph:    taskgraph.EForest,
		Workers:      1,
		Amalgamation: supernode.AmalgamationOptions{MaxSize: 32, MaxFill: 0.25},
	}
}

func (o *Options) withDefaults() *Options {
	var out Options
	if o == nil {
		out = *DefaultOptions()
	} else {
		out = *o
	}
	if out.Workers < 1 {
		out.Workers = 1
	}
	return &out
}
