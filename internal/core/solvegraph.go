package core

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/taskgraph"
)

// The parallel triangular solves decompose each sweep into one task per
// block column, mirroring the serial loop bodies exactly. The forward
// task of column k replays panel k's interchanges, solves the
// unit-lower diagonal block and scatters the Dgemv/Dgemm updates into
// the sub-diagonal block rows — so it reads and writes exactly the
// block rows of L̄'s column k (interchanges stay inside the panel's
// static row set, which spans those same blocks). The backward task
// solves the upper diagonal block and scatters into the block rows of
// Ū's column k.
//
// Two tasks conflict precisely when they touch a common block row, and
// the serial sweep orders all tasks touching a given row by ascending
// (forward) respectively descending (backward) column. Chaining, per
// block row, each pair of consecutively-touching columns in that order
// therefore yields a DAG whose every topological execution applies the
// operations on each memory location in the serial order. Updates to
// disjoint rows commute exactly in floating point, so any level
// schedule of these chains is bitwise identical to the serial sweep at
// every worker count. Parallelism comes from the block upper triangular
// form: columns in independent eforest subtrees share no L̄ block rows
// (the paper's disjoint-row-sets argument), so whole subtrees land in
// overlapping levels.

// solveSchedules derives the level-set schedules of the forward (L̄)
// and backward (Ū) triangular sweeps from the block symbolic
// structure. The transpose sweeps use the Reversed() schedules: the
// transpose tasks touch the same block-row sets in the opposite column
// order, which is exactly the edge-reversed DAG.
func solveSchedules(blockSym *symbolic.Result) (fwd, bwd *sched.Levels, err error) {
	nb := blockSym.N
	order, off, err := taskgraph.LevelSets(chainByRow(nb, blockSym.L, false))
	if err != nil {
		return nil, nil, fmt.Errorf("core: forward solve schedule: %w", err)
	}
	fwd = sched.NewLevels(order, off)
	order, off, err = taskgraph.LevelSets(chainByRow(nb, blockSym.U, true))
	if err != nil {
		return nil, nil, fmt.Errorf("core: backward solve schedule: %w", err)
	}
	bwd = sched.NewLevels(order, off)
	return fwd, bwd, nil
}

// chainByRow builds the conflict-chain successor lists of one sweep:
// for every block row, the columns whose pattern contains that row are
// linked pairwise in sweep order (ascending column for the forward
// sweep, descending for the backward one). Only consecutive pairs are
// linked — transitivity supplies the rest — so the edge count is
// bounded by the block pattern's nonzeros.
func chainByRow(nb int, pat *sparse.Pattern, descending bool) [][]int32 {
	succ := make([][]int32, nb)
	prev := make([]int32, nb) // last column seen touching each block row
	for i := range prev {
		prev[i] = -1
	}
	step := func(k int) {
		for _, i := range pat.Col(k) {
			if p := prev[i]; p >= 0 {
				// Rows of one column are visited together, so duplicate
				// (p, k) edges arrive adjacently; keep one.
				if s := succ[p]; len(s) == 0 || s[len(s)-1] != int32(k) {
					succ[p] = append(succ[p], int32(k))
				}
			}
			prev[i] = int32(k)
		}
	}
	if descending {
		for k := nb - 1; k >= 0; k-- {
			step(k)
		}
	} else {
		for k := 0; k < nb; k++ {
			step(k)
		}
	}
	return succ
}
