package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// symbolicFingerprint copies every slice of the Symbolic that the
// numeric and solve phases read, so a test can prove by comparison
// that sharing one Symbolic across concurrent factorizations never
// mutates it. New fields read by the hot paths should be added here.
type symbolicFingerprint struct {
	rowPerm, symPerm, solvePerm sparse.Perm
	symColPtr, symRowInd        []int
	blockColPtr, blockRowInd    []int
	stats                       AnalysisStats
}

func fingerprint(s *Symbolic) symbolicFingerprint {
	cp := func(v []int) []int { out := make([]int, len(v)); copy(out, v); return out }
	return symbolicFingerprint{
		rowPerm:     sparse.Perm(cp(s.RowPerm)),
		symPerm:     sparse.Perm(cp(s.SymPerm)),
		solvePerm:   sparse.Perm(cp(s.SolvePerm)),
		symColPtr:   cp(s.Sym.L.ColPtr),
		symRowInd:   cp(s.Sym.L.RowInd),
		blockColPtr: cp(s.BlockSym.L.ColPtr),
		blockRowInd: cp(s.BlockSym.L.RowInd),
		stats:       s.Stats,
	}
}

func (fp *symbolicFingerprint) equal(other *symbolicFingerprint) bool {
	eq := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	return eq(fp.rowPerm, other.rowPerm) && eq(fp.symPerm, other.symPerm) &&
		eq(fp.solvePerm, other.solvePerm) &&
		eq(fp.symColPtr, other.symColPtr) && eq(fp.symRowInd, other.symRowInd) &&
		eq(fp.blockColPtr, other.blockColPtr) && eq(fp.blockRowInd, other.blockRowInd) &&
		fp.stats == other.stats
}

// TestSymbolicReuseConcurrent is the shared-Symbolic contract of the
// solve service: one analysis serves many concurrent numeric
// factorizations and solves (different worker counts, explicit
// per-call NumericOptions), every solution is bitwise identical to the
// serial reference, and the Symbolic itself is never written to. Run
// under -race this also proves the absence of unsynchronized access to
// the shared analysis.
func TestSymbolicReuseConcurrent(t *testing.T) {
	// sherman5-s: big enough for real supernodal parallelism, small
	// enough that 16 goroutines × 4 factorizations stay fast under -race.
	a := matgen.SmallSuite()[1].Gen()
	s, err := Analyze(a, DefaultOptions())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	before := fingerprint(s)

	n := s.N
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}

	// Serial reference: one worker everywhere.
	refOpts := &NumericOptions{Workers: 1, SolveWorkers: 1}
	fRef, err := FactorizeWithOpts(s, a, refOpts)
	if err != nil {
		t.Fatalf("reference factorization: %v", err)
	}
	xRef, err := fRef.SolveWith(b, refOpts)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nopts := &NumericOptions{Workers: 1 + g%4, SolveWorkers: 1 + (g/2)%4}
			f, err := FactorizeWithOpts(s, a, nopts)
			if err != nil {
				errc <- fmt.Errorf("goroutine %d: factorize: %v", g, err)
				return
			}
			for iter := 0; iter < 3; iter++ {
				x, err := f.SolveWith(b, nopts)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d: solve: %v", g, err)
					return
				}
				for i := range x {
					if x[i] != xRef[i] {
						errc <- fmt.Errorf("goroutine %d (workers=%d/%d): x[%d] = %x, serial %x",
							g, nopts.Workers, nopts.SolveWorkers, i, x[i], xRef[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	after := fingerprint(s)
	if !before.equal(&after) {
		t.Error("Symbolic was mutated by concurrent factorization/solve")
	}
}
