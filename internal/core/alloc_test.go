package core

import (
	"runtime"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// allocBudget is the fixed engine overhead allowed per execution:
// worker goroutines, the preallocated ready queues, the canceler and
// the run closure. It is deliberately far below one allocation per
// task, so any per-task allocation sneaking back into the numeric hot
// path (panel buffers, packing scratch, heap boxing) fails the test.
const allocBudget = 64

// measureExecAllocs runs one numeric phase on a fresh factorization
// and returns the heap objects allocated during the execution itself.
func measureExecAllocs(t *testing.T, s *Symbolic, a *sparse.CSC, global bool, procs int) (allocs uint64, tasks int) {
	t.Helper()
	f, err := newFactorization(s, a, resolveNumOpts(s, nil))
	if err != nil {
		t.Fatal(err)
	}
	prio, err := s.Graph.BottomLevels(s.Costs.TaskFlops)
	if err != nil {
		t.Fatal(err)
	}
	owner := sched.BlockCyclic(s.BlockSym.N, procs)
	run := f.runTask

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if global {
		err = sched.ExecuteGlobalCancelable(s.Graph, procs, prio, nil, nil, run)
	} else {
		err = sched.ExecuteCancelable(s.Graph, owner, procs, prio, nil, nil, run)
	}
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	return after.Mallocs - before.Mallocs, s.Graph.NumTasks()
}

// TestNumericPhaseZeroAllocs is the zero-allocation proof of the
// packed-kernel PR: after one warm-up factorization (which fills the
// blas packing-scratch pool), the parallel numeric phase — every
// Factor and Update task at P=4, under both the owner-mapped and the
// task-level executor — allocates nothing per task. Only the engine's
// fixed setup (well under allocBudget objects for hundreds of tasks)
// is tolerated.
func TestNumericPhaseZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed by the race detector")
	}
	const procs = 4
	a := matgen.Sherman5()
	opts := DefaultOptions()
	opts.Workers = procs
	s, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: populates the packing-scratch pool and the runtime's
	// internal caches.
	if _, err := FactorizeWith(s, a); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		global bool
	}{
		{"owner-mapped", false},
		{"task-level", true},
	} {
		allocs, tasks := measureExecAllocs(t, s, a, tc.global, procs)
		if tasks < 100 {
			t.Fatalf("%s: only %d tasks; matrix too small for the test to mean anything", tc.name, tasks)
		}
		t.Logf("%s: %d allocs across %d tasks (%.4f/task)", tc.name, allocs, tasks, float64(allocs)/float64(tasks))
		if allocs > allocBudget {
			t.Errorf("%s: numeric phase allocated %d objects over %d tasks, budget %d — the hot path is allocating per task",
				tc.name, allocs, tasks, allocBudget)
		}
	}
}
