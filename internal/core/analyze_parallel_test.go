package core

import (
	"math"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// structFingerprint is fingerprint with the wall-clock field zeroed, so
// Symbolics from different runs can be compared structurally.
func structFingerprint(s *Symbolic) symbolicFingerprint {
	fp := fingerprint(s)
	fp.stats.AnalyzeSeconds = 0
	return fp
}

// saltNaN poisons every value of a copy of a with NaN. The analysis is
// purely structural, so the result must not change.
func saltNaN(a *sparse.CSC) *sparse.CSC {
	out := &sparse.CSC{NRows: a.NRows, NCols: a.NCols, ColPtr: a.ColPtr, RowInd: a.RowInd}
	out.Val = make([]float64, len(a.Val))
	for i := range out.Val {
		out.Val[i] = math.NaN()
	}
	return out
}

// TestAnalyzeParallelParityChaos pins the determinism contract of the
// parallel analysis: over the whole small suite, Analyze at
// AnalyzeWorkers ∈ {1, 2, 4, 8} produces Symbolics with identical
// structural fingerprints — including on NaN-salted values, which must
// not affect any structural stage. Runs under -race in the chaos stage.
func TestAnalyzeParallelParityChaos(t *testing.T) {
	for _, spec := range matgen.SmallSuite() {
		a := spec.Gen()
		ref, err := Analyze(a, nil)
		if err != nil {
			t.Fatalf("%s: serial analyze: %v", spec.Name, err)
		}
		want := structFingerprint(ref)
		for _, p := range []int{1, 2, 4, 8} {
			for _, salted := range []bool{false, true} {
				m := a
				if salted {
					m = saltNaN(a)
				}
				opts := DefaultOptions()
				opts.AnalyzeWorkers = p
				s, err := Analyze(m, opts)
				if err != nil {
					t.Fatalf("%s: analyze P=%d salted=%v: %v", spec.Name, p, salted, err)
				}
				got := structFingerprint(s)
				if !got.equal(&want) {
					t.Fatalf("%s: P=%d salted=%v: Symbolic differs from serial", spec.Name, p, salted)
				}
			}
		}
	}
}

// TestAnalyzeStageBreakdown checks the Trace-gated per-stage timing.
func TestAnalyzeStageBreakdown(t *testing.T) {
	a := matgen.SmallSuite()[0].Gen()
	s, err := Analyze(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.AnalyzeSeconds <= 0 {
		t.Fatalf("AnalyzeSeconds = %v, want > 0", s.Stats.AnalyzeSeconds)
	}
	if len(s.StageSeconds) != 0 {
		t.Fatalf("StageSeconds recorded without Trace: %v", s.StageSeconds)
	}
	opts := DefaultOptions()
	opts.Trace = trace.New(1)
	s, err = Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.StageSeconds) < 5 {
		t.Fatalf("StageSeconds has %d entries, want the full breakdown", len(s.StageSeconds))
	}
	names := map[string]bool{}
	for _, st := range s.StageSeconds {
		names[st.Name] = true
	}
	for _, want := range []string{"transversal", "ordering", "symbolic", "postorder"} {
		if !names[want] {
			t.Fatalf("StageSeconds missing %q: %v", want, s.StageSeconds)
		}
	}
}

// TestReanalyzeIdenticalFastPath pins the identical-pattern contract:
// Reanalyze returns the previous Symbolic itself, and does so at least
// 10× faster than a full Analyze, on every small-suite matrix.
func TestReanalyzeIdenticalFastPath(t *testing.T) {
	for _, spec := range matgen.SmallSuite() {
		a := spec.Gen()
		sw := trace.NewStopwatch()
		prev, err := Analyze(a, nil)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		full := sw.Seconds()

		sw = trace.NewStopwatch()
		got, level, err := Reanalyze(prev, a)
		re := sw.Seconds()
		if err != nil {
			t.Fatalf("%s: reanalyze: %v", spec.Name, err)
		}
		if level != ReuseFull {
			t.Fatalf("%s: reuse level %v, want full", spec.Name, level)
		}
		if got != prev {
			t.Fatalf("%s: identical-pattern Reanalyze did not return the cached Symbolic", spec.Name)
		}
		if re*10 > full {
			t.Errorf("%s: Reanalyze took %.3gs vs full %.3gs — less than 10× faster", spec.Name, re, full)
		}
	}
}

// dropEntry returns a copy of a without the entry at (row, col).
func dropEntry(a *sparse.CSC, row, col int) *sparse.CSC {
	out := &sparse.CSC{NRows: a.NRows, NCols: a.NCols, ColPtr: make([]int, a.NCols+1)}
	for j := 0; j < a.NCols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if j == col && a.RowInd[p] == row {
				continue
			}
			out.RowInd = append(out.RowInd, a.RowInd[p])
			out.Val = append(out.Val, a.Val[p])
		}
		out.ColPtr[j+1] = len(out.RowInd)
	}
	return out
}

// TestReanalyzeDeltaIdentical checks that when the delta path engages,
// the patched Symbolic is structurally identical to a full Analyze of
// the modified matrix run with the same reused permutations — and that
// large deltas fall back to a full analysis rather than failing.
func TestReanalyzeDeltaIdentical(t *testing.T) {
	deltas := 0
	for _, spec := range matgen.SmallSuite() {
		a := spec.Gen()
		prev, err := Analyze(a, nil)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		// Drop one off-diagonal entry: a minimal pattern delta.
		col, row := a.NCols/2, -1
		for j := col; j < a.NCols && row < 0; j++ {
			for p := a.ColPtr[j+1] - 1; p >= a.ColPtr[j]; p-- {
				if a.RowInd[p] != j {
					row, col = a.RowInd[p], j
					break
				}
			}
		}
		if row < 0 {
			t.Fatalf("%s: no off-diagonal entry", spec.Name)
		}
		mod := dropEntry(a, row, col)

		got, level, err := Reanalyze(prev, a.PermuteRows(sparse.Identity(a.NRows)))
		if err != nil || level != ReuseFull || got != prev {
			t.Fatalf("%s: identical copy: level=%v err=%v", spec.Name, level, err)
		}

		got, level, err = Reanalyze(prev, mod)
		if err != nil {
			t.Fatalf("%s: reanalyze delta: %v", spec.Name, err)
		}
		if level == ReuseDelta {
			deltas++
			// The delta path must agree with a full pipeline that uses
			// the same permutations it reused. Its symbolic result over
			// the permuted matrix is pinned bitwise against a fresh
			// Factor by TestFactorDeltaIdentical; here we sanity-check
			// the downstream invariants instead of re-deriving perms.
			if got.N != mod.NCols || got.Stats.NNZA != mod.NNZ() {
				t.Fatalf("%s: delta Symbolic has wrong shape", spec.Name)
			}
			if got.Stats.NNZFactors != got.Sym.NNZ() {
				t.Fatalf("%s: inconsistent delta stats", spec.Name)
			}
			if err := verifySymbolicUsable(got, mod); err != nil {
				t.Fatalf("%s: delta Symbolic unusable: %v", spec.Name, err)
			}
		}
	}
	if deltas == 0 {
		t.Fatal("no small-suite matrix engaged the delta path")
	}
}

// verifySymbolicUsable factorizes and solves through the Symbolic to
// prove the patched analysis drives the numeric phase end to end.
func verifySymbolicUsable(s *Symbolic, a *sparse.CSC) error {
	f, err := FactorizeGlobal(s, a)
	if err != nil {
		return err
	}
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = float64(i%7) + 1
	}
	_, err = f.Solve(b)
	return err
}
