package core

import (
	"math/rand"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/taskgraph"
)

// TestAnalyzeWithVerify runs the full pipeline with the debug invariant
// checks enabled: postorder invariance (Theorems 1–3) before the
// relabeling and DAG + least-dependence checks (Theorem 4) on the task
// graph. Analysis must pass them on every configuration.
func TestAnalyzeWithVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	matrices := []struct {
		name string
		a    *sparse.CSC
	}{
		{"random-60", randomSystem(60, 0.08, rng)},
		{matgen.SmallSuite()[0].Name, matgen.SmallSuite()[0].Gen()},
	}
	for _, m := range matrices {
		for _, tg := range []taskgraph.Variant{taskgraph.EForest, taskgraph.SStar} {
			for _, post := range []bool{true, false} {
				opts := DefaultOptions()
				opts.Verify = true
				opts.TaskGraph = tg
				opts.Postorder = post
				if _, err := Analyze(m.a, opts); err != nil {
					t.Errorf("%s taskgraph=%v postorder=%v: %v", m.name, tg, post, err)
				}
			}
		}
	}
}
