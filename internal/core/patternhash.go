package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/sparse"
)

// PatternHash fingerprints the sparsity pattern of a matrix together
// with the analysis-shaping options: two matrices with equal hashes
// have identical CSC structure and would produce identical Symbolic
// objects, so the analysis of one serves the other. Values are
// deliberately excluded — that is the whole point of the paper's
// static pipeline: one symbolic factorization amortized over many
// numeric factorizations of the same pattern. The per-call numeric
// fields (Workers, AnalyzeWorkers, pivoting, deadlines) are excluded
// too: they do not change the Symbolic.
//
// The hash was born as the solve service's cache key and is hoisted
// here so Reanalyze and the server agree on pattern identity.
func PatternHash(m *sparse.CSC, opts *Options) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(m.NRows)
	put(m.NCols)
	for _, p := range m.ColPtr {
		put(p)
	}
	for _, r := range m.RowInd {
		put(r)
	}
	// The analysis-shaping knobs are part of the identity of a
	// Symbolic; the per-call numeric fields are not.
	fmt.Fprintf(h, "|%v|%v|%v|%+v", opts.Ordering, opts.Postorder, opts.TaskGraph, opts.Amalgamation)
	return hex.EncodeToString(h.Sum(nil)[:16])
}
