package core

import (
	"math"

	"repro/internal/sparse"
)

// Equilibrate computes row and column scale factors in the manner of
// LAPACK's dgeequ: r[i] = 1/max_j|a_ij|, then c[j] = 1/max_i|r_i·a_ij|,
// so that R·A·C has all row and column maxima equal to one. Rows or
// columns that are entirely zero get scale 1. Equilibration improves
// pivot quality on badly scaled systems without changing the structure.
func Equilibrate(a *sparse.CSC) (r, c []float64) {
	n := a.NRows
	r = make([]float64, n)
	c = make([]float64, a.NCols)
	for k, i := range a.RowInd {
		if v := math.Abs(a.Val[k]); v > r[i] {
			r[i] = v
		}
	}
	for i := range r {
		if r[i] == 0 {
			r[i] = 1
		} else {
			r[i] = 1 / r[i]
		}
	}
	for j := 0; j < a.NCols; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		m := 0.0
		for k := lo; k < hi; k++ {
			if v := math.Abs(a.Val[k]) * r[a.RowInd[k]]; v > m {
				m = v
			}
		}
		if m == 0 {
			c[j] = 1
		} else {
			c[j] = 1 / m
		}
	}
	return r, c
}

// applyScaling returns R·A·C for positive diagonal scale vectors.
func applyScaling(a *sparse.CSC, r, c []float64) *sparse.CSC {
	out := a.Clone()
	for j := 0; j < out.NCols; j++ {
		cj := c[j]
		for k := out.ColPtr[j]; k < out.ColPtr[j+1]; k++ {
			out.Val[k] *= r[out.RowInd[k]] * cj
		}
	}
	return out
}
