package core

import (
	"repro/internal/etree"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/trace"
	"repro/internal/verify"
)

// ReuseLevel reports how much of a previous analysis Reanalyze reused.
type ReuseLevel int

const (
	// ReuseNone means the pattern diverged too far (or the previous
	// Symbolic carried no checkpoint) and a full Analyze ran.
	ReuseNone ReuseLevel = iota
	// ReuseDelta means only the changed column-etree subtrees were
	// re-eliminated and the block structure was rebuilt from the
	// patched symbolic result.
	ReuseDelta
	// ReuseFull means the pattern (and analysis options) were identical
	// and the previous Symbolic was returned as-is, skipping every
	// structural stage.
	ReuseFull
)

// String names the level for logs and metrics.
func (l ReuseLevel) String() string {
	switch l {
	case ReuseFull:
		return "full"
	case ReuseDelta:
		return "delta"
	}
	return "none"
}

// Reanalyze produces the analysis of a using a previous Symbolic as a
// starting point. An identical pattern (same PatternHash, which bakes
// in the analysis-shaping options) returns prev itself — no structural
// stage runs. A small pattern delta keeps prev's permutations, re-runs
// the static symbolic factorization only on the affected column-etree
// subtrees of prev's checkpoint, and rebuilds the block structure from
// the patched result. Anything larger — a changed row that escapes its
// subtree, more than half the bucketed columns affected, a diagonal
// lost under the old permutation — falls back to a full Analyze with
// prev's options. The returned Symbolic is identical to what a full
// Analyze of a would produce in every structural field (pinned by
// TestReanalyzeDeltaIdentical); only the timing stats differ.
func Reanalyze(prev *Symbolic, a *sparse.CSC) (*Symbolic, ReuseLevel, error) {
	if prev == nil {
		s, err := Analyze(a, nil)
		return s, ReuseNone, err
	}
	o := prev.Opts
	if a.NRows == a.NCols && a.NCols == prev.N && PatternHash(a, &o) == prev.PatternHash {
		return prev, ReuseFull, nil
	}
	if s, err := reanalyzeDelta(prev, a, &o); s != nil || err != nil {
		return s, ReuseDelta, err
	}
	s, err := Analyze(a, &o)
	return s, ReuseNone, err
}

// reanalyzeDelta attempts the small-delta path. A (nil, nil) return
// means "not patchable — run a full Analyze"; an error is a genuine
// failure that a full analysis would hit too.
func reanalyzeDelta(prev *Symbolic, a *sparse.CSC, o *Options) (*Symbolic, error) {
	if prev.inputPattern == nil || prev.symPart == nil ||
		a.NRows != a.NCols || a.NCols != prev.N {
		return nil, nil
	}
	start := trace.NewStopwatch()
	st := newStageTimer(o.Trace != nil)

	// Keep prev's permutations: the transversal must still yield a
	// zero-free diagonal for the symbolic stage's premise to hold, and
	// reusing the fill ordering trades a little fill quality for
	// skipping both stages (the factored pattern barely moved).
	a1 := a.PermuteRows(prev.RowPerm)
	if !a1.HasZeroFreeDiagonal() {
		return nil, nil
	}
	aPerm := a1.PermuteSym(prev.SymPerm)
	st.mark("permute (reused)")

	var runner symbolic.Runner
	if o.AnalyzeWorkers > 1 {
		runner = analyzeRunner(o.AnalyzeWorkers)
	}
	sym, ok, err := symbolic.FactorDelta(aPerm, prev.inputPattern, prev.Sym, prev.symPart, runner)
	if err != nil || !ok {
		// A delta-path error (e.g. a structurally singular update) is
		// not necessarily fatal for the full pipeline, which picks a
		// fresh transversal; let the fallback decide.
		return nil, nil
	}
	forest := etree.LUForest(sym)
	st.mark("symbolic delta")

	symPerm := prev.SymPerm
	if o.Postorder {
		// aPerm is postordered for prev's forest; the patched forest
		// may differ, so re-postorder (a near-identity relabeling).
		if o.Verify {
			if err := verify.VerifyPostorderInvariance(aPerm, sym, forest); err != nil {
				return nil, err
			}
		}
		po := etree.PostorderSymbolic(sym, forest)
		sym = po.Sym
		forest = po.Forest
		symPerm = prev.SymPerm.Compose(po.Perm)
		aPerm = aPerm.PermuteSym(po.Perm)
	}
	st.mark("postorder")

	return finishAnalysis(a, aPerm, o, prev.RowPerm, symPerm, sym, forest, st, start)
}
