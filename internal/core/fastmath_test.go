package core

import (
	"math"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// componentwiseBackwardError computes the Oettli–Prager backward error
// ω = max_i |Ax−b|_i / (|A|·|x| + |b|)_i, the componentwise measure the
// FastMath acceptance bound is stated in.
func componentwiseBackwardError(a *sparse.CSC, x, b []float64) float64 {
	n := len(b)
	ax := make([]float64, n)
	a.MulVec(x, ax)
	den := make([]float64, n)
	for j := 0; j < a.NCols; j++ {
		rows, vals := a.Col(j)
		xa := math.Abs(x[j])
		for k, i := range rows {
			den[i] += math.Abs(vals[k]) * xa
		}
	}
	w := 0.0
	for i := 0; i < n; i++ {
		r := math.Abs(ax[i] - b[i])
		d := den[i] + math.Abs(b[i])
		if d == 0 {
			if r != 0 {
				return math.Inf(1)
			}
			continue
		}
		if q := r / d; q > w {
			w = q
		}
	}
	return w
}

// TestFastMathErrorBoundSmallSuite is the FastMath acceptance suite: the
// relaxed kernels carry no bitwise guarantee, so instead of the parity
// pins the whole SmallSuite must satisfy a componentwise backward-error
// bound ω ≤ c·ε·κ₁(A) after one step of iterative refinement, at every
// worker count. The bitwise mode stays pinned by the existing parity
// and determinism suites, which this test deliberately does not touch.
func TestFastMathErrorBoundSmallSuite(t *testing.T) {
	for _, spec := range matgen.SmallSuite() {
		a := spec.Gen()
		s, err := Analyze(a, nil)
		if err != nil {
			t.Fatalf("%s: analyze: %v", spec.Name, err)
		}
		n := a.NCols
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		b := make([]float64, n)
		a.MulVec(ones, b)
		for _, workers := range []int{1, 4, 8} {
			nopts := &NumericOptions{
				Workers:     workers,
				FastMath:    true,
				PivotPolicy: PivotPerturb,
			}
			f, err := FactorizeWithOpts(s, a, nopts)
			if err != nil {
				t.Fatalf("%s P=%d: factorize: %v", spec.Name, workers, err)
			}
			x, _, _, err := f.SolveRefined(a, b, 1, 0)
			if err != nil {
				t.Fatalf("%s P=%d: solve: %v", spec.Name, workers, err)
			}
			kappa, err := f.CondEstimate1(a)
			if err != nil {
				t.Fatalf("%s P=%d: cond estimate: %v", spec.Name, workers, err)
			}
			if kappa < 1 {
				kappa = 1
			}
			omega := componentwiseBackwardError(a, x, b)
			bound := 100 * float64(n) * 0x1p-52 * kappa
			if !(omega <= bound) {
				t.Fatalf("%s P=%d: componentwise backward error %g exceeds c·ε·κ = %g (κ₁ ≈ %g)",
					spec.Name, workers, omega, bound, kappa)
			}
		}
	}
}

// TestFastMathSolvesMatchBitwiseClosely: FastMath changes rounding, not
// semantics — on the same system the fast and bitwise factorizations
// must agree to well within the conditioning of the problem.
func TestFastMathSolvesMatchBitwiseClosely(t *testing.T) {
	spec := matgen.SmallSuite()[0]
	a := spec.Gen()
	s, err := Analyze(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := a.NCols
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	solve := func(fastMath bool) []float64 {
		f, err := FactorizeWithOpts(s, a, &NumericOptions{
			Workers: 2, FastMath: fastMath, PivotPolicy: PivotPerturb,
		})
		if err != nil {
			t.Fatalf("fast=%v: %v", fastMath, err)
		}
		x, _, _, err := f.SolveRefined(a, b, 2, 0)
		if err != nil {
			t.Fatalf("fast=%v: %v", fastMath, err)
		}
		return x
	}
	xFast, xBit := solve(true), solve(false)
	norm, diff := 0.0, 0.0
	for i := range xBit {
		norm = math.Max(norm, math.Abs(xBit[i]))
		diff = math.Max(diff, math.Abs(xFast[i]-xBit[i]))
	}
	if diff > 1e-8*(norm+1) {
		t.Fatalf("fast and bitwise solutions diverge: |Δ|∞ = %g, |x|∞ = %g", diff, norm)
	}
}
