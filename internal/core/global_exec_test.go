package core

import (
	"math/rand"
	"testing"
)

// Exercises FactorizeGlobal's concurrent same-column writes (disjoint
// rows) under the race detector and checks bitwise agreement with the
// owner-mapped executor.
func TestFactorizeGlobalMatchesOwnerMapped(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	a := randomSystem(80, 0.07, rng)
	opts := DefaultOptions()
	opts.Workers = 4
	s, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := FactorizeWith(s, a)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FactorizeGlobal(s, a)
	if err != nil {
		t.Fatal(err)
	}
	for k := range f1.cols {
		d1, d2 := f1.cols[k].data, f2.cols[k].data
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatalf("block column %d differs at %d", k, i)
			}
		}
	}
}
