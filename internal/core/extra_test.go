package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/sparse"
)

func TestSolveTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(50)
		a := randomSystem(n, 0.1, rng)
		opts := DefaultOptions()
		opts.Workers = 1 + rng.Intn(3)
		f, err := Factorize(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// b = Aᵀ·x, recover x.
		b := make([]float64, n)
		a.MulVecT(x, b)
		got, err := f.SolveTranspose(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], x[i])
			}
		}
	}
}

func TestSolveTransposeMatchesTransposedFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	a := randomSystem(35, 0.12, rng)
	b := make([]float64, 35)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	f, err := Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := f.SolveTranspose(b)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := Factorize(a.Transpose(), nil)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := ft.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-8*(1+math.Abs(x2[i])) {
			t.Fatalf("x[%d]: transpose-solve %g vs factor-of-transpose %g", i, x1[i], x2[i])
		}
	}
}

func TestSolveTransposeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	a := randomSystem(10, 0.2, rng)
	f, err := Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveTranspose(make([]float64, 9)); err == nil {
		t.Fatal("wrong-length rhs accepted")
	}
}

func TestSolveRefined(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	a := randomSystem(40, 0.1, rng)
	b := make([]float64, 40)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	f, err := Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, berr, steps, err := f.SolveRefined(a, b, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if berr > 1e-13 {
		t.Fatalf("refined backward error %g", berr)
	}
	if steps > 3 {
		t.Fatalf("steps = %d", steps)
	}
	if got := Residual(a, x, b); got > 2*berr+1e-16 {
		t.Fatalf("reported berr %g, recomputed %g", berr, got)
	}
}

func TestPivotGrowthModest(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	a := randomSystem(40, 0.1, rng)
	f, err := Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := f.PivotGrowth(a)
	// Partial pivoting on a diagonally dominant matrix keeps growth
	// near 1; anything above 100 means broken bookkeeping.
	if g <= 0 || g > 100 {
		t.Fatalf("pivot growth %g out of range", g)
	}
}

func TestLogDetMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(306))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(25)
		a := randomSystem(n, 0.15, rng)
		f, err := Factorize(a, nil)
		if err != nil {
			t.Fatal(err)
		}
		sign, logAbs := f.LogDet()

		// Dense reference determinant via LU.
		d := a.ToDense()
		ipiv := make([]int, n)
		if err := blas.Dgetrf(n, n, d, n, ipiv); err != nil {
			t.Fatal(err)
		}
		wantSign := 1.0
		wantLog := 0.0
		for i := 0; i < n; i++ {
			if ipiv[i] != i {
				wantSign = -wantSign
			}
			v := d[i*n+i]
			if v < 0 {
				wantSign = -wantSign
			}
			wantLog += math.Log(math.Abs(v))
		}
		if sign != wantSign {
			t.Fatalf("trial %d: sign %g, want %g", trial, sign, wantSign)
		}
		if math.Abs(logAbs-wantLog) > 1e-8*(1+math.Abs(wantLog)) {
			t.Fatalf("trial %d: logdet %g, want %g", trial, logAbs, wantLog)
		}
	}
}

func TestLogDetSingular(t *testing.T) {
	tr := sparse.NewTriplet(2, 2)
	tr.Add(0, 0, 1)
	tr.Add(0, 1, 2)
	tr.Add(1, 0, 2)
	tr.Add(1, 1, 4)
	f, err := Factorize(tr.ToCSC(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sign, _ := f.LogDet(); sign != 0 {
		t.Fatalf("singular sign = %g, want 0", sign)
	}
}

func TestCondEstimate(t *testing.T) {
	// Identity: κ₁ = 1.
	tr := sparse.NewTriplet(5, 5)
	for i := 0; i < 5; i++ {
		tr.Add(i, i, 1)
	}
	f, err := Factorize(tr.ToCSC(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a := tr.ToCSC()
	k, err := f.CondEstimate1(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-1) > 1e-12 {
		t.Fatalf("κ(I) = %g, want 1", k)
	}

	// Diagonal with spread d: κ = max/min.
	tr2 := sparse.NewTriplet(4, 4)
	vals := []float64{1, 10, 100, 1000}
	for i, v := range vals {
		tr2.Add(i, i, v)
	}
	a2 := tr2.ToCSC()
	f2, err := Factorize(a2, nil)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := f2.CondEstimate1(a2)
	if err != nil {
		t.Fatal(err)
	}
	if k2 < 999 || k2 > 1001 {
		t.Fatalf("κ(diag) = %g, want ≈1000", k2)
	}
}

func TestCondEstimateNeverUnderestimatesBadly(t *testing.T) {
	// The Hager estimator is a lower bound on ‖A⁻¹‖₁ within a small
	// factor in practice; require it to be within 100× of the dense
	// value for random systems.
	rng := rand.New(rand.NewSource(307))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(20)
		a := randomSystem(n, 0.2, rng)
		f, err := Factorize(a, nil)
		if err != nil {
			t.Fatal(err)
		}
		est, err := f.CondEstimate1(a)
		if err != nil {
			t.Fatal(err)
		}
		// Dense ‖A⁻¹‖₁ by solving for each unit vector.
		d := a.ToDense()
		ipiv := make([]int, n)
		if err := blas.Dgetrf(n, n, d, n, ipiv); err != nil {
			t.Fatal(err)
		}
		norm := 0.0
		for j := 0; j < n; j++ {
			e := make([]float64, n)
			e[j] = 1
			blas.Dgetrs(n, d, n, ipiv, e)
			s := 0.0
			for _, v := range e {
				s += math.Abs(v)
			}
			if s > norm {
				norm = s
			}
		}
		trueK := a.Norm1() * norm
		if est > trueK*1.01 {
			t.Fatalf("trial %d: estimate %g above true κ %g", trial, est, trueK)
		}
		if est < trueK/100 {
			t.Fatalf("trial %d: estimate %g far below true κ %g", trial, est, trueK)
		}
	}
}

func TestPermSign(t *testing.T) {
	if permSign(sparse.Identity(5)) != 1 {
		t.Fatal("identity parity")
	}
	if permSign(sparse.Perm{1, 0}) != -1 {
		t.Fatal("transposition parity")
	}
	if permSign(sparse.Perm{1, 2, 0}) != 1 {
		t.Fatal("3-cycle parity")
	}
}

// Property: transpose-solve of A equals solve of Aᵀ across random
// systems and option combinations.
func TestQuickTransposeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		a := randomSystem(n, 0.15, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		opts := DefaultOptions()
		opts.Postorder = rng.Intn(2) == 0
		opts.Workers = 1 + rng.Intn(3)
		fac, err := Factorize(a, opts)
		if err != nil {
			return false
		}
		x, err := fac.SolveTranspose(b)
		if err != nil {
			return false
		}
		// Check Aᵀx = b directly.
		chk := make([]float64, n)
		a.MulVecT(x, chk)
		for i := range chk {
			if math.Abs(chk[i]-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEquilibratedSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(308))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(30)
		a := randomSystem(n, 0.15, rng)
		// Badly scale rows and columns.
		for j := 0; j < n; j++ {
			scale := math.Pow(10, float64(rng.Intn(9)-4))
			for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
				a.Val[k] *= scale
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		opts := DefaultOptions()
		opts.Equilibrate = true
		f, err := Factorize(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := Residual(a, x, b); r > 1e-9 {
			t.Fatalf("trial %d: equilibrated residual %g", trial, r)
		}
		// Transpose solve under scaling.
		bt := make([]float64, n)
		a.MulVecT(x, bt)
		xt, err := f.SolveTranspose(bt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(xt[i]-x[i]) > 1e-7*(1+math.Abs(x[i])) {
				t.Fatalf("trial %d: transpose solve with scaling wrong at %d", trial, i)
			}
		}
	}
}

func TestEquilibrateScales(t *testing.T) {
	tr := sparse.NewTriplet(2, 2)
	tr.Add(0, 0, 100)
	tr.Add(0, 1, 50)
	tr.Add(1, 1, 0.01)
	a := tr.ToCSC()
	r, c := Equilibrate(a)
	scaled := applyScaling(a, r, c)
	// Every row and column maximum of the scaled matrix must be ≤ 1 and
	// the per-row maxima exactly 1 for nonzero rows.
	for j := 0; j < 2; j++ {
		rows, vals := scaled.Col(j)
		for k := range rows {
			if math.Abs(vals[k]) > 1+1e-15 {
				t.Fatalf("scaled entry %g > 1", vals[k])
			}
		}
	}
	if scaled.MaxAbs() > 1+1e-15 {
		t.Fatal("scaled max above 1")
	}
}

func TestEquilibratedLogDet(t *testing.T) {
	tr := sparse.NewTriplet(2, 2)
	tr.Add(0, 0, 200)
	tr.Add(1, 1, 0.5)
	a := tr.ToCSC()
	opts := DefaultOptions()
	opts.Equilibrate = true
	f, err := Factorize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	sign, logAbs := f.LogDet()
	if sign != 1 || math.Abs(logAbs-math.Log(100)) > 1e-10 {
		t.Fatalf("logdet = (%g, %g), want (1, log 100)", sign, logAbs)
	}
}

func TestSolveManyBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(309))
	a := randomSystem(45, 0.1, rng)
	f, err := Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	nrhs := 5
	bs := make([][]float64, nrhs)
	for r := range bs {
		bs[r] = make([]float64, 45)
		for i := range bs[r] {
			bs[r][i] = rng.NormFloat64()
		}
	}
	xs, err := f.SolveMany(bs)
	if err != nil {
		t.Fatal(err)
	}
	for r := range xs {
		// Must match the single-vector solve exactly (same kernels, same
		// order of operations per column).
		single, err := f.Solve(bs[r])
		if err != nil {
			t.Fatal(err)
		}
		for i := range single {
			if math.Abs(xs[r][i]-single[i]) > 1e-12*(1+math.Abs(single[i])) {
				t.Fatalf("rhs %d: blocked %g vs single %g at %d", r, xs[r][i], single[i], i)
			}
		}
		if res := Residual(a, xs[r], bs[r]); res > 1e-10 {
			t.Fatalf("rhs %d residual %g", r, res)
		}
	}
}

func TestSolveManyEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(310))
	a := randomSystem(10, 0.2, rng)
	f, err := Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := f.SolveMany(nil); err != nil || out != nil {
		t.Fatal("empty rhs set should be a no-op")
	}
	if _, err := f.SolveMany([][]float64{make([]float64, 9)}); err == nil {
		t.Fatal("wrong-length rhs accepted")
	}
}
