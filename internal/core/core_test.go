package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/ordering"
	"repro/internal/sparse"
	"repro/internal/supernode"
	"repro/internal/taskgraph"
)

// randomSystem builds a random sparse diagonally-dominant matrix (well
// conditioned, structurally nonsingular) with the given density.
func randomSystem(n int, density float64, rng *rand.Rand) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	rowAbs := make([]float64, n)
	type entry struct {
		i, j int
		v    float64
	}
	var entries []entry
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				v := rng.NormFloat64()
				entries = append(entries, entry{i, j, v})
				rowAbs[i] += math.Abs(v)
			}
		}
	}
	for _, e := range entries {
		t.Add(e.i, e.j, e.v)
	}
	for i := 0; i < n; i++ {
		t.Add(i, i, rowAbs[i]+1+rng.Float64())
	}
	return t.ToCSC()
}

// offDiagonalSystem has structural zeros on part of the diagonal so the
// transversal has real work to do; it remains well conditioned after row
// matching.
func offDiagonalSystem(n int, rng *rand.Rand) *sparse.CSC {
	p := sparse.RandomPerm(n, rng)
	t := sparse.NewTriplet(n, n)
	for j := 0; j < n; j++ {
		t.Add(p[j], j, 5+rng.Float64()) // planted transversal
		for extra := 0; extra < 2; extra++ {
			i := rng.Intn(n)
			t.Add(i, j, 0.25*rng.NormFloat64())
		}
	}
	return t.ToCSC()
}

func denseSolve(t *testing.T, a *sparse.CSC, b []float64) []float64 {
	t.Helper()
	n := a.NCols
	d := a.ToDense()
	ipiv := make([]int, n)
	if err := blas.Dgetrf(n, n, d, n, ipiv); err != nil {
		t.Fatalf("dense reference factorization failed: %v", err)
	}
	x := append([]float64(nil), b...)
	blas.Dgetrs(n, d, n, ipiv, x)
	return x
}

func optionMatrix() []*Options {
	var out []*Options
	for _, post := range []bool{true, false} {
		for _, tg := range []taskgraph.Variant{taskgraph.SStar, taskgraph.EForest} {
			for _, w := range []int{1, 3} {
				out = append(out, &Options{
					Ordering:     ordering.MinDegreeATA,
					Postorder:    post,
					TaskGraph:    tg,
					Workers:      w,
					Amalgamation: supernode.AmalgamationOptions{MaxSize: 8, MaxFill: 0.3},
				})
			}
		}
	}
	return out
}

func TestFactorizeSolveAllOptionCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	a := randomSystem(80, 0.06, rng)
	b := make([]float64, 80)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := denseSolve(t, a, b)
	for oi, opts := range optionMatrix() {
		f, err := Factorize(a, opts)
		if err != nil {
			t.Fatalf("opts %d: %v", oi, err)
		}
		if f.Singular() {
			t.Fatalf("opts %d: spuriously singular", oi)
		}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatalf("opts %d: %v", oi, err)
		}
		if r := Residual(a, x, b); r > 1e-10 {
			t.Fatalf("opts %d: residual %g", oi, r)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				t.Fatalf("opts %d: x[%d] = %g, dense reference %g", oi, i, x[i], want[i])
			}
		}
	}
}

func TestFactorizeManyRandomMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(60)
		a := randomSystem(n, 0.05+rng.Float64()*0.15, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		opts := DefaultOptions()
		opts.Workers = 1 + rng.Intn(4)
		f, err := Factorize(a, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r := Residual(a, x, b); r > 1e-9 {
			t.Fatalf("trial %d (n=%d): residual %g", trial, n, r)
		}
	}
}

func TestFactorizeNeedsTransversal(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(30)
		a := offDiagonalSystem(n, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		f, err := Factorize(a, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r := Residual(a, x, b); r > 1e-8 {
			t.Fatalf("trial %d: residual %g", trial, r)
		}
	}
}

func TestParallelBitwiseDeterminism(t *testing.T) {
	// Updates from independent subtrees touch disjoint rows, so the
	// parallel factorization must be bitwise identical to the serial one.
	rng := rand.New(rand.NewSource(104))
	a := randomSystem(70, 0.07, rng)
	factor := func(workers int) *Factorization {
		opts := DefaultOptions()
		opts.Workers = workers
		f, err := Factorize(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f1 := factor(1)
	for _, w := range []int{2, 4, 8} {
		fw := factor(w)
		for k := range f1.cols {
			d1, dw := f1.cols[k].data, fw.cols[k].data
			for i := range d1 {
				if d1[i] != dw[i] {
					t.Fatalf("workers=%d: block column %d differs at %d: %v vs %v", w, k, i, d1[i], dw[i])
				}
			}
			for c := range f1.ipiv[k] {
				if f1.ipiv[k][c] != fw.ipiv[k][c] {
					t.Fatalf("workers=%d: pivots of column %d differ", w, k)
				}
			}
		}
	}
}

func TestStructurallySingularRejected(t *testing.T) {
	tr := sparse.NewTriplet(3, 3)
	tr.Add(0, 0, 1)
	tr.Add(1, 0, 1)
	tr.Add(2, 2, 1) // column 1 empty
	if _, err := Analyze(tr.ToCSC(), nil); err == nil {
		t.Fatal("structurally singular matrix accepted")
	}
}

func TestNumericallySingularFlagged(t *testing.T) {
	// Structurally fine, numerically rank deficient: two equal rows.
	tr := sparse.NewTriplet(3, 3)
	vals := [][3]float64{{1, 2, 3}, {1, 2, 3}, {4, 5, 6}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			tr.Add(i, j, vals[i][j])
		}
	}
	f, err := Factorize(tr.ToCSC(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !f.Singular() {
		t.Fatal("rank-deficient matrix not flagged singular")
	}
	if _, err := f.Solve([]float64{1, 1, 1}); err == nil {
		t.Fatal("Solve on singular factorization should error")
	}
}

func TestNonSquareRejected(t *testing.T) {
	tr := sparse.NewTriplet(2, 3)
	tr.Add(0, 0, 1)
	if _, err := Analyze(tr.ToCSC(), nil); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

func TestSolveRejectsWrongLength(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	a := randomSystem(10, 0.2, rng)
	f, err := Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(make([]float64, 9)); err == nil {
		t.Fatal("wrong-length rhs accepted")
	}
}

func TestAnalyzeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	a := randomSystem(60, 0.06, rng)
	s, err := Analyze(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats
	if st.N != 60 || st.NNZA != a.NNZ() {
		t.Fatalf("stats order/nnz wrong: %+v", st)
	}
	if st.FillRatio < 1 {
		t.Fatalf("fill ratio %g < 1", st.FillRatio)
	}
	if st.Supernodes < 1 || st.Supernodes > st.N {
		t.Fatalf("supernodes %d out of range", st.Supernodes)
	}
	// Amalgamation only merges, so without splits the block count can
	// only shrink; load-balance splitting adds SplitBlocks back.
	if st.Supernodes-st.SplitBlocks > st.StrictSN {
		t.Fatalf("amalgamation increased supernodes: %d (of which %d split) > %d",
			st.Supernodes, st.SplitBlocks, st.StrictSN)
	}
	if st.SplitBlocks < 0 {
		t.Fatalf("negative split count: %d", st.SplitBlocks)
	}
	if st.MaxBlockWidth < 1 || st.MaxBlockWidth > st.N || st.AvgBlockWidth <= 0 ||
		float64(st.MaxBlockWidth) < st.AvgBlockWidth {
		t.Fatalf("block width stats wrong: %+v", st)
	}
	if st.ExplicitZeros < 0 || st.ExplicitZeroRatio < 0 || st.ExplicitZeroRatio >= 1 {
		t.Fatalf("explicit-zero stats wrong: %+v", st)
	}
	if st.Blocks != s.BlockSym.N || st.Blocks != s.Part.NumBlocks() {
		t.Fatal("block counts inconsistent")
	}
	if st.TaskCount != s.Graph.NumTasks() {
		t.Fatal("task count inconsistent")
	}
	if st.TotalFlops <= 0 || st.CriticalPath <= 0 || st.CriticalPath > st.TotalFlops {
		t.Fatalf("flop stats wrong: %+v", st)
	}
	if st.NumTrees < 1 {
		t.Fatal("no trees")
	}
}

func TestAnalyzeReuseAcrossValues(t *testing.T) {
	// Same structure, different values: one analysis, two numeric
	// factorizations.
	rng := rand.New(rand.NewSource(107))
	a := randomSystem(40, 0.08, rng)
	s, err := Analyze(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Scaling all entries by per-entry factors close to 1 keeps the
	// matrix diagonally dominant, hence well conditioned.
	a2 := a.Clone()
	for k := range a2.Val {
		a2.Val[k] *= 1 + 0.1*rng.Float64()
	}
	b := make([]float64, 40)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, m := range []*sparse.CSC{a, a2} {
		f, err := FactorizeWith(s, m)
		if err != nil {
			t.Fatal(err)
		}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := Residual(m, x, b); r > 1e-9 {
			t.Fatalf("residual %g", r)
		}
	}
}

func TestPermuteInput(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	a := randomSystem(30, 0.1, rng)
	s, err := Analyze(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	ap := s.PermuteInput(a)
	if !ap.HasZeroFreeDiagonal() {
		t.Fatal("permuted matrix lost its zero-free diagonal")
	}
	// Every entry must map through the permutations.
	for j := 0; j < 30; j++ {
		rows, vals := a.Col(j)
		for k, i := range rows {
			pi := s.SymPerm[s.RowPerm[i]]
			pj := s.SymPerm[j]
			if got := ap.At(pi, pj); got != vals[k] {
				t.Fatalf("entry (%d,%d): permuted value %g, want %g", i, j, got, vals[k])
			}
		}
	}
}

func TestSolvePermuted(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	a := randomSystem(25, 0.12, rng)
	f, err := Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	ap := f.S.PermuteInput(a)
	x := make([]float64, 25)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, 25)
	ap.MulVec(x, b)
	f.SolvePermuted(b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-9*(1+math.Abs(x[i])) {
			t.Fatalf("permuted solve wrong at %d: %g vs %g", i, b[i], x[i])
		}
	}
}

// Property: the full pipeline solves random well-conditioned systems to
// tight backward error under random option combinations.
func TestQuickPipeline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		a := randomSystem(n, 0.05+rng.Float64()*0.2, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		opts := &Options{
			Ordering:     ordering.Method(rng.Intn(3)),
			Postorder:    rng.Intn(2) == 0,
			TaskGraph:    taskgraph.Variant(rng.Intn(2)),
			Workers:      1 + rng.Intn(4),
			Amalgamation: supernode.AmalgamationOptions{MaxSize: 1 + rng.Intn(12), MaxFill: rng.Float64()},
		}
		fac, err := Factorize(a, opts)
		if err != nil {
			return false
		}
		x, err := fac.Solve(b)
		if err != nil {
			return false
		}
		return Residual(a, x, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
