package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/matgen"
)

// The parallel triangular-solve engine promises bitwise-identical
// results to the serial sweeps at every worker count. The references
// below repeat the solve drivers' pack/scale/unpack steps around the
// plain serial column sweeps (solveInPlace and friends), so the only
// difference under test is the level-scheduled execution itself.

func serialSolveRef(f *Factorization, b []float64) []float64 {
	n := f.S.N
	y := make([]float64, n)
	for i, v := range b {
		y[f.S.SolvePerm[i]] = v
	}
	if f.rscale != nil {
		for i := range y {
			y[i] *= f.rscale[i]
		}
	}
	f.solveInPlace(y)
	if f.cscale != nil {
		for i := range y {
			y[i] *= f.cscale[i]
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = y[f.S.SymPerm[i]]
	}
	return x
}

func serialSolveTransposeRef(f *Factorization, b []float64) []float64 {
	n := f.S.N
	y := make([]float64, n)
	for i, v := range b {
		y[f.S.SymPerm[i]] = v
	}
	if f.cscale != nil {
		for i := range y {
			y[i] *= f.cscale[i]
		}
	}
	f.solveTransposeInPlace(y)
	if f.rscale != nil {
		for i := range y {
			y[i] *= f.rscale[i]
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = y[f.S.SolvePerm[i]]
	}
	return x
}

func serialSolveManyRef(f *Factorization, bs [][]float64) [][]float64 {
	n := f.S.N
	nrhs := len(bs)
	y := make([]float64, n*nrhs)
	for r, b := range bs {
		for i, v := range b {
			y[f.S.SolvePerm[i]*nrhs+r] = v
		}
	}
	if f.rscale != nil {
		for i := 0; i < n; i++ {
			s := f.rscale[i]
			for j := i * nrhs; j < (i+1)*nrhs; j++ {
				y[j] *= s
			}
		}
	}
	f.solveManySerial(y, nrhs)
	out := make([][]float64, nrhs)
	for r := range out {
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			p := f.S.SymPerm[i]
			if f.cscale != nil {
				x[i] = y[p*nrhs+r] * f.cscale[p]
			} else {
				x[i] = y[p*nrhs+r]
			}
		}
		out[r] = x
	}
	return out
}

// diffBits reports the first elementwise bit difference between two
// vectors (NaNs must match bit for bit too).
func diffBits(t *testing.T, ctx string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: x[%d] = %x (%g), want %x (%g) — parallel solve is not bitwise deterministic",
				ctx, i, math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

var solveWorkerCounts = []int{1, 2, 4, 8}

// checkSolveBitwise factors a, then checks Solve, SolveTranspose and
// SolveMany against the serial references at every worker count.
func checkSolveBitwise(t *testing.T, name string, f *Factorization, rng *rand.Rand) {
	t.Helper()
	n := f.S.N
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	bs := make([][]float64, 5)
	for r := range bs {
		bs[r] = make([]float64, n)
		for i := range bs[r] {
			bs[r][i] = rng.NormFloat64()
		}
	}
	wantX := serialSolveRef(f, b)
	wantXT := serialSolveTransposeRef(f, b)
	wantXS := serialSolveManyRef(f, bs)
	for _, p := range solveWorkerCounts {
		f.S.Opts.SolveWorkers = p
		x, err := f.Solve(b)
		if err != nil {
			t.Fatalf("%s P=%d: %v", name, p, err)
		}
		diffBits(t, fmt.Sprintf("%s Solve P=%d", name, p), x, wantX)
		xt, err := f.SolveTranspose(b)
		if err != nil {
			t.Fatalf("%s P=%d: %v", name, p, err)
		}
		diffBits(t, fmt.Sprintf("%s SolveTranspose P=%d", name, p), xt, wantXT)
		xs, err := f.SolveMany(bs)
		if err != nil {
			t.Fatalf("%s P=%d: %v", name, p, err)
		}
		for r := range xs {
			diffBits(t, fmt.Sprintf("%s SolveMany[%d] P=%d", name, r, p), xs[r], wantXS[r])
		}
	}
}

// TestSolveBitwiseAcrossWorkers pins the engine's core contract on the
// whole small suite: Solve, SolveTranspose and SolveMany at P = 1, 2,
// 4, 8 are bitwise identical to the serial sweeps.
func TestSolveBitwiseAcrossWorkers(t *testing.T) {
	for _, spec := range matgen.SmallSuite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(401))
			a := spec.Gen()
			opts := DefaultOptions()
			opts.Workers = 2
			f, err := Factorize(a, opts)
			if err != nil {
				t.Fatal(err)
			}
			checkSolveBitwise(t, spec.Name, f, rng)
		})
	}
}

// TestSolveBitwiseEquilibrated repeats the contract with row/column
// scaling in the loop (the scale passes run inside the solve drivers).
func TestSolveBitwiseEquilibrated(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	a := matgen.SmallSuite()[1].Gen()
	opts := DefaultOptions()
	opts.Equilibrate = true
	f, err := Factorize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkSolveBitwise(t, "equilibrated", f, rng)
}

// TestSolveBitwisePoisonNaN checks non-finite propagation stays
// deterministic: with NaN and ±Inf injected into the right-hand side
// and into one factor block column, the parallel sweeps reproduce the
// serial NaN pattern bit for bit at every worker count.
func TestSolveBitwisePoisonNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	a := matgen.SmallSuite()[0].Gen()
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := f.S.N
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	b[0] = math.NaN()
	b[n/2] = math.Inf(1)
	b[n-1] = math.Inf(-1)
	// Poison a mid-structure block column of the factors too, the way
	// a PoisonNaN fault would corrupt it.
	pc := &f.cols[len(f.cols)/2]
	for i := 0; i < len(pc.data); i += 7 {
		pc.data[i] = math.NaN()
	}
	wantX := serialSolveRef(f, b)
	wantXT := serialSolveTransposeRef(f, b)
	for _, p := range solveWorkerCounts {
		f.S.Opts.SolveWorkers = p
		x, err := f.Solve(b)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		diffBits(t, fmt.Sprintf("poisoned Solve P=%d", p), x, wantX)
		xt, err := f.SolveTranspose(b)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		diffBits(t, fmt.Sprintf("poisoned SolveTranspose P=%d", p), xt, wantXT)
	}
}

// TestSolveBitwiseNearSingularPerturb runs the contract on a perturbed
// near-singular factorization, where the static pivot perturbations
// make the triangular factors maximally ill-scaled.
func TestSolveBitwiseNearSingularPerturb(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	a, _, _ := matgen.NearSingular(8, 10, 21)
	opts := DefaultOptions()
	opts.PivotPolicy = PivotPerturb
	f, err := Factorize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if f.PivotPerturbations() == 0 {
		t.Fatal("expected pivot perturbations on the near-singular system")
	}
	checkSolveBitwise(t, "near-singular", f, rng)
}
