package core

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// SolveWorkspace is the reusable scratch of the solve hot path: the
// permuted right-hand-side panel the triangular sweeps run on in
// place. Each Factorization keeps a pool of workspaces (concurrent
// solves each check one out and return it), so after the first solve
// of each shape the hot path allocates nothing beyond the result
// slices the API hands back — the multi-RHS analogue of the numeric
// phase's pooled pack buffers.
type SolveWorkspace struct {
	buf []float64
}

// panel returns the workspace buffer resized to n elements, growing
// the backing array only when a larger panel than any before is
// requested.
func (ws *SolveWorkspace) panel(n int) []float64 {
	if cap(ws.buf) < n {
		ws.buf = make([]float64, n)
	}
	return ws.buf[:n]
}

// getWorkspace checks a workspace out of the factorization's pool.
func (f *Factorization) getWorkspace() *SolveWorkspace {
	ws, _ := f.solveWS.Get().(*SolveWorkspace)
	if ws == nil {
		ws = &SolveWorkspace{}
	}
	return ws
}

// putWorkspace returns a workspace to the pool.
func (f *Factorization) putWorkspace(ws *SolveWorkspace) { f.solveWS.Put(ws) }

// solveOpts resolves the per-call state of one solve: worker count,
// trace recorder and cancellation signal. An explicit override wins
// (the SolveWith/SolveManyWith paths, one override per request in the
// solve service); otherwise factorizations created through
// FactorizeWithOpts use their frozen per-call options, and the legacy
// path re-reads them from the Symbolic's recorded Options at solve
// time, so existing callers can retune s.Opts between solves. The
// returned stop func disarms the deadline timer of this solve.
func (f *Factorization) solveOpts(override *NumericOptions) (procs int, rec *trace.Recorder, cancel *sched.Canceler, stop func()) {
	var o NumericOptions
	if override != nil {
		o = *override
	} else {
		o = f.numOpts()
	}
	o = o.withDefaults()
	cancel, stop = numericCanceler(o.Timeout, o.Cancel)
	return o.SolveWorkers, o.Trace, cancel, stop
}

// runSweep executes one triangular sweep on its level-set schedule,
// recording one trace event per block column (KindSolveL/KindSolveU)
// when the recorder is present and sized for the solve worker count,
// and polling the canceler once per task claim when one is armed. A
// canceled sweep returns a *sched.CancelError whose cause is the
// deadline or external cancellation; the partially swept panel is
// pooled scratch, never a caller-visible result.
func (f *Factorization) runSweep(lv *sched.Levels, procs int, rec *trace.Recorder, cancel *sched.Canceler, kind trace.Kind, step func(k int)) error {
	if rec != nil && rec.Workers() >= procs {
		return sched.ExecuteLevelsCancelable(lv, procs, cancel, func(w, k int) {
			start := rec.Now()
			step(k)
			rec.Record(w, trace.NoTask, kind, k, start)
		})
	}
	return sched.ExecuteLevelsCancelable(lv, procs, cancel, func(w, k int) { step(k) })
}

// Solve solves A·x = b for the original (unpermuted) matrix the
// factorization was computed from. b is not modified.
//
// The sweeps execute as one task per block column on the level-set
// schedules derived at analysis time (Symbolic.SolveFwd/SolveBwd)
// with Options.SolveWorkers workers. Tasks touching a common block
// row are chained in serial order and updates to disjoint rows
// commute exactly, so the result is bitwise identical to the serial
// sweeps at every worker count.
func (f *Factorization) Solve(b []float64) ([]float64, error) {
	return f.SolveWith(b, nil)
}

// SolveWith is Solve with an explicit per-call options override: the
// worker count, deadline, canceler and trace recorder of this one
// solve come from nopts instead of the factorization's frozen options
// (nil nopts is plain Solve). It is how a long-lived service binds a
// request-scoped deadline to a solve against a shared, immutable
// factorization without mutating it.
func (f *Factorization) SolveWith(b []float64, nopts *NumericOptions) ([]float64, error) {
	if len(b) != f.S.N {
		return nil, fmt.Errorf("core: rhs has length %d, want %d", len(b), f.S.N)
	}
	if f.Singular() {
		return nil, f.singularError()
	}
	ws := f.getWorkspace()
	// A x = b  ⇒  (P_sym P_row A P_symᵀ)(P_sym x) = P_sym P_row b.
	// With equilibration, (R·A₂·C)(C⁻¹·P_sym x) = R·P_sym P_row b.
	y := ws.panel(f.S.N)
	for i, v := range b {
		y[f.S.SolvePerm[i]] = v
	}
	if f.rscale != nil {
		for i := range y {
			y[i] *= f.rscale[i]
		}
	}
	procs, rec, cancel, stop := f.solveOpts(nopts)
	defer stop()
	if err := f.runSweep(f.S.SolveFwd, procs, rec, cancel, trace.KindSolveL, func(k int) { f.fwdStep(k, y) }); err != nil {
		f.putWorkspace(ws)
		return nil, err
	}
	if err := f.runSweep(f.S.SolveBwd, procs, rec, cancel, trace.KindSolveU, func(k int) { f.bwdStep(k, y) }); err != nil {
		f.putWorkspace(ws)
		return nil, err
	}
	if f.cscale != nil {
		for i := range y {
			y[i] *= f.cscale[i]
		}
	}
	x := make([]float64, f.S.N)
	for i := range x {
		x[i] = y[f.S.SymPerm[i]]
	}
	f.putWorkspace(ws)
	return x, nil
}

// SolvePermuted solves the factored (permuted) system in place: on
// entry y is the right-hand side in the permuted ordering, on return it
// holds the solution in the permuted ordering. It runs the serial
// sweeps on the calling goroutine.
func (f *Factorization) SolvePermuted(y []float64) {
	f.solveInPlace(y)
}

// solveInPlace runs the two sweeps in plain serial column order — the
// seed path the parallel engine is tested bitwise against, and the
// body of SolvePermuted. The per-column step functions are shared with
// the level-scheduled executor, so the two paths perform literally the
// same operations.
func (f *Factorization) solveInPlace(y []float64) {
	nb := f.S.BlockSym.N
	for k := 0; k < nb; k++ {
		f.fwdStep(k, y)
	}
	for k := nb - 1; k >= 0; k-- {
		f.bwdStep(k, y)
	}
}

// fwdStep is the forward-sweep task of block column k on one
// right-hand side: replay the panel's interchanges at its step, solve
// the unit-lower diagonal block, then propagate to the sub-diagonal
// blocks. Block rows are contiguous scalar index ranges, so the
// relevant pieces of y are contiguous. It touches exactly the block
// rows of L̄'s column k (the panel's static row set), which is what
// the conflict chains of the solve schedule are built on.
func (f *Factorization) fwdStep(k int, y []float64) {
	c := &f.cols[k]
	w := c.width
	prows := f.panelRows[k]
	for lc, r := range f.ipiv[k] {
		if r != lc {
			y[prows[lc]], y[prows[r]] = y[prows[r]], y[prows[lc]]
		}
	}
	lo, _ := f.S.Part.Range(k)
	yk := y[lo : lo+w]
	diag := c.data[c.panelOffset()*w:]
	blas.Dtrsv(true, true, w, diag, w, yk)
	for t := c.diagIdx + 1; t < len(c.blockRows); t++ {
		i := c.blockRows[t]
		ilo, ihi := f.S.Part.Range(i)
		blas.Dgemv(false, ihi-ilo, w, -1, c.data[c.offsets[t]*w:], w, yk, 1, y[ilo:ihi])
	}
}

// bwdStep is the backward-sweep task of block column k: solve the
// upper-triangular diagonal block, then subtract U(I,K)·x_K from the
// rows of every block above. It touches exactly the block rows of Ū's
// column k.
func (f *Factorization) bwdStep(k int, y []float64) {
	c := &f.cols[k]
	w := c.width
	lo, _ := f.S.Part.Range(k)
	xk := y[lo : lo+w]
	diag := c.data[c.panelOffset()*w:]
	blas.Dtrsv(false, false, w, diag, w, xk)
	for t := 0; t < c.diagIdx; t++ {
		i := c.blockRows[t]
		ilo, ihi := f.S.Part.Range(i)
		blas.Dgemv(false, ihi-ilo, w, -1, c.data[c.offsets[t]*w:], w, xk, 1, y[ilo:ihi])
	}
}

// SolveMany solves A·X = B for several right-hand sides at once with
// blocked BLAS-3 sweeps (Dtrsm/Dgemm on an n×nrhs panel), which is
// substantially faster than repeated single-vector solves once nrhs is
// more than a couple. The panel lives in the factorization's pooled
// SolveWorkspace and the right-hand sides are packed straight into
// their permuted rows, so no per-RHS staging copies are allocated. The
// sweeps run on the same level-set schedules as Solve and are bitwise
// identical to the serial panel sweeps at every worker count. The
// inputs are not modified.
func (f *Factorization) SolveMany(bs [][]float64) ([][]float64, error) {
	return f.SolveManyWith(bs, nil)
}

// SolveManyWith is SolveMany with an explicit per-call options
// override, the multi-RHS analogue of SolveWith (nil nopts is plain
// SolveMany).
func (f *Factorization) SolveManyWith(bs [][]float64, nopts *NumericOptions) ([][]float64, error) {
	if f.Singular() {
		return nil, f.singularError()
	}
	nrhs := len(bs)
	if nrhs == 0 {
		return nil, nil
	}
	n := f.S.N
	for r, b := range bs {
		if len(b) != n {
			return nil, fmt.Errorf("core: rhs %d has length %d, want %d", r, len(b), n)
		}
	}
	// Pack the permuted (and scaled) right-hand sides as a row-major
	// n×nrhs panel, scattering each b directly through SolvePerm.
	ws := f.getWorkspace()
	y := ws.panel(n * nrhs)
	for r, b := range bs {
		for i, v := range b {
			y[f.S.SolvePerm[i]*nrhs+r] = v
		}
	}
	if f.rscale != nil {
		for i := 0; i < n; i++ {
			s := f.rscale[i]
			row := y[i*nrhs : (i+1)*nrhs]
			for j := range row {
				row[j] *= s
			}
		}
	}

	procs, rec, cancel, stop := f.solveOpts(nopts)
	defer stop()
	if err := f.runSweep(f.S.SolveFwd, procs, rec, cancel, trace.KindSolveL, func(k int) { f.fwdPanelStep(k, y, nrhs) }); err != nil {
		f.putWorkspace(ws)
		return nil, err
	}
	if err := f.runSweep(f.S.SolveBwd, procs, rec, cancel, trace.KindSolveU, func(k int) { f.bwdPanelStep(k, y, nrhs) }); err != nil {
		f.putWorkspace(ws)
		return nil, err
	}

	// Unpack, unscale, unpermute: one gather pass per right-hand side,
	// straight from the panel into the result.
	out := make([][]float64, nrhs)
	for r := range out {
		x := make([]float64, n)
		if f.cscale != nil {
			for i := 0; i < n; i++ {
				p := f.S.SymPerm[i]
				x[i] = y[p*nrhs+r] * f.cscale[p]
			}
		} else {
			for i := 0; i < n; i++ {
				x[i] = y[f.S.SymPerm[i]*nrhs+r]
			}
		}
		out[r] = x
	}
	f.putWorkspace(ws)
	return out, nil
}

// solveManySerial runs the panel sweeps in plain serial column order —
// the bitwise reference of the level-scheduled multi-RHS path.
func (f *Factorization) solveManySerial(y []float64, nrhs int) {
	nb := f.S.BlockSym.N
	for k := 0; k < nb; k++ {
		f.fwdPanelStep(k, y, nrhs)
	}
	for k := nb - 1; k >= 0; k-- {
		f.bwdPanelStep(k, y, nrhs)
	}
}

// fwdPanelStep is fwdStep on an n×nrhs row-major panel: Dswap replays
// the interchanges across all right-hand sides, Dtrsm solves the
// unit-lower diagonal block, Dgemm scatters the sub-diagonal updates.
func (f *Factorization) fwdPanelStep(k int, y []float64, nrhs int) {
	c := &f.cols[k]
	w := c.width
	prows := f.panelRows[k]
	for lc, rr := range f.ipiv[k] {
		if rr != lc {
			blas.Dswap(nrhs, y[prows[lc]*nrhs:], 1, y[prows[rr]*nrhs:], 1)
		}
	}
	lo, _ := f.S.Part.Range(k)
	diag := c.data[c.panelOffset()*w:]
	blas.Dtrsm(true, true, w, nrhs, 1, diag, w, y[lo*nrhs:], nrhs)
	for t := c.diagIdx + 1; t < len(c.blockRows); t++ {
		i := c.blockRows[t]
		ilo, ihi := f.S.Part.Range(i)
		blas.Dgemm(ihi-ilo, nrhs, w, -1, c.data[c.offsets[t]*w:], w, y[lo*nrhs:], nrhs, 1, y[ilo*nrhs:], nrhs)
	}
}

// bwdPanelStep is bwdStep on an n×nrhs row-major panel.
func (f *Factorization) bwdPanelStep(k int, y []float64, nrhs int) {
	c := &f.cols[k]
	w := c.width
	lo, _ := f.S.Part.Range(k)
	diag := c.data[c.panelOffset()*w:]
	blas.Dtrsm(false, false, w, nrhs, 1, diag, w, y[lo*nrhs:], nrhs)
	for t := 0; t < c.diagIdx; t++ {
		i := c.blockRows[t]
		ilo, ihi := f.S.Part.Range(i)
		blas.Dgemm(ihi-ilo, nrhs, w, -1, c.data[c.offsets[t]*w:], w, y[lo*nrhs:], nrhs, 1, y[ilo*nrhs:], nrhs)
	}
}

// Residual returns ‖A·x − b‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞), the standard
// scaled backward-error estimate, for the original system.
func Residual(a *sparse.CSC, x, b []float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(x, r)
	num := 0.0
	for i := range r {
		if d := math.Abs(r[i] - b[i]); d > num {
			num = d
		}
	}
	xinf := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > xinf {
			xinf = a
		}
	}
	binf := 0.0
	for _, v := range b {
		if a := math.Abs(v); a > binf {
			binf = a
		}
	}
	den := a.NormInf()*xinf + binf
	if den == 0 {
		return num
	}
	return num / den
}
