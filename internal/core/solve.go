package core

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/sparse"
)

// Solve solves A·x = b for the original (unpermuted) matrix the
// factorization was computed from. b is not modified.
func (f *Factorization) Solve(b []float64) ([]float64, error) {
	if len(b) != f.S.N {
		return nil, fmt.Errorf("core: rhs has length %d, want %d", len(b), f.S.N)
	}
	if f.Singular() {
		return nil, f.singularError()
	}
	// A x = b  ⇒  (P_sym P_row A P_symᵀ)(P_sym x) = P_sym P_row b.
	// With equilibration, (R·A₂·C)(C⁻¹·P_sym x) = R·P_sym P_row b.
	y := f.S.SymPerm.Apply(f.S.RowPerm.Apply(b))
	if f.rscale != nil {
		for i := range y {
			y[i] *= f.rscale[i]
		}
	}
	f.solveInPlace(y)
	if f.cscale != nil {
		for i := range y {
			y[i] *= f.cscale[i]
		}
	}
	return f.S.SymPerm.ApplyInverse(y), nil
}

// SolvePermuted solves the factored (permuted) system in place: on
// entry y is the right-hand side in the permuted ordering, on return it
// holds the solution in the permuted ordering.
func (f *Factorization) SolvePermuted(y []float64) {
	f.solveInPlace(y)
}

func (f *Factorization) solveInPlace(y []float64) {
	part := f.S.Part
	nb := f.S.BlockSym.N

	// Forward sweep: replay each panel's interchanges at its step, solve
	// the unit-lower diagonal block, then propagate to the sub-diagonal
	// blocks. Block rows are contiguous scalar index ranges, so the
	// relevant pieces of y are contiguous.
	for k := 0; k < nb; k++ {
		c := &f.cols[k]
		w := c.width
		prows := f.panelRows[k]
		for lc, r := range f.ipiv[k] {
			if r != lc {
				y[prows[lc]], y[prows[r]] = y[prows[r]], y[prows[lc]]
			}
		}
		lo, _ := part.Range(k)
		yk := y[lo : lo+w]
		diag := c.data[c.panelOffset()*w:]
		blas.Dtrsv(true, true, w, diag, w, yk)
		for t := c.diagIdx + 1; t < len(c.blockRows); t++ {
			i := c.blockRows[t]
			ilo, ihi := part.Range(i)
			blas.Dgemv(false, ihi-ilo, w, -1, c.data[c.offsets[t]*w:], w, yk, 1, y[ilo:ihi])
		}
	}

	// Backward sweep: solve the upper-triangular diagonal block of K,
	// then subtract U(I,K)·x_K from the rows of every block above.
	for k := nb - 1; k >= 0; k-- {
		c := &f.cols[k]
		w := c.width
		lo, _ := part.Range(k)
		xk := y[lo : lo+w]
		diag := c.data[c.panelOffset()*w:]
		blas.Dtrsv(false, false, w, diag, w, xk)
		for t := 0; t < c.diagIdx; t++ {
			i := c.blockRows[t]
			ilo, ihi := part.Range(i)
			blas.Dgemv(false, ihi-ilo, w, -1, c.data[c.offsets[t]*w:], w, xk, 1, y[ilo:ihi])
		}
	}
}

// SolveMany solves A·X = B for several right-hand sides at once with
// blocked BLAS-3 sweeps (Dtrsm/Dgemm on an n×nrhs panel), which is
// substantially faster than repeated single-vector solves once nrhs is
// more than a couple. The inputs are not modified.
func (f *Factorization) SolveMany(bs [][]float64) ([][]float64, error) {
	if f.Singular() {
		return nil, f.singularError()
	}
	nrhs := len(bs)
	if nrhs == 0 {
		return nil, nil
	}
	n := f.S.N
	for r, b := range bs {
		if len(b) != n {
			return nil, fmt.Errorf("core: rhs %d has length %d, want %d", r, len(b), n)
		}
	}
	// Pack the permuted (and scaled) right-hand sides as a row-major
	// n×nrhs panel.
	y := make([]float64, n*nrhs)
	for r, b := range bs {
		pb := f.S.SymPerm.Apply(f.S.RowPerm.Apply(b))
		if f.rscale != nil {
			for i := range pb {
				pb[i] *= f.rscale[i]
			}
		}
		for i := 0; i < n; i++ {
			y[i*nrhs+r] = pb[i]
		}
	}

	part := f.S.Part
	nb := f.S.BlockSym.N
	// Forward sweep.
	for k := 0; k < nb; k++ {
		c := &f.cols[k]
		w := c.width
		prows := f.panelRows[k]
		for lc, rr := range f.ipiv[k] {
			if rr != lc {
				blas.Dswap(nrhs, y[prows[lc]*nrhs:], 1, y[prows[rr]*nrhs:], 1)
			}
		}
		lo, _ := part.Range(k)
		diag := c.data[c.panelOffset()*w:]
		blas.Dtrsm(true, true, w, nrhs, 1, diag, w, y[lo*nrhs:], nrhs)
		for t := c.diagIdx + 1; t < len(c.blockRows); t++ {
			i := c.blockRows[t]
			ilo, ihi := part.Range(i)
			blas.Dgemm(ihi-ilo, nrhs, w, -1, c.data[c.offsets[t]*w:], w, y[lo*nrhs:], nrhs, 1, y[ilo*nrhs:], nrhs)
		}
	}
	// Backward sweep.
	for k := nb - 1; k >= 0; k-- {
		c := &f.cols[k]
		w := c.width
		lo, _ := part.Range(k)
		diag := c.data[c.panelOffset()*w:]
		blas.Dtrsm(false, false, w, nrhs, 1, diag, w, y[lo*nrhs:], nrhs)
		for t := 0; t < c.diagIdx; t++ {
			i := c.blockRows[t]
			ilo, ihi := part.Range(i)
			blas.Dgemm(ihi-ilo, nrhs, w, -1, c.data[c.offsets[t]*w:], w, y[lo*nrhs:], nrhs, 1, y[ilo*nrhs:], nrhs)
		}
	}

	// Unpack, unscale, unpermute.
	out := make([][]float64, nrhs)
	col := make([]float64, n)
	for r := 0; r < nrhs; r++ {
		for i := 0; i < n; i++ {
			col[i] = y[i*nrhs+r]
		}
		if f.cscale != nil {
			for i := range col {
				col[i] *= f.cscale[i]
			}
		}
		out[r] = f.S.SymPerm.ApplyInverse(col)
	}
	return out, nil
}

// Residual returns ‖A·x − b‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞), the standard
// scaled backward-error estimate, for the original system.
func Residual(a *sparse.CSC, x, b []float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(x, r)
	num := 0.0
	for i := range r {
		if d := math.Abs(r[i] - b[i]); d > num {
			num = d
		}
	}
	xinf := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > xinf {
			xinf = a
		}
	}
	binf := 0.0
	for _, v := range b {
		if a := math.Abs(v); a > binf {
			binf = a
		}
	}
	den := a.NormInf()*xinf + binf
	if den == 0 {
		return num
	}
	return num / den
}
