package core

import (
	"runtime"
	"testing"

	"repro/internal/matgen"
)

// measureSolveAllocs returns the heap objects allocated by iters calls
// of solve (warmed up beforehand by the caller).
func measureSolveAllocs(iters int, solve func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		solve()
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestSolveZeroAllocs is the zero-allocation proof of the solve
// engine: once the pooled SolveWorkspace is warm, Solve, SolveTranspose
// and SolveMany allocate only their result slices plus the executor's
// fixed setup (goroutines, barrier, closures — well under allocBudget
// objects for hundreds of per-column tasks). Any per-task or per-RHS
// allocation sneaking back into the sweeps fails the test.
func TestSolveZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed by the race detector")
	}
	const (
		procs = 4
		nrhs  = 16
		iters = 10
	)
	a := matgen.Sherman5()
	opts := DefaultOptions()
	opts.SolveWorkers = procs
	f, err := Factorize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	n := f.S.N
	if tasks := f.S.SolveFwd.NumTasks(); tasks < 100 {
		t.Fatalf("only %d solve tasks; matrix too small for the test to mean anything", tasks)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	bs := make([][]float64, nrhs)
	for r := range bs {
		bs[r] = b
	}
	mustSolve := func(fn func() error) func() {
		return func() {
			if err := fn(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, tc := range []struct {
		name string
		// budget is the per-iteration allowance: the result slices the
		// API must hand back, plus the engine's fixed overhead.
		budget uint64
		solve  func()
	}{
		{"Solve", 1 + allocBudget, mustSolve(func() error { _, err := f.Solve(b); return err })},
		{"SolveTranspose", 1 + allocBudget, mustSolve(func() error { _, err := f.SolveTranspose(b); return err })},
		{"SolveMany16", 1 + nrhs + allocBudget, mustSolve(func() error { _, err := f.SolveMany(bs); return err })},
	} {
		// Warm-up fills the workspace pool and the runtime's caches.
		tc.solve()
		tc.solve()
		allocs := measureSolveAllocs(iters, tc.solve)
		perIter := float64(allocs) / float64(iters)
		t.Logf("%s: %d allocs over %d solves (%.1f/solve, budget %d)", tc.name, allocs, iters, perIter, tc.budget)
		if allocs > uint64(iters)*tc.budget {
			t.Errorf("%s: %d allocs over %d solves exceeds the %d/solve budget — the solve hot path is allocating per task",
				tc.name, allocs, iters, tc.budget)
		}
	}
}
