package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/matgen"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// robustOptions returns the configuration the robustness tests share:
// enough workers to expose scheduling races under -race.
func robustOptions(workers int) *Options {
	o := DefaultOptions()
	o.Workers = workers
	return o
}

func TestNearSingularFailPolicy(t *testing.T) {
	a, zeroCol, _ := matgen.NearSingular(8, 10, 21)
	opts := robustOptions(4)
	f, err := Factorize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Singular() {
		t.Fatal("zero column not flagged singular under PivotFail")
	}
	if got := f.SingularColumn(); got != zeroCol {
		t.Fatalf("SingularColumn = %d, want %d", got, zeroCol)
	}
	b := make([]float64, a.NCols)
	for i := range b {
		b[i] = 1
	}
	_, err = f.Solve(b)
	if !errors.Is(err, ErrNumericallySingular) {
		t.Fatalf("Solve err = %v, want ErrNumericallySingular", err)
	}
	var se *SingularError
	if !errors.As(err, &se) || se.Col != zeroCol {
		t.Fatalf("Solve err = %v, want *SingularError at column %d", err, zeroCol)
	}
	if f.PivotPerturbations() != 0 || f.PerturbedColumns() != nil {
		t.Fatal("PivotFail recorded perturbations")
	}
}

func TestNearSingularPerturbPolicy(t *testing.T) {
	a, zeroCol, tinyCols := matgen.NearSingular(8, 10, 21)
	n := a.NCols
	opts := robustOptions(4)
	opts.PivotPolicy = PivotPerturb
	f, err := Factorize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if f.Singular() {
		t.Fatal("PivotPerturb left the singular flag set")
	}
	if f.PivotThreshold() <= 0 {
		t.Fatalf("PivotThreshold = %g", f.PivotThreshold())
	}
	pcols := f.PerturbedColumns()
	if len(pcols) != f.PivotPerturbations() {
		t.Fatalf("count %d vs columns %v", f.PivotPerturbations(), pcols)
	}
	has := func(want int) bool {
		for _, c := range pcols {
			if c == want {
				return true
			}
		}
		return false
	}
	if !has(zeroCol) {
		t.Fatalf("perturbed columns %v miss the zero column %d", pcols, zeroCol)
	}
	for _, c := range tinyCols {
		if !has(c) {
			t.Fatalf("perturbed columns %v miss tiny column %d", pcols, c)
		}
	}
	// Consistent right-hand side: refinement must recover a small
	// backward error despite the perturbed pivots.
	rng := rand.New(rand.NewSource(5))
	xtrue := make([]float64, n)
	for i := range xtrue {
		xtrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(xtrue, b)
	x, berr, _, err := f.SolveRefined(a, b, 3, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if berr > 1e-10 {
		t.Fatalf("backward error %g after refinement, want ≤ 1e-10", berr)
	}
	if i := firstNonFinite(x); i >= 0 {
		t.Fatalf("solution has non-finite entry at %d", i)
	}
	// The stability reports stay finite and available.
	if pg := f.PivotGrowth(a); math.IsNaN(pg) || math.IsInf(pg, 0) {
		t.Fatalf("PivotGrowth = %g", pg)
	}
	if _, err := f.CondEstimate1(a); err != nil {
		t.Fatalf("CondEstimate1: %v", err)
	}
}

func TestPerturbNoOpOnHealthyMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomSystem(80, 0.08, rng)
	fail, err := Factorize(a, robustOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	opts := robustOptions(3)
	opts.PivotPolicy = PivotPerturb
	pert, err := Factorize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pert.PivotPerturbations() != 0 {
		t.Fatalf("healthy matrix got %d perturbations at %v",
			pert.PivotPerturbations(), pert.PerturbedColumns())
	}
	for k := range fail.cols {
		fa, pa := fail.cols[k].data, pert.cols[k].data
		for i := range fa {
			if fa[i] != pa[i] {
				t.Fatalf("policies diverge bitwise at column %d entry %d", k, i)
			}
		}
	}
}

// TestPanicInUpdateTaskAborts pins the acceptance criterion at the core
// layer: a fault-injected panic in an Update task at P=8 surfaces as a
// *sched.TaskError naming that task.
func TestPanicInUpdateTaskAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := randomSystem(120, 0.05, rng)
	opts := robustOptions(8)
	s, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	updateID := -1
	for id, task := range s.Graph.Tasks {
		if task.Kind == taskgraph.Update {
			updateID = id
			break
		}
	}
	if updateID < 0 {
		t.Skip("graph has no update tasks")
	}
	f, err := newFactorization(s, a, resolveNumOpts(s, nil))
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New()
	inj.Set(updateID, faultinject.Fault{Mode: faultinject.Panic})
	owner := sched.BlockCyclic(s.BlockSym.N, 8)
	prio, err := s.Graph.BottomLevels(s.Costs.TaskFlops)
	if err != nil {
		t.Fatal(err)
	}
	err = sched.ExecuteCancelable(s.Graph, owner, 8, prio, nil, nil, inj.Wrap(f.runTask, nil))
	var te *sched.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *sched.TaskError", err)
	}
	if te.ID != updateID {
		t.Fatalf("TaskError names task %d, want %d", te.ID, updateID)
	}
	if want := s.Graph.Tasks[updateID].String(); te.Task != want {
		t.Fatalf("TaskError task = %q, want %q", te.Task, want)
	}
	if inj.Fired() != 1 {
		t.Fatalf("injector fired %d times", inj.Fired())
	}
}

// TestPoisonNaNTripsGuard injects NaN into a block column after one of
// its updates and checks the core non-finite guard aborts the execution
// with ErrNonFinite.
func TestPoisonNaNTripsGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	a := randomSystem(120, 0.05, rng)
	opts := robustOptions(8)
	s, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := newFactorization(s, a, resolveNumOpts(s, nil))
	if err != nil {
		t.Fatal(err)
	}
	poisonID := -1
	var destCol int
	for id, task := range s.Graph.Tasks {
		if task.Kind == taskgraph.Update {
			poisonID, destCol = id, task.J
			break
		}
	}
	if poisonID < 0 {
		t.Skip("graph has no update tasks")
	}
	inj := faultinject.New()
	inj.Set(poisonID, faultinject.Fault{Mode: faultinject.PoisonNaN})
	poison := func(id int) {
		data := f.cols[destCol].data
		for i := range data {
			data[i] = math.NaN()
		}
	}
	prio, err := s.Graph.BottomLevels(s.Costs.TaskFlops)
	if err != nil {
		t.Fatal(err)
	}
	err = sched.ExecuteGlobalCancelable(s.Graph, 8, prio, nil, nil, inj.Wrap(f.runTask, poison))
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
	var te *sched.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *sched.TaskError", err)
	}
}

// TestInjectorTransparencyBitwise: with an empty fault plan the wrapped
// runner must reproduce the factors bit for bit, at any worker count.
func TestInjectorTransparencyBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	a := randomSystem(100, 0.06, rng)
	opts := robustOptions(1)
	ref, err := Factorize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Analyze(a, robustOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	f, err := newFactorization(s, a, resolveNumOpts(s, nil))
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New()
	prio, err := s.Graph.BottomLevels(s.Costs.TaskFlops)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ExecuteGlobalCancelable(s.Graph, 8, prio, nil, nil, inj.Wrap(f.runTask, nil)); err != nil {
		t.Fatal(err)
	}
	if inj.Fired() != 0 {
		t.Fatalf("empty injector fired %d times", inj.Fired())
	}
	for k := range ref.cols {
		ra, fa := ref.cols[k].data, f.cols[k].data
		for i := range ra {
			if ra[i] != fa[i] {
				t.Fatalf("column %d entry %d differs bitwise", k, i)
			}
		}
	}
}

// TestTimeoutCancelsFactorization: with every task delayed far past the
// deadline, the numeric phase must return a CancelError caused by
// ErrDeadlineExceeded.
func TestTimeoutCancelsFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	a := randomSystem(90, 0.05, rng)
	opts := robustOptions(8)
	opts.Timeout = time.Millisecond
	s, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Graph.NumTasks() <= 8 {
		t.Skip("graph too small to outlive the deadline")
	}
	f, err := newFactorization(s, a, resolveNumOpts(s, nil))
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New()
	for id := 0; id < s.Graph.NumTasks(); id++ {
		inj.Set(id, faultinject.Fault{Mode: faultinject.Delay, Sleep: 100 * time.Millisecond})
	}
	prio, err := s.Graph.BottomLevels(s.Costs.TaskFlops)
	if err != nil {
		t.Fatal(err)
	}
	cancel, stop := numericCanceler(s.Opts.Timeout, s.Opts.Cancel)
	defer stop()
	err = sched.ExecuteGlobalCancelable(s.Graph, 8, prio, nil, cancel, inj.Wrap(f.runTask, nil))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, sched.ErrCanceled) {
		t.Fatalf("err = %v does not match sched.ErrCanceled", err)
	}
	var ce *sched.CancelError
	if !errors.As(err, &ce) || ce.Completed >= ce.Total {
		t.Fatalf("cancel progress %+v implausible", ce)
	}
}

// TestCancelOptionWiredThroughFactorize: a pre-tripped Options.Cancel
// makes the public factorization entry points return promptly.
func TestCancelOptionWiredThroughFactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	a := randomSystem(60, 0.08, rng)
	cause := errors.New("caller gave up")
	opts := robustOptions(4)
	cancel := &sched.Canceler{}
	cancel.Cancel(cause)
	opts.Cancel = cancel
	if _, err := Factorize(a, opts); !errors.Is(err, cause) || !errors.Is(err, sched.ErrCanceled) {
		t.Fatalf("Factorize err = %v", err)
	}
	s, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FactorizeGlobal(s, a); !errors.Is(err, sched.ErrCanceled) {
		t.Fatalf("FactorizeGlobal err = %v", err)
	}
}

// TestSeededFaultSweep runs a deterministic sweep of seeded error
// injections and checks every failure honors the TaskError contract.
func TestSeededFaultSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	a := randomSystem(100, 0.05, rng)
	opts := robustOptions(8)
	s, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	prio, err := s.Graph.BottomLevels(s.Costs.TaskFlops)
	if err != nil {
		t.Fatal(err)
	}
	nt := s.Graph.NumTasks()
	for seed := int64(1); seed <= 4; seed++ {
		ids := faultinject.PickTasks(seed, nt, 3)
		inj := faultinject.New()
		for i, id := range ids {
			mode := faultinject.Error
			if i%2 == 1 {
				mode = faultinject.Panic
			}
			inj.Set(id, faultinject.Fault{Mode: mode})
		}
		f, err := newFactorization(s, a, resolveNumOpts(s, nil))
		if err != nil {
			t.Fatal(err)
		}
		err = sched.ExecuteGlobalCancelable(s.Graph, 8, prio, nil, nil, inj.Wrap(f.runTask, nil))
		var te *sched.TaskError
		if !errors.As(err, &te) {
			t.Fatalf("seed %d: err = %v, want *sched.TaskError", seed, err)
		}
		planned := false
		for _, id := range ids {
			if te.ID == id {
				planned = true
			}
		}
		if !planned {
			t.Fatalf("seed %d: failing task %d not in the fault plan %v", seed, te.ID, ids)
		}
		if inj.Fired() == 0 {
			t.Fatalf("seed %d: no fault fired", seed)
		}
	}
}
