package core

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// SolveTranspose solves Aᵀ·x = b for the original matrix. b is not
// modified.
//
// With A₂ = P_c·P_r·A·P_cᵀ factored as (Π_k P_kᵀL_k)·U, the transposed
// system A₂ᵀ·z = P_c·b is solved by a forward sweep with Ûᵀ followed by
// the reversed product of L_kᵀ and the pivot interchanges, and finally
// x = P_rᵀ·P_cᵀ·z.
//
// Like Solve, the sweeps run one task per block column on the
// transpose level schedules (Symbolic.SolveFwdT/SolveBwdT — the
// edge-reversed forms of the backward/forward ones) with
// Options.SolveWorkers workers, bitwise identical to the serial
// transpose sweeps at every worker count.
func (f *Factorization) SolveTranspose(b []float64) ([]float64, error) {
	if len(b) != f.S.N {
		return nil, fmt.Errorf("core: rhs has length %d, want %d", len(b), f.S.N)
	}
	if f.Singular() {
		return nil, f.singularError()
	}
	// With equilibration, (R·A₂·C)ᵀ·z = C·P_sym b and x comes back as
	// P_rᵀP_cᵀ(R·z).
	ws := f.getWorkspace()
	y := ws.panel(f.S.N)
	for i, v := range b {
		y[f.S.SymPerm[i]] = v
	}
	if f.cscale != nil {
		for i := range y {
			y[i] *= f.cscale[i]
		}
	}
	procs, rec, cancel, stop := f.solveOpts(nil)
	defer stop()
	if err := f.runSweep(f.S.SolveFwdT, procs, rec, cancel, trace.KindSolveU, func(k int) { f.fwdStepT(k, y) }); err != nil {
		f.putWorkspace(ws)
		return nil, err
	}
	if err := f.runSweep(f.S.SolveBwdT, procs, rec, cancel, trace.KindSolveL, func(k int) { f.bwdStepT(k, y) }); err != nil {
		f.putWorkspace(ws)
		return nil, err
	}
	if f.rscale != nil {
		for i := range y {
			y[i] *= f.rscale[i]
		}
	}
	// x = P_rᵀ·P_cᵀ·y gathers through the composed permutation.
	x := make([]float64, f.S.N)
	for i := range x {
		x[i] = y[f.S.SolvePerm[i]]
	}
	f.putWorkspace(ws)
	return x, nil
}

// solveTransposeInPlace runs the transpose sweeps in plain serial
// column order — the bitwise reference of the level-scheduled path.
func (f *Factorization) solveTransposeInPlace(y []float64) {
	nb := f.S.BlockSym.N
	for k := 0; k < nb; k++ {
		f.fwdStepT(k, y)
	}
	for k := nb - 1; k >= 0; k-- {
		f.bwdStepT(k, y)
	}
}

// fwdStepT is the transpose forward-sweep task of block column k (the
// Ûᵀ sweep, lower triangular): subtract the contributions of the U
// blocks above the diagonal, then solve with the transposed diagonal U
// factor. It reads the block rows of Ū's column k and writes only
// block k — the same touched set as bwdStep, visited in the opposite
// column order, which is why it runs on SolveBwd.Reversed().
func (f *Factorization) fwdStepT(k int, y []float64) {
	c := &f.cols[k]
	w := c.width
	lo, _ := f.S.Part.Range(k)
	yk := y[lo : lo+w]
	for t := 0; t < c.diagIdx; t++ {
		i := c.blockRows[t]
		ilo, ihi := f.S.Part.Range(i)
		// y_K ← y_K − U(I,K)ᵀ·y_I
		blas.Dgemv(true, ihi-ilo, w, -1, c.data[c.offsets[t]*w:], w, y[ilo:ihi], 1, yk)
	}
	diag := c.data[c.panelOffset()*w:]
	blas.Dtrsvt(false, false, w, diag, w, yk) // (upper U)ᵀ solve
}

// bwdStepT is the transpose backward-sweep task of block column k:
// solve L_Kᵀ and then undo σ_K (apply its swaps in reverse order). It
// touches the block rows of L̄'s column k — fwdStep's set, descending —
// so it runs on SolveFwd.Reversed().
func (f *Factorization) bwdStepT(k int, y []float64) {
	c := &f.cols[k]
	w := c.width
	lo, _ := f.S.Part.Range(k)
	yk := y[lo : lo+w]
	for t := c.diagIdx + 1; t < len(c.blockRows); t++ {
		i := c.blockRows[t]
		ilo, ihi := f.S.Part.Range(i)
		blas.Dgemv(true, ihi-ilo, w, -1, c.data[c.offsets[t]*w:], w, y[ilo:ihi], 1, yk)
	}
	diag := c.data[c.panelOffset()*w:]
	blas.Dtrsvt(true, true, w, diag, w, yk) // (unit lower L)ᵀ solve
	prows := f.panelRows[k]
	for lc := len(f.ipiv[k]) - 1; lc >= 0; lc-- {
		if r := f.ipiv[k][lc]; r != lc {
			y[prows[lc]], y[prows[r]] = y[prows[r]], y[prows[lc]]
		}
	}
}

// SolveRefined solves A·x = b and applies up to maxIter steps of
// iterative refinement, stopping once the scaled backward error drops
// below tol (tol ≤ 0 means machine-precision level, 1e-14). Returns the
// solution, the final backward error, and the refinement steps taken.
func (f *Factorization) SolveRefined(a *sparse.CSC, b []float64, maxIter int, tol float64) ([]float64, float64, int, error) {
	return f.SolveRefinedWith(a, b, maxIter, tol, nil)
}

// SolveRefinedWith is SolveRefined with an explicit per-call options
// override applied to the initial solve and every refinement solve
// (nil nopts is plain SolveRefined). A deadline in nopts bounds each
// triangular sweep individually, so a refinement loop under deadline
// pressure fails on its first over-budget sweep rather than at the
// iteration boundary.
func (f *Factorization) SolveRefinedWith(a *sparse.CSC, b []float64, maxIter int, tol float64, nopts *NumericOptions) ([]float64, float64, int, error) {
	if tol <= 0 {
		tol = 1e-14
	}
	x, err := f.SolveWith(b, nopts)
	if err != nil {
		return nil, 0, 0, err
	}
	berr := Residual(a, x, b)
	steps := 0
	r := make([]float64, len(b))
	for steps < maxIter && berr > tol {
		a.MulVec(x, r)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		dx, err := f.SolveWith(r, nopts)
		if err != nil {
			return nil, 0, 0, err
		}
		for i := range x {
			x[i] += dx[i]
		}
		newBerr := Residual(a, x, b)
		steps++
		if newBerr >= berr {
			break // no longer improving
		}
		berr = newBerr
	}
	return x, berr, steps, nil
}

// PivotGrowth returns max|Û| / max|A₂|, the classic stability indicator
// of the factorization (values near 1 are ideal; large values signal
// element growth).
func (f *Factorization) PivotGrowth(a *sparse.CSC) float64 {
	ap := f.S.PermuteInput(a)
	if f.rscale != nil {
		ap = applyScaling(ap, f.rscale, f.cscale)
	}
	maxA := ap.MaxAbs()
	if maxA == 0 {
		return 0
	}
	part := f.S.Part
	maxU := 0.0
	for k := range f.cols {
		c := &f.cols[k]
		w := c.width
		// U blocks above the diagonal block.
		for t := 0; t < c.diagIdx; t++ {
			i := c.blockRows[t]
			rows := part.Size(i)
			for r := 0; r < rows; r++ {
				for cc := 0; cc < w; cc++ {
					if v := math.Abs(c.data[(c.offsets[t]+r)*w+cc]); v > maxU {
						maxU = v
					}
				}
			}
		}
		// Upper triangle of the diagonal block.
		po := c.panelOffset()
		for r := 0; r < w; r++ {
			for cc := r; cc < w; cc++ {
				if v := math.Abs(c.data[(po+r)*w+cc]); v > maxU {
					maxU = v
				}
			}
		}
	}
	return maxU / maxA
}

// LogDet returns the sign and natural logarithm of |det A|. A zero sign
// indicates a singular factorization.
func (f *Factorization) LogDet() (sign float64, logAbs float64) {
	if f.Singular() {
		return 0, math.Inf(-1)
	}
	sign = 1
	// Row interchanges inside the panels.
	for k := range f.cols {
		for lc, r := range f.ipiv[k] {
			if r != lc {
				sign = -sign
			}
		}
	}
	// Permutation parities of the transversal and symmetric orderings.
	sign *= permSign(f.S.RowPerm)
	// The symmetric permutation is applied to both sides, so its parity
	// squared contributes +1.
	// Diagonal of Û.
	for k := range f.cols {
		c := &f.cols[k]
		w := c.width
		po := c.panelOffset()
		for r := 0; r < w; r++ {
			d := c.data[(po+r)*w+r]
			if d < 0 {
				sign = -sign
			} else if d == 0 {
				return 0, math.Inf(-1)
			}
			logAbs += math.Log(math.Abs(d))
		}
	}
	// Undo the equilibration: det(R·A₂·C) = det(A₂)·Πr·Πc with all
	// scales positive.
	if f.rscale != nil {
		for i := range f.rscale {
			logAbs -= math.Log(f.rscale[i]) + math.Log(f.cscale[i])
		}
	}
	return sign, logAbs
}

// permSign returns the parity (+1/−1) of a permutation.
func permSign(p sparse.Perm) float64 {
	seen := make([]bool, len(p))
	sign := 1.0
	for i := range p {
		if seen[i] {
			continue
		}
		length := 0
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			length++
		}
		if length%2 == 0 {
			sign = -sign
		}
	}
	return sign
}

// CondEstimate1 returns an estimate of the 1-norm condition number
// κ₁(A) = ‖A‖₁·‖A⁻¹‖₁ using the Hager/Higham power method on A⁻¹
// (at most five iterations, like LAPACK's xGECON).
func (f *Factorization) CondEstimate1(a *sparse.CSC) (float64, error) {
	if f.Singular() {
		return math.Inf(1), f.singularError()
	}
	n := f.S.N
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	est := 0.0
	for iter := 0; iter < 5; iter++ {
		y, err := f.Solve(x)
		if err != nil {
			return 0, err
		}
		newEst := 0.0
		for _, v := range y {
			newEst += math.Abs(v)
		}
		// ξ = sign(y)
		for i := range y {
			if y[i] >= 0 {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		z, err := f.SolveTranspose(y)
		if err != nil {
			return 0, err
		}
		// Find the index of the largest |z|.
		best, bi := -1.0, 0
		for i, v := range z {
			if av := math.Abs(v); av > best {
				best, bi = av, i
			}
		}
		if iter > 0 && (newEst <= est || best <= math.Abs(dot(z, x))) {
			est = math.Max(est, newEst)
			break
		}
		est = newEst
		for i := range x {
			x[i] = 0
		}
		x[bi] = 1
	}
	return a.Norm1() * est, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
