// Package luerr is the unified error taxonomy of the module: a small
// set of failure-class sentinels that every layer's structured errors
// resolve to under errors.Is, regardless of which solver produced them.
//
// The solvers keep their own sentinels and structured types —
// core.SingularError carries the failing column, sched.CancelError the
// execution progress, sched.TaskError the task notation — but each of
// those chains (via Unwrap or Is) to exactly one class here. Callers
// that need to triage a failure without knowing its origin (the solve
// service mapping errors to HTTP status codes, retry ladders deciding
// whether a rung is worth climbing) switch on the classes; callers that
// need the details keep using errors.As on the structured types.
//
// The classes, and the service's documented status mapping:
//
//	class         meaning                                  HTTP
//	ErrSingular   zero/inadmissible pivot (core and gplu)  422
//	ErrNonFinite  NaN/Inf entered the factors              422
//	ErrDeadline   a phase deadline expired                 504
//	ErrCanceled   caller or peer canceled the execution    499
//
// This package imports nothing from the module so that every layer —
// core, gplu, sched, the server — can depend on it without cycles.
package luerr

import "errors"

// Class sentinels. Match them with errors.Is; they are never returned
// bare — each solver wraps them under its own message via Tag.
var (
	// ErrSingular classifies numeric singularity: an exactly zero (or,
	// under static pivoting, inadmissibly tiny) pivot in any solver.
	ErrSingular = errors.New("sparselu: numerically singular")
	// ErrNonFinite classifies NaN/Inf contamination detected by the
	// kernels' guards.
	ErrNonFinite = errors.New("sparselu: non-finite value")
	// ErrDeadline classifies phase-deadline expiry (factorization or
	// solve timeouts).
	ErrDeadline = errors.New("sparselu: deadline exceeded")
	// ErrCanceled classifies executions stopped by an external
	// cancellation signal before completing.
	ErrCanceled = errors.New("sparselu: canceled")
)

// tagged is a named sentinel bound to its class: it compares equal to
// itself (the layer's historical identity checks keep working) and
// unwraps to the class, so errors.Is resolves both.
type tagged struct {
	msg   string
	class error
}

func (e *tagged) Error() string { return e.msg }

// Unwrap exposes the class to errors.Is.
func (e *tagged) Unwrap() error { return e.class }

// Tag builds a layer-local sentinel with the given message that also
// matches class under errors.Is. The layers declare their exported
// sentinels with it:
//
//	var ErrNonFinite = luerr.Tag("core: non-finite value in factorization", luerr.ErrNonFinite)
//
// so existing errors.Is(err, core.ErrNonFinite) checks and the class
// check errors.Is(err, luerr.ErrNonFinite) both hold on one chain.
func Tag(msg string, class error) error {
	return &tagged{msg: msg, class: class}
}
