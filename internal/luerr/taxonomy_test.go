package luerr_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gplu"
	"repro/internal/luerr"
	"repro/internal/sched"
)

// TestTaxonomyComposition pins the unified error taxonomy: every
// structured error of the numeric layers must resolve to exactly the
// right luerr class under errors.Is while keeping its layer-local
// sentinel and its errors.As identity. The solve service's status
// mapping is built on these compositions; if one of them breaks, a
// failure class silently turns into a 500.
func TestTaxonomyComposition(t *testing.T) {
	coreSing := error(&core.SingularError{Col: 7})
	gpluSing := error(&gplu.SingularError{Col: 3})
	nonFinite := fmt.Errorf("core: panel 4 entry (1,2) is NaN: %w", core.ErrNonFinite)
	taskNF := error(&sched.TaskError{ID: 9, Task: "U(3,7)", Err: nonFinite})
	deadline := error(&sched.CancelError{Cause: core.ErrDeadlineExceeded, Completed: 5, Total: 12})
	canceled := error(&sched.CancelError{Cause: nil})
	taskCancel := error(&sched.TaskError{ID: 2, Task: "F(2)", Err: deadline})

	cases := []struct {
		name   string
		err    error
		match  []error
		reject []error
	}{
		{
			name:  "core singular",
			err:   coreSing,
			match: []error{core.ErrNumericallySingular, luerr.ErrSingular},
			// Layer identity is preserved: a core singularity is not a
			// gplu one, only the shared class unifies them.
			reject: []error{gplu.ErrSingular, luerr.ErrNonFinite, luerr.ErrDeadline, luerr.ErrCanceled},
		},
		{
			name:   "gplu singular",
			err:    gpluSing,
			match:  []error{gplu.ErrSingular, luerr.ErrSingular},
			reject: []error{core.ErrNumericallySingular, luerr.ErrNonFinite},
		},
		{
			name:   "non-finite through TaskError",
			err:    taskNF,
			match:  []error{core.ErrNonFinite, luerr.ErrNonFinite},
			reject: []error{luerr.ErrSingular, luerr.ErrDeadline, luerr.ErrCanceled},
		},
		{
			name: "deadline through CancelError",
			err:  deadline,
			match: []error{
				sched.ErrCanceled, luerr.ErrCanceled,
				core.ErrDeadlineExceeded, luerr.ErrDeadline,
			},
			reject: []error{luerr.ErrSingular, luerr.ErrNonFinite},
		},
		{
			name:   "bare cancellation",
			err:    canceled,
			match:  []error{sched.ErrCanceled, luerr.ErrCanceled},
			reject: []error{luerr.ErrDeadline},
		},
		{
			name: "deadline cancel through TaskError",
			err:  taskCancel,
			match: []error{
				sched.ErrCanceled, luerr.ErrCanceled,
				core.ErrDeadlineExceeded, luerr.ErrDeadline,
			},
			reject: []error{luerr.ErrSingular},
		},
	}
	for _, tc := range cases {
		for _, target := range tc.match {
			if !errors.Is(tc.err, target) {
				t.Errorf("%s: errors.Is(err, %v) = false, want true", tc.name, target)
			}
		}
		for _, target := range tc.reject {
			if errors.Is(tc.err, target) {
				t.Errorf("%s: errors.Is(err, %v) = true, want false", tc.name, target)
			}
		}
	}

	// errors.As keeps the structured identities intact.
	var cs *core.SingularError
	if !errors.As(coreSing, &cs) || cs.Col != 7 {
		t.Errorf("errors.As(core.SingularError) failed: %v", coreSing)
	}
	var gs *gplu.SingularError
	if !errors.As(gpluSing, &gs) || gs.Col != 3 {
		t.Errorf("errors.As(gplu.SingularError) failed: %v", gpluSing)
	}
	var te *sched.TaskError
	if !errors.As(taskNF, &te) || te.ID != 9 {
		t.Errorf("errors.As(sched.TaskError) failed: %v", taskNF)
	}
	var ce *sched.CancelError
	if !errors.As(taskCancel, &ce) || ce.Completed != 5 {
		t.Errorf("errors.As(sched.CancelError) through TaskError failed: %v", taskCancel)
	}
}

// TestTaxonomyMessages pins the layer sentinels' messages: the tagging
// that binds them to their classes must not leak into what users see.
func TestTaxonomyMessages(t *testing.T) {
	for _, tc := range []struct{ got, want string }{
		{core.ErrNumericallySingular.Error(), "core: matrix is numerically singular"},
		{core.ErrNonFinite.Error(), "core: non-finite value in factorization"},
		{core.ErrDeadlineExceeded.Error(), "core: factorization deadline exceeded"},
		{gplu.ErrSingular.Error(), "gplu: matrix is numerically singular"},
		{sched.ErrCanceled.Error(), "sched: execution canceled"},
	} {
		if tc.got != tc.want {
			t.Errorf("sentinel message = %q, want %q", tc.got, tc.want)
		}
	}
}
