package ordering

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// grid2DPattern builds the symmetric 5-point Laplacian pattern of an
// nx×ny grid (including the diagonal).
func grid2DPattern(nx, ny int) *sparse.Pattern {
	n := nx * ny
	t := sparse.NewTriplet(n, n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			v := id(x, y)
			t.Add(v, v, 1)
			if x > 0 {
				t.Add(v, id(x-1, y), 1)
				t.Add(id(x-1, y), v, 1)
			}
			if y > 0 {
				t.Add(v, id(x, y-1), 1)
				t.Add(id(x, y-1), v, 1)
			}
		}
	}
	return sparse.PatternOf(t.ToCSC())
}

// symbolicCholeskyFill counts the nonzeros of the Cholesky factor of a
// symmetric pattern under permutation perm, by plain symbolic
// elimination (reference implementation, O(fill · deg)).
func symbolicCholeskyFill(g *sparse.Pattern, perm sparse.Perm) int {
	n := g.NCols
	inv := perm.Inverse()
	// adjacency under the new labels
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int]bool{}
	}
	for j := 0; j < n; j++ {
		for _, i := range g.Col(j) {
			if i != j {
				a, b := perm[i], perm[j]
				adj[a][b] = true
				adj[b][a] = true
			}
		}
	}
	_ = inv
	fill := n // diagonal
	for v := 0; v < n; v++ {
		// neighbours with higher elimination number
		var higher []int
		for u := range adj[v] {
			if u > v {
				higher = append(higher, u)
			}
		}
		fill += len(higher)
		for i := 0; i < len(higher); i++ {
			for k := i + 1; k < len(higher); k++ {
				a, b := higher[i], higher[k]
				adj[a][b] = true
				adj[b][a] = true
			}
		}
	}
	return fill
}

func TestMinimumDegreeValidPerm(t *testing.T) {
	g := grid2DPattern(7, 5)
	p := MinimumDegree(g)
	if err := sparse.CheckPerm(p, 35); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumDegreeReducesFillOnGrid(t *testing.T) {
	g := grid2DPattern(12, 12)
	n := 144
	natural := symbolicCholeskyFill(g, sparse.Identity(n))
	md := symbolicCholeskyFill(g, MinimumDegree(g))
	if md >= natural {
		t.Fatalf("minimum degree fill %d not below natural fill %d", md, natural)
	}
}

func TestMinimumDegreeStarGraph(t *testing.T) {
	// Star: center 0 connected to 1..6. MD must eliminate leaves first;
	// eliminating the center first would create a 6-clique.
	n := 7
	tr := sparse.NewTriplet(n, n)
	for v := 0; v < n; v++ {
		tr.Add(v, v, 1)
	}
	for v := 1; v < n; v++ {
		tr.Add(0, v, 1)
		tr.Add(v, 0, 1)
	}
	g := sparse.PatternOf(tr.ToCSC())
	p := MinimumDegree(g)
	// Once only the center and one leaf remain they tie at degree 1, so
	// the center may be eliminated at position n-2 or n-1.
	if p[0] < n-2 {
		t.Fatalf("center eliminated at position %d, want ≥ %d", p[0], n-2)
	}
	if fill := symbolicCholeskyFill(g, p); fill != 2*n-1 {
		t.Fatalf("star fill = %d, want %d (no fill-in)", fill, 2*n-1)
	}
}

func TestMinimumDegreePathNoFill(t *testing.T) {
	// A path graph is chordal; MD should find a no-fill ordering.
	n := 20
	tr := sparse.NewTriplet(n, n)
	for v := 0; v < n; v++ {
		tr.Add(v, v, 1)
		if v > 0 {
			tr.Add(v, v-1, 1)
			tr.Add(v-1, v, 1)
		}
	}
	g := sparse.PatternOf(tr.ToCSC())
	p := MinimumDegree(g)
	if fill := symbolicCholeskyFill(g, p); fill != 2*n-1 {
		t.Fatalf("path fill = %d, want %d", fill, 2*n-1)
	}
}

func TestMinimumDegreeEmptyAndSingleton(t *testing.T) {
	if p := MinimumDegree(&sparse.Pattern{ColPtr: []int{0}}); len(p) != 0 {
		t.Fatal("empty pattern should give empty perm")
	}
	tr := sparse.NewTriplet(1, 1)
	tr.Add(0, 0, 1)
	p := MinimumDegree(sparse.PatternOf(tr.ToCSC()))
	if len(p) != 1 || p[0] != 0 {
		t.Fatalf("singleton perm = %v", p)
	}
}

func TestMinimumDegreeDisconnected(t *testing.T) {
	// Two disjoint triangles.
	n := 6
	tr := sparse.NewTriplet(n, n)
	addTri := func(a, b, c int) {
		for _, v := range []int{a, b, c} {
			tr.Add(v, v, 1)
		}
		for _, e := range [][2]int{{a, b}, {b, c}, {a, c}} {
			tr.Add(e[0], e[1], 1)
			tr.Add(e[1], e[0], 1)
		}
	}
	addTri(0, 1, 2)
	addTri(3, 4, 5)
	p := MinimumDegree(sparse.PatternOf(tr.ToCSC()))
	if err := sparse.CheckPerm(p, n); err != nil {
		t.Fatal(err)
	}
}

func TestRCMValidAndReducesBandwidth(t *testing.T) {
	g := grid2DPattern(10, 10)
	n := 100
	// Scramble first so the natural band is destroyed.
	rng := rand.New(rand.NewSource(41))
	scramble := sparse.RandomPerm(n, rng)
	scrambled := sparse.PatternOf(g.ToCSC(1).PermuteSym(scramble))

	bandwidth := func(g *sparse.Pattern, p sparse.Perm) int {
		bw := 0
		for j := 0; j < g.NCols; j++ {
			for _, i := range g.Col(j) {
				d := p[i] - p[j]
				if d < 0 {
					d = -d
				}
				if d > bw {
					bw = d
				}
			}
		}
		return bw
	}
	p := ReverseCuthillMcKee(scrambled)
	if err := sparse.CheckPerm(p, n); err != nil {
		t.Fatal(err)
	}
	before := bandwidth(scrambled, sparse.Identity(n))
	after := bandwidth(scrambled, p)
	if after >= before {
		t.Fatalf("RCM bandwidth %d not below scrambled bandwidth %d", after, before)
	}
}

func TestColumnOrderingMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 15
	tr := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 1)
		for k := 0; k < 3; k++ {
			tr.Add(rng.Intn(n), rng.Intn(n), 1)
		}
	}
	a := tr.ToCSC()
	for _, m := range []Method{Natural, MinDegreeATA, RCMATA} {
		p := ColumnOrdering(a, m)
		if err := sparse.CheckPerm(p, n); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
	if ColumnOrdering(a, Natural)[3] != 3 {
		t.Fatal("natural ordering should be identity")
	}
}

func TestMethodString(t *testing.T) {
	if Natural.String() == "" || MinDegreeATA.String() == "" || RCMATA.String() == "" {
		t.Fatal("empty method name")
	}
	if Method(99).String() != "unknown" {
		t.Fatal("unknown method name")
	}
}

// Property: MD always yields a valid permutation and never produces more
// fill than the natural order by more than the trivial bound (sanity: it
// is a heuristic, but on random sparse symmetric patterns it should be
// valid and complete).
func TestQuickMinimumDegreeValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		tr := sparse.NewTriplet(n, n)
		for v := 0; v < n; v++ {
			tr.Add(v, v, 1)
		}
		for e := 0; e < 3*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			tr.Add(i, j, 1)
			tr.Add(j, i, 1)
		}
		p := MinimumDegree(sparse.PatternOf(tr.ToCSC()))
		return sparse.CheckPerm(p, n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
