// Package ordering provides fill-reducing column orderings for sparse LU.
// The paper's pipeline step (1) applies the minimum degree algorithm to
// the pattern of AᵀA; RCM and the natural ordering are provided as
// ablation baselines.
package ordering

import (
	"repro/internal/sparse"
)

// MinimumDegree orders the vertices of a symmetric sparsity pattern g
// (given as the structure of a symmetric matrix, diagonal ignored) by the
// minimum-degree heuristic using a quotient-graph representation with
// element absorption and exact external degrees. It returns a
// permutation in scatter convention: perm[old] = new elimination
// position.
func MinimumDegree(g *sparse.Pattern) sparse.Perm {
	if g.NRows != g.NCols {
		panic("ordering: MinimumDegree needs a square (symmetric) pattern")
	}
	n := g.NCols
	if n == 0 {
		return sparse.Perm{}
	}

	// Variable adjacency (dynamic), element boundaries, and the element
	// lists of each variable.
	adj := make([][]int32, n)
	for j := 0; j < n; j++ {
		col := g.Col(j)
		lst := make([]int32, 0, len(col))
		for _, i := range col {
			if i != j {
				lst = append(lst, int32(i))
			}
		}
		adj[j] = lst
	}
	elems := make([][]int32, 0, n) // element id -> boundary variables
	velems := make([][]int32, n)   // variable -> incident element ids
	alive := make([]bool, n)
	elemAlive := make([]bool, 0, n)
	for i := range alive {
		alive[i] = true
	}

	// Degree buckets: doubly-linked lists threaded through next/prev.
	deg := make([]int, n)
	head := make([]int, n+1)
	next := make([]int, n)
	prev := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	insert := func(v int) {
		d := deg[v]
		next[v] = head[d]
		prev[v] = -1
		if head[d] != -1 {
			prev[head[d]] = v
		}
		head[d] = v
	}
	remove := func(v int) {
		d := deg[v]
		if prev[v] != -1 {
			next[prev[v]] = next[v]
		} else {
			head[d] = next[v]
		}
		if next[v] != -1 {
			prev[next[v]] = prev[v]
		}
	}
	for v := 0; v < n; v++ {
		deg[v] = len(adj[v])
		insert(v)
	}

	marker := make([]int, n)
	for i := range marker {
		marker[i] = -1
	}
	stamp := 0
	perm := make(sparse.Perm, n)
	minDeg := 0

	scratch := make([]int32, 0, n)

	for k := 0; k < n; k++ {
		// Find the lowest non-empty bucket.
		for minDeg <= n && (minDeg >= len(head) || head[minDeg] == -1) {
			minDeg++
		}
		if minDeg > n {
			panic("ordering: empty degree structure before completion")
		}
		v := head[minDeg]
		remove(v)
		alive[v] = false
		perm[v] = k

		// Le = (adj[v] ∪ ⋃ boundaries of v's elements) \ dead.
		stamp++
		le := scratch[:0]
		marker[v] = stamp
		for _, u := range adj[v] {
			if alive[u] && marker[u] != stamp {
				marker[u] = stamp
				le = append(le, u)
			}
		}
		for _, e := range velems[v] {
			if !elemAlive[e] {
				continue
			}
			for _, u := range elems[e] {
				if alive[u] && marker[u] != stamp {
					marker[u] = stamp
					le = append(le, u)
				}
			}
			elemAlive[e] = false // absorbed into the new element
			elems[e] = nil
		}
		if len(le) == 0 {
			scratch = le
			continue
		}
		eid := int32(len(elems))
		boundary := append([]int32(nil), le...)
		elems = append(elems, boundary)
		elemAlive = append(elemAlive, true)

		// Absorbed element ids of v, for pruning from neighbours.
		stampAbs := make(map[int32]bool, len(velems[v]))
		for _, e := range velems[v] {
			stampAbs[e] = true
		}

		for _, u := range le {
			ui := int(u)
			// Prune adj[u]: drop v, dead vars, and members of Le (now
			// covered by the element).
			w := adj[ui][:0]
			for _, x := range adj[ui] {
				if x != int32(v) && alive[x] && marker[x] != stamp {
					w = append(w, x)
				}
			}
			adj[ui] = w
			// Replace absorbed elements with the new one.
			we := velems[ui][:0]
			for _, e := range velems[ui] {
				if elemAlive[e] && !stampAbs[e] {
					we = append(we, e)
				}
			}
			velems[ui] = append(we, eid)
		}

		// Recompute exact external degrees of the boundary variables.
		for _, u := range le {
			ui := int(u)
			stamp++
			marker[ui] = stamp
			d := 0
			for _, x := range adj[ui] {
				if alive[x] && marker[x] != stamp {
					marker[x] = stamp
					d++
				}
			}
			for _, e := range velems[ui] {
				for _, x := range elems[e] {
					if alive[x] && marker[x] != stamp {
						marker[x] = stamp
						d++
					}
				}
			}
			remove(ui)
			deg[ui] = d
			insert(ui)
			if d < minDeg {
				minDeg = d
			}
		}
		scratch = le[:0]
	}
	return perm
}
