package ordering

import (
	"sort"

	"repro/internal/sparse"
)

// ReverseCuthillMcKee computes the reverse Cuthill–McKee ordering of a
// symmetric pattern: a bandwidth-reducing ordering used as an ablation
// baseline against minimum degree. Returns perm[old] = new.
func ReverseCuthillMcKee(g *sparse.Pattern) sparse.Perm {
	if g.NRows != g.NCols {
		panic("ordering: RCM needs a square (symmetric) pattern")
	}
	n := g.NCols
	degree := make([]int, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Col(v) {
			if u != v {
				degree[v]++
			}
		}
	}
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)

	// Process every connected component, starting from a pseudo-
	// peripheral-ish vertex: the unvisited vertex of minimum degree.
	for len(order) < n {
		start, best := -1, n+1
		for v := 0; v < n; v++ {
			if !visited[v] && degree[v] < best {
				start, best = v, degree[v]
			}
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbrs := make([]int, 0, degree[v])
			for _, u := range g.Col(v) {
				if u != v && !visited[u] {
					visited[u] = true
					nbrs = append(nbrs, u)
				}
			}
			sort.Slice(nbrs, func(a, b int) bool { return degree[nbrs[a]] < degree[nbrs[b]] })
			queue = append(queue, nbrs...)
		}
	}
	// Reverse, then convert order (new -> old) to scatter perm.
	perm := make(sparse.Perm, n)
	for newPos, old := range order {
		perm[old] = n - 1 - newPos
	}
	return perm
}

// Method selects a fill-reducing ordering strategy.
type Method int

const (
	// Natural keeps the input ordering.
	Natural Method = iota
	// MinDegreeATA runs minimum degree on the pattern of AᵀA (the
	// paper's choice).
	MinDegreeATA
	// RCMATA runs reverse Cuthill–McKee on the pattern of AᵀA.
	RCMATA
)

// String names the ordering method.
func (m Method) String() string {
	switch m {
	case Natural:
		return "natural"
	case MinDegreeATA:
		return "mindeg(AᵀA)"
	case RCMATA:
		return "rcm(AᵀA)"
	}
	return "unknown"
}

// ColumnOrdering computes the fill-reducing column permutation of a
// square matrix a according to the chosen method. The same permutation
// is meant to be applied to both rows and columns after the transversal
// (so the zero-free diagonal is preserved).
func ColumnOrdering(a *sparse.CSC, m Method) sparse.Perm {
	switch m {
	case Natural:
		return sparse.Identity(a.NCols)
	case MinDegreeATA:
		return MinimumDegree(sparse.ATAPattern(a))
	case RCMATA:
		return ReverseCuthillMcKee(sparse.ATAPattern(a))
	}
	panic("ordering: unknown method")
}
