package ordering

import (
	"fmt"
	"testing"
)

func BenchmarkMinimumDegree(b *testing.B) {
	for _, side := range []int{16, 32, 48} {
		g := grid2DPattern(side, side)
		b.Run(fmt.Sprintf("grid%dx%d", side, side), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MinimumDegree(g)
			}
		})
	}
}

func BenchmarkReverseCuthillMcKee(b *testing.B) {
	g := grid2DPattern(48, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReverseCuthillMcKee(g)
	}
}
