package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// diamond is the 4-task DAG 0 → {1, 2} → 3.
func diamond() [][]int32 {
	return [][]int32{{1, 2}, {3}, {3}, nil}
}

func TestRecorderCollectsAndMerges(t *testing.T) {
	r := New(2)
	if r.Workers() != 2 {
		t.Fatalf("Workers() = %d", r.Workers())
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				start := r.Now()
				r.Record(w, w*3+i, KindUpdate, w, start)
			}
		}(w)
	}
	wg.Wait()
	events := r.Events()
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	for i, e := range events {
		if e.End < e.Start {
			t.Fatalf("event %d ends before it starts", i)
		}
		if i > 0 && e.Start < events[i-1].Start {
			t.Fatalf("events not sorted by start at %d", i)
		}
	}
	r.Reset()
	if n := len(r.Events()); n != 0 {
		t.Fatalf("Reset left %d events", n)
	}
}

func TestRecorderRejectsBadWorker(t *testing.T) {
	r := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range worker id not rejected")
		}
	}()
	r.Record(3, 0, KindFactor, 0, 0)
}

func TestSummarize(t *testing.T) {
	// Hand-built schedule on 2 workers over a window of 100 ns:
	//   worker 0: [0,40) factor, [60,100) update  -> busy 80
	//   worker 1: [10,40) update                  -> busy 30
	events := []Event{
		{Start: 0, End: 40, Task: 0, Worker: 0, Kind: KindFactor},
		{Start: 10, End: 40, Task: 1, Worker: 1, Kind: KindUpdate},
		{Start: 60, End: 100, Task: 2, Worker: 0, Kind: KindUpdate},
	}
	s := Summarize(events, 2)
	if s.Makespan != 100 {
		t.Fatalf("makespan = %d, want 100", s.Makespan)
	}
	if s.TotalBusy != 110 {
		t.Fatalf("total busy = %d, want 110", s.TotalBusy)
	}
	if s.Parallelism != 1.1 {
		t.Fatalf("parallelism = %g, want 1.1", s.Parallelism)
	}
	w0, w1 := s.WorkerStats[0], s.WorkerStats[1]
	if w0.Busy != 80 || w0.Idle != 20 || w0.LongestIdle != 20 {
		t.Fatalf("worker 0 stats = %+v", w0)
	}
	if w1.Busy != 30 || w1.Idle != 70 || w1.LongestIdle != 60 {
		t.Fatalf("worker 1 stats = %+v", w1)
	}
	if w0.Utilization != 0.8 || w1.Utilization != 0.3 {
		t.Fatalf("utilization = %g, %g", w0.Utilization, w1.Utilization)
	}
	if len(s.KindStats) != 2 {
		t.Fatalf("kind stats = %+v", s.KindStats)
	}
	for _, ks := range s.KindStats {
		switch ks.Kind {
		case KindFactor:
			if ks.Count != 1 || ks.Total != 40 || ks.Min != 40 || ks.Max != 40 {
				t.Fatalf("factor stats = %+v", ks)
			}
		case KindUpdate:
			if ks.Count != 2 || ks.Total != 70 || ks.Min != 30 || ks.Max != 40 {
				t.Fatalf("update stats = %+v", ks)
			}
		}
	}
	// Histogram: 40 ns lands in bucket 5 ([32,64)), 30 in bucket 4.
	for _, ks := range s.KindStats {
		if ks.Kind == KindUpdate {
			if ks.Hist[5] != 1 || ks.Hist[4] != 1 {
				t.Fatalf("update histogram = %v", ks.Hist)
			}
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 3)
	if s.Makespan != 0 || s.Parallelism != 0 || len(s.WorkerStats) != 3 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestRealizedCriticalPath(t *testing.T) {
	succ := diamond()
	events := []Event{
		{Start: 0, End: 10, Task: 0, Worker: 0},
		{Start: 10, End: 15, Task: 1, Worker: 0},
		{Start: 10, End: 40, Task: 2, Worker: 1},
		{Start: 40, End: 47, Task: 3, Worker: 0},
	}
	cp, path, err := RealizedCriticalPath(events, succ)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 47 { // 10 + 30 + 7 through 0 → 2 → 3
		t.Fatalf("realized critical path = %d, want 47", cp)
	}
	want := []int32{0, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// A scale event (Task = NoTask) must be ignored.
	events = append(events, Event{Start: 0, End: 1000, Task: NoTask, Kind: KindScale})
	cp2, _, err := RealizedCriticalPath(events, succ)
	if err != nil || cp2 != cp {
		t.Fatalf("NoTask event changed the critical path: %d, %v", cp2, err)
	}
}

func TestRealizedCriticalPathCycle(t *testing.T) {
	if _, _, err := RealizedCriticalPath(nil, [][]int32{{1}, {0}}); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestWorkerSequencesAndUnitMakespan(t *testing.T) {
	succ := diamond()
	events := []Event{
		{Start: 0, End: 10, Task: 0, Worker: 0},
		{Start: 5, End: 6, Task: NoTask, Worker: 1, Kind: KindScale},
		{Start: 10, End: 15, Task: 1, Worker: 0},
		{Start: 10, End: 40, Task: 2, Worker: 1},
		{Start: 40, End: 47, Task: 3, Worker: 0},
	}
	seqs := WorkerSequences(events, 2)
	if len(seqs[0]) != 3 || len(seqs[1]) != 1 {
		t.Fatalf("sequences = %v", seqs)
	}
	mk, err := UnitMakespan(seqs, succ)
	if err != nil {
		t.Fatal(err)
	}
	// 0 at [0,1); 1 and 2 at [1,2); 3 at [2,3).
	if mk != 3 {
		t.Fatalf("unit makespan = %d, want 3", mk)
	}
	// Serial schedule: all four tasks on one worker.
	mk1, err := UnitMakespan([][]int32{{0, 1, 2, 3}}, succ)
	if err != nil || mk1 != 4 {
		t.Fatalf("serial unit makespan = %d (%v), want 4", mk1, err)
	}
}

func TestUnitMakespanRejectsBadSchedules(t *testing.T) {
	succ := diamond()
	if _, err := UnitMakespan([][]int32{{0, 1, 2}}, succ); err == nil {
		t.Fatal("missing task not rejected")
	}
	if _, err := UnitMakespan([][]int32{{0, 1, 2, 3, 3}}, succ); err == nil {
		t.Fatal("duplicate task not rejected")
	}
	// 3 before its predecessors on the only worker: in-order execution
	// deadlocks.
	if _, err := UnitMakespan([][]int32{{3, 0, 1, 2}}, succ); err == nil {
		t.Fatal("deadlocking schedule not rejected")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := []Event{
		{Start: 0, End: 1500, Task: 0, Col: 0, Worker: 0, Kind: KindFactor},
		{Start: 1500, End: 2500, Task: 1, Col: 2, Worker: 1, Kind: KindUpdate},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, 2, nil); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v", err)
	}
	// 1 process_name + 2 thread_name metadata + 2 task events.
	if len(out.TraceEvents) != 5 {
		t.Fatalf("got %d trace events, want 5", len(out.TraceEvents))
	}
	var tasks int
	for _, e := range out.TraceEvents {
		switch e["ph"] {
		case "X":
			tasks++
			if e["ts"].(float64) < 0 || e["dur"].(float64) <= 0 {
				t.Fatalf("bad complete event: %v", e)
			}
		case "M":
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if tasks != 2 {
		t.Fatalf("got %d complete events, want 2", tasks)
	}
}
