package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// The Chrome trace_event format (the JSON consumed by chrome://tracing
// and ui.perfetto.dev): an object with a traceEvents array of complete
// events, one per recorded task, with microsecond timestamps. Workers
// map to threads of a single "sparselu" process so the timeline shows
// one swimlane per worker.

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the events as Chrome trace_event JSON. name
// labels each event; a nil name falls back to "kind(task)". The output
// loads directly into chrome://tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, events []Event, workers int, name func(e Event) string) error {
	if name == nil {
		name = func(e Event) string {
			if e.Task == NoTask {
				return e.Kind.String()
			}
			return fmt.Sprintf("%s(%d)", e.Kind, e.Task)
		}
	}
	out := chromeTrace{DisplayTimeUnit: "ns"}
	out.TraceEvents = make([]chromeEvent, 0, len(events)+workers+1)
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "sparselu"},
	})
	for wkr := 0; wkr < workers; wkr++ {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: wkr,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", wkr)},
		})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: name(e),
			Cat:  e.Kind.String(),
			Ph:   "X",
			Ts:   float64(e.Start) / 1e3,
			Dur:  float64(e.Duration()) / 1e3,
			Pid:  0,
			Tid:  int(e.Worker),
			Args: map[string]any{"task": e.Task, "col": e.Col},
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
