// Package trace is the observability layer of the parallel numeric
// phase: a low-overhead per-task event recorder plus the analysis
// passes (realized critical path, per-worker utilization, per-kind
// histograms) and a Chrome trace_event exporter that every scheduling
// experiment builds on.
//
// The recorder is designed for the executor hot path:
//
//   - one append-only event buffer per worker, padded against false
//     sharing, so recording never takes a lock;
//   - timestamps are nanoseconds on the monotonic clock relative to the
//     recorder's creation (a single time.Since call per edge);
//   - a nil *Recorder costs exactly one predictable branch per task in
//     the executors, so production runs pay nothing measurable.
//
// Recording is racy by design across workers (each worker owns its
// buffer); Events must only be called after the execution has finished,
// i.e. after the executor's WaitGroup has completed, which establishes
// the necessary happens-before edge.
//
// All timing of the numeric phase is centralized here: the lucheck rule
// worker-timing forbids direct time.Now calls inside the sched worker
// loops, so traces stay the single source of truth for task times.
package trace

import (
	"sort"
	"time"
)

// Kind classifies a recorded task.
type Kind uint8

const (
	// KindFactor is a panel factorization task F(k).
	KindFactor Kind = iota
	// KindUpdate is a block-column update task U(k, j).
	KindUpdate
	// KindScale is a pre-factorization scaling pass (equilibration).
	KindScale
	// KindAbort marks the instant a worker published a task failure and
	// tripped the execution's cancel flag. It carries the failing task's
	// id and column; its duration is zero.
	KindAbort
	// KindSolveL is one forward-sweep task of the triangular solves —
	// the L̄ sweep of Solve/SolveMany or the L̄ᵀ sweep of
	// SolveTranspose. It carries the block column in Col; Task is
	// NoTask (solve tasks are not part of the factorization graph).
	KindSolveL
	// KindSolveU is one backward-sweep solve task — the Ū sweep, or
	// the Ûᵀ sweep of SolveTranspose.
	KindSolveU
	// KindSteal is one successful steal of the work-stealing executor:
	// the span from the moment a worker's own deque came up empty to the
	// moment it obtained a task from a victim. Task is NoTask; Col
	// carries the victim worker's id. Recorded only when the recorder
	// has scheduler events enabled (SetSchedEvents).
	KindSteal
	// KindIdle is one parked span of the work-stealing executor: the
	// worker found every deque empty and slept until it was woken. Task
	// is NoTask, Col is -1. Recorded only when scheduler events are
	// enabled.
	KindIdle
	// numKinds bounds the Kind enumeration for per-kind aggregation.
	numKinds
)

// IsSched reports whether the kind is a scheduler event (steal or idle
// span) rather than executed work: scheduler events are excluded from
// busy time and utilization in Summarize.
func (k Kind) IsSched() bool { return k == KindSteal || k == KindIdle }

// String names the kind for exports and summaries.
func (k Kind) String() string {
	switch k {
	case KindFactor:
		return "factor"
	case KindUpdate:
		return "update"
	case KindScale:
		return "scale"
	case KindAbort:
		return "abort"
	case KindSolveL:
		return "solveL"
	case KindSolveU:
		return "solveU"
	case KindSteal:
		return "steal"
	case KindIdle:
		return "idle"
	}
	return "unknown"
}

// NoTask is the Task id of events that do not correspond to a task of
// the dependence graph (e.g. the equilibration scale pass).
const NoTask = -1

// Event is one recorded task execution. Start and End are nanoseconds
// since the recorder's creation.
type Event struct {
	Start  int64
	End    int64
	Task   int32 // task id in the dependence graph, or NoTask
	Col    int32 // destination block column, or -1
	Worker int32
	Kind   Kind
}

// Duration returns the event's span in nanoseconds.
func (e Event) Duration() int64 { return e.End - e.Start }

// workerBuf is one worker's private append-only buffer. The padding
// keeps two workers' slice headers on different cache lines so the
// hot-path appends do not ping-pong a line between cores.
type workerBuf struct {
	events []Event
	_      [104]byte
}

// Recorder collects execution events from a fixed set of workers.
type Recorder struct {
	epoch       time.Time
	schedEvents bool
	bufs        []workerBuf
}

// New returns a recorder for the given number of workers (values below
// 1 mean 1). Each worker gets its own buffer; worker ids passed to
// Record must be in [0, workers).
func New(workers int) *Recorder {
	if workers < 1 {
		workers = 1
	}
	return &Recorder{epoch: time.Now(), bufs: make([]workerBuf, workers)}
}

// Workers returns the number of per-worker buffers.
func (r *Recorder) Workers() int { return len(r.bufs) }

// SetSchedEvents enables or disables scheduler-event recording (steal
// and idle spans, KindSteal/KindIdle). It defaults to off so a plain
// traced run records exactly one event per task; turning it on makes
// the executor's search time visible in Chrome traces. Must not be
// called concurrently with a traced execution.
func (r *Recorder) SetSchedEvents(on bool) { r.schedEvents = on }

// SchedEvents reports whether scheduler-event recording is enabled.
func (r *Recorder) SchedEvents() bool { return r.schedEvents }

// Now returns the current trace clock in nanoseconds since the
// recorder was created. It reads the monotonic clock.
func (r *Recorder) Now() int64 { return int64(time.Since(r.epoch)) }

// Record appends one event to worker's buffer, stamping the end time
// with the trace clock. It returns the stamped end so an executor that
// immediately continues with another task can start that task's span
// here — charging the hand-over bookkeeping between the two to the
// next span instead of leaving a clock-read-sized hole between them.
// It takes no locks; a worker id outside the recorder's range is a
// programming error and panics.
func (r *Recorder) Record(worker, task int, kind Kind, col int, start int64) int64 {
	if worker < 0 || worker >= len(r.bufs) {
		panic("trace: worker id outside the recorder's range")
	}
	end := r.Now()
	b := &r.bufs[worker]
	b.events = append(b.events, Event{
		Start:  start,
		End:    end,
		Task:   int32(task),
		Col:    int32(col),
		Worker: int32(worker),
		Kind:   kind,
	})
	return end
}

// Reset drops all recorded events, keeping the buffers' capacity and
// the epoch. Must not race with Record.
func (r *Recorder) Reset() {
	for i := range r.bufs {
		r.bufs[i].events = r.bufs[i].events[:0]
	}
}

// Events merges the per-worker buffers into one slice sorted by start
// time (ties by worker, then task). It must only be called after the
// traced execution has finished.
func (r *Recorder) Events() []Event {
	total := 0
	for i := range r.bufs {
		total += len(r.bufs[i].events)
	}
	out := make([]Event, 0, total)
	for i := range r.bufs {
		out = append(out, r.bufs[i].events...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.Task < b.Task
	})
	return out
}

// Stopwatch is the sanctioned wall-clock access for coarse phase
// timing outside the recorder (analysis stage durations): the
// determinism-contract packages must not read time.Now directly, and a
// duration that only feeds timing statistics — never an ordered
// structure — belongs here with the rest of the observability clock.
type Stopwatch struct {
	start time.Time
}

// NewStopwatch starts measuring.
func NewStopwatch() Stopwatch { return Stopwatch{start: time.Now()} }

// Seconds returns the monotonic-clock seconds since the stopwatch
// started.
func (s Stopwatch) Seconds() float64 { return time.Since(s.start).Seconds() }
