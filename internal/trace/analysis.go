package trace

import (
	"fmt"
	"math/bits"
)

// HistBuckets is the number of log2 duration buckets of a KindStat:
// bucket b counts events with duration in [2^b, 2^(b+1)) nanoseconds
// (bucket 0 also collects sub-nanosecond durations).
const HistBuckets = 32

// WorkerStat aggregates one worker's activity over the trace window.
// Scheduler events (KindSteal, KindIdle) are not work: they contribute
// to Steals/SchedNs only, never to Tasks, Busy or Utilization.
type WorkerStat struct {
	Worker int
	// Tasks is the number of work events the worker executed.
	Tasks int
	// Busy is the summed work-event duration in nanoseconds.
	Busy int64
	// Idle is the trace window minus Busy.
	Idle int64
	// LongestIdle is the longest single gap (ns) with no work event
	// running on this worker, including the spans before its first and
	// after its last event.
	LongestIdle int64
	// Utilization is Busy divided by the trace makespan (0 when the
	// makespan is zero).
	Utilization float64
	// Steals counts the worker's successful steals (KindSteal events;
	// zero unless the recorder had scheduler events enabled).
	Steals int
	// SchedNs is the summed duration of the worker's scheduler events —
	// time spent searching for work or parked (zero unless scheduler
	// events were enabled).
	SchedNs int64
}

// KindStat aggregates the events of one task kind.
type KindStat struct {
	Kind  Kind
	Count int
	// Total, Min and Max are durations in nanoseconds.
	Total, Min, Max int64
	// Hist is the log2 duration histogram (see HistBuckets).
	Hist [HistBuckets]int
}

// Summary is the realized-schedule report of one traced execution.
type Summary struct {
	// Events is the number of recorded events.
	Events int
	// Workers is the number of workers the summary was computed for.
	Workers int
	// Makespan is the trace window in nanoseconds: latest End minus
	// earliest Start.
	Makespan int64
	// TotalBusy is the summed duration of all events.
	TotalBusy int64
	// Parallelism is TotalBusy / Makespan — the realized speedup over a
	// serial execution of the same tasks (the speedup-vs-serial of an
	// ideal serial run with identical per-task times).
	Parallelism float64
	// WorkerStats has one entry per worker.
	WorkerStats []WorkerStat
	// KindStats has one entry per kind that occurred, in Kind order.
	KindStats []KindStat
}

// Summarize computes per-worker utilization/idle spans and per-kind
// time histograms over the merged events of a run on the given number
// of workers.
func Summarize(events []Event, workers int) *Summary {
	if workers < 1 {
		workers = 1
	}
	s := &Summary{Events: len(events), Workers: workers}
	if len(events) == 0 {
		s.WorkerStats = make([]WorkerStat, workers)
		for w := range s.WorkerStats {
			s.WorkerStats[w].Worker = w
		}
		return s
	}
	// The trace window spans the work events only: a parked worker's
	// idle span is woken by the termination broadcast, so letting
	// scheduler events stretch the window would charge the engine's own
	// shutdown against utilization.
	start, end := int64(0), int64(0)
	windowSet := false
	for _, e := range events {
		if e.Kind.IsSched() {
			continue
		}
		if !windowSet || e.Start < start {
			start = e.Start
		}
		if !windowSet || e.End > end {
			end = e.End
		}
		windowSet = true
	}
	if !windowSet { // degenerate: only scheduler events recorded
		start, end = events[0].Start, events[0].End
		for _, e := range events {
			if e.Start < start {
				start = e.Start
			}
			if e.End > end {
				end = e.End
			}
		}
	}
	s.Makespan = end - start

	perWorker := make([][]Event, workers)
	kinds := make([]KindStat, numKinds)
	for k := range kinds {
		kinds[k].Kind = Kind(k)
	}
	for _, e := range events {
		if int(e.Worker) >= 0 && int(e.Worker) < workers {
			perWorker[e.Worker] = append(perWorker[e.Worker], e)
		}
		if !e.Kind.IsSched() {
			s.TotalBusy += e.Duration()
		}
		if int(e.Kind) < len(kinds) {
			ks := &kinds[e.Kind]
			d := e.Duration()
			if ks.Count == 0 || d < ks.Min {
				ks.Min = d
			}
			if d > ks.Max {
				ks.Max = d
			}
			ks.Count++
			ks.Total += d
			ks.Hist[histBucket(d)]++
		}
	}
	if s.Makespan > 0 {
		s.Parallelism = float64(s.TotalBusy) / float64(s.Makespan)
	}

	s.WorkerStats = make([]WorkerStat, workers)
	for w, evs := range perWorker {
		ws := &s.WorkerStats[w]
		ws.Worker = w
		cursor := start // end of the last busy span seen so far
		for _, e := range evs {
			if e.Kind.IsSched() {
				if e.Kind == KindSteal {
					ws.Steals++
				}
				ws.SchedNs += e.Duration()
				continue
			}
			ws.Tasks++
			ws.Busy += e.Duration()
			if gap := e.Start - cursor; gap > ws.LongestIdle {
				ws.LongestIdle = gap
			}
			if e.End > cursor {
				cursor = e.End
			}
		}
		if gap := end - cursor; gap > ws.LongestIdle {
			ws.LongestIdle = gap
		}
		ws.Idle = s.Makespan - ws.Busy
		if s.Makespan > 0 {
			ws.Utilization = float64(ws.Busy) / float64(s.Makespan)
		}
	}
	for _, ks := range kinds {
		if ks.Count > 0 {
			s.KindStats = append(s.KindStats, ks)
		}
	}
	return s
}

// histBucket maps a duration in nanoseconds to its log2 bucket.
func histBucket(d int64) int {
	if d <= 1 {
		return 0
	}
	b := bits.Len64(uint64(d)) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// RealizedCriticalPath computes the longest dependence-weighted path
// through an executed schedule: the chain of tasks, linked by edges of
// the dependence graph succ, whose summed *realized* durations is
// maximal. It returns the path length in nanoseconds and the task ids
// along one such path in execution order (ties broken toward smaller
// task ids, deterministically). Events whose Task is NoTask or outside
// the graph are ignored; tasks with no recorded event weigh zero.
func RealizedCriticalPath(events []Event, succ [][]int32) (int64, []int32, error) {
	nt := len(succ)
	dur := make([]int64, nt)
	for _, e := range events {
		if e.Task >= 0 && int(e.Task) < nt {
			dur[e.Task] += e.Duration()
		}
	}
	order, err := topoOrder(succ)
	if err != nil {
		return 0, nil, err
	}
	finish := make([]int64, nt)
	pred := make([]int32, nt)
	for i := range pred {
		pred[i] = -1
	}
	var best int64
	bestID := int32(-1)
	for _, id := range order {
		f := finish[id] + dur[id]
		finish[id] = f
		if f > best || (f == best && (bestID == -1 || id < bestID)) {
			best, bestID = f, id
		}
		for _, s := range succ[id] {
			if f > finish[s] || (f == finish[s] && (pred[s] == -1 || id < pred[s])) {
				finish[s] = f
				pred[s] = id
			}
		}
	}
	var path []int32
	for id := bestID; id != -1; id = pred[id] {
		path = append(path, id)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best, path, nil
}

// WorkerSequences splits the merged events into per-worker task id
// sequences in start order, skipping events without a task id. The
// result is the realized static schedule of the run, replayable with
// UnitMakespan or against a simulator.
func WorkerSequences(events []Event, workers int) [][]int32 {
	if workers < 1 {
		workers = 1
	}
	seqs := make([][]int32, workers)
	for _, e := range events { // events are sorted by start time
		if e.Task < 0 || int(e.Worker) < 0 || int(e.Worker) >= workers {
			continue
		}
		seqs[e.Worker] = append(seqs[e.Worker], e.Task)
	}
	return seqs
}

// UnitMakespan replays per-worker task sequences in order under unit
// task costs: each worker executes its sequence strictly in order, a
// task starts when the worker is free and every predecessor (under
// succ) has finished, and every task takes one time unit. The result is
// the realized schedule's makespan in task units — directly comparable
// to a discrete-event simulation of the same graph with unit costs. An
// error is returned if the sequences do not cover every task exactly
// once or deadlock against the dependence order.
func UnitMakespan(seqs [][]int32, succ [][]int32) (int, error) {
	nt := len(succ)
	seen := make([]bool, nt)
	total := 0
	for _, seq := range seqs {
		for _, id := range seq {
			if int(id) >= nt || id < 0 {
				return 0, fmt.Errorf("trace: task %d outside the graph of %d tasks", id, nt)
			}
			if seen[id] {
				return 0, fmt.Errorf("trace: task %d appears twice in the schedule", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != nt {
		return 0, fmt.Errorf("trace: schedule covers %d of %d tasks", total, nt)
	}
	pending := make([]int, nt)
	for _, ss := range succ {
		for _, s := range ss {
			pending[s]++
		}
	}
	finish := make([]int, nt) // finish time of each executed task
	arrive := make([]int, nt) // max finish over executed predecessors
	pos := make([]int, len(seqs))
	free := make([]int, len(seqs))
	for done := 0; done < nt; {
		bestW, bestStart := -1, 0
		for w := range seqs {
			if pos[w] >= len(seqs[w]) {
				continue
			}
			id := seqs[w][pos[w]]
			if pending[id] > 0 {
				continue // an in-order predecessor has not executed yet
			}
			start := free[w]
			if arrive[id] > start {
				start = arrive[id]
			}
			if bestW == -1 || start < bestStart {
				bestW, bestStart = w, start
			}
		}
		if bestW == -1 {
			return 0, fmt.Errorf("trace: schedule deadlocks with %d of %d tasks done", done, nt)
		}
		id := seqs[bestW][pos[bestW]]
		pos[bestW]++
		f := bestStart + 1
		finish[id] = f
		free[bestW] = f
		done++
		for _, s := range succ[id] {
			pending[s]--
			if f > arrive[s] {
				arrive[s] = f
			}
		}
	}
	mk := 0
	for _, f := range finish {
		if f > mk {
			mk = f
		}
	}
	return mk, nil
}

// topoOrder is Kahn's algorithm over the successor lists.
func topoOrder(succ [][]int32) ([]int32, error) {
	nt := len(succ)
	indeg := make([]int, nt)
	for _, ss := range succ {
		for _, s := range ss {
			indeg[s]++
		}
	}
	queue := make([]int32, 0, nt)
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, int32(id))
		}
	}
	order := make([]int32, 0, nt)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != nt {
		return nil, fmt.Errorf("trace: dependence graph has a cycle (%d of %d ordered)", len(order), nt)
	}
	return order, nil
}
