package server

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
)

// errShed marks a request rejected by admission control; the transport
// layer maps it to 429 with a jittered Retry-After.
var errShed = errors.New("server: overloaded, request shed")

// admission is the load-shedding gate of the service: a fixed number
// of compute slots plus a bounded wait queue. A request either holds a
// slot, waits in the queue (its deadline still ticking), or is shed
// immediately with 429 — the service never builds an unbounded backlog
// of half-parsed requests, which is what keeps tail latency and memory
// bounded under overload.
type admission struct {
	slots    chan struct{}
	waiting  atomic.Int64
	maxQueue int64

	admitted atomic.Int64
	shed     atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

// newAdmission builds a gate with inFlight concurrent slots and up to
// maxQueue additional waiters. The seed drives the Retry-After jitter,
// so a chaos run is replayable.
func newAdmission(inFlight, maxQueue int, seed int64) *admission {
	if inFlight < 1 {
		inFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:    make(chan struct{}, inFlight),
		maxQueue: int64(maxQueue),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// acquire claims a compute slot, waiting in the bounded queue if all
// slots are busy. It returns the release func on success; errShed when
// the queue is full; or the context cause when the caller's deadline
// expires (or the client disconnects) while waiting.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a.waiting.Add(1) > a.maxQueue+int64(cap(a.slots)) {
		a.waiting.Add(-1)
		a.shed.Add(1)
		return nil, errShed
	}
	select {
	case a.slots <- struct{}{}:
		a.waiting.Add(-1)
		a.admitted.Add(1)
		return func() { <-a.slots }, nil
	case <-ctx.Done():
		a.waiting.Add(-1)
		return nil, context.Cause(ctx)
	}
}

// retryAfterSecs returns the jittered Retry-After value for a shed
// response: a deterministic (seeded) draw from [1, 5) seconds, so
// rejected clients do not come back in lockstep.
func (a *admission) retryAfterSecs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return 1 + a.rng.Intn(4)
}

// admissionSnapshot is the wire form of the admission counters.
type admissionSnapshot struct {
	Slots    int   `json:"slots"`
	MaxQueue int64 `json:"max_queue"`
	Waiting  int64 `json:"waiting"`
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
}

func (a *admission) snapshot() admissionSnapshot {
	return admissionSnapshot{
		Slots:    cap(a.slots),
		MaxQueue: a.maxQueue,
		Waiting:  a.waiting.Load(),
		Admitted: a.admitted.Load(),
		Shed:     a.shed.Load(),
	}
}
