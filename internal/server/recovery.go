package server

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/luerr"
	"repro/internal/sparse"
)

// The numeric recovery ladder. Each rung is one factorization attempt
// with a progressively more forgiving configuration; the service
// climbs until an attempt produces usable factors or the ladder is
// exhausted. Every rung tried is recorded in the response, so a client
// always learns which degradation (if any) its factors carry.
type rung int

const (
	// rungFail is the strict contract: PivotFail, no scaling. A success
	// here means the factors carry no perturbation and plain solves are
	// exact to working accuracy.
	rungFail rung = iota
	// rungPerturb retries with static pivot perturbation (tiny pivots
	// replaced by ±√ε·‖A‖), the SuperLU_DIST-style graceful path.
	// Solves against these factors are iteratively refined.
	rungPerturb
	// rungEquilibrate additionally row/column-equilibrates the matrix
	// before perturbing, rescuing badly scaled systems whose pivots
	// underflow the perturbation threshold. Solves are refined.
	rungEquilibrate
	numRungs
)

func (r rung) String() string {
	switch r {
	case rungFail:
		return "fail"
	case rungPerturb:
		return "perturb"
	case rungEquilibrate:
		return "equilibrate"
	}
	return "unknown"
}

// RungReport is the per-attempt record returned to clients.
type RungReport struct {
	Rung          string `json:"rung"`
	OK            bool   `json:"ok"`
	Error         string `json:"error,omitempty"`
	Perturbations int    `json:"perturbations,omitempty"`
}

// ladderResult is a successful climb: the factors, the attempts that
// led to them, and whether solves must go through iterative refinement
// (true whenever the winning rung perturbed or rescaled the system).
type ladderResult struct {
	f      *core.Factorization
	rungs  []RungReport
	won    rung
	refine bool
}

// rungsFor maps the request's policy string to the attempt sequence.
// "ladder" (the default) climbs all three rungs; "fail" and "perturb"
// pin a single rung for clients that want the strict or the perturbed
// contract with no fallback.
func rungsFor(policy string) ([]rung, error) {
	switch policy {
	case "", "ladder":
		return []rung{rungFail, rungPerturb, rungEquilibrate}, nil
	case "fail":
		return []rung{rungFail}, nil
	case "perturb":
		return []rung{rungPerturb}, nil
	}
	return nil, fmt.Errorf("server: unknown pivot policy %q (want ladder, fail or perturb)", policy)
}

// climbLadder runs the recovery ladder for one factorize request. base
// carries the request-scoped numeric state (workers, deadline,
// canceler); each rung overrides only the pivot policy and
// equilibration. Deadline and cancellation failures abort the climb
// immediately — retrying a canceled request on a softer rung would
// just burn more of a budget that is already gone — while numeric
// failures (singular, non-finite) fall through to the next rung.
func climbLadder(sym *core.Symbolic, m *sparse.CSC, base core.NumericOptions, policy string) (*ladderResult, error) {
	seq, err := rungsFor(policy)
	if err != nil {
		return nil, err
	}
	rungs := make([]RungReport, 0, len(seq))
	var lastErr error
	for _, r := range seq {
		nopts := base
		switch r {
		case rungFail:
			nopts.PivotPolicy = core.PivotFail
			nopts.Equilibrate = false
		case rungPerturb:
			nopts.PivotPolicy = core.PivotPerturb
			nopts.Equilibrate = false
		case rungEquilibrate:
			nopts.PivotPolicy = core.PivotPerturb
			nopts.Equilibrate = true
		}
		f, err := core.FactorizeWithOpts(sym, m, &nopts)
		if err != nil {
			// A numeric failure (singular, non-finite) may reach us as a
			// CancelError — the failing task canceled its siblings — so
			// the numeric classes are tested first: they fall through to
			// the next rung, only genuine deadline/cancellation aborts.
			numeric := errors.Is(err, luerr.ErrSingular) || errors.Is(err, luerr.ErrNonFinite)
			if !numeric && (errors.Is(err, luerr.ErrDeadline) || errors.Is(err, luerr.ErrCanceled)) {
				return nil, err
			}
			rungs = append(rungs, RungReport{Rung: r.String(), Error: err.Error()})
			lastErr = err
			continue
		}
		if f.Singular() {
			err := fmt.Errorf("server: rung %s: %w", r, &core.SingularError{Col: f.SingularColumn()})
			rungs = append(rungs, RungReport{Rung: r.String(), Error: err.Error()})
			lastErr = err
			continue
		}
		pert := f.PivotPerturbations()
		rungs = append(rungs, RungReport{Rung: r.String(), OK: true, Perturbations: pert})
		return &ladderResult{
			f:     f,
			rungs: rungs,
			won:   r,
			// Perturbed pivots mean the factors solve a nearby system,
			// not A itself: refinement recovers the residual bound the
			// client was promised. (Equilibration alone is transparent —
			// solves undo the scaling exactly.)
			refine: pert > 0,
		}, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("server: recovery ladder exhausted with no attempts")
	}
	return &ladderResult{rungs: rungs}, lastErr
}
