package server

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sparse"
)

// patternKey fingerprints the sparsity pattern of a matrix together
// with the analysis-shaping options: two matrices with equal keys have
// identical CSC structure and would produce identical Symbolic
// objects, so the analysis of one serves the other. It delegates to
// core.PatternHash — the same fingerprint core.Reanalyze uses — so
// "cache hit" and "identical pattern" are provably the same predicate:
// a miss here implies Reanalyze can at best take its delta path.
func patternKey(m *sparse.CSC, opts *core.Options) string {
	return core.PatternHash(m, opts)
}

// symBytes is a coarse retained-size estimate of a Symbolic, used only
// for the memory-budget admission check — it needs to be monotone in
// problem size, not exact.
func symBytes(s *core.Symbolic) int64 {
	st := s.Stats
	return int64(st.NNZFactors)*16 + int64(st.N)*96 + int64(st.TaskCount+st.EdgeCount)*16
}

// cacheEntry is one cached analysis. ready is closed when sym/err are
// final, so concurrent requests for the same pattern coalesce onto a
// single Analyze call instead of racing N of them.
type cacheEntry struct {
	key     string
	ready   chan struct{}
	sym     *core.Symbolic
	err     error
	bytes   int64
	seconds float64 // wall-clock cost of producing sym (analyze or delta)
}

// symCache is a bounded LRU of immutable Symbolic objects keyed by
// pattern hash. Entries are shared by reference: a Symbolic is
// analysis-immutable (nothing in the numeric or solve path writes to
// it — pinned by TestSymbolicReuseConcurrent), so handing the same
// pointer to many concurrent factorizations is safe and is exactly the
// reuse the paper's static approach is built around.
type symCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	order   []string // LRU order, least recent first

	hits       atomic.Int64
	misses     atomic.Int64
	analyzes   atomic.Int64 // full core.Analyze invocations (hits and delta reuses provably skip it)
	reanalyzes atomic.Int64 // misses served by core.Reanalyze's subtree-delta path
	evictions  atomic.Int64
	bytes      atomic.Int64
}

func newSymCache(capacity int) *symCache {
	if capacity < 1 {
		capacity = 1
	}
	return &symCache{cap: capacity, entries: make(map[string]*cacheEntry)}
}

// touch moves key to the most-recent end of the LRU order. Caller
// holds mu.
func (c *symCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = key
			return
		}
	}
	c.order = append(c.order, key)
}

// recent returns the most recently used resident Symbolic of order n,
// or nil. It is the donor candidate for core.Reanalyze on a cache
// miss: a near-identical pattern is overwhelmingly likely to be a
// perturbation of whatever was analyzed last. Only completed entries
// are considered (the close of ready publishes sym).
func (c *symCache) recent(n int) *core.Symbolic {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.order) - 1; i >= 0; i-- {
		e, ok := c.entries[c.order[i]]
		if !ok {
			continue
		}
		select {
		case <-e.ready:
			if e.sym != nil && e.sym.N == n {
				return e.sym
			}
		default:
		}
	}
	return nil
}

// getOrAnalyze returns the Symbolic for key, running analyze exactly
// once per resident pattern: the first requester computes, concurrent
// requesters for the same key wait on the entry, later requesters hit.
// The hit return is true only when the entry was already resident
// (the analyze callback provably did not run for this request). The
// callback's reused return reports that the Symbolic was patched from
// a resident analysis (counted as a reanalyze) instead of computed
// from scratch (counted as an analyze).
func (c *symCache) getOrAnalyze(ctx context.Context, key string, analyze func() (sym *core.Symbolic, reused bool, err error)) (sym *core.Symbolic, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.touch(key)
		c.hits.Add(1)
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, false, context.Cause(ctx)
		}
		return e.sym, true, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.touch(key)
	c.misses.Add(1)
	// Evict least-recently-used resident entries over capacity. A
	// pending entry can be evicted too: its waiters hold the pointer,
	// only the map slot is reclaimed.
	for len(c.entries) > c.cap && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		if v, ok := c.entries[victim]; ok {
			delete(c.entries, victim)
			c.evictions.Add(1)
			c.bytes.Add(-v.bytes)
		}
	}
	c.mu.Unlock()

	var reused bool
	e.sym, reused, e.err = analyze()
	if reused {
		c.reanalyzes.Add(1)
	} else {
		c.analyzes.Add(1)
	}
	if e.sym != nil {
		e.bytes = symBytes(e.sym)
		e.seconds = e.sym.Stats.AnalyzeSeconds
		c.bytes.Add(e.bytes)
	}
	close(e.ready)
	if e.err != nil {
		// Failed analyses are not cached: the next request with this
		// pattern retries instead of replaying a stale error.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
			for i, k := range c.order {
				if k == key {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
		}
		c.mu.Unlock()
	}
	return e.sym, false, e.err
}

// cacheSnapshot is the wire form of the cache counters.
type cacheSnapshot struct {
	Entries    int   `json:"entries"`
	Capacity   int   `json:"capacity"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Analyzes   int64 `json:"analyzes"`
	Reanalyzes int64 `json:"reanalyzes"`
	Evictions  int64 `json:"evictions"`
	Bytes      int64 `json:"approx_bytes"`
	// PatternSeconds is the analyze latency (seconds) that produced
	// each resident pattern — delta reanalyses report their (much
	// smaller) patch time. Bounded by the LRU capacity like the
	// entries themselves.
	PatternSeconds map[string]float64 `json:"analyze_seconds"`
}

func (c *symCache) snapshot() cacheSnapshot {
	c.mu.Lock()
	n := len(c.entries)
	secs := make(map[string]float64, n)
	for key, e := range c.entries {
		select {
		case <-e.ready:
			if e.sym != nil {
				secs[key] = e.seconds
			}
		default:
		}
	}
	c.mu.Unlock()
	return cacheSnapshot{
		Entries:        n,
		Capacity:       c.cap,
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Analyzes:       c.analyzes.Load(),
		Reanalyzes:     c.reanalyzes.Load(),
		Evictions:      c.evictions.Load(),
		Bytes:          c.bytes.Load(),
		PatternSeconds: secs,
	}
}
