package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sparse"
)

// patternKey fingerprints the sparsity pattern of a matrix together
// with the analysis-shaping options: two matrices with equal keys have
// identical CSC structure and would produce identical Symbolic
// objects, so the analysis of one serves the other. Values are
// deliberately excluded — that is the whole point of the paper's
// static pipeline: one symbolic factorization amortized over many
// numeric factorizations of the same pattern.
func patternKey(m *sparse.CSC, opts *core.Options) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(m.NRows)
	put(m.NCols)
	for _, p := range m.ColPtr {
		put(p)
	}
	for _, r := range m.RowInd {
		put(r)
	}
	// The analysis-shaping knobs are part of the identity of a
	// Symbolic; the per-call numeric fields are not.
	fmt.Fprintf(h, "|%v|%v|%v|%+v", opts.Ordering, opts.Postorder, opts.TaskGraph, opts.Amalgamation)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// symBytes is a coarse retained-size estimate of a Symbolic, used only
// for the memory-budget admission check — it needs to be monotone in
// problem size, not exact.
func symBytes(s *core.Symbolic) int64 {
	st := s.Stats
	return int64(st.NNZFactors)*16 + int64(st.N)*96 + int64(st.TaskCount+st.EdgeCount)*16
}

// cacheEntry is one cached analysis. ready is closed when sym/err are
// final, so concurrent requests for the same pattern coalesce onto a
// single Analyze call instead of racing N of them.
type cacheEntry struct {
	key   string
	ready chan struct{}
	sym   *core.Symbolic
	err   error
	bytes int64
}

// symCache is a bounded LRU of immutable Symbolic objects keyed by
// pattern hash. Entries are shared by reference: a Symbolic is
// analysis-immutable (nothing in the numeric or solve path writes to
// it — pinned by TestSymbolicReuseConcurrent), so handing the same
// pointer to many concurrent factorizations is safe and is exactly the
// reuse the paper's static approach is built around.
type symCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	order   []string // LRU order, least recent first

	hits      atomic.Int64
	misses    atomic.Int64
	analyzes  atomic.Int64 // actual core.Analyze invocations (hits provably skip it)
	evictions atomic.Int64
	bytes     atomic.Int64
}

func newSymCache(capacity int) *symCache {
	if capacity < 1 {
		capacity = 1
	}
	return &symCache{cap: capacity, entries: make(map[string]*cacheEntry)}
}

// touch moves key to the most-recent end of the LRU order. Caller
// holds mu.
func (c *symCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = key
			return
		}
	}
	c.order = append(c.order, key)
}

// getOrAnalyze returns the Symbolic for key, running analyze exactly
// once per resident pattern: the first requester computes, concurrent
// requesters for the same key wait on the entry, later requesters hit.
// The hit return is true only when the entry was already resident
// (the analyze callback provably did not run for this request).
func (c *symCache) getOrAnalyze(ctx context.Context, key string, analyze func() (*core.Symbolic, error)) (sym *core.Symbolic, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.touch(key)
		c.hits.Add(1)
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, false, context.Cause(ctx)
		}
		return e.sym, true, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.touch(key)
	c.misses.Add(1)
	// Evict least-recently-used resident entries over capacity. A
	// pending entry can be evicted too: its waiters hold the pointer,
	// only the map slot is reclaimed.
	for len(c.entries) > c.cap && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		if v, ok := c.entries[victim]; ok {
			delete(c.entries, victim)
			c.evictions.Add(1)
			c.bytes.Add(-v.bytes)
		}
	}
	c.mu.Unlock()

	c.analyzes.Add(1)
	e.sym, e.err = analyze()
	if e.sym != nil {
		e.bytes = symBytes(e.sym)
		c.bytes.Add(e.bytes)
	}
	close(e.ready)
	if e.err != nil {
		// Failed analyses are not cached: the next request with this
		// pattern retries instead of replaying a stale error.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
			for i, k := range c.order {
				if k == key {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
		}
		c.mu.Unlock()
	}
	return e.sym, false, e.err
}

// cacheSnapshot is the wire form of the cache counters.
type cacheSnapshot struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Analyzes  int64 `json:"analyzes"`
	Evictions int64 `json:"evictions"`
	Bytes     int64 `json:"approx_bytes"`
}

func (c *symCache) snapshot() cacheSnapshot {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return cacheSnapshot{
		Entries:   n,
		Capacity:  c.cap,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Analyzes:  c.analyzes.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     c.bytes.Load(),
	}
}
