package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/matgen"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// toMatrixJSON converts a CSC to the wire triplet form.
func toMatrixJSON(m *sparse.CSC) matrixJSON {
	mj := matrixJSON{N: m.NCols}
	for j := 0; j < m.NCols; j++ {
		rows, vals := m.Col(j)
		for k, i := range rows {
			mj.Rows = append(mj.Rows, i)
			mj.Cols = append(mj.Cols, j)
			mj.Vals = append(mj.Vals, vals[k])
		}
	}
	return mj
}

// testMatrix builds a small diagonally dominant 2D operator.
func testMatrix() *sparse.CSC { return matgen.Sherman5() }

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends a JSON request and decodes the response into out (which
// may be nil). It returns the status code and raw body.
func post(t *testing.T, ts *httptest.Server, path string, req, out any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("unmarshal %s: %v (body %s)", path, err, buf.String())
		}
	}
	return resp.StatusCode, buf.Bytes()
}

func factorizeOK(t *testing.T, ts *httptest.Server, m *sparse.CSC, policy string) factorizeResponse {
	t.Helper()
	var resp factorizeResponse
	status, body := post(t, ts, "/v1/factorize", factorizeRequest{Matrix: toMatrixJSON(m), Policy: policy}, &resp)
	if status != http.StatusOK {
		t.Fatalf("factorize: status %d, body %s", status, body)
	}
	return resp
}

func TestServerRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	m := testMatrix()
	fr := factorizeOK(t, ts, m, "")
	if fr.Rung != "fail" || fr.Refine || fr.Perturbations != 0 {
		t.Errorf("healthy matrix should win the strict rung: %+v", fr)
	}
	n := m.NCols
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	var sr solveResponse
	status, body := post(t, ts, "/v1/solve", solveRequest{FID: fr.FID, B: b}, &sr)
	if status != http.StatusOK {
		t.Fatalf("solve: status %d, body %s", status, body)
	}
	if len(sr.X) != n {
		t.Fatalf("solution length %d, want %d", len(sr.X), n)
	}
	if sr.Residual > 1e-12 {
		t.Errorf("residual %g too large for a healthy system", sr.Residual)
	}
	// Multi-RHS path.
	var mr solveResponse
	status, body = post(t, ts, "/v1/solve", solveRequest{FID: fr.FID, BS: [][]float64{b, b}}, &mr)
	if status != http.StatusOK {
		t.Fatalf("multi solve: status %d, body %s", status, body)
	}
	if len(mr.XS) != 2 || len(mr.Residuals) != 2 {
		t.Fatalf("multi solve shape: %d xs, %d residuals", len(mr.XS), len(mr.Residuals))
	}
	for i := range mr.XS[0] {
		if mr.XS[0][i] != sr.X[i] {
			t.Fatalf("multi-RHS x[%d] = %x differs from single-RHS %x", i, mr.XS[0][i], sr.X[i])
		}
	}
}

// TestCacheHitSkipsAnalyze pins the symbolic cache contract: repeated
// factorizations of the same sparsity pattern (different values!) run
// core.Analyze exactly once — the hit path provably skips it, counted
// by the cache's analyzes counter.
func TestCacheHitSkipsAnalyze(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	m := testMatrix()

	fr1 := factorizeOK(t, ts, m, "")
	if fr1.SymbolicCached {
		t.Error("first factorize reported a cache hit")
	}
	// Same pattern, scaled values: must hit.
	mj := toMatrixJSON(m)
	for i := range mj.Vals {
		mj.Vals[i] *= 3
	}
	var fr2 factorizeResponse
	status, body := post(t, ts, "/v1/factorize", factorizeRequest{Matrix: mj}, &fr2)
	if status != http.StatusOK {
		t.Fatalf("second factorize: status %d, body %s", status, body)
	}
	if !fr2.SymbolicCached {
		t.Error("second factorize of the same pattern missed the cache")
	}
	if fr2.Key != fr1.Key {
		t.Errorf("same pattern produced different keys %q, %q", fr1.Key, fr2.Key)
	}
	if got := s.cache.analyzes.Load(); got != 1 {
		t.Errorf("core.Analyze ran %d times, want exactly 1", got)
	}
	if got := s.cache.hits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
}

// TestBatchedSolveBitwise pins the batcher's invisibility: the same
// right-hand sides solved one at a time (no concurrency, every batch
// has size 1) and solved under heavy concurrency (batches form up to
// BatchMax) produce bitwise identical solutions.
func TestBatchedSolveBitwise(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, BatchWindow: 5 * time.Millisecond, BatchMax: 8, MaxInFlight: 32, MaxQueue: 64})
	m := testMatrix()
	fr := factorizeOK(t, ts, m, "")
	n := m.NCols

	const nrhs = 32
	rhs := make([][]float64, nrhs)
	for r := range rhs {
		b := make([]float64, n)
		for i := range b {
			b[i] = float64((i+3*r)%11) - 5
		}
		rhs[r] = b
	}

	// Serial pass: one request at a time, each its own batch of 1.
	serial := make([][]float64, nrhs)
	for r, b := range rhs {
		var sr solveResponse
		status, body := post(t, ts, "/v1/solve", solveRequest{FID: fr.FID, B: b}, &sr)
		if status != http.StatusOK {
			t.Fatalf("serial solve %d: status %d, body %s", r, status, body)
		}
		serial[r] = sr.X
	}

	// Concurrent pass: the window coalesces these into real batches.
	concurrent := make([][]float64, nrhs)
	var wg sync.WaitGroup
	errc := make(chan error, nrhs)
	for r, b := range rhs {
		wg.Add(1)
		go func(r int, b []float64) {
			defer wg.Done()
			var sr solveResponse
			status, body := post(t, ts, "/v1/solve", solveRequest{FID: fr.FID, B: b}, &sr)
			if status != http.StatusOK {
				errc <- fmt.Errorf("concurrent solve %d: status %d, body %s", r, status, body)
				return
			}
			concurrent[r] = sr.X
		}(r, b)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	for r := range rhs {
		for i := range serial[r] {
			if serial[r][i] != concurrent[r][i] {
				t.Fatalf("rhs %d: batched x[%d] = %x, solo %x", r, i, concurrent[r][i], serial[r][i])
			}
		}
	}

	var bt batcherSnapshot
	s.mu.Lock()
	for _, h := range s.store {
		bt.Batches += h.bt.batches.Load()
		bt.RHS += h.bt.rhs.Load()
		if mb := h.bt.maxBatch.Load(); mb > bt.MaxBatch {
			bt.MaxBatch = mb
		}
	}
	s.mu.Unlock()
	if bt.RHS != 2*nrhs {
		t.Errorf("batcher saw %d right-hand sides, want %d", bt.RHS, 2*nrhs)
	}
	if bt.MaxBatch < 2 {
		t.Errorf("no batching happened under concurrency (max batch %d)", bt.MaxBatch)
	}
}

// TestRecoveryLadder drives the graceful-degradation path end to end:
// a numerically near-singular (but structurally healthy) system fails
// the strict rung, wins the perturbed rung, and refined solves on a
// consistent right-hand side still meet the advertised residual bound.
func TestRecoveryLadder(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	m, _, _ := matgen.NearSingular(12, 9, 42)

	// Strict policy: hard 422 with the failed rung attached.
	status, body := post(t, ts, "/v1/factorize", factorizeRequest{Matrix: toMatrixJSON(m), Policy: "fail"}, nil)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("policy=fail on near-singular: status %d, body %s", status, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("unmarshal error body: %v", err)
	}
	if er.Code != "singular" || len(er.Rungs) != 1 || er.Rungs[0].OK {
		t.Errorf("want singular error with one failed rung, got %+v", er)
	}

	// Ladder policy: degrade gracefully and say so.
	fr := factorizeOK(t, ts, m, "ladder")
	if fr.Rung != "perturb" || !fr.Refine || fr.Perturbations == 0 {
		t.Fatalf("ladder should win the perturb rung with perturbations: %+v", fr)
	}
	if len(fr.Rungs) != 2 || fr.Rungs[0].OK || !fr.Rungs[1].OK {
		t.Fatalf("rung reports wrong: %+v", fr.Rungs)
	}

	// Consistent right-hand side: b = A·1.
	n := m.NCols
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	m.MulVec(ones, b)
	var sr solveResponse
	status, body = post(t, ts, "/v1/solve", solveRequest{FID: fr.FID, B: b}, &sr)
	if status != http.StatusOK {
		t.Fatalf("refined solve: status %d, body %s", status, body)
	}
	if sr.Residual > 1e-10 {
		t.Errorf("refined residual %g exceeds the 1e-10 bound", sr.Residual)
	}
	if sr.Rung != "perturb" {
		t.Errorf("solve reported rung %q, want perturb", sr.Rung)
	}
}

// TestStatusMapping pins the documented error-code table at both the
// transport level and the mapError unit level.
func TestStatusMapping(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	// 400: malformed body.
	resp, err := ts.Client().Post(ts.URL+"/v1/factorize", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	// 400: out-of-range index.
	status, _ := post(t, ts, "/v1/factorize", factorizeRequest{Matrix: matrixJSON{N: 2, Rows: []int{5}, Cols: []int{0}, Vals: []float64{1}}}, nil)
	if status != http.StatusBadRequest {
		t.Errorf("out-of-range entry: status %d, want 400", status)
	}
	// 404: unknown factorization.
	status, _ = post(t, ts, "/v1/solve", solveRequest{FID: "f999", B: []float64{1}}, nil)
	if status != http.StatusNotFound {
		t.Errorf("unknown fid: status %d, want 404", status)
	}
	// 504: a deadline far too small for a real factorization.
	status, body := post(t, ts, "/v1/factorize", factorizeRequest{Matrix: toMatrixJSON(matgen.Goodwin()), TimeoutMS: 1}, nil)
	if status != http.StatusGatewayTimeout {
		t.Errorf("1ms factorize: status %d, want 504 (body %s)", status, body)
	}

	// The mapping itself, one error per class.
	for _, tc := range []struct {
		err    error
		status int
		code   string
	}{
		{&core.SingularError{Col: 1}, 422, "singular"},
		{fmt.Errorf("x: %w", core.ErrNonFinite), 422, "non_finite"},
		{&sched.CancelError{Cause: core.ErrDeadlineExceeded}, 504, "deadline"},
		{&sched.CancelError{}, 499, "canceled"},
		{context.DeadlineExceeded, 504, "deadline"},
		{context.Canceled, 499, "canceled"},
		{errShed, 429, "shed"},
		{errBatcherClosed, 503, "draining"},
		{errors.New("boom"), 500, "internal"},
	} {
		he := s.mapError(tc.err)
		if he.status != tc.status || he.code != tc.code {
			t.Errorf("mapError(%v) = %d/%s, want %d/%s", tc.err, he.status, he.code, tc.status, tc.code)
		}
	}
	if he := s.mapError(errShed); he.retryAfter < 1 || he.retryAfter > 5 {
		t.Errorf("shed retry-after %d outside [1,5]", he.retryAfter)
	}
}

// TestAdmissionSheds verifies load shedding: with one compute slot and
// a tiny queue, a burst of requests gets 429s with Retry-After while
// at least one request is served.
func TestAdmissionSheds(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxInFlight: 1, MaxQueue: 1, BatchWindow: time.Millisecond})
	m := testMatrix()
	fr := factorizeOK(t, ts, m, "")
	b := make([]float64, m.NCols)
	for i := range b {
		b[i] = 1
	}

	const burst = 16
	var ok, shed, other int
	var mu sync.Mutex
	var wg sync.WaitGroup
	// One slow request (Goodwin factorize) occupies the slot...
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, ts, "/v1/factorize", factorizeRequest{Matrix: toMatrixJSON(matgen.Goodwin())}, nil)
	}()
	time.Sleep(100 * time.Millisecond)
	// ...and the burst overflows the queue.
	for r := 0; r < burst; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(solveRequest{FID: fr.FID, B: b})
			resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				shed++
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After header")
				}
			default:
				other++
			}
		}()
	}
	wg.Wait()
	if shed == 0 {
		t.Errorf("burst of %d against 1 slot shed nothing (ok=%d other=%d)", burst, ok, other)
	}
	if other != 0 {
		t.Errorf("unexpected status codes in burst: %d", other)
	}
}

// TestDrain pins shutdown behavior: after Close, liveness stays green,
// readiness and the compute endpoints answer 503.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain: %d, want 200", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	status, _ := post(t, ts, "/v1/analyze", analyzeRequest{Matrix: matrixJSON{N: 1, Rows: []int{0}, Cols: []int{0}, Vals: []float64{1}}}, nil)
	if status != http.StatusServiceUnavailable {
		t.Errorf("analyze during drain: %d, want 503", status)
	}
}

// TestChaos is the acceptance stress of the issue: ≥32 concurrent
// requests against a server with deterministic injected faults
// (panics, input poisoning, delays) and a near-singular workload. The
// server must answer every request with a documented status code, keep
// serving afterwards, and leak no goroutines. Run under -race in CI.
func TestChaos(t *testing.T) {
	plan, err := faultinject.ParseRequestPlan("3:panic,7:nan,11:delay=30ms,19:panic,23:nan,29:delay=20ms")
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		Workers: 2, MaxInFlight: 8, MaxQueue: 64,
		BatchWindow: 2 * time.Millisecond, BatchMax: 8,
		Faults: plan, Seed: 7,
	})

	healthy := testMatrix()
	nearSing, _, _ := matgen.NearSingular(12, 9, 42)
	frHealthy := factorizeOK(t, ts, healthy, "")
	frSing := factorizeOK(t, ts, nearSing, "ladder")

	nh := healthy.NCols
	bh := make([]float64, nh)
	for i := range bh {
		bh[i] = float64(i%3) - 1
	}
	ones := make([]float64, nearSing.NCols)
	for i := range ones {
		ones[i] = 1
	}
	bs := make([]float64, nearSing.NCols)
	nearSing.MulVec(ones, bs)

	baseline := runtime.NumGoroutine()

	const concurrency = 40
	allowed := map[int]bool{200: true, 422: true, 429: true, 500: true, 504: true}
	counts := make(map[int]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < concurrency; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var status int
			var body []byte
			switch r % 4 {
			case 0:
				status, body = post(t, ts, "/v1/solve", solveRequest{FID: frHealthy.FID, B: bh}, nil)
			case 1:
				status, body = post(t, ts, "/v1/solve", solveRequest{FID: frSing.FID, B: bs}, nil)
			case 2:
				status, body = post(t, ts, "/v1/analyze", analyzeRequest{Matrix: toMatrixJSON(healthy)}, nil)
			case 3:
				status, body = post(t, ts, "/v1/factorize", factorizeRequest{Matrix: toMatrixJSON(nearSing), Policy: "ladder"}, nil)
			}
			mu.Lock()
			counts[status]++
			mu.Unlock()
			if !allowed[status] {
				t.Errorf("request %d: unexpected status %d (body %s)", r, status, body)
			}
			// Near-singular refined solves that succeed must meet the bound.
			if r%4 == 1 && status == 200 {
				var sr solveResponse
				if err := json.Unmarshal(body, &sr); err == nil && sr.Residual > 1e-10 {
					t.Errorf("request %d: ladder residual %g exceeds 1e-10", r, sr.Residual)
				}
			}
		}(r)
	}
	wg.Wait()

	if got := plan.Fired(); got != plan.Planned() {
		t.Errorf("fault plan fired %d of %d faults", got, plan.Planned())
	}
	if got := s.met.panics.Load(); got != 2 {
		t.Errorf("recovered panics = %d, want 2", got)
	}
	if counts[500] < 2 {
		t.Errorf("want ≥2 injected 500s, got %d (counts %v)", counts[500], counts)
	}
	if counts[200] == 0 {
		t.Error("chaos run produced no successful requests")
	}

	// The server must still be fully functional.
	var sr solveResponse
	status, body := post(t, ts, "/v1/solve", solveRequest{FID: frHealthy.FID, B: bh}, &sr)
	if status != http.StatusOK {
		t.Fatalf("post-chaos solve: status %d, body %s", status, body)
	}
	if sr.Residual > 1e-12 {
		t.Errorf("post-chaos residual %g", sr.Residual)
	}

	// No goroutine leaks: the transport keeps idle conns briefly, so
	// close them and poll.
	ts.Client().CloseIdleConnections()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+4 {
		t.Errorf("goroutines %d, baseline %d: leak suspected", got, baseline)
	}
}

// TestPatternKey pins that the cache key depends on structure, not
// values.
func TestPatternKey(t *testing.T) {
	m := testMatrix()
	opts := core.DefaultOptions()
	k1 := patternKey(m, opts)
	scaled := toMatrixJSON(m)
	for i := range scaled.Vals {
		scaled.Vals[i] *= 2
	}
	m2, he := parseMatrix(&scaled, faultinject.Fault{})
	if he != nil {
		t.Fatal(he)
	}
	if k2 := patternKey(m2, opts); k2 != k1 {
		t.Errorf("same pattern, different keys: %q vs %q", k1, k2)
	}
	other, _, _ := matgen.NearSingular(8, 8, 1)
	if k3 := patternKey(other, opts); k3 == k1 {
		t.Error("different patterns share a key")
	}
}

// dropOffDiag returns a copy of a without one off-diagonal entry (the
// last one of the latest possible column at or after n/2), or nil when
// there is none — the minimal pattern delta for the reanalyze route.
func dropOffDiag(a *sparse.CSC) *sparse.CSC {
	row, col := -1, -1
	for j := a.NCols / 2; j < a.NCols && row < 0; j++ {
		for p := a.ColPtr[j+1] - 1; p >= a.ColPtr[j]; p-- {
			if a.RowInd[p] != j {
				row, col = a.RowInd[p], j
				break
			}
		}
	}
	if row < 0 {
		return nil
	}
	out := &sparse.CSC{NRows: a.NRows, NCols: a.NCols, ColPtr: make([]int, a.NCols+1)}
	for j := 0; j < a.NCols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if j == col && a.RowInd[p] == row {
				continue
			}
			out.RowInd = append(out.RowInd, a.RowInd[p])
			out.Val = append(out.Val, a.Val[p])
		}
		out.ColPtr[j+1] = len(out.RowInd)
	}
	return out
}

// TestReanalyzeDeltaOnNearPattern pins the cache-miss reuse route: a
// near-identical pattern must be served by core.Reanalyze's subtree
// delta (counted by the reanalyzes counter, not analyzes) and the
// /metrics report must expose the new counters and the per-pattern
// analyze latencies.
func TestReanalyzeDeltaOnNearPattern(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	for _, spec := range matgen.SmallSuite() {
		m := spec.Gen()
		mod := dropOffDiag(m)
		if mod == nil {
			continue
		}
		var ar analyzeResponse
		status, body := post(t, ts, "/v1/analyze", analyzeRequest{Matrix: toMatrixJSON(m)}, &ar)
		if status != http.StatusOK {
			t.Fatalf("%s: analyze: status %d, body %s", spec.Name, status, body)
		}
		status, body = post(t, ts, "/v1/analyze", analyzeRequest{Matrix: toMatrixJSON(mod)}, &ar)
		if status != http.StatusOK {
			t.Fatalf("%s: near-pattern analyze: status %d, body %s", spec.Name, status, body)
		}
		if s.cache.reanalyzes.Load() > 0 {
			break
		}
	}
	if s.cache.reanalyzes.Load() == 0 {
		t.Fatal("no near-pattern analyze took the reanalyze delta route")
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cache.Reanalyzes < 1 {
		t.Errorf("metrics reanalyzes = %d, want >= 1", snap.Cache.Reanalyzes)
	}
	if len(snap.Cache.PatternSeconds) != snap.Cache.Entries {
		t.Errorf("metrics analyze_seconds has %d keys for %d resident patterns",
			len(snap.Cache.PatternSeconds), snap.Cache.Entries)
	}
	for key, sec := range snap.Cache.PatternSeconds {
		if sec <= 0 {
			t.Errorf("pattern %s reports non-positive analyze latency %v", key, sec)
		}
	}
}
