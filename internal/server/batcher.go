package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// errBatcherClosed marks a solve submitted to a draining handle; the
// transport maps it to 503.
var errBatcherClosed = errors.New("server: factorization is shutting down")

// solveReq is one single-RHS solve waiting in a batch window.
type solveReq struct {
	b    []float64
	done chan solveDone // buffered 1: the flusher never blocks on a waiter
}

type solveDone struct {
	x   []float64
	err error
}

// batcher coalesces concurrent single-RHS solves against one
// factorization into blocked multi-RHS solves on the BLAS-3 panel path
// (SolveManyWith: Dtrsm/Dgemm instead of nrhs× Dtrsv/Dgemv). A request
// waits at most window for peers; a batch flushes early the moment it
// reaches max. Requests that arrive alone still run through the panel
// path with nrhs=1, which is what makes batching invisible: the panel
// sweeps are per-RHS bitwise identical at every batch size (pinned by
// TestBatchedSolveBitwise), so a client cannot tell whether its solve
// shared a panel.
type batcher struct {
	f      *core.Factorization
	window time.Duration
	max    int
	nopts  core.NumericOptions // per-batch solve options (workers, backstop timeout)

	mu      sync.Mutex
	pending []*solveReq
	timer   *time.Timer
	closed  bool

	batches  atomic.Int64
	rhs      atomic.Int64
	maxBatch atomic.Int64
}

func newBatcher(f *core.Factorization, window time.Duration, max int, nopts core.NumericOptions) *batcher {
	if max < 1 {
		max = 1
	}
	if window <= 0 {
		window = time.Millisecond
	}
	return &batcher{f: f, window: window, max: max, nopts: nopts}
}

// submit queues b for the next batch and waits for its solution. The
// caller's context bounds only the wait: an expired waiter abandons
// its slot (the batch still computes, the result is discarded) and
// returns the context cause.
func (bt *batcher) submit(ctx context.Context, b []float64) ([]float64, error) {
	req := &solveReq{b: b, done: make(chan solveDone, 1)}
	bt.mu.Lock()
	if bt.closed {
		bt.mu.Unlock()
		return nil, errBatcherClosed
	}
	bt.pending = append(bt.pending, req)
	if len(bt.pending) >= bt.max {
		batch := bt.takeLocked()
		bt.mu.Unlock()
		bt.run(batch)
	} else {
		if len(bt.pending) == 1 {
			bt.timer = time.AfterFunc(bt.window, bt.flush)
		}
		bt.mu.Unlock()
	}
	select {
	case d := <-req.done:
		return d.x, d.err
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

// takeLocked detaches the pending batch and disarms the window timer.
// Caller holds mu.
func (bt *batcher) takeLocked() []*solveReq {
	batch := bt.pending
	bt.pending = nil
	if bt.timer != nil {
		bt.timer.Stop()
		bt.timer = nil
	}
	return batch
}

// flush is the window-expiry path (time.AfterFunc callback).
func (bt *batcher) flush() {
	bt.mu.Lock()
	batch := bt.takeLocked()
	bt.mu.Unlock()
	bt.run(batch)
}

// run executes one batch on the panel path and distributes results.
func (bt *batcher) run(batch []*solveReq) {
	if len(batch) == 0 {
		return
	}
	bt.batches.Add(1)
	bt.rhs.Add(int64(len(batch)))
	for {
		cur := bt.maxBatch.Load()
		if int64(len(batch)) <= cur || bt.maxBatch.CompareAndSwap(cur, int64(len(batch))) {
			break
		}
	}
	bs := make([][]float64, len(batch))
	for i, req := range batch {
		bs[i] = req.b
	}
	nopts := bt.nopts
	xs, err := bt.f.SolveManyWith(bs, &nopts)
	for i, req := range batch {
		if err != nil {
			req.done <- solveDone{err: err}
			continue
		}
		req.done <- solveDone{x: xs[i]}
	}
}

// close drains the batcher: pending requests are flushed as one final
// batch, later submissions are refused. Called on handle eviction and
// on server shutdown.
func (bt *batcher) close() {
	bt.mu.Lock()
	if bt.closed {
		bt.mu.Unlock()
		return
	}
	bt.closed = true
	batch := bt.takeLocked()
	bt.mu.Unlock()
	bt.run(batch)
}

// batcherSnapshot is the wire form of the (server-wide, summed)
// batcher counters.
type batcherSnapshot struct {
	Batches  int64 `json:"batches"`
	RHS      int64 `json:"batched_rhs"`
	MaxBatch int64 `json:"max_batch"`
}
