// Package server implements sluserver's HTTP core: a fault-tolerant,
// long-lived sparse LU solve service built on the repository's static
// symbolic pipeline. The service exists because the paper's central
// economics — analyze once, factorize and solve many times against the
// same pattern — only pay off in a process that outlives a single
// solve. The server makes that lifetime explicit:
//
//   - POST /v1/analyze   — run (or reuse) the symbolic analysis of a
//     matrix pattern; cached in a bounded LRU keyed by pattern hash.
//   - POST /v1/factorize — numeric factorization against the cached
//     Symbolic, climbing a recovery ladder (fail → perturb →
//     equilibrate+perturb) with every rung recorded in the response.
//   - POST /v1/solve     — solves against a stored factorization;
//     concurrent single-RHS solves are coalesced into blocked BLAS-3
//     multi-RHS panels, bitwise identical to solving alone.
//   - GET /healthz, /readyz, /metrics — liveness, readiness (503 while
//     draining) and a JSON counter document.
//
// Error taxonomy → status mapping (the luerr classes):
//
//	400 malformed request (JSON, shape, indices, unknown policy)
//	404 unknown factorization id
//	413 matrix exceeds the memory budget or body limit
//	422 luerr.ErrSingular, luerr.ErrNonFinite — well-formed input the
//	    numeric pipeline cannot factor; recovery rungs attached
//	429 shed by admission control; jittered Retry-After attached
//	499 luerr.ErrCanceled — client disconnected mid-request
//	500 internal failure (including recovered handler panics)
//	503 server draining
//	504 luerr.ErrDeadline — per-request deadline expired
//
// Every request is admitted through a bounded queue, bounded in time
// by a deadline threaded from the HTTP request context into the
// numeric kernels via sched.Canceler, and isolated: a panic in one
// request's handler is recovered, counted and answered with 500
// without taking the process down.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/luerr"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// Config tunes the service. The zero value is usable: every field has
// a production default applied by New.
type Config struct {
	// CacheEntries bounds the symbolic LRU (default 32 patterns).
	CacheEntries int
	// StoreEntries bounds the factorization store (default 64).
	StoreEntries int
	// MaxInFlight is the number of concurrently computing requests
	// (default GOMAXPROCS).
	MaxInFlight int
	// MaxQueue is the number of requests allowed to wait for a compute
	// slot before admission sheds with 429 (default 4×MaxInFlight).
	MaxQueue int
	// MemoryBudget caps the approximate retained bytes of stored
	// factorizations (default 2 GiB). Exceeding it evicts LRU handles;
	// a single factorization larger than the budget is refused with 413.
	MemoryBudget int64
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
	// DefaultDeadline bounds requests that do not set timeout_ms
	// (default 30s); MaxDeadline caps what timeout_ms may ask for
	// (default 2m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Workers and SolveWorkers size the numeric and triangular-solve
	// parallelism per request (defaults: GOMAXPROCS capped at 8, and
	// Workers).
	Workers      int
	SolveWorkers int
	// BatchWindow and BatchMax shape solve coalescing: a single-RHS
	// solve waits at most BatchWindow for peers, and a batch flushes
	// early at BatchMax right-hand sides (defaults 2ms, 16).
	BatchWindow time.Duration
	BatchMax    int
	// Seed drives the jittered Retry-After; fixed so chaos runs replay.
	Seed int64
	// Faults optionally injects deterministic request-level faults
	// (see faultinject.RequestPlan); nil in production.
	Faults *faultinject.RequestPlan
}

func (c Config) withDefaults() Config {
	if c.CacheEntries <= 0 {
		c.CacheEntries = 32
	}
	if c.StoreEntries <= 0 {
		c.StoreEntries = 64
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 2 << 30
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.Workers <= 0 {
		c.Workers = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.SolveWorkers <= 0 {
		c.SolveWorkers = c.Workers
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	return c
}

// handle is one stored factorization: the immutable Symbolic it was
// built on (shared with the cache), the numeric factors, the matrix
// (kept for residuals and refinement), and the solve batcher.
type handle struct {
	id       string
	key      string
	sym      *core.Symbolic
	m        *sparse.CSC
	res      *ladderResult
	bt       *batcher
	bytes    int64
	lastUsed int64 // LRU clock tick; guarded by Server.mu
}

// Server is the HTTP core. Create with New, mount via Handler, stop
// with Close.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *symCache
	adm   *admission
	met   *metrics

	mu          sync.Mutex
	store       map[string]*handle
	storeBytes  int64
	clock       int64
	nextID      atomic.Int64
	draining    atomic.Bool
	evictions   atomic.Int64
	analysisOpt *core.Options
}

// New builds a server with cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	opts := core.DefaultOptions()
	opts.Workers = cfg.Workers
	opts.SolveWorkers = cfg.SolveWorkers
	s := &Server{
		cfg:         cfg,
		cache:       newSymCache(cfg.CacheEntries),
		adm:         newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.Seed),
		met:         newMetrics(time.Now()),
		store:       make(map[string]*handle),
		analysisOpt: opts,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.wrap(epAnalyze, s.handleAnalyze))
	mux.HandleFunc("POST /v1/factorize", s.wrap(epFactorize, s.handleFactorize))
	mux.HandleFunc("POST /v1/solve", s.wrap(epSolve, s.handleSolve))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the server: readiness flips to 503, new compute
// requests are refused, pending solve batches are flushed. Safe to
// call more than once.
func (s *Server) Close() {
	s.draining.Store(true)
	s.mu.Lock()
	handles := make([]*handle, 0, len(s.store))
	for _, h := range s.store {
		handles = append(handles, h)
	}
	s.mu.Unlock()
	for _, h := range handles {
		h.bt.close()
	}
}

// ---- wire types ----

type matrixJSON struct {
	N    int       `json:"n"`
	Rows []int     `json:"rows"`
	Cols []int     `json:"cols"`
	Vals []float64 `json:"vals"`
}

type analyzeRequest struct {
	Matrix    matrixJSON `json:"matrix"`
	TimeoutMS int64      `json:"timeout_ms"`
}

type statsJSON struct {
	N          int     `json:"n"`
	NNZA       int     `json:"nnz_a"`
	NNZFactors int     `json:"nnz_factors"`
	FillRatio  float64 `json:"fill_ratio"`
	Supernodes int     `json:"supernodes"`
	Blocks     int     `json:"blocks"`
	Tasks      int     `json:"tasks"`
}

type analyzeResponse struct {
	Key    string    `json:"key"`
	Cached bool      `json:"cached"`
	Stats  statsJSON `json:"stats"`
}

type factorizeRequest struct {
	Matrix    matrixJSON `json:"matrix"`
	Policy    string     `json:"policy"` // "", "ladder", "fail", "perturb"
	TimeoutMS int64      `json:"timeout_ms"`
}

type factorizeResponse struct {
	FID            string       `json:"fid"`
	Key            string       `json:"key"`
	SymbolicCached bool         `json:"symbolic_cached"`
	Rungs          []RungReport `json:"rungs"`
	Rung           string       `json:"rung"`
	Refine         bool         `json:"refine"`
	Perturbations  int          `json:"perturbations"`
}

type solveRequest struct {
	FID       string      `json:"fid"`
	B         []float64   `json:"b,omitempty"`
	BS        [][]float64 `json:"bs,omitempty"`
	Refine    bool        `json:"refine,omitempty"`
	TimeoutMS int64       `json:"timeout_ms"`
}

type solveResponse struct {
	X           []float64   `json:"x,omitempty"`
	XS          [][]float64 `json:"xs,omitempty"`
	Residual    float64     `json:"residual,omitempty"`
	Residuals   []float64   `json:"residuals,omitempty"`
	RefineSteps int         `json:"refine_steps,omitempty"`
	Rung        string      `json:"rung"`
}

type errorResponse struct {
	Error      string       `json:"error"`
	Code       string       `json:"code"`
	Rungs      []RungReport `json:"rungs,omitempty"`
	RetryAfter int          `json:"retry_after_secs,omitempty"`
}

// httpError is a handler failure with its transport mapping attached.
type httpError struct {
	status     int
	code       string
	msg        string
	rungs      []RungReport
	retryAfter int
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, code: "bad_request", msg: fmt.Sprintf(format, args...)}
}

// statusClientClosedRequest is nginx's conventional code for "client
// went away"; Go has no named constant for it.
const statusClientClosedRequest = 499

// mapError translates the unified error taxonomy into transport terms.
// Order matters twice: the deadline class is checked before the
// general cancellation class (a deadline-canceled execution matches
// both, and 504 is the more specific answer), and the numeric classes
// come before cancellation too — a failing task cancels the rest of
// its execution, so the error a poisoned factorization surfaces is a
// CancelError whose *cause* is the non-finite failure, and the cause
// is the answer.
func (s *Server) mapError(err error) *httpError {
	var he *httpError
	if errors.As(err, &he) {
		return he
	}
	switch {
	case errors.Is(err, luerr.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		s.met.deadline.Add(1)
		return &httpError{status: http.StatusGatewayTimeout, code: "deadline", msg: err.Error()}
	case errors.Is(err, luerr.ErrSingular):
		s.met.singular.Add(1)
		return &httpError{status: http.StatusUnprocessableEntity, code: "singular", msg: err.Error()}
	case errors.Is(err, luerr.ErrNonFinite):
		s.met.nonFinite.Add(1)
		return &httpError{status: http.StatusUnprocessableEntity, code: "non_finite", msg: err.Error()}
	case errors.Is(err, luerr.ErrCanceled) || errors.Is(err, context.Canceled):
		s.met.canceled.Add(1)
		return &httpError{status: statusClientClosedRequest, code: "canceled", msg: err.Error()}
	case errors.Is(err, errShed):
		s.met.shed.Add(1)
		return &httpError{status: http.StatusTooManyRequests, code: "shed", msg: err.Error(), retryAfter: s.adm.retryAfterSecs()}
	case errors.Is(err, errBatcherClosed):
		return &httpError{status: http.StatusServiceUnavailable, code: "draining", msg: err.Error()}
	}
	return &httpError{status: http.StatusInternalServerError, code: "internal", msg: err.Error()}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Best effort: the client may already be gone on 499.
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, he *httpError) {
	if he.retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", he.retryAfter))
	}
	writeJSON(w, he.status, errorResponse{Error: he.msg, Code: he.code, Rungs: he.rungs, RetryAfter: he.retryAfter})
}

// ---- request plumbing ----

// wrap is the middleware chain of the compute endpoints: panic
// isolation, drain check, deterministic fault injection, latency
// metrics, admission control and the MaxDeadline backstop context.
func (s *Server) wrap(ep endpoint, h func(w http.ResponseWriter, r *http.Request, fault faultinject.Fault) *httpError) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.inflight.Add(1)
		failed := false
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				failed = true
				s.writeError(w, &httpError{
					status: http.StatusInternalServerError,
					code:   "internal",
					msg:    fmt.Sprintf("server: request panicked: %v", p),
				})
			}
			s.met.inflight.Add(-1)
			s.met.endpoints[ep].observe(time.Since(start), failed)
		}()
		if s.draining.Load() {
			failed = true
			s.writeError(w, &httpError{status: http.StatusServiceUnavailable, code: "draining", msg: "server: draining"})
			return
		}
		seq, fault := s.cfg.Faults.Claim()
		if fault.Mode != faultinject.None {
			s.met.faults.Add(1)
		}
		switch fault.Mode {
		case faultinject.Panic:
			panic(fmt.Sprintf("server: injected fault on request %d: %v", seq, faultinject.ErrInjected))
		case faultinject.Error:
			failed = true
			s.writeError(w, &httpError{
				status: http.StatusInternalServerError,
				code:   "internal",
				msg:    fmt.Sprintf("server: injected fault on request %d: %v", seq, faultinject.ErrInjected),
			})
			return
		case faultinject.Delay:
			time.Sleep(fault.Sleep)
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxDeadline)
		defer cancel()
		release, err := s.adm.acquire(ctx)
		if err != nil {
			failed = true
			s.writeError(w, s.mapError(err))
			return
		}
		defer release()
		if he := h(w, r.WithContext(ctx), fault); he != nil {
			failed = true
			s.writeError(w, he)
		}
	}
}

// deadlineCtx tightens the backstop context to the request's own
// deadline (timeout_ms, capped at MaxDeadline; DefaultDeadline when
// unset) and binds a sched.Canceler to it, so the HTTP layer's
// cancellation reaches the numeric kernels' per-task polling. The
// canceler's cause distinguishes deadline expiry from client
// disconnect, which is what keeps 504 and 499 apart.
func (s *Server) deadlineCtx(r *http.Request, timeoutMS int64) (context.Context, *sched.Canceler, func()) {
	d := s.cfg.DefaultDeadline
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxDeadline {
			d = s.cfg.MaxDeadline
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	cc := &sched.Canceler{}
	stopAF := context.AfterFunc(ctx, func() {
		cause := context.Cause(ctx)
		if errors.Is(cause, context.DeadlineExceeded) {
			cc.Cancel(core.ErrDeadlineExceeded)
		} else {
			cc.Cancel(sched.ErrCanceled)
		}
	})
	return ctx, cc, func() { stopAF(); cancel() }
}

// numOpts is the per-request numeric state handed to the core layer.
func (s *Server) numOpts(cc *sched.Canceler) core.NumericOptions {
	return core.NumericOptions{
		Workers:      s.cfg.Workers,
		SolveWorkers: s.cfg.SolveWorkers,
		Cancel:       cc,
	}
}

// parseMatrix validates and assembles a triplet payload. Out-of-range
// indices are a 400 here, not a panic in sparse.Triplet.Add.
func parseMatrix(mj *matrixJSON, fault faultinject.Fault) (*sparse.CSC, *httpError) {
	if mj.N <= 0 {
		return nil, badRequest("server: matrix order must be positive, got %d", mj.N)
	}
	if len(mj.Rows) != len(mj.Cols) || len(mj.Rows) != len(mj.Vals) {
		return nil, badRequest("server: rows/cols/vals lengths differ: %d/%d/%d", len(mj.Rows), len(mj.Cols), len(mj.Vals))
	}
	if len(mj.Rows) == 0 {
		return nil, badRequest("server: matrix has no entries")
	}
	if fault.Mode == faultinject.PoisonNaN {
		// Deterministic input corruption: the numeric layer's
		// non-finite guards must catch it and answer 422.
		mj.Vals[0] = math.NaN()
	}
	t := sparse.NewTriplet(mj.N, mj.N)
	for k := range mj.Rows {
		i, j := mj.Rows[k], mj.Cols[k]
		if i < 0 || i >= mj.N || j < 0 || j >= mj.N {
			return nil, badRequest("server: entry %d at (%d,%d) outside %d×%d", k, i, j, mj.N, mj.N)
		}
		t.Add(i, j, mj.Vals[k])
	}
	return t.ToCSC(), nil
}

func decodeBody(r *http.Request, v any) *httpError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &httpError{status: http.StatusRequestEntityTooLarge, code: "too_large",
				msg: fmt.Sprintf("server: request body exceeds %d bytes", tooLarge.Limit)}
		}
		return badRequest("server: bad request body: %v", err)
	}
	return nil
}

// checkFinite guards solve outputs: a NaN/Inf in x means the inputs
// were poisoned (the factors are finite by construction), and the
// answer is the non-finite class, not a silently wrong vector.
func checkFinite(x []float64) error {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("server: non-finite entry in solution: %w", core.ErrNonFinite)
		}
	}
	return nil
}

// analyzeFor produces the Symbolic for a pattern the cache does not
// hold. When a resident analysis of the same order exists, the miss is
// routed through core.Reanalyze: a near-identical pattern re-eliminates
// only the changed column-etree subtrees of the resident checkpoint
// (reported as reused, counted as a reanalyze); identical patterns
// cannot reach here because the cache key is the same PatternHash that
// Reanalyze compares. Failed or too-large deltas fall back to a full
// pipeline inside Reanalyze and count as ordinary analyzes.
func (s *Server) analyzeFor(m *sparse.CSC) (*core.Symbolic, bool, error) {
	if prev := s.cache.recent(m.NCols); prev != nil {
		sym, level, err := core.Reanalyze(prev, m)
		return sym, level == core.ReuseDelta, err
	}
	sym, err := core.Analyze(m, s.analysisOpt)
	return sym, false, err
}

// ---- handlers ----

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request, fault faultinject.Fault) *httpError {
	var req analyzeRequest
	if he := decodeBody(r, &req); he != nil {
		return he
	}
	m, he := parseMatrix(&req.Matrix, fault)
	if he != nil {
		return he
	}
	ctx, _, stop := s.deadlineCtx(r, req.TimeoutMS)
	defer stop()
	key := patternKey(m, s.analysisOpt)
	sym, hit, err := s.cache.getOrAnalyze(ctx, key, func() (*core.Symbolic, bool, error) {
		return s.analyzeFor(m)
	})
	if err != nil {
		return s.mapError(err)
	}
	st := sym.Stats
	writeJSON(w, http.StatusOK, analyzeResponse{
		Key:    key,
		Cached: hit,
		Stats: statsJSON{
			N: st.N, NNZA: st.NNZA, NNZFactors: st.NNZFactors,
			FillRatio: st.FillRatio, Supernodes: st.Supernodes,
			Blocks: st.Blocks, Tasks: st.TaskCount,
		},
	})
	return nil
}

func (s *Server) handleFactorize(w http.ResponseWriter, r *http.Request, fault faultinject.Fault) *httpError {
	var req factorizeRequest
	if he := decodeBody(r, &req); he != nil {
		return he
	}
	if _, err := rungsFor(req.Policy); err != nil {
		return badRequest("%v", err)
	}
	m, he := parseMatrix(&req.Matrix, fault)
	if he != nil {
		return he
	}
	ctx, cc, stop := s.deadlineCtx(r, req.TimeoutMS)
	defer stop()
	key := patternKey(m, s.analysisOpt)
	sym, hit, err := s.cache.getOrAnalyze(ctx, key, func() (*core.Symbolic, bool, error) {
		return s.analyzeFor(m)
	})
	if err != nil {
		return s.mapError(err)
	}
	res, err := climbLadder(sym, m, s.numOpts(cc), req.Policy)
	if err != nil {
		mapped := s.mapError(err)
		if res != nil {
			mapped.rungs = res.rungs
		}
		return mapped
	}
	s.met.rungWins[res.won].Add(1)

	// Batches run detached from any single request, so their options
	// carry the service-level backstop deadline, not a request's.
	bnopts := s.numOpts(nil)
	bnopts.Timeout = s.cfg.MaxDeadline
	h := &handle{
		id:  fmt.Sprintf("f%d", s.nextID.Add(1)),
		key: key,
		sym: sym,
		m:   m,
		res: res,
		bytes: int64(sym.Stats.NNZFactors)*8 +
			int64(m.ColPtr[m.NCols])*16 + int64(m.NCols)*64,
	}
	h.bt = newBatcher(res.f, s.cfg.BatchWindow, s.cfg.BatchMax, bnopts)
	if h.bytes > s.cfg.MemoryBudget {
		return &httpError{status: http.StatusRequestEntityTooLarge, code: "too_large",
			msg: fmt.Sprintf("server: factorization needs ~%d bytes, budget is %d", h.bytes, s.cfg.MemoryBudget)}
	}
	for _, victim := range s.storeInsert(h) {
		victim.bt.close()
	}
	writeJSON(w, http.StatusOK, factorizeResponse{
		FID:            h.id,
		Key:            key,
		SymbolicCached: hit,
		Rungs:          res.rungs,
		Rung:           res.won.String(),
		Refine:         res.refine,
		Perturbations:  res.f.PivotPerturbations(),
	})
	return nil
}

// storeInsert adds h and evicts least-recently-used handles until both
// the entry cap and the memory budget hold. Evicted handles are
// returned for the caller to drain outside the lock.
func (s *Server) storeInsert(h *handle) []*handle {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	h.lastUsed = s.clock
	s.store[h.id] = h
	s.storeBytes += h.bytes
	var evicted []*handle
	for (len(s.store) > s.cfg.StoreEntries || s.storeBytes > s.cfg.MemoryBudget) && len(s.store) > 1 {
		var victim *handle
		for _, cand := range s.store {
			if cand != h && (victim == nil || cand.lastUsed < victim.lastUsed) {
				victim = cand
			}
		}
		if victim == nil {
			break
		}
		delete(s.store, victim.id)
		s.storeBytes -= victim.bytes
		s.evictions.Add(1)
		evicted = append(evicted, victim)
	}
	return evicted
}

// lookup fetches a handle and touches its LRU slot.
func (s *Server) lookup(fid string) (*handle, *httpError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.store[fid]
	if !ok {
		return nil, &httpError{status: http.StatusNotFound, code: "not_found",
			msg: fmt.Sprintf("server: unknown factorization %q", fid)}
	}
	s.clock++
	h.lastUsed = s.clock
	return h, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request, fault faultinject.Fault) *httpError {
	var req solveRequest
	if he := decodeBody(r, &req); he != nil {
		return he
	}
	h, he := s.lookup(req.FID)
	if he != nil {
		return he
	}
	n := h.sym.N
	single := req.B != nil
	if single == (len(req.BS) > 0) {
		return badRequest("server: exactly one of b and bs must be set")
	}
	bs := req.BS
	if single {
		bs = [][]float64{req.B}
	}
	for i, b := range bs {
		if len(b) != n {
			return badRequest("server: rhs %d has length %d, want %d", i, len(b), n)
		}
	}
	if fault.Mode == faultinject.PoisonNaN {
		bs[0][0] = math.NaN()
	}
	ctx, cc, stop := s.deadlineCtx(r, req.TimeoutMS)
	defer stop()

	refine := h.res.refine || req.Refine
	resp := solveResponse{Rung: h.res.won.String()}
	switch {
	case refine:
		// Refined solves bypass the batcher: each runs its own
		// solve+refine loop against the stored matrix under the
		// request's deadline, and reports the achieved backward error.
		nopts := s.numOpts(cc)
		xs := make([][]float64, len(bs))
		residuals := make([]float64, len(bs))
		steps := 0
		for i, b := range bs {
			x, berr, st, err := h.res.f.SolveRefinedWith(h.m, b, 20, 1e-11, &nopts)
			if err != nil {
				return s.mapError(err)
			}
			if err := checkFinite(x); err != nil {
				return s.mapError(err)
			}
			xs[i] = x
			residuals[i] = berr
			if st > steps {
				steps = st
			}
		}
		s.met.refined.Add(int64(len(bs)))
		resp.RefineSteps = steps
		if single {
			resp.X, resp.Residual = xs[0], residuals[0]
		} else {
			resp.XS, resp.Residuals = xs, residuals
		}
	case single:
		// The batched fast path. Single-RHS requests always go through
		// the multi-RHS panel sweeps (batch of 1 when no peer arrives
		// in the window), which keeps batched and solo answers bitwise
		// identical.
		x, err := h.bt.submit(ctx, req.B)
		if err != nil {
			return s.mapError(err)
		}
		if err := checkFinite(x); err != nil {
			return s.mapError(err)
		}
		resp.X = x
		resp.Residual = core.Residual(h.m, x, req.B)
	default:
		nopts := s.numOpts(cc)
		xs, err := h.res.f.SolveManyWith(bs, &nopts)
		if err != nil {
			return s.mapError(err)
		}
		resp.XS = xs
		resp.Residuals = make([]float64, len(xs))
		for i, x := range xs {
			if err := checkFinite(x); err != nil {
				return s.mapError(err)
			}
			resp.Residuals[i] = core.Residual(h.m, x, bs[i])
		}
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.met.snapshot(time.Now())
	snap.Cache = s.cache.snapshot()
	snap.Admission = s.adm.snapshot()
	s.mu.Lock()
	var bt batcherSnapshot
	for _, h := range s.store {
		bt.Batches += h.bt.batches.Load()
		bt.RHS += h.bt.rhs.Load()
		if mb := h.bt.maxBatch.Load(); mb > bt.MaxBatch {
			bt.MaxBatch = mb
		}
	}
	snap.Store = storeSnapshot{
		Entries:   len(s.store),
		Capacity:  s.cfg.StoreEntries,
		Bytes:     s.storeBytes,
		Budget:    s.cfg.MemoryBudget,
		Evictions: s.evictions.Load(),
	}
	s.mu.Unlock()
	snap.Batcher = bt
	writeJSON(w, http.StatusOK, snap)
}

// storeSnapshot is the wire form of the factorization store counters.
type storeSnapshot struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Bytes     int64 `json:"approx_bytes"`
	Budget    int64 `json:"budget_bytes"`
	Evictions int64 `json:"evictions"`
}
