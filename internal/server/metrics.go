package server

import (
	"sync/atomic"
	"time"
)

// endpoint indexes the per-endpoint counters of the metrics block.
type endpoint int

const (
	epAnalyze endpoint = iota
	epFactorize
	epSolve
	numEndpoints
)

func (e endpoint) String() string {
	switch e {
	case epAnalyze:
		return "analyze"
	case epFactorize:
		return "factorize"
	case epSolve:
		return "solve"
	}
	return "unknown"
}

// endpointMetrics aggregates one endpoint's request stream: counts,
// failures and a latency summary (sum + max, enough for mean/worst
// dashboards without histogram buckets).
type endpointMetrics struct {
	count  atomic.Int64
	errors atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// observe folds one finished request into the summary.
func (m *endpointMetrics) observe(d time.Duration, failed bool) {
	ns := d.Nanoseconds()
	m.count.Add(1)
	if failed {
		m.errors.Add(1)
	}
	m.sumNs.Add(ns)
	for {
		cur := m.maxNs.Load()
		if ns <= cur || m.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// metrics is the service-wide counter block. Every field is an atomic
// touched on the request path; the snapshot marshals to the /metrics
// JSON document. There is no locking and no allocation on the hot
// path.
type metrics struct {
	start time.Time

	endpoints [numEndpoints]endpointMetrics

	inflight atomic.Int64
	panics   atomic.Int64
	shed     atomic.Int64
	faults   atomic.Int64

	// Failure classes of the unified error taxonomy, as mapped to
	// responses (see mapError).
	singular  atomic.Int64
	nonFinite atomic.Int64
	deadline  atomic.Int64
	canceled  atomic.Int64

	// Recovery-ladder outcomes: index = rung that finally produced the
	// factorization (see recovery.go), plus solves that went through
	// iterative refinement.
	rungWins [numRungs]atomic.Int64
	refined  atomic.Int64
}

func newMetrics(now time.Time) *metrics {
	return &metrics{start: now}
}

// endpointSnapshot is the wire form of one endpoint summary.
type endpointSnapshot struct {
	Count     int64   `json:"count"`
	Errors    int64   `json:"errors"`
	MeanMs    float64 `json:"mean_ms"`
	MaxMs     float64 `json:"max_ms"`
	TotalSecs float64 `json:"total_secs"`
}

// metricsSnapshot is the /metrics JSON document. Cache, admission and
// batching blocks are filled in by the server from their owners.
type metricsSnapshot struct {
	UptimeSecs float64 `json:"uptime_secs"`
	InFlight   int64   `json:"in_flight"`

	Analyze   endpointSnapshot `json:"analyze"`
	Factorize endpointSnapshot `json:"factorize"`
	Solve     endpointSnapshot `json:"solve"`

	Panics         int64 `json:"panics_recovered"`
	Shed           int64 `json:"shed"`
	FaultsInjected int64 `json:"faults_injected"`

	Singular  int64 `json:"err_singular"`
	NonFinite int64 `json:"err_non_finite"`
	Deadline  int64 `json:"err_deadline"`
	Canceled  int64 `json:"err_canceled"`

	RungFail        int64 `json:"rung_fail_wins"`
	RungPerturb     int64 `json:"rung_perturb_wins"`
	RungEquilibrate int64 `json:"rung_equilibrate_wins"`
	RefinedSolves   int64 `json:"refined_solves"`

	Cache     cacheSnapshot     `json:"symbolic_cache"`
	Admission admissionSnapshot `json:"admission"`
	Batcher   batcherSnapshot   `json:"batcher"`
	Store     storeSnapshot     `json:"store"`
}

func (m *metrics) snapshotEndpoint(e endpoint) endpointSnapshot {
	em := &m.endpoints[e]
	count := em.count.Load()
	sum := em.sumNs.Load()
	snap := endpointSnapshot{
		Count:     count,
		Errors:    em.errors.Load(),
		MaxMs:     float64(em.maxNs.Load()) / 1e6,
		TotalSecs: float64(sum) / 1e9,
	}
	if count > 0 {
		snap.MeanMs = float64(sum) / float64(count) / 1e6
	}
	return snap
}

func (m *metrics) snapshot(now time.Time) metricsSnapshot {
	return metricsSnapshot{
		UptimeSecs:      now.Sub(m.start).Seconds(),
		InFlight:        m.inflight.Load(),
		Analyze:         m.snapshotEndpoint(epAnalyze),
		Factorize:       m.snapshotEndpoint(epFactorize),
		Solve:           m.snapshotEndpoint(epSolve),
		Panics:          m.panics.Load(),
		Shed:            m.shed.Load(),
		FaultsInjected:  m.faults.Load(),
		Singular:        m.singular.Load(),
		NonFinite:       m.nonFinite.Load(),
		Deadline:        m.deadline.Load(),
		Canceled:        m.canceled.Load(),
		RungFail:        m.rungWins[rungFail].Load(),
		RungPerturb:     m.rungWins[rungPerturb].Load(),
		RungEquilibrate: m.rungWins[rungEquilibrate].Load(),
		RefinedSolves:   m.refined.Load(),
	}
}
