package supernode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/etree"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

func randomZeroFreeDiag(n int, density float64, rng *rand.Rand) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Add(i, i, 1+rng.Float64())
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				t.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

func mustFactor(t *testing.T, a *sparse.CSC) *symbolic.Result {
	t.Helper()
	r, err := symbolic.Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTrivialPartition(t *testing.T) {
	p := Trivial(5)
	if p.NumBlocks() != 5 {
		t.Fatalf("NumBlocks = %d", p.NumBlocks())
	}
	for k := 0; k < 5; k++ {
		if p.Size(k) != 1 || p.ColToBlock[k] != k {
			t.Fatal("trivial partition malformed")
		}
	}
	if p.MaxSize() != 1 || p.AvgSize() != 1 {
		t.Fatal("trivial stats wrong")
	}
}

func TestStrictPartitionDense(t *testing.T) {
	// A dense matrix is one single supernode.
	n := 6
	d := make([]float64, n*n)
	for i := range d {
		d[i] = 1
	}
	sym := mustFactor(t, sparse.FromDense(d, n, n, 0))
	p := StrictPartition(sym)
	if p.NumBlocks() != 1 {
		t.Fatalf("dense matrix gives %d supernodes, want 1", p.NumBlocks())
	}
}

func TestStrictPartitionDiagonal(t *testing.T) {
	// A diagonal matrix: no column shares structure with the next in the
	// supernode sense (L col j = {j}, next col has {j+1}: tails equal —
	// but the L condition needs j+1 ∈ struct(L col j), which fails).
	tr := sparse.NewTriplet(4, 4)
	for i := 0; i < 4; i++ {
		tr.Add(i, i, 1)
	}
	sym := mustFactor(t, tr.ToCSC())
	p := StrictPartition(sym)
	if p.NumBlocks() != 4 {
		t.Fatalf("diagonal matrix gives %d supernodes, want 4", p.NumBlocks())
	}
}

// Verify the supernode invariant on the result: within a block, L
// columns have identical structure below the block and a dense diagonal
// block; U rows have identical structure right of the block.
func checkPartitionInvariant(t *testing.T, sym *symbolic.Result, p *Partition) {
	t.Helper()
	for k := 0; k < p.NumBlocks(); k++ {
		lo, hi := p.Range(k)
		for c := lo + 1; c < hi; c++ {
			lPrev, lCur := sym.L.Col(c-1), sym.L.Col(c)
			if len(lPrev) != len(lCur)+1 {
				t.Fatalf("block %d: L col %d and %d lengths %d,%d", k, c-1, c, len(lPrev), len(lCur))
			}
			for i := range lCur {
				if lPrev[i+1] != lCur[i] {
					t.Fatalf("block %d: L cols %d,%d structure mismatch", k, c-1, c)
				}
			}
			uPrev, uCur := sym.URows.Col(c-1), sym.URows.Col(c)
			if len(uPrev) != len(uCur)+1 {
				t.Fatalf("block %d: U rows %d,%d lengths", k, c-1, c)
			}
			for i := range uCur {
				if uPrev[i+1] != uCur[i] {
					t.Fatalf("block %d: U rows %d,%d structure mismatch", k, c-1, c)
				}
			}
		}
	}
}

func TestStrictPartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(30)
		sym := mustFactor(t, randomZeroFreeDiag(n, 0.15, rng))
		checkPartitionInvariant(t, sym, StrictPartition(sym))
	}
}

func TestStrictPartitionMaximal(t *testing.T) {
	// No two adjacent strict blocks could be merged while preserving the
	// invariant: the boundary columns must violate one of the conditions.
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(25)
		sym := mustFactor(t, randomZeroFreeDiag(n, 0.2, rng))
		p := StrictPartition(sym)
		for k := 1; k < p.NumBlocks(); k++ {
			c := p.BlockStart[k]
			lPrev, lCur := sym.L.Col(c-1), sym.L.Col(c)
			uPrev, uCur := sym.URows.Col(c-1), sym.URows.Col(c)
			if equalTail(lPrev, lCur) && equalTail(uPrev, uCur) {
				t.Fatalf("trial %d: blocks %d,%d could have been merged at col %d", trial, k-1, k, c)
			}
		}
	}
}

func TestPostorderingEnlargesSupernodes(t *testing.T) {
	// The paper's Table 3 effect: on structured matrices, postordering
	// the LU eforest must not increase the number of supernodes, and
	// usually decreases it. Use a matrix whose natural order scatters
	// siblings: a grid-like operator permuted randomly is too noisy to
	// guarantee a strict decrease, so require only SNPO ≤ SN across a
	// batch and a strict decrease in aggregate.
	rng := rand.New(rand.NewSource(73))
	totalSN, totalSNPO := 0, 0
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(30)
		a := randomZeroFreeDiag(n, 0.06, rng)
		sym := mustFactor(t, a)
		sn := StrictPartition(sym).NumBlocks()
		po := etree.PostorderSymbolic(sym, etree.LUForest(sym))
		snpo := StrictPartition(po.Sym).NumBlocks()
		totalSN += sn
		totalSNPO += snpo
	}
	if totalSNPO > totalSN {
		t.Fatalf("postordering increased supernode count in aggregate: %d → %d", totalSN, totalSNPO)
	}
}

// checkWellFormed verifies the tiling invariant every partition must
// satisfy regardless of policy: BlockStart covers [0, n) with strictly
// increasing boundaries and ColToBlock is consistent.
func checkWellFormed(t *testing.T, p *Partition, n int) {
	t.Helper()
	if p.BlockStart[0] != 0 || p.BlockStart[p.NumBlocks()] != n {
		t.Fatalf("partition does not tile [0, %d): starts %v", n, p.BlockStart)
	}
	for k := 0; k < p.NumBlocks(); k++ {
		lo, hi := p.Range(k)
		if hi <= lo {
			t.Fatalf("block %d empty or inverted: [%d, %d)", k, lo, hi)
		}
		for c := lo; c < hi; c++ {
			if p.ColToBlock[c] != k {
				t.Fatalf("ColToBlock[%d] = %d, want %d", c, p.ColToBlock[c], k)
			}
		}
	}
}

func TestAmalgamateSplitRespectsMaxSize(t *testing.T) {
	// Merging is fill-ratio-driven with no width cap, so a permissive
	// MaxFill can grow blocks past MaxSize; Split restores the bound.
	rng := rand.New(rand.NewSource(74))
	sym := mustFactor(t, randomZeroFreeDiag(60, 0.05, rng))
	p := StrictPartition(sym)
	for _, maxSize := range []int{1, 2, 4, 8} {
		am := Amalgamate(p, sym, AmalgamationOptions{MaxSize: maxSize, MaxFill: 1})
		sp := Split(am, maxSize)
		if sp.MaxSize() > maxSize {
			t.Fatalf("split partition exceeded MaxSize %d: %d", maxSize, sp.MaxSize())
		}
		checkWellFormed(t, am, 60)
		checkWellFormed(t, sp, 60)
	}
}

func TestEmptyPartitionStats(t *testing.T) {
	// Zero-value and zero-column partitions must not panic and report
	// zero stats.
	for _, p := range []*Partition{{}, Trivial(0)} {
		if got := p.NumBlocks(); got != 0 {
			t.Fatalf("NumBlocks = %d, want 0", got)
		}
		if got := p.MaxSize(); got != 0 {
			t.Fatalf("MaxSize = %d, want 0", got)
		}
		if got := p.AvgSize(); got != 0 {
			t.Fatalf("AvgSize = %g, want 0", got)
		}
	}
}

func TestAmalgamateWidthOneChain(t *testing.T) {
	// A diagonal matrix is the extreme width-1 chain: every strict block
	// has width 1 and any merge introduces 50% panel fill. The default
	// MaxFill=0.25 must keep the chain intact; MaxFill=0.5 may merge but
	// must stay well-formed.
	n := 12
	tr := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 1)
	}
	sym := mustFactor(t, tr.ToCSC())
	p := StrictPartition(sym)
	if p.MaxSize() != 1 {
		t.Fatalf("diagonal strict partition MaxSize = %d, want 1", p.MaxSize())
	}
	am := Amalgamate(p, sym, AmalgamationOptions{MaxSize: 32, MaxFill: 0.25})
	if am.NumBlocks() != n {
		t.Fatalf("MaxFill=0.25 merged diagonal blocks: %d blocks, want %d", am.NumBlocks(), n)
	}
	checkWellFormed(t, am, n)
	loose := Amalgamate(p, sym, AmalgamationOptions{MaxSize: 32, MaxFill: 0.75})
	checkWellFormed(t, loose, n)
	checkWellFormed(t, Split(loose, 4), n)
}

func TestAmalgamateDensePreservesInvariant(t *testing.T) {
	// A fully dense pattern is a single strict supernode; Amalgamate must
	// leave it alone and the strict structural invariant must keep
	// holding. Splitting a dense block also preserves it, because every
	// consecutive column range of a dense matrix shares trailing
	// structure.
	n := 9
	d := make([]float64, n*n)
	for i := range d {
		d[i] = 1
	}
	sym := mustFactor(t, sparse.FromDense(d, n, n, 0))
	p := StrictPartition(sym)
	am := Amalgamate(p, sym, AmalgamationOptions{MaxSize: 4, MaxFill: 0.25})
	if am.NumBlocks() != 1 {
		t.Fatalf("dense pattern amalgamated into %d blocks, want 1", am.NumBlocks())
	}
	checkWellFormed(t, am, n)
	checkPartitionInvariant(t, sym, am)
	sp := Split(am, 4)
	if sp.MaxSize() > 4 {
		t.Fatalf("Split left a block of width %d > 4", sp.MaxSize())
	}
	checkWellFormed(t, sp, n)
	checkPartitionInvariant(t, sym, sp)
}

func TestSplitBalancesWidths(t *testing.T) {
	// Split produces near-equal panels: widths differ by at most one
	// within what used to be a single block.
	p := fromStarts(20, []int{0, 20})
	sp := Split(p, 6)
	checkWellFormed(t, sp, 20)
	if sp.NumBlocks() != 4 {
		t.Fatalf("Split(20, 6) gave %d blocks, want 4", sp.NumBlocks())
	}
	min, max := 20, 0
	for k := 0; k < sp.NumBlocks(); k++ {
		s := sp.Size(k)
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Fatalf("unbalanced split widths: min %d max %d", min, max)
	}
	// Already-compliant partitions come back unchanged.
	if got := Split(sp, 6); got != sp {
		t.Fatal("Split of a compliant partition should be a no-op")
	}
}

func TestAmalgamateZeroFillKeepsExactZeros(t *testing.T) {
	// With MaxFill = 0, merges happen only when they add no explicit
	// zeros, so the explicit-zero count of the panel view must not grow.
	rng := rand.New(rand.NewSource(75))
	sym := mustFactor(t, randomZeroFreeDiag(40, 0.08, rng))
	p := StrictPartition(sym)
	am := Amalgamate(p, sym, AmalgamationOptions{MaxSize: 16, MaxFill: 0})
	if am.NumBlocks() > p.NumBlocks() {
		t.Fatal("amalgamation increased the block count")
	}
	checkNoPanelZeros := func(part *Partition) bool {
		for k := 0; k < part.NumBlocks(); k++ {
			lo, hi := part.Range(k)
			var lRows, uCols []int
			lNNZ, uNNZ := 0, 0
			for c := lo; c < hi; c++ {
				lRows = sparse.UnionSorted(lRows, sym.L.Col(c))
				uCols = sparse.UnionSorted(uCols, sym.URows.Col(c))
				lNNZ += len(sym.L.Col(c))
				uNNZ += len(sym.URows.Col(c))
			}
			if (hi-lo)*(len(lRows)+len(uCols)) != lNNZ+uNNZ {
				return false
			}
		}
		return true
	}
	if checkNoPanelZeros(p) && !checkNoPanelZeros(am) {
		t.Fatal("MaxFill=0 amalgamation introduced explicit panel zeros")
	}
}

func TestBlockPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	sym := mustFactor(t, randomZeroFreeDiag(30, 0.1, rng))
	p := Amalgamate(StrictPartition(sym), sym, AmalgamationOptions{MaxSize: 6, MaxFill: 0.5})
	bp := BlockPattern(sym, p)
	if bp.NCols != p.NumBlocks() {
		t.Fatalf("block pattern is %d×%d, want %d", bp.NRows, bp.NCols, p.NumBlocks())
	}
	// Diagonal blocks present.
	for k := 0; k < p.NumBlocks(); k++ {
		if !bp.Has(k, k) {
			t.Fatalf("diagonal block %d missing", k)
		}
	}
	// Every scalar entry is covered by a block; every off-diagonal block
	// contains at least one scalar entry.
	hasEntry := make(map[[2]int]bool)
	for j := 0; j < sym.N; j++ {
		for _, i := range sym.L.Col(j) {
			bi, bj := p.ColToBlock[i], p.ColToBlock[j]
			if !bp.Has(bi, bj) {
				t.Fatalf("entry (%d,%d) not covered by block pattern", i, j)
			}
			hasEntry[[2]int{bi, bj}] = true
		}
		for _, i := range sym.U.Col(j) {
			bi, bj := p.ColToBlock[i], p.ColToBlock[j]
			if !bp.Has(bi, bj) {
				t.Fatalf("entry (%d,%d) not covered by block pattern", i, j)
			}
			hasEntry[[2]int{bi, bj}] = true
		}
	}
	for bj := 0; bj < bp.NCols; bj++ {
		for _, bi := range bp.Col(bj) {
			if bi != bj && !hasEntry[[2]int{bi, bj}] {
				t.Fatalf("block (%d,%d) has no scalar entry", bi, bj)
			}
		}
	}
}

func TestExplicitZeros(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sym := mustFactor(t, randomZeroFreeDiag(25, 0.12, rng))
	p := StrictPartition(sym)
	bp := BlockPattern(sym, p)
	z := ExplicitZeros(sym, p, bp)
	if z < 0 {
		t.Fatalf("ExplicitZeros = %d < 0", z)
	}
	// Amalgamating aggressively can only increase explicit zeros.
	am := Amalgamate(p, sym, AmalgamationOptions{MaxSize: 25, MaxFill: 1})
	za := ExplicitZeros(sym, am, BlockPattern(sym, am))
	if za < z {
		t.Fatalf("aggressive amalgamation decreased explicit zeros: %d → %d", z, za)
	}
}

// Property: partitions returned by StrictPartition and Amalgamate are
// always well-formed tilings.
func TestQuickPartitionWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := randomZeroFreeDiag(n, 0.15, rng)
		sym, err := symbolic.Factor(a)
		if err != nil {
			return false
		}
		maxSize := 1 + rng.Intn(10)
		am := Amalgamate(StrictPartition(sym), sym, AmalgamationOptions{MaxSize: maxSize, MaxFill: rng.Float64()})
		for _, p := range []*Partition{
			StrictPartition(sym),
			am,
			Split(am, maxSize),
		} {
			if p.BlockStart[0] != 0 || p.BlockStart[p.NumBlocks()] != n {
				return false
			}
			for k := 0; k < p.NumBlocks(); k++ {
				lo, hi := p.Range(k)
				if hi <= lo {
					return false
				}
				for c := lo; c < hi; c++ {
					if p.ColToBlock[c] != k {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
