package supernode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/etree"
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

func randomZeroFreeDiag(n int, density float64, rng *rand.Rand) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Add(i, i, 1+rng.Float64())
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				t.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

func mustFactor(t *testing.T, a *sparse.CSC) *symbolic.Result {
	t.Helper()
	r, err := symbolic.Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTrivialPartition(t *testing.T) {
	p := Trivial(5)
	if p.NumBlocks() != 5 {
		t.Fatalf("NumBlocks = %d", p.NumBlocks())
	}
	for k := 0; k < 5; k++ {
		if p.Size(k) != 1 || p.ColToBlock[k] != k {
			t.Fatal("trivial partition malformed")
		}
	}
	if p.MaxSize() != 1 || p.AvgSize() != 1 {
		t.Fatal("trivial stats wrong")
	}
}

func TestStrictPartitionDense(t *testing.T) {
	// A dense matrix is one single supernode.
	n := 6
	d := make([]float64, n*n)
	for i := range d {
		d[i] = 1
	}
	sym := mustFactor(t, sparse.FromDense(d, n, n, 0))
	p := StrictPartition(sym)
	if p.NumBlocks() != 1 {
		t.Fatalf("dense matrix gives %d supernodes, want 1", p.NumBlocks())
	}
}

func TestStrictPartitionDiagonal(t *testing.T) {
	// A diagonal matrix: no column shares structure with the next in the
	// supernode sense (L col j = {j}, next col has {j+1}: tails equal —
	// but the L condition needs j+1 ∈ struct(L col j), which fails).
	tr := sparse.NewTriplet(4, 4)
	for i := 0; i < 4; i++ {
		tr.Add(i, i, 1)
	}
	sym := mustFactor(t, tr.ToCSC())
	p := StrictPartition(sym)
	if p.NumBlocks() != 4 {
		t.Fatalf("diagonal matrix gives %d supernodes, want 4", p.NumBlocks())
	}
}

// Verify the supernode invariant on the result: within a block, L
// columns have identical structure below the block and a dense diagonal
// block; U rows have identical structure right of the block.
func checkPartitionInvariant(t *testing.T, sym *symbolic.Result, p *Partition) {
	t.Helper()
	for k := 0; k < p.NumBlocks(); k++ {
		lo, hi := p.Range(k)
		for c := lo + 1; c < hi; c++ {
			lPrev, lCur := sym.L.Col(c-1), sym.L.Col(c)
			if len(lPrev) != len(lCur)+1 {
				t.Fatalf("block %d: L col %d and %d lengths %d,%d", k, c-1, c, len(lPrev), len(lCur))
			}
			for i := range lCur {
				if lPrev[i+1] != lCur[i] {
					t.Fatalf("block %d: L cols %d,%d structure mismatch", k, c-1, c)
				}
			}
			uPrev, uCur := sym.URows.Col(c-1), sym.URows.Col(c)
			if len(uPrev) != len(uCur)+1 {
				t.Fatalf("block %d: U rows %d,%d lengths", k, c-1, c)
			}
			for i := range uCur {
				if uPrev[i+1] != uCur[i] {
					t.Fatalf("block %d: U rows %d,%d structure mismatch", k, c-1, c)
				}
			}
		}
	}
}

func TestStrictPartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(30)
		sym := mustFactor(t, randomZeroFreeDiag(n, 0.15, rng))
		checkPartitionInvariant(t, sym, StrictPartition(sym))
	}
}

func TestStrictPartitionMaximal(t *testing.T) {
	// No two adjacent strict blocks could be merged while preserving the
	// invariant: the boundary columns must violate one of the conditions.
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(25)
		sym := mustFactor(t, randomZeroFreeDiag(n, 0.2, rng))
		p := StrictPartition(sym)
		for k := 1; k < p.NumBlocks(); k++ {
			c := p.BlockStart[k]
			lPrev, lCur := sym.L.Col(c-1), sym.L.Col(c)
			uPrev, uCur := sym.URows.Col(c-1), sym.URows.Col(c)
			if equalTail(lPrev, lCur) && equalTail(uPrev, uCur) {
				t.Fatalf("trial %d: blocks %d,%d could have been merged at col %d", trial, k-1, k, c)
			}
		}
	}
}

func TestPostorderingEnlargesSupernodes(t *testing.T) {
	// The paper's Table 3 effect: on structured matrices, postordering
	// the LU eforest must not increase the number of supernodes, and
	// usually decreases it. Use a matrix whose natural order scatters
	// siblings: a grid-like operator permuted randomly is too noisy to
	// guarantee a strict decrease, so require only SNPO ≤ SN across a
	// batch and a strict decrease in aggregate.
	rng := rand.New(rand.NewSource(73))
	totalSN, totalSNPO := 0, 0
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(30)
		a := randomZeroFreeDiag(n, 0.06, rng)
		sym := mustFactor(t, a)
		sn := StrictPartition(sym).NumBlocks()
		po := etree.PostorderSymbolic(sym, etree.LUForest(sym))
		snpo := StrictPartition(po.Sym).NumBlocks()
		totalSN += sn
		totalSNPO += snpo
	}
	if totalSNPO > totalSN {
		t.Fatalf("postordering increased supernode count in aggregate: %d → %d", totalSN, totalSNPO)
	}
}

func TestAmalgamateRespectsMaxSize(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	sym := mustFactor(t, randomZeroFreeDiag(60, 0.05, rng))
	p := StrictPartition(sym)
	for _, maxSize := range []int{1, 2, 4, 8} {
		am := Amalgamate(p, sym, AmalgamationOptions{MaxSize: maxSize, MaxFill: 1})
		if am.MaxSize() > maxSize && p.MaxSize() <= maxSize {
			t.Fatalf("amalgamation exceeded MaxSize %d: %d", maxSize, am.MaxSize())
		}
		// Partition must still tile [0, n).
		if am.BlockStart[0] != 0 || am.BlockStart[am.NumBlocks()] != 60 {
			t.Fatal("amalgamated partition does not tile the matrix")
		}
		for k := 1; k <= am.NumBlocks(); k++ {
			if am.BlockStart[k] <= am.BlockStart[k-1] {
				t.Fatal("non-increasing block starts")
			}
		}
	}
}

func TestAmalgamateZeroFillKeepsExactZeros(t *testing.T) {
	// With MaxFill = 0, merges happen only when they add no explicit
	// zeros, so the explicit-zero count of the panel view must not grow.
	rng := rand.New(rand.NewSource(75))
	sym := mustFactor(t, randomZeroFreeDiag(40, 0.08, rng))
	p := StrictPartition(sym)
	am := Amalgamate(p, sym, AmalgamationOptions{MaxSize: 16, MaxFill: 0})
	if am.NumBlocks() > p.NumBlocks() {
		t.Fatal("amalgamation increased the block count")
	}
	checkNoPanelZeros := func(part *Partition) bool {
		for k := 0; k < part.NumBlocks(); k++ {
			lo, hi := part.Range(k)
			var lRows, uCols []int
			lNNZ, uNNZ := 0, 0
			for c := lo; c < hi; c++ {
				lRows = sparse.UnionSorted(lRows, sym.L.Col(c))
				uCols = sparse.UnionSorted(uCols, sym.URows.Col(c))
				lNNZ += len(sym.L.Col(c))
				uNNZ += len(sym.URows.Col(c))
			}
			if (hi-lo)*(len(lRows)+len(uCols)) != lNNZ+uNNZ {
				return false
			}
		}
		return true
	}
	if checkNoPanelZeros(p) && !checkNoPanelZeros(am) {
		t.Fatal("MaxFill=0 amalgamation introduced explicit panel zeros")
	}
}

func TestBlockPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	sym := mustFactor(t, randomZeroFreeDiag(30, 0.1, rng))
	p := Amalgamate(StrictPartition(sym), sym, AmalgamationOptions{MaxSize: 6, MaxFill: 0.5})
	bp := BlockPattern(sym, p)
	if bp.NCols != p.NumBlocks() {
		t.Fatalf("block pattern is %d×%d, want %d", bp.NRows, bp.NCols, p.NumBlocks())
	}
	// Diagonal blocks present.
	for k := 0; k < p.NumBlocks(); k++ {
		if !bp.Has(k, k) {
			t.Fatalf("diagonal block %d missing", k)
		}
	}
	// Every scalar entry is covered by a block; every off-diagonal block
	// contains at least one scalar entry.
	hasEntry := make(map[[2]int]bool)
	for j := 0; j < sym.N; j++ {
		for _, i := range sym.L.Col(j) {
			bi, bj := p.ColToBlock[i], p.ColToBlock[j]
			if !bp.Has(bi, bj) {
				t.Fatalf("entry (%d,%d) not covered by block pattern", i, j)
			}
			hasEntry[[2]int{bi, bj}] = true
		}
		for _, i := range sym.U.Col(j) {
			bi, bj := p.ColToBlock[i], p.ColToBlock[j]
			if !bp.Has(bi, bj) {
				t.Fatalf("entry (%d,%d) not covered by block pattern", i, j)
			}
			hasEntry[[2]int{bi, bj}] = true
		}
	}
	for bj := 0; bj < bp.NCols; bj++ {
		for _, bi := range bp.Col(bj) {
			if bi != bj && !hasEntry[[2]int{bi, bj}] {
				t.Fatalf("block (%d,%d) has no scalar entry", bi, bj)
			}
		}
	}
}

func TestExplicitZeros(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sym := mustFactor(t, randomZeroFreeDiag(25, 0.12, rng))
	p := StrictPartition(sym)
	bp := BlockPattern(sym, p)
	z := ExplicitZeros(sym, p, bp)
	if z < 0 {
		t.Fatalf("ExplicitZeros = %d < 0", z)
	}
	// Amalgamating aggressively can only increase explicit zeros.
	am := Amalgamate(p, sym, AmalgamationOptions{MaxSize: 25, MaxFill: 1})
	za := ExplicitZeros(sym, am, BlockPattern(sym, am))
	if za < z {
		t.Fatalf("aggressive amalgamation decreased explicit zeros: %d → %d", z, za)
	}
}

// Property: partitions returned by StrictPartition and Amalgamate are
// always well-formed tilings.
func TestQuickPartitionWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := randomZeroFreeDiag(n, 0.15, rng)
		sym, err := symbolic.Factor(a)
		if err != nil {
			return false
		}
		for _, p := range []*Partition{
			StrictPartition(sym),
			Amalgamate(StrictPartition(sym), sym, AmalgamationOptions{MaxSize: 1 + rng.Intn(10), MaxFill: rng.Float64()}),
		} {
			if p.BlockStart[0] != 0 || p.BlockStart[p.NumBlocks()] != n {
				return false
			}
			for k := 0; k < p.NumBlocks(); k++ {
				lo, hi := p.Range(k)
				if hi <= lo {
					return false
				}
				for c := lo; c < hi; c++ {
					if p.ColToBlock[c] != k {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
