// Package supernode implements the L/U supernode partitioning of S+/S*
// (Section 3 of the paper): consecutive columns whose L̄ columns share
// one structure below the diagonal block and whose Ū rows share one
// structure right of it are grouped, the same partition is applied to
// the rows, and small supernodes are amalgamated. The result is an N×N
// submatrix blocking where every structurally nonzero block is handled
// as a dense matrix by the numeric factorization (S+ deliberately
// computes on the explicit zeros inside blocks).
package supernode

import (
	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// Partition groups the n columns (and rows) of a matrix into N
// consecutive blocks.
type Partition struct {
	N int // matrix dimension
	// BlockStart has length NumBlocks+1; block K covers columns
	// [BlockStart[K], BlockStart[K+1]).
	BlockStart []int
	// ColToBlock maps a column to its block index.
	ColToBlock []int
}

// NumBlocks returns the number of supernode blocks. The zero-value
// partition (no BlockStart) has zero blocks.
func (p *Partition) NumBlocks() int {
	if len(p.BlockStart) == 0 {
		return 0
	}
	return len(p.BlockStart) - 1
}

// Size returns the width of block k.
func (p *Partition) Size(k int) int { return p.BlockStart[k+1] - p.BlockStart[k] }

// Range returns the half-open column range of block k.
func (p *Partition) Range(k int) (lo, hi int) { return p.BlockStart[k], p.BlockStart[k+1] }

// MaxSize returns the width of the widest block.
func (p *Partition) MaxSize() int {
	m := 0
	for k := 0; k < p.NumBlocks(); k++ {
		if s := p.Size(k); s > m {
			m = s
		}
	}
	return m
}

// AvgSize returns the mean block width, 0 for an empty partition.
func (p *Partition) AvgSize() float64 {
	if p.NumBlocks() <= 0 {
		return 0
	}
	return float64(p.N) / float64(p.NumBlocks())
}

func fromStarts(n int, starts []int) *Partition {
	p := &Partition{N: n, BlockStart: starts, ColToBlock: make([]int, n)}
	for k := 0; k+1 < len(starts); k++ {
		for c := starts[k]; c < starts[k+1]; c++ {
			p.ColToBlock[c] = k
		}
	}
	return p
}

// Trivial returns the partition with one column per block.
func Trivial(n int) *Partition {
	starts := make([]int, n+1)
	for i := range starts {
		starts[i] = i
	}
	return fromStarts(n, starts)
}

// equalTail reports whether a with its first element dropped equals b
// (both sorted).
func equalTail(a, b []int) bool {
	if len(a) != len(b)+1 {
		return false
	}
	for i, v := range b {
		if a[i+1] != v {
			return false
		}
	}
	return true
}

// StrictPartition computes the L/U supernode partition of a static
// symbolic factorization: columns j and j+1 belong to the same supernode
// iff
//
//	struct(L̄_{*,j}) \ {j} = struct(L̄_{*,j+1})   (dense L diagonal block,
//	                                             equal structure below), and
//	struct(Ū_{j,*}) \ {j} = struct(Ū_{j+1,*})   (equal U row structure
//	                                             right of the block).
func StrictPartition(sym *symbolic.Result) *Partition {
	n := sym.N
	starts := []int{0}
	for j := 1; j < n; j++ {
		lPrev := sym.L.Col(j - 1) // starts at j-1
		lCur := sym.L.Col(j)      // starts at j
		uPrev := sym.URows.Col(j - 1)
		uCur := sym.URows.Col(j)
		same := equalTail(lPrev, lCur) && equalTail(uPrev, uCur)
		if !same {
			starts = append(starts, j)
		}
	}
	starts = append(starts, n)
	return fromStarts(n, starts)
}

// AmalgamationOptions tunes the supernode amalgamation.
type AmalgamationOptions struct {
	// MaxSize is the load-balance threshold: after fill-ratio-driven
	// merging, blocks wider than MaxSize are split into near-equal
	// panels by Split so the task graph stays balanced at high worker
	// counts. ≤0 means 32.
	MaxSize int
	// MaxFill is the maximum allowed fraction of explicit zeros that a
	// merge may introduce into the merged panels, relative to the merged
	// panel storage. Merging is driven by this bound alone — width is
	// handled afterwards by Split. Negative means 0.25.
	MaxFill float64
}

func (o AmalgamationOptions) withDefaults() AmalgamationOptions {
	if o.MaxSize <= 0 {
		o.MaxSize = 32
	}
	if o.MaxFill < 0 {
		o.MaxFill = 0.25
	}
	return o
}

// Amalgamate greedily merges consecutive supernodes while the explicit
// zeros introduced into the dense panel storage stay below MaxFill of
// the merged storage. The policy is purely fill-ratio-driven: there is
// no width cap during merging; callers bound the block width afterwards
// with Split. Merging consecutive blocks is always structurally safe
// because blocks are stored dense.
func Amalgamate(p *Partition, sym *symbolic.Result, opts AmalgamationOptions) *Partition {
	opts = opts.withDefaults()
	nb := p.NumBlocks()
	if nb <= 1 {
		return p
	}

	type panelStat struct {
		width int
		lRows []int // union of L column structures (rows ≥ lo)
		uCols []int // union of U row structures (cols ≥ lo)
		lNNZ  int   // Σ |L̄ col| within the group
		uNNZ  int   // Σ |Ū row| within the group
	}
	stat := func(lo, hi int) panelStat {
		s := panelStat{width: hi - lo}
		for c := lo; c < hi; c++ {
			lc := sym.L.Col(c)
			uc := sym.URows.Col(c)
			s.lNNZ += len(lc)
			s.uNNZ += len(uc)
			s.lRows = sparse.UnionSorted(s.lRows, lc)
			s.uCols = sparse.UnionSorted(s.uCols, uc)
		}
		return s
	}
	storage := func(s panelStat) int {
		return s.width * (len(s.lRows) + len(s.uCols))
	}
	actual := func(s panelStat) int { return s.lNNZ + s.uNNZ }

	var starts []int
	starts = append(starts, 0)
	cur := stat(p.BlockStart[0], p.BlockStart[1])
	for k := 1; k < nb; k++ {
		lo, hi := p.Range(k)
		next := stat(lo, hi)
		merged := panelStat{
			width: cur.width + next.width,
			lRows: sparse.UnionSorted(cur.lRows, next.lRows),
			uCols: sparse.UnionSorted(cur.uCols, next.uCols),
			lNNZ:  cur.lNNZ + next.lNNZ,
			uNNZ:  cur.uNNZ + next.uNNZ,
		}
		if st := storage(merged); st > 0 &&
			float64(st-actual(merged)) <= opts.MaxFill*float64(st) {
			cur = merged
			continue
		}
		starts = append(starts, lo)
		cur = next
	}
	starts = append(starts, p.N)
	return fromStarts(p.N, starts)
}

// Split breaks every block wider than maxWidth into near-equal
// consecutive panels of at most maxWidth columns. Splitting is always
// structurally safe — any refinement of a valid consecutive partition
// is itself valid (blocks are stored dense, so cutting a block only
// shrinks the dense submatrices). maxWidth ≤ 0 means 32. Partitions
// already within the bound are returned unchanged.
func Split(p *Partition, maxWidth int) *Partition {
	if maxWidth <= 0 {
		maxWidth = 32
	}
	if p.MaxSize() <= maxWidth {
		return p
	}
	var starts []int
	starts = append(starts, 0)
	for k := 0; k < p.NumBlocks(); k++ {
		lo, hi := p.Range(k)
		w := hi - lo
		pieces := (w + maxWidth - 1) / maxWidth
		base, rem := w/pieces, w%pieces
		at := lo
		for i := 0; i < pieces; i++ {
			at += base
			if i < rem {
				at++
			}
			starts = append(starts, at)
		}
	}
	return fromStarts(p.N, starts)
}

// BlockPattern computes the N×N block sparsity structure induced by the
// partition: block (I, J) is present iff Ā has a structural entry inside
// the submatrix. The diagonal blocks are always present.
func BlockPattern(sym *symbolic.Result, p *Partition) *sparse.Pattern {
	nb := p.NumBlocks()
	t := sparse.NewTriplet(nb, nb)
	seen := make(map[[2]int]bool)
	add := func(i, j int) {
		bi, bj := p.ColToBlock[i], p.ColToBlock[j]
		key := [2]int{bi, bj}
		if !seen[key] {
			seen[key] = true
			t.Add(bi, bj, 1)
		}
	}
	for k := 0; k < nb; k++ {
		t.Add(k, k, 1)
		seen[[2]int{k, k}] = true
	}
	for j := 0; j < sym.N; j++ {
		for _, i := range sym.L.Col(j) {
			add(i, j)
		}
		for _, i := range sym.U.Col(j) {
			add(i, j)
		}
	}
	return sparse.PatternOf(t.ToCSC())
}

// ExplicitZeros counts how many explicit zeros the dense-block storage
// of the given block pattern carries relative to the scalar structure Ā:
// stored − |Ā|, where stored is the total area of the present blocks.
func ExplicitZeros(sym *symbolic.Result, p *Partition, blocks *sparse.Pattern) int {
	stored := 0
	for bj := 0; bj < blocks.NCols; bj++ {
		w := p.Size(bj)
		for _, bi := range blocks.Col(bj) {
			stored += p.Size(bi) * w
		}
	}
	return stored - sym.NNZ()
}
