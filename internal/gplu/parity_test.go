package gplu_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gplu"
	"repro/internal/sparse"
)

// zeroColumnMatrix builds an n×n diagonally dominant tridiagonal matrix
// whose column bad is structurally intact but exactly zero-valued. A
// zero column stays exactly zero through Gaussian elimination under any
// row/column permutation, so both solvers must fail at that column —
// in the original numbering.
func zeroColumnMatrix(n, bad int) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	add := func(i, j int, v float64) {
		if j == bad {
			v = 0
		}
		t.Add(i, j, v)
	}
	for i := 0; i < n; i++ {
		add(i, i, 4+float64(i%3))
		if i+1 < n {
			add(i, i+1, -1-float64(i%2))
			add(i+1, i, -1.5)
		}
	}
	return t.ToCSC()
}

// TestSingularityContractParity pins the shared contract of the dynamic
// (gplu) and static (core) factorizations on a numerically singular
// matrix: both identify the same failing column, in the original
// column numbering, through their respective structured errors.
func TestSingularityContractParity(t *testing.T) {
	const n, bad = 8, 5
	a := zeroColumnMatrix(n, bad)

	// Dynamic GP factorization fails outright, naming the column.
	_, err := gplu.Factor(a, sparse.Identity(n))
	if !errors.Is(err, gplu.ErrSingular) {
		t.Fatalf("gplu err = %v, want ErrSingular", err)
	}
	var ge *gplu.SingularError
	if !errors.As(err, &ge) {
		t.Fatalf("gplu err = %v, want *gplu.SingularError", err)
	}
	if ge.Col != bad {
		t.Fatalf("gplu failing column = %d, want %d", ge.Col, bad)
	}

	// Static factorization completes with the singular flag set and
	// names the same column at solve time, whatever the fill-reducing
	// permutation did to the column order internally.
	for _, workers := range []int{1, 4} {
		opts := core.DefaultOptions()
		opts.Workers = workers
		f, err := core.Factorize(a, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !f.Singular() {
			t.Fatalf("workers=%d: singular matrix not flagged", workers)
		}
		if got := f.SingularColumn(); got != bad {
			t.Fatalf("workers=%d: core failing column = %d, want %d", workers, got, bad)
		}
		_, err = f.Solve(make([]float64, n))
		if !errors.Is(err, core.ErrNumericallySingular) {
			t.Fatalf("workers=%d: Solve err = %v", workers, err)
		}
		var ce *core.SingularError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: Solve err = %v, want *core.SingularError", workers, err)
		}
		if ce.Col != ge.Col {
			t.Fatalf("contract mismatch: gplu column %d, core column %d", ge.Col, ce.Col)
		}
	}
}

// TestGpluSingularWithColPerm checks the column report stays in the
// original numbering when a fill-reducing permutation is supplied.
func TestGpluSingularWithColPerm(t *testing.T) {
	const n, bad = 8, 5
	a := zeroColumnMatrix(n, bad)
	// Reverse permutation: column bad moves to position n-1-bad.
	p := make(sparse.Perm, n)
	for i := range p {
		p[i] = n - 1 - i
	}
	_, err := gplu.Factor(a, p)
	var ge *gplu.SingularError
	if !errors.As(err, &ge) {
		t.Fatalf("err = %v, want *gplu.SingularError", err)
	}
	if ge.Col != bad {
		t.Fatalf("failing column = %d under permutation, want %d", ge.Col, bad)
	}
}
