package gplu

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/ordering"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/transversal"
)

func randomSystem(n int, density float64, rng *rand.Rand) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	rowAbs := make([]float64, n)
	type entry struct {
		i, j int
		v    float64
	}
	var es []entry
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				v := rng.NormFloat64()
				es = append(es, entry{i, j, v})
				rowAbs[i] += math.Abs(v)
			}
		}
	}
	for _, e := range es {
		t.Add(e.i, e.j, e.v)
	}
	for i := 0; i < n; i++ {
		t.Add(i, i, rowAbs[i]+1+rng.Float64())
	}
	return t.ToCSC()
}

func TestSolveSmall(t *testing.T) {
	// [2 1; 1 3] x = [3, 4] → x = [1, 1]
	tr := sparse.NewTriplet(2, 2)
	tr.Add(0, 0, 2)
	tr.Add(0, 1, 1)
	tr.Add(1, 0, 1)
	tr.Add(1, 1, 3)
	f, err := Factor(tr.ToCSC(), sparse.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve([]float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-14 || math.Abs(x[1]-1) > 1e-14 {
		t.Fatalf("x = %v, want [1 1]", x)
	}
}

func TestSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(50)
		a := randomSystem(n, 0.15, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		f, err := Factor(a, sparse.Identity(n))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		// Dense reference.
		d := a.ToDense()
		ipiv := make([]int, n)
		if err := blas.Dgetrf(n, n, d, n, ipiv); err != nil {
			t.Fatal(err)
		}
		want := append([]float64(nil), b...)
		blas.Dgetrs(n, d, n, ipiv, want)
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], want[i])
			}
		}
	}
}

func TestColumnPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	a := randomSystem(30, 0.12, rng)
	q := ordering.ColumnOrdering(a, ordering.MinDegreeATA)
	f, err := Factor(a, q)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := core.Residual(a, x, b); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
}

func TestPivotingRequired(t *testing.T) {
	// Zero on the diagonal: without pivoting this would fail.
	tr := sparse.NewTriplet(2, 2)
	tr.Add(0, 1, 1)
	tr.Add(1, 0, 1)
	f, err := Factor(tr.ToCSC(), sparse.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve([]float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 3 {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestSingularDetected(t *testing.T) {
	tr := sparse.NewTriplet(2, 2)
	tr.Add(0, 0, 1)
	tr.Add(0, 1, 2)
	tr.Add(1, 0, 2)
	tr.Add(1, 1, 4)
	_, err := Factor(tr.ToCSC(), sparse.Identity(2))
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestRejectsBadInput(t *testing.T) {
	tr := sparse.NewTriplet(2, 3)
	tr.Add(0, 0, 1)
	if _, err := Factor(tr.ToCSC(), sparse.Identity(3)); err == nil {
		t.Fatal("non-square accepted")
	}
	sq := sparse.NewTriplet(2, 2)
	sq.Add(0, 0, 1)
	sq.Add(1, 1, 1)
	if _, err := Factor(sq.ToCSC(), sparse.Perm{0, 0}); err == nil {
		t.Fatal("bad permutation accepted")
	}
	f, _ := Factor(sq.ToCSC(), sparse.Identity(2))
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
}

// The George–Ng guarantee at the heart of the paper: the dynamic fill
// discovered by Gilbert–Peierls is always contained in the static bound
// |Ā|, when both operate on the same pre-permuted matrix.
func TestDynamicFillWithinStaticBound(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(40)
		a := randomSystem(n, 0.1, rng)
		tr := transversal.MaximumTransversal(a)
		perm := ordering.ColumnOrdering(a.PermuteRows(tr.RowPerm), ordering.MinDegreeATA)
		ap := a.PermuteRows(tr.RowPerm).PermuteSym(perm)

		sym, err := symbolic.Factor(ap)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Factor(ap, sparse.Identity(n))
		if err != nil {
			t.Fatal(err)
		}
		if f.FactorNNZ() > sym.NNZ() {
			t.Fatalf("trial %d: dynamic fill %d exceeds static bound %d", trial, f.FactorNNZ(), sym.NNZ())
		}
	}
}

func TestFillCountsPlausible(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	a := randomSystem(40, 0.1, rng)
	f, err := Factor(a, sparse.Identity(40))
	if err != nil {
		t.Fatal(err)
	}
	if f.LNNZ() < 40 || f.UNNZ() < 40 {
		t.Fatalf("factor sizes too small: L %d, U %d", f.LNNZ(), f.UNNZ())
	}
	if f.FactorNNZ() < a.NNZ() {
		t.Fatalf("factor entries %d below nnz(A) %d", f.FactorNNZ(), a.NNZ())
	}
}

func TestRowPermIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	a := randomSystem(25, 0.15, rng)
	f, err := Factor(a, sparse.Identity(25))
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.CheckPerm(f.RowPerm, 25); err != nil {
		t.Fatal(err)
	}
}

// Property: GP and the supernodal static pipeline produce the same
// solution on random well-conditioned systems.
func TestQuickAgreesWithStaticPipeline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(35)
		a := randomSystem(n, 0.12, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		gf, err := Factor(a, ordering.ColumnOrdering(a, ordering.MinDegreeATA))
		if err != nil {
			return false
		}
		xg, err := gf.Solve(b)
		if err != nil {
			return false
		}
		sf, err := core.Factorize(a, core.DefaultOptions())
		if err != nil {
			return false
		}
		xs, err := sf.Solve(b)
		if err != nil {
			return false
		}
		for i := range xg {
			if math.Abs(xg[i]-xs[i]) > 1e-7*(1+math.Abs(xs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
