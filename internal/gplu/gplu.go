// Package gplu implements the Gilbert–Peierls left-looking sparse LU
// factorization with partial pivoting and *dynamic* symbolic
// factorization — the algorithmic core of SuperLU-class solvers. The
// paper's introduction contrasts this approach (structure discovered
// during the numeric phase, exact fill, symbolic work interleaved with
// numeric work) with the static George–Ng scheme that S*/S+ and this
// repository's core pipeline use. gplu is the baseline that lets the
// experiments quantify the trade-off: how much the static structure Ā
// overestimates the true fill, against the symbolic overhead the
// dynamic method pays inside the numeric loop.
//
// The algorithm is the classic one (Gilbert & Peierls, 1988): for each
// column j, the nonzero structure of the solution of the triangular
// system L·x = A(:,j) is the set of nodes reachable, in the directed
// graph of L, from the nonzeros of A(:,j); a depth-first search yields
// the structure in topological order, the numeric sparse triangular
// solve follows it, and partial pivoting picks the largest remaining
// entry. Total time is proportional to the flop count.
package gplu

import (
	"fmt"
	"math"

	"repro/internal/luerr"
	"repro/internal/sparse"
)

// ErrSingular is returned when no nonzero pivot exists for some column.
// It also matches luerr.ErrSingular, the cross-solver singularity
// class, so a caller holding an error from either the static (core) or
// the dynamic (gplu) solver can triage it with one errors.Is check.
var ErrSingular = luerr.Tag("gplu: matrix is numerically singular", luerr.ErrSingular)

// SingularError reports the first column without an admissible pivot,
// in the original (unpermuted) column numbering — the same contract as
// the core layer's SingularError, pinned by a shared parity test. It
// matches errors.Is(err, ErrSingular).
type SingularError struct {
	// Col is the original column index of the first failed pivot.
	Col int
}

// Error formats the failure with the column attached.
func (e *SingularError) Error() string {
	return fmt.Sprintf("%v: no pivot at column %d", ErrSingular, e.Col)
}

// Unwrap exposes the ErrSingular sentinel to errors.Is.
func (e *SingularError) Unwrap() error { return ErrSingular }

// Factorization holds the factors of P·A·Qᵀ = L·U computed with dynamic
// symbolic structure: L is unit lower triangular, U upper triangular,
// both in the pivot ordering.
type Factorization struct {
	N int
	// ColPerm is the fill-reducing column permutation supplied by the
	// caller (scatter convention), applied as A·Qᵀ.
	ColPerm sparse.Perm
	// RowPerm is the pivot row permutation chosen during factorization:
	// original row i of A·Qᵀ became pivot row RowPerm[i].
	RowPerm sparse.Perm
	// L columns in pivot-row indices; unit diagonal not stored.
	lColPtr []int
	lRowInd []int
	lVal    []float64
	// U columns in pivot-row indices, diagonal last within the column.
	uColPtr []int
	uRowInd []int
	uVal    []float64
}

// LNNZ returns the number of stored entries of L plus the unit diagonal.
func (f *Factorization) LNNZ() int { return f.lColPtr[f.N] + f.N }

// UNNZ returns the number of stored entries of U (diagonal included).
func (f *Factorization) UNNZ() int { return f.uColPtr[f.N] }

// FactorNNZ returns nnz(L)+nnz(U)−n, comparable to the static |Ā|.
func (f *Factorization) FactorNNZ() int { return f.LNNZ() + f.UNNZ() - f.N }

// Factor computes the LU factorization of A·Qᵀ with partial pivoting,
// where colPerm is a fill-reducing column permutation (use the identity
// for none). The matrix must be square and structurally nonsingular
// along the chosen pivots.
func Factor(a *sparse.CSC, colPerm sparse.Perm) (*Factorization, error) {
	if a.NRows != a.NCols {
		return nil, fmt.Errorf("gplu: matrix must be square, got %d×%d", a.NRows, a.NCols)
	}
	n := a.NCols
	if err := sparse.CheckPerm(colPerm, n); err != nil {
		return nil, fmt.Errorf("gplu: bad column permutation: %w", err)
	}
	aq := a.PermuteCols(colPerm)

	f := &Factorization{
		N:       n,
		ColPerm: colPerm.Clone(),
		RowPerm: make(sparse.Perm, n),
		lColPtr: make([]int, n+1),
		uColPtr: make([]int, n+1),
	}
	// pinv[origRow] = pivot position, or -1 while unpivoted.
	pinv := make([]int, n)
	for i := range pinv {
		pinv[i] = -1
	}

	x := make([]float64, n)      // dense accumulator, indexed by original row
	pattern := make([]int, 0, n) // topological pattern of x (original rows)
	visited := make([]bool, n)   // DFS marks, reset via pattern
	stack := make([]dfsFrame, 0, 64)

	for j := 0; j < n; j++ {
		// Symbolic: rows reachable from struct(AQᵀ(:,j)) through L.
		pattern = pattern[:0]
		rows, vals := aq.Col(j)
		for _, i := range rows {
			if !visited[i] {
				pattern = f.reach(i, pinv, visited, stack, pattern)
			}
		}
		// pattern is in reverse topological order (DFS postorder
		// appended): process from the end.
		for _, i := range pattern {
			x[i] = 0
		}
		for k, i := range rows {
			x[i] = vals[k]
		}
		// Numeric sparse triangular solve in topological order.
		for t := len(pattern) - 1; t >= 0; t-- {
			i := pattern[t]
			pk := pinv[i]
			if pk < 0 {
				continue // not yet pivoted: belongs to L(:,j)
			}
			xi := x[i]
			if xi == 0 {
				continue
			}
			for p := f.lColPtr[pk]; p < f.lColPtr[pk+1]; p++ {
				x[f.lRowInd[p]] -= f.lVal[p] * xi
			}
		}
		// Partial pivoting among unpivoted rows of the pattern.
		pivRow, pivAbs := -1, 0.0
		for _, i := range pattern {
			if pinv[i] < 0 {
				if v := math.Abs(x[i]); pivRow == -1 || v > pivAbs {
					pivRow, pivAbs = i, v
				}
			}
		}
		if pivRow == -1 || pivAbs == 0 {
			// Clean up marks before bailing out.
			for _, i := range pattern {
				visited[i] = false
			}
			// Report the failing column in the original numbering
			// (column j of A·Qᵀ came from column q with colPerm[q] = j).
			return nil, &SingularError{Col: colPerm.Inverse()[j]}
		}
		pinv[pivRow] = j
		f.RowPerm[pivRow] = j
		pivVal := x[pivRow]

		// Emit U(:,j): pivoted rows, then the diagonal last.
		for _, i := range pattern {
			if pk := pinv[i]; pk >= 0 && pk < j && x[i] != 0 {
				f.uRowInd = append(f.uRowInd, pk)
				f.uVal = append(f.uVal, x[i])
			}
		}
		f.uRowInd = append(f.uRowInd, j)
		f.uVal = append(f.uVal, pivVal)
		f.uColPtr[j+1] = len(f.uRowInd)

		// Emit L(:,j): unpivoted rows, scaled by the pivot; indices stay
		// as original rows until the final renumbering.
		for _, i := range pattern {
			if pinv[i] < 0 && x[i] != 0 {
				f.lRowInd = append(f.lRowInd, i)
				f.lVal = append(f.lVal, x[i]/pivVal)
			}
			visited[i] = false
		}
		f.lColPtr[j+1] = len(f.lRowInd)
	}

	// Renumber L's row indices into pivot positions.
	for p, i := range f.lRowInd {
		f.lRowInd[p] = pinv[i]
	}
	return f, nil
}

type dfsFrame struct {
	row int
	pos int
}

// reach appends to pattern, in DFS postorder, every row reachable from
// start through the columns of L (an unpivoted row has no outgoing
// edges). visited marks are left set; the caller clears them.
func (f *Factorization) reach(start int, pinv []int, visited []bool, stack []dfsFrame, pattern []int) []int {
	stack = stack[:0]
	stack = append(stack, dfsFrame{row: start})
	visited[start] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		pk := pinv[fr.row]
		advanced := false
		if pk >= 0 {
			for fr.pos < f.lColPtr[pk+1]-f.lColPtr[pk] {
				next := f.lRowInd[f.lColPtr[pk]+fr.pos]
				fr.pos++
				if !visited[next] {
					visited[next] = true
					stack = append(stack, dfsFrame{row: next})
					advanced = true
					break
				}
			}
		}
		if !advanced {
			pattern = append(pattern, fr.row)
			stack = stack[:len(stack)-1]
		}
	}
	return pattern
}

// Solve solves A·x = b using the factors; b is not modified.
func (f *Factorization) Solve(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("gplu: rhs has length %d, want %d", len(b), f.N)
	}
	n := f.N
	// y = P·b (pivot ordering).
	y := make([]float64, n)
	for i, p := range f.RowPerm {
		y[p] = b[i]
	}
	// L·z = y (unit lower, columns in pivot order).
	for j := 0; j < n; j++ {
		yj := y[j]
		if yj == 0 {
			continue
		}
		for p := f.lColPtr[j]; p < f.lColPtr[j+1]; p++ {
			y[f.lRowInd[p]] -= f.lVal[p] * yj
		}
	}
	// U·w = z (upper, diagonal stored last in each column).
	for j := n - 1; j >= 0; j-- {
		lo, hi := f.uColPtr[j], f.uColPtr[j+1]
		diag := f.uVal[hi-1]
		y[j] /= diag
		yj := y[j]
		if yj == 0 {
			continue
		}
		for p := lo; p < hi-1; p++ {
			y[f.uRowInd[p]] -= f.uVal[p] * yj
		}
	}
	// x = Qᵀ·w: w is indexed by permuted columns, map back.
	x := make([]float64, n)
	for i, q := range f.ColPerm {
		x[i] = y[q]
	}
	return x, nil
}
