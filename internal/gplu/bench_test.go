package gplu

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ordering"
	"repro/internal/sparse"
)

func BenchmarkGilbertPeierls(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{200, 800} {
		a := randomSystem(n, 8.0/float64(n), rng)
		q := ordering.ColumnOrdering(a, ordering.MinDegreeATA)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Factor(a, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGPSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 500
	a := randomSystem(n, 8.0/float64(n), rng)
	f, err := Factor(a, sparse.Identity(n))
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}
