package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a MatrixMarket "coordinate real
// general/symmetric/skew-symmetric" or "coordinate pattern" stream into a
// CSC matrix. Pattern entries get the value 1. Symmetric storage is
// expanded to full storage.
func ReadMatrixMarket(r io.Reader) (*CSC, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("sparse: not a MatrixMarket matrix header: %q", strings.TrimSpace(header))
	}
	if fields[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate format is supported, got %q", fields[2])
	}
	valType := fields[3] // real | integer | pattern
	symm := fields[4]    // general | symmetric | skew-symmetric
	if valType != "real" && valType != "integer" && valType != "pattern" {
		return nil, fmt.Errorf("sparse: unsupported value type %q", valType)
	}
	if symm != "general" && symm != "symmetric" && symm != "skew-symmetric" {
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", symm)
	}

	// Skip comments, read size line.
	var line string
	for {
		line, err = br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: missing MatrixMarket size line: %w", err)
		}
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "%") {
			break
		}
	}
	var nr, nc, nnz int
	if _, err := fmt.Sscan(line, &nr, &nc, &nnz); err != nil {
		return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %w", line, err)
	}
	t := NewTriplet(nr, nc)
	read := 0
	for read < nnz {
		line, err = br.ReadString('\n')
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, "%") {
			f := strings.Fields(trimmed)
			if len(f) < 2 {
				return nil, fmt.Errorf("sparse: bad MatrixMarket entry %q", trimmed)
			}
			i, e1 := strconv.Atoi(f[0])
			j, e2 := strconv.Atoi(f[1])
			if e1 != nil || e2 != nil {
				return nil, fmt.Errorf("sparse: bad MatrixMarket indices %q", trimmed)
			}
			v := 1.0
			if valType != "pattern" {
				if len(f) < 3 {
					return nil, fmt.Errorf("sparse: missing value in entry %q", trimmed)
				}
				v, e1 = strconv.ParseFloat(f[2], 64)
				if e1 != nil {
					return nil, fmt.Errorf("sparse: bad MatrixMarket value %q", trimmed)
				}
			}
			t.Add(i-1, j-1, v)
			if symm != "general" && i != j {
				if symm == "skew-symmetric" {
					t.Add(j-1, i-1, -v)
				} else {
					t.Add(j-1, i-1, v)
				}
			}
			read++
		}
		if err != nil {
			if read < nnz {
				return nil, fmt.Errorf("sparse: MatrixMarket stream ended after %d of %d entries", read, nnz)
			}
			break
		}
	}
	return t.ToCSC(), nil
}

// WriteMatrixMarket writes a in "coordinate real general" MatrixMarket
// format.
func WriteMatrixMarket(w io.Writer, a *CSC) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", a.NRows, a.NCols, a.NNZ()); err != nil {
		return err
	}
	for j := 0; j < a.NCols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", a.RowInd[k]+1, j+1, a.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
