package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadHarwellBoeing parses a Harwell-Boeing (HB) file — the format the
// paper's benchmark suite was distributed in ("Matrices were obtained
// from the Harwell-Boeing Collection"). Supported types: real (or
// pattern) assembled matrices, i.e. RUA, RSA, RZA, PUA, PSA headers.
// Symmetric (S) and skew (Z) storage are expanded; pattern values
// become 1. Right-hand sides, if present, are ignored.
func ReadHarwellBoeing(r io.Reader) (*CSC, error) {
	br := bufio.NewReader(r)
	readLine := func() (string, error) {
		s, err := br.ReadString('\n')
		if err != nil && s == "" {
			return "", err
		}
		return strings.TrimRight(s, "\r\n"), nil
	}

	// Line 1: title + key (ignored).
	if _, err := readLine(); err != nil {
		return nil, fmt.Errorf("sparse: HB header line 1: %w", err)
	}
	// Line 2: card counts.
	line2, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("sparse: HB header line 2: %w", err)
	}
	counts := strings.Fields(line2)
	if len(counts) < 4 {
		return nil, fmt.Errorf("sparse: HB line 2 has %d fields, want ≥4", len(counts))
	}
	valcrd := 0
	if len(counts) >= 4 {
		valcrd, _ = strconv.Atoi(counts[3])
	}
	// Line 3: type and dimensions.
	line3, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("sparse: HB header line 3: %w", err)
	}
	if len(line3) < 3 {
		return nil, fmt.Errorf("sparse: HB type field missing")
	}
	mxtype := strings.ToUpper(strings.TrimSpace(line3[:3]))
	if len(mxtype) != 3 {
		return nil, fmt.Errorf("sparse: bad HB type %q", mxtype)
	}
	vtype, symm, assembled := mxtype[0], mxtype[1], mxtype[2]
	if vtype != 'R' && vtype != 'P' {
		return nil, fmt.Errorf("sparse: unsupported HB value type %q (want R or P)", string(vtype))
	}
	if assembled != 'A' {
		return nil, fmt.Errorf("sparse: only assembled HB matrices are supported, got %q", string(assembled))
	}
	if symm != 'U' && symm != 'S' && symm != 'Z' && symm != 'R' {
		return nil, fmt.Errorf("sparse: unsupported HB symmetry %q", string(symm))
	}
	dims := strings.Fields(line3[3:])
	if len(dims) < 3 {
		return nil, fmt.Errorf("sparse: HB line 3 has %d dimension fields, want ≥3", len(dims))
	}
	nrow, err1 := strconv.Atoi(dims[0])
	ncol, err2 := strconv.Atoi(dims[1])
	nnz, err3 := strconv.Atoi(dims[2])
	if err1 != nil || err2 != nil || err3 != nil || nrow < 0 || ncol < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: bad HB dimensions %q", line3)
	}
	// Line 4: fortran formats (free-form parsing makes them irrelevant —
	// we split on whitespace, which every HB writer produces).
	if _, err := readLine(); err != nil {
		return nil, fmt.Errorf("sparse: HB header line 4: %w", err)
	}
	// Optional line 5 when right-hand sides are present.
	if len(counts) >= 5 {
		if rhscrd, _ := strconv.Atoi(counts[4]); rhscrd > 0 {
			if _, err := readLine(); err != nil {
				return nil, fmt.Errorf("sparse: HB header line 5: %w", err)
			}
		}
	}

	readInts := func(n int) ([]int, error) {
		out := make([]int, 0, n)
		for len(out) < n {
			line, err := readLine()
			if err != nil {
				return nil, fmt.Errorf("sparse: HB data ended after %d of %d integers", len(out), n)
			}
			for _, f := range strings.Fields(line) {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("sparse: bad HB integer %q", f)
				}
				out = append(out, v)
			}
		}
		return out[:n], nil
	}
	colPtr, err := readInts(ncol + 1)
	if err != nil {
		return nil, err
	}
	rowInd, err := readInts(nnz)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, nnz)
	if vtype == 'R' && valcrd > 0 {
		got := 0
		for got < nnz {
			line, err := readLine()
			if err != nil {
				return nil, fmt.Errorf("sparse: HB values ended after %d of %d", got, nnz)
			}
			for _, f := range strings.Fields(line) {
				// Fortran D exponents.
				f = strings.ReplaceAll(strings.ReplaceAll(f, "D", "E"), "d", "e")
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("sparse: bad HB value %q", f)
				}
				if got < nnz {
					vals[got] = v
					got++
				}
			}
		}
	} else {
		for i := range vals {
			vals[i] = 1
		}
	}

	// Assemble through a triplet so symmetric expansion and sorting are
	// uniform with the MatrixMarket path.
	t := NewTriplet(nrow, ncol)
	for j := 0; j < ncol; j++ {
		lo, hi := colPtr[j]-1, colPtr[j+1]-1
		if lo < 0 || hi < lo || hi > nnz {
			return nil, fmt.Errorf("sparse: bad HB column pointer pair (%d,%d)", colPtr[j], colPtr[j+1])
		}
		for p := lo; p < hi; p++ {
			i := rowInd[p] - 1
			if i < 0 || i >= nrow {
				return nil, fmt.Errorf("sparse: HB row index %d out of range", rowInd[p])
			}
			v := vals[p]
			t.Add(i, j, v)
			if i != j {
				switch symm {
				case 'S':
					t.Add(j, i, v)
				case 'Z':
					t.Add(j, i, -v)
				}
			}
		}
	}
	return t.ToCSC(), nil
}

// WriteHarwellBoeing writes the matrix as an assembled real unsymmetric
// (RUA) Harwell-Boeing file with free-form numeric fields.
func WriteHarwellBoeing(w io.Writer, a *CSC, title string) error {
	bw := bufio.NewWriter(w)
	if len(title) > 72 {
		title = title[:72]
	}
	nnz := a.NNZ()
	perLine := 8
	lines := func(n int) int { return (n + perLine - 1) / perLine }
	ptrcrd := lines(a.NCols + 1)
	indcrd := lines(nnz)
	valcrd := lines(nnz)
	fmt.Fprintf(bw, "%-72s%-8s\n", title, "SPARSELU")
	fmt.Fprintf(bw, "%14d%14d%14d%14d%14d\n", ptrcrd+indcrd+valcrd, ptrcrd, indcrd, valcrd, 0)
	fmt.Fprintf(bw, "%-14s%14d%14d%14d%14d\n", "RUA", a.NRows, a.NCols, nnz, 0)
	fmt.Fprintf(bw, "%-16s%-16s%-20s%-20s\n", "(8I10)", "(8I10)", "(4E25.16)", "")
	emitInts := func(xs []int, offset int) {
		for i, v := range xs {
			fmt.Fprintf(bw, "%10d", v+offset)
			if (i+1)%perLine == 0 || i == len(xs)-1 {
				fmt.Fprintln(bw)
			}
		}
	}
	emitInts(a.ColPtr, 1)
	emitInts(a.RowInd, 1)
	for i, v := range a.Val {
		fmt.Fprintf(bw, "%25.16E", v)
		if (i+1)%4 == 0 || i == len(a.Val)-1 {
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}
