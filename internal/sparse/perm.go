// Package sparse provides the sparse-matrix substrate used by the parallel
// sparse LU factorization: triplet (coordinate) assembly, compressed
// sparse column (CSC) storage (row-major views are obtained by
// transposition), pattern algebra (transpose, AᵀA pattern, pattern
// union), permutations, sparse matrix-vector products and Matrix Market
// I/O.
//
// # Conventions
//
// Indices are 0-based throughout. A permutation is represented by a Perm
// p with the scatter convention: p[old] = new, i.e. the element at
// position old in the original ordering moves to position new in the
// permuted ordering. With P the permutation matrix such that
// (Px)[p[i]] = x[i], PermuteRows(A, p) computes P·A and PermuteCols(A, q)
// computes A·Qᵀ where (Qx)[q[j]] = x[j].
package sparse

import (
	"errors"
	"fmt"
	"math/rand"
)

// Perm is a permutation of {0, …, n−1} in scatter convention:
// p[old] = new.
type Perm []int

// Identity returns the identity permutation of length n.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// RandomPerm returns a uniformly random permutation of length n drawn
// from rng.
func RandomPerm(n int, rng *rand.Rand) Perm {
	p := make(Perm, n)
	for i, v := range rng.Perm(n) {
		p[i] = v
	}
	return p
}

// Len returns the length of the permutation.
func (p Perm) Len() int { return len(p) }

// IsValid reports whether p is a bijection of {0, …, len(p)−1}.
func (p Perm) IsValid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns the inverse permutation q with q[p[i]] = i.
func (p Perm) Inverse() Perm {
	q := make(Perm, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// Compose returns the permutation r = q∘p that first applies p, then q:
// r[i] = q[p[i]].
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic("sparse: Compose on permutations of different lengths")
	}
	r := make(Perm, len(p))
	for i, v := range p {
		r[i] = q[v]
	}
	return r
}

// Apply scatters x into a new vector y with y[p[i]] = x[i].
func (p Perm) Apply(x []float64) []float64 {
	if len(x) != len(p) {
		panic("sparse: Perm.Apply length mismatch")
	}
	y := make([]float64, len(x))
	for i, v := range p {
		y[v] = x[i]
	}
	return y
}

// ApplyInverse gathers x into a new vector y with y[i] = x[p[i]].
func (p Perm) ApplyInverse(x []float64) []float64 {
	if len(x) != len(p) {
		panic("sparse: Perm.ApplyInverse length mismatch")
	}
	y := make([]float64, len(x))
	for i, v := range p {
		y[i] = x[v]
	}
	return y
}

// ApplyInts scatters the int slice x: y[p[i]] = x[i].
func (p Perm) ApplyInts(x []int) []int {
	if len(x) != len(p) {
		panic("sparse: Perm.ApplyInts length mismatch")
	}
	y := make([]int, len(x))
	for i, v := range p {
		y[v] = x[i]
	}
	return y
}

// Clone returns a copy of p.
func (p Perm) Clone() Perm {
	q := make(Perm, len(p))
	copy(q, p)
	return q
}

// CheckPerm returns an error describing the first defect found in p, or
// nil if p is a valid permutation of {0, …, n−1}.
func CheckPerm(p Perm, n int) error {
	if len(p) != n {
		return fmt.Errorf("sparse: permutation has length %d, want %d", len(p), n)
	}
	seen := make([]bool, n)
	for i, v := range p {
		if v < 0 || v >= n {
			return fmt.Errorf("sparse: p[%d] = %d out of range [0,%d)", i, v, n)
		}
		if seen[v] {
			return fmt.Errorf("sparse: value %d appears twice in permutation", v)
		}
		seen[v] = true
	}
	return nil
}

// ErrNotPermutation is returned by functions that validate permutations.
var ErrNotPermutation = errors.New("sparse: not a permutation")
