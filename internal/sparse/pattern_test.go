package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPatternOfAndHas(t *testing.T) {
	a := small3x3()
	p := PatternOf(a)
	if p.NNZ() != 6 {
		t.Fatalf("NNZ = %d, want 6", p.NNZ())
	}
	if !p.Has(2, 1) || p.Has(0, 1) {
		t.Fatal("Has gives wrong structure")
	}
}

func TestPatternTranspose(t *testing.T) {
	a := small3x3()
	p := PatternOf(a).Transpose()
	q := PatternOf(a.Transpose())
	if p.NNZ() != q.NNZ() {
		t.Fatalf("transpose NNZ mismatch %d vs %d", p.NNZ(), q.NNZ())
	}
	for j := 0; j < 3; j++ {
		pc, qc := p.Col(j), q.Col(j)
		if len(pc) != len(qc) {
			t.Fatalf("col %d length mismatch", j)
		}
		for k := range pc {
			if pc[k] != qc[k] {
				t.Fatalf("col %d mismatch %v vs %v", j, pc, qc)
			}
		}
	}
}

func TestATAPatternSmall(t *testing.T) {
	// A = [1 0 2; 0 3 0; 4 5 6]: AᵀA has structure
	// col0 shares rows with col1 (row 2), col2 (rows 0,2) → full row 0
	a := small3x3()
	ata := ATAPattern(a)
	// Compute reference densely.
	d := a.ToDense()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := false
			for r := 0; r < 3; r++ {
				if d[r*3+i] != 0 && d[r*3+j] != 0 {
					want = true
				}
			}
			if got := ata.Has(i, j); got != want {
				t.Errorf("ATA(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestATAPatternMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		nr := 3 + rng.Intn(12)
		nc := 3 + rng.Intn(12)
		a := randomCSC(nr, nc, 0.2, rng)
		ata := ATAPattern(a)
		d := a.ToDense()
		for i := 0; i < nc; i++ {
			for j := 0; j < nc; j++ {
				want := false
				for r := 0; r < nr; r++ {
					if d[r*nc+i] != 0 && d[r*nc+j] != 0 {
						want = true
						break
					}
				}
				if got := ata.Has(i, j); got != want {
					t.Fatalf("trial %d: ATA(%d,%d) = %v, want %v", trial, i, j, got, want)
				}
			}
		}
	}
}

func TestATAPatternSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomCSC(20, 15, 0.15, rng)
	ata := ATAPattern(a)
	for j := 0; j < 15; j++ {
		for _, i := range ata.Col(j) {
			if !ata.Has(j, i) {
				t.Fatalf("AᵀA pattern not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestSymmetrizePattern(t *testing.T) {
	a := small3x3()
	s := SymmetrizePattern(a)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := a.Has(i, j) || a.Has(j, i)
			if got := s.Has(i, j); got != want {
				t.Errorf("symmetrize(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestPatternContains(t *testing.T) {
	a := small3x3()
	p := PatternOf(a)
	if !PatternContains(p, p) {
		t.Fatal("pattern should contain itself")
	}
	s := SymmetrizePattern(a)
	if !PatternContains(s, p) {
		t.Fatal("A+Aᵀ should contain A")
	}
	if PatternContains(p, s) {
		t.Fatal("A should not contain A+Aᵀ here")
	}
}

func TestUnionSorted(t *testing.T) {
	got := UnionSorted([]int{1, 3, 5}, []int{2, 3, 6})
	want := []int{1, 2, 3, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("UnionSorted = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("UnionSorted = %v, want %v", got, want)
		}
	}
	if out := UnionSorted(nil, nil); len(out) != 0 {
		t.Fatalf("UnionSorted(nil,nil) = %v", out)
	}
	if out := UnionSorted([]int{1}, nil); len(out) != 1 || out[0] != 1 {
		t.Fatalf("UnionSorted([1],nil) = %v", out)
	}
}

func TestQuickUnionSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() []int {
			n := rng.Intn(20)
			set := map[int]bool{}
			for i := 0; i < n; i++ {
				set[rng.Intn(30)] = true
			}
			out := make([]int, 0, len(set))
			for v := range set {
				out = append(out, v)
			}
			// insertion sort
			for i := 1; i < len(out); i++ {
				for k := i; k > 0 && out[k-1] > out[k]; k-- {
					out[k-1], out[k] = out[k], out[k-1]
				}
			}
			return out
		}
		a, b := gen(), gen()
		u := UnionSorted(a, b)
		seen := map[int]bool{}
		for i := range u {
			if i > 0 && u[i-1] >= u[i] {
				return false
			}
			seen[u[i]] = true
		}
		for _, v := range a {
			if !seen[v] {
				return false
			}
		}
		for _, v := range b {
			if !seen[v] {
				return false
			}
		}
		return len(seen) == len(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternToCSC(t *testing.T) {
	a := small3x3()
	p := PatternOf(a)
	b := p.ToCSC(1)
	if b.NNZ() != a.NNZ() {
		t.Fatalf("ToCSC NNZ = %d, want %d", b.NNZ(), a.NNZ())
	}
	for _, v := range b.Val {
		if v != 1 {
			t.Fatal("ToCSC value not 1")
		}
	}
}
