package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// small3x3 builds the matrix
//
//	[1 0 2]
//	[0 3 0]
//	[4 5 6]
func small3x3() *CSC {
	t := NewTriplet(3, 3)
	t.Add(0, 0, 1)
	t.Add(0, 2, 2)
	t.Add(1, 1, 3)
	t.Add(2, 0, 4)
	t.Add(2, 1, 5)
	t.Add(2, 2, 6)
	return t.ToCSC()
}

// randomCSC returns a random nr×nc matrix with the given fill density;
// the diagonal (of the leading square part) is always present.
func randomCSC(nr, nc int, density float64, rng *rand.Rand) *CSC {
	t := NewTriplet(nr, nc)
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			if i == j || rng.Float64() < density {
				t.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

func TestTripletToCSC(t *testing.T) {
	a := small3x3()
	if a.NNZ() != 6 {
		t.Fatalf("NNZ = %d, want 6", a.NNZ())
	}
	checks := []struct {
		i, j int
		v    float64
	}{
		{0, 0, 1}, {0, 2, 2}, {1, 1, 3}, {2, 0, 4}, {2, 1, 5}, {2, 2, 6},
		{0, 1, 0}, {1, 0, 0}, {1, 2, 0},
	}
	for _, c := range checks {
		if got := a.At(c.i, c.j); got != c.v {
			t.Errorf("At(%d,%d) = %g, want %g", c.i, c.j, got, c.v)
		}
	}
}

func TestTripletDuplicatesSummed(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Add(0, 0, 1)
	tr.Add(0, 0, 2)
	tr.Add(1, 1, 5)
	a := tr.ToCSC()
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", a.NNZ())
	}
	if a.At(0, 0) != 3 {
		t.Fatalf("At(0,0) = %g, want 3", a.At(0, 0))
	}
}

func TestTripletAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	NewTriplet(2, 2).Add(2, 0, 1)
}

func TestCSCSortedIndices(t *testing.T) {
	tr := NewTriplet(3, 1)
	tr.Add(2, 0, 1)
	tr.Add(0, 0, 2)
	tr.Add(1, 0, 3)
	a := tr.ToCSC()
	rows, _ := a.Col(0)
	for k := 1; k < len(rows); k++ {
		if rows[k-1] >= rows[k] {
			t.Fatalf("rows not sorted: %v", rows)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := small3x3()
	b := a.Transpose()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != b.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSC(15, 9, 0.2, rng)
	b := a.Transpose().Transpose()
	if !a.Equal(b) {
		t.Fatal("Aᵀᵀ ≠ A")
	}
}

func TestMulVec(t *testing.T) {
	a := small3x3()
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	a.MulVec(x, y)
	want := []float64{7, 6, 32}
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-14 {
			t.Fatalf("MulVec = %v, want %v", y, want)
		}
	}
}

func TestMulVecT(t *testing.T) {
	a := small3x3()
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	a.MulVecT(x, y)
	// Aᵀx = [1+12, 6+15, 2+18]
	want := []float64{13, 21, 20}
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-14 {
			t.Fatalf("MulVecT = %v, want %v", y, want)
		}
	}
}

func TestMulVecMatchesTransposeMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomCSC(12, 17, 0.25, rng)
	x := make([]float64, 17)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, 12)
	a.MulVec(x, y1)
	y2 := make([]float64, 12)
	a.Transpose().MulVecT(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("A·x ≠ (Aᵀ)ᵀ·x at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
}

func TestPermuteRows(t *testing.T) {
	a := small3x3()
	p := Perm{2, 0, 1} // row 0→2, 1→0, 2→1
	b := a.PermuteRows(p)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if b.At(p[i], j) != a.At(i, j) {
				t.Fatalf("PermuteRows mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPermuteCols(t *testing.T) {
	a := small3x3()
	q := Perm{1, 2, 0}
	b := a.PermuteCols(q)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if b.At(i, q[j]) != a.At(i, j) {
				t.Fatalf("PermuteCols mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPermuteSymRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomCSC(10, 10, 0.3, rng)
	p := RandomPerm(10, rng)
	b := a.PermuteSym(p).PermuteSym(p.Inverse())
	if !a.Equal(b) {
		t.Fatal("PermuteSym round trip failed")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomCSC(8, 11, 0.3, rng)
	b := FromDense(a.ToDense(), 8, 11, 0)
	if !a.Equal(b) {
		t.Fatal("dense round trip failed")
	}
}

func TestHasZeroFreeDiagonal(t *testing.T) {
	a := small3x3()
	if !a.HasZeroFreeDiagonal() {
		t.Fatal("small3x3 has a zero-free diagonal")
	}
	tr := NewTriplet(2, 2)
	tr.Add(0, 1, 1)
	tr.Add(1, 0, 1)
	if tr.ToCSC().HasZeroFreeDiagonal() {
		t.Fatal("antidiagonal matrix should not report zero-free diagonal")
	}
}

func TestNorms(t *testing.T) {
	a := small3x3()
	if got := a.Norm1(); got != 8 { // col 2: 2+6
		t.Fatalf("Norm1 = %g, want 8", got)
	}
	if got := a.NormInf(); got != 15 { // row 2: 4+5+6
		t.Fatalf("NormInf = %g, want 15", got)
	}
	if got := a.MaxAbs(); got != 6 {
		t.Fatalf("MaxAbs = %g, want 6", got)
	}
}

func TestClone(t *testing.T) {
	a := small3x3()
	b := a.Clone()
	b.Val[0] = 99
	if a.Val[0] == 99 {
		t.Fatal("Clone aliases Val")
	}
	if !a.SamePattern(b) {
		t.Fatal("Clone pattern differs")
	}
}

// Property: permuting rows then permuting back yields the original.
func TestQuickPermuteRowsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		a := randomCSC(n, n, 0.3, rng)
		p := RandomPerm(n, rng)
		return a.PermuteRows(p).PermuteRows(p.Inverse()).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: (PAQᵀ)(i',j') = A(i,j) with i' = p[i], j' = q[j].
func TestQuickPermuteEntrywise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := randomCSC(n, n, 0.4, rng)
		p := RandomPerm(n, rng)
		q := RandomPerm(n, rng)
		b := a.Permute(p, q)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if b.At(p[i], q[j]) != a.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
