package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestHarwellBoeingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	a := randomCSC(12, 9, 0.3, rng)
	var buf bytes.Buffer
	if err := WriteHarwellBoeing(&buf, a, "round trip test"); err != nil {
		t.Fatal(err)
	}
	b, err := ReadHarwellBoeing(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.NRows != a.NRows || b.NCols != a.NCols || b.NNZ() != a.NNZ() {
		t.Fatalf("shape changed: %d×%d nnz %d", b.NRows, b.NCols, b.NNZ())
	}
	for j := 0; j < a.NCols; j++ {
		rows, vals := a.Col(j)
		for k, i := range rows {
			got := b.At(i, j)
			if d := got - vals[k]; d > 1e-14 || d < -1e-14 {
				t.Fatalf("value (%d,%d) = %g, want %g", i, j, got, vals[k])
			}
		}
	}
}

func TestHarwellBoeingSymmetric(t *testing.T) {
	src := `Symmetric test                                                          KEY
             3             1             1             1
RSA                          3             3             4             0
(8I10)          (8I10)          (4E25.16)
         1         3         4         5
         1         3         2         3
  2.0D0  -1.0  4.0   1.0E0
`
	a, err := ReadHarwellBoeing(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// Stored: (0,0), (2,0), (1,1), (2,2); expansion adds (0,2).
	if a.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5 after expansion", a.NNZ())
	}
	if a.At(0, 0) != 2 || a.At(2, 0) != -1 || a.At(0, 2) != -1 {
		t.Fatal("symmetric expansion wrong")
	}
	if a.At(1, 1) != 4 || a.At(2, 2) != 1 {
		t.Fatal("diagonal wrong")
	}
}

func TestHarwellBoeingPattern(t *testing.T) {
	src := `Pattern test                                                            KEY
             2             1             1             0
PUA                          2             2             2             0
(8I10)          (8I10)
         1         2         3
         1         2
`
	a, err := ReadHarwellBoeing(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(1, 1) != 1 {
		t.Fatal("pattern values should be 1")
	}
}

func TestHarwellBoeingSkew(t *testing.T) {
	src := `Skew test                                                               KEY
             2             1             1             1
RZA                          2             2             1             0
(8I10)          (8I10)          (4E25.16)
         1         2         2
         2
  3.0
`
	a, err := ReadHarwellBoeing(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 0) != 3 || a.At(0, 1) != -3 {
		t.Fatalf("skew expansion wrong: %g %g", a.At(1, 0), a.At(0, 1))
	}
}

func TestHarwellBoeingErrors(t *testing.T) {
	cases := []string{
		"",
		"title\n", // missing everything after line 1
		"title\n 1 1 1 1\nCUA 2 2 1 0\n(8I10) (8I10) (4E25.16)\n1 2\n1\n1.0\n", // complex
		"title\n 1 1 1 1\nRUE 2 2 1 0\n(8I10) (8I10) (4E25.16)\n1 2\n1\n1.0\n", // elemental
		"title\n 1 1 1 1\nRUA 2 2 1 0\n(8I10) (8I10) (4E25.16)\n1 2\n9\n1.0\n", // row index out of range
		"title\n 1 1 1 1\nRUA 2 2 1 0\n(8I10) (8I10) (4E25.16)\n1 2\n",         // truncated indices
		"title\n 1 1 1 1\nRUA 2 2 1 0\n(8I10) (8I10) (4E25.16)\n1 2\n1\nxyz\n", // bad value
		"title\n 1 1 1 1\nRUA x y z 0\n(8I10) (8I10) (4E25.16)\n1 2\n1\n1.0\n", // bad dims
	}
	for i, src := range cases {
		if _, err := ReadHarwellBoeing(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestHarwellBoeingRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	a := randomCSC(5, 8, 0.4, rng)
	var buf bytes.Buffer
	if err := WriteHarwellBoeing(&buf, a, strings.Repeat("x", 100)); err != nil {
		t.Fatal(err) // long title must be truncated, not fail
	}
	b, err := ReadHarwellBoeing(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !b.SamePattern(a) {
		t.Fatal("pattern changed")
	}
}
