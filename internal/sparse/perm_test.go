package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityPerm(t *testing.T) {
	p := Identity(5)
	for i, v := range p {
		if v != i {
			t.Fatalf("Identity(5)[%d] = %d", i, v)
		}
	}
	if !p.IsValid() {
		t.Fatal("identity not valid")
	}
}

func TestPermInverse(t *testing.T) {
	p := Perm{2, 0, 3, 1}
	q := p.Inverse()
	want := Perm{1, 3, 0, 2}
	for i := range q {
		if q[i] != want[i] {
			t.Fatalf("Inverse = %v, want %v", q, want)
		}
	}
}

func TestPermInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		p := RandomPerm(n, rng)
		q := p.Inverse()
		r := p.Compose(q)
		for i, v := range r {
			if v != i {
				t.Fatalf("p∘p⁻¹ not identity at %d: %v", i, r)
			}
		}
	}
}

func TestPermApply(t *testing.T) {
	p := Perm{2, 0, 1}
	x := []float64{10, 20, 30}
	y := p.Apply(x)
	// y[p[i]] = x[i]: y[2]=10, y[0]=20, y[1]=30
	want := []float64{20, 30, 10}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Apply = %v, want %v", y, want)
		}
	}
	z := p.ApplyInverse(y)
	for i := range z {
		if z[i] != x[i] {
			t.Fatalf("ApplyInverse(Apply(x)) = %v, want %v", z, x)
		}
	}
}

func TestPermApplyInts(t *testing.T) {
	p := Perm{1, 2, 0}
	x := []int{7, 8, 9}
	y := p.ApplyInts(x)
	want := []int{9, 7, 8}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("ApplyInts = %v, want %v", y, want)
		}
	}
}

func TestPermIsValidRejectsBad(t *testing.T) {
	cases := []Perm{
		{0, 0},
		{1, 2},
		{-1, 0},
		{0, 2, 1, 3, 3},
	}
	for _, p := range cases {
		if p.IsValid() {
			t.Errorf("IsValid(%v) = true, want false", p)
		}
		if err := CheckPerm(p, len(p)); err == nil {
			t.Errorf("CheckPerm(%v) = nil, want error", p)
		}
	}
}

func TestCheckPermLength(t *testing.T) {
	if err := CheckPerm(Perm{0, 1}, 3); err == nil {
		t.Fatal("CheckPerm accepted wrong length")
	}
}

func TestPermComposeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		p := RandomPerm(n, rng)
		q := RandomPerm(n, rng)
		r := RandomPerm(n, rng)
		lhs := p.Compose(q).Compose(r)
		rhs := p.Compose(q.Compose(r))
		for i := range lhs {
			if lhs[i] != rhs[i] {
				t.Fatalf("compose not associative at %d", i)
			}
		}
	}
}

func TestPermCloneIndependent(t *testing.T) {
	p := Perm{1, 0}
	q := p.Clone()
	q[0] = 0
	if p[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

// Property: random permutations are always valid and invert correctly.
func TestQuickPermInverse(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		rng := rand.New(rand.NewSource(seed))
		p := RandomPerm(n, rng)
		if !p.IsValid() {
			return false
		}
		q := p.Inverse()
		for i := range p {
			if q[p[i]] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
