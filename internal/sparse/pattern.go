package sparse

import (
	"fmt"
	"sort"
)

// Pattern is the sparsity structure of a matrix: CSC without values.
type Pattern struct {
	NRows, NCols int
	ColPtr       []int
	RowInd       []int
}

// PatternOf extracts the structure of a.
func PatternOf(a *CSC) *Pattern {
	return &Pattern{
		NRows:  a.NRows,
		NCols:  a.NCols,
		ColPtr: append([]int(nil), a.ColPtr...),
		RowInd: append([]int(nil), a.RowInd...),
	}
}

// NNZ returns the number of structural entries.
func (p *Pattern) NNZ() int { return p.ColPtr[p.NCols] }

// Col returns the row indices of column j.
func (p *Pattern) Col(j int) []int {
	return p.RowInd[p.ColPtr[j]:p.ColPtr[j+1]]
}

// Has reports whether (i, j) is a structural entry. Requires sorted rows.
func (p *Pattern) Has(i, j int) bool {
	col := p.Col(j)
	k := sort.SearchInts(col, i)
	return k < len(col) && col[k] == i
}

// Transpose returns the structure of the transpose.
func (p *Pattern) Transpose() *Pattern {
	t := &Pattern{
		NRows:  p.NCols,
		NCols:  p.NRows,
		ColPtr: make([]int, p.NRows+1),
		RowInd: make([]int, p.NNZ()),
	}
	for _, i := range p.RowInd {
		t.ColPtr[i+1]++
	}
	for i := 0; i < p.NRows; i++ {
		t.ColPtr[i+1] += t.ColPtr[i]
	}
	next := append([]int(nil), t.ColPtr[:p.NRows]...)
	for j := 0; j < p.NCols; j++ {
		for k := p.ColPtr[j]; k < p.ColPtr[j+1]; k++ {
			i := p.RowInd[k]
			t.RowInd[next[i]] = j
			next[i]++
		}
	}
	return t
}

// ToCSC returns a CSC matrix with this structure and all values set to v.
func (p *Pattern) ToCSC(v float64) *CSC {
	a := &CSC{
		NRows:  p.NRows,
		NCols:  p.NCols,
		ColPtr: append([]int(nil), p.ColPtr...),
		RowInd: append([]int(nil), p.RowInd...),
		Val:    make([]float64, p.NNZ()),
	}
	for k := range a.Val {
		a.Val[k] = v
	}
	return a
}

// PermuteSym returns the pattern relabeled symmetrically: entry (i, j)
// becomes (perm[i], perm[j]). Row indices in the result are sorted.
func (p *Pattern) PermuteSym(perm Perm) *Pattern {
	if p.NRows != p.NCols {
		panic("sparse: Pattern.PermuteSym on non-square pattern")
	}
	n := p.NCols
	if err := CheckPerm(perm, n); err != nil {
		panic(fmt.Sprintf("sparse: Pattern.PermuteSym: %v", err))
	}
	out := &Pattern{NRows: n, NCols: n, ColPtr: make([]int, n+1), RowInd: make([]int, p.NNZ())}
	for j := 0; j < n; j++ {
		out.ColPtr[perm[j]+1] = p.ColPtr[j+1] - p.ColPtr[j]
	}
	for j := 0; j < n; j++ {
		out.ColPtr[j+1] += out.ColPtr[j]
	}
	for j := 0; j < n; j++ {
		dst := out.ColPtr[perm[j]]
		for k := p.ColPtr[j]; k < p.ColPtr[j+1]; k++ {
			out.RowInd[dst] = perm[p.RowInd[k]]
			dst++
		}
	}
	for j := 0; j < n; j++ {
		sort.Ints(out.RowInd[out.ColPtr[j]:out.ColPtr[j+1]])
	}
	return out
}

// ATAPattern computes the sparsity structure of AᵀA for an m×n matrix A.
// Entry (i, j) of AᵀA is structurally nonzero iff columns i and j of A
// share a row. Runs in O(Σ_r nnz(row r)²) time, which is fine for the
// benchmark suite (rows are short); a dense row would make this
// quadratic.
func ATAPattern(a *CSC) *Pattern {
	n := a.NCols
	at := PatternOf(a).Transpose() // rows of A as "columns"
	marker := make([]int, n)
	for i := range marker {
		marker[i] = -1
	}
	var colPtr []int
	var rowInd []int
	colPtr = make([]int, n+1)
	// For column j of AᵀA: union of rows(A) structure over rows r with
	// a_rj ≠ 0, i.e. all columns i such that ∃r: a_ri ≠ 0 and a_rj ≠ 0.
	for j := 0; j < n; j++ {
		start := len(rowInd)
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			r := a.RowInd[k]
			for kk := at.ColPtr[r]; kk < at.ColPtr[r+1]; kk++ {
				i := at.RowInd[kk]
				if marker[i] != j {
					marker[i] = j
					rowInd = append(rowInd, i)
				}
			}
		}
		sort.Ints(rowInd[start:])
		colPtr[j+1] = len(rowInd)
	}
	return &Pattern{NRows: n, NCols: n, ColPtr: colPtr, RowInd: rowInd}
}

// SymmetrizePattern returns the structure of A + Aᵀ for a square matrix.
func SymmetrizePattern(a *CSC) *Pattern {
	if a.NRows != a.NCols {
		panic("sparse: SymmetrizePattern on non-square matrix")
	}
	n := a.NCols
	p := PatternOf(a)
	t := p.Transpose()
	colPtr := make([]int, n+1)
	var rowInd []int
	for j := 0; j < n; j++ {
		c1 := p.Col(j)
		c2 := t.Col(j)
		// merge two sorted lists, deduplicating
		i1, i2 := 0, 0
		for i1 < len(c1) || i2 < len(c2) {
			switch {
			case i2 >= len(c2) || (i1 < len(c1) && c1[i1] < c2[i2]):
				rowInd = append(rowInd, c1[i1])
				i1++
			case i1 >= len(c1) || c2[i2] < c1[i1]:
				rowInd = append(rowInd, c2[i2])
				i2++
			default: // equal
				rowInd = append(rowInd, c1[i1])
				i1++
				i2++
			}
		}
		colPtr[j+1] = len(rowInd)
	}
	return &Pattern{NRows: n, NCols: n, ColPtr: colPtr, RowInd: rowInd}
}

// PatternContains reports whether every structural entry of inner is also
// a structural entry of outer. Both must have sorted row indices.
func PatternContains(outer, inner *Pattern) bool {
	if outer.NRows != inner.NRows || outer.NCols != inner.NCols {
		return false
	}
	for j := 0; j < inner.NCols; j++ {
		oc := outer.Col(j)
		ic := inner.Col(j)
		oi := 0
		for _, r := range ic {
			for oi < len(oc) && oc[oi] < r {
				oi++
			}
			if oi >= len(oc) || oc[oi] != r {
				return false
			}
		}
	}
	return true
}

// UnionSorted merges two sorted, duplicate-free int slices into a new
// sorted, duplicate-free slice.
func UnionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
