package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSC is a compressed sparse column matrix. Column j occupies the index
// range [ColPtr[j], ColPtr[j+1]) of RowInd and Val. Row indices within a
// column are kept sorted by every constructor in this package; code that
// mutates RowInd directly must call SortIndices before handing the matrix
// to pattern algorithms.
type CSC struct {
	NRows, NCols int
	ColPtr       []int
	RowInd       []int
	Val          []float64
}

// NewCSC allocates an nrows×ncols CSC matrix with capacity for nnz
// entries. ColPtr is zeroed; the caller fills the structure.
func NewCSC(nrows, ncols, nnz int) *CSC {
	return &CSC{
		NRows:  nrows,
		NCols:  ncols,
		ColPtr: make([]int, ncols+1),
		RowInd: make([]int, nnz),
		Val:    make([]float64, nnz),
	}
}

// NNZ returns the number of stored entries.
func (a *CSC) NNZ() int { return a.ColPtr[a.NCols] }

// Clone returns a deep copy of a.
func (a *CSC) Clone() *CSC {
	b := &CSC{
		NRows:  a.NRows,
		NCols:  a.NCols,
		ColPtr: append([]int(nil), a.ColPtr...),
		RowInd: append([]int(nil), a.RowInd...),
		Val:    append([]float64(nil), a.Val...),
	}
	return b
}

// At returns the value at (i, j), or 0 if the entry is not stored.
// Requires sorted row indices; O(log nnz(col j)).
func (a *CSC) At(i, j int) float64 {
	if i < 0 || i >= a.NRows || j < 0 || j >= a.NCols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of %d×%d", i, j, a.NRows, a.NCols))
	}
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	k := lo + sort.SearchInts(a.RowInd[lo:hi], i)
	if k < hi && a.RowInd[k] == i {
		return a.Val[k]
	}
	return 0
}

// Has reports whether the entry (i, j) is structurally present.
func (a *CSC) Has(i, j int) bool {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	k := lo + sort.SearchInts(a.RowInd[lo:hi], i)
	return k < hi && a.RowInd[k] == i
}

// Col returns the row indices and values of column j as sub-slices of the
// backing arrays; the caller must not modify the index slice order.
func (a *CSC) Col(j int) ([]int, []float64) {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	return a.RowInd[lo:hi], a.Val[lo:hi]
}

// SortIndices sorts the row indices (and values) within each column.
func (a *CSC) SortIndices() {
	for j := 0; j < a.NCols; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		if !sort.IntsAreSorted(a.RowInd[lo:hi]) {
			sort.Sort(pairSorter{a.RowInd[lo:hi], a.Val[lo:hi]})
		}
	}
}

// sumDuplicates merges adjacent equal row indices within each column,
// summing their values. Requires sorted indices.
func (a *CSC) sumDuplicates() {
	out := 0
	colPtr := make([]int, a.NCols+1)
	for j := 0; j < a.NCols; j++ {
		colPtr[j] = out
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		for k := lo; k < hi; {
			r := a.RowInd[k]
			v := a.Val[k]
			k++
			for k < hi && a.RowInd[k] == r {
				v += a.Val[k]
				k++
			}
			a.RowInd[out] = r
			a.Val[out] = v
			out++
		}
	}
	colPtr[a.NCols] = out
	a.ColPtr = colPtr
	a.RowInd = a.RowInd[:out]
	a.Val = a.Val[:out]
}

// Transpose returns Aᵀ in CSC form (equivalently, A in CSR form viewed as
// CSC). Runs in O(nnz + n).
func (a *CSC) Transpose() *CSC {
	t := NewCSC(a.NCols, a.NRows, a.NNZ())
	count := make([]int, a.NRows+1)
	for _, i := range a.RowInd {
		count[i+1]++
	}
	for i := 0; i < a.NRows; i++ {
		count[i+1] += count[i]
	}
	copy(t.ColPtr, count)
	next := make([]int, a.NRows)
	copy(next, count[:a.NRows])
	for j := 0; j < a.NCols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowInd[k]
			p := next[i]
			t.RowInd[p] = j
			t.Val[p] = a.Val[k]
			next[i]++
		}
	}
	return t
}

// MulVec computes y = A·x. y must have length NRows; x length NCols.
func (a *CSC) MulVec(x, y []float64) {
	if len(x) != a.NCols || len(y) != a.NRows {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < a.NCols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			y[a.RowInd[k]] += a.Val[k] * xj
		}
	}
}

// MulVecT computes y = Aᵀ·x. y must have length NCols; x length NRows.
func (a *CSC) MulVecT(x, y []float64) {
	if len(x) != a.NRows || len(y) != a.NCols {
		panic("sparse: MulVecT dimension mismatch")
	}
	for j := 0; j < a.NCols; j++ {
		var s float64
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			s += a.Val[k] * x[a.RowInd[k]]
		}
		y[j] = s
	}
}

// PermuteRows returns P·A where row i of A becomes row p[i] of the result.
func (a *CSC) PermuteRows(p Perm) *CSC {
	if err := CheckPerm(p, a.NRows); err != nil {
		panic(fmt.Sprintf("sparse: PermuteRows: %v", err))
	}
	b := a.Clone()
	for k, i := range a.RowInd {
		b.RowInd[k] = p[i]
	}
	b.SortIndices()
	return b
}

// PermuteCols returns A·Qᵀ where column j of A becomes column q[j] of the
// result.
func (a *CSC) PermuteCols(q Perm) *CSC {
	if err := CheckPerm(q, a.NCols); err != nil {
		panic(fmt.Sprintf("sparse: PermuteCols: %v", err))
	}
	b := NewCSC(a.NRows, a.NCols, a.NNZ())
	// Column q[j] of b has the length of column j of a.
	for j := 0; j < a.NCols; j++ {
		b.ColPtr[q[j]+1] = a.ColPtr[j+1] - a.ColPtr[j]
	}
	for j := 0; j < a.NCols; j++ {
		b.ColPtr[j+1] += b.ColPtr[j]
	}
	for j := 0; j < a.NCols; j++ {
		dst := b.ColPtr[q[j]]
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		copy(b.RowInd[dst:dst+hi-lo], a.RowInd[lo:hi])
		copy(b.Val[dst:dst+hi-lo], a.Val[lo:hi])
	}
	return b
}

// Permute returns P·A·Qᵀ, permuting rows by p and columns by q.
func (a *CSC) Permute(p, q Perm) *CSC {
	return a.PermuteRows(p).PermuteCols(q)
}

// PermuteSym returns P·A·Pᵀ, the symmetric permutation of a square matrix.
func (a *CSC) PermuteSym(p Perm) *CSC {
	if a.NRows != a.NCols {
		panic("sparse: PermuteSym on non-square matrix")
	}
	return a.Permute(p, p)
}

// HasZeroFreeDiagonal reports whether every diagonal entry of the square
// matrix is structurally present.
func (a *CSC) HasZeroFreeDiagonal() bool {
	if a.NRows != a.NCols {
		return false
	}
	for j := 0; j < a.NCols; j++ {
		if !a.Has(j, j) {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute value of any stored entry.
func (a *CSC) MaxAbs() float64 {
	m := 0.0
	for _, v := range a.Val {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// Norm1 returns the 1-norm (maximum absolute column sum).
func (a *CSC) Norm1() float64 {
	m := 0.0
	for j := 0; j < a.NCols; j++ {
		var s float64
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			s += math.Abs(a.Val[k])
		}
		if s > m {
			m = s
		}
	}
	return m
}

// NormInf returns the infinity norm (maximum absolute row sum).
func (a *CSC) NormInf() float64 {
	sums := make([]float64, a.NRows)
	for k, i := range a.RowInd {
		sums[i] += math.Abs(a.Val[k])
	}
	m := 0.0
	for _, s := range sums {
		if s > m {
			m = s
		}
	}
	return m
}

// ToDense returns the matrix as a dense row-major slice of length
// NRows×NCols. Intended for tests and tiny examples.
func (a *CSC) ToDense() []float64 {
	d := make([]float64, a.NRows*a.NCols)
	for j := 0; j < a.NCols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			d[a.RowInd[k]*a.NCols+j] = a.Val[k]
		}
	}
	return d
}

// FromDense builds a CSC matrix from a dense row-major slice, keeping
// entries with absolute value above tol (tol = 0 keeps exact nonzeros).
func FromDense(d []float64, nrows, ncols int, tol float64) *CSC {
	if len(d) != nrows*ncols {
		panic("sparse: FromDense dimension mismatch")
	}
	t := NewTriplet(nrows, ncols)
	for i := 0; i < nrows; i++ {
		for j := 0; j < ncols; j++ {
			if v := d[i*ncols+j]; math.Abs(v) > tol || (tol == 0 && v != 0) {
				t.Add(i, j, v)
			}
		}
	}
	return t.ToCSC()
}

// Equal reports whether a and b have identical dimensions, structure and
// values.
func (a *CSC) Equal(b *CSC) bool {
	if a.NRows != b.NRows || a.NCols != b.NCols || a.NNZ() != b.NNZ() {
		return false
	}
	for j := 0; j <= a.NCols; j++ {
		if a.ColPtr[j] != b.ColPtr[j] {
			return false
		}
	}
	for k := range a.RowInd {
		if a.RowInd[k] != b.RowInd[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// SamePattern reports whether a and b have the same sparsity structure.
func (a *CSC) SamePattern(b *CSC) bool {
	if a.NRows != b.NRows || a.NCols != b.NCols || a.NNZ() != b.NNZ() {
		return false
	}
	for j := 0; j <= a.NCols; j++ {
		if a.ColPtr[j] != b.ColPtr[j] {
			return false
		}
	}
	for k := range a.RowInd {
		if a.RowInd[k] != b.RowInd[k] {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging; large matrices render as a
// summary line.
func (a *CSC) String() string {
	if a.NRows > 16 || a.NCols > 16 {
		return fmt.Sprintf("CSC{%d×%d, nnz=%d}", a.NRows, a.NCols, a.NNZ())
	}
	s := ""
	d := a.ToDense()
	for i := 0; i < a.NRows; i++ {
		for j := 0; j < a.NCols; j++ {
			s += fmt.Sprintf("%8.3g ", d[i*a.NCols+j])
		}
		s += "\n"
	}
	return s
}
