package sparse

import (
	"fmt"
	"sort"
)

// Triplet is a coordinate-format (COO) sparse matrix used for assembly.
// Duplicate entries are allowed; they are summed when converting to CSC.
type Triplet struct {
	NRows, NCols int
	I, J         []int
	V            []float64
}

// NewTriplet returns an empty nrows×ncols triplet matrix.
func NewTriplet(nrows, ncols int) *Triplet {
	if nrows < 0 || ncols < 0 {
		panic("sparse: negative dimension")
	}
	return &Triplet{NRows: nrows, NCols: ncols}
}

// Add appends the entry (i, j, v). Zero values are kept: an explicit zero
// contributes to the sparsity pattern, which matters for structural
// analyses such as symbolic factorization.
func (t *Triplet) Add(i, j int, v float64) {
	if i < 0 || i >= t.NRows || j < 0 || j >= t.NCols {
		panic(fmt.Sprintf("sparse: Triplet.Add index (%d,%d) out of %d×%d", i, j, t.NRows, t.NCols))
	}
	t.I = append(t.I, i)
	t.J = append(t.J, j)
	t.V = append(t.V, v)
}

// NNZ returns the number of stored entries (before duplicate summation).
func (t *Triplet) NNZ() int { return len(t.I) }

// ToCSC converts the triplet matrix to compressed sparse column form,
// summing duplicates. Row indices within each column come out sorted.
func (t *Triplet) ToCSC() *CSC {
	n := t.NCols
	count := make([]int, n+1)
	for _, j := range t.J {
		count[j+1]++
	}
	for j := 0; j < n; j++ {
		count[j+1] += count[j]
	}
	colPtr := make([]int, n+1)
	copy(colPtr, count)
	rowInd := make([]int, len(t.I))
	val := make([]float64, len(t.I))
	next := make([]int, n)
	copy(next, colPtr[:n])
	for k, j := range t.J {
		p := next[j]
		rowInd[p] = t.I[k]
		val[p] = t.V[k]
		next[j]++
	}
	a := &CSC{NRows: t.NRows, NCols: t.NCols, ColPtr: colPtr, RowInd: rowInd, Val: val}
	a.SortIndices()
	a.sumDuplicates()
	return a
}

// sortPairs sorts (ind, val) pairs in a column segment by index.
type pairSorter struct {
	ind []int
	val []float64
}

func (s pairSorter) Len() int           { return len(s.ind) }
func (s pairSorter) Less(i, j int) bool { return s.ind[i] < s.ind[j] }
func (s pairSorter) Swap(i, j int) {
	s.ind[i], s.ind[j] = s.ind[j], s.ind[i]
	s.val[i], s.val[j] = s.val[j], s.val[i]
}

var _ sort.Interface = pairSorter{}
