package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomCSC(10, 7, 0.3, rng)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("MatrixMarket round trip failed")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% comment
3 3 4
1 1 2.0
2 1 -1.0
3 2 4.0
3 3 1.0
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 6 {
		t.Fatalf("NNZ = %d, want 6 (expanded)", a.NNZ())
	}
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Fatal("symmetric expansion wrong")
	}
	if a.At(1, 2) != 4 || a.At(2, 1) != 4 {
		t.Fatal("symmetric expansion wrong for (3,2)")
	}
}

func TestMatrixMarketSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 0) != 3 || a.At(0, 1) != -3 {
		t.Fatalf("skew expansion wrong: %v %v", a.At(1, 0), a.At(0, 1))
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 3 2
1 1
2 3
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(1, 2) != 1 {
		t.Fatal("pattern values should be 1")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"not a header\n1 1 1\n1 1 1.0\n",
		"%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n", // truncated
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n",
	}
	for i, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error, got nil", i)
		}
	}
}

func TestMatrixMarketCommentsAndBlankLines(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% a comment

% another
2 2 2

1 1 5.0
% interior comment
2 2 6.0
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 5 || a.At(1, 1) != 6 {
		t.Fatal("comment handling broke values")
	}
}
