package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// TestDequeOwnerLIFOThiefFIFO pins the claim orders of the Chase–Lev
// deque: the owner pops the most recently pushed task (cache-warm
// successor first), a thief steals the oldest one.
func TestDequeOwnerLIFOThiefFIFO(t *testing.T) {
	var d deque
	d.init(8)
	for id := int32(0); id < 5; id++ {
		d.push(id)
	}
	if id := d.pop(); id != 4 {
		t.Fatalf("pop = %d, want 4 (LIFO)", id)
	}
	if id, ok := d.steal(); !ok || id != 0 {
		t.Fatalf("steal = %d,%v, want 0,true (FIFO)", id, ok)
	}
	if id, ok := d.steal(); !ok || id != 1 {
		t.Fatalf("steal = %d,%v, want 1,true", id, ok)
	}
	if id := d.pop(); id != 3 {
		t.Fatalf("pop = %d, want 3", id)
	}
	if id := d.pop(); id != 2 {
		t.Fatalf("pop = %d, want 2", id)
	}
	if id := d.pop(); id != -1 {
		t.Fatalf("pop on empty = %d, want -1", id)
	}
	if id, ok := d.steal(); ok || id != -1 {
		t.Fatalf("steal on empty = %d,%v, want -1,false", id, ok)
	}
}

// TestDequeStealStress races one owner (pushing all ids and popping)
// against several thieves and checks every id is delivered exactly once
// — in particular the CAS-arbitrated last-element race between pop and
// steal must never duplicate or drop a task. Run under -race this is
// the memory-model proof for the deque.
func TestDequeStealStress(t *testing.T) {
	const n = 20000
	const thieves = 3
	var d deque
	d.init(n)

	seen := make([]atomic.Int32, n)
	claim := func(id int32) {
		if id < 0 {
			t.Errorf("claimed negative id %d", id)
			return
		}
		seen[id].Add(1)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if id, ok := d.steal(); ok && id >= 0 {
					claim(id)
				}
			}
			// Drain whatever the owner left behind.
			for {
				id, ok := d.steal()
				if !ok {
					return
				}
				if id >= 0 {
					claim(id)
				}
			}
		}()
	}

	// Owner: push everything in bursts, popping in between so the
	// last-element race happens many times.
	for id := int32(0); id < n; id++ {
		d.push(id)
		if id%3 == 0 {
			if got := d.pop(); got >= 0 {
				claim(got)
			}
		}
	}
	for {
		id := d.pop()
		if id < 0 {
			break
		}
		claim(id)
	}
	done.Store(true)
	wg.Wait()

	for id := range seen {
		if c := seen[id].Load(); c != 1 {
			t.Fatalf("task %d delivered %d times, want exactly once", id, c)
		}
	}
}

// TestAsyncStarvationTermination is the starvation/termination stress
// for the work-stealing engine: heavily skewed task costs concentrate
// work on a few tasks while fault-injected delays stall others, so
// workers repeatedly run dry, steal, park and get woken. The engine
// must still terminate (no deadlock, guarded by a watchdog) with every
// task run exactly once — under -race this also proves the park/unpark
// protocol cannot lose a wakeup.
func TestAsyncStarvationTermination(t *testing.T) {
	g, _ := buildGraph(t, 60, 0.08, 20260808, taskgraph.EForest)
	nt := g.NumTasks()

	// Delay a deterministic sample of tasks so the victims' deques are
	// empty exactly when thieves come looking.
	inj := faultinject.New()
	for _, id := range faultinject.PickTasks(7, nt, 24) {
		inj.Set(id, faultinject.Fault{Mode: faultinject.Delay, Sleep: 300 * time.Microsecond})
	}

	ran := make([]atomic.Int32, nt)
	sink := 0.0
	var sinkMu sync.Mutex
	run := inj.Wrap(func(id int) error {
		ran[id].Add(1)
		// Skewed costs: every 17th task is ~100x heavier.
		iters := 50
		if id%17 == 0 {
			iters = 5000
		}
		s := 0.0
		for i := 0; i < iters; i++ {
			s += float64(i) * 1e-9
		}
		sinkMu.Lock()
		sink += s
		sinkMu.Unlock()
		return nil
	}, nil)

	for _, exec := range []struct {
		name string
		call func() error
	}{
		{"owner-mapped", func() error {
			return Execute(g, BlockCyclic(g.N, 8), 8, nil, run)
		}},
		{"global-steal", func() error {
			return ExecuteGlobal(g, 8, nil, run)
		}},
	} {
		for i := range ran {
			ran[i].Store(0)
		}
		errc := make(chan error, 1)
		go func() { errc <- exec.call() }()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("%s: %v", exec.name, err)
			}
		case <-time.After(2 * time.Minute):
			t.Fatalf("%s: executor deadlocked (watchdog fired)", exec.name)
		}
		for id := range ran {
			if c := ran[id].Load(); c != 1 {
				t.Fatalf("%s: task %d ran %d times, want exactly once", exec.name, id, c)
			}
		}
	}
	_ = sink
}

// TestAsyncChainOrderTraced checks the determinism mechanism end to
// end: the Theorem-4 per-destination update chains are dependence edges
// (taskgraph.Graph.ChainNext), so in a traced parallel run every chain
// successor must start at or after its predecessor finished — on any
// worker, purely because the dependence counters released it late.
func TestAsyncChainOrderTraced(t *testing.T) {
	for _, variant := range []taskgraph.Variant{taskgraph.SStar, taskgraph.EForest} {
		g, _ := buildGraph(t, 48, 0.1, 42, variant)
		nt := g.NumTasks()
		rec := trace.New(8)
		if err := ExecuteGlobalTraced(g, 8, nil, rec, func(id int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		start := make([]int64, nt)
		end := make([]int64, nt)
		for _, ev := range rec.Events() {
			if ev.Task >= 0 {
				start[ev.Task] = ev.Start
				end[ev.Task] = ev.End
			}
		}
		chains := 0
		for id, next := range g.ChainNext {
			if next < 0 {
				continue
			}
			chains++
			if start[next] < end[id] {
				t.Fatalf("variant %v: chain successor %d started at %d before predecessor %d ended at %d",
					variant, next, start[next], id, end[id])
			}
			// Every chain link must be a real dependence edge, or the
			// ordering above would be luck, not a guarantee.
			found := false
			for _, s := range g.Succ[id] {
				if int(s) == int(next) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("variant %v: ChainNext[%d] = %d is not a dependence edge", variant, id, next)
			}
		}
		if chains == 0 {
			t.Fatalf("variant %v: graph has no chain edges — test is vacuous", variant)
		}
	}
}
