package sched

import (
	"fmt"

	"repro/internal/taskgraph"
)

// RAPID, the run-time system the paper used, is an inspector/executor:
// it computes a static schedule (a fixed task order per processor) from
// estimated task costs before the numeric phase starts, then each
// processor executes its sequence in order, blocking whenever the next
// task's dependences are not yet satisfied. On real hardware the actual
// task times deviate from the estimates (cache misses, NUMA placement,
// contention), so the fixed order meets delays it did not plan for —
// and every dependence edge is a channel through which a delay cascades.
// That is precisely where the paper's leaner eforest-guided graph beats
// S*: with fewer (and no false) dependences, fewer stalls propagate.
//
// SimulateStatic models this: phase 1 builds the static schedule with
// the estimated costs (task-level HLF, identical policy for both graph
// variants); phase 2 executes the fixed per-processor sequences with
// deterministically perturbed task times. Both variants see the *same*
// perturbed time for the same task, so the comparison isolates the
// dependence structure.

// Perturb controls the execution-time deviation model of
// SimulateStatic.
type Perturb struct {
	// Amplitude a scales task time by a factor in [1−a, 1+a]. The
	// default 0 means execution matches the estimates exactly.
	Amplitude float64
	// Seed selects the deterministic pseudo-random stream.
	Seed uint64
}

// factor returns the deterministic perturbation factor for task id.
func (p Perturb) factor(id int) float64 {
	if p.Amplitude == 0 {
		return 1
	}
	// SplitMix64 on (seed, id): cheap, stateless, deterministic.
	z := p.Seed + 0x9e3779b97f4a7c15*(uint64(id)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / float64(1<<53) // [0,1)
	return 1 + p.Amplitude*(2*u-1)
}

// SimulateStatic builds a static task-level schedule from the cost
// model, then simulates its in-order execution under the perturbed task
// times. Returns the executed schedule.
func SimulateStatic(g *taskgraph.Graph, cm *taskgraph.CostModel, m Machine, commWords func(from, to int) float64, perturb Perturb) (*SimResult, error) {
	if m.Procs < 1 {
		return nil, fmt.Errorf("sched: machine with %d processors", m.Procs)
	}
	if m.FlopRate <= 0 {
		return nil, fmt.Errorf("sched: non-positive flop rate")
	}
	nt := g.NumTasks()
	estTime := m.taskSeconds(cm.TaskFlops)

	// Phase 1 — inspector: static schedule with estimated costs. The
	// placement policy is the same deterministic HLF as SimulateGlobal,
	// so both graph variants are scheduled identically well.
	procSeq, err := planAssign(g, cm, m, commWords)
	if err != nil {
		return nil, err
	}

	// Phase 2 — executor: run the fixed sequences with perturbed times.
	actual := make([]float64, nt)
	for id := range actual {
		actual[id] = estTime[id] * perturb.factor(id)
	}
	res := &SimResult{
		Start:    make([]float64, nt),
		Finish:   make([]float64, nt),
		ProcBusy: make([]float64, m.Procs),
	}
	procOf := make([]int, nt)
	for p, seq := range procSeq {
		for _, id := range seq {
			procOf[id] = p
		}
	}
	// Event-driven in-order execution: repeatedly advance the processor
	// whose next task can start earliest.
	pos := make([]int, m.Procs)
	procFree := make([]float64, m.Procs)
	type arrival struct {
		finish float64
		proc   int
		comm   float64
	}
	arrivals := make([][]arrival, nt)
	pending := make([]int, nt)
	for id := range pending {
		pending[id] = 0
	}
	in := g.InDegrees()
	copy(pending, in)

	done := 0
	for done < nt {
		bestP := -1
		bestStart := 0.0
		for p := 0; p < m.Procs; p++ {
			if pos[p] >= len(procSeq[p]) {
				continue
			}
			id := procSeq[p][pos[p]]
			if pending[id] > 0 {
				continue // a predecessor has not even been executed yet
			}
			start := procFree[p]
			for _, a := range arrivals[id] {
				t := a.finish
				if a.proc != p {
					t += a.comm
				}
				if t > start {
					start = t
				}
			}
			if bestP == -1 || start < bestStart {
				bestP, bestStart = p, start
			}
		}
		if bestP == -1 {
			return nil, fmt.Errorf("sched: static schedule deadlocked with %d of %d done", done, nt)
		}
		id := procSeq[bestP][pos[bestP]]
		pos[bestP]++
		finish := bestStart + actual[id]
		res.Start[id] = bestStart
		res.Finish[id] = finish
		res.ProcBusy[bestP] += actual[id]
		procFree[bestP] = finish
		if finish > res.Makespan {
			res.Makespan = finish
		}
		done++
		for _, s := range g.Succ[id] {
			comm := m.Latency
			if commWords != nil {
				comm += m.InvBandwidth * commWords(id, int(s))
			}
			arrivals[s] = append(arrivals[s], arrival{finish: finish, proc: bestP, comm: comm})
			pending[s]--
			if procOf[id] != procOf[s] {
				res.CommEvents++
			}
		}
	}
	return res, nil
}

// planAssign runs the same deterministic HLF placement as
// SimulateGlobal and returns the per-processor task sequences.
func planAssign(g *taskgraph.Graph, cm *taskgraph.CostModel, m Machine, commWords func(from, to int) float64) ([][]int, error) {
	nt := g.NumTasks()
	taskTime := m.taskSeconds(cm.TaskFlops)
	prio, err := g.BottomLevels(taskTime)
	if err != nil {
		return nil, err
	}
	indeg := g.InDegrees()
	type arrival struct {
		finish float64
		proc   int
		comm   float64
	}
	arrivals := make([][]arrival, nt)
	procFree := make([]float64, m.Procs)
	seq := make([][]int, m.Procs)
	ready := priorityQueue{prio: prio}
	for id, d := range indeg {
		if d == 0 {
			heapPush(&ready, id)
		}
	}
	for scheduled := 0; scheduled < nt; scheduled++ {
		if ready.Len() == 0 {
			return nil, fmt.Errorf("sched: no ready task (cycle?)")
		}
		id := heapPopID(&ready)
		bestP, bestStart := 0, 0.0
		for p := 0; p < m.Procs; p++ {
			start := procFree[p]
			for _, a := range arrivals[id] {
				t := a.finish
				if a.proc != p {
					t += a.comm
				}
				if t > start {
					start = t
				}
			}
			if p == 0 || start < bestStart {
				bestP, bestStart = p, start
			}
		}
		finish := bestStart + taskTime[id]
		procFree[bestP] = finish
		seq[bestP] = append(seq[bestP], id)
		for _, s := range g.Succ[id] {
			comm := m.Latency
			if commWords != nil {
				comm += m.InvBandwidth * commWords(id, int(s))
			}
			arrivals[s] = append(arrivals[s], arrival{finish: finish, proc: bestP, comm: comm})
			indeg[s]--
			if indeg[s] == 0 {
				heapPush(&ready, int(s))
			}
		}
	}
	return seq, nil
}
