// Package sched is the run-time layer standing in for the RAPID system
// the paper used: tasks of a dependence graph are statically mapped to
// processors with a 1-D block-column scheme (an entire block column is
// owned by one processor — Section 4), and executed either
//
//   - for real, by a pool of goroutine workers with per-worker priority
//     queues driven by dependence completion, or
//   - deterministically, by a discrete-event machine simulator with a
//     flop-rate and message-latency model of the Origin 2000, used to
//     regenerate the paper's figures reproducibly.
package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// TaskError is the failure of one task during an execution. The
// executors return the first such failure observed by any worker, with
// the task's id and paper notation attached so callers can pinpoint the
// offending block column.
type TaskError struct {
	// ID is the task id in the dependence graph.
	ID int
	// Task is the task in the paper's notation, e.g. "U(3,7)".
	Task string
	// Err is the underlying failure (a returned error, or a converted
	// panic).
	Err error
}

// Error formats the failure with the task attached.
func (e *TaskError) Error() string {
	return fmt.Sprintf("sched: task %d %s: %v", e.ID, e.Task, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// safeRun invokes run(id), converting a panic in the task body into an
// ordinary error so one broken task cannot tear down the process before
// the executor reports which task failed.
func safeRun(run func(id int) error, id int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("task panicked: %v", r)
		}
	}()
	return run(id)
}

// traceKindCol maps a graph task to its trace kind and destination
// block column.
func traceKindCol(t *taskgraph.Task) (trace.Kind, int) {
	if t.Kind == taskgraph.Factor {
		return trace.KindFactor, t.K
	}
	return trace.KindUpdate, t.J
}

// Assignment maps each block column to the processor that owns it.
type Assignment []int

// BlockCyclic distributes n block columns over procs processors
// round-robin — the standard 1-D cyclic mapping.
func BlockCyclic(n, procs int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = i % procs
	}
	return a
}

// BalancedColumns assigns block columns to processors by greedy
// longest-processing-time balancing of the given per-column costs,
// preserving determinism (ties broken by processor index).
func BalancedColumns(colCost []float64, procs int) Assignment {
	n := len(colCost)
	a := make(Assignment, n)
	load := make([]float64, procs)
	// Process columns in descending cost; ties broken by ascending
	// column index so the assignment is deterministic.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		if colCost[a] != colCost[b] {
			return colCost[a] > colCost[b]
		}
		return a < b
	})
	for _, col := range idx {
		best := 0
		for p := 1; p < procs; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		a[col] = best
		load[best] += colCost[col]
	}
	return a
}

// TaskOwners resolves the processor of every task under the 1-D mapping:
// Factor(k) runs on owner(k) and Update(k, j) runs on owner(j), so all
// writers of a block column are serialized on its owner.
func TaskOwners(g *taskgraph.Graph, owner Assignment) []int {
	out := make([]int, g.NumTasks())
	for id, t := range g.Tasks {
		if t.Kind == taskgraph.Factor {
			out[id] = owner[t.K]
		} else {
			out[id] = owner[t.J]
		}
	}
	return out
}

// priorityQueue is a max-heap of task ids by priority, ties by id,
// operated by heapPush/heapPopID (simulate.go). The int-typed helpers
// avoid container/heap's interface boxing, which would allocate on
// every push inside the worker loop.
type priorityQueue struct {
	ids  []int
	prio []float64
}

func (q *priorityQueue) Len() int { return len(q.ids) }
func (q *priorityQueue) Less(i, j int) bool {
	a, b := q.ids[i], q.ids[j]
	if q.prio[a] != q.prio[b] {
		return q.prio[a] > q.prio[b]
	}
	return a < b
}
func (q *priorityQueue) Swap(i, j int) { q.ids[i], q.ids[j] = q.ids[j], q.ids[i] }

// Execute runs every task of g exactly once with the dependence order
// respected, using one goroutine per processor and the 1-D ownership
// mapping. run is called with the task id; it must be safe for
// concurrent invocation on different block columns. prio orders each
// worker's ready queue (nil means bottom levels with unit weights).
//
// The first task failure observed by any worker — a non-nil error from
// run, or a panic in the task body — stops the execution and is
// returned as a *TaskError carrying the task id.
func Execute(g *taskgraph.Graph, owner Assignment, procs int, prio []float64, run func(id int) error) error {
	return ExecuteCancelable(g, owner, procs, prio, nil, nil, run)
}

// ExecuteTraced is Execute with an optional event recorder: when rec is
// non-nil, every task execution is recorded with its worker id, kind,
// destination column and start/stop timestamps. A nil rec costs one
// predictable branch per task.
func ExecuteTraced(g *taskgraph.Graph, owner Assignment, procs int, prio []float64, rec *trace.Recorder, run func(id int) error) error {
	return ExecuteCancelable(g, owner, procs, prio, rec, nil, run)
}

// ExecuteCancelable is ExecuteTraced with an optional external cancel
// signal: when the Canceler trips (a caller-side deadline, a failure in
// a sibling execution), workers stop claiming new tasks — the check is
// one atomic load per task claim — and the call returns a *CancelError
// matching errors.Is(err, ErrCanceled). The first task failure also
// trips the canceler, so failure latency is O(one running task body)
// instead of O(the remaining DAG). A nil cancel behaves like Execute.
func ExecuteCancelable(g *taskgraph.Graph, owner Assignment, procs int, prio []float64, rec *trace.Recorder, cancel *Canceler, run func(id int) error) error {
	if procs < 1 {
		return fmt.Errorf("sched: procs = %d", procs)
	}
	if rec != nil && rec.Workers() < procs {
		return fmt.Errorf("sched: recorder has %d worker buffers for %d workers", rec.Workers(), procs)
	}
	if prio == nil {
		var err error
		prio, err = g.BottomLevels(nil)
		if err != nil {
			return err
		}
	}
	taskOwner := TaskOwners(g, owner)
	// Per-owner queue capacities are known up front; preallocating them
	// keeps the worker loop's heapPush calls allocation-free.
	count := make([]int, procs)
	for _, p := range taskOwner {
		count[p]++
	}
	queues := make([]priorityQueue, procs)
	for p := range queues {
		queues[p].prio = prio
		queues[p].ids = make([]int, 0, count[p])
	}
	return executeWorkers(g, procs, rec, cancel,
		func(p int) *priorityQueue { return &queues[p] },
		func(id int) *priorityQueue { return &queues[taskOwner[id]] },
		run)
}

// executeWorkers is the worker engine shared by the owner-mapped and
// task-level executors: the two differ only in which ready queue a
// worker pops (workerQueue) and which queue a newly ready task joins
// (queueFor) — per-worker queues under the 1-D mapping, one shared
// queue for task-level scheduling. Both queue funcs are called with the
// engine mutex held.
//
// The engine always runs with a Canceler (allocating a private one when
// the caller passed nil) so the claim loop is branch-free about it: one
// atomic flag load per task claim, tripped by the first task error or
// by an external Cancel, bounds failure latency to the task bodies
// already running.
func executeWorkers(g *taskgraph.Graph, procs int, rec *trace.Recorder, cancel *Canceler,
	workerQueue func(p int) *priorityQueue, queueFor func(id int) *priorityQueue, run func(id int) error) error {
	indeg := g.InDegrees()

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	remaining := g.NumTasks()
	completed := 0
	var firstErr *TaskError

	if cancel == nil {
		cancel = &Canceler{}
	}
	// Wake workers sleeping on the condition variable when an external
	// Cancel trips the flag; deregistered before returning so a later
	// deadline firing cannot touch a finished execution.
	defer cancel.subscribe(func() {
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
	})()

	mu.Lock()
	for id, d := range indeg {
		if d == 0 {
			heapPush(queueFor(id), id)
		}
	}
	mu.Unlock()

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			q := workerQueue(p)
			for {
				mu.Lock()
				for q.Len() == 0 && remaining > 0 && firstErr == nil && !cancel.flag.Load() {
					cond.Wait()
				}
				if remaining == 0 || firstErr != nil || cancel.flag.Load() {
					mu.Unlock()
					return
				}
				id := heapPopID(q)
				mu.Unlock()

				var err error
				if rec != nil {
					start := rec.Now()
					err = safeRun(run, id)
					kind, col := traceKindCol(&g.Tasks[id])
					rec.Record(p, id, kind, col, start)
					if err != nil {
						rec.Record(p, id, trace.KindAbort, col, rec.Now())
					}
				} else {
					err = safeRun(run, id)
				}

				if err != nil {
					te := &TaskError{ID: id, Task: g.Tasks[id].String(), Err: err}
					mu.Lock()
					if firstErr == nil {
						firstErr = te
					}
					cond.Broadcast()
					mu.Unlock()
					// Trip the flag outside the engine mutex (Cancel runs
					// subscriber callbacks, which re-take it).
					cancel.Cancel(te)
					return
				}
				mu.Lock()
				if firstErr != nil || cancel.flag.Load() {
					mu.Unlock()
					return
				}
				remaining--
				completed++
				for _, s := range g.Succ[id] {
					indeg[s]--
					if indeg[s] == 0 {
						heapPush(queueFor(int(s)), int(s))
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if remaining > 0 {
		return &CancelError{Cause: cancel.Cause(), Completed: completed, Total: g.NumTasks()}
	}
	return nil
}
