// Package sched is the run-time layer standing in for the RAPID system
// the paper used: tasks of a dependence graph are statically mapped to
// processors with a 1-D block-column scheme (an entire block column is
// owned by one processor — Section 4), and executed either
//
//   - for real, by an asynchronous data-flow engine (async.go): atomic
//     per-task dependence counters, per-worker Chase–Lev work-stealing
//     deques and a counter-based termination detector instead of level
//     barriers, with the 1-D ownership (or a global priority order)
//     deciding only the initial placement of ready tasks, or
//   - deterministically, by a discrete-event machine simulator with a
//     flop-rate and message-latency model of the Origin 2000, used to
//     regenerate the paper's figures reproducibly.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// TaskError is the failure of one task during an execution. The
// executors return the first such failure observed by any worker, with
// the task's id and paper notation attached so callers can pinpoint the
// offending block column.
type TaskError struct {
	// ID is the task id in the dependence graph.
	ID int
	// Task is the task in the paper's notation, e.g. "U(3,7)".
	Task string
	// Err is the underlying failure (a returned error, or a converted
	// panic).
	Err error
}

// Error formats the failure with the task attached.
func (e *TaskError) Error() string {
	return fmt.Sprintf("sched: task %d %s: %v", e.ID, e.Task, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// safeRun invokes run(id), converting a panic in the task body into an
// ordinary error so one broken task cannot tear down the process before
// the executor reports which task failed.
func safeRun(run func(id int) error, id int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("task panicked: %v", r)
		}
	}()
	return run(id)
}

// traceKindCol maps a graph task to its trace kind and destination
// block column.
func traceKindCol(t *taskgraph.Task) (trace.Kind, int) {
	if t.Kind == taskgraph.Factor {
		return trace.KindFactor, t.K
	}
	return trace.KindUpdate, t.J
}

// Assignment maps each block column to the processor that owns it.
type Assignment []int

// BlockCyclic distributes n block columns over procs processors
// round-robin — the standard 1-D cyclic mapping.
func BlockCyclic(n, procs int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = i % procs
	}
	return a
}

// BalancedColumns assigns block columns to processors by greedy
// longest-processing-time balancing of the given per-column costs,
// preserving determinism (ties broken by processor index).
func BalancedColumns(colCost []float64, procs int) Assignment {
	n := len(colCost)
	a := make(Assignment, n)
	load := make([]float64, procs)
	// Process columns in descending cost; ties broken by ascending
	// column index so the assignment is deterministic.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		if colCost[a] != colCost[b] {
			return colCost[a] > colCost[b]
		}
		return a < b
	})
	for _, col := range idx {
		best := 0
		for p := 1; p < procs; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		a[col] = best
		load[best] += colCost[col]
	}
	return a
}

// TaskOwners resolves the processor of every task under the 1-D mapping:
// Factor(k) runs on owner(k) and Update(k, j) runs on owner(j), so all
// writers of a block column are serialized on its owner.
func TaskOwners(g *taskgraph.Graph, owner Assignment) []int {
	out := make([]int, g.NumTasks())
	for id, t := range g.Tasks {
		if t.Kind == taskgraph.Factor {
			out[id] = owner[t.K]
		} else {
			out[id] = owner[t.J]
		}
	}
	return out
}

// priorityQueue is a max-heap of task ids by priority, ties by id,
// operated by heapPush/heapPopID (simulate.go). The int-typed helpers
// avoid container/heap's interface boxing, which would allocate on
// every push inside the worker loop.
type priorityQueue struct {
	ids  []int
	prio []float64
}

func (q *priorityQueue) Len() int { return len(q.ids) }
func (q *priorityQueue) Less(i, j int) bool {
	a, b := q.ids[i], q.ids[j]
	if q.prio[a] != q.prio[b] {
		return q.prio[a] > q.prio[b]
	}
	return a < b
}
func (q *priorityQueue) Swap(i, j int) { q.ids[i], q.ids[j] = q.ids[j], q.ids[i] }

// Execute runs every task of g exactly once with the dependence order
// respected, using one goroutine per processor. The 1-D ownership
// mapping decides where ready tasks are seeded; once running, idle
// workers steal from busy ones, so ownership is an affinity hint, not
// mutual exclusion — two tasks of one block column may run
// concurrently when the dependence graph leaves them unordered, which
// is bitwise-safe because such tasks write disjoint rows (the branch
// property; the orderings that matter are dependence edges). run is
// called with the task id; it must be safe for concurrent invocation
// on tasks the graph leaves unordered. prio orders each worker's
// initial claims (nil means bottom levels with unit weights).
//
// The first task failure observed by any worker — a non-nil error from
// run, or a panic in the task body — stops the execution and is
// returned as a *TaskError carrying the task id.
func Execute(g *taskgraph.Graph, owner Assignment, procs int, prio []float64, run func(id int) error) error {
	return ExecuteCancelable(g, owner, procs, prio, nil, nil, run)
}

// ExecuteTraced is Execute with an optional event recorder: when rec is
// non-nil, every task execution is recorded with its worker id, kind,
// destination column and start/stop timestamps. A nil rec costs one
// predictable branch per task.
func ExecuteTraced(g *taskgraph.Graph, owner Assignment, procs int, prio []float64, rec *trace.Recorder, run func(id int) error) error {
	return ExecuteCancelable(g, owner, procs, prio, rec, nil, run)
}

// ExecuteCancelable is ExecuteTraced with an optional external cancel
// signal: when the Canceler trips (a caller-side deadline, a failure in
// a sibling execution), workers stop claiming new tasks — the check is
// one atomic load per task claim — and the call returns a *CancelError
// matching errors.Is(err, ErrCanceled). The first task failure also
// trips the canceler, so failure latency is O(one running task body)
// instead of O(the remaining DAG). A nil cancel behaves like Execute.
func ExecuteCancelable(g *taskgraph.Graph, owner Assignment, procs int, prio []float64, rec *trace.Recorder, cancel *Canceler, run func(id int) error) error {
	if procs < 1 {
		return fmt.Errorf("sched: procs = %d", procs)
	}
	if rec != nil && rec.Workers() < procs {
		return fmt.Errorf("sched: recorder has %d worker buffers for %d workers", rec.Workers(), procs)
	}
	if prio == nil {
		var err error
		prio, err = g.BottomLevels(nil)
		if err != nil {
			return err
		}
	}
	return executeAsync(g, procs, rec, cancel, TaskOwners(g, owner), prio, run)
}
