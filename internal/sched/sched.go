// Package sched is the run-time layer standing in for the RAPID system
// the paper used: tasks of a dependence graph are statically mapped to
// processors with a 1-D block-column scheme (an entire block column is
// owned by one processor — Section 4), and executed either
//
//   - for real, by a pool of goroutine workers with per-worker priority
//     queues driven by dependence completion, or
//   - deterministically, by a discrete-event machine simulator with a
//     flop-rate and message-latency model of the Origin 2000, used to
//     regenerate the paper's figures reproducibly.
package sched

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// TaskError is the failure of one task during an execution. The
// executors return the first such failure observed by any worker, with
// the task's id and paper notation attached so callers can pinpoint the
// offending block column.
type TaskError struct {
	// ID is the task id in the dependence graph.
	ID int
	// Task is the task in the paper's notation, e.g. "U(3,7)".
	Task string
	// Err is the underlying failure (a returned error, or a converted
	// panic).
	Err error
}

// Error formats the failure with the task attached.
func (e *TaskError) Error() string {
	return fmt.Sprintf("sched: task %d %s: %v", e.ID, e.Task, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// safeRun invokes run(id), converting a panic in the task body into an
// ordinary error so one broken task cannot tear down the process before
// the executor reports which task failed.
func safeRun(run func(id int) error, id int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("task panicked: %v", r)
		}
	}()
	return run(id)
}

// traceKindCol maps a graph task to its trace kind and destination
// block column.
func traceKindCol(t *taskgraph.Task) (trace.Kind, int) {
	if t.Kind == taskgraph.Factor {
		return trace.KindFactor, t.K
	}
	return trace.KindUpdate, t.J
}

// Assignment maps each block column to the processor that owns it.
type Assignment []int

// BlockCyclic distributes n block columns over procs processors
// round-robin — the standard 1-D cyclic mapping.
func BlockCyclic(n, procs int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = i % procs
	}
	return a
}

// BalancedColumns assigns block columns to processors by greedy
// longest-processing-time balancing of the given per-column costs,
// preserving determinism (ties broken by processor index).
func BalancedColumns(colCost []float64, procs int) Assignment {
	n := len(colCost)
	a := make(Assignment, n)
	load := make([]float64, procs)
	// Process columns in descending cost; ties broken by ascending
	// column index so the assignment is deterministic.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		if colCost[a] != colCost[b] {
			return colCost[a] > colCost[b]
		}
		return a < b
	})
	for _, col := range idx {
		best := 0
		for p := 1; p < procs; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		a[col] = best
		load[best] += colCost[col]
	}
	return a
}

// TaskOwners resolves the processor of every task under the 1-D mapping:
// Factor(k) runs on owner(k) and Update(k, j) runs on owner(j), so all
// writers of a block column are serialized on its owner.
func TaskOwners(g *taskgraph.Graph, owner Assignment) []int {
	out := make([]int, g.NumTasks())
	for id, t := range g.Tasks {
		if t.Kind == taskgraph.Factor {
			out[id] = owner[t.K]
		} else {
			out[id] = owner[t.J]
		}
	}
	return out
}

// priorityQueue is a max-heap of task ids by priority, ties by id.
type priorityQueue struct {
	ids  []int
	prio []float64
}

func (q *priorityQueue) Len() int { return len(q.ids) }
func (q *priorityQueue) Less(i, j int) bool {
	a, b := q.ids[i], q.ids[j]
	if q.prio[a] != q.prio[b] {
		return q.prio[a] > q.prio[b]
	}
	return a < b
}
func (q *priorityQueue) Swap(i, j int) { q.ids[i], q.ids[j] = q.ids[j], q.ids[i] }
func (q *priorityQueue) Push(x any)    { q.ids = append(q.ids, x.(int)) }
func (q *priorityQueue) Pop() any {
	old := q.ids
	n := len(old)
	x := old[n-1]
	q.ids = old[:n-1]
	return x
}

// Execute runs every task of g exactly once with the dependence order
// respected, using one goroutine per processor and the 1-D ownership
// mapping. run is called with the task id; it must be safe for
// concurrent invocation on different block columns. prio orders each
// worker's ready queue (nil means bottom levels with unit weights).
//
// The first task failure observed by any worker — a non-nil error from
// run, or a panic in the task body — stops the execution and is
// returned as a *TaskError carrying the task id.
func Execute(g *taskgraph.Graph, owner Assignment, procs int, prio []float64, run func(id int) error) error {
	return ExecuteTraced(g, owner, procs, prio, nil, run)
}

// ExecuteTraced is Execute with an optional event recorder: when rec is
// non-nil, every task execution is recorded with its worker id, kind,
// destination column and start/stop timestamps. A nil rec costs one
// predictable branch per task.
func ExecuteTraced(g *taskgraph.Graph, owner Assignment, procs int, prio []float64, rec *trace.Recorder, run func(id int) error) error {
	if procs < 1 {
		return fmt.Errorf("sched: procs = %d", procs)
	}
	if rec != nil && rec.Workers() < procs {
		return fmt.Errorf("sched: recorder has %d worker buffers for %d workers", rec.Workers(), procs)
	}
	if prio == nil {
		var err error
		prio, err = g.BottomLevels(nil)
		if err != nil {
			return err
		}
	}
	taskOwner := TaskOwners(g, owner)
	indeg := g.InDegrees()

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	queues := make([]priorityQueue, procs)
	for p := range queues {
		queues[p].prio = prio
	}
	remaining := g.NumTasks()
	var firstErr *TaskError

	mu.Lock()
	for id, d := range indeg {
		if d == 0 {
			q := &queues[taskOwner[id]]
			heap.Push(q, id)
		}
	}
	mu.Unlock()

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				mu.Lock()
				for queues[p].Len() == 0 && remaining > 0 && firstErr == nil {
					cond.Wait()
				}
				if remaining == 0 || firstErr != nil {
					mu.Unlock()
					return
				}
				id := heap.Pop(&queues[p]).(int)
				mu.Unlock()

				var err error
				if rec != nil {
					start := rec.Now()
					err = safeRun(run, id)
					kind, col := traceKindCol(&g.Tasks[id])
					rec.Record(p, id, kind, col, start)
				} else {
					err = safeRun(run, id)
				}

				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = &TaskError{ID: id, Task: g.Tasks[id].String(), Err: err}
					}
					cond.Broadcast()
					mu.Unlock()
					return
				}
				if firstErr != nil {
					mu.Unlock()
					return
				}
				remaining--
				for _, s := range g.Succ[id] {
					indeg[s]--
					if indeg[s] == 0 {
						heap.Push(&queues[taskOwner[s]], int(s))
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return nil
}
