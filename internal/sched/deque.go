package sched

import "sync/atomic"

// deque is a Chase–Lev work-stealing deque of task ids, specialized for
// the asynchronous executor:
//
//   - the owning worker pushes and pops at the bottom (LIFO, so a
//     freshly released successor — whose panel data is still hot in the
//     owner's cache — runs next);
//   - thieves steal from the top (FIFO, so they take the oldest task,
//     the one the owner is furthest from reaching);
//   - the buffer is sized once, at setup, to hold every task of the
//     graph, so pushes never grow it and the worker loop stays
//     allocation-free. A deque can never hold more than the graph's
//     task count (each task enters exactly one deque exactly once), so
//     the capacity bound is not a heuristic.
//
// Every slot is an atomic.Int32 and top/bottom are atomic.Int64, which
// makes the classic benign slot race of the original formulation (a
// thief reading a slot the owner is about to reuse, resolved by the CAS
// on top) a properly synchronized access — the engine runs clean under
// the Go race detector without weakening the algorithm. Go's
// sync/atomic operations are sequentially consistent, strictly stronger
// than the acquire/release fences the weak-memory formulation needs.
type deque struct {
	top    atomic.Int64 // next index to steal from (thieves CAS this)
	bottom atomic.Int64 // next index to push at (owner-only writes)
	mask   int64        // len(slots) - 1; len is a power of two
	slots  []atomic.Int32
	// Padding keeps neighbouring deques of the engine's []deque on
	// separate cache lines so a thief hammering one worker's top does
	// not invalidate another worker's bottom.
	_ [64]byte
}

// init sizes the deque for at most n queued tasks.
func (d *deque) init(n int) {
	capacity := int64(1)
	for capacity < int64(n)+1 {
		capacity <<= 1
	}
	d.mask = capacity - 1
	d.slots = make([]atomic.Int32, capacity)
}

// push appends id at the bottom. Owner-only. The capacity check cannot
// fire when the deque was sized for the whole graph; it guards against
// a miscounted setup corrupting the top slot silently.
func (d *deque) push(id int32) {
	b := d.bottom.Load()
	t := d.top.Load()
	if b-t > d.mask {
		panic("sched: work deque overflow")
	}
	d.slots[b&d.mask].Store(id)
	d.bottom.Store(b + 1)
}

// pop removes and returns the bottom-most id, or -1 when the deque is
// empty or a thief won the race for the last element. Owner-only.
func (d *deque) pop() int32 {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: undo the reservation.
		d.bottom.Store(b + 1)
		return -1
	}
	id := d.slots[b&d.mask].Load()
	if t == b {
		// Last element: race the thieves for it via top.
		if !d.top.CompareAndSwap(t, t+1) {
			id = -1 // a thief got there first
		}
		d.bottom.Store(b + 1)
	}
	return id
}

// steal takes the top-most id from another worker's deque. It returns
// (id, true) on success, (-1, false) when the deque was observed empty,
// and (-1, true) when it lost a race and retrying may still find work.
func (d *deque) steal() (int32, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return -1, false
	}
	id := d.slots[t&d.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return -1, true
	}
	return id, true
}

// size reports a racy estimate of the queued task count; only the
// parking protocol uses it, re-checked under the engine lock.
func (d *deque) size() int64 {
	b := d.bottom.Load()
	t := d.top.Load()
	if b <= t {
		return 0
	}
	return b - t
}
