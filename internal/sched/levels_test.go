package sched

import (
	"sync/atomic"
	"testing"
)

// testLevels is a 3-level schedule over 10 tasks:
// level 0 = {0..3}, level 1 = {4..6}, level 2 = {7..9}.
func testLevels() *Levels {
	return NewLevels(
		[]int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		[]int32{0, 4, 7, 10},
	)
}

// TestExecuteLevelsRunsEachTaskOnce checks the basic contract at a
// range of worker counts, including counts above the task count.
func TestExecuteLevelsRunsEachTaskOnce(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8, 64} {
		lv := testLevels()
		var ran [10]int32
		ExecuteLevels(lv, procs, func(worker, task int) {
			atomic.AddInt32(&ran[task], 1)
		})
		for id, c := range ran {
			if c != 1 {
				t.Fatalf("procs=%d: task %d ran %d times", procs, id, c)
			}
		}
	}
}

// TestExecuteLevelsBarrier checks the level barrier: when a task of
// level l starts, every task of the levels before l has finished. The
// assertion rides on an atomic done counter — at the start of any task
// of level l, done must already cover Off[l] tasks.
func TestExecuteLevelsBarrier(t *testing.T) {
	lv := testLevels()
	lvlOf := make([]int, lv.NumTasks())
	for l := 0; l < lv.NumLevels(); l++ {
		for i := lv.Off[l]; i < lv.Off[l+1]; i++ {
			lvlOf[lv.Order[i]] = l
		}
	}
	for _, procs := range []int{2, 4, 8} {
		var done atomic.Int32
		var bad atomic.Int32
		ExecuteLevels(lv, procs, func(worker, task int) {
			if done.Load() < lv.Off[lvlOf[task]] {
				bad.Add(1)
			}
			done.Add(1)
		})
		if bad.Load() != 0 {
			t.Fatalf("procs=%d: %d tasks started before their prior levels completed", procs, bad.Load())
		}
		done.Store(0)
	}
}

func TestExecuteLevelsEmpty(t *testing.T) {
	lv := NewLevels(nil, []int32{0})
	ExecuteLevels(lv, 4, func(worker, task int) {
		t.Fatal("task ran on an empty schedule")
	})
	if lv.NumTasks() != 0 || lv.NumLevels() != 0 {
		t.Fatalf("empty schedule reports %d tasks, %d levels", lv.NumTasks(), lv.NumLevels())
	}
}

// TestReversed checks the reverse schedule: same level sets in the
// opposite order, tasks within a level preserved, and double reversal
// restores the original.
func TestReversed(t *testing.T) {
	lv := testLevels()
	rv := lv.Reversed()
	if rv.NumTasks() != lv.NumTasks() || rv.NumLevels() != lv.NumLevels() {
		t.Fatalf("Reversed changed the shape: %d/%d tasks, %d/%d levels",
			rv.NumTasks(), lv.NumTasks(), rv.NumLevels(), lv.NumLevels())
	}
	// Level l of rv must hold the same task set as level L-1-l of lv.
	L := lv.NumLevels()
	for l := 0; l < L; l++ {
		want := map[int32]bool{}
		for i := lv.Off[L-1-l]; i < lv.Off[L-l]; i++ {
			want[lv.Order[i]] = true
		}
		if int(rv.Off[l+1]-rv.Off[l]) != len(want) {
			t.Fatalf("reversed level %d has %d tasks, want %d", l, rv.Off[l+1]-rv.Off[l], len(want))
		}
		for i := rv.Off[l]; i < rv.Off[l+1]; i++ {
			if !want[rv.Order[i]] {
				t.Fatalf("reversed level %d holds task %d, not in original level %d", l, rv.Order[i], L-1-l)
			}
		}
	}
	rr := rv.Reversed()
	for i := range lv.Order {
		if rr.Order[i] != lv.Order[i] {
			t.Fatalf("double reversal changed the order at %d: %d vs %d", i, rr.Order[i], lv.Order[i])
		}
	}
	for i := range lv.Off {
		if rr.Off[i] != lv.Off[i] {
			t.Fatalf("double reversal changed Off at %d", i)
		}
	}
}
