package sched

import (
	"sync"
	"sync/atomic"
)

// Levels is a precomputed level-set schedule of a dependence DAG:
// Order lists the task ids level-major and Off bounds the levels, so
// level l is Order[Off[l]:Off[l+1]]. The contract is the one
// internal/taskgraph.LevelSets produces: tasks within one level are
// mutually independent and every edge of the DAG points from an
// earlier level to a later one. The triangular-solve engine of
// internal/core builds one Levels per sweep at analysis time and
// replays it on every solve.
type Levels struct {
	Order []int32
	Off   []int32
}

// NewLevels wraps an (order, offsets) pair as a schedule.
func NewLevels(order, off []int32) *Levels {
	return &Levels{Order: order, Off: off}
}

// NumTasks returns the number of scheduled tasks.
func (lv *Levels) NumTasks() int { return len(lv.Order) }

// NumLevels returns the number of levels.
func (lv *Levels) NumLevels() int {
	if len(lv.Off) == 0 {
		return 0
	}
	return len(lv.Off) - 1
}

// Reversed returns a valid schedule of the edge-reversed DAG: the same
// level sets executed in the opposite order. Every edge u→v of the
// original DAG crosses from an earlier to a later level, so after
// reversing both the edges and the level order, v's level again comes
// before u's; within-level independence is direction-free. The
// transpose triangular sweeps run on the reversed schedules of the
// forward/backward ones.
func (lv *Levels) Reversed() *Levels {
	nl := lv.NumLevels()
	order := make([]int32, 0, len(lv.Order))
	off := make([]int32, 1, nl+1)
	for l := nl - 1; l >= 0; l-- {
		order = append(order, lv.Order[lv.Off[l]:lv.Off[l+1]]...)
		off = append(off, int32(len(order)))
	}
	return &Levels{Order: order, Off: off}
}

// ExecuteLevels runs every task of the schedule on procs workers.
// Within a level the tasks are dealt to workers by a fixed stride
// (worker p runs Order[Off[l]+p], Order[Off[l]+p+procs], …) and a
// barrier separates consecutive levels, so only true level-to-level
// dependences serialize and the task-to-worker assignment is
// deterministic. procs ≤ 1 (or a schedule smaller than procs shrinks
// the worker count accordingly) runs inline on the calling goroutine.
//
// Unlike ExecuteCancelable there is no error or cancellation path:
// the triangular solves this executor carries have none (singularity
// is decided at factorization time, non-finite values propagate
// deterministically), which keeps the per-level barrier free of the
// cancellation machinery and the hot loop free of atomics.
func ExecuteLevels(lv *Levels, procs int, run func(worker, task int)) {
	if procs > lv.NumTasks() {
		procs = lv.NumTasks()
	}
	if procs <= 1 {
		for _, id := range lv.Order {
			run(0, int(id))
		}
		return
	}
	nl := lv.NumLevels()
	bar := newLevelBarrier(procs)
	var wg sync.WaitGroup
	wg.Add(procs)
	for p := 0; p < procs; p++ {
		go func(p int) {
			defer wg.Done()
			for l := 0; l < nl; l++ {
				lo, hi := int(lv.Off[l]), int(lv.Off[l+1])
				for i := lo + p; i < hi; i += procs {
					run(p, int(lv.Order[i]))
				}
				bar.await()
			}
		}(p)
	}
	wg.Wait()
}

// ExecuteLevelsCancelable is ExecuteLevels under the executors'
// cancellation contract: every worker polls the canceler once per task
// claim (a single atomic load, exactly like the numeric engine), and
// once it trips no further task bodies run — the level barriers still
// complete, so the workers drain cleanly instead of deadlocking a
// partially arrived barrier. It returns nil when every task ran and a
// *CancelError carrying the cancellation cause and the completed-task
// count otherwise. A nil canceler delegates to ExecuteLevels and can
// never fail, so the uncancelled hot path stays free of atomics.
//
// The triangular solves run on this executor when a deadline or an
// external canceler bounds the solve phase; a canceled sweep leaves
// the right-hand-side panel in an unspecified partial state, which is
// why the solves only ever cancel work on pooled scratch, never on
// caller-visible results.
func ExecuteLevelsCancelable(lv *Levels, procs int, cancel *Canceler, run func(worker, task int)) error {
	if cancel == nil {
		ExecuteLevels(lv, procs, run)
		return nil
	}
	if procs > lv.NumTasks() {
		procs = lv.NumTasks()
	}
	var completed atomic.Int64
	if procs <= 1 {
		for _, id := range lv.Order {
			if cancel.Canceled() {
				break
			}
			run(0, int(id))
			completed.Add(1)
		}
	} else {
		nl := lv.NumLevels()
		bar := newLevelBarrier(procs)
		var wg sync.WaitGroup
		wg.Add(procs)
		for p := 0; p < procs; p++ {
			go func(p int) {
				defer wg.Done()
				for l := 0; l < nl; l++ {
					lo, hi := int(lv.Off[l]), int(lv.Off[l+1])
					for i := lo + p; i < hi; i += procs {
						if cancel.Canceled() {
							break
						}
						run(p, int(lv.Order[i]))
						completed.Add(1)
					}
					bar.await()
				}
			}(p)
		}
		wg.Wait()
	}
	// A canceler that trips after the last task body finished has
	// nothing left to cancel: the sweep is complete and its result is
	// valid, so the race between a deadline timer and the final task is
	// resolved in favor of the finished work.
	if done := int(completed.Load()); done < lv.NumTasks() && cancel.Canceled() {
		return &CancelError{
			Cause:     cancel.Cause(),
			Completed: done,
			Total:     lv.NumTasks(),
		}
	}
	return nil
}

// levelBarrier is a reusable generation-counted barrier: the last of
// the parties to arrive advances the generation and wakes the rest. A
// blocking (cond-based) barrier is deliberate — the solve levels are
// often far wider than the worker count, so a worker that finishes a
// level early should yield the core to the stragglers rather than
// spin on it.
type levelBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     int
}

func newLevelBarrier(parties int) *levelBarrier {
	b := &levelBarrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all parties have called await for the current
// generation.
func (b *levelBarrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
