package sched_test

// Cross-checks between the discrete-event simulator and the realized
// traces of real executions (ISSUE 2, satellite 4): under unit task
// costs the two must tell the same story. On one processor both reduce
// to "one task per time unit", so the agreement is exact; on several
// processors the realized schedule is one of the feasible list
// schedules, so it is pinned between the dependence-graph lower bounds
// and the serial upper bound.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/sched"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// factorTraced runs the traced global executor on one generated matrix
// and returns the task graph with the merged trace events.
func factorTraced(t *testing.T, spec matgen.Spec, workers int) (*taskgraph.Graph, []trace.Event) {
	t.Helper()
	a := spec.Gen()
	opts := core.DefaultOptions()
	opts.Workers = workers
	rec := trace.New(workers)
	opts.Trace = rec
	s, err := core.Analyze(a, opts)
	if err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	if _, err := core.FactorizeGlobal(s, a); err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	return s.Graph, rec.Events()
}

func unitCosts(n int) *taskgraph.CostModel {
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	return &taskgraph.CostModel{TaskFlops: ones}
}

// TestTraceSerialMakespanMatchesSimulator: on one processor with unit
// costs, the simulator's predicted makespan and the realized trace's
// unit-cost replay must agree exactly — both are simply the task count.
func TestTraceSerialMakespanMatchesSimulator(t *testing.T) {
	for _, spec := range matgen.SmallSuite()[:3] {
		g, events := factorTraced(t, spec, 1)
		seqs := trace.WorkerSequences(events, 1)
		realized, err := trace.UnitMakespan(seqs, g.Succ)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		res, err := sched.SimulateGlobal(g, unitCosts(g.NumTasks()), sched.Machine{Procs: 1, FlopRate: 1}, nil)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if float64(realized) != res.Makespan {
			t.Fatalf("%s: realized unit makespan %d, simulated %g", spec.Name, realized, res.Makespan)
		}
		if realized != g.NumTasks() {
			t.Fatalf("%s: serial unit makespan %d, want task count %d", spec.Name, realized, g.NumTasks())
		}
	}
}

// TestTraceParallelMakespanWithinSimulatorBounds: on several workers the
// realized schedule must respect the same unit-cost bounds the
// simulator's schedules do — at least the dependence critical path, at
// least the work bound ⌈tasks/P⌉, at most the serial makespan.
func TestTraceParallelMakespanWithinSimulatorBounds(t *testing.T) {
	spec := matgen.SmallSuite()[0]
	for _, p := range []int{2, 4, 8} {
		g, events := factorTraced(t, spec, p)
		seqs := trace.WorkerSequences(events, p)
		realized, err := trace.UnitMakespan(seqs, g.Succ)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		nt := g.NumTasks()
		cp, _, err := g.CriticalPath(nil)
		if err != nil {
			t.Fatal(err)
		}
		workBound := (nt + p - 1) / p
		if float64(realized) < cp {
			t.Fatalf("P=%d: realized %d below the critical path %g", p, realized, cp)
		}
		if realized < workBound {
			t.Fatalf("P=%d: realized %d below the work bound %d", p, realized, workBound)
		}
		if realized > nt {
			t.Fatalf("P=%d: realized %d above the serial bound %d", p, realized, nt)
		}
	}
}

// TestTraceRecordsOnePairPerTask: tracing a multi-worker run must
// record exactly one start/stop pair per task, with sane timestamps and
// worker ids. Run under -race this also exercises the lock-free
// recorder for data races against the executor.
func TestTraceRecordsOnePairPerTask(t *testing.T) {
	spec := matgen.SmallSuite()[0]
	for _, p := range []int{2, 4, 8} {
		g, events := factorTraced(t, spec, p)
		if len(events) != g.NumTasks() {
			t.Fatalf("P=%d: %d events for %d tasks", p, len(events), g.NumTasks())
		}
		seen := make([]int, g.NumTasks())
		for _, e := range events {
			if e.Task < 0 || int(e.Task) >= g.NumTasks() {
				t.Fatalf("P=%d: event for unknown task %d", p, e.Task)
			}
			seen[e.Task]++
			if e.End < e.Start {
				t.Fatalf("P=%d: task %d stops before it starts", p, e.Task)
			}
			if e.Worker < 0 || int(e.Worker) >= p {
				t.Fatalf("P=%d: task %d on worker %d", p, e.Task, e.Worker)
			}
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("P=%d: task %d recorded %d times", p, id, n)
			}
		}
	}
}
