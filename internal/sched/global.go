package sched

import (
	"fmt"

	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// The paper's runtime (RAPID on the Origin 2000, a cache-coherent shared
// memory machine) schedules *tasks*, not block columns: updates of the
// same destination column coming from independent subtrees write
// disjoint row sets (the branch property of the static structure,
// Section 4 / Gilbert), so they may run concurrently on different
// processors. This file provides the task-level counterparts of the
// owner-mapped executor and simulator. They are what exposes the
// parallelism the eforest-guided dependence graph adds over S*.

// ExecuteGlobal runs every task of g exactly once with dependences
// respected, using procs workers under task-level scheduling: the
// initially ready tasks are dealt round-robin over the workers in
// descending priority order, and from then on the data-flow engine's
// work-stealing balances the load. Concurrent tasks may target the
// same block column; that is safe for both dependence-graph variants
// because unordered tasks touch disjoint rows.
//
// The first task failure observed by any worker — a non-nil error from
// run, or a panic in the task body — stops the execution and is
// returned as a *TaskError carrying the task id.
func ExecuteGlobal(g *taskgraph.Graph, procs int, prio []float64, run func(id int) error) error {
	return ExecuteGlobalCancelable(g, procs, prio, nil, nil, run)
}

// ExecuteGlobalTraced is ExecuteGlobal with an optional event recorder:
// when rec is non-nil, every task execution is recorded with its worker
// id, kind, destination column and start/stop timestamps. A nil rec
// costs one predictable branch per task.
func ExecuteGlobalTraced(g *taskgraph.Graph, procs int, prio []float64, rec *trace.Recorder, run func(id int) error) error {
	return ExecuteGlobalCancelable(g, procs, prio, rec, nil, run)
}

// ExecuteGlobalCancelable is ExecuteGlobalTraced with an optional
// external cancel signal, with the same contract as ExecuteCancelable:
// a tripped Canceler stops workers from claiming tasks (one atomic load
// per claim) and the call returns a *CancelError; the first task failure
// trips the canceler itself. A nil cancel behaves like ExecuteGlobal.
func ExecuteGlobalCancelable(g *taskgraph.Graph, procs int, prio []float64, rec *trace.Recorder, cancel *Canceler, run func(id int) error) error {
	if procs < 1 {
		return fmt.Errorf("sched: procs = %d", procs)
	}
	if rec != nil && rec.Workers() < procs {
		return fmt.Errorf("sched: recorder has %d worker buffers for %d workers", rec.Workers(), procs)
	}
	if prio == nil {
		var err error
		prio, err = g.BottomLevels(nil)
		if err != nil {
			return err
		}
	}
	return executeAsync(g, procs, rec, cancel, nil, prio, run)
}

// SimulateGlobal performs deterministic task-level list scheduling of
// the graph on the machine: ready tasks are taken in descending
// bottom-level priority and placed on the processor that can start them
// earliest, accounting for a message cost on every dependence edge whose
// endpoints run on different processors (panels live in the memory of
// the processor that produced them on a NUMA machine).
func SimulateGlobal(g *taskgraph.Graph, cm *taskgraph.CostModel, m Machine, commWords func(from, to int) float64) (*SimResult, error) {
	if m.Procs < 1 {
		return nil, fmt.Errorf("sched: machine with %d processors", m.Procs)
	}
	if m.FlopRate <= 0 {
		return nil, fmt.Errorf("sched: non-positive flop rate")
	}
	nt := g.NumTasks()
	taskTime := m.taskSeconds(cm.TaskFlops)
	prio, err := g.BottomLevels(taskTime)
	if err != nil {
		return nil, err
	}
	indeg := g.InDegrees()

	// Incoming dependence records per task: (finish, proc, commSeconds).
	type arrival struct {
		finish float64
		proc   int
		comm   float64
	}
	arrivals := make([][]arrival, nt)

	res := &SimResult{
		Start:    make([]float64, nt),
		Finish:   make([]float64, nt),
		ProcBusy: make([]float64, m.Procs),
	}
	procFree := make([]float64, m.Procs)
	procOf := make([]int, nt)

	ready := priorityQueue{prio: prio}
	for id, d := range indeg {
		if d == 0 {
			heapPush(&ready, id)
		}
	}

	for scheduled := 0; scheduled < nt; scheduled++ {
		if ready.Len() == 0 {
			return nil, fmt.Errorf("sched: no ready task (cycle?)")
		}
		id := heapPopID(&ready)
		// Choose the processor with the earliest feasible start.
		bestP, bestStart := 0, 0.0
		for p := 0; p < m.Procs; p++ {
			start := procFree[p]
			for _, a := range arrivals[id] {
				t := a.finish
				if a.proc != p {
					t += a.comm
				}
				if t > start {
					start = t
				}
			}
			if p == 0 || start < bestStart {
				bestP, bestStart = p, start
			}
		}
		finish := bestStart + taskTime[id]
		res.Start[id] = bestStart
		res.Finish[id] = finish
		res.ProcBusy[bestP] += taskTime[id]
		procFree[bestP] = finish
		procOf[id] = bestP
		if finish > res.Makespan {
			res.Makespan = finish
		}
		for _, s := range g.Succ[id] {
			comm := m.Latency
			if commWords != nil {
				comm += m.InvBandwidth * commWords(id, int(s))
			}
			arrivals[s] = append(arrivals[s], arrival{finish: finish, proc: bestP, comm: comm})
			indeg[s]--
			if indeg[s] == 0 {
				heapPush(&ready, int(s))
			}
		}
	}
	// Count communication events: edges whose endpoints ran on
	// different processors.
	for id := range g.Succ {
		for _, s := range g.Succ[id] {
			if procOf[id] != procOf[s] {
				res.CommEvents++
			}
		}
	}
	return res, nil
}
