package sched

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// This file is the asynchronous data-flow engine behind Execute and
// ExecuteGlobal — the fan-both-style replacement (after Jacquelin et
// al., arXiv:1608.00044) for the mutex-and-condition ready-queue engine
// the earlier PRs used:
//
//   - every task carries an atomic remaining-dependence counter seeded
//     from the graph's in-degrees; a completing task decrements its
//     successors and self-enqueues the ones that hit zero, so there is
//     no level barrier and no shared ready-queue lock on the hot path;
//   - each worker owns a Chase–Lev deque (deque.go): local pops are
//     LIFO (a just-released successor reuses the panel still hot in
//     cache), steals are FIFO;
//   - the first released successor is not queued at all — the worker
//     hands it to itself and keeps running (the work-first handoff), so
//     a dependence chain executes with zero queue traffic;
//   - termination is an atomic count of unfinished tasks instead of a
//     barrier; workers that find every deque empty park on a condition
//     variable and are woken by pushes, by the last completion, by a
//     task failure, or by an external cancel.
//
// Determinism: the engine is free to run tasks in any order that
// respects the dependence edges, and that is sufficient for bitwise
// reproducibility at every worker count. Each destination column's
// update sequence that must be ordered (Theorem 4) is encoded as chain
// edges in the graph (taskgraph.Graph.ChainNext ⊆ Succ), so chain
// successors are released strictly in order by the dependence counters
// alone — independent of which worker runs them — and updates left
// unordered by the graph write disjoint rows (the branch property), so
// their interleaving cannot change a single bit of the result.
//
// Contracts preserved from the previous engine: the first task failure
// (error or panic) is returned as a *TaskError and trips the Canceler;
// a tripped Canceler stops workers from claiming new tasks within one
// atomic load; KindAbort is recorded for the failing task; per-task
// trace events are unchanged (steal/idle events are opt-in via
// trace.Recorder.SetSchedEvents).

// stealRounds is the number of full sweeps over the victims a worker
// makes before parking. Between sweeps the worker yields its P, so on a
// machine with fewer cores than workers the deque owners can run.
const stealRounds = 4

type asyncEngine struct {
	g      *taskgraph.Graph
	rec    *trace.Recorder
	cancel *Canceler
	run    func(id int) error

	// deps[id] is the remaining-dependence counter of task id.
	deps []atomic.Int32
	// deques[p] is worker p's Chase–Lev deque.
	deques []deque
	// remaining counts tasks that have not completed successfully.
	remaining atomic.Int64
	// sleepers counts workers parked (or about to park) on cond.
	sleepers atomic.Int32
	// taskErr is the first task failure any worker observed.
	taskErr atomic.Pointer[TaskError]

	mu   sync.Mutex
	cond *sync.Cond
}

// executeAsync runs the graph on procs workers. place maps every task
// to the deque it is seeded on when ready at the start (nil means
// round-robin over the workers in priority order — task-level
// scheduling); tasks released during the run always join the releasing
// worker's deque. prio orders the initial seeding so the first claims
// are the highest-priority ready tasks. The caller has validated procs
// and prio.
func executeAsync(g *taskgraph.Graph, procs int, rec *trace.Recorder, cancel *Canceler,
	place []int, prio []float64, run func(id int) error) error {
	if cancel == nil {
		cancel = &Canceler{}
	}
	nt := g.NumTasks()
	e := &asyncEngine{g: g, rec: rec, cancel: cancel, run: run}
	e.cond = sync.NewCond(&e.mu)
	e.remaining.Store(int64(nt))
	e.deps = make([]atomic.Int32, nt)
	for _, succ := range g.Succ {
		for _, s := range succ {
			e.deps[s].Add(1)
		}
	}
	e.deques = make([]deque, procs)
	for p := range e.deques {
		e.deques[p].init(nt)
	}

	// Seed the initially ready tasks. ready is sorted by descending
	// priority (ties toward the smaller id) and walked backwards —
	// lowest priority first — so every deque is pushed in ascending
	// priority order and the owner's LIFO pop claims its highest-
	// priority task first. Round-robin placement by priority rank makes
	// the first P claims of the task-level executor exactly the P
	// highest-priority ready tasks, which is what pins the cancellation
	// latency contract.
	ready := make([]int32, 0, nt)
	for id := range e.deps {
		if e.deps[id].Load() == 0 {
			ready = append(ready, int32(id))
		}
	}
	sort.Slice(ready, func(x, y int) bool {
		a, b := ready[x], ready[y]
		if prio[a] != prio[b] {
			return prio[a] > prio[b]
		}
		return a < b
	})
	for i := len(ready) - 1; i >= 0; i-- {
		id := ready[i]
		p := i % procs
		if place != nil {
			p = place[id]
		}
		e.deques[p].push(id)
	}

	// Wake parked workers when an external Cancel trips the flag;
	// deregistered before returning so a later deadline firing cannot
	// touch a finished execution.
	defer cancel.subscribe(e.wakeAll)()

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			e.work(p)
		}(p)
	}
	wg.Wait()

	if te := e.taskErr.Load(); te != nil {
		return te
	}
	if rem := e.remaining.Load(); rem > 0 {
		return &CancelError{Cause: cancel.Cause(), Completed: nt - int(rem), Total: nt}
	}
	return nil
}

// stopped reports whether the worker loop must exit: every task done,
// a task failure published, or an external cancellation.
func (e *asyncEngine) stopped() bool {
	return e.remaining.Load() == 0 || e.taskErr.Load() != nil || e.cancel.flag.Load()
}

// work is one worker's claim loop: pop locally, steal or park when the
// local deque is dry, and follow the handoff chain of released
// successors while there is one.
//
// claimed threads the trace clock through back-to-back executions: a
// task claimed while the worker never stopped working (a handoff, or a
// pop straight after a completion) starts its span at the previous
// task's stamped end, so the worker's continuous busy period is
// accounted continuously — the release/claim bookkeeping between two
// tasks lands in the next span instead of an artificial idle gap. A
// claim that followed a steal search or a park starts fresh: that time
// really was idle and must not be charged to the task.
func (e *asyncEngine) work(p int) {
	d := &e.deques[p]
	claimed := int64(-1)
	for {
		if e.stopped() {
			return
		}
		id := d.pop()
		if id < 0 {
			id = e.stealOrPark(p)
			if id < 0 {
				return // stopped while searching
			}
			claimed = -1 // searching/parking time is real idle
		}
		for id >= 0 && !e.stopped() {
			id, claimed = e.execute(p, int(id), claimed)
		}
	}
}

// execute runs one claimed task: trace it, publish the first failure,
// release its successors, and return the handoff task (the first
// successor this completion made ready) or -1, along with the stamped
// end of this task's trace span (-1 when untraced) for the next claim
// to start from.
func (e *asyncEngine) execute(p, id int, claimed int64) (int32, int64) {
	var err error
	end := int64(-1)
	if e.rec != nil {
		start := claimed
		if start < 0 {
			start = e.rec.Now()
		}
		err = safeRun(e.run, id)
		kind, col := traceKindCol(&e.g.Tasks[id])
		end = e.rec.Record(p, id, kind, col, start)
		if err != nil {
			e.rec.Record(p, id, trace.KindAbort, col, e.rec.Now())
		}
	} else {
		err = safeRun(e.run, id)
	}

	if err != nil {
		te := &TaskError{ID: id, Task: e.g.Tasks[id].String(), Err: err}
		// Only the first failure is published; later ones lose the CAS
		// and are dropped, matching the previous engine's first-error
		// contract.
		e.taskErr.CompareAndSwap(nil, te)
		e.wakeAll()
		// Trip the canceler after publishing (its subscribers — e.g. a
		// test releasing gated bystander tasks — must observe the
		// failure already recorded).
		e.cancel.Cancel(te)
		return -1, end
	}
	if e.stopped() {
		// A sibling failed or the caller canceled while this task body
		// ran: do not count the completion or release successors — the
		// previous engine left the progress count identically.
		return -1, end
	}

	// Release the successors whose last dependence this was. The first
	// one is the handoff (run next, no queue traffic); the rest join
	// this worker's deque for thieves to find.
	next := int32(-1)
	pushed := false
	d := &e.deques[p]
	for _, s := range e.g.Succ[id] {
		if e.deps[s].Add(-1) == 0 {
			if next < 0 {
				next = s
			} else {
				d.push(s)
				pushed = true
			}
		}
	}
	if e.remaining.Add(-1) == 0 {
		e.wakeAll()
		return -1, end
	}
	if pushed && e.sleepers.Load() > 0 {
		e.wakeOne()
	}
	return next, end
}

// stealOrPark searches the other workers' deques for work, parking
// between unsuccessful sweeps. It returns a stolen task id, or -1 when
// the execution stopped.
func (e *asyncEngine) stealOrPark(p int) int32 {
	schedEvents := e.rec != nil && e.rec.SchedEvents()
	var searchStart int64
	if schedEvents {
		searchStart = e.rec.Now()
	}
	for {
		for round := 0; round < stealRounds; round++ {
			if e.stopped() {
				return -1
			}
			if id, victim := e.stealSweep(p); id >= 0 {
				if schedEvents {
					e.rec.Record(p, trace.NoTask, trace.KindSteal, victim, searchStart)
				}
				return id
			}
			// Yield between sweeps: with fewer cores than workers the
			// deque owners need the P to produce anything stealable.
			runtime.Gosched()
		}
		if !e.park(p) {
			return -1
		}
		if schedEvents {
			searchStart = e.rec.Now()
		}
	}
}

// stealSweep tries every other worker's deque once, starting after p.
// It returns the stolen id and the victim, or (-1, -1).
func (e *asyncEngine) stealSweep(p int) (int32, int) {
	n := len(e.deques)
	for k := 1; k < n; k++ {
		victim := (p + k) % n
		if id, _ := e.deques[victim].steal(); id >= 0 {
			return id, victim
		}
	}
	return -1, -1
}

// park blocks the worker until something happens: a push, the last
// completion, a failure, or a cancel. It reports whether the worker
// should keep searching (false means the execution stopped). The
// sleepers counter is incremented before the final work re-scan; both
// are sequentially consistent, so a concurrent pusher either observes
// the sleeper and signals, or this scan observes its push — a wakeup
// cannot be lost between the scan and the Wait.
func (e *asyncEngine) park(p int) bool {
	schedEvents := e.rec != nil && e.rec.SchedEvents()
	var start int64
	if schedEvents {
		start = e.rec.Now()
	}
	e.mu.Lock()
	e.sleepers.Add(1)
	if !e.stopped() && !e.anyWork() {
		e.cond.Wait()
	}
	e.sleepers.Add(-1)
	e.mu.Unlock()
	if schedEvents {
		e.rec.Record(p, trace.NoTask, trace.KindIdle, -1, start)
	}
	return !e.stopped()
}

// anyWork reports whether any deque is observably non-empty.
func (e *asyncEngine) anyWork() bool {
	for i := range e.deques {
		if e.deques[i].size() > 0 {
			return true
		}
	}
	return false
}

// wakeOne wakes a single parked worker (after a push left work for it).
func (e *asyncEngine) wakeOne() {
	e.mu.Lock()
	e.cond.Signal()
	e.mu.Unlock()
}

// wakeAll wakes every parked worker (termination, failure, cancel).
func (e *asyncEngine) wakeAll() {
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}
