// Race-detector stress test for the worker pools. The file is an
// external test package so it can drive the schedulers through the full
// numeric pipeline in internal/core (which imports sched) and check the
// structural DAG with internal/verify before executing on it.
//
// The paper's branch property guarantees that update tasks writing the
// same block column touch disjoint rows, so the parallel factorization
// must be bitwise identical to the serial one — not merely close. Run
// under `go test -race ./internal/sched/...` this doubles as the
// lock-discipline proof for both the owner-mapped and the global
// task-stealing executor.
package sched_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/verify"
)

func randomSquare(n int, density float64, rng *rand.Rand) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Add(i, i, 1+rng.Float64())
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				t.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

func solveBitwise(t *testing.T, f *core.Factorization, n int) []float64 {
	t.Helper()
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestWorkerPoolRaceStress(t *testing.T) {
	type system struct {
		name string
		a    *sparse.CSC
	}
	var systems []system
	for _, spec := range matgen.SmallSuite()[:3] {
		systems = append(systems, system{spec.Name, spec.Gen()})
	}
	rng := rand.New(rand.NewSource(20260804))
	for i := 0; i < 2; i++ {
		n := 60 + rng.Intn(60)
		systems = append(systems, system{
			fmt.Sprintf("random-n%d", n),
			randomSquare(n, 0.06, rng),
		})
	}

	for _, sys := range systems {
		sys := sys
		t.Run(sys.name, func(t *testing.T) {
			t.Parallel()
			opts := core.DefaultOptions()
			opts.Workers = 1
			s, err := core.Analyze(sys.a, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.VerifyDAG(s.Graph); err != nil {
				t.Fatal(err)
			}
			fSerial, err := core.FactorizeWith(s, sys.a)
			if err != nil {
				t.Fatal(err)
			}
			want := solveBitwise(t, fSerial, sys.a.NCols)

			for _, workers := range []int{2, 4, 8} {
				s.Opts.Workers = workers
				for _, exec := range []struct {
					name string
					run  func() (*core.Factorization, error)
				}{
					{"owner-mapped", func() (*core.Factorization, error) { return core.FactorizeWith(s, sys.a) }},
					{"global-steal", func() (*core.Factorization, error) { return core.FactorizeGlobal(s, sys.a) }},
				} {
					f, err := exec.run()
					if err != nil {
						t.Fatalf("%s workers=%d: %v", exec.name, workers, err)
					}
					got := solveBitwise(t, f, sys.a.NCols)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s workers=%d: x[%d] = %g, serial %g — parallel result is not bitwise identical",
								exec.name, workers, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestAsyncParityRobustVariants extends the bitwise-parity sweep to the
// robustness corners of the suite, exercised through the async
// work-stealing engine at P = 1, 2, 4, 8:
//
//   - a near-singular system under PivotPerturb must produce bitwise
//     identical factors (checked through Solve) and the identical
//     perturbation record at every worker count and in both executors;
//   - a NaN-poisoned input must abort with ErrNonFinite wrapped in a
//     *sched.TaskError at every worker count — the non-finite guard
//     survives the stealing engine's arbitrary claim orders.
func TestAsyncParityRobustVariants(t *testing.T) {
	procsSweep := []int{1, 2, 4, 8}

	t.Run("near-singular-perturb", func(t *testing.T) {
		a, _, _ := matgen.NearSingular(8, 10, 21)
		opts := core.DefaultOptions()
		opts.Workers = 1
		opts.PivotPolicy = core.PivotPerturb
		s, err := core.Analyze(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.FactorizeWith(s, a)
		if err != nil {
			t.Fatal(err)
		}
		if ref.PivotPerturbations() == 0 {
			t.Fatal("expected pivot perturbations on the near-singular system")
		}
		want := solveBitwise(t, ref, a.NCols)
		wantPerturbed := fmt.Sprint(ref.PerturbedColumns())

		for _, workers := range procsSweep {
			s.Opts.Workers = workers
			for _, exec := range []struct {
				name string
				run  func() (*core.Factorization, error)
			}{
				{"owner-mapped", func() (*core.Factorization, error) { return core.FactorizeWith(s, a) }},
				{"global-steal", func() (*core.Factorization, error) { return core.FactorizeGlobal(s, a) }},
			} {
				f, err := exec.run()
				if err != nil {
					t.Fatalf("%s workers=%d: %v", exec.name, workers, err)
				}
				if f.PivotPerturbations() != ref.PivotPerturbations() {
					t.Fatalf("%s workers=%d: %d perturbations, serial %d",
						exec.name, workers, f.PivotPerturbations(), ref.PivotPerturbations())
				}
				if got := fmt.Sprint(f.PerturbedColumns()); got != wantPerturbed {
					t.Fatalf("%s workers=%d: perturbed columns %s, serial %s",
						exec.name, workers, got, wantPerturbed)
				}
				got := solveBitwise(t, f, a.NCols)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s workers=%d: x[%d] = %g, serial %g — not bitwise identical",
							exec.name, workers, i, got[i], want[i])
					}
				}
			}
		}
	})

	t.Run("nan-poisoned-input", func(t *testing.T) {
		rng := rand.New(rand.NewSource(20260808))
		a := randomSquare(80, 0.06, rng)
		// Poison one structural entry of the input so the non-finite
		// guard must trip during the numeric phase.
		a.Val[len(a.Val)/2] = math.NaN()
		for _, workers := range procsSweep {
			opts := core.DefaultOptions()
			opts.Workers = workers
			s, err := core.Analyze(a, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, exec := range []struct {
				name string
				run  func() (*core.Factorization, error)
			}{
				{"owner-mapped", func() (*core.Factorization, error) { return core.FactorizeWith(s, a) }},
				{"global-steal", func() (*core.Factorization, error) { return core.FactorizeGlobal(s, a) }},
			} {
				_, err := exec.run()
				if !errors.Is(err, core.ErrNonFinite) {
					t.Fatalf("%s workers=%d: err = %v, want ErrNonFinite", exec.name, workers, err)
				}
				var te *sched.TaskError
				if !errors.As(err, &te) {
					t.Fatalf("%s workers=%d: err = %v, want *sched.TaskError", exec.name, workers, err)
				}
			}
		}
	})
}
