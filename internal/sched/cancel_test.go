package sched

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// syntheticUpdates returns a dependence-free graph of n Update tasks
// U(0, i+1), so failure reports carry the paper's task notation without
// needing a real matrix.
func syntheticUpdates(n int) *taskgraph.Graph {
	g := &taskgraph.Graph{N: n + 1, Tasks: make([]taskgraph.Task, n), Succ: make([][]int32, n)}
	for i := range g.Tasks {
		g.Tasks[i] = taskgraph.Task{Kind: taskgraph.Update, K: 0, J: i + 1}
	}
	return g
}

func TestCancelerOneShot(t *testing.T) {
	var c Canceler
	if c.Canceled() {
		t.Fatal("zero canceler already tripped")
	}
	if c.Cause() != nil {
		t.Fatalf("cause before trip: %v", c.Cause())
	}
	first := errors.New("first")
	c.Cancel(first)
	c.Cancel(errors.New("second"))
	if !c.Canceled() {
		t.Fatal("not tripped after Cancel")
	}
	if c.Cause() != first {
		t.Fatalf("cause = %v, want the first cancel to win", c.Cause())
	}

	var d Canceler
	d.Cancel(nil)
	if d.Cause() != ErrCanceled {
		t.Fatalf("nil cause = %v, want ErrCanceled", d.Cause())
	}
}

func TestCancelerSubscribe(t *testing.T) {
	// Subscribing after the trip fires immediately.
	var c Canceler
	c.Cancel(nil)
	fired := false
	c.subscribe(func() { fired = true })()
	if !fired {
		t.Fatal("late subscriber did not fire")
	}

	// Subscribers fire on Cancel; deregistered ones do not.
	var e Canceler
	n := 0
	e.subscribe(func() { n++ })
	unsub := e.subscribe(func() { n += 10 })
	unsub()
	e.Cancel(nil)
	if n != 1 {
		t.Fatalf("subscriber count effect = %d, want 1", n)
	}
}

func TestCancelErrorMatching(t *testing.T) {
	cause := errors.New("cause")
	err := error(&CancelError{Cause: cause, Completed: 3, Total: 10})
	if !errors.Is(err, ErrCanceled) {
		t.Fatal("CancelError does not match ErrCanceled")
	}
	if !errors.Is(err, cause) {
		t.Fatal("CancelError does not unwrap to its cause")
	}
	var ce *CancelError
	if !errors.As(err, &ce) || ce.Completed != 3 || ce.Total != 10 {
		t.Fatalf("errors.As: %+v", ce)
	}
	if s := err.Error(); !strings.Contains(s, "3 of 10") {
		t.Fatalf("message %q lacks progress", s)
	}
}

// TestCancellationLatencyExact pins the acceptance criterion: with P=8
// workers and a failing Update task, exactly P tasks ever start — the
// one that fails plus the P−1 already claimed — and no worker claims a
// new task after the failure is published. The schedule is made
// deterministic by blocking the first P−1 bystander tasks until the
// failing task has seen them all arrive, and releasing them via the
// canceler's own trip notification (which happens strictly after the
// executor records the failure).
func TestCancellationLatencyExact(t *testing.T) {
	const total = 1000
	const procs = 8
	g := syntheticUpdates(total)
	prio := make([]float64, total)
	prio[0] = 2
	for i := 1; i < procs; i++ {
		prio[i] = 1
	}
	boom := errors.New("boom")
	arrived := make(chan int, procs)
	release := make(chan struct{})
	cancel := &Canceler{}
	defer cancel.subscribe(func() { close(release) })()
	var started atomic.Int64
	run := func(id int) error {
		started.Add(1)
		if id == 0 {
			for i := 0; i < procs-1; i++ {
				<-arrived
			}
			return boom
		}
		arrived <- id
		<-release
		return nil
	}
	err := ExecuteGlobalCancelable(g, procs, prio, nil, cancel, run)
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TaskError", err)
	}
	if te.ID != 0 || te.Task != "U(0,1)" {
		t.Fatalf("TaskError names %d %q, want 0 U(0,1)", te.ID, te.Task)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err %v does not unwrap to the task failure", err)
	}
	if n := started.Load(); n != procs {
		t.Fatalf("%d tasks started, want exactly %d (no claims after the failure)", n, procs)
	}
	if !cancel.Canceled() || !errors.Is(cancel.Cause(), boom) {
		t.Fatalf("task failure did not trip the shared canceler: %v", cancel.Cause())
	}
}

// TestCancellationLatencyPanic is the same contract with a panicking
// task body instead of a returned error.
func TestCancellationLatencyPanic(t *testing.T) {
	const total = 200
	const procs = 8
	g := syntheticUpdates(total)
	prio := make([]float64, total)
	prio[0] = 2
	for i := 1; i < procs; i++ {
		prio[i] = 1
	}
	arrived := make(chan int, procs)
	release := make(chan struct{})
	cancel := &Canceler{}
	defer cancel.subscribe(func() { close(release) })()
	var started atomic.Int64
	run := func(id int) error {
		started.Add(1)
		if id == 0 {
			for i := 0; i < procs-1; i++ {
				<-arrived
			}
			panic("kernel exploded")
		}
		arrived <- id
		<-release
		return nil
	}
	err := ExecuteGlobalCancelable(g, procs, prio, nil, cancel, run)
	var te *TaskError
	if !errors.As(err, &te) || te.ID != 0 {
		t.Fatalf("err = %v, want *TaskError for task 0", err)
	}
	if !strings.Contains(err.Error(), "kernel exploded") {
		t.Fatalf("panic message lost: %v", err)
	}
	if n := started.Load(); n != procs {
		t.Fatalf("%d tasks started, want exactly %d", n, procs)
	}
}

// TestExternalCancelStopsExecution cancels an owner-mapped execution
// from the outside and checks the CancelError contract.
func TestExternalCancelStopsExecution(t *testing.T) {
	const total = 100
	const procs = 4
	g := syntheticUpdates(total)
	cancel := &Canceler{}
	arrived := make(chan struct{}, total)
	gate := make(chan struct{})
	var started atomic.Int64
	run := func(id int) error {
		started.Add(1)
		arrived <- struct{}{}
		<-gate
		return nil
	}
	done := make(chan error, 1)
	go func() {
		done <- ExecuteCancelable(g, BlockCyclic(g.N, procs), procs, nil, nil, cancel, run)
	}()
	for i := 0; i < procs; i++ {
		<-arrived
	}
	cancel.Cancel(nil)
	close(gate)
	err := <-done
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CancelError", err)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatal("cancel error does not match ErrCanceled")
	}
	if ce.Total != total || ce.Completed >= total {
		t.Fatalf("progress %d/%d implausible", ce.Completed, ce.Total)
	}
	if n := started.Load(); n != procs {
		t.Fatalf("%d tasks started after external cancel, want %d", n, procs)
	}
}

// TestAbortTraceEvent checks that a task failure leaves a KindAbort
// event naming the failing task in the trace.
func TestAbortTraceEvent(t *testing.T) {
	g := syntheticUpdates(4)
	rec := trace.New(2)
	boom := errors.New("boom")
	err := ExecuteGlobalTraced(g, 2, nil, rec, func(id int) error {
		if id == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	aborts := 0
	for _, e := range rec.Events() {
		if e.Kind == trace.KindAbort {
			aborts++
			if e.Task != 2 {
				t.Fatalf("abort event names task %d, want 2", e.Task)
			}
		}
	}
	if aborts != 1 {
		t.Fatalf("%d abort events, want 1", aborts)
	}
}

// TestCancelBeforeStart: an already-tripped canceler yields an
// immediate CancelError with zero progress.
func TestCancelBeforeStart(t *testing.T) {
	g := syntheticUpdates(10)
	cancel := &Canceler{}
	cause := errors.New("gave up early")
	cancel.Cancel(cause)
	ran := false
	err := ExecuteGlobalCancelable(g, 2, nil, nil, cancel, func(id int) error {
		ran = true
		return nil
	})
	var ce *CancelError
	if !errors.As(err, &ce) || ce.Completed != 0 {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("cause lost: %v", err)
	}
	if ran {
		t.Fatal("a task ran despite pre-tripped canceler")
	}
}
