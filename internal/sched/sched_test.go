package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/etree"
	"repro/internal/sparse"
	"repro/internal/supernode"
	"repro/internal/symbolic"
	"repro/internal/taskgraph"
)

func randomZeroFreeDiag(n int, density float64, rng *rand.Rand) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Add(i, i, 1+rng.Float64())
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				t.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return t.ToCSC()
}

func buildGraph(t *testing.T, n int, density float64, seed int64, v taskgraph.Variant) (*taskgraph.Graph, *taskgraph.CostModel) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := randomZeroFreeDiag(n, density, rng)
	sym, err := symbolic.Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	f := etree.LUForest(sym)
	g := taskgraph.New(sym, f, v)
	cm := taskgraph.NewCostModel(g, sym, supernode.Trivial(sym.N))
	return g, cm
}

func TestBlockCyclic(t *testing.T) {
	a := BlockCyclic(7, 3)
	want := Assignment{0, 1, 2, 0, 1, 2, 0}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("BlockCyclic = %v", a)
		}
	}
}

func TestBalancedColumns(t *testing.T) {
	a := BalancedColumns([]float64{10, 1, 1, 1, 1, 1, 5}, 2)
	load := []float64{0, 0}
	cost := []float64{10, 1, 1, 1, 1, 1, 5}
	for i, p := range a {
		if p < 0 || p > 1 {
			t.Fatalf("bad proc %d", p)
		}
		load[p] += cost[i]
	}
	// Perfect split is 10 vs 10.
	if load[0] != 10 || load[1] != 10 {
		t.Fatalf("loads = %v, want [10 10]", load)
	}
}

// TestBalancedColumnsDeterministicTieBreak pins the processing order of
// the greedy balancer: descending cost, ties broken by ascending column
// index, and equal processor loads resolved toward the lowest index.
// The expected assignment is the hand-traced greedy LPT result; any
// change to the sort's tie-break changes it.
func TestBalancedColumnsDeterministicTieBreak(t *testing.T) {
	cost := []float64{1, 0.5, 4, 1, 0.5, 4, 1}
	// Processing order must be 2, 5, 0, 3, 6, 1, 4.
	want := Assignment{0, 1, 0, 1, 1, 1, 0}
	got := BalancedColumns(cost, 2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BalancedColumns = %v, want %v", got, want)
		}
	}

	// Randomized cross-check against a reference insertion sort with the
	// same comparator: the sort.Slice replacement must order identically
	// even with many duplicate costs.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		procs := 1 + rng.Intn(5)
		c := make([]float64, n)
		for i := range c {
			c[i] = float64(rng.Intn(4)) // few distinct values → many ties
		}
		got := BalancedColumns(c, procs)
		want := referenceBalanced(c, procs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: BalancedColumns = %v, want %v (costs %v, procs %d)",
					trial, got, want, c, procs)
			}
		}
	}
}

// referenceBalanced is the original insertion-sort implementation, kept
// as the behavioral oracle for the sort.Slice version.
func referenceBalanced(colCost []float64, procs int) Assignment {
	n := len(colCost)
	a := make(Assignment, n)
	load := make([]float64, procs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for k := i; k > 0; k-- {
			x, y := idx[k-1], idx[k]
			if colCost[x] < colCost[y] || (colCost[x] == colCost[y] && x > y) {
				idx[k-1], idx[k] = idx[k], idx[k-1]
			} else {
				break
			}
		}
	}
	for _, col := range idx {
		best := 0
		for p := 1; p < procs; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		a[col] = best
		load[best] += colCost[col]
	}
	return a
}

func TestTaskOwners(t *testing.T) {
	g, _ := buildGraph(t, 12, 0.15, 91, taskgraph.EForest)
	owner := BlockCyclic(g.N, 3)
	to := TaskOwners(g, owner)
	for id, task := range g.Tasks {
		want := owner[task.K]
		if task.Kind == taskgraph.Update {
			want = owner[task.J]
		}
		if to[id] != want {
			t.Fatalf("task %v owner %d, want %d", task, to[id], want)
		}
	}
}

func TestExecuteRunsAllTasksOnce(t *testing.T) {
	for _, v := range []taskgraph.Variant{taskgraph.SStar, taskgraph.EForest} {
		for _, procs := range []int{1, 2, 4, 8} {
			g, _ := buildGraph(t, 25, 0.12, 92, v)
			var count int64
			seen := make([]int32, g.NumTasks())
			err := Execute(g, BlockCyclic(g.N, procs), procs, nil, func(id int) error {
				atomic.AddInt64(&count, 1)
				atomic.AddInt32(&seen[id], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if count != int64(g.NumTasks()) {
				t.Fatalf("%v P=%d: ran %d of %d tasks", v, procs, count, g.NumTasks())
			}
			for id, c := range seen {
				if c != 1 {
					t.Fatalf("%v P=%d: task %d ran %d times", v, procs, id, c)
				}
			}
		}
	}
}

func TestExecuteRespectsDependences(t *testing.T) {
	g, _ := buildGraph(t, 30, 0.1, 93, taskgraph.EForest)
	var mu sync.Mutex
	done := make([]bool, g.NumTasks())
	pred := make([][]int, g.NumTasks())
	for id := range g.Succ {
		for _, s := range g.Succ[id] {
			pred[s] = append(pred[s], id)
		}
	}
	err := Execute(g, BlockCyclic(g.N, 4), 4, nil, func(id int) error {
		mu.Lock()
		defer mu.Unlock()
		for _, p := range pred[id] {
			if !done[p] {
				return fmt.Errorf("dependence violated: %d ran before %d", id, p)
			}
		}
		done[id] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, d := range done {
		if !d {
			t.Fatalf("task %d never ran", id)
		}
	}
}

func TestExecuteSerializesChainedColumns(t *testing.T) {
	// Under the work-stealing engine the 1-D ownership is an affinity
	// hint, not mutual exclusion: the serialization that matters comes
	// from the dependence edges alone. In the S* graph every task of a
	// destination column sits on one Theorem-4 chain, so two tasks of
	// the same destination column must never overlap — at any worker
	// count, wherever the thieves move them. (EForest deliberately
	// leaves independent-subtree updates unordered; those write
	// disjoint rows, so overlap there is bitwise-safe and allowed.)
	g, _ := buildGraph(t, 25, 0.15, 94, taskgraph.SStar)
	owner := BlockCyclic(g.N, 4)
	var mu sync.Mutex
	active := make(map[int]int) // destination column -> active count
	err := Execute(g, owner, 4, nil, func(id int) error {
		dest := g.Tasks[id].K
		if g.Tasks[id].Kind == taskgraph.Update {
			dest = g.Tasks[id].J
		}
		mu.Lock()
		active[dest]++
		over := active[dest] > 1
		mu.Unlock()
		if over {
			return errors.New("two tasks active on one block column")
		}
		mu.Lock()
		active[dest]--
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExecuteReturnsFirstTaskError pins the executor error contract:
// the first task failure observed by any worker is returned — not
// swallowed, not panicked — as a *TaskError carrying the task id.
func TestExecuteReturnsFirstTaskError(t *testing.T) {
	g, _ := buildGraph(t, 10, 0.15, 95, taskgraph.SStar)
	boom := errors.New("boom")
	err := Execute(g, BlockCyclic(g.N, 2), 2, nil, func(id int) error {
		if id == 3 {
			return boom
		}
		return nil
	})
	if err == nil {
		t.Fatal("task error swallowed")
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T, want *TaskError", err)
	}
	if te.ID != 3 {
		t.Fatalf("TaskError.ID = %d, want 3", te.ID)
	}
	if te.Task != g.Tasks[3].String() {
		t.Fatalf("TaskError.Task = %q, want %q", te.Task, g.Tasks[3].String())
	}
	if !errors.Is(err, boom) {
		t.Fatalf("errors.Is lost the cause: %v", err)
	}
}

// TestExecuteConvertsPanicToError: a panic in a task body surfaces as a
// *TaskError instead of tearing down the process.
func TestExecuteConvertsPanicToError(t *testing.T) {
	g, _ := buildGraph(t, 10, 0.15, 95, taskgraph.SStar)
	err := Execute(g, BlockCyclic(g.N, 2), 2, nil, func(id int) error {
		if id == 3 {
			panic("boom")
		}
		return nil
	})
	var te *TaskError
	if !errors.As(err, &te) || te.ID != 3 {
		t.Fatalf("panic not converted to TaskError: %v", err)
	}
}

// TestExecuteGlobalReturnsFirstTaskError: same contract for the
// task-level executor.
func TestExecuteGlobalReturnsFirstTaskError(t *testing.T) {
	g, _ := buildGraph(t, 10, 0.15, 95, taskgraph.SStar)
	boom := errors.New("boom")
	err := ExecuteGlobal(g, 4, nil, func(id int) error {
		if id == 3 {
			return boom
		}
		return nil
	})
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T, want *TaskError", err)
	}
	if te.ID != 3 || !errors.Is(err, boom) {
		t.Fatalf("wrong task error: %v", err)
	}
}

func TestSimulateBasics(t *testing.T) {
	g, cm := buildGraph(t, 30, 0.1, 96, taskgraph.EForest)
	m := Origin2000(4)
	res, err := Simulate(g, cm, BlockCyclic(g.N, 4), m, PanelWords(g, cm))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("non-positive makespan")
	}
	for id := range g.Tasks {
		if res.Finish[id] < res.Start[id] {
			t.Fatalf("task %d finishes before it starts", id)
		}
	}
	// Dependences respected in simulated times.
	for id := range g.Succ {
		for _, s := range g.Succ[id] {
			if res.Start[s] < res.Finish[id]-1e-12 {
				t.Fatalf("simulated start of %d before finish of predecessor %d", s, id)
			}
		}
	}
	if e := res.Efficiency(); e <= 0 || e > 1+1e-9 {
		t.Fatalf("efficiency %g out of range", e)
	}
}

func TestSimulateOneProcEqualsSerialTime(t *testing.T) {
	g, cm := buildGraph(t, 20, 0.12, 97, taskgraph.EForest)
	m := Origin2000(1)
	res, err := Simulate(g, cm, BlockCyclic(g.N, 1), m, PanelWords(g, cm))
	if err != nil {
		t.Fatal(err)
	}
	want := cm.TotalFlops()/m.FlopRate + float64(g.NumTasks())*m.TaskOverhead
	if diff := res.Makespan - want; diff > 1e-9*want || diff < -1e-9*want {
		t.Fatalf("P=1 makespan %g, want serial %g", res.Makespan, want)
	}
	if res.CommEvents != 0 {
		t.Fatalf("P=1 had %d comm events", res.CommEvents)
	}
}

func TestSimulateSpeedupMonotoneIsh(t *testing.T) {
	// More processors must never make the simulated makespan worse than
	// 1.6× the previous level (greedy schedules are not strictly
	// monotone, but collapse would indicate a bug) and P=8 must beat P=1.
	// Communication is disabled here: with unit-width blocks the tasks
	// are nanoseconds while a message costs microseconds, so the real
	// machine model is legitimately communication-bound (that is why the
	// paper amalgamates supernodes). Zero-cost messages isolate the
	// scheduling behaviour.
	g, cm := buildGraph(t, 60, 0.06, 98, taskgraph.EForest)
	var prev float64
	var first float64
	for _, p := range []int{1, 2, 4, 8} {
		m := Machine{Procs: p, FlopRate: 180e6}
		res, err := Simulate(g, cm, BlockCyclic(g.N, p), m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p == 1 {
			first = res.Makespan
		} else if res.Makespan > prev*1.6 {
			t.Fatalf("P=%d makespan %g much worse than previous %g", p, res.Makespan, prev)
		}
		prev = res.Makespan
	}
	if prev >= first {
		t.Fatalf("P=8 (%g) not faster than P=1 (%g)", prev, first)
	}
}

func TestSimulateEForestNotSlowerThanSStar(t *testing.T) {
	// The paper's Figures 5–6: with identical machine, mapping and
	// costs, the eforest graph should be at least as fast as S* on
	// multiple processors (aggregated across seeds to tolerate greedy
	// scheduling noise).
	var sumS, sumE float64
	for seed := int64(0); seed < 6; seed++ {
		gs, cms := buildGraph(t, 50, 0.07, 990+seed, taskgraph.SStar)
		ge, cme := buildGraph(t, 50, 0.07, 990+seed, taskgraph.EForest)
		owner := BlockCyclic(gs.N, 4)
		m := Origin2000(4)
		rs, err := Simulate(gs, cms, owner, m, PanelWords(gs, cms))
		if err != nil {
			t.Fatal(err)
		}
		re, err := Simulate(ge, cme, owner, m, PanelWords(ge, cme))
		if err != nil {
			t.Fatal(err)
		}
		sumS += rs.Makespan
		sumE += re.Makespan
	}
	if sumE > sumS*1.02 {
		t.Fatalf("eforest aggregate makespan %g worse than S* %g", sumE, sumS)
	}
}

func TestSimulateRejectsBadMachine(t *testing.T) {
	g, cm := buildGraph(t, 10, 0.15, 99, taskgraph.SStar)
	if _, err := Simulate(g, cm, BlockCyclic(g.N, 1), Machine{Procs: 0, FlopRate: 1}, nil); err == nil {
		t.Fatal("accepted 0 processors")
	}
	if _, err := Simulate(g, cm, BlockCyclic(g.N, 1), Machine{Procs: 1}, nil); err == nil {
		t.Fatal("accepted zero flop rate")
	}
}

func TestExecuteRejectsBadProcs(t *testing.T) {
	g, _ := buildGraph(t, 5, 0.2, 100, taskgraph.SStar)
	if err := Execute(g, BlockCyclic(g.N, 1), 0, nil, func(int) error { return nil }); err == nil {
		t.Fatal("accepted 0 processors")
	}
}

func TestTaskOwners2D(t *testing.T) {
	g, cm := buildGraph(t, 30, 0.1, 110, taskgraph.EForest)
	owners := TaskOwners2D(g, 2, 2)
	for id, p := range owners {
		if p < 0 || p >= 4 {
			t.Fatalf("task %d on proc %d", id, p)
		}
		task := g.Tasks[id]
		wantRow := task.K % 2
		wantCol := task.K % 2
		if task.Kind == taskgraph.Update {
			wantCol = task.J % 2
		}
		if p != wantRow*2+wantCol {
			t.Fatalf("task %v on proc %d, want %d", task, p, wantRow*2+wantCol)
		}
	}
	m := Origin2000(4)
	res, err := SimulateOwners(g, cm, owners, m, PanelWords(g, cm))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("2D simulation produced no schedule")
	}
	// Dependences respected.
	for id := range g.Succ {
		for _, s := range g.Succ[id] {
			if res.Start[s] < res.Finish[id]-1e-12 {
				t.Fatalf("2D: start of %d before finish of %d", s, id)
			}
		}
	}
}

func TestSimulateStaticBasics(t *testing.T) {
	g, cm := buildGraph(t, 30, 0.1, 111, taskgraph.EForest)
	m := Origin2000(4)
	res, err := SimulateStatic(g, cm, m, PanelWords(g, cm), Perturb{Amplitude: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	for id := range g.Succ {
		for _, s := range g.Succ[id] {
			if res.Start[s] < res.Finish[id]-1e-12 {
				t.Fatalf("static: start of %d before finish of %d", s, id)
			}
		}
	}
	// Deterministic across runs.
	res2, err := SimulateStatic(g, cm, m, PanelWords(g, cm), Perturb{Amplitude: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != res2.Makespan {
		t.Fatal("SimulateStatic not deterministic")
	}
	// Different seed, different makespan (perturbation has effect).
	res3, err := SimulateStatic(g, cm, m, PanelWords(g, cm), Perturb{Amplitude: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan == res3.Makespan {
		t.Fatal("perturbation seed had no effect")
	}
}

func TestSimulateStaticZeroPerturbMatchesPlanOrder(t *testing.T) {
	// With no perturbation, the executed makespan should be close to the
	// planned greedy makespan (identical policies, in-order execution
	// can only add waits).
	g, cm := buildGraph(t, 40, 0.08, 112, taskgraph.EForest)
	m := Origin2000(4)
	plan, err := SimulateGlobal(g, cm, m, PanelWords(g, cm))
	if err != nil {
		t.Fatal(err)
	}
	exec, err := SimulateStatic(g, cm, m, PanelWords(g, cm), Perturb{})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Makespan < plan.Makespan*0.99 {
		t.Fatalf("in-order execution faster than its own plan: %g vs %g", exec.Makespan, plan.Makespan)
	}
	if exec.Makespan > plan.Makespan*1.2 {
		t.Fatalf("in-order execution much slower than plan: %g vs %g", exec.Makespan, plan.Makespan)
	}
}

func TestExecuteGlobalRunsAllTasks(t *testing.T) {
	for _, procs := range []int{1, 4, 8} {
		g, _ := buildGraph(t, 25, 0.12, 113, taskgraph.EForest)
		var count int64
		err := ExecuteGlobal(g, procs, nil, func(id int) error {
			atomic.AddInt64(&count, 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != int64(g.NumTasks()) {
			t.Fatalf("P=%d: ran %d of %d", procs, count, g.NumTasks())
		}
	}
}

func TestExecuteGlobalRespectsDependences(t *testing.T) {
	g, _ := buildGraph(t, 30, 0.1, 114, taskgraph.EForest)
	pred := make([][]int, g.NumTasks())
	for id := range g.Succ {
		for _, s := range g.Succ[id] {
			pred[s] = append(pred[s], id)
		}
	}
	var mu sync.Mutex
	done := make([]bool, g.NumTasks())
	err := ExecuteGlobal(g, 4, nil, func(id int) error {
		mu.Lock()
		defer mu.Unlock()
		for _, p := range pred[id] {
			if !done[p] {
				return fmt.Errorf("dependence violated: %d ran before %d", id, p)
			}
		}
		done[id] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
