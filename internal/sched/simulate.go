package sched

import (
	"fmt"
	"math"

	"repro/internal/taskgraph"
)

// Machine models the parallel machine for the discrete-event simulator.
// The defaults approximate the paper's testbed, a 16-processor SGI
// Origin 2000 (R10000 @195 MHz, hypercube interconnect): ~180 Mflop/s
// effective per processor on BLAS-3-rich kernels and a few microseconds
// per message.
type Machine struct {
	// Procs is the number of processors.
	Procs int
	// FlopRate is the effective scalar rate in flops per second.
	FlopRate float64
	// Latency is the fixed cost in seconds of one inter-processor
	// message (a panel broadcast edge).
	Latency float64
	// InvBandwidth is the cost in seconds per transferred word.
	InvBandwidth float64
	// TaskOverhead is the fixed dispatch/synchronization cost in
	// seconds added to every task, modeling the per-task bookkeeping of
	// an inspector-executor runtime like RAPID. It is what makes long
	// serialized chains of tiny update tasks expensive.
	TaskOverhead float64
}

// taskSeconds converts the cost model's flop counts to seconds on this
// machine, including the per-task overhead.
func (m Machine) taskSeconds(flops []float64) []float64 {
	out := make([]float64, len(flops))
	for i, f := range flops {
		out[i] = f/m.FlopRate + m.TaskOverhead
	}
	return out
}

// Origin2000 returns the default machine model with the given processor
// count.
func Origin2000(procs int) Machine {
	return Machine{
		Procs:        procs,
		FlopRate:     180e6,
		Latency:      10e-6,
		InvBandwidth: 1.0 / (160e6 / 8), // 160 MB/s peak link, 8-byte words
		TaskOverhead: 30e-6,
	}
}

// SimResult reports a simulated schedule.
type SimResult struct {
	// Makespan is the simulated completion time in seconds.
	Makespan float64
	// Start and Finish give the simulated time bounds of every task.
	Start, Finish []float64
	// ProcBusy is the total busy time of each processor.
	ProcBusy []float64
	// CommEvents counts the cross-processor dependence edges.
	CommEvents int
}

// Efficiency returns Σbusy / (P · makespan).
func (r *SimResult) Efficiency() float64 {
	if r.Makespan == 0 {
		return 1
	}
	var busy float64
	for _, b := range r.ProcBusy {
		busy += b
	}
	return busy / (float64(len(r.ProcBusy)) * r.Makespan)
}

// Simulate performs deterministic greedy list scheduling of the task
// graph on the machine: each task runs on the processor owning its
// destination block column, tasks become ready when all predecessors
// have finished (plus message time for cross-processor edges), and each
// processor picks the ready task with the highest priority (descending
// bottom level computed from the flop costs). commWords(from, to)
// returns the message volume in words of a cross-processor edge.
func Simulate(g *taskgraph.Graph, cm *taskgraph.CostModel, owner Assignment, m Machine, commWords func(from, to int) float64) (*SimResult, error) {
	return SimulateOwners(g, cm, TaskOwners(g, owner), m, commWords)
}

// TaskOwners2D maps tasks onto a pr×pc processor grid, the 2-D
// decomposition the paper names as future work: Factor(k) runs on
// grid(k mod pr, k mod pc) and Update(k, j) on grid(k mod pr, j mod pc),
// so a panel row is shared by one grid row and a destination column by
// one grid column.
func TaskOwners2D(g *taskgraph.Graph, pr, pc int) []int {
	out := make([]int, g.NumTasks())
	for id, t := range g.Tasks {
		r := t.K % pr
		c := t.K % pc
		if t.Kind == taskgraph.Update {
			c = t.J % pc
		}
		out[id] = r*pc + c
	}
	return out
}

// SimulateOwners is Simulate with an explicit per-task processor
// assignment (e.g. from TaskOwners2D).
func SimulateOwners(g *taskgraph.Graph, cm *taskgraph.CostModel, taskOwner []int, m Machine, commWords func(from, to int) float64) (*SimResult, error) {
	if m.Procs < 1 {
		return nil, fmt.Errorf("sched: machine with %d processors", m.Procs)
	}
	if m.FlopRate <= 0 {
		return nil, fmt.Errorf("sched: non-positive flop rate")
	}
	nt := g.NumTasks()
	taskTime := m.taskSeconds(cm.TaskFlops)
	prio, err := g.BottomLevels(taskTime)
	if err != nil {
		return nil, err
	}

	indeg := g.InDegrees()
	ready := make([]float64, nt) // earliest data-ready time
	res := &SimResult{
		Start:    make([]float64, nt),
		Finish:   make([]float64, nt),
		ProcBusy: make([]float64, m.Procs),
	}
	procFree := make([]float64, m.Procs)
	queues := make([]priorityQueue, m.Procs)
	for p := range queues {
		queues[p].prio = prio
	}
	for id, d := range indeg {
		if d == 0 {
			heapPush(&queues[taskOwner[id]], id)
		}
	}

	scheduled := 0
	for scheduled < nt {
		// Pick the (proc, task) pair with the earliest feasible start;
		// ties go to higher priority, then lower task id.
		bestProc, bestID := -1, -1
		bestStart := math.Inf(1)
		for p := range queues {
			if queues[p].Len() == 0 {
				continue
			}
			id := queues[p].ids[0]
			start := procFree[p]
			if ready[id] > start {
				start = ready[id]
			}
			if start < bestStart ||
				(start == bestStart && (bestID == -1 || prio[id] > prio[bestID] ||
					(prio[id] == prio[bestID] && id < bestID))) {
				bestProc, bestID, bestStart = p, id, start
			}
		}
		if bestID == -1 {
			return nil, fmt.Errorf("sched: no ready task with %d of %d scheduled (cycle?)", scheduled, nt)
		}
		heapPopID(&queues[bestProc])
		finish := bestStart + taskTime[bestID]
		res.Start[bestID] = bestStart
		res.Finish[bestID] = finish
		res.ProcBusy[bestProc] += taskTime[bestID]
		procFree[bestProc] = finish
		if finish > res.Makespan {
			res.Makespan = finish
		}
		scheduled++
		for _, s := range g.Succ[bestID] {
			arrive := finish
			if taskOwner[s] != bestProc {
				vol := 0.0
				if commWords != nil {
					vol = commWords(bestID, int(s))
				}
				arrive += m.Latency + m.InvBandwidth*vol
				res.CommEvents++
			}
			if arrive > ready[s] {
				ready[s] = arrive
			}
			indeg[s]--
			if indeg[s] == 0 {
				heapPush(&queues[taskOwner[s]], int(s))
			}
		}
	}
	return res, nil
}

// PanelWords returns a commWords function for the 1-D mapping: the only
// cross-processor edges are panel broadcasts F(k) → U(k, j), carrying
// the factored panel of block column k (L and U parts).
func PanelWords(g *taskgraph.Graph, cm *taskgraph.CostModel) func(from, to int) float64 {
	return func(from, to int) float64 {
		t := g.Tasks[from]
		if t.Kind != taskgraph.Factor {
			return float64(cm.Width[g.Tasks[from].K]) // small pivot/ordering message
		}
		k := t.K
		return float64(cm.PanelHeight[k] * cm.Width[k])
	}
}

func heapPush(q *priorityQueue, id int) {
	q.ids = append(q.ids, id)
	// sift up
	i := len(q.ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.Less(i, parent) {
			q.Swap(i, parent)
			i = parent
		} else {
			break
		}
	}
}

func heapPopID(q *priorityQueue) int {
	id := q.ids[0]
	last := len(q.ids) - 1
	q.ids[0] = q.ids[last]
	q.ids = q.ids[:last]
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q.ids) && q.Less(l, small) {
			small = l
		}
		if r < len(q.ids) && q.Less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q.Swap(i, small)
		i = small
	}
	return id
}
