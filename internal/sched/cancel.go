package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/luerr"
)

// ErrCanceled is the sentinel matched by errors.Is on every execution
// that was stopped by a Canceler before all tasks completed. It also
// matches luerr.ErrCanceled, the module-wide cancellation class.
var ErrCanceled = luerr.Tag("sched: execution canceled", luerr.ErrCanceled)

// Canceler is a one-shot, race-free cancellation signal shared between
// an executor and the outside world (a deadline timer, a caller giving
// up, another execution's failure). The zero value is ready to use.
//
// The fast path is a single atomic load: workers call Canceled once per
// task claim, so cancellation latency is O(one task body), not O(the
// remaining DAG). Cancel may be called from any goroutine, any number of
// times; the first call wins and fixes the cause.
//
// The executors trip the canceler themselves when a task fails, so a
// shared Canceler also propagates failure across concurrently running
// executions.
type Canceler struct {
	flag atomic.Bool

	mu    sync.Mutex
	cause error
	subs  []func()
}

// Cancel requests cancellation with the given cause (nil means
// ErrCanceled). Only the first call has any effect.
func (c *Canceler) Cancel(cause error) {
	if cause == nil {
		cause = ErrCanceled
	}
	c.mu.Lock()
	if c.flag.Load() {
		c.mu.Unlock()
		return
	}
	c.cause = cause
	c.flag.Store(true)
	subs := c.subs
	c.subs = nil
	c.mu.Unlock()
	// Notify outside the lock: subscribers take their own locks (the
	// executor's mutex) to wake sleeping workers.
	for _, fn := range subs {
		if fn != nil {
			fn()
		}
	}
}

// Canceled reports whether cancellation was requested. It is a single
// atomic load — cheap enough for per-task polling.
func (c *Canceler) Canceled() bool { return c.flag.Load() }

// Cause returns the error passed to the first Cancel call, or nil if
// the canceler has not tripped.
func (c *Canceler) Cause() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cause
}

// subscribe registers fn to run once when the canceler trips and
// returns a deregistration func. If the canceler has already tripped,
// fn runs immediately and the returned func is a no-op.
func (c *Canceler) subscribe(fn func()) (unsubscribe func()) {
	c.mu.Lock()
	if c.flag.Load() {
		c.mu.Unlock()
		fn()
		return func() {}
	}
	c.subs = append(c.subs, fn)
	i := len(c.subs) - 1
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		if i < len(c.subs) {
			c.subs[i] = nil
		}
		c.mu.Unlock()
	}
}

// CancelError reports an execution stopped by an external Canceler
// before every task ran. It matches errors.Is(err, ErrCanceled) and
// unwraps to the cancellation cause.
type CancelError struct {
	// Cause is the error passed to Canceler.Cancel.
	Cause error
	// Completed and Total count the tasks that finished before the
	// workers observed the cancellation, and the tasks of the graph.
	Completed, Total int
}

// Error formats the cancellation with its progress attached.
func (e *CancelError) Error() string {
	return fmt.Sprintf("sched: execution canceled after %d of %d tasks: %v", e.Completed, e.Total, e.Cause)
}

// Unwrap exposes the cancellation cause to errors.Is/As.
func (e *CancelError) Unwrap() error { return e.Cause }

// Is matches the ErrCanceled sentinel and the module-wide cancellation
// class, independent of the cause — a deadline-canceled execution is
// both "canceled" and "deadline exceeded", and the cause chain (Unwrap)
// resolves the second half.
func (e *CancelError) Is(target error) bool {
	return target == ErrCanceled || target == luerr.ErrCanceled
}
