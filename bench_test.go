package sparselu

// One benchmark per table and figure of the paper's evaluation section.
// The benchmarks default to the reduced-order suite so `go test -bench=.`
// finishes quickly; set SPARSELU_BENCH_FULL=1 to run the full-size
// Table 1 matrices (several minutes). cmd/paperbench prints the actual
// rows/series of each table and figure.

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gplu"
	"repro/internal/matgen"
	"repro/internal/ordering"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/taskgraph"
	"repro/internal/transversal"
)

// orderingForGP builds the column permutation the Gilbert–Peierls
// baseline uses: transversal + minimum degree, composed.
func orderingForGP(a *sparse.CSC) sparse.Perm {
	tr := transversal.MaximumTransversal(a)
	return ordering.ColumnOrdering(a.PermuteRows(tr.RowPerm), ordering.MinDegreeATA)
}

func benchSuite() []matgen.Spec {
	if os.Getenv("SPARSELU_BENCH_FULL") != "" {
		return matgen.Suite()
	}
	return matgen.SmallSuite()
}

// BenchmarkTable1SymbolicFill regenerates Table 1: the structural
// pipeline (transversal, minimum degree on AᵀA, static symbolic
// factorization). The fill ratio |Ā|/|A| is reported as a metric.
func BenchmarkTable1SymbolicFill(b *testing.B) {
	for _, spec := range benchSuite() {
		b.Run(spec.Name, func(b *testing.B) {
			a := spec.Gen()
			var fill float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := core.Analyze(a, core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				fill = s.Stats.FillRatio
			}
			b.ReportMetric(fill, "fill-ratio")
		})
	}
}

// BenchmarkTable2Factorization regenerates Table 2: the parallel numeric
// factorization at P ∈ {1,2,4,8} workers (real goroutine execution,
// task-level scheduling). On a single-core host the wall time will not
// scale; the simulated Table 2 comes from cmd/paperbench.
func BenchmarkTable2Factorization(b *testing.B) {
	for _, spec := range benchSuite() {
		a := spec.Gen()
		s, err := core.Analyze(a, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/P=%d", spec.Name, p), func(b *testing.B) {
				sp := *s
				sp.Opts.Workers = p
				for i := 0; i < b.N; i++ {
					if _, err := core.FactorizeGlobal(&sp, a); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable3Supernodes regenerates Table 3: the supernode counts of
// the L/U partition without and with postordering, reported as metrics.
func BenchmarkTable3Supernodes(b *testing.B) {
	for _, spec := range benchSuite() {
		b.Run(spec.Name, func(b *testing.B) {
			a := spec.Gen()
			var sn, snpo int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				noPO := core.DefaultOptions()
				noPO.Postorder = false
				sNo, err := core.Analyze(a, noPO)
				if err != nil {
					b.Fatal(err)
				}
				sPO, err := core.Analyze(a, core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				sn, snpo = sNo.Stats.Supernodes, sPO.Stats.Supernodes
			}
			b.ReportMetric(float64(sn), "SN")
			b.ReportMetric(float64(snpo), "SNPO")
			b.ReportMetric(float64(sn)/float64(snpo), "SN/SNPO")
		})
	}
}

// BenchmarkFactorize is the end-to-end numeric-phase benchmark the
// kernel work is judged by: one analysis, repeated factorizations, the
// symbolic cost model's flops over wall time reported as GFLOPS. The
// full-size sherman3 at P ∈ {1, 4} exercises the packed Dgemm, the
// blocked Dtrsm and the blocked panel LU through the supernodal update
// path.
func BenchmarkFactorize(b *testing.B) {
	a := matgen.Sherman3()
	s, err := core.Analyze(a, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("sherman3/P=%d", p), func(b *testing.B) {
			sp := *s
			sp.Opts.Workers = p
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.FactorizeGlobal(&sp, a); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(s.Stats.TotalFlops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// benchFigure is shared by the Figure 5 and Figure 6 benchmarks: it
// simulates both task graphs on the Origin 2000 model and reports the
// improvement 1 − T(eforest)/T(S*) as a metric per processor count.
func benchFigure(b *testing.B, names []string, procs []int) {
	specs := experiments.FilterSpecs(benchSuite(), names)
	for _, spec := range specs {
		a := spec.Gen()
		s, err := core.Analyze(a, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		gS := taskgraph.New(s.BlockSym, s.BlockForest, taskgraph.SStar)
		cmS := taskgraph.NewCostModel(gS, s.BlockSym, s.Part)
		for _, p := range procs {
			b.Run(fmt.Sprintf("%s/P=%d", spec.Name, p), func(b *testing.B) {
				var imp float64
				perturb := sched.Perturb{Amplitude: 0.5, Seed: 2000}
				for i := 0; i < b.N; i++ {
					rS, err := sched.SimulateStatic(gS, cmS, sched.Origin2000(p), sched.PanelWords(gS, cmS), perturb)
					if err != nil {
						b.Fatal(err)
					}
					rE, err := sched.SimulateStatic(s.Graph, s.Costs, sched.Origin2000(p), sched.PanelWords(s.Graph, s.Costs), perturb)
					if err != nil {
						b.Fatal(err)
					}
					imp = 1 - rE.Makespan/rS.Makespan
				}
				b.ReportMetric(100*imp, "improvement-%")
			})
		}
	}
}

// BenchmarkFig5TaskGraph regenerates Figure 5 (sherman3, sherman5,
// orsreg1, goodwin).
func BenchmarkFig5TaskGraph(b *testing.B) {
	benchFigure(b, experiments.Figure5Matrices, []int{2, 4, 8})
}

// BenchmarkFig6TaskGraph regenerates Figure 6 (lns3937, lnsp3937,
// saylr4).
func BenchmarkFig6TaskGraph(b *testing.B) {
	benchFigure(b, experiments.Figure6Matrices, []int{2, 4, 8})
}

// BenchmarkAblationPostorder measures the real serial factorization
// with and without postordering — the BLAS-3 benefit of larger
// supernodes (DESIGN.md ablation 1).
func BenchmarkAblationPostorder(b *testing.B) {
	spec := benchSuite()[0]
	a := spec.Gen()
	for _, post := range []bool{false, true} {
		name := "postorder=off"
		if post {
			name = "postorder=on"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Postorder = post
			s, err := core.Analyze(a, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.FactorizeWith(s, a); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.Stats.Supernodes), "supernodes")
		})
	}
}

// BenchmarkAblationAmalgamation sweeps the supernode width cap (DESIGN
// ablation 3): wider supernodes mean fewer, bigger BLAS-3 calls but
// more explicit zeros.
func BenchmarkAblationAmalgamation(b *testing.B) {
	spec := benchSuite()[0]
	a := spec.Gen()
	for _, maxSize := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("maxsize=%d", maxSize), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Amalgamation.MaxSize = maxSize
			s, err := core.Analyze(a, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.FactorizeWith(s, a); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.Stats.Supernodes), "supernodes")
		})
	}
}

// BenchmarkAblationOrdering compares fill across ordering methods
// (DESIGN ablation 5).
func BenchmarkAblationOrdering(b *testing.B) {
	spec := benchSuite()[0]
	a := spec.Gen()
	for _, cfg := range []struct {
		name string
		ord  Ordering
	}{{"mindeg", MinDegree}, {"natural", NaturalOrder}, {"rcm", RCM}} {
		b.Run(cfg.name, func(b *testing.B) {
			m := WrapCSC(a)
			opts := DefaultOptions()
			opts.Ordering = cfg.ord
			var fill float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				an, err := Analyze(m, opts)
				if err != nil {
					b.Fatal(err)
				}
				fill = an.Stats().FillRatio
			}
			b.ReportMetric(fill, "fill-ratio")
		})
	}
}

// BenchmarkAblationSchedulers compares the owner-mapped (1-D
// block-column) simulator against task-level scheduling at P=8 (DESIGN
// ablation 4): task-level scheduling is what lets independent-subtree
// updates overlap.
func BenchmarkAblationSchedulers(b *testing.B) {
	spec := benchSuite()[0]
	a := spec.Gen()
	s, err := core.Analyze(a, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	m := sched.Origin2000(8)
	b.Run("owner-1D", func(b *testing.B) {
		var mk float64
		for i := 0; i < b.N; i++ {
			res, err := sched.Simulate(s.Graph, s.Costs, sched.BlockCyclic(s.Graph.N, 8), m, sched.PanelWords(s.Graph, s.Costs))
			if err != nil {
				b.Fatal(err)
			}
			mk = res.Makespan
		}
		b.ReportMetric(mk*1e3, "sim-ms")
	})
	b.Run("task-level", func(b *testing.B) {
		var mk float64
		for i := 0; i < b.N; i++ {
			res, err := sched.SimulateGlobal(s.Graph, s.Costs, m, sched.PanelWords(s.Graph, s.Costs))
			if err != nil {
				b.Fatal(err)
			}
			mk = res.Makespan
		}
		b.ReportMetric(mk*1e3, "sim-ms")
	})
}

// BenchmarkStructureBounds compares the dynamic (Gilbert–Peierls) fill
// against the static and column-etree bounds — the Section 3 remark
// that the column etree "substantially overestimates" the structures.
func BenchmarkStructureBounds(b *testing.B) {
	specs := benchSuite()[:2]
	var rows []experiments.BoundsRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.StructureBounds(specs)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.StaticOver, r.Name+"-static/dyn")
		b.ReportMetric(r.SuperLUOver, r.Name+"-slu/dyn")
	}
}

// BenchmarkGilbertPeierlsBaseline measures the dynamic-symbolic
// baseline factorization (SuperLU-class algorithm) for comparison with
// BenchmarkTable2Factorization.
func BenchmarkGilbertPeierlsBaseline(b *testing.B) {
	for _, spec := range benchSuite()[:3] {
		b.Run(spec.Name, func(b *testing.B) {
			a := spec.Gen()
			q := orderingForGP(a)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gplu.Factor(a, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation2DMapping compares the 1-D block-column mapping with
// the 2-D grid mapping the paper names as future work (simulated P=8).
func BenchmarkAblation2DMapping(b *testing.B) {
	spec := benchSuite()[0]
	a := spec.Gen()
	s, err := core.Analyze(a, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	m := sched.Origin2000(8)
	b.Run("1D-cyclic", func(b *testing.B) {
		var mk float64
		for i := 0; i < b.N; i++ {
			res, err := sched.Simulate(s.Graph, s.Costs, sched.BlockCyclic(s.Graph.N, 8), m, sched.PanelWords(s.Graph, s.Costs))
			if err != nil {
				b.Fatal(err)
			}
			mk = res.Makespan
		}
		b.ReportMetric(mk*1e3, "sim-ms")
	})
	b.Run("2D-4x2", func(b *testing.B) {
		owners := sched.TaskOwners2D(s.Graph, 4, 2)
		var mk float64
		for i := 0; i < b.N; i++ {
			res, err := sched.SimulateOwners(s.Graph, s.Costs, owners, m, sched.PanelWords(s.Graph, s.Costs))
			if err != nil {
				b.Fatal(err)
			}
			mk = res.Makespan
		}
		b.ReportMetric(mk*1e3, "sim-ms")
	})
}

// BenchmarkSolve measures the level-scheduled triangular-solve phase
// at P ∈ {1, 4} solve workers (single right-hand side).
func BenchmarkSolve(b *testing.B) {
	spec := benchSuite()[0]
	a := spec.Gen()
	f, err := core.Factorize(a, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, a.NCols)
	for i := range rhs {
		rhs[i] = 1
	}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("%s/P=%d", spec.Name, p), func(b *testing.B) {
			f.S.Opts.SolveWorkers = p
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Solve(rhs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveMany measures the blocked multi-RHS path (16
// right-hand sides through the BLAS-3 panel sweeps) against the
// loop-of-Solves baseline it replaces. The blocked path at P=1 versus
// the scalar loop is the headline number of the solve-engine PR.
func BenchmarkSolveMany(b *testing.B) {
	const nrhs = 16
	spec := benchSuite()[0]
	a := spec.Gen()
	f, err := core.Factorize(a, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	bs := make([][]float64, nrhs)
	for r := range bs {
		bs[r] = make([]float64, a.NCols)
		for i := range bs[r] {
			bs[r][i] = float64(r + i%5)
		}
	}
	b.Run(fmt.Sprintf("%s/loop-of-solves", spec.Name), func(b *testing.B) {
		f.S.Opts.SolveWorkers = 1
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := range bs {
				if _, err := f.Solve(bs[r]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("%s/blocked/P=%d", spec.Name, p), func(b *testing.B) {
			f.S.Opts.SolveWorkers = p
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.SolveMany(bs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
