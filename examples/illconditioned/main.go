// Production-solver workflow on a badly scaled system: equilibration,
// iterative refinement and the diagnostic surface (condition estimate,
// pivot growth, log-determinant). Chemical-engineering and circuit
// matrices routinely mix units across twelve orders of magnitude; this
// example manufactures such a system and shows the library's guard
// rails. A second act drives the solver into outright singularity and
// contrasts the two pivot policies: PivotFail reports the defect,
// PivotPerturb factors anyway and refinement recovers the accuracy.
package main

import (
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
	"repro/internal/matgen"
)

func main() {
	const n = 300
	rng := rand.New(rand.NewSource(99))

	// A banded operator whose rows are scaled by wildly different units.
	b := sparselu.NewBuilder(n)
	rowScale := make([]float64, n)
	for i := 0; i < n; i++ {
		rowScale[i] = math.Pow(10, float64(rng.Intn(13)-6)) // 1e-6 … 1e6
	}
	for i := 0; i < n; i++ {
		s := rowScale[i]
		b.Add(i, i, s*(4+rng.Float64()))
		if i > 0 {
			b.Add(i, i-1, -s*(0.5+rng.Float64()))
		}
		if i+1 < n {
			b.Add(i, i+1, -s*(0.5+rng.Float64()))
		}
		if i+7 < n {
			b.Add(i, i+7, -s*0.25*rng.Float64())
		}
	}
	m, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	truth := make([]float64, n)
	for i := range truth {
		truth[i] = math.Sin(float64(i) / 10)
	}
	rhs := m.MulVec(truth)

	for _, cfg := range []struct {
		name  string
		equil bool
	}{
		{"raw        ", false},
		{"equilibrated", true},
	} {
		opts := sparselu.DefaultOptions()
		opts.Equilibrate = cfg.equil
		f, err := sparselu.Factorize(m, opts)
		if err != nil {
			log.Fatal(err)
		}
		x, berr, steps, err := f.SolveRefined(rhs, 2, 0)
		if err != nil {
			log.Fatal(err)
		}
		maxErr := 0.0
		for i := range x {
			if d := math.Abs(x[i] - truth[i]); d > maxErr {
				maxErr = d
			}
		}
		k, _ := f.ConditionEstimate()
		fmt.Printf("%s: backward error %.2e (refined %d×), forward error %.2e, κ₁ ≈ %.2e, growth %.2f\n",
			cfg.name, berr, steps, maxErr, k, f.PivotGrowth())
	}

	nearSingular()
}

// nearSingular factors a system with an exactly zero column and two
// columns shrunk to ~1e-13·‖A‖∞ — static pivoting cannot exchange the
// zero pivot away, so the strict policy must fail. The perturbation
// policy replaces the offending pivots by ±√ε·‖A‖∞ and iterative
// refinement restores near machine precision.
func nearSingular() {
	a, zeroCol, tinyCols := matgen.NearSingular(12, 12, 5)
	m := sparselu.WrapCSC(a)
	n := m.Order()
	fmt.Printf("\nnear-singular system: n = %d, zero column %d, tiny columns %v\n", n, zeroCol, tinyCols)

	truth := make([]float64, n)
	for i := range truth {
		truth[i] = math.Cos(float64(i) / 7)
	}
	rhs := m.MulVec(truth)

	// Strict policy: the defect is reported, not papered over.
	f, err := sparselu.Factorize(m, sparselu.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Solve(rhs); errors.Is(err, sparselu.ErrSingular) {
		fmt.Printf("PivotFail   : %v\n", err)
	}

	// Perturbation policy: factor anyway, then refine.
	opts := sparselu.DefaultOptions()
	opts.PivotPolicy = sparselu.PivotPerturb
	f, err = sparselu.Factorize(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	_, berr, steps, err := f.SolveRefined(rhs, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PivotPerturb: %d pivots perturbed at columns %v (threshold %.2e)\n",
		f.PivotPerturbations(), f.PerturbedColumns(), f.PivotThreshold())
	fmt.Printf("              backward error %.2e after %d refinement steps\n", berr, steps)
}
