// Oil-reservoir simulation scenario: the workload class behind four of
// the paper's seven benchmark matrices (sherman3/5, orsreg1, saylr4).
//
// A fully implicit reservoir simulator solves, at every Newton step of
// every time step, a sparse unsymmetric system whose *structure* is
// fixed by the grid while the *values* change. That split is exactly
// what the static analysis pipeline is for: analyze once, then run only
// the numeric factorization per step.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
	"repro/internal/matgen"
)

func main() {
	// A 3-D reservoir operator in the orsreg1 class (21×21×5 grid would
	// be the full-size benchmark; this demo uses a lighter grid through
	// the small suite so it runs in milliseconds).
	var m *sparselu.Matrix
	for _, spec := range matgen.SmallSuite() {
		if spec.Name == "orsreg-s" {
			m = sparselu.WrapCSC(spec.Gen())
		}
	}
	n := m.Order()
	fmt.Printf("reservoir operator: n = %d, nnz = %d\n", n, m.NNZ())

	// One structural analysis for the whole simulation.
	opts := sparselu.DefaultOptions()
	opts.Workers = 4
	t0 := time.Now()
	analysis, err := sparselu.Analyze(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	st := analysis.Stats()
	fmt.Printf("analysis in %v: fill ratio %.1f, %d supernodes, %d tasks\n",
		time.Since(t0).Round(time.Millisecond), st.FillRatio, st.Supernodes, st.Tasks)

	// The postordering effect the paper measures in Table 3: strict
	// supernode count with this analysis vs one without postordering.
	noPO := *opts
	noPO.Postorder = false
	aNoPO, err := sparselu.Analyze(m, &noPO)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("supernodes without postordering: %d, with: %d (%.0f%% fewer)\n",
		aNoPO.Stats().Supernodes, st.Supernodes,
		100*(1-float64(st.Supernodes)/float64(aNoPO.Stats().Supernodes)))

	// Time-stepping loop: same structure, changing values (compressibility
	// and mobility terms move with the pressure field).
	rng := rand.New(rand.NewSource(7))
	pressure := make([]float64, n)
	for i := range pressure {
		pressure[i] = 200 + 10*rng.Float64() // bar
	}
	for step := 1; step <= 5; step++ {
		// Values drift a little every step; the structure is unchanged.
		drift := 1 + 0.02*float64(step)
		stepMatrix := m.Scale(drift)

		f, err := analysis.Factorize(stepMatrix)
		if err != nil {
			log.Fatalf("step %d: %v", step, err)
		}
		rhs := stepMatrix.MulVec(pressure) // manufactured solution
		x, err := f.Solve(rhs)
		if err != nil {
			log.Fatalf("step %d: %v", step, err)
		}
		fmt.Printf("step %d: backward error %.3g\n", step, sparselu.Residual(stepMatrix, x, rhs))
		// Feed the solution forward like a simulator would.
		copy(pressure, x)
	}
}
