// Task-graph anatomy: builds both dependence graphs for a benchmark
// matrix and reports the structural quantities behind the paper's
// Figures 5–6 — edges, the weighted critical path, the available
// parallelism, and the simulated Origin 2000 makespans at P = 2…8.
//
// This example uses the internal packages directly (it ships inside the
// module); library users get the same numbers through
// sparselu.Analysis.Stats.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

func main() {
	var spec matgen.Spec
	for _, s := range matgen.SmallSuite() {
		if s.Name == "goodwin-s" {
			spec = s
		}
	}
	a := spec.Gen()
	fmt.Printf("%s: n = %d, nnz = %d\n\n", spec.Name, a.NCols, a.NNZ())

	s, err := core.Analyze(a, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("supernode blocks: %d, structurally nonzero blocks: %d\n\n",
		s.Stats.Blocks, s.Stats.BlockNNZ)

	for _, variant := range []taskgraph.Variant{taskgraph.SStar, taskgraph.EForest} {
		g := taskgraph.New(s.BlockSym, s.BlockForest, variant)
		cm := taskgraph.NewCostModel(g, s.BlockSym, s.Part)
		cp, total, err := g.CriticalPath(cm.TaskFlops)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s graph:\n", variant)
		fmt.Printf("  %d tasks, %d edges\n", g.NumTasks(), g.NumEdges)
		fmt.Printf("  total work %.3g flops, critical path %.3g flops, avg parallelism %.2f\n",
			total, cp, total/cp)
		for _, p := range []int{2, 4, 8} {
			res, err := sched.SimulateStatic(g, cm, sched.Origin2000(p),
				sched.PanelWords(g, cm), sched.Perturb{Amplitude: 0.5, Seed: 2000})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  simulated Origin 2000, P=%d: %.4fs (efficiency %.0f%%)\n",
				p, res.Makespan, 100*res.Efficiency())
		}
		fmt.Println()
	}
}
