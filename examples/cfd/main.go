// Fluid-flow scenario (the lns3937/lnsp3937 class): a linearized
// Navier-Stokes operator with strong convection, structurally
// unsymmetric — the case where unsymmetric-aware static symbolic
// factorization matters most. The example compares the paper's eforest
// task dependence graph against the S* baseline on the same matrix and
// shows that both produce the identical factorization.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro"
	"repro/internal/matgen"
)

func main() {
	var m *sparselu.Matrix
	for _, spec := range matgen.SmallSuite() {
		if spec.Name == "lnsp-s" {
			m = sparselu.WrapCSC(spec.Gen())
		}
	}
	fmt.Printf("convection–diffusion operator: n = %d, nnz = %d (pattern-unsymmetric)\n",
		m.Order(), m.NNZ())

	rhs := make([]float64, m.Order())
	for i := range rhs {
		rhs[i] = math.Sin(float64(i))
	}

	var solutions [][]float64
	for _, cfg := range []struct {
		name  string
		graph sparselu.TaskGraph
	}{
		{"S* baseline ", sparselu.SStarGraph},
		{"eforest (new)", sparselu.EForestGraph},
	} {
		opts := sparselu.DefaultOptions()
		opts.TaskGraph = cfg.graph
		opts.Workers = 4
		a, err := sparselu.Analyze(m, opts)
		if err != nil {
			log.Fatal(err)
		}
		st := a.Stats()
		t0 := time.Now()
		f, err := a.Factorize(m)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		x, err := f.Solve(rhs)
		if err != nil {
			log.Fatal(err)
		}
		solutions = append(solutions, x)
		fmt.Printf("%s: %5d edges, factor %8v, backward error %.3g\n",
			cfg.name, st.Edges, elapsed.Round(time.Microsecond), sparselu.Residual(m, x, rhs))
	}

	// Both graphs order the same numerical operations, so the results
	// agree bitwise.
	maxDiff := 0.0
	for i := range solutions[0] {
		if d := math.Abs(solutions[0][i] - solutions[1][i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |x_sstar − x_eforest| = %g (bitwise deterministic)\n", maxDiff)
}
