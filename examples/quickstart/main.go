// Quickstart: build a small sparse system, factorize it with the
// paper's pipeline, and solve.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A small unsymmetric system:
	//   4x₀ +  x₁        = 9
	//   2x₀ + 5x₁ +  x₂  = 19
	//          3x₁ + 6x₂ = 24
	b := sparselu.NewBuilder(3)
	b.Add(0, 0, 4)
	b.Add(0, 1, 1)
	b.Add(1, 0, 2)
	b.Add(1, 1, 5)
	b.Add(1, 2, 1)
	b.Add(2, 1, 3)
	b.Add(2, 2, 6)
	m, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// nil options = the paper's defaults: minimum degree on AᵀA,
	// postordered LU elimination forest, eforest task graph.
	f, err := sparselu.Factorize(m, nil)
	if err != nil {
		log.Fatal(err)
	}

	rhs := []float64{9, 19, 24}
	x, err := f.Solve(rhs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solution: %.4f\n", x)
	fmt.Printf("backward error: %.3g\n", sparselu.Residual(m, x, rhs))
}
