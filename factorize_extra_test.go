package sparselu

import (
	"math"
	"testing"
)

func TestPublicSolveTranspose(t *testing.T) {
	m := buildRandom(t, 30, 0.12, 41)
	f, err := Factorize(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 30)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	// b = Aᵀx via (Aᵀ)·x = columns dot x.
	b := make([]float64, 30)
	for j := 0; j < 30; j++ {
		var s float64
		for i := 0; i < 30; i++ {
			s += m.At(i, j) * x[i]
		}
		b[j] = s
	}
	got, err := f.SolveTranspose(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], x[i])
		}
	}
}

func TestPublicSolveRefined(t *testing.T) {
	m := buildRandom(t, 25, 0.15, 42)
	f, err := Factorize(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 25)
	for i := range b {
		b[i] = 1
	}
	x, berr, steps, err := f.SolveRefined(b, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if berr > 1e-13 || steps > 3 {
		t.Fatalf("berr %g steps %d", berr, steps)
	}
	if r := Residual(m, x, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}

func TestPublicConditionEstimate(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 2)
	b.Add(1, 1, 2)
	b.Add(2, 2, 2)
	m, _ := b.Build()
	f, err := Factorize(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	k, err := f.ConditionEstimate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-1) > 1e-12 {
		t.Fatalf("κ(2I) = %g, want 1", k)
	}
}

func TestPublicLogDetAndGrowth(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 3)
	b.Add(1, 1, 4)
	m, _ := b.Build()
	f, err := Factorize(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	sign, logAbs := f.LogDet()
	if sign != 1 || math.Abs(logAbs-math.Log(12)) > 1e-12 {
		t.Fatalf("logdet = (%g, %g), want (1, log 12)", sign, logAbs)
	}
	if g := f.PivotGrowth(); math.Abs(g-1) > 1e-12 {
		t.Fatalf("growth of diagonal matrix = %g, want 1", g)
	}
}
