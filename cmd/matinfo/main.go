// Command matinfo prints the structural analysis of a sparse matrix:
// static symbolic fill, the LU elimination forest, the effect of
// postordering, the supernode partition and both task dependence graphs.
//
// Usage:
//
//	matinfo -gen sherman3            # a generated benchmark matrix
//	matinfo -matrix system.mtx       # a MatrixMarket file
//	matinfo -example                 # the paper's 7×7 worked example
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/etree"
	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/supernode"
	"repro/internal/symbolic"
	"repro/internal/taskgraph"
)

func main() {
	var (
		matrixPath = flag.String("matrix", "", "MatrixMarket file")
		gen        = flag.String("gen", "", "generated benchmark matrix name")
		example    = flag.Bool("example", false, "walk through the paper's worked example")
		spy        = flag.Bool("spy", false, "print ASCII density plots of A and of the factored structure Ā")
	)
	flag.Parse()

	if *example {
		runExample()
		return
	}
	var a *sparse.CSC
	var name string
	switch {
	case *matrixPath != "":
		f, err := os.Open(*matrixPath)
		if err != nil {
			fatalf("%v", err)
		}
		var rerr error
		a, rerr = sparse.ReadMatrixMarket(f)
		f.Close()
		if rerr != nil {
			fatalf("%v", rerr)
		}
		name = *matrixPath
	case *gen != "":
		for _, spec := range append(matgen.Suite(), matgen.SmallSuite()...) {
			if spec.Name == *gen {
				a = spec.Gen()
				name = spec.Name
				break
			}
		}
		if a == nil {
			fatalf("unknown generator %q", *gen)
		}
	default:
		fatalf("need -matrix, -gen or -example")
	}

	report(name, a)
	if *spy {
		fmt.Println("structure of A:")
		fmt.Print(spyPlot(sparse.PatternOf(a), 60))
		opts := core.DefaultOptions()
		s, err := core.Analyze(a, opts)
		if err != nil {
			fatalf("%v", err)
		}
		full := s.Sym.L.ToCSC(1)
		ut := s.Sym.U.ToCSC(1)
		merged := sparse.NewTriplet(a.NCols, a.NCols)
		for j := 0; j < a.NCols; j++ {
			rows, _ := full.Col(j)
			for _, i := range rows {
				merged.Add(i, j, 1)
			}
			urows, _ := ut.Col(j)
			for _, i := range urows {
				merged.Add(i, j, 1)
			}
		}
		fmt.Println("structure of Abar (after transversal, minimum degree and postordering):")
		fmt.Print(spyPlot(sparse.PatternOf(merged.ToCSC()), 60))
	}
}

// spyPlot renders the density of an n×n pattern as a width×width ASCII
// grid: ' ' empty, '.' sparse, ':' denser, '#' dense.
func spyPlot(p *sparse.Pattern, width int) string {
	n := p.NCols
	if n < width {
		width = n
	}
	cell := make([][]int, width)
	for i := range cell {
		cell[i] = make([]int, width)
	}
	for j := 0; j < n; j++ {
		cj := j * width / n
		for _, i := range p.Col(j) {
			cell[i*width/n][cj]++
		}
	}
	area := float64(n) * float64(n) / float64(width) / float64(width)
	var b strings.Builder
	for _, row := range cell {
		for _, c := range row {
			frac := float64(c) / area
			switch {
			case c == 0:
				b.WriteByte(' ')
			case frac < 0.05:
				b.WriteByte('.')
			case frac < 0.25:
				b.WriteByte(':')
			default:
				b.WriteByte('#')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func report(name string, a *sparse.CSC) {
	fmt.Printf("%s: %d×%d, %d nonzeros\n\n", name, a.NRows, a.NCols, a.NNZ())

	for _, post := range []bool{false, true} {
		opts := core.DefaultOptions()
		opts.Postorder = post
		s, err := core.Analyze(a, opts)
		if err != nil {
			fatalf("analysis: %v", err)
		}
		st := s.Stats
		label := "without postordering"
		if post {
			label = "with postordering"
		}
		fmt.Printf("%s:\n", label)
		fmt.Printf("  |Abar| = %d (fill ratio %.1f)\n", st.NNZFactors, st.FillRatio)
		fmt.Printf("  eforest trees = %d\n", st.NumTrees)
		fmt.Printf("  supernodes: strict %d, final %d (split +%d)\n",
			st.StrictSN, st.Supernodes, st.SplitBlocks)
		fmt.Printf("  panels: %d blocks, avg width %.1f, max width %d\n",
			s.Part.NumBlocks(), st.AvgBlockWidth, st.MaxBlockWidth)
		fmt.Printf("  explicit zeros: %d (%.2f%% of stored factor entries)\n",
			st.ExplicitZeros, 100*st.ExplicitZeroRatio)
		for _, variant := range []taskgraph.Variant{taskgraph.SStar, taskgraph.EForest} {
			g := taskgraph.New(s.BlockSym, s.BlockForest, variant)
			cm := taskgraph.NewCostModel(g, s.BlockSym, s.Part)
			cp, total, err := g.CriticalPath(cm.TaskFlops)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("  %-8s graph: %d tasks, %d edges, avg parallelism %.1f\n",
				variant, g.NumTasks(), g.NumEdges, total/cp)
		}
		fmt.Println()
	}
}

// runExample reproduces the paper's Figures 1–4 flow on the 7×7 example
// used throughout the test suite.
func runExample() {
	t := sparse.NewTriplet(7, 7)
	entries := [][2]int{
		{0, 0}, {0, 3}, {1, 1}, {1, 4}, {2, 2}, {2, 5},
		{3, 0}, {3, 3}, {3, 6}, {4, 1}, {4, 4}, {4, 6},
		{5, 2}, {5, 5}, {5, 6}, {6, 3}, {6, 4}, {6, 5}, {6, 6},
	}
	for k, e := range entries {
		t.Add(e[0], e[1], float64(k+1))
	}
	a := t.ToCSC()
	fmt.Println("Matrix A (the worked example, cf. the paper's Figure 1):")
	fmt.Println(a)

	sym, err := symbolic.Factor(a)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("Static symbolic factorization: |Abar| = %d (fill ratio %.2f)\n\n", sym.NNZ(), sym.FillRatio(a.NNZ()))

	f := etree.LUForest(sym)
	fmt.Println("LU elimination forest (Definition 1): parent vector")
	for j, p := range f.Parent {
		if p == etree.None {
			fmt.Printf("  parent(%d) = — (root)\n", j)
		} else {
			fmt.Printf("  parent(%d) = %d\n", j, p)
		}
	}
	fmt.Println()

	po := etree.PostorderSymbolic(sym, f)
	fmt.Printf("Postorder permutation (Section 3): %v\n", []int(po.Perm))
	ranges := po.Forest.TreeRanges()
	fmt.Printf("Block upper triangular diagonal ranges: %v\n\n", ranges)

	part := supernode.StrictPartition(po.Sym)
	fmt.Printf("L/U supernodes after postordering: %d blocks, starts %v\n\n", part.NumBlocks(), part.BlockStart)

	blockSym, err := symbolic.Factor(supernode.BlockPattern(po.Sym, part).ToCSC(1))
	if err != nil {
		fatalf("%v", err)
	}
	bf := etree.LUForest(blockSym)
	for _, variant := range []taskgraph.Variant{taskgraph.SStar, taskgraph.EForest} {
		g := taskgraph.New(blockSym, bf, variant)
		fmt.Printf("%s task dependence graph (cf. Figure 4): %d tasks, %d edges\n", variant, g.NumTasks(), g.NumEdges)
		for id, succ := range g.Succ {
			if len(succ) == 0 {
				continue
			}
			fmt.Printf("  %-8v →", g.Tasks[id])
			for _, s := range succ {
				fmt.Printf(" %v", g.Tasks[s])
			}
			fmt.Println()
		}
		cp, total, _ := g.CriticalPath(nil)
		fmt.Printf("  unit critical path %g of %g tasks\n\n", cp, total)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "matinfo: "+format+"\n", args...)
	os.Exit(1)
}
