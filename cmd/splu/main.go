// Command splu factorizes a sparse matrix and solves a linear system
// with it, reporting the structural statistics and the backward error.
//
// Usage:
//
//	splu -matrix system.mtx            # MatrixMarket file
//	splu -gen sherman3                 # generated benchmark matrix
//	splu -workers 4 -taskgraph sstar -postorder=false
//	splu -rhs ones                     # ones | index | random
//	splu -pivot perturb -refine 3      # factor near-singular systems
//	splu -fastmath -refine 1           # relaxed (non-bitwise) kernels
//	splu -fillratio 0.4 -maxsupernode 48
//
// Without -matrix or -gen, a small built-in example runs.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro"
	"repro/internal/matgen"
	"repro/internal/trace"
)

func main() {
	var (
		matrixPath = flag.String("matrix", "", "MatrixMarket file to factor")
		gen        = flag.String("gen", "", "generate a benchmark matrix (sherman3, sherman5, lnsp3937, lns3937, orsreg1, saylr4, goodwin)")
		workers    = flag.Int("workers", 1, "parallel workers for the numeric phase")
		solveWork  = flag.Int("solveworkers", 0, "parallel workers for the triangular solves (0 inherits -workers)")
		anaWork    = flag.Int("analyzeworkers", 0, "parallel workers for the analysis pipeline (<2 keeps it serial; output is identical at every count)")
		postorder  = flag.Bool("postorder", true, "postorder the LU elimination forest")
		taskGraph  = flag.String("taskgraph", "eforest", "task dependence graph: eforest or sstar")
		ordFlag    = flag.String("ordering", "mindeg", "fill-reducing ordering: mindeg, natural or rcm")
		rhs        = flag.String("rhs", "ones", "right-hand side: ones, index or random")
		maxSN      = flag.Int("maxsupernode", 32, "load-balance split threshold for supernode panels")
		fillRatio  = flag.Float64("fillratio", 0.25, "explicit-zero fraction a supernode merge may introduce (negative = default)")
		fastMath   = flag.Bool("fastmath", false, "relaxed kernel mode: FMA + reordered accumulation, error-bounded but not bitwise reproducible")
		equil      = flag.Bool("equilibrate", false, "scale rows/columns to unit maxima before factoring")
		refine     = flag.Int("refine", 0, "iterative refinement steps")
		diagnose   = flag.Bool("diagnose", false, "report condition estimate, pivot growth and log-determinant")
		verifyInv  = flag.Bool("verify", false, "machine-check the structural invariants (Theorems 1-4) during analysis")
		tracePath  = flag.String("trace", "", "record the numeric phase and write Chrome trace_event JSON to this file (open in chrome://tracing or ui.perfetto.dev)")
		pivot      = flag.String("pivot", "fail", "zero-pivot policy: fail (report singularity) or perturb (replace tiny pivots by ±√ε·‖A‖∞, recover with -refine)")
		timeout    = flag.Duration("timeout", 0, "abort the numeric phase after this duration (0 = no limit)")
	)
	flag.Parse()

	m, name, err := loadMatrix(*matrixPath, *gen)
	if err != nil {
		fatalf("%v", err)
	}

	opts := sparselu.DefaultOptions()
	opts.Workers = *workers
	opts.SolveWorkers = *solveWork
	opts.AnalyzeWorkers = *anaWork
	opts.Postorder = *postorder
	opts.MaxSupernode = *maxSN
	opts.AmalgamationFill = *fillRatio
	opts.FastMath = *fastMath
	opts.Equilibrate = *equil
	opts.Verify = *verifyInv
	var rec *trace.Recorder
	if *tracePath != "" {
		// Size the recorder for whichever phase uses more workers so
		// the solve sweeps are recorded too.
		traceWorkers := *workers
		if sw := *solveWork; sw > traceWorkers {
			traceWorkers = sw
		}
		rec = trace.New(traceWorkers)
		opts.Trace = rec
	}
	opts.Timeout = *timeout
	switch *pivot {
	case "fail":
		opts.PivotPolicy = sparselu.PivotFail
	case "perturb":
		opts.PivotPolicy = sparselu.PivotPerturb
	default:
		fatalf("unknown -pivot %q", *pivot)
	}
	switch *taskGraph {
	case "eforest":
		opts.TaskGraph = sparselu.EForestGraph
	case "sstar":
		opts.TaskGraph = sparselu.SStarGraph
	default:
		fatalf("unknown -taskgraph %q", *taskGraph)
	}
	switch *ordFlag {
	case "mindeg":
		opts.Ordering = sparselu.MinDegree
	case "natural":
		opts.Ordering = sparselu.NaturalOrder
	case "rcm":
		opts.Ordering = sparselu.RCM
	default:
		fatalf("unknown -ordering %q", *ordFlag)
	}

	fmt.Printf("matrix %s: order %d, nnz %d\n", name, m.Order(), m.NNZ())

	analysis, err := sparselu.Analyze(m, opts)
	if err != nil {
		fatalf("analysis: %v", err)
	}
	st := analysis.Stats()
	tAnalyze := time.Duration(st.AnalyzeSeconds * float64(time.Second))
	fmt.Printf("analysis (%v, %d workers):\n", tAnalyze.Round(time.Millisecond), max(*anaWork, 1))
	if stages := analysis.Symbolic().StageSeconds; len(stages) > 0 {
		// Per-stage breakdown is recorded only when tracing is on.
		for _, sg := range stages {
			fmt.Printf("  stage %-28s %v\n", sg.Name,
				time.Duration(sg.Seconds*float64(time.Second)).Round(time.Microsecond))
		}
	}
	fmt.Printf("  |Abar| = %d (fill ratio %.1f)\n", st.FactorNNZ, st.FillRatio)
	fmt.Printf("  supernodes = %d (strict %d, split +%d), diagonal blocks = %d\n",
		st.Supernodes, st.StrictSupernodes, st.SplitBlocks, st.DiagonalBlocks)
	fmt.Printf("  panel width max %d avg %.1f, explicit zeros %d (%.1f%% of stored entries)\n",
		st.MaxBlockWidth, st.AvgBlockWidth, st.ExplicitZeros, 100*st.ExplicitZeroRatio)
	fmt.Printf("  tasks = %d, edges = %d, est. flops = %.3g, critical path = %.3g flops\n",
		st.Tasks, st.Edges, st.TotalFlops, st.CriticalPathFlops)

	t0 := time.Now()
	f, err := analysis.Factorize(m)
	if err != nil {
		fatalf("factorization: %v", err)
	}
	tFactor := time.Since(t0)
	mode := "bitwise"
	if *fastMath {
		mode = "fastmath"
	}
	fmt.Printf("numeric factorization (%d workers, %s kernels): %v\n", *workers, mode, tFactor.Round(time.Millisecond))
	if f.Singular() {
		fatalf("matrix is numerically singular (first zero pivot at column %d); retry with -pivot=perturb -refine=3", f.SingularColumn())
	}
	if np := f.PivotPerturbations(); np > 0 {
		fmt.Printf("pivot perturbations: %d (threshold %.3g); use -refine to recover accuracy\n", np, f.PivotThreshold())
	}

	b := makeRHS(*rhs, m.Order())
	t0 = time.Now()
	var x []float64
	if *refine > 0 {
		var berr float64
		var steps int
		x, berr, steps, err = f.SolveRefined(b, *refine, 0)
		if err != nil {
			fatalf("solve: %v", err)
		}
		fmt.Printf("triangular solves + %d refinement steps: %v (backward error %.3g)\n",
			steps, time.Since(t0).Round(time.Microsecond), berr)
	} else {
		x, err = f.Solve(b)
		if err != nil {
			fatalf("solve: %v", err)
		}
		fmt.Printf("triangular solves: %v\n", time.Since(t0).Round(time.Microsecond))
	}
	fmt.Printf("backward error: %.3g\n", sparselu.Residual(m, x, b))

	// The trace is reported after the solve so the solveL/solveU sweep
	// events land in the same file as the factorization tasks.
	if rec != nil {
		if err := reportTrace(*tracePath, rec, analysis); err != nil {
			fatalf("trace: %v", err)
		}
	}

	if *diagnose {
		if k, err := f.ConditionEstimate(); err == nil {
			fmt.Printf("condition estimate κ₁(A) ≈ %.3g\n", k)
		}
		fmt.Printf("pivot growth: %.3g\n", f.PivotGrowth())
		sign, logAbs := f.LogDet()
		fmt.Printf("log|det A| = %.6g (sign %+g)\n", logAbs, sign)
		if cols := f.PerturbedColumns(); len(cols) > 0 {
			fmt.Printf("perturbed pivot columns: %v\n", cols)
		}
	}
}

// reportTrace writes the Chrome trace file and prints the realized
// schedule summary: makespan, per-worker utilization, per-kind totals,
// and the realized critical path next to the analysis's prediction.
func reportTrace(path string, rec *trace.Recorder, analysis *sparselu.Analysis) error {
	events := rec.Events()
	g := analysis.Symbolic().Graph
	name := func(e trace.Event) string {
		if e.Task >= 0 && int(e.Task) < len(g.Tasks) {
			return g.Tasks[e.Task].String()
		}
		return e.Kind.String()
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := trace.WriteChromeTrace(out, events, rec.Workers(), name); err != nil {
		return err
	}

	s := trace.Summarize(events, rec.Workers())
	fmt.Printf("trace (%d events) written to %s\n", s.Events, path)
	fmt.Printf("  makespan %v, realized parallelism %.2f\n",
		time.Duration(s.Makespan).Round(time.Microsecond), s.Parallelism)
	for _, ws := range s.WorkerStats {
		fmt.Printf("  worker %d: %d tasks, busy %v (%.0f%%), longest idle %v\n",
			ws.Worker, ws.Tasks, time.Duration(ws.Busy).Round(time.Microsecond),
			100*ws.Utilization, time.Duration(ws.LongestIdle).Round(time.Microsecond))
	}
	for _, ks := range s.KindStats {
		fmt.Printf("  %s: %d events, total %v, min %v, max %v\n",
			ks.Kind, ks.Count, time.Duration(ks.Total).Round(time.Microsecond),
			time.Duration(ks.Min).Round(time.Microsecond), time.Duration(ks.Max).Round(time.Microsecond))
	}
	cp, cpTasks, err := trace.RealizedCriticalPath(events, g.Succ)
	if err != nil {
		return err
	}
	predicted, _, err := g.CriticalPathTasks(analysis.Symbolic().Costs.TaskFlops)
	if err != nil {
		return err
	}
	fmt.Printf("  realized critical path %v over %d tasks (predicted path: %d tasks)\n",
		time.Duration(cp).Round(time.Microsecond), len(cpTasks), len(predicted))
	return nil
}

func loadMatrix(path, gen string) (*sparselu.Matrix, string, error) {
	switch {
	case path != "" && gen != "":
		return nil, "", fmt.Errorf("use either -matrix or -gen, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		m, err := sparselu.ReadMatrixMarket(f)
		return m, path, err
	case gen != "":
		for _, spec := range append(matgen.Suite(), matgen.SmallSuite()...) {
			if spec.Name == gen {
				return sparselu.WrapCSC(spec.Gen()), gen, nil
			}
		}
		return nil, "", fmt.Errorf("unknown generator %q", gen)
	default:
		// Small built-in demo system.
		b := sparselu.NewBuilder(4)
		b.Add(0, 0, 4)
		b.Add(0, 2, 1)
		b.Add(1, 1, 5)
		b.Add(1, 3, 2)
		b.Add(2, 0, 1)
		b.Add(2, 2, 6)
		b.Add(3, 1, 1)
		b.Add(3, 3, 7)
		m, err := b.Build()
		return m, "builtin-demo", err
	}
}

func makeRHS(kind string, n int) []float64 {
	b := make([]float64, n)
	switch kind {
	case "ones":
		for i := range b {
			b[i] = 1
		}
	case "index":
		for i := range b {
			b[i] = float64(i + 1)
		}
	case "random":
		rng := rand.New(rand.NewSource(1))
		for i := range b {
			b[i] = rng.NormFloat64()
		}
	default:
		fatalf("unknown -rhs %q", kind)
	}
	return b
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "splu: "+format+"\n", args...)
	os.Exit(1)
}
