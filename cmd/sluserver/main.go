// Command sluserver runs the long-lived sparse LU solve service: an
// HTTP daemon that amortizes one symbolic analysis over many numeric
// factorizations and solves of the same sparsity pattern — the
// serving-side realization of the paper's static-pipeline economics.
//
// Quickstart:
//
//	sluserver -addr :8080 &
//	curl -s localhost:8080/v1/factorize -d '{"matrix":{"n":2,"rows":[0,1,0],"cols":[0,1,1],"vals":[4,3,1]}}'
//	curl -s localhost:8080/v1/solve -d '{"fid":"f1","b":[5,3]}'
//
// Deterministic request faults for chaos testing come from the
// SLUSERVER_FAULTS environment variable, e.g.
//
//	SLUSERVER_FAULTS="3:panic,5:delay=50ms,9:nan" sluserver -addr :0
//
// The daemon drains gracefully on SIGINT/SIGTERM: readiness flips to
// 503, in-flight requests finish (bounded by their deadlines), pending
// solve batches flush, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sluserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "numeric workers per request (0 = auto)")
		inFlight    = flag.Int("inflight", 0, "concurrent compute slots (0 = auto)")
		maxQueue    = flag.Int("queue", 0, "admission queue length (0 = auto)")
		cacheSize   = flag.Int("cache", 0, "symbolic cache entries (0 = default)")
		storeSize   = flag.Int("store", 0, "factorization store entries (0 = default)")
		deadline    = flag.Duration("deadline", 0, "default per-request deadline (0 = 30s)")
		maxDeadline = flag.Duration("max-deadline", 0, "hard per-request deadline cap (0 = 2m)")
		batchWindow = flag.Duration("batch-window", 0, "solve batching window (0 = 2ms)")
		batchMax    = flag.Int("batch-max", 0, "solve batch size cap (0 = 16)")
		drainWait   = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	faults, err := faultinject.ParseRequestPlan(os.Getenv("SLUSERVER_FAULTS"))
	if err != nil {
		return err
	}
	if faults.Planned() > 0 {
		fmt.Fprintf(os.Stderr, "sluserver: chaos mode: %d request faults planned\n", faults.Planned())
	}

	srv := server.New(server.Config{
		Workers:         *workers,
		MaxInFlight:     *inFlight,
		MaxQueue:        *maxQueue,
		CacheEntries:    *cacheSize,
		StoreEntries:    *storeSize,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		BatchWindow:     *batchWindow,
		BatchMax:        *batchMax,
		Faults:          faults,
	})
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Bind before serving so "-addr :0" (pick any free port) reports the
	// real address — the smoke harness in check.sh scrapes this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sluserver: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		errc <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "sluserver: draining")
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
