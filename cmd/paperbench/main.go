// Command paperbench regenerates every table and figure of the paper's
// evaluation section (Cosnard & Grigori, IPPS 2000).
//
// Usage:
//
//	paperbench -all                 # everything, full-size matrices
//	paperbench -table 1             # one table (1, 2 or 3)
//	paperbench -figure 5            # one figure (5 or 6)
//	paperbench -small               # reduced-order suite (quick)
//	paperbench -mode real           # wall-clock on this host instead of
//	                                # the Origin 2000 simulator
//	paperbench -procs 1,2,4,8,16    # processor counts for table 2
//	paperbench -ablation            # the DESIGN.md ablation studies
//	paperbench -bench BENCH_small.json -small
//	                                # machine-readable benchmark report
//	                                # (wall time, realized critical path,
//	                                # per-worker utilization)
//	paperbench -bench out.json -small -compare BENCH_small.json
//	                                # fail if wall time regressed >25%
//
// The default mode is the deterministic discrete-event simulator with an
// Origin 2000 machine model; see DESIGN.md for why that substitution
// preserves the paper's comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/matgen"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate table 1, 2 or 3")
		figure   = flag.Int("figure", 0, "regenerate figure 5 or 6")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		smallSz  = flag.Bool("small", false, "use the reduced-order suite")
		modeStr  = flag.String("mode", "sim", "timing mode: sim (Origin 2000 simulator) or real (wall clock)")
		procsStr = flag.String("procs", "1,2,4,8", "processor counts")
		ablation = flag.Bool("ablation", false, "run the ablation studies from DESIGN.md")

		benchOut   = flag.String("bench", "", "run the real-execution benchmark suite and write BENCH JSON to this file")
		reps       = flag.Int("reps", 3, "benchmark repetitions per configuration (the fastest is reported)")
		compare    = flag.String("compare", "", "with -bench: compare against this baseline JSON and fail on regression")
		tolerance  = flag.Float64("tolerance", 0.25, "with -compare: allowed fractional wall-time regression")
		utilFloor  = flag.Float64("utilfloor", 0.95, "with -bench: mean-utilization floor committed into the report; when set explicitly with -compare, overrides the baseline's floor")
		benchTrace = flag.String("benchtrace", "", "with -bench: write a Chrome trace of one benchmark run to this file")
		tuneOut    = flag.String("autotunereport", "", "with -bench: write the analyze-time tile autotuner's choices (probed cache sizes, selected MC/KC/NC/NB) as JSON to this file")
	)
	flag.Parse()

	mode := experiments.Sim
	switch *modeStr {
	case "sim":
	case "real":
		mode = experiments.Real
	default:
		fatalf("unknown -mode %q (want sim or real)", *modeStr)
	}
	procs, err := parseProcs(*procsStr)
	if err != nil {
		fatalf("%v", err)
	}
	specs := matgen.Suite()
	suite := "full"
	if *smallSz {
		specs = matgen.SmallSuite()
		suite = "small"
	}

	if *benchOut != "" {
		report, err := runBench(specs, suite, procs, *reps, *benchOut, *benchTrace, *utilFloor)
		if err != nil {
			fatalf("bench: %v", err)
		}
		fmt.Printf("bench: %d entries (%s suite, procs %v, %d reps) written to %s\n",
			len(report.Entries), suite, procs, *reps, *benchOut)
		if *tuneOut != "" {
			if err := writeAutotuneReport(*tuneOut); err != nil {
				fatalf("bench: autotune report: %v", err)
			}
			fmt.Printf("bench: autotune report written to %s\n", *tuneOut)
		}
		if *compare != "" {
			// The gate uses the baseline's committed floor; an explicit
			// -utilfloor on the command line overrides it (the default
			// value only seeds new reports).
			override := 0.0
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "utilfloor" {
					override = *utilFloor
				}
			})
			if err := compareBench(report, *compare, *tolerance, override); err != nil {
				fatalf("bench: %v", err)
			}
		}
		return
	}

	if !*all && *table == 0 && *figure == 0 && !*ablation {
		*all = true
	}

	if *all || *table == 1 {
		rows, err := experiments.Table1(specs)
		if err != nil {
			fatalf("table 1: %v", err)
		}
		fmt.Print(experiments.FormatTable1(rows))
		fmt.Println()
	}
	if *all || *table == 2 {
		rows, err := experiments.Table2(specs, procs, mode)
		if err != nil {
			fatalf("table 2: %v", err)
		}
		fmt.Print(experiments.FormatTable2(rows, mode))
		fmt.Println()
	}
	if *all || *table == 3 {
		rows, err := experiments.Table3(specs)
		if err != nil {
			fatalf("table 3: %v", err)
		}
		fmt.Print(experiments.FormatTable3(rows))
		fmt.Println()
	}
	figProcs := dropOne(procs)
	if *all || *figure == 5 {
		rows, err := experiments.Figure(experiments.FilterSpecs(specs, experiments.Figure5Matrices), figProcs, mode)
		if err != nil {
			fatalf("figure 5: %v", err)
		}
		fmt.Print(experiments.FormatFigure(rows, 5, mode))
		fmt.Println()
	}
	if *all || *figure == 6 {
		rows, err := experiments.Figure(experiments.FilterSpecs(specs, experiments.Figure6Matrices), figProcs, mode)
		if err != nil {
			fatalf("figure 6: %v", err)
		}
		fmt.Print(experiments.FormatFigure(rows, 6, mode))
		fmt.Println()
	}
	if *ablation {
		runAblations(specs, procs)
	}
}

func runAblations(specs []matgen.Spec, procs []int) {
	p := 4
	if len(procs) > 0 {
		p = procs[len(procs)-1]
	}
	rows, err := experiments.AblationPostorderTime(specs, p)
	if err != nil {
		fatalf("ablation postorder: %v", err)
	}
	fmt.Print(experiments.FormatAblation(fmt.Sprintf("Ablation: simulated factorization time (s) with/without postordering, P=%d.", p), rows))
	fmt.Println()

	am, err := experiments.AblationAmalgamation(specs[0], []int{1, 4, 8, 16, 32, 64}, p)
	if err != nil {
		fatalf("ablation amalgamation: %v", err)
	}
	fmt.Print(experiments.FormatAblation(fmt.Sprintf("Ablation: amalgamation MaxSize sweep on %s (simulated seconds, P=%d).", specs[0].Name, p), am))
	fmt.Println()

	or, err := experiments.AblationOrdering(specs)
	if err != nil {
		fatalf("ablation ordering: %v", err)
	}
	fmt.Print(experiments.FormatAblation("Ablation: fill ratio |Abar|/|A| by ordering method.", or))
	fmt.Println()

	bounds, err := experiments.StructureBounds(specs)
	if err != nil {
		fatalf("structure bounds: %v", err)
	}
	fmt.Print(experiments.FormatBounds(bounds))
	fmt.Println()

	but, err := experiments.BlockUTCheck(specs)
	if err != nil {
		fatalf("block upper triangular check: %v", err)
	}
	fmt.Print(experiments.FormatAblation("Check: block upper triangular decomposition holds; diagonal block counts.", but))
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no processor counts given")
	}
	return out, nil
}

// dropOne removes P=1 from the list (the figures start at 2 processors).
func dropOne(procs []int) []int {
	var out []int
	for _, p := range procs {
		if p > 1 {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []int{2, 4, 8}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paperbench: "+format+"\n", args...)
	os.Exit(1)
}
