package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/trace"
)

// The bench mode measures the real numeric factorization across worker
// counts and emits a machine-readable BENCH_<suite>.json so the perf
// trajectory of the repo is tracked in CI. Every configuration is run
// -reps times and the fastest repetition is reported (min-of-N is the
// standard way to suppress scheduler noise on shared CI runners); the
// trace-derived metrics (realized critical path, per-worker
// utilization) come from that fastest repetition.

// benchEntry is the result of one (matrix, workers) configuration.
type benchEntry struct {
	Matrix  string `json:"matrix"`
	Workers int    `json:"workers"`
	Tasks   int    `json:"tasks"`
	// WallSeconds is the fastest full numeric factorization.
	WallSeconds float64 `json:"wall_seconds"`
	// CriticalPathSeconds is the realized critical path of the traced
	// run: the longest dependence-linked chain of task times.
	CriticalPathSeconds float64 `json:"critical_path_seconds"`
	// Parallelism is total busy time over trace makespan.
	Parallelism float64 `json:"parallelism"`
	// Utilization is each worker's busy fraction of the trace window.
	Utilization []float64 `json:"utilization"`
	// MeanUtilization is total busy time over the trace window times the
	// *effective* worker count min(Workers, GOMAXPROCS): on a CI host
	// with fewer cores than workers the extra goroutines cannot add busy
	// time, so dividing by the nominal P would grade the engine on
	// hardware it was never given. On a host with enough cores this is
	// exactly mean per-worker utilization.
	MeanUtilization float64 `json:"mean_utilization"`
	// GFlops is the end-to-end factorization rate of the fastest
	// repetition: the symbolic cost model's total flops over wall time.
	GFlops float64 `json:"gflops"`
}

// kernelEntry is one dense-kernel measurement: the fastest repetition
// and its flop rate. These pin the BLAS-3 layer's performance
// independently of the sparse machinery above it, so a kernel
// regression is attributed to the kernel and not to scheduling noise.
type kernelEntry struct {
	Seconds float64 `json:"seconds"`
	GFlops  float64 `json:"gflops"`
}

// benchReport is the BENCH_<suite>.json document.
type benchReport struct {
	Suite   string       `json:"suite"`
	Reps    int          `json:"reps"`
	Procs   []int        `json:"procs"`
	Entries []benchEntry `json:"entries"`
	// TotalWallSeconds sums wall time over the suite per worker count
	// (keyed by the decimal worker count). The regression comparator
	// works on these totals so single-matrix jitter cannot fail CI.
	// The relaxed kernel mode adds "<P>_fastmath" keys: the same suite
	// totals factored through the FastMath kernels, wall-only (no trace
	// metrics — the utilization gate stays a bitwise-mode contract).
	TotalWallSeconds map[string]float64 `json:"total_wall_seconds"`
	// Kernels holds the dense-kernel measurements (dgemm_256,
	// dtrsm_256, panel_lu_1024x64); the comparator gates their seconds
	// at the same tolerance as the suite totals.
	Kernels map[string]kernelEntry `json:"kernels"`
	// Solves holds the triangular-solve measurements, two per matrix
	// (<matrix>_solve_1rhs and <matrix>_solve_16rhs, the blocked
	// multi-RHS panel path), gated like the kernels. They pin the solve
	// engine's throughput independently of the factorization above it.
	Solves map[string]kernelEntry `json:"solves"`
	// Analyzes holds the analysis-phase measurements, two per matrix:
	// <matrix>_analyze is the full structural pipeline at
	// AnalyzeWorkers=4 and <matrix>_reanalyze the identical-pattern
	// Reanalyze fast path (a hash comparison). GFlops is left zero —
	// the analysis is graph work, not flops. Gated like the kernels.
	Analyzes map[string]kernelEntry `json:"analyzes"`
	// MeanUtilization averages the per-entry mean utilization over the
	// suite, per worker count (keyed like TotalWallSeconds).
	MeanUtilization map[string]float64 `json:"mean_utilization"`
	// UtilizationFloor is the committed scheduler-efficiency threshold:
	// the comparator fails when the current mean utilization at the
	// highest worker count drops below the baseline's floor. Zero means
	// the baseline predates the gate and the metric is reported only.
	UtilizationFloor float64 `json:"utilization_floor"`
}

// runBench executes the suite and writes the report to outPath. When
// tracePath is non-empty, the Chrome trace of the first matrix at the
// highest worker count is written there as the CI artifact, with the
// engine's steal/park spans recorded alongside the task events.
// utilFloor is committed into the report as the scheduler-efficiency
// threshold future comparisons are gated on.
func runBench(specs []matgen.Spec, suite string, procs []int, reps int, outPath, tracePath string, utilFloor float64) (*benchReport, error) {
	if reps < 1 {
		reps = 1
	}
	report := &benchReport{
		Suite:            suite,
		Reps:             reps,
		Procs:            procs,
		TotalWallSeconds: make(map[string]float64),
		Solves:           make(map[string]kernelEntry),
		Analyzes:         make(map[string]kernelEntry),
		MeanUtilization:  make(map[string]float64),
		UtilizationFloor: utilFloor,
	}
	utilCount := make(map[string]int)
	maxProcs := procs[len(procs)-1]
	var artifactEvents []trace.Event
	var artifactWorkers int
	for si, spec := range specs {
		a := spec.Gen()
		opts := core.DefaultOptions()
		s, err := core.Analyze(a, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		for _, p := range procs {
			rec := trace.New(p)
			if si == 0 && p == maxProcs && tracePath != "" {
				// The Chrome-trace artifact also shows where the engine
				// spent its scheduling time: steal searches and parked
				// spans. Summarize partitions them out of the busy time.
				rec.SetSchedEvents(true)
			}
			run := *s // Opts is a value, so this copy is private
			run.Opts.Workers = p
			run.Opts.Trace = rec

			best := -1.0
			var bestEvents []trace.Event
			for rep := 0; rep < reps; rep++ {
				rec.Reset()
				start := time.Now()
				if _, err := core.FactorizeGlobal(&run, a); err != nil {
					return nil, fmt.Errorf("%s P=%d: %w", spec.Name, p, err)
				}
				wall := time.Since(start).Seconds()
				if best < 0 || wall < best {
					best = wall
					bestEvents = rec.Events()
				}
			}

			sum := trace.Summarize(bestEvents, p)
			cp, _, err := trace.RealizedCriticalPath(bestEvents, run.Graph.Succ)
			if err != nil {
				return nil, fmt.Errorf("%s P=%d: %w", spec.Name, p, err)
			}
			util := make([]float64, p)
			for w, ws := range sum.WorkerStats {
				util[w] = ws.Utilization
			}
			effective := p
			if g := runtime.GOMAXPROCS(0); g < effective {
				effective = g
			}
			meanUtil := sum.Parallelism / float64(effective)
			report.Entries = append(report.Entries, benchEntry{
				Matrix:              spec.Name,
				Workers:             p,
				Tasks:               run.Graph.NumTasks(),
				WallSeconds:         best,
				CriticalPathSeconds: float64(cp) / 1e9,
				Parallelism:         sum.Parallelism,
				Utilization:         util,
				MeanUtilization:     meanUtil,
				GFlops:              run.Stats.TotalFlops / best / 1e9,
			})
			key := fmt.Sprint(p)
			report.TotalWallSeconds[key] += best
			report.MeanUtilization[key] += meanUtil
			utilCount[key]++
			if si == 0 && p == maxProcs {
				artifactEvents = bestEvents
				artifactWorkers = p
			}
		}

		// FastMath suite totals: the same factorizations through the
		// relaxed kernels, wall-only. These ride in the per-matrix
		// entries (suffixed _fastmath) and the "<P>_fastmath" totals the
		// comparator gates like the bitwise totals; trace metrics and
		// the utilization gate stay bitwise-only.
		for _, p := range procs {
			nopts := &core.NumericOptions{Workers: p, FastMath: true}
			best := -1.0
			for rep := 0; rep < reps; rep++ {
				start := time.Now()
				if _, err := core.FactorizeWithOpts(s, a, nopts); err != nil {
					return nil, fmt.Errorf("%s P=%d fastmath: %w", spec.Name, p, err)
				}
				if wall := time.Since(start).Seconds(); best < 0 || wall < best {
					best = wall
				}
			}
			report.Entries = append(report.Entries, benchEntry{
				Matrix:      spec.Name + "_fastmath",
				Workers:     p,
				Tasks:       s.Graph.NumTasks(),
				WallSeconds: best,
				GFlops:      s.Stats.TotalFlops / best / 1e9,
			})
			report.TotalWallSeconds[fmt.Sprint(p)+"_fastmath"] += best
		}

		// Solve-phase entries, measured at one solve worker (CI hosts
		// are often single-core; the multi-worker solve contract is
		// bitwise determinism, pinned by tests, not wall time here).
		srun := *s
		srun.Opts.Workers = 1
		srun.Opts.SolveWorkers = 1
		sf, err := core.FactorizeWith(&srun, a)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		one, many, err := runSolveBench(sf, float64(srun.Stats.NNZFactors), reps)
		if err != nil {
			return nil, fmt.Errorf("%s solve: %w", spec.Name, err)
		}
		report.Solves[spec.Name+"_solve_1rhs"] = one
		report.Solves[spec.Name+"_solve_16rhs"] = many

		// Analysis-phase entries: the full pipeline with the parallel
		// symbolic stage, and the identical-pattern Reanalyze fast path
		// against the analysis already in hand.
		aOpts := core.DefaultOptions()
		aOpts.AnalyzeWorkers = 4
		bestA := -1.0
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			if _, err := core.Analyze(a, aOpts); err != nil {
				return nil, fmt.Errorf("%s analyze: %w", spec.Name, err)
			}
			if wall := time.Since(start).Seconds(); bestA < 0 || wall < bestA {
				bestA = wall
			}
		}
		report.Analyzes[spec.Name+"_analyze"] = kernelEntry{Seconds: bestA}
		bestR := -1.0
		for rep := 0; rep < 3*reps; rep++ {
			start := time.Now()
			got, level, err := core.Reanalyze(s, a)
			if err != nil {
				return nil, fmt.Errorf("%s reanalyze: %w", spec.Name, err)
			}
			if level != core.ReuseFull || got != s {
				return nil, fmt.Errorf("%s reanalyze: identical pattern not fully reused (level %v)", spec.Name, level)
			}
			if wall := time.Since(start).Seconds(); bestR < 0 || wall < bestR {
				bestR = wall
			}
		}
		report.Analyzes[spec.Name+"_reanalyze"] = kernelEntry{Seconds: bestR}
	}

	for key, n := range utilCount {
		report.MeanUtilization[key] /= float64(n)
	}

	report.Kernels = runKernelBench(reps)

	if err := writeJSON(outPath, report); err != nil {
		return nil, err
	}
	if tracePath != "" && artifactEvents != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := trace.WriteChromeTrace(f, artifactEvents, artifactWorkers, nil); err != nil {
			return nil, err
		}
	}
	return report, nil
}

// runKernelBench measures the dense level-3 kernels the numeric phase
// is built from, min-of-reps like the suite entries. Sizes are fixed so
// the keys are stable across baselines: a 256³ Dgemm (the packed
// register-tiled path), a 256×256 lower-unit Dtrsm (blocked strip
// solves + Dgemm updates) and a 1024×64 blocked panel LU.
func runKernelBench(reps int) map[string]kernelEntry {
	rng := rand.New(rand.NewSource(42))
	fill := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	measure := func(flops float64, setup func(), run func()) kernelEntry {
		best := -1.0
		for rep := 0; rep < reps; rep++ {
			setup()
			start := time.Now()
			run()
			wall := time.Since(start).Seconds()
			if best < 0 || wall < best {
				best = wall
			}
		}
		return kernelEntry{Seconds: best, GFlops: flops / best / 1e9}
	}

	out := map[string]kernelEntry{}

	// Dgemm 256³: C += A·B, 2n³ flops. One call is only a few
	// milliseconds, so each repetition runs the call in a short loop and
	// reports the per-call time.
	{
		const n, calls = 256, 8
		a, b, c := fill(n*n), fill(n*n), fill(n*n)
		ke := measure(2*float64(n)*float64(n)*float64(n), func() {},
			func() {
				for i := 0; i < calls; i++ {
					blas.Dgemm(n, n, n, 1, a, n, b, n, 1, c, n)
				}
			})
		ke.Seconds /= calls
		ke.GFlops *= calls
		out["dgemm_256"] = ke
	}

	// Dtrsm 256×256 lower-unit: T·X = B forward solve, ~m²·n flops.
	{
		const m, n, calls = 256, 256, 8
		t := fill(m * m)
		for i := 0; i < m; i++ {
			t[i*m+i] += float64(m)
		}
		x := fill(m * n)
		ke := measure(float64(m)*float64(m)*float64(n), func() {},
			func() {
				for i := 0; i < calls; i++ {
					blas.Dtrsm(true, true, m, n, 1, t, m, x, n)
				}
			})
		ke.Seconds /= calls
		ke.GFlops *= calls
		out["dtrsm_256"] = ke
	}

	// Blocked panel LU 1024×64: the tall-panel factorization shape of
	// the supernodal numeric phase, 2mn² − (2/3)n³ flops. The panel is
	// refilled before every repetition (LU overwrites it).
	{
		const m, n = 1024, 64
		orig := fill(m * n)
		a := make([]float64, m*n)
		ipiv := make([]int, n)
		flops := 2*float64(m)*float64(n)*float64(n) - 2.0/3.0*float64(n)*float64(n)*float64(n)
		out["panel_lu_1024x64"] = measure(flops,
			func() { copy(a, orig) },
			func() { blas.DgetrfStatic(m, n, a, n, ipiv, 0, nil) })
	}

	// The same three shapes through the FastMath entry points. Their
	// keys carry the _fastmath suffix so the comparator gates the
	// relaxed kernels separately from the bitwise ones; the headline
	// speedup of the mode is dgemm_256_fastmath vs dgemm_256.
	{
		const n, calls = 256, 8
		a, b, c := fill(n*n), fill(n*n), fill(n*n)
		ke := measure(2*float64(n)*float64(n)*float64(n), func() {},
			func() {
				for i := 0; i < calls; i++ {
					blas.DgemmFast(n, n, n, 1, a, n, b, n, 1, c, n)
				}
			})
		ke.Seconds /= calls
		ke.GFlops *= calls
		out["dgemm_256_fastmath"] = ke
	}
	{
		const m, n, calls = 256, 256, 8
		t := fill(m * m)
		for i := 0; i < m; i++ {
			t[i*m+i] += float64(m)
		}
		x := fill(m * n)
		ke := measure(float64(m)*float64(m)*float64(n), func() {},
			func() {
				for i := 0; i < calls; i++ {
					blas.DtrsmFast(true, true, m, n, 1, t, m, x, n)
				}
			})
		ke.Seconds /= calls
		ke.GFlops *= calls
		out["dtrsm_256_fastmath"] = ke
	}
	{
		const m, n = 1024, 64
		orig := fill(m * n)
		a := make([]float64, m*n)
		ipiv := make([]int, n)
		flops := 2*float64(m)*float64(n)*float64(n) - 2.0/3.0*float64(n)*float64(n)*float64(n)
		out["panel_lu_1024x64_fastmath"] = measure(flops,
			func() { copy(a, orig) },
			func() { blas.DgetrfStaticFast(m, n, a, n, ipiv, 0, nil) })
	}
	return out
}

// runSolveBench measures the triangular-solve phase of one factored
// matrix: a single right-hand side through Solve and a blocked 16-RHS
// panel through SolveMany. One solve is tens of microseconds, far too
// short to time alone, so each repetition times a 32-call loop; and
// unlike the kernel benches the timed region allocates (the result
// slices the API hands back), so a GC pause can land inside it —
// each measurement forces a collection first and takes the min of
// 3·reps repetitions (still well under a second per matrix) to keep
// scheduler and GC noise inside the comparator's tolerance. Flops are
// the classic 2·|Ā| of the two sweeps, per right-hand side.
func runSolveBench(f *core.Factorization, nnzFactors float64, reps int) (one, many kernelEntry, err error) {
	const (
		nrhs  = 16
		calls = 32
	)
	n := f.S.N
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%3)
	}
	bs := make([][]float64, nrhs)
	for r := range bs {
		bs[r] = b
	}
	measure := func(flops float64, run func() error) (kernelEntry, error) {
		runtime.GC()
		best := -1.0
		for rep := 0; rep < 3*reps; rep++ {
			start := time.Now()
			for c := 0; c < calls; c++ {
				if err := run(); err != nil {
					return kernelEntry{}, err
				}
			}
			wall := time.Since(start).Seconds() / calls
			if best < 0 || wall < best {
				best = wall
			}
		}
		return kernelEntry{Seconds: best, GFlops: flops / best / 1e9}, nil
	}
	if one, err = measure(2*nnzFactors, func() error { _, e := f.Solve(b); return e }); err != nil {
		return
	}
	many, err = measure(2*nnzFactors*nrhs, func() error { _, e := f.SolveMany(bs); return e })
	return
}

// writeAutotuneReport records what the analyze-time tile autotuner
// chose on this host: the probed cache sizes and the resulting packing
// block sizes. The report is a per-host CI artifact (bench-out/), not a
// gated metric — tile choices legitimately differ between runners.
func writeAutotuneReport(path string) error {
	info := blas.AutotuneOnce()
	return writeJSON(path, struct {
		Probed       bool `json:"probed"`
		L1DataBytes  int  `json:"l1_data_bytes"`
		L2Bytes      int  `json:"l2_bytes"`
		MC           int  `json:"mc"`
		KC           int  `json:"kc"`
		NC           int  `json:"nc"`
		NB           int  `json:"nb"`
		FMA3Kernel   bool `json:"fma3_kernel"`
		AVX2Kernel   bool `json:"avx2_kernel"`
		GoMaxProcs   int  `json:"gomaxprocs"`
		EffectiveCPU int  `json:"effective_cpus"`
	}{
		Probed:       info.Probed,
		L1DataBytes:  info.L1DataBytes,
		L2Bytes:      info.L2Bytes,
		MC:           info.Tiles.MC,
		KC:           info.Tiles.KC,
		NC:           info.Tiles.NC,
		NB:           info.Tiles.NB,
		FMA3Kernel:   blas.HasFMA3(),
		AVX2Kernel:   blas.HasAVX2(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		EffectiveCPU: runtime.NumCPU(),
	})
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// compareBench fails (returns an error) when any per-worker-count suite
// wall-time total of cur regresses more than tol (fractional) against
// the baseline at path, or when the mean utilization at the highest
// worker count drops below the committed floor. The floor is the
// baseline's utilization_floor unless utilFloor > 0 overrides it; a
// zero floor (baseline predates the gate) reports the metric without
// failing. Worker counts absent from the baseline are reported as new
// but do not fail the gate.
// benchAbsSlack is the absolute wall-clock jitter allowance added on
// top of the relative tolerance in the per-entry seconds gates. On a
// shared single-core host, microsecond-scale entries (the reanalyze
// fast path, single-RHS solves) jitter by several microseconds between
// runs regardless of the code under test, so a purely relative gate at
// that scale flags scheduler noise, not regressions. 15 µs is far below
// any real regression those gates exist to catch, and tol dominates it
// for every entry above ~60 µs. The suite wall-time totals stay purely
// relative — they are milliseconds-scale.
const benchAbsSlack = 15e-6

// entryRegressed applies the shared per-entry gate: a regression is a
// per-call time above the baseline by more than the relative tolerance
// plus the absolute jitter slack.
func entryRegressed(now, was, tol float64) bool {
	return now > was*(1+tol)+benchAbsSlack
}

func compareBench(cur *benchReport, path string, tol, utilFloor float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	var failures []string
	// Gate every suite total the current report carries — the bitwise
	// "<P>" keys and the relaxed "<P>_fastmath" keys alike. Keys absent
	// from the baseline are reported as new without failing, so adding a
	// kernel mode does not require a flag-day baseline.
	totalKeys := make([]string, 0, len(cur.TotalWallSeconds))
	for key := range cur.TotalWallSeconds {
		totalKeys = append(totalKeys, key)
	}
	sort.Strings(totalKeys)
	for _, key := range totalKeys {
		now := cur.TotalWallSeconds[key]
		was, ok := base.TotalWallSeconds[key]
		if !ok {
			fmt.Printf("compare: P=%s has no baseline (new configuration)\n", key)
			continue
		}
		ratio := now / was
		status := "ok"
		if now > was*(1+tol) {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("P=%s: %.4fs vs baseline %.4fs (%.0f%%)", key, now, was, 100*(ratio-1)))
		}
		fmt.Printf("compare: P=%s total %.4fs, baseline %.4fs (%+.0f%%) %s\n", key, now, was, 100*(ratio-1), status)
	}
	// Kernel gate: same tolerance on the per-call kernel seconds.
	// Kernels absent from the baseline are reported as new but do not
	// fail, so adding a kernel does not require a flag-day baseline.
	names := make([]string, 0, len(cur.Kernels))
	for name := range cur.Kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		now := cur.Kernels[name]
		was, ok := base.Kernels[name]
		if !ok {
			fmt.Printf("compare: kernel %s has no baseline (new kernel)\n", name)
			continue
		}
		ratio := now.Seconds / was.Seconds
		status := "ok"
		if entryRegressed(now.Seconds, was.Seconds, tol) {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("kernel %s: %.6fs vs baseline %.6fs (%.0f%%)", name, now.Seconds, was.Seconds, 100*(ratio-1)))
		}
		fmt.Printf("compare: kernel %s %.2f GFLOPS (%.6fs), baseline %.6fs (%+.0f%%) %s\n",
			name, now.GFlops, now.Seconds, was.Seconds, 100*(ratio-1), status)
	}
	// Solve gate: same shape as the kernel gate — per-entry seconds at
	// the shared tolerance, entries absent from the baseline reported
	// as new without failing (so adding a matrix or a solve shape does
	// not require a flag-day baseline).
	names = names[:0]
	for name := range cur.Solves {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		now := cur.Solves[name]
		was, ok := base.Solves[name]
		if !ok {
			fmt.Printf("compare: solve %s has no baseline (new entry)\n", name)
			continue
		}
		ratio := now.Seconds / was.Seconds
		status := "ok"
		if entryRegressed(now.Seconds, was.Seconds, tol) {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("solve %s: %.6fs vs baseline %.6fs (%.0f%%)", name, now.Seconds, was.Seconds, 100*(ratio-1)))
		}
		fmt.Printf("compare: solve %s %.2f GFLOPS (%.6fs), baseline %.6fs (%+.0f%%) %s\n",
			name, now.GFlops, now.Seconds, was.Seconds, 100*(ratio-1), status)
	}
	// Analyze gate: same shape again — per-entry seconds at the shared
	// tolerance, entries absent from the baseline (including a baseline
	// that predates the analyzes section entirely) reported as new
	// without failing.
	names = names[:0]
	for name := range cur.Analyzes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		now := cur.Analyzes[name]
		was, ok := base.Analyzes[name]
		if !ok {
			fmt.Printf("compare: analyze %s has no baseline (new entry)\n", name)
			continue
		}
		ratio := now.Seconds / was.Seconds
		status := "ok"
		if entryRegressed(now.Seconds, was.Seconds, tol) {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("analyze %s: %.6fs vs baseline %.6fs (%.0f%%)", name, now.Seconds, was.Seconds, 100*(ratio-1)))
		}
		fmt.Printf("compare: analyze %s %.6fs, baseline %.6fs (%+.0f%%) %s\n",
			name, now.Seconds, was.Seconds, 100*(ratio-1), status)
	}
	// Utilization gate: the scheduler-efficiency floor at the highest
	// worker count. Unlike the wall-time gates this is an absolute
	// threshold, not a relative tolerance — utilization is already
	// normalized, and the point of the gate is that no change may sneak
	// the engine below the committed efficiency.
	floor := base.UtilizationFloor
	if utilFloor > 0 {
		floor = utilFloor
	}
	maxKey := fmt.Sprint(cur.Procs[len(cur.Procs)-1])
	meanUtil, haveUtil := cur.MeanUtilization[maxKey]
	switch {
	case !haveUtil:
		fmt.Printf("compare: no mean utilization at P=%s (old report format)\n", maxKey)
	case floor <= 0:
		fmt.Printf("compare: mean utilization P=%s %.3f (no committed floor)\n", maxKey, meanUtil)
	case meanUtil < floor:
		failures = append(failures, fmt.Sprintf("mean utilization P=%s: %.3f below floor %.3f", maxKey, meanUtil, floor))
		fmt.Printf("compare: mean utilization P=%s %.3f, floor %.3f REGRESSED\n", maxKey, meanUtil, floor)
	default:
		fmt.Printf("compare: mean utilization P=%s %.3f, floor %.3f ok\n", maxKey, meanUtil, floor)
	}
	if failures != nil {
		return fmt.Errorf("benchmark gate failed (tolerance %.0f%%): %v", 100*tol, failures)
	}
	return nil
}
