package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/trace"
)

// The bench mode measures the real numeric factorization across worker
// counts and emits a machine-readable BENCH_<suite>.json so the perf
// trajectory of the repo is tracked in CI. Every configuration is run
// -reps times and the fastest repetition is reported (min-of-N is the
// standard way to suppress scheduler noise on shared CI runners); the
// trace-derived metrics (realized critical path, per-worker
// utilization) come from that fastest repetition.

// benchEntry is the result of one (matrix, workers) configuration.
type benchEntry struct {
	Matrix  string `json:"matrix"`
	Workers int    `json:"workers"`
	Tasks   int    `json:"tasks"`
	// WallSeconds is the fastest full numeric factorization.
	WallSeconds float64 `json:"wall_seconds"`
	// CriticalPathSeconds is the realized critical path of the traced
	// run: the longest dependence-linked chain of task times.
	CriticalPathSeconds float64 `json:"critical_path_seconds"`
	// Parallelism is total busy time over trace makespan.
	Parallelism float64 `json:"parallelism"`
	// Utilization is each worker's busy fraction of the trace window.
	Utilization []float64 `json:"utilization"`
}

// benchReport is the BENCH_<suite>.json document.
type benchReport struct {
	Suite   string       `json:"suite"`
	Reps    int          `json:"reps"`
	Procs   []int        `json:"procs"`
	Entries []benchEntry `json:"entries"`
	// TotalWallSeconds sums wall time over the suite per worker count
	// (keyed by the decimal worker count). The regression comparator
	// works on these totals so single-matrix jitter cannot fail CI.
	TotalWallSeconds map[string]float64 `json:"total_wall_seconds"`
}

// runBench executes the suite and writes the report to outPath. When
// tracePath is non-empty, the Chrome trace of the first matrix at the
// highest worker count is written there as the CI artifact.
func runBench(specs []matgen.Spec, suite string, procs []int, reps int, outPath, tracePath string) (*benchReport, error) {
	if reps < 1 {
		reps = 1
	}
	report := &benchReport{
		Suite:            suite,
		Reps:             reps,
		Procs:            procs,
		TotalWallSeconds: make(map[string]float64),
	}
	maxProcs := procs[len(procs)-1]
	var artifactEvents []trace.Event
	var artifactWorkers int
	for si, spec := range specs {
		a := spec.Gen()
		opts := core.DefaultOptions()
		s, err := core.Analyze(a, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		for _, p := range procs {
			rec := trace.New(p)
			run := *s // Opts is a value, so this copy is private
			run.Opts.Workers = p
			run.Opts.Trace = rec

			best := -1.0
			var bestEvents []trace.Event
			for rep := 0; rep < reps; rep++ {
				rec.Reset()
				start := time.Now()
				if _, err := core.FactorizeGlobal(&run, a); err != nil {
					return nil, fmt.Errorf("%s P=%d: %w", spec.Name, p, err)
				}
				wall := time.Since(start).Seconds()
				if best < 0 || wall < best {
					best = wall
					bestEvents = rec.Events()
				}
			}

			sum := trace.Summarize(bestEvents, p)
			cp, _, err := trace.RealizedCriticalPath(bestEvents, run.Graph.Succ)
			if err != nil {
				return nil, fmt.Errorf("%s P=%d: %w", spec.Name, p, err)
			}
			util := make([]float64, p)
			for w, ws := range sum.WorkerStats {
				util[w] = ws.Utilization
			}
			report.Entries = append(report.Entries, benchEntry{
				Matrix:              spec.Name,
				Workers:             p,
				Tasks:               run.Graph.NumTasks(),
				WallSeconds:         best,
				CriticalPathSeconds: float64(cp) / 1e9,
				Parallelism:         sum.Parallelism,
				Utilization:         util,
			})
			report.TotalWallSeconds[fmt.Sprint(p)] += best
			if si == 0 && p == maxProcs {
				artifactEvents = bestEvents
				artifactWorkers = p
			}
		}
	}

	if err := writeJSON(outPath, report); err != nil {
		return nil, err
	}
	if tracePath != "" && artifactEvents != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := trace.WriteChromeTrace(f, artifactEvents, artifactWorkers, nil); err != nil {
			return nil, err
		}
	}
	return report, nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// compareBench fails (returns an error) when any per-worker-count suite
// wall-time total of cur regresses more than tol (fractional) against
// the baseline at path. Worker counts absent from the baseline are
// reported as new but do not fail the gate.
func compareBench(cur *benchReport, path string, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	var failures []string
	for _, p := range cur.Procs {
		key := fmt.Sprint(p)
		now := cur.TotalWallSeconds[key]
		was, ok := base.TotalWallSeconds[key]
		if !ok {
			fmt.Printf("compare: P=%s has no baseline (new configuration)\n", key)
			continue
		}
		ratio := now / was
		status := "ok"
		if now > was*(1+tol) {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("P=%s: %.4fs vs baseline %.4fs (%.0f%%)", key, now, was, 100*(ratio-1)))
		}
		fmt.Printf("compare: P=%s total %.4fs, baseline %.4fs (%+.0f%%) %s\n", key, now, was, 100*(ratio-1), status)
	}
	if failures != nil {
		return fmt.Errorf("wall time regressed beyond %.0f%% tolerance: %v", 100*tol, failures)
	}
	return nil
}
