package main

// The shared-capture rule: the intra-procedural lock-discipline check
// only sees writes that appear LITERALLY inside a worker goroutine's
// body. A worker closure that hands `&shared` to a helper moves the
// racy write one call away, out of that rule's sight:
//
//	total := 0
//	go func() { bump(&total) }()      // worker closure
//	func bump(p *int) { *p++ }        // unlocked shared write
//
// This rule follows the pointer interprocedurally. Starting from the
// worker roots of the call graph (closures handed to sched.Execute*,
// goroutine bodies in the worker packages), every call argument of the
// form &v — where v is declared outside the worker body, i.e. captured
// by reference or package-level — taints the callee's parameter. The
// taint propagates through further unlocked calls passing the pointer
// along. A write through a tainted parameter (*p = …, p.f = …,
// p[i] = …) without a sync lock held at the write is a finding; if the
// CALLER holds a lock at the call site the pointer arrives protected
// and the chain stops there, which keeps the lock-at-the-top idiom
// (mu.Lock(); helper(&state); mu.Unlock()) clean. Writes to mutable
// package-level variables from any worker-reachable function get the
// same treatment.
//
// Out of scope, deliberately: captured slices and maps (the numeric
// workers write disjoint elements of shared arrays by construction —
// the branch property — so flagging them would drown the signal), and
// receivers (task methods write owner-partitioned state).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// sharedCapture runs the rule over the call graph.
func (a *analysis) sharedCapture(g *callGraph) {
	// tainted[node] is the set of parameter objects of node that may
	// point to a worker-captured variable reached through an unlocked
	// call chain.
	tainted := map[*cgNode]map[types.Object]string{}

	type item struct {
		node *cgNode
	}
	var queue []item
	addTaint := func(n *cgNode, param types.Object, origin string) {
		if param == nil {
			return
		}
		m := tainted[n]
		if m == nil {
			m = map[types.Object]string{}
			tainted[n] = m
		}
		if _, ok := m[param]; ok {
			return
		}
		m[param] = origin
		queue = append(queue, item{n})
	}

	// Seed: unlocked calls inside worker roots passing &captured.
	for _, root := range g.nodes {
		if !root.workerRoot {
			continue
		}
		a.seedCalls(g, root, nil, addTaint)
	}

	// Propagate: unlocked calls inside tainted functions passing the
	// tainted pointer (or &captured of their own) along.
	for len(queue) > 0 {
		n := queue[0].node
		queue = queue[1:]
		a.seedCalls(g, n, tainted[n], addTaint)
	}

	// Report: writes through tainted parameters without a lock, and
	// unlocked writes to package-level variables in worker-reachable
	// code outside the roots themselves (the intra-procedural rule owns
	// the root bodies).
	reach := g.workerReachable()
	for _, n := range g.nodes {
		params := tainted[n]
		inReach := reach[n] && !n.workerRoot
		if len(params) == 0 && !inReach {
			continue
		}
		lw := &lockWalker{pi: n.pi}
		lw.walkWrites(n.body, func(target ast.Expr, locked bool) {
			if locked {
				return
			}
			obj := writeBase(n.pi, target)
			if obj == nil {
				return
			}
			if origin, ok := params[obj]; ok {
				a.report(target.Pos(), "shared-capture",
					"write through %q, a pointer to a variable captured by a worker closure (%s); hold a lock here or at the call site", obj.Name(), origin)
				return
			}
			if inReach && isMutableGlobal(obj) {
				a.report(target.Pos(), "shared-capture",
					"write to package-level %q from worker-reachable code without holding a lock", obj.Name())
			}
		})
	}
}

// seedCalls scans one function body for unlocked calls that hand a
// shared pointer to a callee: &v with v declared outside the enclosing
// worker body (seeding), or a parameter already known to be tainted
// (propagation).
func (a *analysis) seedCalls(g *callGraph, n *cgNode, taintedParams map[types.Object]string, addTaint func(*cgNode, types.Object, string)) {
	lw := &lockWalker{pi: n.pi}
	lw.walkBody(n.body, func(call *ast.CallExpr, locked bool) {
		if locked {
			return // the caller's lock protects the callee's writes
		}
		callees := calleesAt(n, call)
		if len(callees) == 0 {
			return
		}
		for argIdx, arg := range call.Args {
			origin := ""
			switch v := ast.Unparen(arg).(type) {
			case *ast.UnaryExpr:
				if v.Op != token.AND {
					continue
				}
				obj := writeBase(n.pi, v.X)
				if obj == nil || !a.sharedInNode(n, obj) {
					continue
				}
				origin = "&" + obj.Name() + " from " + n.name()
			case *ast.Ident:
				if taintedParams == nil {
					continue
				}
				obj := n.pi.info.Uses[v]
				if obj == nil {
					continue
				}
				o, ok := taintedParams[obj]
				if !ok {
					continue
				}
				origin = o
			default:
				continue
			}
			for _, callee := range callees {
				addTaint(callee, paramAt(callee, argIdx), origin)
			}
		}
	}, nil)
}

// calleesAt returns the call-graph targets recorded for this site.
func calleesAt(n *cgNode, call *ast.CallExpr) []*cgNode {
	var out []*cgNode
	for _, e := range n.calls {
		if e.site == call {
			out = append(out, e.callee)
		}
	}
	return out
}

// paramAt resolves the object of a node's i-th parameter (clamping
// into a variadic tail).
func paramAt(n *cgNode, i int) types.Object {
	var ft *ast.FuncType
	if n.decl != nil {
		ft = n.decl.Type
	} else if n.lit != nil {
		ft = n.lit.Type
	}
	if ft == nil || ft.Params == nil {
		return nil
	}
	idx := 0
	var lastName *ast.Ident
	for _, field := range ft.Params.List {
		names := field.Names
		if len(names) == 0 {
			// Unnamed parameter still occupies a slot.
			if idx == i {
				return nil
			}
			idx++
			continue
		}
		for _, name := range names {
			lastName = name
			if idx == i {
				return n.pi.info.Defs[name]
			}
			idx++
		}
	}
	// Variadic: later arguments map to the last parameter.
	if ft.Params.NumFields() > 0 {
		last := ft.Params.List[len(ft.Params.List)-1]
		if _, variadic := last.Type.(*ast.Ellipsis); variadic && lastName != nil && i >= idx-1 {
			return n.pi.info.Defs[lastName]
		}
	}
	return nil
}

// sharedInNode reports whether obj is a plain variable declared
// outside node's body — captured by the closure or package-level —
// excluding sync primitives, which manage their own safety.
func (a *analysis) sharedInNode(n *cgNode, obj types.Object) bool {
	vr, ok := obj.(*types.Var)
	if !ok || vr.IsField() {
		return false
	}
	if obj.Pos() >= n.pos() && obj.Pos() < n.end() {
		return false // local to the body: per-invocation, not shared
	}
	if isSyncType(vr.Type()) {
		return false
	}
	return true
}

// isMutableGlobal reports a writable package-level variable that is
// not a sync/atomic primitive.
func isMutableGlobal(obj types.Object) bool {
	vr, ok := obj.(*types.Var)
	if !ok || vr.IsField() {
		return false
	}
	if vr.Parent() == nil || vr.Pkg() == nil || vr.Parent() != vr.Pkg().Scope() {
		return false
	}
	return !isSyncType(vr.Type())
}

// isSyncType reports sync.* and sync/atomic types (addressed through
// pointers too).
func isSyncType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "sync" || strings.HasPrefix(pkg.Path(), "sync/")
}

// writeBase drills a write target to its base identifier's object.
func writeBase(pi *pkgInfo, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.Ident:
			if v.Name == "_" {
				return nil
			}
			if obj := pi.info.Uses[v]; obj != nil {
				return obj
			}
			return pi.info.Defs[v]
		default:
			return nil
		}
	}
}
