package main

// lockWalker walks one function body in lexical order, tracking how
// many sync locks are held at each point, and reports every call,
// every `go` statement and every write target together with that lock
// state. Nested function literals are NOT entered — each literal is
// its own call-graph node and establishes its own locking regime.
//
// The tracking is the same lexical approximation the intra-procedural
// lock-discipline rule uses: Lock/RLock and Unlock/RUnlock calls on
// sync types toggle a counter along the statement list; a conditional
// block that always transfers control out (the early-unlock-and-return
// idiom) is analyzed on a copy of the state; `defer mu.Unlock()` does
// not release the lock at the defer site.

import (
	"go/ast"
)

type lockWalker struct {
	pi     *pkgInfo
	locked int

	onCall  func(call *ast.CallExpr, locked bool)
	onGo    func(g *ast.GoStmt, locked bool)
	onWrite func(target ast.Expr, locked bool)
}

// walkBody runs the walker over a function body.
func (w *lockWalker) walkBody(body *ast.BlockStmt, onCall func(*ast.CallExpr, bool), onGo func(*ast.GoStmt, bool)) {
	w.onCall = onCall
	w.onGo = onGo
	w.block(body.List)
}

// walkWrites runs the walker reporting writes (and calls, if onCall is
// already set) — used by the shared-capture rule.
func (w *lockWalker) walkWrites(body *ast.BlockStmt, onWrite func(ast.Expr, bool)) {
	w.onWrite = onWrite
	w.block(body.List)
}

func (w *lockWalker) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.expr(rhs)
		}
		for _, lhs := range st.Lhs {
			w.expr(lhs)
			if w.onWrite != nil {
				w.onWrite(lhs, w.locked > 0)
			}
		}
	case *ast.IncDecStmt:
		w.expr(st.X)
		if w.onWrite != nil {
			w.onWrite(st.X, w.locked > 0)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.expr(st.Cond)
		w.branch(st.Body)
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			w.branch(e)
		case ast.Stmt:
			w.stmt(e)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.expr(st.Cond)
		}
		w.block(st.Body.List)
		if st.Post != nil {
			w.stmt(st.Post)
		}
	case *ast.RangeStmt:
		w.expr(st.X)
		w.block(st.Body.List)
	case *ast.BlockStmt:
		w.block(st.List)
	case *ast.DeferStmt:
		// Deferred lock operations act at return, not here; other
		// deferred calls are reported with the current state.
		if w.lockKind(st.Call) == "" {
			w.callAndArgs(st.Call)
		}
	case *ast.GoStmt:
		if w.onGo != nil {
			w.onGo(st, w.locked > 0)
		}
		for _, a := range st.Call.Args {
			w.expr(a)
		}
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Tag != nil {
			w.expr(st.Tag)
		}
		w.caseClauses(st.Body)
	case *ast.TypeSwitchStmt:
		w.caseClauses(st.Body)
	case *ast.SelectStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				saved := w.locked
				if cc.Comm != nil {
					w.stmt(cc.Comm)
				}
				w.block(cc.Body)
				w.locked = saved
			}
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r)
		}
	case *ast.SendStmt:
		w.expr(st.Chan)
		w.expr(st.Value)
	}
}

func (w *lockWalker) caseClauses(body *ast.BlockStmt) {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			saved := w.locked
			w.block(cc.Body)
			w.locked = saved
		}
	}
}

// branch analyzes a conditional block; if it always leaves the
// enclosing flow its lock-state changes do not outlive it.
func (w *lockWalker) branch(b *ast.BlockStmt) {
	if terminates(b) {
		saved := w.locked
		w.block(b.List)
		w.locked = saved
		return
	}
	w.block(b.List)
}

func (w *lockWalker) expr(e ast.Expr) {
	switch x := e.(type) {
	case *ast.CallExpr:
		switch w.lockKind(x) {
		case "lock":
			w.locked++
			return
		case "unlock":
			w.locked--
			return
		}
		w.callAndArgs(x)
	case *ast.FuncLit:
		// Own node; not entered.
	case *ast.ParenExpr:
		w.expr(x.X)
	case *ast.UnaryExpr:
		w.expr(x.X)
	case *ast.BinaryExpr:
		w.expr(x.X)
		w.expr(x.Y)
	case *ast.IndexExpr:
		w.expr(x.X)
		w.expr(x.Index)
	case *ast.SliceExpr:
		w.expr(x.X)
	case *ast.SelectorExpr:
		w.expr(x.X)
	case *ast.TypeAssertExpr:
		w.expr(x.X)
	case *ast.StarExpr:
		w.expr(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.expr(el)
		}
	case *ast.KeyValueExpr:
		w.expr(x.Value)
	}
}

func (w *lockWalker) callAndArgs(x *ast.CallExpr) {
	if w.onCall != nil {
		w.onCall(x, w.locked > 0)
	}
	w.expr(x.Fun)
	for _, a := range x.Args {
		w.expr(a)
	}
}

// lockKind classifies a call as a sync lock acquisition or release.
func (w *lockWalker) lockKind(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	var kind string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return ""
	}
	s := w.pi.info.Selections[sel]
	if s == nil || s.Obj().Pkg() == nil || s.Obj().Pkg().Path() != "sync" {
		return ""
	}
	return kind
}
