package main

// The module-wide call graph the interprocedural rules run on. Nodes
// are function bodies: named functions and methods (*types.Func) plus
// every function literal. Edges are added for
//
//   - direct calls (f(), pkg.F(), recv.M() on a concrete type),
//   - interface dispatch, approximated by the type set: a call i.M()
//     through an interface adds edges to M on every module-local
//     concrete type whose method set satisfies the interface (class
//     hierarchy analysis — sound for module-local callees, which is
//     the only thing the rules report on),
//   - method values and function values: x.M or f used as a value and
//     later called through a variable resolves flow-insensitively to
//     everything ever assigned to that variable,
//   - function-typed arguments: a literal (or named function) passed
//     to a call is treated as callable from the caller — conservative
//     for callbacks like sort.Slice whose bodies we cannot see.
//
// Closures handed to the sched executors (sched.Execute*) and `go`
// statements inside the worker packages are recorded as worker roots:
// everything reachable from them runs on a worker goroutine, which is
// what the interprocedural shared-capture rule needs to know. Each
// call edge also records whether a sync lock is lexically held at the
// call site, so lock protection established in the caller transfers to
// the callee's writes.
import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// cgNode is one function body in the call graph.
type cgNode struct {
	pi   *pkgInfo
	obj  *types.Func   // nil for function literals
	lit  *ast.FuncLit  // nil for named functions
	decl *ast.FuncDecl // nil for function literals
	body *ast.BlockStmt

	calls      []*cgEdge // outgoing edges
	workerRoot bool      // body runs on a worker goroutine by construction
	goLit      bool      // literal spawned directly by a `go` statement
}

// name returns a human-readable identifier for diagnostics.
func (n *cgNode) name() string {
	if n.obj != nil {
		return n.obj.Name()
	}
	return "func literal"
}

// pos returns the declaration position.
func (n *cgNode) pos() token.Pos {
	if n.decl != nil {
		return n.decl.Pos()
	}
	return n.lit.Pos()
}

// end returns the end of the declaration.
func (n *cgNode) end() token.Pos {
	if n.decl != nil {
		return n.decl.End()
	}
	return n.lit.End()
}

// cgEdge is one call (or callable-from) relation.
type cgEdge struct {
	caller *cgNode
	callee *cgNode
	site   *ast.CallExpr // nil for passed-as-value edges
	locked bool          // a sync lock is lexically held at the site
}

// callGraph indexes the nodes and edges of the whole module.
type callGraph struct {
	fset      *token.FileSet
	schedPath string // import path of the executor package (worker roots)
	byObj     map[*types.Func]*cgNode
	byLit     map[*ast.FuncLit]*cgNode
	nodes     []*cgNode

	// methodsByName maps a method name to every module-local concrete
	// method with that name, for interface-dispatch approximation.
	methodsByName map[string][]*types.Func
	// funcVals maps a variable object to every function value ever
	// assigned to it anywhere in the module (flow-insensitive).
	funcVals map[types.Object][]*cgNode
}

// buildCallGraph constructs the graph over every loaded package.
func buildCallGraph(fset *token.FileSet, pkgs []*pkgInfo, cfg *config) *callGraph {
	g := &callGraph{
		fset:          fset,
		schedPath:     cfg.modPath + "/internal/sched",
		byObj:         map[*types.Func]*cgNode{},
		byLit:         map[*ast.FuncLit]*cgNode{},
		methodsByName: map[string][]*types.Func{},
		funcVals:      map[types.Object][]*cgNode{},
	}
	// Pass 1: nodes for every function declaration and literal, and the
	// concrete-method index for interface dispatch.
	for _, pi := range pkgs {
		for _, f := range pi.files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						return true
					}
					obj, _ := pi.info.Defs[d.Name].(*types.Func)
					if obj == nil {
						return true
					}
					node := &cgNode{pi: pi, obj: obj, decl: d, body: d.Body}
					g.byObj[obj] = node
					g.nodes = append(g.nodes, node)
					if d.Recv != nil {
						g.methodsByName[obj.Name()] = append(g.methodsByName[obj.Name()], obj)
					}
				case *ast.FuncLit:
					node := &cgNode{pi: pi, lit: d, body: d.Body}
					g.byLit[d] = node
					g.nodes = append(g.nodes, node)
				}
				return true
			})
		}
	}
	// Pass 2: function-value assignments (flow-insensitive).
	for _, pi := range pkgs {
		for _, f := range pi.files {
			g.collectFuncVals(pi, f)
		}
	}
	// Pass 3: edges and worker roots.
	for _, node := range g.nodes {
		g.addEdges(node, cfg)
	}
	return g
}

// funcValue resolves an expression used as a function value to its
// nodes: a literal, a named function or method value, or a variable
// holding previously assigned function values.
func (g *callGraph) funcValue(pi *pkgInfo, e ast.Expr) []*cgNode {
	switch v := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if n := g.byLit[v]; n != nil {
			return []*cgNode{n}
		}
	case *ast.Ident:
		switch obj := pi.info.Uses[v].(type) {
		case *types.Func:
			if n := g.byObj[obj]; n != nil {
				return []*cgNode{n}
			}
		case *types.Var:
			return g.funcVals[obj]
		}
	case *ast.SelectorExpr:
		// Method value x.M, or a package-qualified function pkg.F.
		if obj, ok := pi.info.Uses[v.Sel].(*types.Func); ok {
			if sel := pi.info.Selections[v]; sel != nil && isInterface(sel.Recv()) {
				return g.interfaceTargets(v.Sel.Name, sel.Recv())
			}
			if n := g.byObj[obj]; n != nil {
				return []*cgNode{n}
			}
		}
	}
	return nil
}

// collectFuncVals records function values assigned to variables.
func (g *callGraph) collectFuncVals(pi *pkgInfo, f *ast.File) {
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := pi.info.Defs[id]
		if obj == nil {
			obj = pi.info.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		if targets := g.funcValue(pi, rhs); len(targets) > 0 {
			g.funcVals[obj] = append(g.funcVals[obj], targets...)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					record(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					record(st.Names[i], st.Values[i])
				}
			}
		}
		return true
	})
}

// isInterface reports whether t (or what it points to) is an interface.
func isInterface(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// interfaceTargets approximates i.M() dispatch: every module-local
// concrete method named name whose receiver type implements the
// interface.
func (g *callGraph) interfaceTargets(name string, recv types.Type) []*cgNode {
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*cgNode
	for _, m := range g.methodsByName[name] {
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		if types.Implements(rt, iface) || types.Implements(types.NewPointer(rt), iface) {
			if n := g.byObj[m]; n != nil {
				out = append(out, n)
			}
		}
	}
	return out
}

// addEdges walks one node's body (skipping nested literals, which are
// their own nodes) adding call edges, passed-as-value edges, and worker
// roots. Lock state is tracked lexically along the statement walk so
// each edge knows whether the caller holds a sync lock at the site.
func (g *callGraph) addEdges(node *cgNode, cfg *config) {
	lw := &lockWalker{pi: node.pi}
	lw.walkBody(node.body, func(call *ast.CallExpr, locked bool) {
		g.edgesForCall(node, call, locked, cfg)
	}, func(gs *ast.GoStmt, locked bool) {
		// go f() / go func(){...}(): the spawned body is a goroutine; in
		// the worker packages that makes it a worker root.
		for _, t := range g.funcValue(node.pi, gs.Call.Fun) {
			g.addEdge(node, t, gs.Call, locked)
			if t.lit != nil {
				t.goLit = true
			}
			if cfg.workers[node.pi.path] {
				t.workerRoot = true
			}
		}
	})
}

// edgesForCall resolves one call expression to its callees.
func (g *callGraph) edgesForCall(node *cgNode, call *ast.CallExpr, locked bool, cfg *config) {
	pi := node.pi
	// Direct callees (including interface dispatch and func-var calls).
	for _, t := range g.funcValue(pi, call.Fun) {
		g.addEdge(node, t, call, locked)
	}
	// A function value passed as an argument is callable from here on:
	// record caller→value edges, and mark sched executor arguments as
	// worker roots (the executor invokes them once per task from its
	// worker goroutines).
	workerSink := g.isSchedExecute(pi, call)
	for _, arg := range call.Args {
		for _, t := range g.funcValue(pi, arg) {
			g.addEdge(node, t, call, locked)
			if workerSink {
				t.workerRoot = true
			}
		}
	}
}

// isSchedExecute reports whether the call targets one of the sched
// executors (sched.Execute*), whose function arguments are per-task
// worker bodies.
func (g *callGraph) isSchedExecute(pi *pkgInfo, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Execute") {
		return false
	}
	obj := pi.info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == g.schedPath
}

// addEdge appends one edge, deduplicating exact repeats.
func (g *callGraph) addEdge(caller, callee *cgNode, site *ast.CallExpr, locked bool) {
	for _, e := range caller.calls {
		if e.callee == callee && e.site == site {
			if !locked {
				e.locked = false
			}
			return
		}
	}
	caller.calls = append(caller.calls, &cgEdge{caller: caller, callee: callee, site: site, locked: locked})
}

// workerReachable returns every node reachable from a worker root,
// including the roots themselves.
func (g *callGraph) workerReachable() map[*cgNode]bool {
	seen := map[*cgNode]bool{}
	var stack []*cgNode
	for _, n := range g.nodes {
		if n.workerRoot && !seen[n] {
			seen[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.calls {
			if !seen[e.callee] {
				seen[e.callee] = true
				stack = append(stack, e.callee)
			}
		}
	}
	return seen
}
