package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureConfig scopes every interprocedural fixture to its rule
// family on top of the repository defaults.
func fixtureConfig(mod string) *config {
	cfg := defaultConfig(mod)
	cfg.contract["repro/fixture/mofix"] = true
	cfg.contract["repro/fixture/justfix"] = true
	cfg.contract["repro/fixture/mutlevels"] = true
	cfg.fpScope["repro/fixture/fpfix"] = true
	cfg.fpScope["repro/fixture/fpfast"] = true
	cfg.fpScope["repro/fixture/mutdescend"] = true
	cfg.workers["repro/fixture/capfix"] = true
	cfg.workers["repro/fixture/mutcapture"] = true
	return cfg
}

var interproc = struct {
	oncePkgs []*pkgInfo
	findings []finding
}{}

// interprocFindings runs the full module analysis (repo + fixtures)
// once under the fixture scoping and memoizes the findings.
func interprocFindings(t *testing.T) []finding {
	t.Helper()
	pkgs, fset, mod := loadOnce(t)
	if interproc.oncePkgs == nil {
		interproc.findings = analyzeAll(fset, pkgs, fixtureConfig(mod))
		interproc.oncePkgs = pkgs
	}
	return interproc.findings
}

// fixtureDirFindings filters findings to one testdata fixture dir.
func fixtureDirFindings(t *testing.T, dir string) []finding {
	t.Helper()
	sep := string(filepath.Separator)
	needle := sep + filepath.Join("testdata", "src", dir) + sep
	var out []finding
	for _, f := range interprocFindings(t) {
		if strings.Contains(f.pos.Filename, needle) {
			out = append(out, f)
		}
	}
	return out
}

// checkWantMarkers compares the findings of one fixture dir against
// its `// want <rule>` markers, line-exact.
func checkWantMarkers(t *testing.T, dir string) {
	t.Helper()
	findings := fixtureDirFindings(t, dir)
	gotLines := map[int]string{}
	for _, f := range findings {
		if prev, dup := gotLines[f.pos.Line]; dup && prev != f.rule {
			t.Errorf("%s line %d: two rules fired (%s, %s)", dir, f.pos.Line, prev, f.rule)
		}
		gotLines[f.pos.Line] = f.rule
	}
	files, err := filepath.Glob(filepath.Join("testdata", "src", dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("fixture glob %s: %v (%d files)", dir, err, len(files))
	}
	marks := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			lineNo := i + 1
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			marks++
			rule := strings.TrimSpace(line[idx+len("// want "):])
			if gotLines[lineNo] != rule {
				t.Errorf("%s:%d: want rule %s, got %q", file, lineNo, rule, gotLines[lineNo])
			}
			delete(gotLines, lineNo)
		}
	}
	if marks == 0 {
		t.Fatalf("fixture %s has no // want markers", dir)
	}
	for line, rule := range gotLines {
		t.Errorf("%s: finding %s at line %d has no `// want` marker", dir, rule, line)
	}
}

// TestMapOrderFixture pins the map-order rule: map ranges, selects,
// the wall clock and interprocedural helper results flowing into
// ordered sinks fire; sorted, element-addressed and reduction code
// stays silent; the waiver works.
func TestMapOrderFixture(t *testing.T) {
	checkWantMarkers(t, "mofix")
	for _, f := range fixtureDirFindings(t, "mofix") {
		if f.rule != "map-order" {
			t.Errorf("unexpected rule in mofix: %s", f)
		}
	}
}

// TestFPReassocFixture pins the fp-reassoc rule: descending loops,
// map-range bodies, permuted gathers and worker-captured accumulators
// fire; ascending sweeps, loop-local accumulators in descending outer
// loops, and integer accumulation stay silent.
func TestFPReassocFixture(t *testing.T) {
	checkWantMarkers(t, "fpfix")
	for _, f := range fixtureDirFindings(t, "fpfix") {
		if f.rule != "fp-reassoc" {
			t.Errorf("unexpected rule in fpfix: %s", f)
		}
	}
}

// TestFPExemptFileFixture pins the file-level fp-reassoc exemption: a
// //lucheck:allow fp-reassoc directive BEFORE the package clause waives
// the whole file's fp scan (fast.go — descending loop and
// worker-captured accumulator, both silent), while a sibling file of
// the same package without the directive still fires on its `want`
// lines and honors ordinary line-level waivers (bitwise.go). The real
// exempt files are the FastMath kernel variants in internal/blas,
// covered by TestRepoClean staying at zero findings.
func TestFPExemptFileFixture(t *testing.T) {
	checkWantMarkers(t, "fpfast")
	for _, f := range fixtureDirFindings(t, "fpfast") {
		if f.rule != "fp-reassoc" {
			t.Errorf("unexpected rule in fpfast: %s", f)
		}
		if strings.Contains(f.pos.Filename, "fast.go") {
			t.Errorf("file-level exemption leaked a finding: %s", f)
		}
	}
}

// TestSharedCaptureFixture pins the interprocedural shared-capture
// rule: one- and two-level pointer chains from worker closures and
// worker-reachable global writes fire; lock-at-the-call-site,
// lock-at-the-write and goroutine-local pointees stay silent.
func TestSharedCaptureFixture(t *testing.T) {
	checkWantMarkers(t, "capfix")
	for _, f := range fixtureDirFindings(t, "capfix") {
		if f.rule != "shared-capture" {
			t.Errorf("unexpected rule in capfix: %s", f)
		}
	}
}

// TestMutantsDetected asserts each rule family catches its seeded
// mutation of real-code shapes: map-range level construction,
// descending-k accumulation, and an unlocked captured write.
func TestMutantsDetected(t *testing.T) {
	for dir, rule := range map[string]string{
		"mutlevels":  "map-order",
		"mutdescend": "fp-reassoc",
		"mutcapture": "shared-capture",
	} {
		checkWantMarkers(t, dir)
		findings := fixtureDirFindings(t, dir)
		if len(findings) == 0 {
			t.Errorf("mutant %s not detected", dir)
		}
		for _, f := range findings {
			if f.rule != rule {
				t.Errorf("mutant %s: unexpected rule %s", dir, f.rule)
			}
		}
	}
}

// TestAllowJustification pins the suppression contract: a bare allow
// still suppresses its target rule but is itself reported, a directive
// naming no rule is reported, and the justified form is silent.
func TestAllowJustification(t *testing.T) {
	findings := fixtureDirFindings(t, "justfix")
	var just, other []finding
	for _, f := range findings {
		if f.rule == "allow-justification" {
			just = append(just, f)
		} else {
			other = append(other, f)
		}
	}
	if len(other) != 0 {
		t.Errorf("suppressed rules leaked through: %v", other)
	}
	if len(just) != 2 {
		t.Fatalf("allow-justification: got %d findings, want 2:\n%v", len(just), just)
	}

	// The findings must sit on the two non-compliant directive lines.
	data, err := os.ReadFile(filepath.Join("testdata", "src", "justfix", "just.go"))
	if err != nil {
		t.Fatal(err)
	}
	wantLines := map[int]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "//lucheck:allow map-order" || trimmed == "//lucheck:allow" {
			wantLines[i+1] = true
		}
	}
	if len(wantLines) != 2 {
		t.Fatalf("fixture scan found %d bare directives, want 2", len(wantLines))
	}
	for _, f := range just {
		if !wantLines[f.pos.Line] {
			t.Errorf("allow-justification at unexpected line %d: %s", f.pos.Line, f)
		}
	}
}

// TestCallGraph pins the call-graph construction on the cgfix fixture:
// method values and closures handed to sched.ExecuteCancelable become
// worker roots, interface calls dispatch to every satisfying concrete
// method, and function values flow through variables.
func TestCallGraph(t *testing.T) {
	pkgs, fset, mod := loadOnce(t)
	g := buildCallGraph(fset, pkgs, fixtureConfig(mod))

	const cgPath = "repro/fixture/cgfix"
	nodesByName := map[string][]*cgNode{}
	var closureRoots []*cgNode
	for _, n := range g.nodes {
		if n.pi.path != cgPath {
			continue
		}
		if n.obj != nil {
			nodesByName[n.obj.Name()] = append(nodesByName[n.obj.Name()], n)
		} else if n.workerRoot {
			closureRoots = append(closureRoots, n)
		}
	}

	// Method value c.tick → sched.ExecuteCancelable: worker root.
	ticks := nodesByName["tick"]
	if len(ticks) != 1 || !ticks[0].workerRoot {
		t.Errorf("tick: want 1 worker-root node, got %d (root=%v)", len(ticks), len(ticks) == 1 && ticks[0].workerRoot)
	}

	// Closure literal → sched.ExecuteCancelable: worker root.
	if len(closureRoots) != 1 {
		t.Errorf("closure worker roots: got %d, want 1", len(closureRoots))
	}

	// Interface dispatch: drive's s.step() resolves to both fwd.step
	// and bwd.step via the type-set approximation.
	drives := nodesByName["drive"]
	if len(drives) != 1 {
		t.Fatalf("drive: got %d nodes", len(drives))
	}
	stepRecvs := map[string]bool{}
	for _, e := range drives[0].calls {
		if e.callee.obj != nil && e.callee.obj.Name() == "step" {
			stepRecvs[e.callee.obj.FullName()] = true
		}
	}
	if len(stepRecvs) != 2 {
		t.Errorf("interface dispatch: drive resolves to %d step implementations, want 2: %v", len(stepRecvs), stepRecvs)
	}

	// Function value through a variable: invoke's hook() call resolves
	// to helperA, assigned elsewhere.
	invokes := nodesByName["invoke"]
	if len(invokes) != 1 {
		t.Fatalf("invoke: got %d nodes", len(invokes))
	}
	foundHelper := false
	for _, e := range invokes[0].calls {
		if e.callee.obj != nil && e.callee.obj.Name() == "helperA" {
			foundHelper = true
		}
	}
	if !foundHelper {
		t.Errorf("function-value flow: invoke has no edge to helperA")
	}

	// Per-arch file selection: exactly one archTag variant is loaded.
	if n := len(nodesByName["archTag"]); n != 1 {
		t.Errorf("build-constraint selection: %d archTag nodes, want exactly 1", n)
	}
}

// TestOutputFormats pins the JSON and SARIF emission shapes.
func TestOutputFormats(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings := []finding{
		{pos: token.Position{Filename: filepath.Join(root, "internal", "core", "x.go"), Line: 7, Column: 3},
			rule: "map-order", msg: "test message"},
		{pos: token.Position{Filename: filepath.Join(root, "internal", "blas", "y.go"), Line: 1, Column: 1},
			rule: "fp-reassoc", msg: "second"},
	}

	var jbuf bytes.Buffer
	if err := writeJSON(&jbuf, root, findings); err != nil {
		t.Fatal(err)
	}
	var jout []jsonFinding
	if err := json.Unmarshal(jbuf.Bytes(), &jout); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, jbuf.String())
	}
	if len(jout) != 2 || jout[0].File != "internal/core/x.go" || jout[0].Line != 7 || jout[0].Rule != "map-order" {
		t.Errorf("json shape wrong: %+v", jout)
	}

	var sbuf bytes.Buffer
	if err := writeSARIF(&sbuf, root, findings); err != nil {
		t.Fatal(err)
	}
	var sarif struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(sbuf.Bytes(), &sarif); err != nil {
		t.Fatalf("sarif output does not parse: %v\n%s", err, sbuf.String())
	}
	if sarif.Version != "2.1.0" || !strings.Contains(sarif.Schema, "sarif-2.1.0") {
		t.Errorf("sarif version/schema wrong: %q %q", sarif.Version, sarif.Schema)
	}
	if len(sarif.Runs) != 1 || sarif.Runs[0].Tool.Driver.Name != "lucheck" {
		t.Fatalf("sarif runs/tool wrong:\n%s", sbuf.String())
	}
	run := sarif.Runs[0]
	if len(run.Results) != 2 {
		t.Fatalf("sarif results: got %d, want 2", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "map-order" || r.Level != "error" || r.Message.Text != "test message" {
		t.Errorf("sarif result wrong: %+v", r)
	}
	if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) ||
		run.Tool.Driver.Rules[r.RuleIndex].ID != "map-order" {
		t.Errorf("sarif ruleIndex does not point at the rule entry")
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/x.go" || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Errorf("sarif location wrong: %+v", loc)
	}
	if loc.Region.StartLine != 7 || loc.Region.StartColumn != 3 {
		t.Errorf("sarif region wrong: %+v", loc.Region)
	}

	// Every built-in rule must have a SARIF rules entry.
	ids := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ids[r.ID] = true
	}
	for _, want := range []string{"map-order", "fp-reassoc", "shared-capture", "allow-justification", "hot-alloc"} {
		if !ids[want] {
			t.Errorf("sarif rules array missing %q", want)
		}
	}
}

// TestSelfCheckScope pins the self-check: the checker's own package is
// loaded by the module walk and carries the map-order contract scope,
// so its finding order and package walks cannot flap in CI.
func TestSelfCheckScope(t *testing.T) {
	pkgs, _, mod := loadOnce(t)
	if !defaultConfig(mod).contract[mod+"/cmd/lucheck"] {
		t.Fatal("cmd/lucheck missing from the contract scope")
	}
	for _, pi := range pkgs {
		if pi.path == mod+"/cmd/lucheck" {
			return
		}
	}
	t.Fatal("cmd/lucheck not loaded by the module walk")
}

// TestCLIFormatsAndAudit runs the built binary against a throwaway
// module exercising -format=json, -format=sarif -o and -audit.
func TestCLIFormatsAndAudit(t *testing.T) {
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "lucheck")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building lucheck: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "mod")
	pkg := filepath.Join(mod, "internal", "oops")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package oops\n\n" +
		"func Boom() { panic(\"no prefix here\") }\n\n" +
		"func Quiet() {\n" +
		"\t//lucheck:allow naked-panic\n" +
		"\tpanic(\"also no prefix\")\n" +
		"}\n"
	for path, content := range map[string]string{
		filepath.Join(mod, "go.mod"):  "module fixmod\n\ngo 1.22\n",
		filepath.Join(pkg, "oops.go"): src,
	} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	run := func(args ...string) (string, int) {
		cmd := exec.Command(bin, append(args, "./...")...)
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		code := 0
		var exitErr *exec.ExitError
		if errors.As(err, &exitErr) {
			code = exitErr.ExitCode()
		} else if err != nil {
			t.Fatalf("running lucheck %v: %v\n%s", args, err, out)
		}
		return string(out), code
	}

	// JSON: stdout parses as an array naming both findings (the naked
	// panic and the unjustified allow).
	jout, code := run("-format=json")
	if code != 1 {
		t.Fatalf("-format=json exit = %d, want 1\n%s", code, jout)
	}
	// CombinedOutput interleaves the stderr summary; cut at the array.
	jsonPart := jout[strings.Index(jout, "["):]
	jsonPart = jsonPart[:strings.LastIndex(jsonPart, "]")+1]
	var arr []jsonFinding
	if err := json.Unmarshal([]byte(jsonPart), &arr); err != nil {
		t.Fatalf("json CLI output does not parse: %v\n%s", err, jout)
	}
	rules := map[string]bool{}
	for _, f := range arr {
		rules[f.Rule] = true
	}
	if !rules["naked-panic"] || !rules["allow-justification"] {
		t.Errorf("json CLI findings missing rules: %+v", arr)
	}

	// SARIF to a file.
	sarifPath := filepath.Join(tmp, "out.sarif")
	sout, code := run("-format=sarif", "-o", sarifPath)
	if code != 1 {
		t.Fatalf("-format=sarif exit = %d, want 1\n%s", code, sout)
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var sarif map[string]any
	if err := json.Unmarshal(data, &sarif); err != nil {
		t.Fatalf("sarif file does not parse: %v", err)
	}
	if sarif["version"] != "2.1.0" {
		t.Errorf("sarif file version = %v, want 2.1.0", sarif["version"])
	}

	// Audit: the bare allow is inventoried as UNJUSTIFIED and the run
	// fails.
	aout, code := run("-audit")
	if code != 1 {
		t.Fatalf("-audit exit = %d, want 1\n%s", code, aout)
	}
	if !strings.Contains(aout, "1 suppression(s)") || !strings.Contains(aout, "UNJUSTIFIED") {
		t.Errorf("-audit output missing inventory:\n%s", aout)
	}
}

// TestAuditInventory pins the audit listing: every suppression shows
// up with its justification and the unjustified count is returned.
func TestAuditInventory(t *testing.T) {
	root := "/mod"
	supps := []suppression{
		{pos: token.Position{Filename: "/mod/a.go", Line: 10}, rules: []string{"map-order"}, justification: "keys re-sorted by the caller"},
		{pos: token.Position{Filename: "/mod/b.go", Line: 4}, rules: []string{"hot-alloc", "fp-reassoc"}},
	}
	var buf bytes.Buffer
	bad := writeAudit(&buf, root, supps)
	out := buf.String()
	if bad != 1 {
		t.Errorf("unjustified count = %d, want 1", bad)
	}
	if !strings.Contains(out, "2 suppression(s)") ||
		!strings.Contains(out, "a.go:10: allow map-order — keys re-sorted by the caller") ||
		!strings.Contains(out, "b.go:4: allow hot-alloc,fp-reassoc — UNJUSTIFIED") {
		t.Errorf("audit listing wrong:\n%s", out)
	}
}
