// Command lucheck is the project-specific static checker for the
// parallel sparse LU codebase. It parses and type-checks the whole
// module with the standard library's go/ast and go/types and enforces
// seven invariants the general tools cannot know about:
//
//   - pattern-mutation: the CSC/Pattern structure slices (ColPtr,
//     RowInd) back the *static* symbolic factorization; they may only
//     be written inside the constructor packages (internal/sparse,
//     internal/symbolic). Everywhere else the sparsity structure is
//     read-only; the numeric values (Val) stay writable.
//   - naked-panic: internal/* library packages must panic with a
//     "<pkg>: ..."-prefixed message (or return an error) so crashes
//     name the subsystem whose invariant broke.
//   - float-equality: ==/!= between two non-constant floats in the
//     numeric kernels (internal/blas, internal/core, internal/gplu).
//     Comparisons against constants (singularity tests against zero)
//     stay legal.
//   - lock-discipline: goroutine bodies in internal/sched may write
//     variables shared with the spawner only while a sync lock is held.
//   - worker-timing: goroutine bodies in internal/sched may not read
//     the wall clock (time.Now / time.Since) directly; task timing goes
//     through the internal/trace recorder so traces are the single
//     source of truth and untraced runs pay no timing cost.
//   - worker-exit: goroutine bodies in internal/sched may not
//     terminate the process (os.Exit, log.Fatal*); failures must flow
//     through the scheduler's TaskError/cancellation contract so the
//     caller learns which task failed and the pool shuts down cleanly.
//   - hot-alloc: the numeric hot path is allocation-free by contract.
//     internal/blas non-test code may not call make or append at all
//     (kernel scratch comes from the packing-scratch pool); goroutine
//     bodies in internal/sched may not either, since anything there
//     runs once per task. Setup code outside worker closures may
//     allocate freely.
//
// Findings can be waived with a `//lucheck:allow <rule>` comment on the
// same line or the line above, which keeps deliberate exceptions
// greppable.
//
// Usage:
//
//	go run ./cmd/lucheck ./...
//
// The only accepted package argument is ./... (the checker always
// analyzes the whole module, starting from the enclosing go.mod). Exit
// status is 0 when the module is clean and 1 when findings remain.
package main

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

func main() {
	for _, arg := range os.Args[1:] {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "usage: lucheck [./...]  (always checks the whole module)\n")
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath, err := moduleRoot(cwd)
	if err != nil {
		fatal(err)
	}

	fset := token.NewFileSet()
	pkgs, err := loadModule(fset, root, modPath, nil)
	if err != nil {
		fatal(err)
	}

	findings := analyzeAll(fset, pkgs, defaultConfig(modPath))
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lucheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	noun := "packages"
	if len(pkgs) == 1 {
		noun = "package"
	}
	fmt.Printf("lucheck: %d %s clean\n", len(pkgs), noun)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lucheck: %v\n", err)
	os.Exit(2)
}
