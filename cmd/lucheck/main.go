// Command lucheck is the project-specific static checker for the
// parallel sparse LU codebase. It parses and type-checks the whole
// module with the standard library's go/ast and go/types, builds a
// module-wide call graph (including method values, interface dispatch
// and closures handed to the sched executors), and enforces invariants
// the general tools cannot know about:
//
//   - pattern-mutation: the CSC/Pattern structure slices (ColPtr,
//     RowInd) back the *static* symbolic factorization; they may only
//     be written inside the constructor packages (internal/sparse,
//     internal/symbolic). Everywhere else the sparsity structure is
//     read-only; the numeric values (Val) stay writable.
//   - naked-panic: internal/* library packages must panic with a
//     "<pkg>: ..."-prefixed message (or return an error) so crashes
//     name the subsystem whose invariant broke.
//   - float-equality: ==/!= between two non-constant floats in the
//     numeric kernels (internal/blas, internal/core, internal/gplu).
//     Comparisons against constants (singularity tests against zero)
//     stay legal.
//   - lock-discipline: goroutine bodies in internal/sched may write
//     variables shared with the spawner only while a sync lock is held.
//   - worker-timing: goroutine bodies in internal/sched may not read
//     the wall clock (time.Now / time.Since) directly; task timing goes
//     through the internal/trace recorder so traces are the single
//     source of truth and untraced runs pay no timing cost.
//   - worker-exit: goroutine bodies in internal/sched may not
//     terminate the process (os.Exit, log.Fatal*); failures must flow
//     through the scheduler's TaskError/cancellation contract so the
//     caller learns which task failed and the pool shuts down cleanly.
//   - hot-alloc: the numeric hot path is allocation-free by contract.
//     internal/blas non-test code may not call make or append at all
//     (kernel scratch comes from the packing-scratch pool); goroutine
//     bodies in internal/sched may not either, since anything there
//     runs once per task. Setup code outside worker closures may
//     allocate freely.
//   - map-order: in the determinism-contract packages, values whose
//     order comes from a nondeterministic source (map iteration,
//     multi-ready select, time.Now, math/rand) must not flow into
//     ordered sinks — schedule and level slices, task queues, trace
//     event streams, stored numeric values — without an intervening
//     deterministic sort. The taint follows values interprocedurally
//     through unexported call results.
//   - fp-reassoc: float accumulation in the numeric packages must
//     follow the pinned ascending-k order — no summation in descending
//     loops (outside the whitelisted upper-triangular solves), in
//     map-range bodies, through permuted index gathers, or into
//     variables captured by worker closures (task-completion order).
//   - shared-capture: the interprocedural extension of lock-discipline.
//     A variable captured by reference (&v handed down a call chain
//     starting in a worker closure) may be written in the callee only
//     if a sync lock is held at the write or at some call site on the
//     chain; mutable package-level variables written from
//     worker-reachable code get the same check.
//   - allow-justification: every //lucheck:allow must name its rules
//     and carry a justification ("— <why>"); a bare allow suppresses
//     but is itself a finding, and -audit lists the full inventory.
//
// Findings can be waived with
//
//	//lucheck:allow <rule>[,<rule>...] — <justification>
//
// on the same line or the line above, which keeps deliberate
// exceptions greppable and reviewable.
//
// Usage:
//
//	go run ./cmd/lucheck [-format=text|json|sarif] [-o file] [-audit] ./...
//
// The only accepted package argument is ./... (the checker always
// analyzes the whole module, starting from the enclosing go.mod). Exit
// status is 0 when the module is clean and 1 when findings remain;
// -audit also lists every suppression with its justification.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
)

func main() {
	var (
		format  = flag.String("format", "text", "output format: text, json or sarif")
		outPath = flag.String("o", "", "write findings to this file instead of stdout")
		audit   = flag.Bool("audit", false, "also inventory every //lucheck:allow suppression")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lucheck [-format=text|json|sarif] [-o file] [-audit] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "usage: lucheck [flags] [./...]  (always checks the whole module)\n")
			os.Exit(2)
		}
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "lucheck: unknown -format %q (want text, json or sarif)\n", *format)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath, err := moduleRoot(cwd)
	if err != nil {
		fatal(err)
	}

	fset := token.NewFileSet()
	pkgs, err := loadModule(fset, root, modPath, nil)
	if err != nil {
		fatal(err)
	}

	a := analyzeModule(fset, pkgs, defaultConfig(modPath))
	findings := a.findings
	sort.Slice(findings, func(i, j int) bool {
		x, y := findings[i].pos, findings[j].pos
		if x.Filename != y.Filename {
			return x.Filename < y.Filename
		}
		if x.Line != y.Line {
			return x.Line < y.Line
		}
		return x.Column < y.Column
	})

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "json":
		if err := writeJSON(out, root, findings); err != nil {
			fatal(err)
		}
	case "sarif":
		if err := writeSARIF(out, root, findings); err != nil {
			fatal(err)
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
	}

	if *audit {
		writeAudit(os.Stdout, root, a.supps)
	}

	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lucheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	noun := "packages"
	if len(pkgs) == 1 {
		noun = "package"
	}
	fmt.Fprintf(os.Stderr, "lucheck: %d %s clean\n", len(pkgs), noun)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lucheck: %v\n", err)
	os.Exit(2)
}
