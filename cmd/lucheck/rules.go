package main

// The project-specific rules. Each rule is scoped by import path (see
// config) and reports findings that can be suppressed with a trailing
// or preceding comment of the form
//
//	//lucheck:allow <rule>[,<rule>...] — justification
//
// Rules:
//
//   - pattern-mutation: the CSC/Pattern structure fields (ColPtr,
//     RowInd) are the inputs of symbolic analysis; once a matrix leaves
//     its constructor package, mutating them invalidates the static
//     symbolic factorization. Writes are allowed only inside the
//     whitelisted constructor packages. Val (the numeric values) stays
//     writable — the numeric phase scales and updates it freely.
//   - naked-panic: library packages (internal/*) must either return
//     errors or panic with a "<pkg>: ..."-prefixed message so a crash
//     names the subsystem that detected the broken invariant.
//   - float-equality: ==/!= between two non-constant floating-point
//     expressions in the numeric kernels; comparisons against constants
//     (exact-zero singularity tests, beta == 1 fast paths) are fine.
//   - lock-discipline: inside goroutines launched by the sched worker
//     pools, direct writes to variables shared with other goroutines
//     must happen while a sync.Mutex is held.
//   - worker-timing: inside goroutines of the worker packages, the wall
//     clock (time.Now / time.Since) must not be read directly; task
//     timing goes through the internal/trace recorder so traces stay
//     the single source of truth and untraced runs pay no timing cost.
//   - worker-exit: inside goroutines of the worker packages, the
//     process must not be terminated directly (os.Exit, log.Fatal*).
//     A worker that kills the process on failure bypasses the
//     scheduler's error contract: failures surface as a TaskError
//     through the cancellation path, so the caller learns which task
//     failed and the remaining workers stop cleanly.
//   - spin-loop: in the worker packages, an unbounded `for` loop that
//     polls for work (an atomic .Load, or a pop/steal/claim call) must
//     block or back off between polls — park on a condition variable,
//     runtime.Gosched, time.Sleep, a select or a channel operation. A
//     worker that spins without any of these burns a core while
//     starved, and with more workers than cores it can starve the very
//     victim whose deque it is polling.
//   - hot-alloc: the numeric hot path is allocation-free by contract
//     (the zero-allocation proof in internal/core pins it). In the
//     hot-path packages (internal/blas) no non-test code may call make
//     or append at all — kernel scratch comes from the packing-scratch
//     pool, everything else from caller-provided buffers. In the worker
//     packages the same ban applies inside goroutine bodies launched
//     with `go func`, where an allocation would run once per task. In
//     the sched-client packages (internal/core) it also applies inside
//     function literals handed to the sched executors
//     (sched.Execute*) — those closures are the per-task worker bodies
//     of the numeric and solve hot paths even though the `go` statement
//     lives in internal/sched.
//   - request-ctx: in the request-serving packages (internal/server),
//     context.Background() and context.TODO() are forbidden — every
//     operation must run under the request's context so deadlines and
//     client disconnects reach the numeric kernels — and every `go`
//     statement must visibly thread a cancellation signal: the spawned
//     code (or its arguments) must reference a context.Context, a
//     *sched.Canceler, or perform a channel operation. A detached
//     goroutine in a long-lived server is a leak the chaos suite's
//     goroutine accounting would only catch after the fact; the rule
//     catches it at review time.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// finding is one rule violation.
type finding struct {
	pos  token.Position
	rule string
	msg  string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.pos.Filename, f.pos.Line, f.pos.Column, f.rule, f.msg)
}

// config scopes the rules to package sets.
type config struct {
	modPath string
	// sparsePath is the package whose storage fields are protected.
	sparsePath string
	// constructors may mutate ColPtr/RowInd/Val (they build the
	// structures in the first place).
	constructors map[string]bool
	// numeric packages get the float-equality rule.
	numeric map[string]bool
	// workers packages get the lock-discipline rule.
	workers map[string]bool
	// hotpath packages get the whole-file hot-alloc rule (no make or
	// append anywhere in non-test code); workers packages get the
	// goroutine-body variant unless they are also hotpath (whole-file
	// subsumes it).
	hotpath map[string]bool
	// schedClients packages get the hot-alloc rule inside function
	// literals passed to the sched executors (their per-task worker
	// bodies), unless they are also hotpath.
	schedClients map[string]bool
	// service packages get the request-ctx rule: no
	// context.Background/TODO, and `go` statements must thread a
	// cancellation signal.
	service map[string]bool
	// contract packages carry the bitwise-determinism contract and get
	// the map-order taint rule. cmd/lucheck checks itself: its findings
	// and package walks must be deterministically ordered too.
	contract map[string]bool
	// fpScope packages get the fp-reassoc rule (pinned accumulation
	// order); fpWhitelist names files (by base name) whose descending
	// loops ARE the pinned direction — the upper-triangular solves.
	fpScope     map[string]bool
	fpWhitelist map[string]bool
	// sinkFields are the ordered structure fields of the map-order
	// rule: schedule and level slices, task lists, stored values.
	sinkFields map[string]bool
	// sinkPkgs are the packages whose call arguments are ordered sinks
	// (task queues, schedules, trace event streams).
	sinkPkgs map[string]bool
}

// defaultConfig is the rule scoping for this repository.
func defaultConfig(modPath string) *config {
	p := func(s string) string { return modPath + "/" + s }
	return &config{
		modPath:    modPath,
		sparsePath: p("internal/sparse"),
		constructors: map[string]bool{
			p("internal/sparse"):   true,
			p("internal/symbolic"): true,
		},
		numeric: map[string]bool{
			p("internal/blas"): true,
			p("internal/core"): true,
			p("internal/gplu"): true,
			// The command-line tools compute residuals and compare
			// benchmark times; exact float comparison is as wrong there
			// as in the kernels.
			p("cmd/splu"):       true,
			p("cmd/paperbench"): true,
			p("cmd/matinfo"):    true,
		},
		workers: map[string]bool{
			p("internal/sched"): true,
			// The parallel-analyze subtree pools: goroutine bodies in
			// the symbolic engine and the analysis-overlap stages get
			// the same hygiene contract as the numeric executors.
			p("internal/symbolic"): true,
			p("internal/core"):     true,
		},
		hotpath: map[string]bool{
			p("internal/blas"): true,
		},
		schedClients: map[string]bool{
			p("internal/core"): true,
		},
		service: map[string]bool{
			p("internal/server"): true,
		},
		contract: map[string]bool{
			p("internal/core"):      true,
			p("internal/sched"):     true,
			p("internal/taskgraph"): true,
			p("internal/symbolic"):  true,
			// Self-check: the checker's own output and package walks
			// must be deterministic, or its findings flap in CI.
			p("cmd/lucheck"): true,
		},
		fpScope: map[string]bool{
			p("internal/blas"): true,
			p("internal/core"): true,
		},
		fpWhitelist: map[string]bool{
			// The upper-triangular kernels are pinned DESCENDING: the
			// serial backward sweep is their contract order.
			"level2.go": true,
			"level3.go": true,
		},
		sinkFields: map[string]bool{
			"Order": true, "Off": true, "Levels": true, "Tasks": true,
			"Succ": true, "Queue": true, "Prio": true, "Val": true,
		},
		sinkPkgs: map[string]bool{
			p("internal/sched"):     true,
			p("internal/taskgraph"): true,
			p("internal/trace"):     true,
		},
	}
}

// analysis is the module-wide state: the suppression index, the
// suppression inventory (for -audit) and the findings of every rule,
// intra- and interprocedural.
type analysis struct {
	fset    *token.FileSet
	cfg     *config
	allowed map[string]map[int]map[string]bool // file -> line -> rules
	// fpExempt names files whose entire fp scan is waived: a
	// //lucheck:allow fp-reassoc directive placed BEFORE the package
	// clause opts the whole file out of the pinned-accumulation-order
	// contract. That placement is reserved for relaxed-mode kernel
	// files (the FastMath variants), whose accuracy is enforced by the
	// componentwise error-bound suite instead of the parity pins; the
	// usual line-level form still covers single-site waivers.
	fpExempt map[string]bool
	supps    []suppression
	findings []finding
}

// suppression is one //lucheck:allow comment.
type suppression struct {
	pos           token.Position
	tokPos        token.Pos
	rules         []string
	justification string
}

func newAnalysis(fset *token.FileSet, cfg *config) *analysis {
	return &analysis{fset: fset, cfg: cfg, allowed: map[string]map[int]map[string]bool{}, fpExempt: map[string]bool{}}
}

// analyzeAll runs every rule over every package: the per-package
// syntactic rules, then the interprocedural rules on the module-wide
// call graph, then the suppression-justification check.
func analyzeAll(fset *token.FileSet, pkgs []*pkgInfo, cfg *config) []finding {
	return analyzeModule(fset, pkgs, cfg).findings
}

// analyzeModule is analyzeAll returning the full analysis state — the
// -audit mode also wants the suppression inventory.
func analyzeModule(fset *token.FileSet, pkgs []*pkgInfo, cfg *config) *analysis {
	a := newAnalysis(fset, cfg)
	for _, pi := range pkgs {
		for _, f := range pi.files {
			a.indexSuppressions(f)
		}
	}
	for _, pi := range pkgs {
		a.pkgRules(pi)
	}
	cg := buildCallGraph(fset, pkgs, cfg)
	a.mapOrder(cg)
	a.fpReassoc(cg)
	a.sharedCapture(cg)
	a.checkJustifications()
	return a
}

// collectSuppressions indexes the whole module's //lucheck:allow
// comments without running any rules (the -audit mode).
func collectSuppressions(fset *token.FileSet, pkgs []*pkgInfo, cfg *config) []suppression {
	a := newAnalysis(fset, cfg)
	for _, pi := range pkgs {
		for _, f := range pi.files {
			a.indexSuppressions(f)
		}
	}
	return a.supps
}

// analyzePkg runs the per-package rules on one package in isolation
// (used by the tests to scope fixture packages).
func analyzePkg(fset *token.FileSet, pi *pkgInfo, cfg *config) []finding {
	a := newAnalysis(fset, cfg)
	for _, f := range pi.files {
		a.indexSuppressions(f)
	}
	a.pkgRules(pi)
	return a.findings
}

// pkgRules runs the intra-procedural rules on one package.
func (a *analysis) pkgRules(pi *pkgInfo) {
	p := &pass{fset: a.fset, pi: pi, cfg: a.cfg, a: a}
	for _, f := range pi.files {
		if !a.cfg.constructors[pi.path] {
			p.patternMutation(f)
		}
		if strings.Contains(pi.path, "/internal/") {
			p.nakedPanic(f)
		}
		if a.cfg.numeric[pi.path] {
			p.floatEquality(f)
		}
		if a.cfg.workers[pi.path] {
			p.lockDiscipline(f)
			p.workerTiming(f)
			p.workerExit(f)
			p.spinLoop(f)
		}
		if a.cfg.service[pi.path] {
			p.requestCtx(f)
		}
		// Whole-file hot-alloc takes precedence over the narrower scans
		// so a package in several sets is not double-reported.
		if a.cfg.hotpath[pi.path] {
			p.hotAllocFile(f)
		} else {
			if a.cfg.workers[pi.path] {
				p.hotAllocGoroutines(f)
			}
			if a.cfg.schedClients[pi.path] {
				p.hotAllocSchedClosures(f)
			}
		}
	}
}

// pass carries the per-package analysis state.
type pass struct {
	fset *token.FileSet
	pi   *pkgInfo
	cfg  *config
	a    *analysis
}

// indexSuppressions records the //lucheck:allow comments of a file:
// both the line index consulted by report and the inventory behind
// -audit. The accepted form is
//
//	//lucheck:allow <rule>[,<rule>...] — <justification>
//
// (an ASCII "--" separator also works). The justification is
// mandatory; a bare allow still suppresses its target rules but is
// itself reported by the allow-justification rule and fails -audit.
func (a *analysis) indexSuppressions(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			// Directive convention: no space between // and the verb, so
			// prose that merely mentions the syntax is not a directive.
			after, ok := strings.CutPrefix(c.Text, "//lucheck:allow")
			if !ok {
				continue
			}
			rest := strings.TrimSpace(after)
			word := rest
			if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
				word = rest[:sp]
			}
			just := parseJustification(strings.TrimSpace(rest[len(word):]))
			pos := a.fset.Position(c.Pos())
			byLine := a.allowed[pos.Filename]
			if byLine == nil {
				byLine = map[int]map[string]bool{}
				a.allowed[pos.Filename] = byLine
			}
			rules := byLine[pos.Line]
			if rules == nil {
				rules = map[string]bool{}
				byLine[pos.Line] = rules
			}
			var ruleList []string
			for _, r := range strings.Split(word, ",") {
				if r != "" {
					rules[r] = true
					ruleList = append(ruleList, r)
					// A fp-reassoc allow placed before the package clause
					// waives the whole file's fp scan (relaxed-mode kernel
					// files); anywhere else it stays a line-level waiver.
					if r == "fp-reassoc" && c.Pos() < f.Package {
						a.fpExempt[pos.Filename] = true
					}
				}
			}
			a.supps = append(a.supps, suppression{
				pos: pos, tokPos: c.Pos(), rules: ruleList, justification: just,
			})
		}
	}
}

// parseJustification extracts the justification text after the em-dash
// (or "--") separator; empty when absent.
func parseJustification(rest string) string {
	for _, sep := range []string{"—", "–", "--"} {
		if cut, ok := strings.CutPrefix(rest, sep); ok {
			return strings.TrimSpace(cut)
		}
	}
	return ""
}

// checkJustifications files an allow-justification finding for every
// bare suppression. The finding is itself unsuppressable: an allow
// without a reason is exactly what the audit trail must not contain.
func (a *analysis) checkJustifications() {
	for _, s := range a.supps {
		if len(s.rules) == 0 {
			a.report(s.tokPos, "allow-justification",
				"lucheck:allow names no rule; spell it //lucheck:allow <rule> — <why>")
			continue
		}
		if s.justification == "" {
			a.report(s.tokPos, "allow-justification",
				"suppression of %s has no justification; spell it //lucheck:allow %s — <why>",
				strings.Join(s.rules, ","), strings.Join(s.rules, ","))
		}
	}
}

// report files a finding unless a suppression covers its line (either
// trailing on the same line or on the line directly above). The
// allow-justification rule cannot be suppressed.
func (a *analysis) report(pos token.Pos, rule, format string, args ...any) {
	position := a.fset.Position(pos)
	if rule != "allow-justification" {
		if byLine := a.allowed[position.Filename]; byLine != nil {
			for _, line := range []int{position.Line, position.Line - 1} {
				if rules := byLine[line]; rules != nil && (rules[rule] || rules["all"]) {
					return
				}
			}
		}
	}
	a.findings = append(a.findings, finding{pos: position, rule: rule, msg: fmt.Sprintf(format, args...)})
}

// report delegates to the shared analysis.
func (p *pass) report(pos token.Pos, rule, format string, args ...any) {
	p.a.report(pos, rule, format, args...)
}

// ---------------------------------------------------------------- rules

// patternMutation flags writes to the protected sparse storage fields.
func (p *pass) patternMutation(f *ast.File) {
	check := func(lhs ast.Expr) {
		if field, recvType, ok := p.protectedField(lhs); ok {
			p.report(lhs.Pos(), "pattern-mutation",
				"mutation of %s.%s outside a constructor package invalidates the static symbolic factorization", recvType, field)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(st.X)
		}
		return true
	})
}

// protectedField reports whether e writes (possibly through an index
// expression) a ColPtr/RowInd/Val field of a type defined in the sparse
// package, returning the field and receiver type names.
func (p *pass) protectedField(e ast.Expr) (field, recvType string, ok bool) {
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			sel, isSel := e.(*ast.SelectorExpr)
			if !isSel {
				return "", "", false
			}
			s := p.pi.info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return "", "", false
			}
			obj := s.Obj()
			name := obj.Name()
			if name != "ColPtr" && name != "RowInd" {
				return "", "", false
			}
			if obj.Pkg() == nil || obj.Pkg().Path() != p.cfg.sparsePath {
				return "", "", false
			}
			recv := s.Recv()
			if ptr, isPtr := recv.(*types.Pointer); isPtr {
				recv = ptr.Elem()
			}
			tn := recv.String()
			if named, isNamed := recv.(*types.Named); isNamed {
				tn = named.Obj().Name()
			}
			return name, tn, true
		}
	}
}

// nakedPanic flags panic calls in library packages whose argument does
// not carry a "<pkg>: "-prefixed message.
func (p *pass) nakedPanic(f *ast.File) {
	prefix := p.pi.name + ": "
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" || len(call.Args) != 1 {
			return true
		}
		if obj := p.pi.info.Uses[id]; obj == nil || obj.Parent() != types.Universe {
			return true // shadowed, not the builtin
		}
		if !p.prefixedMessage(call.Args[0], prefix) {
			p.report(call.Pos(), "naked-panic",
				"library panic without a %q prefixed message; return an error or name the subsystem", p.pi.name+":")
		}
		return true
	})
}

// prefixedMessage reports whether arg is a string literal starting with
// prefix, or a fmt.Sprintf/fmt.Errorf call whose format does.
func (p *pass) prefixedMessage(arg ast.Expr, prefix string) bool {
	switch a := arg.(type) {
	case *ast.BasicLit:
		if a.Kind != token.STRING {
			return false
		}
		s, err := strconv.Unquote(a.Value)
		return err == nil && strings.HasPrefix(s, prefix)
	case *ast.CallExpr:
		sel, ok := a.Fun.(*ast.SelectorExpr)
		if !ok || len(a.Args) == 0 {
			return false
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "fmt" {
			return false
		}
		if sel.Sel.Name != "Sprintf" && sel.Sel.Name != "Errorf" && sel.Sel.Name != "Sprint" {
			return false
		}
		return p.prefixedMessage(a.Args[0], prefix)
	}
	return false
}

// floatEquality flags ==/!= between two non-constant float expressions.
func (p *pass) floatEquality(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		tx, okx := p.pi.info.Types[be.X]
		ty, oky := p.pi.info.Types[be.Y]
		if !okx || !oky {
			return true
		}
		if !isFloat(tx.Type) || !isFloat(ty.Type) {
			return true
		}
		if tx.Value != nil || ty.Value != nil {
			return true // comparison against a constant is deliberate
		}
		p.report(be.OpPos, "float-equality",
			"%s between two non-constant floats; compare against a tolerance or a constant", be.Op)
		return true
	})
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// lockDiscipline checks goroutine bodies: a direct write to a variable
// declared outside the goroutine must happen while a sync lock is held.
// The tracking is lexical — Lock/Unlock calls toggle a counter along
// the statement list, and blocks that end in return/break/continue are
// analyzed on a copy of the state (the early-unlock-and-return idiom).
// Mutation through calls (heap.Push, atomic.*) is out of scope: the
// former is guarded by the same lock in this codebase, the latter is
// safe by construction.
func (p *pass) lockDiscipline(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
			lc := &lockChecker{pass: p, fnPos: fl.Pos(), fnEnd: fl.End()}
			lc.block(fl.Body.List)
		}
		return true
	})
}

// workerTiming flags direct time.Now / time.Since calls inside
// goroutines of the worker packages. All timing of the numeric phase is
// centralized in the internal/trace recorder (whose clock reads are the
// one sanctioned wall-clock access), so a stray time.Now in a worker
// loop is either duplicated instrumentation or a hidden per-task cost
// that the nil-recorder overhead guarantee does not account for.
func (p *pass) workerTiming(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Now" && sel.Sel.Name != "Since" {
				return true
			}
			obj := p.pi.info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			p.report(call.Pos(), "worker-timing",
				"direct time.%s in a worker goroutine; timing belongs to the internal/trace recorder", sel.Sel.Name)
			return true
		})
		return true
	})
}

// workerExit flags process-terminating calls (os.Exit, log.Fatal*)
// inside goroutines of the worker packages. A worker closure that kills
// the process on failure bypasses the scheduler's error contract —
// failures must surface as a TaskError through the cancellation path so
// the caller learns which task failed and the remaining workers stop
// cleanly instead of vanishing mid-factorization.
func (p *pass) workerExit(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.pi.info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch {
			case obj.Pkg().Path() == "os" && sel.Sel.Name == "Exit":
			case obj.Pkg().Path() == "log" && strings.HasPrefix(sel.Sel.Name, "Fatal"):
			default:
				return true
			}
			p.report(call.Pos(), "worker-exit",
				"%s.%s in a worker goroutine kills the process; fail through the scheduler's error contract instead", obj.Pkg().Path(), sel.Sel.Name)
			return true
		})
		return true
	})
}

// spinLoop flags unbounded busy-wait loops in the worker packages: a
// `for` loop with no init and no post clause (so nothing bounds its
// trip count) that polls for claimable state — an atomic .Load in its
// condition or body, or a call to a claim primitive (a name containing
// pop, steal or claim) — must also block or back off on each round.
// Bounded sweep loops (with an init/post clause) are fine: they
// terminate on their own, and the engine's steal sweeps are exactly
// that shape with a yield between rounds.
func (p *pass) spinLoop(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Init != nil || loop.Post != nil {
			return true
		}
		if !spinPolls(loop) || spinBacksOff(loop.Body) || spinIsCASRetry(loop.Body) {
			return true
		}
		p.report(loop.Pos(), "spin-loop",
			"unbounded work-polling loop without backoff or parking; yield (runtime.Gosched), sleep, or park on a condition variable between polls")
		return true
	})
}

// spinCallName extracts the called name of a call expression ("" when
// the callee is not an identifier or selector).
func spinCallName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// spinPolls reports whether the loop is a work-polling spin candidate:
// either it is condition-less and its body polls claimable state (an
// atomic-style .Load, or a claim-primitive call), or its condition
// itself polls. A loop whose condition is an ordinary bound over
// variables the body advances (a simulator's `for scheduled < nt`) is
// not a spin even if its body happens to call a claim primitive — the
// condition, not the poll, decides termination.
func spinPolls(loop *ast.ForStmt) bool {
	found := false
	check := func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := spinCallName(call)
			lower := strings.ToLower(name)
			if name == "Load" || strings.Contains(lower, "pop") ||
				strings.Contains(lower, "steal") || strings.Contains(lower, "claim") {
				found = true
				return false
			}
			return true
		})
	}
	if loop.Cond == nil {
		check(loop.Body)
	} else {
		check(loop.Cond)
	}
	return found
}

// spinIsCASRetry reports whether the loop is a lock-free compare-and-
// swap retry: its body calls CompareAndSwap* and contains a return or
// break, so each round either publishes and exits or re-reads a value
// another goroutine just advanced. Such loops are bounded by the
// lock-free progress guarantee (a failed CAS means someone else
// succeeded), not by polling cadence, and need no backoff.
func spinIsCASRetry(body *ast.BlockStmt) bool {
	cas, exits := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if strings.HasPrefix(spinCallName(n), "CompareAndSwap") {
				cas = true
			}
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				exits = true
			}
		}
		return true
	})
	return cas && exits
}

// spinBacksOff reports whether the loop body blocks or yields between
// polls: a select, a channel operation, or a call named Wait, Sleep or
// Gosched, or whose name mentions park, backoff or yield.
func spinBacksOff(body *ast.BlockStmt) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			ok = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ok = true
			}
		case *ast.CallExpr:
			name := spinCallName(x)
			lower := strings.ToLower(name)
			if name == "Wait" || name == "Sleep" || name == "Gosched" ||
				strings.Contains(lower, "park") || strings.Contains(lower, "backoff") ||
				strings.Contains(lower, "yield") {
				ok = true
			}
		}
		return !ok
	})
	return ok
}

// hotAllocFile flags every builtin make/append call in a file of a
// hot-path package: the level-3 kernels run inside the measured numeric
// phase, so any allocation they perform is a per-task heap object that
// the zero-allocation proof would catch much later and less precisely.
// Kernel scratch comes from the sync.Pool of fixed-size arrays (whose
// one sanctioned allocation is `new` in the pool's New func).
func (p *pass) hotAllocFile(f *ast.File) {
	p.hotAllocIn(f, "in a hot-path package; use a pooled or caller-provided buffer")
}

// hotAllocGoroutines applies the same ban only inside goroutine bodies
// of the worker packages: code launched with `go func` is the per-task
// execution engine, while setup code around it may allocate freely
// (queues and ownership tables are built once per factorization).
func (p *pass) hotAllocGoroutines(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
			p.hotAllocIn(fl.Body, "in a worker goroutine runs once per task; hoist it to setup")
		}
		return true
	})
}

// hotAllocSchedClosures applies the hot-alloc ban inside function
// literals passed directly to the sched executors (sched.Execute*):
// those closures are the per-task worker bodies of the numeric and
// solve hot paths — the executor calls them once per task from its
// worker goroutines — even though the `go` statement itself lives in
// internal/sched, out of the goroutine-body scan's sight.
func (p *pass) hotAllocSchedClosures(f *ast.File) {
	schedPath := p.cfg.modPath + "/internal/sched"
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !strings.HasPrefix(sel.Sel.Name, "Execute") {
			return true
		}
		obj := p.pi.info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != schedPath {
			return true
		}
		for _, arg := range call.Args {
			if fl, ok := arg.(*ast.FuncLit); ok {
				p.hotAllocIn(fl.Body, "in a sched worker body runs once per task; use a pooled workspace or hoist it to setup")
			}
		}
		return true
	})
}

// hotAllocIn reports every call to the builtin make or append under n.
func (p *pass) hotAllocIn(n ast.Node, why string) {
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || (id.Name != "make" && id.Name != "append") {
			return true
		}
		if obj := p.pi.info.Uses[id]; obj == nil || obj.Parent() != types.Universe {
			return true // shadowed, not the builtin
		}
		p.report(call.Pos(), "hot-alloc", "%s %s", id.Name, why)
		return true
	})
}

type lockChecker struct {
	pass         *pass
	fnPos, fnEnd token.Pos
	locked       int
}

func (lc *lockChecker) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		lc.stmt(s)
	}
}

// terminates reports whether a block always transfers control out
// (return, break, continue, goto, or panic as the last statement).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (lc *lockChecker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		lc.expr(st.X)
	case *ast.AssignStmt:
		if st.Tok != token.DEFINE {
			for _, lhs := range st.Lhs {
				lc.checkWrite(lhs)
			}
		}
		for _, rhs := range st.Rhs {
			lc.expr(rhs)
		}
	case *ast.IncDecStmt:
		lc.checkWrite(st.X)
	case *ast.IfStmt:
		if st.Init != nil {
			lc.stmt(st.Init)
		}
		lc.expr(st.Cond)
		lc.branch(st.Body)
		if st.Else != nil {
			if eb, ok := st.Else.(*ast.BlockStmt); ok {
				lc.branch(eb)
			} else {
				lc.stmt(st.Else)
			}
		}
	case *ast.ForStmt:
		if st.Init != nil {
			lc.stmt(st.Init)
		}
		if st.Cond != nil {
			lc.expr(st.Cond)
		}
		lc.block(st.Body.List)
		if st.Post != nil {
			lc.stmt(st.Post)
		}
	case *ast.RangeStmt:
		if st.Tok == token.ASSIGN {
			if st.Key != nil {
				lc.checkWrite(st.Key)
			}
			if st.Value != nil {
				lc.checkWrite(st.Value)
			}
		}
		lc.expr(st.X)
		lc.block(st.Body.List)
	case *ast.BlockStmt:
		lc.block(st.List)
	case *ast.DeferStmt:
		lc.expr(st.Call.Fun)
		for _, a := range st.Call.Args {
			lc.expr(a)
		}
	case *ast.GoStmt:
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			inner := &lockChecker{pass: lc.pass, fnPos: fl.Pos(), fnEnd: fl.End()}
			inner.block(fl.Body.List)
		}
	case *ast.SwitchStmt:
		if st.Init != nil {
			lc.stmt(st.Init)
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				saved := lc.locked
				lc.block(cc.Body)
				lc.locked = saved
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				saved := lc.locked
				lc.block(cc.Body)
				lc.locked = saved
			}
		}
	case *ast.SelectStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				saved := lc.locked
				lc.block(cc.Body)
				lc.locked = saved
			}
		}
	case *ast.LabeledStmt:
		lc.stmt(st.Stmt)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			lc.expr(r)
		}
	case *ast.SendStmt:
		lc.expr(st.Chan)
		lc.expr(st.Value)
	}
}

// branch analyzes a conditional block; if the block always leaves the
// enclosing flow (early unlock-and-return), its lock-state changes do
// not apply to the statements after the if.
func (lc *lockChecker) branch(b *ast.BlockStmt) {
	if terminates(b) {
		saved := lc.locked
		lc.block(b.List)
		lc.locked = saved
		return
	}
	lc.block(b.List)
}

func (lc *lockChecker) expr(e ast.Expr) {
	switch x := e.(type) {
	case *ast.CallExpr:
		switch lc.lockKind(x) {
		case "lock":
			lc.locked++
			return
		case "unlock":
			lc.locked--
			return
		}
		lc.expr(x.Fun)
		for _, a := range x.Args {
			lc.expr(a)
		}
	case *ast.FuncLit:
		// A closure (deferred recover handler, callback) establishes its
		// own locking regime; analyze it independently.
		inner := &lockChecker{pass: lc.pass, fnPos: x.Pos(), fnEnd: x.End()}
		inner.block(x.Body.List)
	case *ast.ParenExpr:
		lc.expr(x.X)
	case *ast.UnaryExpr:
		lc.expr(x.X)
	case *ast.BinaryExpr:
		lc.expr(x.X)
		lc.expr(x.Y)
	case *ast.IndexExpr:
		lc.expr(x.X)
		lc.expr(x.Index)
	case *ast.SelectorExpr:
		lc.expr(x.X)
	case *ast.TypeAssertExpr:
		lc.expr(x.X)
	case *ast.StarExpr:
		lc.expr(x.X)
	}
}

// lockKind classifies a call as a sync lock acquisition or release.
func (lc *lockChecker) lockKind(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	var kind string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return ""
	}
	s := lc.pass.pi.info.Selections[sel]
	if s == nil || s.Obj().Pkg() == nil || s.Obj().Pkg().Path() != "sync" {
		return ""
	}
	return kind
}

// checkWrite flags an assignment target that resolves to a variable
// declared outside the goroutine while no lock is held.
func (lc *lockChecker) checkWrite(e ast.Expr) {
	base := e
	for {
		switch v := base.(type) {
		case *ast.IndexExpr:
			lc.expr(v.Index)
			base = v.X
		case *ast.ParenExpr:
			base = v.X
		case *ast.StarExpr:
			base = v.X
		case *ast.SelectorExpr:
			base = v.X
		default:
			id, ok := base.(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			obj := lc.pass.pi.info.Uses[id]
			if obj == nil {
				return // defined here: local by construction
			}
			vr, ok := obj.(*types.Var)
			if !ok || vr.IsField() {
				return
			}
			if obj.Pos() >= lc.fnPos && obj.Pos() < lc.fnEnd {
				return // declared inside the goroutine
			}
			if lc.locked <= 0 {
				lc.pass.report(e.Pos(), "lock-discipline",
					"write to shared variable %q in a worker goroutine without holding a lock", id.Name)
			}
			return
		}
	}
}

// requestCtx enforces context hygiene in the request-serving packages:
// context.Background()/context.TODO() are forbidden (they discard the
// request's deadline and disconnect signal exactly where those must
// reach the numeric kernels), and every `go` statement must visibly
// thread a cancellation signal — the spawned code or its arguments
// must reference a context.Context or *sched.Canceler value, or
// perform a channel operation. Timer callbacks (time.AfterFunc) are
// not `go` statements and stay out of scope: they are one-shot and
// stopped by their owners.
func (p *pass) requestCtx(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.pi.info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "context" {
				return true
			}
			if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
				p.report(st.Pos(), "request-ctx",
					"context.%s() in a request-serving package discards the request's deadline and cancellation; thread the request context instead", sel.Sel.Name)
			}
		case *ast.GoStmt:
			if !p.threadsCancellation(st.Call) {
				p.report(st.Pos(), "request-ctx",
					"goroutine does not thread a cancellation signal (no context.Context, *sched.Canceler or channel operation); a detached goroutine in a long-lived server outlives its request")
			}
		}
		return true
	})
}

// threadsCancellation reports whether the spawned call references a
// cancellation carrier: a value of type context.Context or
// sched.Canceler anywhere in the call (arguments included), or a
// channel operation / channel-typed value inside a function literal's
// body.
func (p *pass) threadsCancellation(call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case ast.Expr:
			if t := p.pi.info.TypeOf(v); t != nil && carriesCancellation(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// carriesCancellation recognizes the cancellation-carrying types:
// context.Context, sched.Canceler (possibly behind a pointer), and
// channels.
func carriesCancellation(t types.Type) bool {
	switch u := t.(type) {
	case *types.Pointer:
		return carriesCancellation(u.Elem())
	case *types.Chan:
		return true
	}
	switch s := t.String(); {
	case s == "context.Context":
		return true
	case strings.HasSuffix(s, "/sched.Canceler") || s == "sched.Canceler":
		return true
	}
	return false
}
