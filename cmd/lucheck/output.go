package main

// Machine-readable output. Three formats share the finding list:
//
//   - text: the classic file:line:col: [rule] message lines.
//   - json: a stable array of {file,line,column,rule,message} objects
//     with module-relative, forward-slash paths — for scripting.
//   - sarif: SARIF 2.1.0, the shape GitHub code scanning ingests. Every
//     rule carries an entry in tool.driver.rules and results reference
//     it by index; paths are relative to %SRCROOT% so the upload action
//     can anchor them to the repository checkout.
//
// The audit report (-audit) additionally inventories every
// //lucheck:allow suppression with its justification, so the deliberate
// exceptions stay reviewable in one listing.

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// ruleDescriptions names every rule for the SARIF rules array and the
// README table; keep in sync with the rule implementations.
var ruleDescriptions = []struct{ id, desc string }{
	{"pattern-mutation", "ColPtr/RowInd writes outside the constructor packages invalidate the static symbolic factorization"},
	{"naked-panic", "internal packages must panic with a \"<pkg>: ...\"-prefixed message or return an error"},
	{"float-equality", "==/!= between two non-constant floats in the numeric packages"},
	{"lock-discipline", "goroutine bodies may write spawner-shared variables only under a sync lock"},
	{"worker-timing", "worker goroutines must not read the wall clock directly; timing goes through internal/trace"},
	{"worker-exit", "worker goroutines must not terminate the process; failures flow through the scheduler's error contract"},
	{"hot-alloc", "the numeric hot path (hot-path files, worker and executor closures) must not call make or append"},
	{"map-order", "nondeterministically ordered values (map ranges, multi-ready selects, time, rand) must not reach ordered sinks without a sort"},
	{"fp-reassoc", "float accumulation must follow the pinned ascending-k order: no descending, map-order, permuted-gather or worker-order summation"},
	{"shared-capture", "variables captured by reference and written in functions called from worker closures need a lock on the write or call chain"},
	{"allow-justification", "every //lucheck:allow must name its rules and carry a \"— <why>\" justification"},
}

// relPath makes a finding path module-relative with forward slashes.
func relPath(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// jsonFinding is the -format=json element shape.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// writeJSON emits the findings as a JSON array (never null).
func writeJSON(w io.Writer, root string, findings []finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:    relPath(root, f.pos.Filename),
			Line:    f.pos.Line,
			Column:  f.pos.Column,
			Rule:    f.rule,
			Message: f.msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 — the minimal subset GitHub code scanning consumes.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF emits the findings as one SARIF 2.1.0 run.
func writeSARIF(w io.Writer, root string, findings []finding) error {
	ruleIndex := map[string]int{}
	rules := make([]sarifRule, 0, len(ruleDescriptions))
	for i, r := range ruleDescriptions {
		ruleIndex[r.id] = i
		rules = append(rules, sarifRule{ID: r.id, ShortDescription: sarifMessage{Text: r.desc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := ruleIndex[f.rule]
		if !ok {
			// A rule without a registered description still round-trips.
			idx = len(rules)
			ruleIndex[f.rule] = idx
			rules = append(rules, sarifRule{ID: f.rule, ShortDescription: sarifMessage{Text: f.rule}})
		}
		results = append(results, sarifResult{
			RuleID:    f.rule,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: f.msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       relPath(root, f.pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   f.pos.Line,
						StartColumn: maxInt(f.pos.Column, 1),
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "lucheck",
				InformationURI: "https://example.invalid/lucheck",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// writeAudit prints the suppression inventory: every //lucheck:allow
// with its rules and justification, sorted by position. The return
// value counts the unjustified entries (the allow-justification rule
// reports them as findings; the audit just shows the full trail).
func writeAudit(w io.Writer, root string, supps []suppression) int {
	sorted := append([]suppression(nil), supps...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i].pos, sorted[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	bad := 0
	fmt.Fprintf(w, "lucheck audit: %d suppression(s)\n", len(sorted))
	for _, s := range sorted {
		rules := "<none>"
		if len(s.rules) > 0 {
			rules = joinComma(s.rules)
		}
		just := s.justification
		if just == "" {
			just = "UNJUSTIFIED"
			bad++
		}
		fmt.Fprintf(w, "  %s:%d: allow %s — %s\n", relPath(root, s.pos.Filename), s.pos.Line, rules, just)
	}
	return bad
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
