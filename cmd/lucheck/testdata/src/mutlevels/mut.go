// Package mutlevels is a mutation fixture: the taskgraph level-set
// construction with its deterministic ordering removed. Bucketing
// tasks by ranging over the depth map puts each level's tasks in
// randomized order — exactly the schedule bug the map-order rule
// exists to catch. The test asserts the rule detects this mutant.
package mutlevels

// LevelSets mirrors the real taskgraph shape.
type LevelSets struct {
	Levels []int
	Tasks  []int
}

// BuildFromDepth is the mutated constructor: task IDs enter the
// schedule in map-iteration order.
func BuildFromDepth(depth map[int]int, nlev int) *LevelSets {
	ls := &LevelSets{}
	for lev := 0; lev < nlev; lev++ {
		for id, d := range depth {
			if d == lev {
				ls.Tasks = append(ls.Tasks, id) // want map-order
			}
		}
		ls.Levels = append(ls.Levels, len(ls.Tasks))
	}
	return ls
}
