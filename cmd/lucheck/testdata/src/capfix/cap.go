// Package capfix is the shared-capture fixture: variables captured by
// reference and written inside functions CALLED FROM worker closures —
// the writes the intra-procedural lock-discipline rule cannot see. It
// is compiled by the lucheck tests under a virtual import path (scoped
// as a workers package) and must never build as part of the real
// module.
package capfix

import "sync"

var mu sync.Mutex

// --- violations -----------------------------------------------------

// bump writes through a pointer that every caller hands it from a
// worker closure, with no lock anywhere on the chain.
func bump(p *int) {
	*p++ // want shared-capture
}

// Tally is the one-level case: &total escapes the worker closure into
// bump.
func Tally(n int) int {
	total := 0
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			bump(&total)
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return total
}

// addOne passes the pointer one level further: the taint must follow.
func addOne(p *int) {
	deepBump(p)
}

func deepBump(p *int) {
	*p++ // want shared-capture
}

// ChainTally is the two-level case.
func ChainTally(n int) int {
	count := 0
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			addOne(&count)
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return count
}

// opCount is written by worker-reachable code without a lock.
var opCount int

func recordOp() {
	opCount++ // want shared-capture
}

// Run reaches recordOp from a worker goroutine.
func Run(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			recordOp()
			wg.Done()
		}()
	}
	wg.Wait()
}

// --- clean ----------------------------------------------------------

var guarded int

// bumpGuarded's write is safe because every call site holds the lock:
// the protection transfers down the edge.
func bumpGuarded(p *int) {
	*p++
}

// Locked holds the lock at the call site (the lock-at-the-top idiom).
func Locked(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			mu.Lock()
			bumpGuarded(&guarded)
			mu.Unlock()
			wg.Done()
		}()
	}
	wg.Wait()
}

var total2 int

// lockedAdd holds the lock at the write itself.
func lockedAdd(v int) {
	mu.Lock()
	total2 += v
	mu.Unlock()
}

// Workers reaches lockedAdd from worker goroutines: clean.
func Workers(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			lockedAdd(1)
			wg.Done()
		}()
	}
	wg.Wait()
}

// inc only ever receives pointers to goroutine-local variables: the
// pointee is per-invocation state, not shared.
func inc(p *int) {
	*p++
}

func LocalOnly(done chan<- int) {
	go func() {
		local := 0
		inc(&local)
		done <- local
	}()
}

// --- suppressed -----------------------------------------------------

var logged int

// record carries a justified waiver on the write.
func record(p *int) {
	//lucheck:allow shared-capture — fixture: waiver path of the interprocedural rule
	*p++
}

func Suppressed(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			record(&logged)
			wg.Done()
		}()
	}
	wg.Wait()
}
