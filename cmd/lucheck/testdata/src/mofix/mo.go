// Package mofix is the map-order fixture: values ordered by
// nondeterministic sources flowing into ordered sinks. It is compiled
// by the lucheck tests under a virtual import path (scoped as a
// contract package) and must never build as part of the real module.
// Violating lines carry want-markers; the clean section pins the
// rule's exceptions and the suppressed section the waiver path.
package mofix

import (
	"sort"
	"time"
)

// Schedule carries the ordered sink fields of the real config.
type Schedule struct {
	Levels []int
	Tasks  []int
	Val    []float64
}

// --- violations -----------------------------------------------------

// BuildLevels collects map keys in iteration order and installs them
// as a schedule: the classic nondeterministic-level bug.
func BuildLevels(deps map[int]int, s *Schedule) {
	var order []int
	for id := range deps {
		order = append(order, id)
	}
	s.Levels = order // want map-order
}

// CollectTasks appends straight into the ordered field from inside the
// map range.
func CollectTasks(ready map[int]bool, s *Schedule) {
	for id := range ready {
		s.Tasks = append(s.Tasks, id) // want map-order
	}
}

// KeyOrder lets the randomized order escape through an exported
// return.
func KeyOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys // want map-order
}

// keyList is the unexported helper of the interprocedural case: no
// finding here, but its result summary carries the taint …
func keyList(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// PublishKeys … which surfaces where the helper's result escapes.
func PublishKeys(m map[string]int) []string {
	return keyList(m) // want map-order
}

// StampVal stores a wall-clock-derived value into the factor storage.
func StampVal(s *Schedule, i int) {
	t := time.Now()
	s.Val[i] = float64(t.UnixNano()) // want map-order
}

// Merge forwards whichever case the runtime picks first: downstream
// element order depends on the select choice.
func Merge(a, b <-chan int, out chan<- int) {
	for i := 0; i < 2; i++ {
		select {
		case v := <-a:
			out <- v // want map-order
		case v := <-b:
			out <- v // want map-order
		}
	}
}

// --- clean ----------------------------------------------------------

// SortedLevels is BuildLevels with the mandatory sort: the sanitizer
// clears the taint.
func SortedLevels(deps map[int]int, s *Schedule) {
	var order []int
	for id := range deps {
		order = append(order, id)
	}
	sort.Ints(order)
	s.Levels = order
}

// Histogram stores element-addressed: each value lands at its own key,
// so iteration order cannot change the result.
func Histogram(m map[int]int, hist []int) {
	for k, v := range m {
		hist[k] += v
	}
}

// MinKey is the min-reduction idiom: the final value is
// order-independent even though it is assigned in map order.
func MinKey(m map[int]int) int {
	best := 1 << 62
	for k := range m {
		if k < best {
			best = k
		}
	}
	return best
}

// --- suppressed -----------------------------------------------------

// SuppressedLevels carries a justified waiver; the finding must not
// surface.
func SuppressedLevels(deps map[int]int, s *Schedule) {
	var order []int
	for id := range deps {
		order = append(order, id)
	}
	//lucheck:allow map-order — fixture: exercising the waiver path of the taint rule
	s.Levels = order
}
