// This file models a relaxed-mode (FastMath-style) kernel file: the
// pre-package directive below waives the ENTIRE fp scan for this file,
// so the descending loop and the worker-captured accumulator here must
// stay silent even though the same shapes fire in bitwise.go.
//
//lucheck:allow fp-reassoc — fixture: relaxed-mode kernel file, accuracy
// enforced by an error-bound suite instead of the parity pins.

package fpfast

// DotDescendingFast reassociates against the ascending order — waived
// file-wide.
func DotDescendingFast(x, y []float64) float64 {
	s := 0.0
	for i := len(x) - 1; i >= 0; i-- {
		s += x[i] * y[i]
	}
	return s
}

// ParallelSumFast accumulates into a captured variable from goroutines
// — waived file-wide.
func ParallelSumFast(parts [][]float64) float64 {
	total := 0.0
	done := make(chan struct{})
	for _, p := range parts {
		p := p
		go func() {
			for _, v := range p {
				total += v
			}
			done <- struct{}{}
		}()
	}
	for range parts {
		<-done
	}
	return total
}
