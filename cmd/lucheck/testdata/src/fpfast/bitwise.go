// This file carries NO pre-package waiver: it proves the file-level
// fp-reassoc exemption is per file, not per package — the same shapes
// that stay silent in fast.go must still fire here.

package fpfast

// DotDescendingBitwise sums backward in a bitwise-contract file.
func DotDescendingBitwise(x, y []float64) float64 {
	s := 0.0
	for i := len(x) - 1; i >= 0; i-- {
		s += x[i] * y[i] // want fp-reassoc
	}
	return s
}

// LineWaiver keeps the ordinary line-level suppression working in a
// package that also contains a file-level waiver.
func LineWaiver(x []float64) float64 {
	s := 0.0
	for i := len(x) - 1; i >= 0; i-- {
		s += x[i] //lucheck:allow fp-reassoc — fixture: pinned backward sweep, line waiver under test
	}
	return s
}
