// Package justfix exercises the allow-justification rule: a bare
// //lucheck:allow still suppresses its target, but is itself an
// unsuppressable finding and fails the audit. It is compiled by the
// lucheck tests under a virtual import path (scoped as a contract
// package) and must never build as part of the real module.
package justfix

// S carries an ordered sink field.
type S struct{ Tasks []int }

// Collect's map-order violation is suppressed by a BARE allow: the
// map-order finding must vanish, the allow-justification finding must
// appear at the directive line.
func Collect(m map[int]int, s *S) {
	for id := range m {
		//lucheck:allow map-order
		s.Tasks = append(s.Tasks, id)
	}
}

// orphan is a directive naming no rule at all.
//
//lucheck:allow
func orphan() {}

// Justified shows the compliant form: no finding anywhere.
func Justified(m map[int]int, s *S) {
	for id := range m {
		//lucheck:allow map-order — fixture: order is rewritten by the caller before use
		s.Tasks = append(s.Tasks, id)
	}
}
