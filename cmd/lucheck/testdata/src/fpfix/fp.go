// Package fpfix is the fp-reassoc fixture: floating-point accumulation
// orders that break the pinned ascending-k contract. It is compiled by
// the lucheck tests under a virtual import path (scoped as an fp
// package) and must never build as part of the real module.
package fpfix

import "repro/internal/sched"

// --- violations -----------------------------------------------------

// DotDescending sums backward: the partial sums reassociate against
// the pinned ascending order.
func DotDescending(x, y []float64) float64 {
	s := 0.0
	for i := len(x) - 1; i >= 0; i-- {
		s += x[i] * y[i] // want fp-reassoc
	}
	return s
}

// SumMap accumulates in randomized map order.
func SumMap(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want fp-reassoc
	}
	return total
}

// GatherDot sums through an index indirection: the summation order
// follows the contents of idx, which no loop direction pins.
func GatherDot(x []float64, idx []int, y []float64) float64 {
	s := 0.0
	for i := 0; i < len(idx); i++ {
		s += x[idx[i]] * y[i] // want fp-reassoc
	}
	return s
}

// ParallelSum accumulates into a captured variable from goroutines:
// the additions land in completion order, different every run.
func ParallelSum(parts [][]float64) float64 {
	total := 0.0
	done := make(chan struct{})
	for _, p := range parts {
		p := p
		go func() {
			for _, v := range p {
				total += v // want fp-reassoc
			}
			done <- struct{}{}
		}()
	}
	for range parts {
		<-done
	}
	return total
}

// LevelSum accumulates into a captured variable from a sched executor
// closure — the per-task worker body — in task-completion order.
func LevelSum(lv *sched.Levels, vals []float64) float64 {
	sum := 0.0
	sched.ExecuteLevels(lv, 2, func(worker, task int) {
		sum += vals[task] // want fp-reassoc
	})
	return sum
}

// --- clean ----------------------------------------------------------

// Dot is the pinned ascending sweep.
func Dot(x, y []float64) float64 {
	s := 0.0
	for i := 0; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// BackSolve iterates its OUTER loop descending, but the accumulator is
// declared inside that loop: each iteration's partial sums reset, and
// the inner summation runs ascending. This is the upper-solve shape
// that must stay clean.
func BackSolve(u, b []float64, n int) {
	for j := n - 1; j >= 0; j-- {
		acc := b[j]
		for k := j + 1; k < n; k++ {
			acc -= u[j*n+k] * b[k]
		}
		b[j] = acc / u[j*n+j]
	}
}

// CountDown accumulates an int: order-independent, out of scope.
func CountDown(n int) int {
	c := 0
	for i := n; i > 0; i-- {
		c += i
	}
	return c
}

// --- suppressed -----------------------------------------------------

// SuppressedDescending carries a justified waiver on the accumulation
// line.
func SuppressedDescending(x []float64) float64 {
	s := 0.0
	for i := len(x) - 1; i >= 0; i-- {
		s += x[i] //lucheck:allow fp-reassoc — fixture: pinned backward sweep, waiver path under test
	}
	return s
}
