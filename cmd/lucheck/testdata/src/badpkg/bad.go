// Package badpkg deliberately violates every lucheck rule; it is loaded
// by the lucheck tests under a virtual import path and must never build
// as part of the module proper (it lives under testdata, which the
// loader skips).
package badpkg

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/sparse"
)

// MutatePattern writes the protected storage fields of a CSC matrix
// from outside a constructor package: two pattern-mutation findings.
func MutatePattern(a *sparse.CSC) {
	a.ColPtr[0] = 7 // want pattern-mutation
	a.RowInd[1]++   // want pattern-mutation
}

// MutateAllowed carries a suppression comment and must not be
// reported; MutateValues writes the numeric values, which the rule
// deliberately leaves writable.
func MutateAllowed(a *sparse.CSC) {
	//lucheck:allow pattern-mutation — test fixture for the waiver path
	a.ColPtr[1] = 3
	a.Val[0] = 1
}

// NakedPanic panics without the package prefix: one naked-panic finding.
func NakedPanic() {
	panic("something broke") // want naked-panic
}

// PrefixedPanic is the sanctioned form and must not be reported.
func PrefixedPanic() {
	panic(fmt.Sprintf("badpkg: impossible state %d", 3))
}

// FloatEq compares two non-constant floats: one float-equality finding.
// The constant comparison below it is legal.
func FloatEq(x, y float64) bool {
	if x == y { // want float-equality
		return true
	}
	return x == 0
}

// RacyWorker writes a shared variable from a goroutine without the
// lock: one lock-discipline finding. The locked write is legal.
func RacyWorker() int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		total++ // want lock-discipline
	}()
	go func() {
		defer wg.Done()
		mu.Lock()
		total++
		mu.Unlock()
	}()
	wg.Wait()
	return total
}

// TimedWorker reads the wall clock inside a worker goroutine: one
// worker-timing finding. The reads outside the goroutine are legal.
func TimedWorker() time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = time.Now() // want worker-timing
	}()
	wg.Wait()
	return time.Since(start)
}

// HotAlloc allocates in the numeric hot path. With the fixture scoped
// as a hot-path package, the top-level make and both goroutine-body
// allocations are findings; scoped only as a workers package, just the
// two inside the goroutine fire (see TestHotAllocWorkerScope). The
// suppressed make demonstrates the waiver path.
func HotAlloc(n int) float64 {
	buf := make([]float64, n) // want hot-alloc
	//lucheck:allow hot-alloc — setup-time scratch outside the measured phase
	setup := make([]float64, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		local := make([]float64, 0, 4) // want hot-alloc
		local = append(local, 1)       // want hot-alloc
		_ = local
	}()
	wg.Wait()
	return buf[0] + setup[0]
}

// SchedWorkerAlloc allocates inside a closure handed to a sched
// executor: scoped as a sched-client package, the make inside the
// worker body fires even though no `go` statement appears here (the
// executor launches the goroutines). Scoped only as a workers package
// it stays silent (see TestHotAllocSchedClosureScope); scoped as a
// hot-path package the whole-file scan reports it like any other.
func SchedWorkerAlloc(lv *sched.Levels, results []float64) {
	sched.ExecuteLevels(lv, 2, func(worker, task int) {
		scratch := make([]float64, task+1) // want hot-alloc
		results[task] = float64(len(scratch))
	})
}

// spinQueue is a stand-in work queue so the spin-loop fixtures below
// have a claim primitive to poll.
type spinQueue struct{ ids []int }

func (q *spinQueue) steal() int {
	if len(q.ids) == 0 {
		return -1
	}
	id := q.ids[0]
	q.ids = q.ids[1:]
	return id
}

// SpinningWaiter busy-waits on an atomic flag with no backoff: one
// spin-loop finding. The yielding loop below it is legal.
func SpinningWaiter(ready *atomic.Bool) {
	for !ready.Load() { // want spin-loop
	}
	for !ready.Load() {
		runtime.Gosched()
	}
}

// SpinningThief polls a claim primitive in an unbounded tight loop: one
// spin-loop finding. ParkingThief parks between failed polls and the
// bounded sweep in BoundedSweep terminates on its own; both are legal.
func SpinningThief(q *spinQueue) int {
	for { // want spin-loop
		if id := q.steal(); id >= 0 {
			return id
		}
	}
}

// ParkingThief is the sanctioned shape: park on a condition variable
// when a poll comes up empty.
func ParkingThief(q *spinQueue, cond *sync.Cond) int {
	for {
		if id := q.steal(); id >= 0 {
			return id
		}
		cond.L.Lock()
		cond.Wait()
		cond.L.Unlock()
	}
}

// BoundedSweep is a bounded retry loop (init and post clauses bound the
// trip count), which the rule deliberately skips.
func BoundedSweep(q *spinQueue) int {
	for round := 0; round < 4; round++ {
		if id := q.steal(); id >= 0 {
			return id
		}
	}
	return -1
}

// ExitingWorker terminates the process from worker goroutines instead
// of failing through the scheduler's error contract: two worker-exit
// findings. The os.Exit outside any goroutine is out of the rule's
// scope (main packages exit; worker closures must not).
func ExitingWorker(fail bool) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if fail {
			os.Exit(1) // want worker-exit
		}
	}()
	go func() {
		defer wg.Done()
		if fail {
			log.Fatalf("task failed") // want worker-exit
		}
	}()
	wg.Wait()
	if fail {
		os.Exit(2)
	}
}
