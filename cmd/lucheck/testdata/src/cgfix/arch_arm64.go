package cgfix

// archTag's arm64 variant.
func archTag() string { return "arm64" }
