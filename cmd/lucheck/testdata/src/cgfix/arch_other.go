//go:build !amd64 && !arm64

package cgfix

// archTag's fallback for every other architecture.
func archTag() string { return "other" }
