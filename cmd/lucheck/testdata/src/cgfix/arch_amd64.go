package cgfix

// archTag's amd64 variant: the loader must pick exactly one of the
// per-arch files, so the call graph holds exactly one archTag node.
func archTag() string { return "amd64" }
