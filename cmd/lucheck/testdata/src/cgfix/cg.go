// Package cgfix exercises the call-graph construction: method values,
// interface dispatch, closures handed to the sched executors, function
// values flowing through variables, and per-arch file selection. It is
// compiled by the lucheck tests under a virtual import path and must
// never build as part of the real module.
package cgfix

import (
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// counter's tick method is handed to the cancelable executor as a
// METHOD VALUE: the call graph must mark it a worker root.
type counter struct{ n int }

func (c *counter) tick(id int) error {
	c.n++
	return nil
}

// RunMethodValue passes c.tick to sched.ExecuteCancelable.
func RunMethodValue(g *taskgraph.Graph, c *counter) error {
	return sched.ExecuteCancelable(g, nil, 2, nil, nil, nil, c.tick)
}

// RunClosure passes a literal to the cancelable executor: the literal's
// node must be a worker root.
func RunClosure(g *taskgraph.Graph) error {
	hits := 0
	err := sched.ExecuteCancelable(g, nil, 1, nil, nil, nil, func(id int) error {
		hits = id
		return nil
	})
	_ = hits
	return err
}

// stepper dispatch: drive's call must resolve to BOTH concrete
// implementations via the type-set approximation.
type stepper interface{ step() }

type fwd struct{}

func (fwd) step() {}

type bwd struct{}

func (bwd) step() {}

func drive(s stepper) {
	s.step()
}

// DriveBoth keeps the concrete types and drive reachable.
func DriveBoth() {
	drive(fwd{})
	drive(bwd{})
}

// hook carries function values assigned through a variable: invoke's
// indirect call must resolve flow-insensitively to helperA.
var hook func()

func helperA() {}

func install() { hook = helperA }

func invoke() {
	if hook != nil {
		hook()
	}
}

// Wire keeps install/invoke reachable.
func Wire() {
	install()
	invoke()
}
