// Package workfix mimics the shape of the parallel-analyze worker
// pools in internal/symbolic and internal/core — a spawner that fans
// subtree tasks out to goroutines — but written the WRONG way: the
// goroutine bodies are function literals that allocate per task and
// write spawner-shared state outside the lock. With the package scoped
// into the workers set (as internal/symbolic and internal/core are),
// lucheck must flag every violation. The real pools keep their
// goroutine bodies as method calls whose per-task state is claimed
// through an atomic counter and published under a mutex, which is why
// the repository itself stays clean. The locked error publication
// below is the sanctioned pattern and must stay silent.
package workfix

import "sync"

// SubtreePool fans n subtree eliminations out to worker goroutines.
type SubtreePool struct {
	mu   sync.Mutex
	err  error
	next int
}

// Run launches one goroutine per subtree task.
func (p *SubtreePool) Run(n int, task func(i int) error) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cols := make([]int32, 0, 8)   // want hot-alloc
			cols = append(cols, int32(i)) // want hot-alloc
			p.next = int(cols[0])         // want lock-discipline
			if err := task(i); err != nil {
				p.mu.Lock()
				if p.err == nil {
					p.err = err
				}
				p.mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
}
