// Package ctxfix is the request-ctx fixture: context hygiene
// violations in a request-serving package, next to the legal forms
// that must stay silent.
package ctxfix

import (
	"context"
	"time"
)

// Detached reproduces the violations.
func Detached(ctx context.Context, work chan int) {
	_ = context.Background() // want request-ctx
	_ = context.TODO()       // want request-ctx
	go leak()                // want request-ctx
	go func() {              // want request-ctx
		time.Sleep(time.Millisecond)
	}()
}

func leak() { time.Sleep(time.Millisecond) }

// Threaded shows the legal forms: goroutines that reference the
// request context, receive from a channel, send into one, or select.
func Threaded(ctx context.Context, work chan int, done chan struct{}) {
	go func() {
		<-ctx.Done()
	}()
	go func() {
		<-work
	}()
	go func() {
		done <- struct{}{}
	}()
	go func() {
		select {
		case <-work:
		default:
		}
	}()
	go watch(ctx)
	//lucheck:allow request-ctx — fixture: exercises the suppression path
	go leak()
}

func watch(ctx context.Context) { <-ctx.Done() }
